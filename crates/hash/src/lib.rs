//! SHA-256 (FIPS 180-4) implemented from scratch, plus the [`Digest`] type
//! used throughout the vChain blockchain structures.
//!
//! The paper uses 160-bit SHA-1 via Crypto++; SHA-1 is cryptographically
//! broken, so this reproduction substitutes SHA-256 (see DESIGN.md §2).

pub mod sha256;

pub use sha256::{sha256, Sha256};

use core::fmt;
use serde::{Deserialize, Serialize};

/// A 32-byte SHA-256 digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Number of bytes in a digest (used by VO size accounting).
    pub const LEN: usize = 32;

    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}…)", &self.to_hex()[..12])
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Hash a byte string.
pub fn hash_bytes(data: &[u8]) -> Digest {
    Digest(sha256(data))
}

/// Hash the concatenation of several byte strings, mirroring the paper's
/// `hash(a | b | …)` notation. Each part is length-prefixed to rule out
/// ambiguity attacks on the concatenation.
pub fn hash_concat(parts: &[&[u8]]) -> Digest {
    let mut h = Sha256::new();
    for p in parts {
        h.update(&(p.len() as u64).to_le_bytes());
        h.update(p);
    }
    Digest(h.finalize())
}

/// Domain-separated hashing: `H(tag || data)`, used to derive accumulator
/// element representatives and field elements.
pub fn hash_domain(tag: &str, data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(&(tag.len() as u64).to_le_bytes());
    h.update(tag.as_bytes());
    h.update(data);
    Digest(h.finalize())
}

/// Combine two digests into one (Merkle interior node convention).
pub fn hash_pair(left: &Digest, right: &Digest) -> Digest {
    hash_concat(&[&left.0, &right.0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_is_length_prefixed() {
        // ("ab","c") must differ from ("a","bc")
        assert_ne!(
            hash_concat(&[b"ab", b"c"]),
            hash_concat(&[b"a", b"bc"]),
            "length prefixing must disambiguate concatenation"
        );
    }

    #[test]
    fn domain_separation() {
        assert_ne!(hash_domain("a", b"x"), hash_domain("b", b"x"));
        assert_ne!(hash_domain("a", b"x"), hash_bytes(b"x"));
    }

    #[test]
    fn digest_hex() {
        let d = hash_bytes(b"");
        assert_eq!(d.to_hex(), "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
        assert_eq!(format!("{d}"), d.to_hex());
    }

    #[test]
    fn pair_order_matters() {
        let a = hash_bytes(b"a");
        let b = hash_bytes(b"b");
        assert_ne!(hash_pair(&a, &b), hash_pair(&b, &a));
    }
}
