//! Property tests pinning the fast polynomial engine to its naive
//! references (`poly::naive`), plus the degree and edge cases the Acc1
//! proving pipeline relies on.
//!
//! The fast paths dispatch on operand size, so sizes are drawn across the
//! thresholds: small inputs exercise the (shared) classical routines,
//! large inputs exercise Karatsuba, the subproduct tree, Newton division
//! and the half-GCD.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vchain_acc::poly::{naive, DuplicateElement, Poly, HALF_GCD_THRESHOLD, KARATSUBA_THRESHOLD};
use vchain_pairing::{Field, Fr};

fn rand_poly(rng: &mut StdRng, len: usize) -> Poly {
    Poly::from_coeffs((0..len).map(|_| Fr::random(rng)).collect())
}

/// Canonical serialization of a polynomial: the concatenated canonical
/// bytes of its coefficients. Equality of `Poly` values is coefficient
/// equality in Montgomery form; the trajectory claim ("byte-identical to
/// the naive build") is about *these* bytes, the form that reaches block
/// headers and proofs.
fn poly_bytes(p: &Poly) -> Vec<u8> {
    p.coeffs().iter().flat_map(Fr::to_bytes).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Subproduct tree vs incremental fold: byte-equality, every size.
    #[test]
    fn char_poly_tree_matches_naive_bytes(seed in 0u64..u64::MAX, n in 0usize..120) {
        let mut rng = StdRng::seed_from_u64(seed);
        let elems: Vec<(Fr, u64)> =
            (0..n).map(|i| (Fr::random(&mut rng), 1 + (i as u64 % 3))).collect();
        let fast = Poly::char_poly(elems.iter().copied());
        let slow = naive::char_poly(elems.iter().copied());
        prop_assert_eq!(poly_bytes(&fast), poly_bytes(&slow));
        // degree = Σ counts
        let total: u64 = elems.iter().map(|(_, c)| *c).sum();
        prop_assert_eq!(fast.degree(), Some(total as usize));
    }

    /// Karatsuba (and the unbalanced chunked path) vs schoolbook.
    #[test]
    fn mul_matches_schoolbook(seed in 0u64..u64::MAX,
                              la in 1usize..200, lb in 1usize..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_poly(&mut rng, la);
        let b = rand_poly(&mut rng, lb);
        prop_assert_eq!(a.mul(&b), naive::mul(&a, &b));
    }

    /// Newton division vs long division, plus the Euclidean contract.
    #[test]
    fn divrem_matches_long_division(seed in 0u64..u64::MAX,
                                    ln in 1usize..220, ld in 1usize..220) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_poly(&mut rng, ln.max(ld));
        let b = rand_poly(&mut rng, ld.min(ln));
        prop_assume!(!b.is_zero());
        let (q, r) = a.divrem(&b);
        prop_assert_eq!((q.clone(), r.clone()), naive::divrem(&a, &b));
        prop_assert_eq!(q.mul(&b).add(&r), a);
        prop_assert!(r.degree() < b.degree());
    }

    /// The Bézout identity `u·a + v·b == gcd` holds on both xgcd paths,
    /// and the half-GCD result matches the classical one up to the scalar
    /// factor it is allowed to introduce.
    #[test]
    fn xgcd_bezout_identity(seed in 0u64..u64::MAX,
                            la in 1usize..160, lb in 1usize..160,
                            shared in 0usize..80) {
        let mut rng = StdRng::seed_from_u64(seed);
        // a common factor of random degree forces non-constant gcds
        let common = rand_poly(&mut rng, shared + 1);
        let a = rand_poly(&mut rng, la).mul(&common);
        let b = rand_poly(&mut rng, lb).mul(&common);
        prop_assume!(!a.is_zero() && !b.is_zero());
        let (g, u, v) = a.xgcd(&b);
        prop_assert_eq!(u.mul(&a).add(&v.mul(&b)), g.clone());
        let (gn, un, vn) = naive::xgcd(&a, &b);
        prop_assert_eq!(un.mul(&a).add(&vn.mul(&b)), gn.clone());
        // same gcd up to a nonzero scalar: degrees agree and each divides
        // the other side's inputs
        prop_assert_eq!(g.degree(), gn.degree());
        prop_assert!(g.degree() >= common.degree());
        prop_assert!(a.divrem(&g).1.is_zero());
        prop_assert!(b.divrem(&g).1.is_zero());
    }

    /// Coprime characteristic polynomials (the Acc1 case): constant gcd
    /// and minimal Bézout degrees on both sides of the size threshold.
    #[test]
    fn xgcd_char_poly_disjoint_supports(seed in 0u64..u64::MAX,
                                        n1 in 1usize..100, n2 in 1usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p1 = Poly::char_poly((0..n1).map(|_| (Fr::random(&mut rng), 1)));
        let p2 = Poly::char_poly((0..n2).map(|_| (Fr::random(&mut rng), 1)));
        let (g, u, v) = p1.xgcd(&p2);
        // random 255-bit roots never collide
        prop_assert_eq!(g.degree(), Some(0));
        prop_assert_eq!(u.mul(&p1).add(&v.mul(&p2)), g);
        prop_assert!(u.degree() < p2.degree());
        prop_assert!(v.degree() < p1.degree());
    }
}

// ---------------------------------------------------------------------
// Degree and edge cases (deterministic)
// ---------------------------------------------------------------------

#[test]
fn char_poly_empty_set_is_one() {
    assert_eq!(Poly::char_poly(std::iter::empty()), Poly::one());
    assert_eq!(Poly::char_poly_distinct(std::iter::empty()), Ok(Poly::one()));
    assert_eq!(Poly::char_poly(std::iter::empty()).degree(), Some(0));
}

#[test]
fn char_poly_singleton_is_linear() {
    let x = Fr::from_u64(77);
    let p = Poly::char_poly([(x, 1)].into_iter());
    assert_eq!(p.degree(), Some(1));
    assert_eq!(p.coeffs(), &[x, Fr::from_u64(1)]);
    assert!(p.eval(&-x).is_zero());
}

#[test]
fn char_poly_distinct_rejects_duplicate_elements() {
    let dup = Fr::from_u64(9);
    assert_eq!(Poly::char_poly_distinct([dup, Fr::from_u64(1), dup]), Err(DuplicateElement));
    // …while the multiset builder treats the repeat as a multiplicity
    let with_mult = Poly::char_poly([(dup, 2), (Fr::from_u64(1), 1)].into_iter());
    assert_eq!(with_mult.degree(), Some(3));
}

// Guards against someone raising a threshold past the proptest size
// ranges above, which would silently stop covering the fast paths.
const _: () = assert!(KARATSUBA_THRESHOLD < 200);
const _: () = assert!(HALF_GCD_THRESHOLD < 160);

#[test]
fn zero_and_degenerate_xgcd() {
    let a = Poly::from_coeffs(vec![Fr::from_u64(3), Fr::from_u64(1)]);
    // gcd(a, 0) = a with trivial cofactors
    let (g, u, v) = a.xgcd(&Poly::zero());
    assert_eq!(g, a);
    assert_eq!(u.mul(&a).add(&v.mul(&Poly::zero())), g);
    // gcd(0, 0) = 0
    let (g0, _, _) = Poly::zero().xgcd(&Poly::zero());
    assert!(g0.is_zero());
}
