//! Construction 1: the q-SDH multiset accumulator (Papamanthou et al.,
//! CRYPTO'11; paper §5.2.1).
//!
//! * `acc(X) = g₁^{P_X(s)}` where `P_X(s) = ∏_{x∈X} (x + s)` (with
//!   multiplicity), computed from the public powers `g₁^{sⁱ}` only.
//! * `ProveDisjoint` finds Bézout polynomials `Q₁, Q₂` with
//!   `P₁Q₁ + P₂Q₂ = 1` and publishes `(F₁*, F₂*) = (g₂^{Q₁(s)}, g₂^{Q₂(s)})`.
//! * `VerifyDisjoint` checks `e(acc(X₁), F₁*) · e(acc(X₂), F₂*) = e(g₁, g₂)`.
//!
//! On the asymmetric BLS12-381, values live in `G1` and proof components in
//! `G2`; the pairing equation is otherwise the paper's.

use std::sync::Arc;

use rand::Rng;
use vchain_bigint::U256;
use vchain_pairing::{
    multi_pairing, pairing, CurveSpec, Field, Fr, G1Affine, G1Projective, G1Spec, G2Affine,
    G2Projective, G2Spec, Gt, PowersCombCache,
};

use crate::poly::Poly;
use crate::{batch_coefficients_ctx, AccElem, AccError, Accumulator, MultiSet};

/// Comb tables are precomputed for at most this many public-key powers per
/// source group (lazily, as commitments actually need them); commitments
/// of higher degree fall back to the generic Pippenger multi-exponentiation.
/// 1024 bounds the per-key table memory at ~50 MiB in `G2` while covering
/// every multiset size the vChain workloads commit.
pub const COMB_PREFIX_LIMIT: usize = 1024;

/// The accumulative value `acc(X) ∈ G1` (a block's AttDigest under acc1).
pub type Acc1Value = G1Affine;

/// A disjointness witness `(F₁*, F₂*) ∈ G2²`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Acc1Proof {
    /// `F₁* = g₂^{Q₁(s)}`.
    pub f1: G2Affine,
    /// `F₂* = g₂^{Q₂(s)}`.
    pub f2: G2Affine,
}

/// Public parameters: powers of the trapdoor in both source groups, plus
/// the lazily-built fixed-base comb tables that make committing against
/// those powers cheap (see [`vchain_pairing::comb`]).
pub struct Acc1PublicKey {
    /// `g₁^{sⁱ}` for `i = 0..=capacity`.
    pub g1_powers: Vec<G1Projective>,
    /// `g₂^{sⁱ}` for `i = 0..=capacity`.
    pub g2_powers: Vec<G2Projective>,
    /// `e(g₁, g₂)`, the right-hand side of the verification equation.
    pub gt_gen: Gt,
    /// Comb tables over a prefix of [`Acc1PublicKey::g1_powers`] (setup
    /// commitments).
    pub g1_combs: PowersCombCache<G1Spec>,
    /// Comb tables over a prefix of [`Acc1PublicKey::g2_powers`] (the two
    /// Bézout commitments of every disjointness proof).
    pub g2_combs: PowersCombCache<G2Spec>,
}

impl Acc1PublicKey {
    /// Maximum accumulatable multiset cardinality.
    pub fn capacity(&self) -> usize {
        self.g1_powers.len() - 1
    }
}

/// Construction 1 handle. Cloning shares the public key.
#[derive(Clone)]
pub struct Acc1 {
    pk: Arc<Acc1PublicKey>,
    /// The trapdoor, retained by the simulation's key generator. It is
    /// *never* used for proving or verifying; with `fast_setup` it shortcuts
    /// `Setup` from `O(n²)` to `O(n)` when the experiment being run does not
    /// measure setup cost (see DESIGN.md §2).
    sk: Option<Fr>,
    fast_setup: bool,
}

impl Acc1 {
    /// `KeyGen(1^λ)`: sample the trapdoor and publish `capacity + 1` powers.
    ///
    /// The power vectors are produced through the generator combs
    /// ([`vchain_pairing::generator_powers`]) — the same fixed-base layer
    /// the commitments use — instead of the per-scalar window walk
    /// retained as [`fixed_base_batch`] (the property-tested reference).
    pub fn keygen<R: Rng + ?Sized>(capacity: usize, rng: &mut R) -> Self {
        let s = Fr::random(rng);
        let scalars = power_scalars(&s, capacity + 1);
        let g1_powers = vchain_pairing::generator_powers::<G1Spec>(&scalars);
        let g2_powers = vchain_pairing::generator_powers::<G2Spec>(&scalars);
        let gt_gen =
            pairing(&G1Projective::generator().to_affine(), &G2Projective::generator().to_affine());
        let comb_limit = (capacity + 1).min(COMB_PREFIX_LIMIT);
        Self {
            pk: Arc::new(Acc1PublicKey {
                g1_powers,
                g2_powers,
                gt_gen,
                g1_combs: PowersCombCache::new(comb_limit),
                g2_combs: PowersCombCache::new(comb_limit),
            }),
            sk: Some(s),
            fast_setup: false,
        }
    }

    /// Enable / disable the trapdoor fast path for `Setup`.
    pub fn with_fast_setup(mut self, enabled: bool) -> Self {
        assert!(!enabled || self.sk.is_some(), "fast setup requires the trapdoor");
        self.fast_setup = enabled;
        self
    }

    /// The published parameters.
    pub fn public_key(&self) -> &Acc1PublicKey {
        &self.pk
    }

    fn char_poly<E: AccElem>(x: &MultiSet<E>) -> Poly {
        x.char_poly()
    }

    /// Commit to a polynomial in `G1` using the public powers:
    /// `g₁^{p(s)} = Π (g₁^{sⁱ})^{cᵢ}`, computed through the key's comb
    /// tables. This is the `Setup` half of Construction 1; it is public
    /// (no trapdoor) and errors when `deg p` exceeds the key capacity.
    pub fn commit_g1(&self, p: &Poly) -> Result<G1Projective, AccError> {
        self.commit(p, &self.pk.g1_powers, &self.pk.g1_combs)
    }

    /// Commit to a polynomial in `G2` — the proof half of Construction 1:
    /// both Bézout polynomials of a disjointness witness are committed
    /// here. Exposed so benchmarks can time the commitment phase apart
    /// from the polynomial phase.
    pub fn commit_g2(&self, p: &Poly) -> Result<G2Projective, AccError> {
        self.commit(p, &self.pk.g2_powers, &self.pk.g2_combs)
    }

    fn commit<S: vchain_pairing::CurveSpec>(
        &self,
        p: &Poly,
        powers: &[vchain_pairing::Projective<S>],
        combs: &PowersCombCache<S>,
    ) -> Result<vchain_pairing::Projective<S>, AccError> {
        let n = p.coeffs().len();
        if n > powers.len() {
            return Err(AccError::CapacityExceeded { needed: n - 1, capacity: powers.len() - 1 });
        }
        let scalars: Vec<U256> = p.coeffs().iter().map(|c| c.to_uint()).collect();
        Ok(combs.multiexp(powers, &scalars))
    }

    /// The per-clause half of proving: Bézout polynomials against the
    /// (precomputed) `X₁` characteristic polynomial, then two `G2` commits.
    fn finalize_from_poly<E: AccElem>(
        &self,
        p1: &Poly,
        x2: &MultiSet<E>,
    ) -> Result<Acc1Proof, AccError> {
        let p2 = Self::char_poly(x2);
        let (g, u, v) = p1.xgcd(&p2);
        // disjoint supports => coprime characteristic polynomials
        debug_assert_eq!(g.degree(), Some(0), "coprime polynomials expected");
        let ginv = g.coeffs()[0].inverse().expect("nonzero gcd");
        let q1 = u.scale(&ginv);
        let q2 = v.scale(&ginv);
        Ok(Acc1Proof { f1: self.commit_g2(&q1)?.to_affine(), f2: self.commit_g2(&q2)?.to_affine() })
    }
}

impl Accumulator for Acc1 {
    type Value = Acc1Value;
    type Proof = Acc1Proof;

    fn name(&self) -> &'static str {
        "acc1"
    }

    fn try_setup<E: AccElem>(&self, x: &MultiSet<E>) -> Result<Acc1Value, AccError> {
        let needed = x.total_count() as usize; // char-poly degree
        let capacity = self.pk.capacity();
        if needed > capacity {
            return Err(AccError::CapacityExceeded { needed, capacity });
        }
        if self.fast_setup {
            if let Some(s) = &self.sk {
                // P_X(s) evaluated directly with the trapdoor: O(|X|).
                let mut acc = Fr::one();
                for (e, c) in x.iter() {
                    let term = e.to_fr() + *s;
                    acc = Field::mul(&acc, &term.pow_limbs(&[c]));
                }
                return Ok(G1Projective::generator().mul_fr(&acc).to_affine());
            }
        }
        let p = Self::char_poly(x);
        Ok(self.commit_g1(&p)?.to_affine())
    }

    fn prove_disjoint<E: AccElem>(
        &self,
        x1: &MultiSet<E>,
        x2: &MultiSet<E>,
    ) -> Result<Acc1Proof, AccError> {
        if x1.intersects(x2) {
            return Err(AccError::NotDisjoint);
        }
        self.finalize_from_poly(&Self::char_poly(x1), x2)
    }

    fn prove_disjoint_many<E: AccElem>(
        &self,
        x1: &MultiSet<E>,
        clauses: &[MultiSet<E>],
    ) -> Result<Vec<Acc1Proof>, AccError> {
        // The X₁-side witness — its characteristic polynomial, the largest
        // subproduct tree of proving — is computed once and shared by every
        // clause; each clause then pays only its own xgcd and two commits.
        let p1 = Self::char_poly(x1);
        clauses
            .iter()
            .map(|x2| {
                if x1.intersects(x2) {
                    return Err(AccError::NotDisjoint);
                }
                self.finalize_from_poly(&p1, x2)
            })
            .collect()
    }

    fn prove_disjoint_each<E: AccElem>(
        &self,
        x1: &MultiSet<E>,
        clauses: &[MultiSet<E>],
    ) -> Vec<Result<Acc1Proof, AccError>> {
        // Same shared characteristic polynomial as `prove_disjoint_many`,
        // but an intersecting clause fails alone instead of aborting all.
        let p1 = Self::char_poly(x1);
        clauses
            .iter()
            .map(|x2| {
                if x1.intersects(x2) {
                    return Err(AccError::NotDisjoint);
                }
                self.finalize_from_poly(&p1, x2)
            })
            .collect()
    }

    fn verify_disjoint(&self, a1: &Acc1Value, a2: &Acc1Value, proof: &Acc1Proof) -> bool {
        // e(acc(X1), F1) · e(acc(X2), F2) == e(g1, g2)
        let lhs = multi_pairing(&[(*a1, proof.f1), (*a2, proof.f2)]);
        lhs == self.pk.gt_gen
    }

    /// Random-linear-combination batch verification: every valid triple
    /// satisfies `e(a1ᵢ, F1ᵢ)·e(a2ᵢ, F2ᵢ) = e(g1, g2)`, so for transcript-
    /// derived coefficients `ρᵢ` the single aggregated check
    ///
    /// ```text
    /// Π e(ρᵢ·a1ᵢ, F1ᵢ)·e(ρᵢ·a2ᵢ, F2ᵢ) · e(−(Σρᵢ)·g1, g2) = 1
    /// ```
    ///
    /// folds the whole batch into one `2n+1`-pair multi-pairing: one shared
    /// Miller loop and one final exponentiation instead of `n`. The
    /// coefficients `ρᵢ` come from the shared [`batch_coefficients_ctx`]
    /// transcript derivation.
    fn batch_verify_disjoint(&self, items: &[(Acc1Value, Acc1Value, Acc1Proof)]) -> bool {
        self.batch_verify_disjoint_ctx(&[], items)
    }

    fn batch_verify_disjoint_ctx(
        &self,
        context: &[u8],
        items: &[(Acc1Value, Acc1Value, Acc1Proof)],
    ) -> bool {
        match items {
            [] => true,
            [(a1, a2, proof)] => self.verify_disjoint(a1, a2, proof),
            _ => {
                let rho = batch_coefficients_ctx::<Self>(context, items);
                let mut pairs = Vec::with_capacity(2 * items.len() + 1);
                let mut rho_sum = Fr::zero();
                for ((a1, a2, proof), r) in items.iter().zip(&rho) {
                    let k = r.to_uint();
                    pairs.push((a1.to_projective().mul_u256(&k).to_affine(), proof.f1));
                    pairs.push((a2.to_projective().mul_u256(&k).to_affine(), proof.f2));
                    rho_sum += *r;
                }
                pairs.push((
                    G1Projective::generator_mul_fr(&rho_sum).neg().to_affine(),
                    G2Projective::generator().to_affine(),
                ));
                multi_pairing(&pairs).is_one()
            }
        }
    }

    fn value_bytes(v: &Acc1Value) -> Vec<u8> {
        v.to_bytes()
    }

    fn proof_bytes(p: &Acc1Proof) -> Vec<u8> {
        let mut out = p.f1.to_bytes();
        out.extend_from_slice(&p.f2.to_bytes());
        out
    }

    fn value_size(&self) -> usize {
        G1Spec::COMPRESSED_BYTES // one compressed G1 point
    }

    fn proof_size(&self) -> usize {
        2 * G2Spec::COMPRESSED_BYTES // two compressed G2 points
    }

    fn value_from_bytes(&self, bytes: &[u8]) -> Result<Acc1Value, crate::DecodeError> {
        if bytes.len() != self.value_size() {
            return Err(crate::DecodeError::Length {
                expected: self.value_size(),
                got: bytes.len(),
            });
        }
        crate::decode_slot::<G1Spec>(bytes, 0)
    }

    fn proof_from_bytes(&self, bytes: &[u8]) -> Result<Acc1Proof, crate::DecodeError> {
        if bytes.len() != self.proof_size() {
            return Err(crate::DecodeError::Length {
                expected: self.proof_size(),
                got: bytes.len(),
            });
        }
        let n = G2Spec::COMPRESSED_BYTES;
        Ok(Acc1Proof {
            f1: crate::decode_slot::<G2Spec>(&bytes[..n], 0)?,
            f2: crate::decode_slot::<G2Spec>(&bytes[n..], 1)?,
        })
    }
}

/// `s⁰, s¹, …, s^{n-1}` as canonical integers.
fn power_scalars(s: &Fr, n: usize) -> Vec<U256> {
    let mut out = Vec::with_capacity(n);
    let mut cur = Fr::one();
    for _ in 0..n {
        out.push(cur.to_uint());
        cur = Field::mul(&cur, s);
    }
    out
}

/// Fixed-base batch multiplication: precompute the `2ⁱ·g` table once, then
/// each scalar costs only additions. The pre-comb key-generation path,
/// retained as the reference implementation the shared comb layer is
/// pinned against (tests and the `acc_keygen_powers_*_naive` bench twin).
pub fn fixed_base_batch<S: vchain_pairing::CurveSpec>(
    g: &vchain_pairing::Projective<S>,
    scalars: &[U256],
) -> Vec<vchain_pairing::Projective<S>> {
    let mut table = Vec::with_capacity(256);
    let mut cur = *g;
    for _ in 0..256 {
        table.push(cur);
        cur = cur.double();
    }
    scalars
        .iter()
        .map(|k| {
            let mut acc = vchain_pairing::Projective::<S>::identity();
            for (i, t) in table.iter().enumerate() {
                if k.bit(i as u32) {
                    acc = acc.add(t);
                }
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn acc() -> Acc1 {
        Acc1::keygen(32, &mut StdRng::seed_from_u64(11))
    }

    fn ms(v: &[u64]) -> MultiSet<u64> {
        v.iter().copied().collect()
    }

    #[test]
    fn disjoint_round_trip() {
        let a = acc();
        let x1 = ms(&[1, 2, 3]);
        let x2 = ms(&[4, 5]);
        let v1 = a.setup(&x1);
        let v2 = a.setup(&x2);
        let proof = a.prove_disjoint(&x1, &x2).unwrap();
        assert!(a.verify_disjoint(&v1, &v2, &proof));
    }

    #[test]
    fn intersecting_sets_rejected_at_prove_time() {
        let a = acc();
        assert_eq!(
            a.prove_disjoint(&ms(&[1, 2]), &ms(&[2, 3])).unwrap_err(),
            AccError::NotDisjoint
        );
    }

    #[test]
    fn proof_does_not_verify_against_wrong_value() {
        let a = acc();
        let x1 = ms(&[1, 2, 3]);
        let x2 = ms(&[4, 5]);
        let x3 = ms(&[6, 7]);
        let proof = a.prove_disjoint(&x1, &x2).unwrap();
        let v1 = a.setup(&x1);
        let v3 = a.setup(&x3);
        assert!(!a.verify_disjoint(&v1, &v3, &proof), "proof bound to X2 must not verify for X3");
    }

    #[test]
    fn forged_proof_fails() {
        let a = acc();
        let x1 = ms(&[1, 2]);
        let x2 = ms(&[3]);
        let v1 = a.setup(&x1);
        let v2 = a.setup(&x2);
        let forged = Acc1Proof {
            f1: G2Projective::generator().mul_u64(123).to_affine(),
            f2: G2Projective::generator().mul_u64(456).to_affine(),
        };
        assert!(!a.verify_disjoint(&v1, &v2, &forged));
    }

    #[test]
    fn fast_setup_matches_honest_setup() {
        let a = acc();
        let fast = a.clone().with_fast_setup(true);
        let x = ms(&[5, 5, 9, 31]); // multiplicity included
        assert_eq!(a.setup(&x), fast.setup(&x));
    }

    #[test]
    fn setup_deterministic_and_order_independent() {
        let a = acc();
        let x1: MultiSet<u64> = [3u64, 1, 2].into_iter().collect();
        let x2: MultiSet<u64> = [2u64, 3, 1].into_iter().collect();
        assert_eq!(a.setup(&x1), a.setup(&x2));
    }

    #[test]
    fn empty_set_is_disjoint_with_everything() {
        let a = acc();
        let empty = ms(&[]);
        let x = ms(&[1]);
        let proof = a.prove_disjoint(&empty, &x).unwrap();
        assert!(a.verify_disjoint(&a.setup(&empty), &a.setup(&x), &proof));
    }

    #[test]
    fn multiplicities_affect_value_but_not_disjointness() {
        let a = acc();
        let x1 = ms(&[1, 1]);
        let x2 = ms(&[1]);
        assert_ne!(a.setup(&x1), a.setup(&x2));
        let y = ms(&[9, 9, 9]);
        let proof = a.prove_disjoint(&x1, &y).unwrap();
        assert!(a.verify_disjoint(&a.setup(&x1), &a.setup(&y), &proof));
    }

    #[test]
    fn capacity_errors() {
        let small = Acc1::keygen(2, &mut StdRng::seed_from_u64(3));
        let big = ms(&[1, 2, 3, 4, 5]);
        let other = ms(&[9]);
        // prove_disjoint commits to Bézout polys with degree < |other| so it
        // is fine, but committing the char poly of `big` overflows.
        let p = Poly::char_poly(big.iter().map(|(e, c)| (AccElem::to_fr(e), c)));
        assert!(matches!(small.commit_g1(&p), Err(AccError::CapacityExceeded { .. })));
        // and the other direction still works
        let _ = small.prove_disjoint(&other, &ms(&[1])).unwrap();
    }

    #[test]
    fn reported_sizes_match_serialization() {
        let a = acc();
        let x1 = ms(&[1, 2]);
        let x2 = ms(&[3]);
        let v = a.setup(&x1);
        let proof = a.prove_disjoint(&x1, &x2).unwrap();
        assert_eq!(Acc1::value_bytes(&v).len(), a.value_size());
        assert_eq!(Acc1::proof_bytes(&proof).len(), a.proof_size());
    }

    fn batch(a: &Acc1, specs: &[(&[u64], &[u64])]) -> Vec<(Acc1Value, Acc1Value, Acc1Proof)> {
        specs
            .iter()
            .map(|(x, y)| {
                let (x, y) = (ms(x), ms(y));
                (a.setup(&x), a.setup(&y), a.prove_disjoint(&x, &y).unwrap())
            })
            .collect()
    }

    #[test]
    fn batch_verify_accepts_valid_batches() {
        let a = acc();
        let items = batch(&a, &[(&[1, 2], &[3, 4]), (&[5], &[6, 7]), (&[8, 8], &[9])]);
        assert!(a.batch_verify_disjoint(&items));
        assert!(a.batch_verify_disjoint(&[])); // empty batch is vacuously true
        assert!(a.batch_verify_disjoint(&items[..1])); // single-item fast path
    }

    #[test]
    fn batch_verify_rejects_one_forged_member() {
        let a = acc();
        let mut items = batch(&a, &[(&[1, 2], &[3, 4]), (&[5], &[6, 7]), (&[8], &[9])]);
        // forge only the middle proof, keep the rest honest
        items[1].2 =
            Acc1Proof { f1: G2Projective::generator().mul_u64(77).to_affine(), f2: items[1].2.f2 };
        assert!(!a.batch_verify_disjoint(&items));
        // a mismatched (value, proof) pairing is also caught
        let mut swapped = batch(&a, &[(&[1], &[2]), (&[3], &[4])]);
        let p0 = swapped[0].2.clone();
        swapped[0].2 = swapped[1].2.clone();
        swapped[1].2 = p0;
        assert!(!a.batch_verify_disjoint(&swapped));
    }

    #[test]
    fn try_setup_errors_instead_of_panicking() {
        let small = Acc1::keygen(2, &mut StdRng::seed_from_u64(3));
        assert!(matches!(
            small.try_setup(&ms(&[1, 2, 3, 4, 5])),
            Err(AccError::CapacityExceeded { needed: 5, capacity: 2 })
        ));
        // multiplicity counts toward the degree bound
        assert!(small.try_setup(&ms(&[1, 1, 1])).is_err());
        assert_eq!(small.try_setup(&ms(&[1, 2])).unwrap(), small.setup(&ms(&[1, 2])));
        // the fast-setup path enforces the same bound as the honest commit
        let fast = small.with_fast_setup(true);
        assert!(fast.try_setup(&ms(&[1, 2, 3])).is_err());
    }

    #[test]
    fn wire_decode_round_trips_and_rejects_corruption() {
        let a = acc();
        let x1 = ms(&[1, 2]);
        let x2 = ms(&[3]);
        let v = a.setup(&x1);
        let proof = a.prove_disjoint(&x1, &x2).unwrap();

        let vb = Acc1::value_bytes(&v);
        assert_eq!(a.value_from_bytes(&vb).unwrap(), v);
        let pb = Acc1::proof_bytes(&proof);
        assert_eq!(a.proof_from_bytes(&pb).unwrap(), proof);

        // truncation / extension
        assert!(matches!(
            a.value_from_bytes(&vb[..vb.len() - 1]),
            Err(crate::DecodeError::Length { .. })
        ));
        let mut long = pb.clone();
        long.push(0);
        assert!(matches!(a.proof_from_bytes(&long), Err(crate::DecodeError::Length { .. })));

        // corrupting the second proof point attributes to slot 1
        let mut bad = pb.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40; // top coordinate byte → non-canonical or off-curve
        match a.proof_from_bytes(&bad) {
            Err(crate::DecodeError::Point { slot: 1, .. }) => {}
            other => panic!("expected slot-1 point error, got {other:?}"),
        }
    }

    #[test]
    fn aggregation_unsupported() {
        let a = acc();
        assert!(!a.supports_aggregation());
        assert!(matches!(a.sum(&[]), Err(AccError::AggregationUnsupported)));
    }
}
