//! Construction 2: the q-DHE multiset accumulator (Zhang et al.,
//! EuroS&P'17; paper §5.2.2), with the `Sum`/`ProofSum` aggregation
//! primitives that power vChain's online batch verification (§6.3) and the
//! lazy subscription authentication (§7.2).
//!
//! * `acc(X) = (d_A, d_B) = (g₁^{A_X(s)}, g₂^{B_X(s)})` with
//!   `A_X(s) = Σ_{x∈X} s^x` and `B_X(s) = Σ_{x∈X} s^{q−x}` (counted with
//!   multiplicity).
//! * If `X₁ ∩ X₂ = ∅` the product `A_{X₁}(s)·B_{X₂}(s)` has no `s^q` term,
//!   so `π = g₁^{A_{X₁}(s)B_{X₂}(s)}` is computable from the published
//!   powers `g₁^{sⁱ}, i ∈ [0, 2q−2] \ {q}`.
//! * `VerifyDisjoint`: `e(d_A(X₁), d_B(X₂)) = e(π, g₂)`.
//!
//! The public key grows with the *universe size* `q` (every attribute value
//! must map into `[1, q)`), the drawback the paper addresses with a trusted
//! oracle / SGX; our dictionary encoder plays that role (DESIGN.md §2).

use std::sync::Arc;

use rand::Rng;
use vchain_bigint::U256;
use vchain_pairing::{
    multi_pairing, multiexp, CurveSpec, Field, Fr, G1Affine, G1Projective, G1Spec, G2Affine,
    G2Projective, G2Spec,
};

use crate::acc1::fixed_base_batch;
use crate::{rlc_coefficients, AccElem, AccError, Accumulator, MultiSet};

/// The accumulative value `(d_A, d_B)` (a block's AttDigest under acc2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Acc2Value {
    pub da: G1Affine,
    pub db: G2Affine,
}

/// A disjointness witness `π = g₁^{A(X₁)B(X₂)}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Acc2Proof {
    pub pi: G1Affine,
}

/// Public parameters.
pub struct Acc2PublicKey {
    /// The universe bound: element indices must lie in `[1, q)`.
    pub q: u64,
    /// `g₁^{sⁱ}` for `i ∈ [0, 2q−2]`. Index `q` is the *forbidden* power: it
    /// is stored as the identity and must never be consumed (the q-DHE
    /// assumption is precisely that it is hard to compute).
    pub g1_powers: Vec<G1Projective>,
    /// `g₂^{sⁱ}` for `i ∈ [0, q−1]`.
    pub g2_powers: Vec<G2Projective>,
}

/// Construction 2 handle. Cloning shares the public key.
#[derive(Clone)]
pub struct Acc2 {
    pk: Arc<Acc2PublicKey>,
    sk: Option<Fr>,
    fast_setup: bool,
}

impl Acc2 {
    /// `KeyGen(1^λ)` with universe bound `q` (indices in `[1, q)`).
    pub fn keygen<R: Rng + ?Sized>(q: u64, rng: &mut R) -> Self {
        assert!(q >= 2, "universe bound must be at least 2");
        let s = Fr::random(rng);
        let n1 = (2 * q - 1) as usize; // exponents 0..=2q-2
        let mut scalars = Vec::with_capacity(n1);
        let mut cur = Fr::one();
        for i in 0..n1 {
            // poison the forbidden power with scalar 0 => identity point
            scalars.push(if i as u64 == q { U256::ZERO } else { cur.to_uint() });
            cur = Field::mul(&cur, &s);
        }
        let g1_powers = fixed_base_batch(&G1Projective::generator(), &scalars);
        let g2_powers = fixed_base_batch(&G2Projective::generator(), &scalars[..q as usize]);
        Self {
            pk: Arc::new(Acc2PublicKey { q, g1_powers, g2_powers }),
            sk: Some(s),
            fast_setup: false,
        }
    }

    /// Enable / disable the trapdoor fast path for `Setup`.
    pub fn with_fast_setup(mut self, enabled: bool) -> Self {
        assert!(!enabled || self.sk.is_some(), "fast setup requires the trapdoor");
        self.fast_setup = enabled;
        self
    }

    pub fn public_key(&self) -> &Acc2PublicKey {
        &self.pk
    }

    fn check_universe<E: AccElem>(&self, x: &MultiSet<E>) -> Result<(), AccError> {
        for e in x.elements() {
            let idx = e.to_index();
            if idx == 0 || idx >= self.pk.q {
                return Err(AccError::CapacityExceeded {
                    needed: idx as usize,
                    capacity: self.pk.q as usize - 1,
                });
            }
        }
        Ok(())
    }
}

impl Accumulator for Acc2 {
    type Value = Acc2Value;
    type Proof = Acc2Proof;

    fn name(&self) -> &'static str {
        "acc2"
    }

    fn setup<E: AccElem>(&self, x: &MultiSet<E>) -> Acc2Value {
        self.check_universe(x).expect("element index outside acc2 universe; raise keygen q");
        let q = self.pk.q;
        if self.fast_setup {
            if let Some(s) = &self.sk {
                let mut a = Fr::zero();
                let mut b = Fr::zero();
                for (e, c) in x.iter() {
                    let idx = e.to_index();
                    let cf = Fr::from_u64(c);
                    a += Field::mul(&cf, &s.pow_limbs(&[idx]));
                    b += Field::mul(&cf, &s.pow_limbs(&[q - idx]));
                }
                return Acc2Value {
                    da: G1Projective::generator().mul_fr(&a).to_affine(),
                    db: G2Projective::generator().mul_fr(&b).to_affine(),
                };
            }
        }
        // d_A = Π (g1^{s^x})^{c_x} ; d_B = Π (g2^{s^{q-x}})^{c_x}
        let mut da = G1Projective::identity();
        let mut db = G2Projective::identity();
        for (e, c) in x.iter() {
            let idx = e.to_index() as usize;
            let count = U256::from_u64(c);
            da = da.add(&self.pk.g1_powers[idx].mul_u256(&count));
            db = db.add(&self.pk.g2_powers[q as usize - idx].mul_u256(&count));
        }
        Acc2Value { da: da.to_affine(), db: db.to_affine() }
    }

    fn prove_disjoint<E: AccElem>(
        &self,
        x1: &MultiSet<E>,
        x2: &MultiSet<E>,
    ) -> Result<Acc2Proof, AccError> {
        if x1.intersects(x2) {
            return Err(AccError::NotDisjoint);
        }
        self.check_universe(x1)?;
        self.check_universe(x2)?;
        let q = self.pk.q;
        // π = Π_{x∈X1, y∈X2} (g1^{s^{x + q - y}})^{c1(x)·c2(y)}
        let mut bases = Vec::with_capacity(x1.distinct_len() * x2.distinct_len());
        let mut scalars = Vec::with_capacity(bases.capacity());
        for (x, c1) in x1.iter() {
            for (y, c2) in x2.iter() {
                let xi = x.to_index();
                let yi = y.to_index();
                debug_assert_ne!(xi, yi, "disjointness was checked above");
                let exp = (xi + q - yi) as usize;
                bases.push(self.pk.g1_powers[exp]);
                scalars.push(U256::from_u64(c1 * c2));
            }
        }
        Ok(Acc2Proof { pi: multiexp(&bases, &scalars).to_affine() })
    }

    fn verify_disjoint(&self, a1: &Acc2Value, a2: &Acc2Value, proof: &Acc2Proof) -> bool {
        // e(d_A(X1), d_B(X2)) == e(π, g2)  ⇔  e(d_A, d_B) · e(−π, g2) == 1
        let g2 = G2Projective::generator().to_affine();
        multi_pairing(&[(a1.da, a2.db), (proof.pi.neg(), g2)]).is_one()
    }

    /// Random-linear-combination batch verification. Construction 2's
    /// per-triple check is `e(d_A(X₁)ᵢ, d_B(X₂)ᵢ) = e(πᵢ, g₂)`, and all the
    /// proofs pair against the *same* fixed `g₂` — so beyond the shared
    /// Miller loop the proof side collapses into a single multi-exponent:
    ///
    /// ```text
    /// Π e(ρᵢ·d_Aᵢ, d_Bᵢ) · e(−Σρᵢπᵢ, g₂) = 1
    /// ```
    ///
    /// An `n`-batch costs one `n+1`-pair multi-pairing (one final
    /// exponentiation) plus one `n`-term Pippenger multiexp of 128-bit
    /// scalars, versus `n` full pairing checks for the naive loop.
    fn batch_verify_disjoint(&self, items: &[(Acc2Value, Acc2Value, Acc2Proof)]) -> bool {
        match items {
            [] => true,
            [(a1, a2, proof)] => self.verify_disjoint(a1, a2, proof),
            _ => {
                let mut transcript = Vec::new();
                for (a1, a2, proof) in items {
                    transcript.extend_from_slice(&Self::value_bytes(a1));
                    transcript.extend_from_slice(&Self::value_bytes(a2));
                    transcript.extend_from_slice(&Self::proof_bytes(proof));
                }
                let rho = rlc_coefficients(&transcript, items.len());
                let scalars: Vec<U256> = rho.iter().map(Fr::to_uint).collect();
                let mut pairs = Vec::with_capacity(items.len() + 1);
                for ((a1, a2, _), k) in items.iter().zip(&scalars) {
                    pairs.push((a1.da.to_projective().mul_u256(k).to_affine(), a2.db));
                }
                let pis: Vec<G1Projective> =
                    items.iter().map(|(_, _, p)| p.pi.to_projective()).collect();
                let agg_pi = multiexp(&pis, &scalars);
                pairs.push((agg_pi.neg().to_affine(), G2Projective::generator().to_affine()));
                multi_pairing(&pairs).is_one()
            }
        }
    }

    fn value_bytes(v: &Acc2Value) -> Vec<u8> {
        let mut out = v.da.to_bytes();
        out.extend_from_slice(&v.db.to_bytes());
        out
    }

    fn proof_bytes(p: &Acc2Proof) -> Vec<u8> {
        p.pi.to_bytes()
    }

    fn value_size(&self) -> usize {
        G1Spec::COMPRESSED_BYTES + G2Spec::COMPRESSED_BYTES
    }

    fn proof_size(&self) -> usize {
        G1Spec::COMPRESSED_BYTES // one compressed G1 point
    }

    fn supports_aggregation(&self) -> bool {
        true
    }

    fn sum(&self, values: &[Acc2Value]) -> Result<Acc2Value, AccError> {
        let mut da = G1Projective::identity();
        let mut db = G2Projective::identity();
        for v in values {
            da = da.add_affine(&v.da);
            db = db.add(&v.db.to_projective());
        }
        Ok(Acc2Value { da: da.to_affine(), db: db.to_affine() })
    }

    fn proof_sum(&self, proofs: &[Acc2Proof]) -> Result<Acc2Proof, AccError> {
        let mut pi = G1Projective::identity();
        for p in proofs {
            pi = pi.add_affine(&p.pi);
        }
        Ok(Acc2Proof { pi: pi.to_affine() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn acc() -> Acc2 {
        Acc2::keygen(64, &mut StdRng::seed_from_u64(21))
    }

    fn ms(v: &[u64]) -> MultiSet<u64> {
        v.iter().copied().collect()
    }

    #[test]
    fn disjoint_round_trip() {
        let a = acc();
        let x1 = ms(&[1, 2, 3]);
        let x2 = ms(&[10, 20]);
        let proof = a.prove_disjoint(&x1, &x2).unwrap();
        assert!(a.verify_disjoint(&a.setup(&x1), &a.setup(&x2), &proof));
    }

    #[test]
    fn intersecting_sets_rejected() {
        let a = acc();
        assert_eq!(a.prove_disjoint(&ms(&[1, 2]), &ms(&[2])).unwrap_err(), AccError::NotDisjoint);
    }

    #[test]
    fn wrong_value_fails() {
        let a = acc();
        let x1 = ms(&[1, 2]);
        let x2 = ms(&[10]);
        let x3 = ms(&[11]);
        let proof = a.prove_disjoint(&x1, &x2).unwrap();
        assert!(!a.verify_disjoint(&a.setup(&x1), &a.setup(&x3), &proof));
    }

    #[test]
    fn forged_proof_fails() {
        let a = acc();
        let x1 = ms(&[1]);
        let x2 = ms(&[2]);
        let forged = Acc2Proof { pi: G1Projective::generator().mul_u64(7).to_affine() };
        assert!(!a.verify_disjoint(&a.setup(&x1), &a.setup(&x2), &forged));
    }

    #[test]
    fn fast_setup_matches_honest_setup() {
        let a = acc();
        let fast = a.clone().with_fast_setup(true);
        let x = ms(&[5, 5, 9, 31]);
        assert_eq!(a.setup(&x), fast.setup(&x));
    }

    #[test]
    fn sum_equals_setup_of_multiset_sum() {
        let a = acc();
        let x1 = ms(&[1, 2]);
        let x2 = ms(&[2, 3]); // overlapping is fine for Sum
        let direct = a.setup(&x1.sum(&x2));
        let aggregated = a.sum(&[a.setup(&x1), a.setup(&x2)]).unwrap();
        assert_eq!(direct, aggregated);
    }

    #[test]
    fn proof_sum_verifies_against_summed_values() {
        // π1 disjoint(X1, Y), π2 disjoint(X2, Y) =>
        // ProofSum(π1, π2) verifies (Sum(acc(X1), acc(X2)), acc(Y)).
        let a = acc();
        let x1 = ms(&[1, 2]);
        let x2 = ms(&[3]);
        let y = ms(&[20, 21]);
        let p1 = a.prove_disjoint(&x1, &y).unwrap();
        let p2 = a.prove_disjoint(&x2, &y).unwrap();
        let agg_value = a.sum(&[a.setup(&x1), a.setup(&x2)]).unwrap();
        let agg_proof = a.proof_sum(&[p1, p2]).unwrap();
        assert!(a.verify_disjoint(&agg_value, &a.setup(&y), &agg_proof));
        // sanity: aggregate proof equals a direct proof on the summed multiset
        let direct = a.prove_disjoint(&x1.sum(&x2), &y).unwrap();
        assert_eq!(agg_proof, direct);
    }

    #[test]
    fn universe_bound_enforced() {
        let a = acc();
        let out_of_range = ms(&[64]); // q = 64 ⇒ max index 63
        assert!(matches!(
            a.prove_disjoint(&out_of_range, &ms(&[1])),
            Err(AccError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn multiplicities_scale_the_proof() {
        let a = acc();
        let x = ms(&[4, 4]);
        let y = ms(&[9]);
        let proof = a.prove_disjoint(&x, &y).unwrap();
        assert!(a.verify_disjoint(&a.setup(&x), &a.setup(&y), &proof));
    }

    #[test]
    fn reported_sizes_match_serialization() {
        let a = acc();
        let x1 = ms(&[1, 2]);
        let x2 = ms(&[10]);
        let v = a.setup(&x1);
        let proof = a.prove_disjoint(&x1, &x2).unwrap();
        assert_eq!(Acc2::value_bytes(&v).len(), a.value_size());
        assert_eq!(Acc2::proof_bytes(&proof).len(), a.proof_size());
    }

    fn batch(a: &Acc2, specs: &[(&[u64], &[u64])]) -> Vec<(Acc2Value, Acc2Value, Acc2Proof)> {
        specs
            .iter()
            .map(|(x, y)| {
                let (x, y) = (ms(x), ms(y));
                (a.setup(&x), a.setup(&y), a.prove_disjoint(&x, &y).unwrap())
            })
            .collect()
    }

    #[test]
    fn batch_verify_accepts_valid_batches() {
        let a = acc();
        let items = batch(&a, &[(&[1, 2], &[10, 20]), (&[3], &[30]), (&[4, 4], &[9])]);
        assert!(a.batch_verify_disjoint(&items));
        assert!(a.batch_verify_disjoint(&[]));
        assert!(a.batch_verify_disjoint(&items[..1]));
    }

    #[test]
    fn batch_verify_rejects_one_forged_member() {
        let a = acc();
        let mut items = batch(&a, &[(&[1, 2], &[10, 20]), (&[3], &[30]), (&[4], &[9])]);
        items[2].2 = Acc2Proof { pi: G1Projective::generator().mul_u64(13).to_affine() };
        assert!(!a.batch_verify_disjoint(&items));
        // swapping two otherwise-valid proofs must also fail
        let mut swapped = batch(&a, &[(&[1], &[10]), (&[2], &[20])]);
        let p0 = swapped[0].2;
        swapped[0].2 = swapped[1].2;
        swapped[1].2 = p0;
        assert!(!a.batch_verify_disjoint(&swapped));
    }

    #[test]
    fn forbidden_power_is_poisoned() {
        let a = acc();
        assert!(a.pk.g1_powers[a.pk.q as usize].is_identity());
    }
}
