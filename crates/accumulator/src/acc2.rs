//! Construction 2: the q-DHE multiset accumulator (Zhang et al.,
//! EuroS&P'17; paper §5.2.2), with the `Sum`/`ProofSum` aggregation
//! primitives that power vChain's online batch verification (§6.3) and the
//! lazy subscription authentication (§7.2).
//!
//! * `acc(X) = (d_A, d_B) = (g₁^{A_X(s)}, g₂^{B_X(s)})` with
//!   `A_X(s) = Σ_{x∈X} s^x` and `B_X(s) = Σ_{x∈X} s^{q−x}` (counted with
//!   multiplicity).
//! * If `X₁ ∩ X₂ = ∅` the product `A_{X₁}(s)·B_{X₂}(s)` has no `s^q` term,
//!   so `π = g₁^{A_{X₁}(s)B_{X₂}(s)}` is computable from the published
//!   powers `g₁^{sⁱ}, i ∈ [0, 2q−2] \ {q}`.
//! * `VerifyDisjoint`: `e(d_A(X₁), d_B(X₂)) = e(π, g₂)`.
//!
//! The SP-side proving path is split in two (see [`Acc2Witness`]): the
//! `X₁`-side coefficient extraction is reusable across every clause of one
//! query, and the per-clause finalization first *convolves exponents* —
//! `π`'s exponent polynomial is `A_{X₁}(s)·B_{X₂}(s)`, so colliding terms
//! `x + q − y` merge into one integer coefficient before any point work —
//! and then sums the (overwhelmingly unit-coefficient) powers with
//! batched-affine additions. Both effects cut cold `ProveDisjoint` well
//! below the naive one-point-per-(x,y)-pair multi-exponentiation.
//!
//! The public key grows with the *universe size* `q` (every attribute value
//! must map into `[1, q)`), the drawback the paper addresses with a trusted
//! oracle / SGX; our dictionary encoder plays that role (DESIGN.md §2).

use std::collections::BTreeMap;
use std::sync::Arc;

use rand::Rng;
use vchain_bigint::U256;
use vchain_pairing::{
    multi_pairing, multiexp, sum_affine, CurveSpec, Field, Fr, G1Affine, G1Projective, G1Spec,
    G2Affine, G2Projective, G2Spec,
};

use crate::{batch_coefficients_ctx, AccElem, AccError, Accumulator, MultiSet};

/// The accumulative value `(d_A, d_B)` (a block's AttDigest under acc2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Acc2Value {
    /// `d_A = g₁^{A_X(s)}`.
    pub da: G1Affine,
    /// `d_B = g₂^{B_X(s)}`.
    pub db: G2Affine,
}

/// A disjointness witness `π = g₁^{A(X₁)B(X₂)}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Acc2Proof {
    /// The single-`G1` proof point.
    pub pi: G1Affine,
}

/// Public parameters. Powers are stored in affine form: the prove/setup
/// paths consume them via batched-affine summation, and affine bases also
/// make the occasional mixed addition cheaper.
pub struct Acc2PublicKey {
    /// The universe bound: element indices must lie in `[1, q)`.
    pub q: u64,
    /// `g₁^{sⁱ}` for `i ∈ [0, 2q−2]`. Index `q` is the *forbidden* power: it
    /// is stored as the identity and must never be consumed (the q-DHE
    /// assumption is precisely that it is hard to compute).
    pub g1_powers: Vec<G1Affine>,
    /// `g₂^{sⁱ}` for `i ∈ [0, q−1]`.
    pub g2_powers: Vec<G2Affine>,
}

/// The reusable `X₁`-side state of a disjointness proof: the coefficient
/// vector of `A_{X₁}(s)`, checked against the universe bound once. One
/// witness serves every clause of a query via [`Acc2::finalize_proof`].
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use vchain_acc::{Acc2, Accumulator, MultiSet};
///
/// let acc = Acc2::keygen(64, &mut StdRng::seed_from_u64(5));
/// let node: MultiSet<u64> = [1u64, 2, 3].into_iter().collect();
/// let witness = acc.prove_witness(&node).unwrap();
/// for clause in [[10u64, 11], [20u64, 21]] {
///     let clause: MultiSet<u64> = clause.into_iter().collect();
///     let proof = acc.finalize_proof(&witness, &clause).unwrap();
///     assert_eq!(proof, acc.prove_disjoint(&node, &clause).unwrap());
/// }
/// ```
#[derive(Clone, Debug)]
pub struct Acc2Witness {
    /// `(element index, multiplicity)` of `X₁`, ascending by index.
    coeffs: Vec<(u64, u64)>,
}

/// Construction 2 handle. Cloning shares the public key.
#[derive(Clone)]
pub struct Acc2 {
    pk: Arc<Acc2PublicKey>,
    sk: Option<Fr>,
    fast_setup: bool,
}

impl Acc2 {
    /// `KeyGen(1^λ)` with universe bound `q` (indices in `[1, q)`).
    pub fn keygen<R: Rng + ?Sized>(q: u64, rng: &mut R) -> Self {
        assert!(q >= 2, "universe bound must be at least 2");
        let s = Fr::random(rng);
        let n1 = (2 * q - 1) as usize; // exponents 0..=2q-2
        let mut scalars = Vec::with_capacity(n1);
        let mut cur = Fr::one();
        for i in 0..n1 {
            // poison the forbidden power with scalar 0 => identity point
            scalars.push(if i as u64 == q { U256::ZERO } else { cur.to_uint() });
            cur = Field::mul(&cur, &s);
        }
        // Powers come from the generator combs — the fixed-base layer both
        // constructions share (see `Acc1::keygen`).
        let g1_powers =
            vchain_pairing::batch_to_affine(&vchain_pairing::generator_powers::<G1Spec>(&scalars));
        let g2_powers = vchain_pairing::batch_to_affine(
            &vchain_pairing::generator_powers::<G2Spec>(&scalars[..q as usize]),
        );
        Self {
            pk: Arc::new(Acc2PublicKey { q, g1_powers, g2_powers }),
            sk: Some(s),
            fast_setup: false,
        }
    }

    /// Enable / disable the trapdoor fast path for `Setup`.
    pub fn with_fast_setup(mut self, enabled: bool) -> Self {
        assert!(!enabled || self.sk.is_some(), "fast setup requires the trapdoor");
        self.fast_setup = enabled;
        self
    }

    /// The published parameters.
    pub fn public_key(&self) -> &Acc2PublicKey {
        &self.pk
    }

    fn check_universe<E: AccElem>(&self, x: &MultiSet<E>) -> Result<(), AccError> {
        for e in x.elements() {
            let idx = e.to_index();
            if idx == 0 || idx >= self.pk.q {
                return Err(AccError::CapacityExceeded {
                    needed: idx as usize,
                    capacity: self.pk.q as usize - 1,
                });
            }
        }
        Ok(())
    }

    /// The reusable half of `ProveDisjoint`: extract (and bound-check) the
    /// `X₁`-side coefficients. Cost is O(|X₁|) integer work — every
    /// per-clause [`Acc2::finalize_proof`] built on the same witness skips
    /// it.
    pub fn prove_witness<E: AccElem>(&self, x1: &MultiSet<E>) -> Result<Acc2Witness, AccError> {
        self.check_universe(x1)?;
        let mut coeffs: Vec<(u64, u64)> = x1.iter().map(|(e, c)| (e.to_index(), c)).collect();
        // The multiset iterates in the element type's `Ord` order, which an
        // `AccElem` impl need not make monotone in `to_index` — sort so the
        // disjointness binary search below is valid unconditionally.
        coeffs.sort_unstable_by_key(|&(i, _)| i);
        Ok(Acc2Witness { coeffs })
    }

    /// The per-clause half of `ProveDisjoint`: convolve the witness with the
    /// clause's exponents and sum the matching public-key powers.
    ///
    /// Duplicate exponents `x + q − y` merge into one integer coefficient
    /// first, so the point work is bounded by the number of *distinct*
    /// exponents (≤ `2q − 3`, typically far below `|X₁|·|X₂|`); unit
    /// coefficients — the overwhelmingly common case — are then added with
    /// the batched-affine ladder ([`sum_affine`]) rather than one-by-one
    /// complete projective additions.
    pub fn finalize_proof<E: AccElem>(
        &self,
        witness: &Acc2Witness,
        x2: &MultiSet<E>,
    ) -> Result<Acc2Proof, AccError> {
        // Disjointness before the universe bound, preserving the historical
        // error precedence: intersecting inputs report `NotDisjoint` even
        // when the clause also contains out-of-range elements.
        for e in x2.elements() {
            if witness.coeffs.binary_search_by_key(&e.to_index(), |&(i, _)| i).is_ok() {
                return Err(AccError::NotDisjoint);
            }
        }
        self.check_universe(x2)?;
        let q = self.pk.q;
        // exponent convolution: coefficient of s^{x+q−y} is Σ c₁(x)·c₂(y)
        let mut conv: BTreeMap<u64, u128> = BTreeMap::new();
        for (y, c2) in x2.iter() {
            let shift = q - y.to_index();
            for &(x, c1) in &witness.coeffs {
                debug_assert_ne!(x + shift, q, "disjointness was checked above");
                *conv.entry(x + shift).or_insert(0) += (c1 as u128) * (c2 as u128);
            }
        }
        let mut units: Vec<G1Affine> = Vec::with_capacity(conv.len());
        let mut bases: Vec<G1Projective> = Vec::new();
        let mut scalars: Vec<U256> = Vec::new();
        for (exp, c) in conv {
            let base = self.pk.g1_powers[exp as usize];
            if c == 1 {
                units.push(base);
            } else {
                bases.push(base.to_projective());
                let mut k = U256::ZERO;
                k.0[0] = c as u64;
                k.0[1] = (c >> 64) as u64;
                scalars.push(k);
            }
        }
        let mut pi = sum_affine(&units);
        if !bases.is_empty() {
            pi = pi.add(&multiexp(&bases, &scalars));
        }
        Ok(Acc2Proof { pi: pi.to_affine() })
    }

    /// Version byte heading every serialized [`Acc2Witness`]; bump on any
    /// layout change so stale persisted witnesses are rejected, not
    /// misread.
    pub const WITNESS_VERSION: u8 = 1;

    /// Canonical bytes of a witness: the version byte, a `u32` coefficient
    /// count, then `(index, multiplicity)` as little-endian `u64` pairs in
    /// ascending index order. `16·|X₁| + 5` bytes total.
    pub fn witness_to_bytes(witness: &Acc2Witness) -> Vec<u8> {
        let mut out = Vec::with_capacity(5 + 16 * witness.coeffs.len());
        out.push(Self::WITNESS_VERSION);
        out.extend_from_slice(
            &u32::try_from(witness.coeffs.len()).unwrap_or(u32::MAX).to_le_bytes(),
        );
        for &(idx, count) in &witness.coeffs {
            out.extend_from_slice(&idx.to_le_bytes());
            out.extend_from_slice(&count.to_le_bytes());
        }
        out
    }

    /// Checked inverse of [`Acc2::witness_to_bytes`] against *this* key:
    /// `None` on any malformation — wrong version, truncated or trailing
    /// bytes, an index outside the key's universe `[1, q)`, a zero
    /// multiplicity, or indices not strictly ascending (the invariant
    /// [`Acc2::finalize_proof`]'s disjointness binary search relies on).
    pub fn witness_from_bytes(&self, bytes: &[u8]) -> Option<Acc2Witness> {
        let (&version, rest) = bytes.split_first()?;
        if version != Self::WITNESS_VERSION {
            return None;
        }
        let (len_bytes, rest) = rest.split_at_checked(4)?;
        let n = u32::from_le_bytes(len_bytes.try_into().ok()?) as usize;
        if rest.len() != n.checked_mul(16)? {
            return None;
        }
        let mut coeffs = Vec::with_capacity(n);
        let mut prev: Option<u64> = None;
        for chunk in rest.chunks_exact(16) {
            let idx = u64::from_le_bytes(chunk.get(..8)?.try_into().ok()?);
            let count = u64::from_le_bytes(chunk.get(8..)?.try_into().ok()?);
            if idx == 0 || idx >= self.pk.q || count == 0 {
                return None;
            }
            if prev.is_some_and(|p| p >= idx) {
                return None;
            }
            prev = Some(idx);
            coeffs.push((idx, count));
        }
        Some(Acc2Witness { coeffs })
    }
}

impl Accumulator for Acc2 {
    type Value = Acc2Value;
    type Proof = Acc2Proof;

    fn name(&self) -> &'static str {
        "acc2"
    }

    fn try_setup<E: AccElem>(&self, x: &MultiSet<E>) -> Result<Acc2Value, AccError> {
        self.check_universe(x)?;
        let q = self.pk.q;
        if self.fast_setup {
            if let Some(s) = &self.sk {
                let mut a = Fr::zero();
                let mut b = Fr::zero();
                for (e, c) in x.iter() {
                    let idx = e.to_index();
                    let cf = Fr::from_u64(c);
                    a += Field::mul(&cf, &s.pow_limbs(&[idx]));
                    b += Field::mul(&cf, &s.pow_limbs(&[q - idx]));
                }
                return Ok(Acc2Value {
                    da: G1Projective::generator().mul_fr(&a).to_affine(),
                    db: G2Projective::generator().mul_fr(&b).to_affine(),
                });
            }
        }
        // d_A = Π (g1^{s^x})^{c_x} ; d_B = Π (g2^{s^{q-x}})^{c_x}.
        // Unit multiplicities (the common case) sum batched-affine.
        let mut da_units: Vec<G1Affine> = Vec::new();
        let mut db_units: Vec<G2Affine> = Vec::new();
        let mut da = G1Projective::identity();
        let mut db = G2Projective::identity();
        for (e, c) in x.iter() {
            let idx = e.to_index() as usize;
            if c == 1 {
                da_units.push(self.pk.g1_powers[idx]);
                db_units.push(self.pk.g2_powers[q as usize - idx]);
            } else {
                let count = U256::from_u64(c);
                da = da.add(&self.pk.g1_powers[idx].to_projective().mul_u256(&count));
                db = db.add(&self.pk.g2_powers[q as usize - idx].to_projective().mul_u256(&count));
            }
        }
        da = da.add(&sum_affine(&da_units));
        db = db.add(&sum_affine(&db_units));
        Ok(Acc2Value { da: da.to_affine(), db: db.to_affine() })
    }

    fn prove_disjoint<E: AccElem>(
        &self,
        x1: &MultiSet<E>,
        x2: &MultiSet<E>,
    ) -> Result<Acc2Proof, AccError> {
        let witness = self.prove_witness(x1)?;
        self.finalize_proof(&witness, x2)
    }

    fn prove_disjoint_many<E: AccElem>(
        &self,
        x1: &MultiSet<E>,
        clauses: &[MultiSet<E>],
    ) -> Result<Vec<Acc2Proof>, AccError> {
        let witness = self.prove_witness(x1)?;
        clauses.iter().map(|c| self.finalize_proof(&witness, c)).collect()
    }

    fn prove_disjoint_each<E: AccElem>(
        &self,
        x1: &MultiSet<E>,
        clauses: &[MultiSet<E>],
    ) -> Vec<Result<Acc2Proof, AccError>> {
        // One shared X₁-side witness; a clause that intersects (or whose
        // convolution overflows the key) fails alone. If the witness itself
        // cannot be built, every clause inherits that error.
        match self.prove_witness(x1) {
            Ok(witness) => clauses.iter().map(|c| self.finalize_proof(&witness, c)).collect(),
            Err(e) => clauses.iter().map(|_| Err(e.clone())).collect(),
        }
    }

    fn witness_bytes<E: AccElem>(&self, x1: &MultiSet<E>) -> Option<Vec<u8>> {
        self.prove_witness(x1).ok().map(|w| Self::witness_to_bytes(&w))
    }

    fn finalize_from_witness_bytes<E: AccElem>(
        &self,
        witness: &[u8],
        clause: &MultiSet<E>,
    ) -> Option<Acc2Proof> {
        let w = self.witness_from_bytes(witness)?;
        self.finalize_proof(&w, clause).ok()
    }

    fn verify_disjoint(&self, a1: &Acc2Value, a2: &Acc2Value, proof: &Acc2Proof) -> bool {
        // e(d_A(X1), d_B(X2)) == e(π, g2)  ⇔  e(d_A, d_B) · e(−π, g2) == 1
        let g2 = G2Projective::generator().to_affine();
        multi_pairing(&[(a1.da, a2.db), (proof.pi.neg(), g2)]).is_one()
    }

    /// Random-linear-combination batch verification. Construction 2's
    /// per-triple check is `e(d_A(X₁)ᵢ, d_B(X₂)ᵢ) = e(πᵢ, g₂)`, and all the
    /// proofs pair against the *same* fixed `g₂` — so beyond the shared
    /// Miller loop the proof side collapses into a single multi-exponent:
    ///
    /// ```text
    /// Π e(ρᵢ·d_Aᵢ, d_Bᵢ) · e(−Σρᵢπᵢ, g₂) = 1
    /// ```
    ///
    /// An `n`-batch costs one `n+1`-pair multi-pairing (one final
    /// exponentiation) plus one `n`-term Pippenger multiexp of 128-bit
    /// scalars, versus `n` full pairing checks for the naive loop. The
    /// coefficients `ρᵢ` come from the shared [`batch_coefficients_ctx`]
    /// transcript derivation.
    fn batch_verify_disjoint(&self, items: &[(Acc2Value, Acc2Value, Acc2Proof)]) -> bool {
        self.batch_verify_disjoint_ctx(&[], items)
    }

    fn batch_verify_disjoint_ctx(
        &self,
        context: &[u8],
        items: &[(Acc2Value, Acc2Value, Acc2Proof)],
    ) -> bool {
        match items {
            [] => true,
            [(a1, a2, proof)] => self.verify_disjoint(a1, a2, proof),
            _ => {
                let rho = batch_coefficients_ctx::<Self>(context, items);
                let scalars: Vec<U256> = rho.iter().map(Fr::to_uint).collect();
                let mut pairs = Vec::with_capacity(items.len() + 1);
                for ((a1, a2, _), k) in items.iter().zip(&scalars) {
                    pairs.push((a1.da.to_projective().mul_u256(k).to_affine(), a2.db));
                }
                let pis: Vec<G1Projective> =
                    items.iter().map(|(_, _, p)| p.pi.to_projective()).collect();
                let agg_pi = multiexp(&pis, &scalars);
                pairs.push((agg_pi.neg().to_affine(), G2Projective::generator().to_affine()));
                multi_pairing(&pairs).is_one()
            }
        }
    }

    fn value_bytes(v: &Acc2Value) -> Vec<u8> {
        let mut out = v.da.to_bytes();
        out.extend_from_slice(&v.db.to_bytes());
        out
    }

    fn proof_bytes(p: &Acc2Proof) -> Vec<u8> {
        p.pi.to_bytes()
    }

    fn value_size(&self) -> usize {
        G1Spec::COMPRESSED_BYTES + G2Spec::COMPRESSED_BYTES
    }

    fn proof_size(&self) -> usize {
        G1Spec::COMPRESSED_BYTES // one compressed G1 point
    }

    fn value_from_bytes(&self, bytes: &[u8]) -> Result<Acc2Value, crate::DecodeError> {
        if bytes.len() != self.value_size() {
            return Err(crate::DecodeError::Length {
                expected: self.value_size(),
                got: bytes.len(),
            });
        }
        let n = G1Spec::COMPRESSED_BYTES;
        Ok(Acc2Value {
            da: crate::decode_slot::<G1Spec>(&bytes[..n], 0)?,
            db: crate::decode_slot::<G2Spec>(&bytes[n..], 1)?,
        })
    }

    fn proof_from_bytes(&self, bytes: &[u8]) -> Result<Acc2Proof, crate::DecodeError> {
        if bytes.len() != self.proof_size() {
            return Err(crate::DecodeError::Length {
                expected: self.proof_size(),
                got: bytes.len(),
            });
        }
        Ok(Acc2Proof { pi: crate::decode_slot::<G1Spec>(bytes, 0)? })
    }

    fn supports_aggregation(&self) -> bool {
        true
    }

    fn sum(&self, values: &[Acc2Value]) -> Result<Acc2Value, AccError> {
        let mut da = G1Projective::identity();
        let mut db = G2Projective::identity();
        for v in values {
            da = da.add_affine(&v.da);
            db = db.add(&v.db.to_projective());
        }
        Ok(Acc2Value { da: da.to_affine(), db: db.to_affine() })
    }

    fn proof_sum(&self, proofs: &[Acc2Proof]) -> Result<Acc2Proof, AccError> {
        let mut pi = G1Projective::identity();
        for p in proofs {
            pi = pi.add_affine(&p.pi);
        }
        Ok(Acc2Proof { pi: pi.to_affine() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn acc() -> Acc2 {
        Acc2::keygen(64, &mut StdRng::seed_from_u64(21))
    }

    fn ms(v: &[u64]) -> MultiSet<u64> {
        v.iter().copied().collect()
    }

    #[test]
    fn disjoint_round_trip() {
        let a = acc();
        let x1 = ms(&[1, 2, 3]);
        let x2 = ms(&[10, 20]);
        let proof = a.prove_disjoint(&x1, &x2).unwrap();
        assert!(a.verify_disjoint(&a.setup(&x1), &a.setup(&x2), &proof));
    }

    #[test]
    fn intersecting_sets_rejected() {
        let a = acc();
        assert_eq!(a.prove_disjoint(&ms(&[1, 2]), &ms(&[2])).unwrap_err(), AccError::NotDisjoint);
    }

    #[test]
    fn witness_reuse_matches_direct_proofs() {
        let a = acc();
        let x1 = ms(&[1, 2, 3, 7, 7]);
        let clauses = vec![ms(&[10, 20]), ms(&[30]), ms(&[10, 31, 32])];
        let w = a.prove_witness(&x1).unwrap();
        for c in &clauses {
            assert_eq!(a.finalize_proof(&w, c).unwrap(), a.prove_disjoint(&x1, c).unwrap());
        }
        let many = a.prove_disjoint_many(&x1, &clauses).unwrap();
        for (p, c) in many.iter().zip(&clauses) {
            assert_eq!(*p, a.prove_disjoint(&x1, c).unwrap());
            assert!(a.verify_disjoint(&a.setup(&x1), &a.setup(c), p));
        }
    }

    #[test]
    fn witness_bytes_round_trip_and_rejection() {
        let a = acc();
        let x1 = ms(&[1, 2, 3, 7, 7]);
        let w = a.prove_witness(&x1).unwrap();
        let bytes = Acc2::witness_to_bytes(&w);
        let back = a.witness_from_bytes(&bytes).unwrap();
        assert_eq!(Acc2::witness_to_bytes(&back), bytes, "decode∘encode identity");

        // wrong version byte
        let mut bad = bytes.clone();
        bad[0] ^= 1;
        assert!(a.witness_from_bytes(&bad).is_none());
        // truncation and trailing bytes
        assert!(a.witness_from_bytes(&bytes[..bytes.len() - 1]).is_none());
        let mut long = bytes.clone();
        long.push(0);
        assert!(a.witness_from_bytes(&long).is_none());
        // out-of-universe index (q = 64)
        let oob = Acc2::witness_to_bytes(&Acc2Witness { coeffs: vec![(64, 1)] });
        assert!(a.witness_from_bytes(&oob).is_none());
        // zero multiplicity and non-ascending indices
        let zero = Acc2::witness_to_bytes(&Acc2Witness { coeffs: vec![(3, 0)] });
        assert!(a.witness_from_bytes(&zero).is_none());
        let unsorted = Acc2::witness_to_bytes(&Acc2Witness { coeffs: vec![(5, 1), (3, 1)] });
        assert!(a.witness_from_bytes(&unsorted).is_none());
        // empty input is not a witness
        assert!(a.witness_from_bytes(&[]).is_none());
    }

    #[test]
    fn finalize_from_witness_bytes_matches_prove_disjoint() {
        let a = acc();
        let x1 = ms(&[1, 2, 3, 7, 7]);
        let wb = a.witness_bytes(&x1).unwrap();
        for c in [ms(&[10, 20]), ms(&[30]), ms(&[10, 31, 32])] {
            let from_bytes = a.finalize_from_witness_bytes(&wb, &c).unwrap();
            let direct = a.prove_disjoint(&x1, &c).unwrap();
            assert_eq!(
                Acc2::proof_bytes(&from_bytes),
                Acc2::proof_bytes(&direct),
                "persisted-witness proofs are byte-identical to cold proofs"
            );
        }
        // an intersecting clause falls back to None, never a wrong proof
        assert!(a.finalize_from_witness_bytes(&wb, &ms(&[2])).is_none());
        // garbage witness bytes likewise
        assert!(a.finalize_from_witness_bytes(b"not a witness", &ms(&[10])).is_none());
    }

    #[test]
    fn prove_disjoint_many_propagates_errors() {
        let a = acc();
        let x1 = ms(&[1, 2]);
        assert_eq!(
            a.prove_disjoint_many(&x1, &[ms(&[10]), ms(&[2])]).unwrap_err(),
            AccError::NotDisjoint
        );
        assert!(matches!(
            a.prove_disjoint_many(&ms(&[64]), &[ms(&[1])]).unwrap_err(),
            AccError::CapacityExceeded { .. }
        ));
    }

    #[test]
    fn exponent_convolution_merges_duplicates() {
        // X1 = {2, 3}, X2 = {10, 11}: exponents {2+q−10, 2+q−11, 3+q−10,
        // 3+q−11} collide pairwise (2−10 = 3−11), so the merged coefficient
        // vector has 3 entries with the middle one = 2. The proof must be
        // identical to the unmerged formulation — verified against setup.
        let a = acc();
        let x1 = ms(&[2, 3]);
        let x2 = ms(&[10, 11]);
        let proof = a.prove_disjoint(&x1, &x2).unwrap();
        assert!(a.verify_disjoint(&a.setup(&x1), &a.setup(&x2), &proof));
    }

    #[test]
    fn wrong_value_fails() {
        let a = acc();
        let x1 = ms(&[1, 2]);
        let x2 = ms(&[10]);
        let x3 = ms(&[11]);
        let proof = a.prove_disjoint(&x1, &x2).unwrap();
        assert!(!a.verify_disjoint(&a.setup(&x1), &a.setup(&x3), &proof));
    }

    #[test]
    fn forged_proof_fails() {
        let a = acc();
        let x1 = ms(&[1]);
        let x2 = ms(&[2]);
        let forged = Acc2Proof { pi: G1Projective::generator().mul_u64(7).to_affine() };
        assert!(!a.verify_disjoint(&a.setup(&x1), &a.setup(&x2), &forged));
    }

    #[test]
    fn fast_setup_matches_honest_setup() {
        let a = acc();
        let fast = a.clone().with_fast_setup(true);
        let x = ms(&[5, 5, 9, 31]);
        assert_eq!(a.setup(&x), fast.setup(&x));
    }

    #[test]
    fn sum_equals_setup_of_multiset_sum() {
        let a = acc();
        let x1 = ms(&[1, 2]);
        let x2 = ms(&[2, 3]); // overlapping is fine for Sum
        let direct = a.setup(&x1.sum(&x2));
        let aggregated = a.sum(&[a.setup(&x1), a.setup(&x2)]).unwrap();
        assert_eq!(direct, aggregated);
    }

    #[test]
    fn proof_sum_verifies_against_summed_values() {
        // π1 disjoint(X1, Y), π2 disjoint(X2, Y) =>
        // ProofSum(π1, π2) verifies (Sum(acc(X1), acc(X2)), acc(Y)).
        let a = acc();
        let x1 = ms(&[1, 2]);
        let x2 = ms(&[3]);
        let y = ms(&[20, 21]);
        let p1 = a.prove_disjoint(&x1, &y).unwrap();
        let p2 = a.prove_disjoint(&x2, &y).unwrap();
        let agg_value = a.sum(&[a.setup(&x1), a.setup(&x2)]).unwrap();
        let agg_proof = a.proof_sum(&[p1, p2]).unwrap();
        assert!(a.verify_disjoint(&agg_value, &a.setup(&y), &agg_proof));
        // sanity: aggregate proof equals a direct proof on the summed multiset
        let direct = a.prove_disjoint(&x1.sum(&x2), &y).unwrap();
        assert_eq!(agg_proof, direct);
    }

    #[test]
    fn universe_bound_enforced() {
        let a = acc();
        let out_of_range = ms(&[64]); // q = 64 ⇒ max index 63
        assert!(matches!(
            a.prove_disjoint(&out_of_range, &ms(&[1])),
            Err(AccError::CapacityExceeded { .. })
        ));
        // Error precedence (pinned): an intersecting clause reports
        // NotDisjoint even when it also contains out-of-range elements.
        assert_eq!(
            a.prove_disjoint(&ms(&[1, 2]), &ms(&[2, 70])).unwrap_err(),
            AccError::NotDisjoint
        );
    }

    #[test]
    fn multiplicities_scale_the_proof() {
        let a = acc();
        let x = ms(&[4, 4]);
        let y = ms(&[9]);
        let proof = a.prove_disjoint(&x, &y).unwrap();
        assert!(a.verify_disjoint(&a.setup(&x), &a.setup(&y), &proof));
    }

    #[test]
    fn reported_sizes_match_serialization() {
        let a = acc();
        let x1 = ms(&[1, 2]);
        let x2 = ms(&[10]);
        let v = a.setup(&x1);
        let proof = a.prove_disjoint(&x1, &x2).unwrap();
        assert_eq!(Acc2::value_bytes(&v).len(), a.value_size());
        assert_eq!(Acc2::proof_bytes(&proof).len(), a.proof_size());
    }

    fn batch(a: &Acc2, specs: &[(&[u64], &[u64])]) -> Vec<(Acc2Value, Acc2Value, Acc2Proof)> {
        specs
            .iter()
            .map(|(x, y)| {
                let (x, y) = (ms(x), ms(y));
                (a.setup(&x), a.setup(&y), a.prove_disjoint(&x, &y).unwrap())
            })
            .collect()
    }

    #[test]
    fn batch_verify_accepts_valid_batches() {
        let a = acc();
        let items = batch(&a, &[(&[1, 2], &[10, 20]), (&[3], &[30]), (&[4, 4], &[9])]);
        assert!(a.batch_verify_disjoint(&items));
        assert!(a.batch_verify_disjoint(&[]));
        assert!(a.batch_verify_disjoint(&items[..1]));
    }

    #[test]
    fn batch_verify_rejects_one_forged_member() {
        let a = acc();
        let mut items = batch(&a, &[(&[1, 2], &[10, 20]), (&[3], &[30]), (&[4], &[9])]);
        items[2].2 = Acc2Proof { pi: G1Projective::generator().mul_u64(13).to_affine() };
        assert!(!a.batch_verify_disjoint(&items));
        // swapping two otherwise-valid proofs must also fail
        let mut swapped = batch(&a, &[(&[1], &[10]), (&[2], &[20])]);
        let p0 = swapped[0].2;
        swapped[0].2 = swapped[1].2;
        swapped[1].2 = p0;
        assert!(!a.batch_verify_disjoint(&swapped));
    }

    #[test]
    fn attributed_batch_names_the_forged_item() {
        let a = acc();
        let mut items = batch(&a, &[(&[1], &[10]), (&[2], &[20]), (&[3], &[30])]);
        assert_eq!(a.batch_verify_disjoint_attributed(&items), Ok(()));
        items[1].2 = Acc2Proof { pi: G1Projective::generator().mul_u64(99).to_affine() };
        assert_eq!(a.batch_verify_disjoint_attributed(&items), Err(1));
    }

    #[test]
    fn batch_coefficients_are_deterministic_and_transcript_bound() {
        // Regression for the hoisted Fiat–Shamir derivation: two calls over
        // the same items must produce identical coefficients (the batch and
        // its error-attribution retry see one transcript), and any reorder
        // of the items must change them. The context-bound variant must
        // reproduce the plain derivation on an empty context and diverge on
        // any other — a batch aggregated for one block coverage cannot be
        // replayed against another even when the item bytes coincide.
        use crate::batch_coefficients;
        let a = acc();
        let items = batch(&a, &[(&[1], &[10]), (&[2], &[20])]);
        assert_eq!(batch_coefficients::<Acc2>(&items), batch_coefficients::<Acc2>(&items));
        let swapped = vec![items[1], items[0]];
        assert_ne!(batch_coefficients::<Acc2>(&items), batch_coefficients::<Acc2>(&swapped));
        assert_eq!(batch_coefficients_ctx::<Acc2>(&[], &items), batch_coefficients::<Acc2>(&items));
        assert_ne!(
            batch_coefficients_ctx::<Acc2>(b"heights", &items),
            batch_coefficients_ctx::<Acc2>(b"heights2", &items)
        );
    }

    #[test]
    fn try_setup_errors_instead_of_panicking() {
        let a = acc();
        assert!(matches!(
            a.try_setup(&ms(&[64])), // q = 64 ⇒ max index 63
            Err(AccError::CapacityExceeded { needed: 64, capacity: 63 })
        ));
        assert_eq!(a.try_setup(&ms(&[1, 2])).unwrap(), a.setup(&ms(&[1, 2])));
    }

    #[test]
    fn wire_decode_round_trips_and_rejects_corruption() {
        let a = acc();
        let x1 = ms(&[1, 2]);
        let x2 = ms(&[10]);
        let v = a.setup(&x1);
        let proof = a.prove_disjoint(&x1, &x2).unwrap();

        let vb = Acc2::value_bytes(&v);
        assert_eq!(a.value_from_bytes(&vb).unwrap(), v);
        let pb = Acc2::proof_bytes(&proof);
        assert_eq!(a.proof_from_bytes(&pb).unwrap(), proof);

        assert!(matches!(a.value_from_bytes(&[]), Err(crate::DecodeError::Length { .. })));
        assert!(matches!(a.proof_from_bytes(&pb[1..]), Err(crate::DecodeError::Length { .. })));

        // corrupting the db half attributes to slot 1 (da is slot 0)
        let mut bad = vb.clone();
        bad[G1Spec::COMPRESSED_BYTES] ^= 0b100; // db's flag byte → invalid flags
        match a.value_from_bytes(&bad) {
            Err(crate::DecodeError::Point { slot: 1, .. }) => {}
            other => panic!("expected slot-1 point error, got {other:?}"),
        }
    }

    #[test]
    fn forbidden_power_is_poisoned() {
        let a = acc();
        assert!(a.pk.g1_powers[a.pk.q as usize].is_identity());
    }

    /// The comb-built key must equal the naive window-walk key limb for
    /// limb, so proofs from either keygen path are byte-identical.
    #[test]
    fn comb_keygen_matches_naive_fixed_base() {
        use vchain_pairing::Field;
        let a = acc();
        let q = a.pk.q;
        // reconstruct the scalar vector from the retained trapdoor
        let s = a.sk.expect("test keygen keeps the trapdoor");
        let mut scalars = Vec::new();
        let mut cur = Fr::one();
        for i in 0..(2 * q - 1) {
            scalars.push(if i == q { U256::ZERO } else { cur.to_uint() });
            cur = Field::mul(&cur, &s);
        }
        let naive_g1 = vchain_pairing::batch_to_affine(&crate::acc1::fixed_base_batch(
            &G1Projective::generator(),
            &scalars,
        ));
        let naive_g2 = vchain_pairing::batch_to_affine(&crate::acc1::fixed_base_batch(
            &G2Projective::generator(),
            &scalars[..q as usize],
        ));
        assert_eq!(a.pk.g1_powers.len(), naive_g1.len(), "g1 power count drifted");
        assert_eq!(a.pk.g2_powers.len(), naive_g2.len(), "g2 power count drifted");
        for (comb, naive) in a.pk.g1_powers.iter().zip(&naive_g1) {
            assert_eq!(comb.to_bytes(), naive.to_bytes());
        }
        for (comb, naive) in a.pk.g2_powers.iter().zip(&naive_g2) {
            assert_eq!(comb.to_bytes(), naive.to_bytes());
        }
        // and a proof built on the comb key is byte-identical to one built
        // on a naive-keyed accumulator with the same trapdoor
        let x1 = ms(&[1, 2, 3]);
        let x2 = ms(&[10, 20]);
        let naive_acc = Acc2 {
            pk: Arc::new(Acc2PublicKey { q, g1_powers: naive_g1, g2_powers: naive_g2 }),
            sk: Some(s),
            fast_setup: false,
        };
        let p_comb = a.prove_disjoint(&x1, &x2).unwrap();
        let p_naive = naive_acc.prove_disjoint(&x1, &x2).unwrap();
        assert_eq!(Acc2::proof_bytes(&p_comb), Acc2::proof_bytes(&p_naive));
    }
}
