//! Dense univariate polynomials over the scalar field `Fr`.
//!
//! Construction 1 needs: building a characteristic polynomial from its
//! (negated) roots, multiplication, division with remainder, and the
//! extended Euclidean algorithm for Bézout disjointness witnesses.

use vchain_pairing::{Field, Fr};

/// A polynomial `Σ cᵢ·sⁱ`, coefficients little-endian, no trailing zeros.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Poly {
    coeffs: Vec<Fr>,
}

impl Poly {
    /// The zero polynomial (empty coefficient vector).
    pub fn zero() -> Self {
        Self { coeffs: Vec::new() }
    }

    /// The constant polynomial `1`.
    pub fn one() -> Self {
        Self::constant(Fr::one())
    }

    /// The constant polynomial `c`.
    pub fn constant(c: Fr) -> Self {
        let mut p = Self { coeffs: vec![c] };
        p.normalize();
        p
    }

    /// Build from little-endian coefficients (trailing zeros trimmed).
    pub fn from_coeffs(coeffs: Vec<Fr>) -> Self {
        let mut p = Self { coeffs };
        p.normalize();
        p
    }

    /// The characteristic polynomial `∏ (s + xᵢ)^{cᵢ}` of a multiset given
    /// as `(representative, count)` pairs.
    pub fn char_poly(elems: impl Iterator<Item = (Fr, u64)>) -> Self {
        let mut coeffs = vec![Fr::one()];
        for (x, count) in elems {
            for _ in 0..count {
                // multiply by (s + x): new[i] = old[i-1] + x*old[i]
                let mut next = vec![Fr::zero(); coeffs.len() + 1];
                for (i, c) in coeffs.iter().enumerate() {
                    next[i + 1] += *c;
                    next[i] += Field::mul(c, &x);
                }
                coeffs = next;
            }
        }
        Self::from_coeffs(coeffs)
    }

    fn normalize(&mut self) {
        while self.coeffs.last().is_some_and(Fr::is_zero) {
            self.coeffs.pop();
        }
    }

    /// Is this the zero polynomial?
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// The little-endian coefficient slice (no trailing zeros).
    pub fn coeffs(&self) -> &[Fr] {
        &self.coeffs
    }

    /// Horner evaluation at a point.
    pub fn eval(&self, at: &Fr) -> Fr {
        let mut acc = Fr::zero();
        for c in self.coeffs.iter().rev() {
            acc = Field::mul(&acc, at) + *c;
        }
        acc
    }

    /// Polynomial addition.
    pub fn add(&self, rhs: &Self) -> Self {
        let mut coeffs = vec![Fr::zero(); self.coeffs.len().max(rhs.coeffs.len())];
        for (i, c) in coeffs.iter_mut().enumerate() {
            let a = self.coeffs.get(i).copied().unwrap_or_else(Fr::zero);
            let b = rhs.coeffs.get(i).copied().unwrap_or_else(Fr::zero);
            *c = a + b;
        }
        Self::from_coeffs(coeffs)
    }

    /// Polynomial subtraction.
    pub fn sub(&self, rhs: &Self) -> Self {
        let mut coeffs = vec![Fr::zero(); self.coeffs.len().max(rhs.coeffs.len())];
        for (i, c) in coeffs.iter_mut().enumerate() {
            let a = self.coeffs.get(i).copied().unwrap_or_else(Fr::zero);
            let b = rhs.coeffs.get(i).copied().unwrap_or_else(Fr::zero);
            *c = a - b;
        }
        Self::from_coeffs(coeffs)
    }

    /// Schoolbook polynomial multiplication.
    pub fn mul(&self, rhs: &Self) -> Self {
        if self.is_zero() || rhs.is_zero() {
            return Self::zero();
        }
        let mut coeffs = vec![Fr::zero(); self.coeffs.len() + rhs.coeffs.len() - 1];
        for (i, a) in self.coeffs.iter().enumerate() {
            if a.is_zero() {
                continue;
            }
            for (j, b) in rhs.coeffs.iter().enumerate() {
                coeffs[i + j] += Field::mul(a, b);
            }
        }
        Self::from_coeffs(coeffs)
    }

    /// Multiply every coefficient by a scalar.
    pub fn scale(&self, k: &Fr) -> Self {
        Self::from_coeffs(self.coeffs.iter().map(|c| Field::mul(c, k)).collect())
    }

    /// Division with remainder; panics on a zero divisor.
    pub fn divrem(&self, divisor: &Self) -> (Self, Self) {
        let dd = divisor.degree().expect("polynomial division by zero");
        let lead_inv = divisor.coeffs[dd].inverse().expect("field leading coeff");
        let mut rem = self.coeffs.clone();
        let mut quot = vec![Fr::zero(); self.coeffs.len().saturating_sub(dd) + 1];
        loop {
            // effective degree of rem
            let dr = match rem.iter().rposition(|c| !c.is_zero()) {
                Some(d) if d >= dd => d,
                _ => break,
            };
            let q = Field::mul(&rem[dr], &lead_inv);
            quot[dr - dd] = q;
            for i in 0..=dd {
                rem[dr - dd + i] -= Field::mul(&q, &divisor.coeffs[i]);
            }
        }
        (Self::from_coeffs(quot), Self::from_coeffs(rem))
    }

    /// Extended Euclid: returns `(g, u, v)` with `u·self + v·rhs = g` and
    /// `g = gcd(self, rhs)` (not normalized to monic).
    pub fn xgcd(&self, rhs: &Self) -> (Self, Self, Self) {
        let (mut r0, mut r1) = (self.clone(), rhs.clone());
        let (mut u0, mut u1) = (Poly::one(), Poly::zero());
        let (mut v0, mut v1) = (Poly::zero(), Poly::one());
        while !r1.is_zero() {
            let (q, r) = r0.divrem(&r1);
            r0 = std::mem::replace(&mut r1, r);
            let u = u0.sub(&q.mul(&u1));
            u0 = std::mem::replace(&mut u1, u);
            let v = v0.sub(&q.mul(&v1));
            v0 = std::mem::replace(&mut v1, v);
        }
        (r0, u0, v0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(v: &[u64]) -> Poly {
        Poly::from_coeffs(v.iter().map(|&c| Fr::from_u64(c)).collect())
    }

    #[test]
    fn char_poly_roots() {
        // (s + 2)(s + 3) = s² + 5s + 6
        let cp = Poly::char_poly([(Fr::from_u64(2), 1), (Fr::from_u64(3), 1)].into_iter());
        assert_eq!(cp, p(&[6, 5, 1]));
        // multiplicity: (s + 2)² = s² + 4s + 4
        let cp2 = Poly::char_poly([(Fr::from_u64(2), 2)].into_iter());
        assert_eq!(cp2, p(&[4, 4, 1]));
        // empty multiset => constant 1
        assert_eq!(Poly::char_poly(std::iter::empty()), Poly::one());
    }

    #[test]
    fn eval_horner() {
        let q = p(&[6, 5, 1]);
        assert_eq!(q.eval(&Fr::from_u64(1)), Fr::from_u64(12));
        assert!(q.eval(&(-Fr::from_u64(2))).is_zero());
    }

    #[test]
    fn divrem_round_trip() {
        let a = p(&[1, 0, 3, 9, 4]);
        let b = p(&[7, 2, 5]);
        let (q, r) = a.divrem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r.degree() < b.degree());
    }

    #[test]
    fn divrem_smaller_dividend() {
        let a = p(&[1, 2]);
        let b = p(&[0, 0, 1]);
        let (q, r) = a.divrem(&b);
        assert!(q.is_zero());
        assert_eq!(r, a);
    }

    #[test]
    fn xgcd_coprime_char_polys() {
        let mut rng = StdRng::seed_from_u64(5);
        let xs: Vec<Fr> = (0..6).map(|_| Fr::random(&mut rng)).collect();
        let a = Poly::char_poly(xs[..3].iter().map(|x| (*x, 1)));
        let b = Poly::char_poly(xs[3..].iter().map(|x| (*x, 1)));
        let (g, u, v) = a.xgcd(&b);
        assert_eq!(g.degree(), Some(0), "disjoint roots => constant gcd");
        assert_eq!(u.mul(&a).add(&v.mul(&b)), g);
    }

    #[test]
    fn xgcd_shared_root() {
        let shared = Fr::from_u64(42);
        let a = Poly::char_poly([(shared, 1), (Fr::from_u64(1), 1)].into_iter());
        let b = Poly::char_poly([(shared, 1), (Fr::from_u64(2), 1)].into_iter());
        let (g, u, v) = a.xgcd(&b);
        assert_eq!(g.degree(), Some(1), "shared root => non-constant gcd");
        assert_eq!(u.mul(&a).add(&v.mul(&b)), g);
    }

    #[test]
    fn mul_degree_and_commutativity() {
        let a = p(&[1, 2, 3]);
        let b = p(&[4, 5]);
        assert_eq!(a.mul(&b), b.mul(&a));
        assert_eq!(a.mul(&b).degree(), Some(3));
        assert!(a.mul(&Poly::zero()).is_zero());
    }
}
