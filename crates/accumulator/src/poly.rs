//! Dense univariate polynomial engine over the scalar field `Fr`.
//!
//! Construction 1 needs four operations: building a characteristic
//! polynomial from its (negated) roots, multiplication, division with
//! remainder, and an extended GCD producing the Bézout pair behind
//! disjointness witnesses. The seed implemented all four naively — O(n²)
//! incremental root folding, schoolbook multiplication, long division and
//! the quadratic extended Euclid — which capped Acc1 at toy sizes.
//!
//! This module keeps those routines as the [`naive`] reference and layers
//! the divide-and-conquer versions on top:
//!
//! * [`Poly::mul`] — Karatsuba above a schoolbook base case
//!   ([`KARATSUBA_THRESHOLD`]), with a chunked path for very unbalanced
//!   operands: `O(n^1.585)` instead of `O(n²)`.
//! * [`Poly::char_poly`] — a subproduct tree: the linear leaves `(s + xᵢ)`
//!   are merged pairwise, so every multiplication is balanced and the total
//!   cost is `O(M(n) log n)` where `M` is the multiplication cost.
//! * [`Poly::divrem`] — Newton inversion of the reversed divisor
//!   (`O(M(n))`) when both quotient and divisor are large, long division
//!   otherwise.
//! * [`Poly::xgcd`] — a half-GCD (divide-and-conquer Euclid) that collapses
//!   runs of quotient steps into 2×2 polynomial matrices when both degrees
//!   are ≥ [`HALF_GCD_THRESHOLD`], and the classical loop below that.
//!
//! Every fast path is property-tested against its [`naive`] twin; see the
//! tests at the bottom of this file and `tests/poly_props.rs`. The
//! algorithms and their complexity trade-offs are documented in
//! `docs/POLYNOMIALS.md`.

use vchain_pairing::{Field, Fr};

/// Below this operand length [`Poly::mul`] uses schoolbook multiplication;
/// above it, Karatsuba. The crossover was measured on the container CPU
/// (see `docs/POLYNOMIALS.md`): Karatsuba's extra additions beat the saved
/// multiplications only once both operands have ≳16 coefficients.
pub const KARATSUBA_THRESHOLD: usize = 16;

/// Below this degree (of the *smaller* operand) [`Poly::xgcd`] runs the
/// classical extended Euclid; at or above it, the half-GCD. Acc1 clause
/// polynomials are tiny (a few keywords), so the classical loop — which is
/// `O(deg a · deg b)`, not `O(max²)` — already handles the production
/// shape; the half-GCD takes over for large×large inputs.
pub const HALF_GCD_THRESHOLD: usize = 64;

/// Minimum quotient *and* divisor degree for Newton-inversion division;
/// below it [`Poly::divrem`] long-divides. Long division costs
/// `O(deg q · deg b)`, which is linear whenever either factor is small —
/// exactly the Acc1 shape (huge quotient, tiny divisor).
pub const FAST_DIVISION_THRESHOLD: usize = 32;

/// A polynomial `Σ cᵢ·sⁱ`, coefficients little-endian, no trailing zeros.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Poly {
    coeffs: Vec<Fr>,
}

/// Error returned by [`Poly::char_poly_distinct`] when the input contains
/// a repeated element: the *set* characteristic polynomial is squarefree by
/// definition, so a duplicate is a caller bug, not a multiplicity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DuplicateElement;

impl core::fmt::Display for DuplicateElement {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "duplicate element in a distinct-root characteristic polynomial")
    }
}

impl std::error::Error for DuplicateElement {}

impl Poly {
    /// The zero polynomial (empty coefficient vector).
    pub fn zero() -> Self {
        Self { coeffs: Vec::new() }
    }

    /// The constant polynomial `1`.
    pub fn one() -> Self {
        Self::constant(Fr::one())
    }

    /// The constant polynomial `c`.
    pub fn constant(c: Fr) -> Self {
        let mut p = Self { coeffs: vec![c] };
        p.normalize();
        p
    }

    /// Build from little-endian coefficients (trailing zeros trimmed).
    pub fn from_coeffs(coeffs: Vec<Fr>) -> Self {
        let mut p = Self { coeffs };
        p.normalize();
        p
    }

    /// The characteristic polynomial `∏ (s + xᵢ)^{cᵢ}` of a multiset given
    /// as `(representative, count)` pairs.
    ///
    /// Built with a subproduct tree: one linear leaf `(s + xᵢ)` per
    /// occurrence, merged pairwise with [`Poly::mul`], so the expensive
    /// multiplications near the root are balanced Karatsuba products. The
    /// result is byte-identical to [`naive::char_poly`] (asserted by
    /// property test), only the association order of an associative product
    /// changes.
    ///
    /// ```
    /// use vchain_acc::Poly;
    /// use vchain_pairing::{Field, Fr};
    ///
    /// // (s + 2)(s + 3) = s² + 5s + 6, whatever the build order
    /// let p = Poly::char_poly([(Fr::from_u64(2), 1), (Fr::from_u64(3), 1)].into_iter());
    /// assert_eq!(p.coeffs(), &[Fr::from_u64(6), Fr::from_u64(5), Field::one()]);
    /// assert_eq!(p.degree(), Some(2));
    /// ```
    pub fn char_poly(elems: impl Iterator<Item = (Fr, u64)>) -> Self {
        let mut leaves: Vec<Vec<Fr>> = Vec::new();
        for (x, count) in elems {
            for _ in 0..count {
                leaves.push(vec![x, Fr::one()]);
            }
        }
        Self::from_coeffs(subproduct(leaves))
    }

    /// The squarefree characteristic polynomial `∏ (s + xᵢ)` of a *set*,
    /// rejecting duplicates with [`DuplicateElement`].
    ///
    /// Use this instead of [`Poly::char_poly`] when the caller's invariant
    /// is distinctness (e.g. interned element ids): a repeated element
    /// would silently become a multiplicity there, but is an error here.
    ///
    /// ```
    /// use vchain_acc::poly::{DuplicateElement, Poly};
    /// use vchain_pairing::Fr;
    ///
    /// let ok = Poly::char_poly_distinct([Fr::from_u64(1), Fr::from_u64(2)]).unwrap();
    /// assert_eq!(ok.degree(), Some(2));
    /// let dup = Poly::char_poly_distinct([Fr::from_u64(7), Fr::from_u64(7)]);
    /// assert_eq!(dup.unwrap_err(), DuplicateElement);
    /// ```
    pub fn char_poly_distinct(
        elems: impl IntoIterator<Item = Fr>,
    ) -> Result<Self, DuplicateElement> {
        let mut seen: Vec<Fr> = elems.into_iter().collect();
        let leaves: Vec<Vec<Fr>> = seen.iter().map(|x| vec![*x, Fr::one()]).collect();
        seen.sort_by_key(|f| f.to_uint());
        if seen.windows(2).any(|w| w[0] == w[1]) {
            return Err(DuplicateElement);
        }
        Ok(Self::from_coeffs(subproduct(leaves)))
    }

    fn normalize(&mut self) {
        while self.coeffs.last().is_some_and(Fr::is_zero) {
            self.coeffs.pop();
        }
    }

    /// Is this the zero polynomial?
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// The little-endian coefficient slice (no trailing zeros).
    pub fn coeffs(&self) -> &[Fr] {
        &self.coeffs
    }

    /// Horner evaluation at a point.
    pub fn eval(&self, at: &Fr) -> Fr {
        let mut acc = Fr::zero();
        for c in self.coeffs.iter().rev() {
            acc = Field::mul(&acc, at) + *c;
        }
        acc
    }

    /// Polynomial addition.
    pub fn add(&self, rhs: &Self) -> Self {
        let mut coeffs = vec![Fr::zero(); self.coeffs.len().max(rhs.coeffs.len())];
        for (i, c) in coeffs.iter_mut().enumerate() {
            let a = self.coeffs.get(i).copied().unwrap_or_else(Fr::zero);
            let b = rhs.coeffs.get(i).copied().unwrap_or_else(Fr::zero);
            *c = a + b;
        }
        Self::from_coeffs(coeffs)
    }

    /// Polynomial subtraction.
    pub fn sub(&self, rhs: &Self) -> Self {
        let mut coeffs = vec![Fr::zero(); self.coeffs.len().max(rhs.coeffs.len())];
        for (i, c) in coeffs.iter_mut().enumerate() {
            let a = self.coeffs.get(i).copied().unwrap_or_else(Fr::zero);
            let b = rhs.coeffs.get(i).copied().unwrap_or_else(Fr::zero);
            *c = a - b;
        }
        Self::from_coeffs(coeffs)
    }

    /// Polynomial multiplication: schoolbook below
    /// [`KARATSUBA_THRESHOLD`], Karatsuba above it, and a chunked
    /// decomposition when one operand is much longer than the other (so the
    /// recursion always works on balanced halves).
    ///
    /// ```
    /// use vchain_acc::Poly;
    /// use vchain_pairing::{Field, Fr};
    /// use rand::{rngs::StdRng, SeedableRng};
    ///
    /// let mut rng = StdRng::seed_from_u64(7);
    /// let a = Poly::from_coeffs((0..100).map(|_| Fr::random(&mut rng)).collect());
    /// let b = Poly::from_coeffs((0..100).map(|_| Fr::random(&mut rng)).collect());
    /// let prod = a.mul(&b); // Karatsuba: 3 half-size products per level
    /// assert_eq!(prod.degree(), Some(198));
    /// // multiplication evaluates pointwise: (a·b)(z) = a(z)·b(z)
    /// let z = Fr::from_u64(123456789);
    /// assert_eq!(prod.eval(&z), Field::mul(&a.eval(&z), &b.eval(&z)));
    /// ```
    pub fn mul(&self, rhs: &Self) -> Self {
        if self.is_zero() || rhs.is_zero() {
            return Self::zero();
        }
        Self::from_coeffs(mul_slices(&self.coeffs, &rhs.coeffs))
    }

    /// Multiply every coefficient by a scalar.
    pub fn scale(&self, k: &Fr) -> Self {
        Self::from_coeffs(self.coeffs.iter().map(|c| Field::mul(c, k)).collect())
    }

    /// Division with remainder; panics on a zero divisor.
    ///
    /// Long division when the quotient or divisor is small (that path is
    /// linear in the large degree); otherwise the quotient is recovered
    /// from a Newton-iteration power-series inverse of the reversed divisor
    /// in `O(M(n))`.
    pub fn divrem(&self, divisor: &Self) -> (Self, Self) {
        let dd = divisor.degree().expect("polynomial division by zero");
        let Some(dn) = self.degree() else { return (Self::zero(), Self::zero()) };
        if dn < dd {
            return (Self::zero(), self.clone());
        }
        let dq = dn - dd; // quotient degree
        if dq.min(dd) < FAST_DIVISION_THRESHOLD {
            return naive::divrem(self, divisor);
        }
        // Newton path: rev(q) = rev(self) · rev(divisor)⁻¹ mod s^{dq+1},
        // where rev(p) reverses coefficients w.r.t. its own degree.
        let rev_n: Vec<Fr> = self.coeffs.iter().rev().copied().collect();
        let rev_d: Vec<Fr> = divisor.coeffs.iter().rev().copied().collect();
        let inv = inv_series(&rev_d, dq + 1);
        let mut rev_q = mul_slices(&rev_n[..(dq + 1).min(rev_n.len())], &inv);
        rev_q.truncate(dq + 1);
        rev_q.resize(dq + 1, Fr::zero());
        rev_q.reverse();
        let q = Self::from_coeffs(rev_q);
        let r = self.sub(&q.mul(divisor));
        debug_assert!(r.degree().is_none_or(|d| d < dd));
        (q, r)
    }

    /// Extended Euclid: returns `(g, u, v)` with `u·self + v·rhs = g` and
    /// `g = gcd(self, rhs)` (not normalized to monic).
    ///
    /// Runs the classical quadratic loop while the smaller degree is below
    /// [`HALF_GCD_THRESHOLD`] — which keeps it byte-identical to
    /// [`naive::xgcd`] on the Acc1 production shape — and the half-GCD
    /// above it. The half-GCD result can differ from the classical one by
    /// a nonzero scalar factor (both are valid Bézout triples; callers that
    /// need canonicity normalize `g` to monic, as Acc1 does).
    ///
    /// ```
    /// use vchain_acc::Poly;
    /// use vchain_pairing::Fr;
    /// use rand::{rngs::StdRng, SeedableRng};
    ///
    /// let mut rng = StdRng::seed_from_u64(42);
    /// let a = Poly::char_poly((0..80).map(|_| (Fr::random(&mut rng), 1)));
    /// let b = Poly::char_poly((0..80).map(|_| (Fr::random(&mut rng), 1)));
    /// let (g, u, v) = a.xgcd(&b); // half-GCD: both degrees ≥ threshold
    /// assert_eq!(g.degree(), Some(0), "random roots never collide");
    /// assert_eq!(u.mul(&a).add(&v.mul(&b)), g, "Bézout identity");
    /// ```
    pub fn xgcd(&self, rhs: &Self) -> (Self, Self, Self) {
        let small = match (self.degree(), rhs.degree()) {
            (Some(a), Some(b)) => a.min(b) < HALF_GCD_THRESHOLD,
            _ => true,
        };
        if small {
            return naive::xgcd(self, rhs);
        }
        hgcd::xgcd(self, rhs)
    }
}

/// Multiply two coefficient slices (both non-empty, not normalized).
fn mul_slices(a: &[Fr], b: &[Fr]) -> Vec<Fr> {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.len() < KARATSUBA_THRESHOLD {
        return schoolbook(short, long);
    }
    if long.len() > 2 * short.len() {
        // Unbalanced: multiply the long operand chunkwise so the Karatsuba
        // recursion below always sees comparable halves.
        let mut out = vec![Fr::zero(); short.len() + long.len() - 1];
        for (i, chunk) in long.chunks(short.len()).enumerate() {
            let part = mul_slices(short, chunk);
            let off = i * short.len();
            for (j, c) in part.iter().enumerate() {
                out[off + j] += *c;
            }
        }
        return out;
    }
    karatsuba(short, long)
}

/// Schoolbook product, `O(|a|·|b|)`.
fn schoolbook(a: &[Fr], b: &[Fr]) -> Vec<Fr> {
    let mut out = vec![Fr::zero(); a.len() + b.len() - 1];
    for (i, x) in a.iter().enumerate() {
        if x.is_zero() {
            continue;
        }
        for (j, y) in b.iter().enumerate() {
            out[i + j] += Field::mul(x, y);
        }
    }
    out
}

/// One Karatsuba level: split both operands at `m`, three recursive
/// half-products instead of four.
fn karatsuba(a: &[Fr], b: &[Fr]) -> Vec<Fr> {
    let m = a.len().max(b.len()).div_ceil(2);
    let (a0, a1) = a.split_at(m.min(a.len()));
    let (b0, b1) = b.split_at(m.min(b.len()));
    let z0 = mul_slices(a0, b0);
    let z2 = if a1.is_empty() || b1.is_empty() { Vec::new() } else { mul_slices(a1, b1) };
    let sa = add_slices(a0, a1);
    let sb = add_slices(b0, b1);
    let mut z1 = mul_slices(&sa, &sb);
    for (i, c) in z0.iter().enumerate() {
        z1[i] -= *c;
    }
    for (i, c) in z2.iter().enumerate() {
        z1[i] -= *c;
    }
    let mut out = vec![Fr::zero(); a.len() + b.len() - 1];
    for (i, c) in z0.iter().enumerate() {
        out[i] += *c;
    }
    // z1 = sa·sb − z0 − z2 is the cross term a0·b1 + a1·b0; its vector can
    // carry zero top coefficients past the product degree when a high half
    // is empty, so the write is bounds-guarded.
    for (i, c) in z1.iter().enumerate() {
        if let Some(slot) = out.get_mut(m + i) {
            *slot += *c;
        } else {
            debug_assert!(c.is_zero(), "karatsuba cross term exceeds product degree");
        }
    }
    for (i, c) in z2.iter().enumerate() {
        out[2 * m + i] += *c;
    }
    out
}

fn add_slices(a: &[Fr], b: &[Fr]) -> Vec<Fr> {
    let mut out = vec![Fr::zero(); a.len().max(b.len())];
    for (i, c) in a.iter().enumerate() {
        out[i] += *c;
    }
    for (i, c) in b.iter().enumerate() {
        out[i] += *c;
    }
    out
}

/// Reduce a list of coefficient vectors to their product by pairwise
/// merging — the subproduct tree, iterated bottom-up so every product
/// multiplies two polynomials of (nearly) equal degree.
fn subproduct(mut level: Vec<Vec<Fr>>) -> Vec<Fr> {
    if level.is_empty() {
        return vec![Fr::one()];
    }
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.chunks_exact(2);
        for pair in &mut it {
            next.push(mul_slices(&pair[0], &pair[1]));
        }
        if let [odd] = it.remainder() {
            next.push(odd.clone());
        }
        level = next;
    }
    level.pop().expect("non-empty level")
}

/// Power-series inverse: the first `k` coefficients of `f⁻¹`, requiring
/// `f[0] ≠ 0`. Newton iteration `g ← g·(2 − f·g)` doubles the correct
/// prefix each round, so the total cost is `O(M(k))`.
fn inv_series(f: &[Fr], k: usize) -> Vec<Fr> {
    let f0_inv = f[0].inverse().expect("power-series inverse needs a unit constant term");
    let mut g = vec![f0_inv];
    let mut prec = 1;
    while prec < k {
        prec = (2 * prec).min(k);
        // g ← g·(2 − f·g) mod s^prec
        let fg = mul_slices(&f[..prec.min(f.len())], &g);
        let mut t = vec![Fr::zero(); prec];
        t[0] = Fr::from_u64(2);
        for (i, c) in fg.iter().take(prec).enumerate() {
            t[i] -= *c;
        }
        let mut g2 = mul_slices(&g, &t);
        g2.truncate(prec);
        g = g2;
    }
    g.truncate(k);
    g.resize(k, Fr::zero());
    g
}

pub mod naive {
    //! The seed's quadratic reference algorithms, retained verbatim.
    //!
    //! The fast engine is property-tested against these (see
    //! `tests/poly_props.rs`): [`char_poly`] must agree byte-for-byte with
    //! [`Poly::char_poly`], [`divrem`]/[`mul`] must agree exactly, and
    //! [`xgcd`] must agree with [`Poly::xgcd`] up to the scalar factor the
    //! half-GCD is allowed to introduce. They are also the benchmark
    //! baseline: `bench_smoke` times both engines in the same run so the
    //! speed-up ratio in `BENCH_pairing.json` is noise-free.

    use super::{schoolbook, Poly};
    use vchain_pairing::{Field, Fr};

    /// Incremental `O(n²)` characteristic polynomial: multiply by one
    /// linear factor `(s + x)` at a time.
    pub fn char_poly(elems: impl Iterator<Item = (Fr, u64)>) -> Poly {
        let mut coeffs = vec![Fr::one()];
        for (x, count) in elems {
            for _ in 0..count {
                // multiply by (s + x): new[i] = old[i-1] + x*old[i]
                let mut next = vec![Fr::zero(); coeffs.len() + 1];
                for (i, c) in coeffs.iter().enumerate() {
                    next[i + 1] += *c;
                    next[i] += Field::mul(c, &x);
                }
                coeffs = next;
            }
        }
        Poly::from_coeffs(coeffs)
    }

    /// Schoolbook multiplication, `O(deg a · deg b)`.
    pub fn mul(a: &Poly, b: &Poly) -> Poly {
        if a.is_zero() || b.is_zero() {
            return Poly::zero();
        }
        Poly::from_coeffs(schoolbook(a.coeffs(), b.coeffs()))
    }

    /// Long division with remainder; panics on a zero divisor.
    pub fn divrem(a: &Poly, divisor: &Poly) -> (Poly, Poly) {
        let dd = divisor.degree().expect("polynomial division by zero");
        let lead_inv = divisor.coeffs[dd].inverse().expect("field leading coeff");
        let mut rem = a.coeffs.clone();
        let mut quot = vec![Fr::zero(); a.coeffs.len().saturating_sub(dd) + 1];
        loop {
            // effective degree of rem
            let dr = match rem.iter().rposition(|c| !c.is_zero()) {
                Some(d) if d >= dd => d,
                _ => break,
            };
            let q = Field::mul(&rem[dr], &lead_inv);
            quot[dr - dd] = q;
            for i in 0..=dd {
                rem[dr - dd + i] -= Field::mul(&q, &divisor.coeffs[i]);
            }
        }
        (Poly::from_coeffs(quot), Poly::from_coeffs(rem))
    }

    /// Classical extended Euclid: `(g, u, v)` with `u·a + v·b = g`, not
    /// normalized to monic.
    pub fn xgcd(a: &Poly, b: &Poly) -> (Poly, Poly, Poly) {
        let (mut r0, mut r1) = (a.clone(), b.clone());
        let (mut u0, mut u1) = (Poly::one(), Poly::zero());
        let (mut v0, mut v1) = (Poly::zero(), Poly::one());
        while !r1.is_zero() {
            let (q, r) = divrem(&r0, &r1);
            r0 = std::mem::replace(&mut r1, r);
            let u = u0.sub(&q.mul(&u1));
            u0 = std::mem::replace(&mut u1, u);
            let v = v0.sub(&q.mul(&v1));
            v0 = std::mem::replace(&mut v1, v);
        }
        (r0, u0, v0)
    }
}

mod hgcd {
    //! Half-GCD: divide-and-conquer extended Euclid.
    //!
    //! A run of Euclidean quotient steps is the linear map
    //! `(r₀, r₁) ↦ Q·(r₀, r₁)` with `Q = ∏ [[0, 1], [1, −qᵢ]]`. The
    //! half-GCD computes the matrix that halves the degree of `r₀` while
    //! touching only the *top half* of the coefficients: the first
    //! `2(deg r₀ − deg r₁) + 1` leading coefficients determine a quotient,
    //! so the early quotients of the full-size problem equal those of the
    //! high-part problem. Recursing twice (with a single connecting
    //! division in the middle) yields `O(M(n) log n)` instead of `O(n²)`.

    use super::Poly;

    /// A 2×2 matrix over `Fr[s]`, acting on remainder pairs.
    struct Mat([Poly; 4]); // row-major: [m00, m01, m10, m11]

    impl Mat {
        fn identity() -> Self {
            Mat([Poly::one(), Poly::zero(), Poly::zero(), Poly::one()])
        }

        /// `self · rhs` (matrix product, four Karatsuba-backed muls each).
        fn compose(&self, rhs: &Mat) -> Mat {
            let m = |a: usize, b: usize, c: usize, d: usize| {
                self.0[a].mul(&rhs.0[b]).add(&self.0[c].mul(&rhs.0[d]))
            };
            Mat([m(0, 0, 1, 2), m(0, 1, 1, 3), m(2, 0, 3, 2), m(2, 1, 3, 3)])
        }

        /// Prepend one quotient step: `[[0,1],[1,−q]] · self`.
        fn push_quotient(self, q: &Poly) -> Mat {
            let Mat([m00, m01, m10, m11]) = self;
            let n10 = m00.sub(&q.mul(&m10));
            let n11 = m01.sub(&q.mul(&m11));
            Mat([m10, m11, n10, n11])
        }

        /// Apply to a remainder pair.
        fn apply(&self, r0: &Poly, r1: &Poly) -> (Poly, Poly) {
            (self.0[0].mul(r0).add(&self.0[1].mul(r1)), self.0[2].mul(r0).add(&self.0[3].mul(r1)))
        }
    }

    /// Drop the low `k` coefficients (divide by `s^k`, discarding the rest).
    fn shift_down(p: &Poly, k: usize) -> Poly {
        Poly::from_coeffs(p.coeffs().get(k..).map_or(Vec::new(), <[_]>::to_vec))
    }

    /// Half-GCD of `(a, b)` with `deg a > deg b`: returns `M` such that for
    /// `(c, d) = M·(a, b)` the degree of `d` has dropped below
    /// `⌈deg a / 2⌉ = m` while `deg c ≥ m`. The two recursive calls each
    /// work on polynomials of *half* the degree, truncated from the top.
    fn hgcd(a: &Poly, b: &Poly) -> Mat {
        let n = a.degree().expect("hgcd: nonzero a");
        let m = n.div_ceil(2);
        if b.degree().is_none_or(|d| d < m) {
            return Mat::identity();
        }
        // First recursion: the top halves determine the first run of
        // quotient steps.
        let r = hgcd(&shift_down(a, m), &shift_down(b, m));
        let (t0, t1) = r.apply(a, b);
        if t1.degree().is_none_or(|d| d < m) {
            return r;
        }
        // One connecting division in the middle…
        let (q, rem) = t0.divrem(&t1);
        let r = r.push_quotient(&q);
        let (u0, u1) = (t1, rem);
        if u1.degree().is_none_or(|d| d < m) {
            return r;
        }
        // …then the second recursion on the (shorter) tail, again truncated.
        // Here m ≤ deg u0 ≤ 2m − 1, so k = 2m − deg u0 lies in [1, m].
        let l = u0.degree().expect("u0 outdegrees u1");
        let k = (2 * m).saturating_sub(l).min(m);
        let s = hgcd(&shift_down(&u0, k), &shift_down(&u1, k));
        s.compose(&r)
    }

    /// Extended GCD via repeated half-GCD reduction. Returns `(g, u, v)`
    /// with `u·a + v·b = g`; `g` may differ from the classical result by a
    /// nonzero scalar.
    pub(super) fn xgcd(a: &Poly, b: &Poly) -> (Poly, Poly, Poly) {
        let (mut r0, mut r1) = (a.clone(), b.clone());
        let mut m = Mat::identity();
        // hgcd only makes progress when deg r1 ≥ ⌈deg r0 / 2⌉ (below that
        // its entry guard returns the identity matrix — calling it anyway
        // would loop forever); a classical quotient step both restores
        // that precondition and strictly shrinks deg r1, so the loop
        // always terminates.
        while !r1.is_zero() {
            let (d0, d1) = (r0.degree(), r1.degree());
            let hgcd_reduces = match (d0, d1) {
                (Some(n0), Some(n1)) => n0 > n1 && n1 >= n0.div_ceil(2),
                _ => false,
            };
            if !hgcd_reduces || d1.is_none_or(|d| d < super::HALF_GCD_THRESHOLD) {
                // classical quotient step
                let (q, rem) = r0.divrem(&r1);
                m = m.push_quotient(&q);
                r0 = std::mem::replace(&mut r1, rem);
            } else {
                let h = hgcd(&r0, &r1);
                let (n0, n1) = h.apply(&r0, &r1);
                debug_assert!(
                    n1.degree() < n0.degree(),
                    "hgcd must keep the remainder sequence ordered"
                );
                m = h.compose(&m);
                (r0, r1) = (n0, n1);
            }
        }
        let Mat([u, v, _, _]) = m;
        debug_assert_eq!(u.mul(a).add(&v.mul(b)), r0, "Bézout identity");
        (r0, u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(v: &[u64]) -> Poly {
        Poly::from_coeffs(v.iter().map(|&c| Fr::from_u64(c)).collect())
    }

    fn rand_poly(rng: &mut StdRng, len: usize) -> Poly {
        Poly::from_coeffs((0..len).map(|_| Fr::random(rng)).collect())
    }

    #[test]
    fn char_poly_roots() {
        // (s + 2)(s + 3) = s² + 5s + 6
        let cp = Poly::char_poly([(Fr::from_u64(2), 1), (Fr::from_u64(3), 1)].into_iter());
        assert_eq!(cp, p(&[6, 5, 1]));
        // multiplicity: (s + 2)² = s² + 4s + 4
        let cp2 = Poly::char_poly([(Fr::from_u64(2), 2)].into_iter());
        assert_eq!(cp2, p(&[4, 4, 1]));
        // empty multiset => constant 1
        assert_eq!(Poly::char_poly(std::iter::empty()), Poly::one());
    }

    #[test]
    fn char_poly_tree_matches_naive() {
        let mut rng = StdRng::seed_from_u64(9);
        for n in [0usize, 1, 2, 3, 7, 33, 100] {
            let elems: Vec<(Fr, u64)> =
                (0..n).map(|i| (Fr::random(&mut rng), 1 + (i as u64 % 3))).collect();
            let fast = Poly::char_poly(elems.iter().copied());
            let slow = naive::char_poly(elems.iter().copied());
            assert_eq!(fast, slow, "n = {n}");
        }
    }

    #[test]
    fn char_poly_distinct_rejects_duplicates() {
        let dup = Fr::from_u64(5);
        assert_eq!(Poly::char_poly_distinct([Fr::from_u64(1), dup, dup]), Err(DuplicateElement));
        let ok = Poly::char_poly_distinct([Fr::from_u64(1), Fr::from_u64(2)]).unwrap();
        assert_eq!(ok, Poly::char_poly([(Fr::from_u64(1), 1), (Fr::from_u64(2), 1)].into_iter()));
        assert_eq!(Poly::char_poly_distinct(std::iter::empty()), Ok(Poly::one()));
    }

    #[test]
    fn eval_horner() {
        let q = p(&[6, 5, 1]);
        assert_eq!(q.eval(&Fr::from_u64(1)), Fr::from_u64(12));
        assert!(q.eval(&(-Fr::from_u64(2))).is_zero());
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        let mut rng = StdRng::seed_from_u64(21);
        for (la, lb) in [(33, 33), (64, 64), (100, 7), (7, 100), (257, 129), (40, 200)] {
            let a = rand_poly(&mut rng, la);
            let b = rand_poly(&mut rng, lb);
            assert_eq!(a.mul(&b), naive::mul(&a, &b), "{la}×{lb}");
        }
    }

    #[test]
    fn divrem_round_trip() {
        let a = p(&[1, 0, 3, 9, 4]);
        let b = p(&[7, 2, 5]);
        let (q, r) = a.divrem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r.degree() < b.degree());
    }

    #[test]
    fn divrem_smaller_dividend() {
        let a = p(&[1, 2]);
        let b = p(&[0, 0, 1]);
        let (q, r) = a.divrem(&b);
        assert!(q.is_zero());
        assert_eq!(r, a);
    }

    #[test]
    fn newton_division_matches_long_division() {
        let mut rng = StdRng::seed_from_u64(31);
        for (ln, ld) in [(129, 65), (200, 40), (256, 128), (90, 89)] {
            let a = rand_poly(&mut rng, ln);
            let b = rand_poly(&mut rng, ld);
            let (qf, rf) = a.divrem(&b);
            let (qn, rn) = naive::divrem(&a, &b);
            assert_eq!(qf, qn, "{ln}/{ld} quotient");
            assert_eq!(rf, rn, "{ln}/{ld} remainder");
        }
    }

    #[test]
    fn inv_series_is_a_series_inverse() {
        let mut rng = StdRng::seed_from_u64(41);
        let f = rand_poly(&mut rng, 50);
        let g = Poly::from_coeffs(inv_series(f.coeffs(), 77));
        let mut prod = f.mul(&g).coeffs().to_vec();
        prod.truncate(77);
        assert_eq!(Poly::from_coeffs(prod), Poly::one());
    }

    #[test]
    fn xgcd_coprime_char_polys() {
        let mut rng = StdRng::seed_from_u64(5);
        let xs: Vec<Fr> = (0..6).map(|_| Fr::random(&mut rng)).collect();
        let a = Poly::char_poly(xs[..3].iter().map(|x| (*x, 1)));
        let b = Poly::char_poly(xs[3..].iter().map(|x| (*x, 1)));
        let (g, u, v) = a.xgcd(&b);
        assert_eq!(g.degree(), Some(0), "disjoint roots => constant gcd");
        assert_eq!(u.mul(&a).add(&v.mul(&b)), g);
    }

    #[test]
    fn xgcd_shared_root() {
        let shared = Fr::from_u64(42);
        let a = Poly::char_poly([(shared, 1), (Fr::from_u64(1), 1)].into_iter());
        let b = Poly::char_poly([(shared, 1), (Fr::from_u64(2), 1)].into_iter());
        let (g, u, v) = a.xgcd(&b);
        assert_eq!(g.degree(), Some(1), "shared root => non-constant gcd");
        assert_eq!(u.mul(&a).add(&v.mul(&b)), g);
    }

    #[test]
    fn half_gcd_large_coprime() {
        let mut rng = StdRng::seed_from_u64(17);
        let a = Poly::char_poly((0..100).map(|_| (Fr::random(&mut rng), 1)));
        let b = Poly::char_poly((0..90).map(|_| (Fr::random(&mut rng), 1)));
        let (g, u, v) = a.xgcd(&b); // takes the half-GCD path
        assert_eq!(g.degree(), Some(0));
        assert_eq!(u.mul(&a).add(&v.mul(&b)), g);
        // minimal Bézout degrees
        assert!(u.degree() < b.degree());
        assert!(v.degree() < a.degree());
    }

    #[test]
    fn half_gcd_unbalanced_degrees_terminate() {
        // Regression: deg b in [HALF_GCD_THRESHOLD, ⌈deg a / 2⌉) used to
        // re-enter hgcd forever because its entry guard returned the
        // identity matrix without reducing anything.
        let mut rng = StdRng::seed_from_u64(23);
        let a = rand_poly(&mut rng, 160); // deg 159, ⌈159/2⌉ = 80
        let b = rand_poly(&mut rng, 71); // deg 70: ≥ threshold, < 80
        let (g, u, v) = a.xgcd(&b);
        assert_eq!(u.mul(&a).add(&v.mul(&b)), g);
        assert_eq!(g.degree(), Some(0), "random polys are coprime");
    }

    #[test]
    fn half_gcd_with_large_common_factor() {
        let mut rng = StdRng::seed_from_u64(19);
        let shared = Poly::char_poly((0..70).map(|_| (Fr::random(&mut rng), 1)));
        let a = shared.mul(&Poly::char_poly((0..30).map(|_| (Fr::random(&mut rng), 1))));
        let b = shared.mul(&Poly::char_poly((0..25).map(|_| (Fr::random(&mut rng), 1))));
        let (g, u, v) = a.xgcd(&b);
        assert_eq!(g.degree(), Some(70), "gcd degree = shared factor degree");
        assert_eq!(u.mul(&a).add(&v.mul(&b)), g);
        // the gcd divides both inputs exactly
        assert!(a.divrem(&g).1.is_zero());
        assert!(b.divrem(&g).1.is_zero());
    }

    #[test]
    fn mul_degree_and_commutativity() {
        let a = p(&[1, 2, 3]);
        let b = p(&[4, 5]);
        assert_eq!(a.mul(&b), b.mul(&a));
        assert_eq!(a.mul(&b).degree(), Some(3));
        assert!(a.mul(&Poly::zero()).is_zero());
    }
}
