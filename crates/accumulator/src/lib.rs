//! Cryptographic multiset accumulators for vChain (§4, §5.2 of the paper).
//!
//! Two constructions are provided behind the common [`Accumulator`] trait:
//!
//! * [`Acc1`] — the q-SDH construction of Papamanthou et al. (CRYPTO'11,
//!   paper's "Construction 1"): `acc(X) = g₁^{∏ (xᵢ + s)}`, disjointness
//!   proofs are Bézout witnesses of the coprimality of the characteristic
//!   polynomials.
//! * [`Acc2`] — the q-DHE construction of Zhang et al. (EuroS&P'17, paper's
//!   "Construction 2"): `acc(X) = (g₁^{Σ s^{xᵢ}}, g₂^{Σ s^{q−xᵢ}})` with the
//!   extra [`Accumulator::sum`] / [`Accumulator::proof_sum`] aggregation
//!   primitives that enable vChain's online batch verification (§6.3).
//!
//! The paper uses a symmetric pairing; BLS12-381 is asymmetric, so values
//! live in `G1` and proof components in `G2` (or vice versa) as noted on
//! each method — the verification equations are otherwise verbatim.

#![warn(missing_docs)]

pub mod acc1;
pub mod acc2;
pub mod multiset;
pub mod poly;

pub use acc1::{fixed_base_batch, Acc1, Acc1Proof, Acc1PublicKey, Acc1Value};
pub use acc2::{Acc2, Acc2Proof, Acc2PublicKey, Acc2Value};
pub use multiset::MultiSet;
pub use poly::Poly;

use core::fmt;
use core::hash::Hash;

use vchain_pairing::{Affine, CurveSpec, Fr, PointDecodeError};

/// An element that can be accumulated.
///
/// * Construction 1 consumes the [`AccElem::to_fr`] representative (a hash
///   into the scalar field).
/// * Construction 2 consumes the [`AccElem::to_index`] representative, an
///   integer in `[1, q)` assigned by a public dictionary (standing in for
///   the paper's hash-to-integer encoding plus trusted public-key oracle).
pub trait AccElem: Copy + Clone + Ord + Eq + Hash + fmt::Debug + Send + Sync + 'static {
    /// Representative in the scalar field (collision-resistant).
    fn to_fr(&self) -> Fr;
    /// Small-integer representative, `>= 1`.
    fn to_index(&self) -> u64;
}

/// `u64` elements accumulate directly; index 0 is reserved.
impl AccElem for u64 {
    fn to_fr(&self) -> Fr {
        Fr::hash_to_field(&self.to_le_bytes())
    }

    fn to_index(&self) -> u64 {
        assert!(*self >= 1, "accumulator indices start at 1");
        *self
    }
}

/// Errors from accumulator operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccError {
    /// `ProveDisjoint` was called on intersecting multisets.
    NotDisjoint,
    /// A multiset exceeds the degree/universe bound fixed at key generation.
    CapacityExceeded {
        /// The degree / element index the operation required.
        needed: usize,
        /// The bound fixed at key generation.
        capacity: usize,
    },
    /// Aggregation was requested from a construction that does not support it.
    AggregationUnsupported,
    /// `ProofSum` inputs were not proofs against the same query set.
    MismatchedAggregation,
}

impl fmt::Display for AccError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccError::NotDisjoint => write!(f, "multisets are not disjoint"),
            AccError::CapacityExceeded { needed, capacity } => {
                write!(f, "accumulator capacity exceeded: need {needed}, capacity {capacity}")
            }
            AccError::AggregationUnsupported => {
                write!(f, "this accumulator construction does not support aggregation")
            }
            AccError::MismatchedAggregation => {
                write!(f, "proofs aggregate only when made against the same set")
            }
        }
    }
}

impl std::error::Error for AccError {}

/// Why untrusted wire bytes failed to decode into an accumulator value or
/// proof. Produced by [`Accumulator::value_from_bytes`] /
/// [`Accumulator::proof_from_bytes`], the inverse of the `*_bytes`
/// serializers and the *only* path by which SP-supplied bytes become group
/// elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The byte string is not exactly `value_size()` / `proof_size()` long.
    Length {
        /// The construction's fixed wire size.
        expected: usize,
        /// What arrived.
        got: usize,
    },
    /// A component point failed the checked decode
    /// ([`vchain_pairing::Affine::try_from_bytes`]).
    Point {
        /// Which fixed-size point slot (0-based, in serialization order).
        slot: usize,
        /// The underlying curve-level failure.
        error: PointDecodeError,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Length { expected, got } => {
                write!(f, "accumulator wire object must be {expected} bytes, got {got}")
            }
            DecodeError::Point { slot, error } => write!(f, "point slot {slot}: {error}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decode one fixed-size compressed point out of a concatenated wire object,
/// attributing failures to its `slot` index. The caller has already checked
/// the total length, so the slice here is exactly one point wide.
pub(crate) fn decode_slot<S: CurveSpec>(
    bytes: &[u8],
    slot: usize,
) -> Result<Affine<S>, DecodeError> {
    Affine::<S>::try_from_bytes(bytes).map_err(|error| DecodeError::Point { slot, error })
}

/// Derive `n` random-linear-combination coefficients from a batch
/// transcript, Fiat–Shamir style: the verifier hashes every value and proof
/// in the batch, so the coefficients are fixed only *after* the prover has
/// committed to all of them. Each coefficient is a uniform 128-bit scalar —
/// enough for a `2⁻¹²⁸` soundness error while keeping the verifier's
/// per-item scalar multiplications at half width.
pub(crate) fn rlc_coefficients(transcript: &[u8], n: usize) -> Vec<Fr> {
    let seed = vchain_hash::hash_domain("vchain/acc/batch-rlc", transcript);
    (0..n)
        .map(|i| {
            let d = vchain_hash::hash_concat(&[seed.as_bytes(), &(i as u64).to_le_bytes()]);
            Fr::from_bytes_reduce(&d.as_bytes()[..16])
        })
        .collect()
}

/// The canonical Fiat–Shamir coefficients for a batch of disjointness
/// triples: one transcript (every value and proof, in order), one
/// derivation. Both constructions' [`Accumulator::batch_verify_disjoint`]
/// overrides *and* the per-item error-attribution fallback call this single
/// function, so an aggregated check and any retry over the same items are
/// guaranteed to see identical coefficients.
pub fn batch_coefficients<A: Accumulator>(items: &[(A::Value, A::Value, A::Proof)]) -> Vec<Fr> {
    batch_coefficients_ctx::<A>(&[], items)
}

/// [`batch_coefficients`] with an explicit transcript *context* prepended
/// (length-prefixed, so distinct contexts can never collide by
/// concatenation). The light client's cross-block window batch feeds the
/// covered block heights here: the derived coefficients are then bound not
/// just to the values and proofs in the batch but to *which blocks of the
/// chain* each triple claims to refute — a proof transplanted between
/// batches over different coverage sees fresh coefficients even when the
/// item bytes coincide. An empty context reproduces [`batch_coefficients`]
/// exactly.
pub fn batch_coefficients_ctx<A: Accumulator>(
    context: &[u8],
    items: &[(A::Value, A::Value, A::Proof)],
) -> Vec<Fr> {
    let mut transcript = Vec::with_capacity(8 + context.len());
    transcript.extend_from_slice(&(context.len() as u64).to_le_bytes());
    transcript.extend_from_slice(context);
    for (a1, a2, proof) in items {
        transcript.extend_from_slice(&A::value_bytes(a1));
        transcript.extend_from_slice(&A::value_bytes(a2));
        transcript.extend_from_slice(&A::proof_bytes(proof));
    }
    rlc_coefficients(&transcript, items.len())
}

/// The interface the vChain query layer programs against (paper §4,
/// "Cryptographic Multiset Accumulator").
///
/// The full prove/verify round trip:
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use vchain_acc::{Acc2, Accumulator, MultiSet};
///
/// let acc = Acc2::keygen(64, &mut StdRng::seed_from_u64(1));
/// let block: MultiSet<u64> = [1u64, 2, 3].into_iter().collect();
/// let clause: MultiSet<u64> = [10u64, 11].into_iter().collect();
/// // SP side: prove the block's attribute set misses the whole clause…
/// let proof = acc.prove_disjoint(&block, &clause).unwrap();
/// // …user side: check it against the two accumulative values alone.
/// assert!(acc.verify_disjoint(&acc.setup(&block), &acc.setup(&clause), &proof));
/// ```
pub trait Accumulator: Clone + Send + Sync + 'static {
    /// The accumulative value `acc(X)` (the block's *AttDigest*).
    type Value: Clone + PartialEq + Eq + fmt::Debug + Send + Sync;
    /// A set-disjointness proof `π`.
    type Proof: Clone + fmt::Debug + Send + Sync;

    /// Short scheme name for experiment output ("acc1" / "acc2").
    fn name(&self) -> &'static str;

    /// `Setup(X, pk) → acc(X)` — publicly computable. Convenience wrapper
    /// over [`Accumulator::try_setup`] for *trusted* multisets (the miner /
    /// SP side, and the verifier's own query clauses): panics when the
    /// multiset exceeds the bound fixed at key generation. Code touching
    /// attacker-influenced sets must call `try_setup` instead.
    fn setup<E: AccElem>(&self, x: &MultiSet<E>) -> Self::Value {
        match self.try_setup(x) {
            Ok(v) => v,
            Err(e) => panic!("accumulator setup exceeded key bounds: {e}"),
        }
    }

    /// Fallible `Setup(X, pk) → acc(X)`: `Err(AccError::CapacityExceeded)`
    /// when the multiset exceeds the degree / universe bound fixed at key
    /// generation, instead of panicking. This is the form the verifier uses
    /// on sets an adversary can influence — a decoded `ClauseRef` can intern
    /// element encodings the honest key never covered, and that must be an
    /// attributable rejection, not a crash.
    fn try_setup<E: AccElem>(&self, x: &MultiSet<E>) -> Result<Self::Value, AccError>;

    /// `ProveDisjoint(X₁, X₂, pk) → π`, defined only when `X₁ ∩ X₂ = ∅`.
    fn prove_disjoint<E: AccElem>(
        &self,
        x1: &MultiSet<E>,
        x2: &MultiSet<E>,
    ) -> Result<Self::Proof, AccError>;

    /// Prove one multiset disjoint from *each* of several clause sets — the
    /// per-query shape of the SP proving pipeline, where one tree node or
    /// skip entry is refuted against several queries' clauses at once.
    ///
    /// The default implementation loops; the constructions override it to
    /// compute the `X₁`-side witness (Construction 1: the characteristic
    /// polynomial; Construction 2: the exponent coefficient vector) **once**
    /// and run only the cheap per-clause finalization in the loop.
    ///
    /// Errors follow [`Accumulator::prove_disjoint`]: the first clause that
    /// intersects `x1` (or overflows the key) aborts the whole call.
    ///
    /// ```
    /// use rand::rngs::StdRng;
    /// use rand::SeedableRng;
    /// use vchain_acc::{Acc2, Accumulator, MultiSet};
    ///
    /// let acc = Acc2::keygen(64, &mut StdRng::seed_from_u64(2));
    /// let node: MultiSet<u64> = [1u64, 2, 3, 4].into_iter().collect();
    /// let clauses: Vec<MultiSet<u64>> =
    ///     vec![[10u64, 11].into_iter().collect(), [20u64].into_iter().collect()];
    /// let proofs = acc.prove_disjoint_many(&node, &clauses).unwrap();
    /// // one shared witness, but byte-for-byte the same proofs as one-at-a-time
    /// for (p, c) in proofs.iter().zip(&clauses) {
    ///     assert_eq!(*p, acc.prove_disjoint(&node, c).unwrap());
    /// }
    /// ```
    fn prove_disjoint_many<E: AccElem>(
        &self,
        x1: &MultiSet<E>,
        clauses: &[MultiSet<E>],
    ) -> Result<Vec<Self::Proof>, AccError> {
        clauses.iter().map(|c| self.prove_disjoint(x1, c)).collect()
    }

    /// [`Accumulator::prove_disjoint_many`] with per-clause error
    /// attribution: instead of the first intersecting clause aborting the
    /// whole call, every clause gets its own `Result`, and the X₁-side
    /// witness is still shared across the successful ones.
    ///
    /// This is the recovery path for callers whose clause list comes from an
    /// *approximate* source (e.g. a Bloom-filtered candidate classification):
    /// one stale clause should cost one `Err`, not the whole batch.
    fn prove_disjoint_each<E: AccElem>(
        &self,
        x1: &MultiSet<E>,
        clauses: &[MultiSet<E>],
    ) -> Vec<Result<Self::Proof, AccError>> {
        clauses.iter().map(|c| self.prove_disjoint(x1, c)).collect()
    }

    /// `VerifyDisjoint(acc(X₁), acc(X₂), π, pk) → {0, 1}`.
    fn verify_disjoint(&self, a1: &Self::Value, a2: &Self::Value, proof: &Self::Proof) -> bool;

    /// Verify many `(acc(X₁), acc(X₂), π)` triples at once.
    ///
    /// The default implementation simply loops; the pairing-based
    /// constructions override it with a random-linear-combination
    /// aggregation — one aggregated check replaces many independent ones —
    /// that folds every triple into a *single* multi-pairing (one shared
    /// Miller loop, one final exponentiation). The combination
    /// coefficients are 128-bit scalars derived Fiat–Shamir-style from the
    /// whole transcript, so a cheating prover cannot anticipate them: a
    /// batch containing any invalid triple passes with probability at most
    /// `≈ 2⁻¹²⁸`.
    ///
    /// ```
    /// use rand::rngs::StdRng;
    /// use rand::SeedableRng;
    /// use vchain_acc::{Acc2, Accumulator, MultiSet};
    ///
    /// let acc = Acc2::keygen(64, &mut StdRng::seed_from_u64(3));
    /// let items: Vec<_> = [(1u64, 10u64), (2, 20)]
    ///     .iter()
    ///     .map(|&(x, y)| {
    ///         let (a, b): (MultiSet<u64>, MultiSet<u64>) =
    ///             ([x].into_iter().collect(), [y].into_iter().collect());
    ///         (acc.setup(&a), acc.setup(&b), acc.prove_disjoint(&a, &b).unwrap())
    ///     })
    ///     .collect();
    /// assert!(acc.batch_verify_disjoint(&items)); // one multi-pairing, not two
    /// ```
    fn batch_verify_disjoint(&self, items: &[(Self::Value, Self::Value, Self::Proof)]) -> bool {
        self.batch_verify_disjoint_ctx(&[], items)
    }

    /// [`Accumulator::batch_verify_disjoint`] with a transcript context:
    /// the Fiat–Shamir coefficients are derived by
    /// [`batch_coefficients_ctx`], binding them to caller-supplied bytes
    /// (the light client passes the covered block heights) in addition to
    /// the batch itself. The default implementation loops per item — each
    /// triple is checked solo, no coefficients are derived, so the context
    /// is irrelevant and ignored; the RLC overrides in [`Acc1`] / [`Acc2`]
    /// thread it into the shared transcript.
    fn batch_verify_disjoint_ctx(
        &self,
        context: &[u8],
        items: &[(Self::Value, Self::Value, Self::Proof)],
    ) -> bool {
        let _ = context;
        items.iter().all(|(a1, a2, proof)| self.verify_disjoint(a1, a2, proof))
    }

    /// [`Accumulator::batch_verify_disjoint`] with error attribution: on
    /// rejection, returns `Err(i)` naming the first invalid triple.
    ///
    /// The aggregated check and the per-item fallback run over the *same*
    /// item slice, and the Fiat–Shamir coefficients are derived exactly once
    /// per slice by [`batch_coefficients`] — an earlier revision re-derived
    /// them inside each construction's retry path, which made the fallback's
    /// transcript observably different from the batch it was explaining.
    fn batch_verify_disjoint_attributed(
        &self,
        items: &[(Self::Value, Self::Value, Self::Proof)],
    ) -> Result<(), usize> {
        self.batch_verify_disjoint_attributed_ctx(&[], items)
    }

    /// [`Accumulator::batch_verify_disjoint_attributed`] over a context-
    /// bound transcript (see [`Accumulator::batch_verify_disjoint_ctx`]).
    /// The per-item fallback re-verifies each triple solo, so attribution
    /// is context-independent; only the aggregated fast path consumes it.
    fn batch_verify_disjoint_attributed_ctx(
        &self,
        context: &[u8],
        items: &[(Self::Value, Self::Value, Self::Proof)],
    ) -> Result<(), usize> {
        if items.is_empty() || self.batch_verify_disjoint_ctx(context, items) {
            return Ok(());
        }
        for (i, (a1, a2, proof)) in items.iter().enumerate() {
            if !self.verify_disjoint(a1, a2, proof) {
                return Err(i);
            }
        }
        // Unreachable in practice: an all-valid batch satisfies the RLC
        // identity with probability 1. Fail closed regardless.
        Err(0)
    }

    /// Canonical bytes of a value, for embedding in block-header hashes.
    fn value_bytes(v: &Self::Value) -> Vec<u8>;

    /// Canonical bytes of a proof, for wire-size accounting and batch
    /// transcripts.
    fn proof_bytes(p: &Self::Proof) -> Vec<u8>;

    /// Wire size of a value in bytes. Must equal
    /// `Self::value_bytes(v).len()` for every value.
    fn value_size(&self) -> usize;

    /// Wire size of a proof in bytes. Must equal
    /// `Self::proof_bytes(p).len()` for every proof.
    fn proof_size(&self) -> usize;

    /// Decode a value from untrusted wire bytes — the checked inverse of
    /// [`Accumulator::value_bytes`]. Every component point passes the full
    /// curve decode ladder (length, canonical coordinates, on-curve,
    /// subgroup membership), so an `Ok` value is safe to feed to
    /// [`Accumulator::verify_disjoint`] and the GLS scalar-multiplication
    /// paths. Accepted bytes re-encode identically.
    fn value_from_bytes(&self, bytes: &[u8]) -> Result<Self::Value, DecodeError>;

    /// Decode a proof from untrusted wire bytes — the checked inverse of
    /// [`Accumulator::proof_bytes`]; same guarantees as
    /// [`Accumulator::value_from_bytes`].
    fn proof_from_bytes(&self, bytes: &[u8]) -> Result<Self::Proof, DecodeError>;

    /// Serialize the reusable `X₁`-side proving state for persistence, when
    /// the construction has one that is cheap to extract and small on disk.
    ///
    /// Construction 2's witness is the exponent coefficient vector of `X₁`
    /// (16 bytes per distinct element — see `Acc2::prove_witness`), so a
    /// service provider can persist it once per skip entry and, after a
    /// restart, refute *any* clause against that entry with only the cheap
    /// per-clause finalization — no `O(|X₁|)` re-extraction, and crucially no
    /// dependence on still holding the multiset in memory. Construction 1's
    /// witness is a full `G2` commitment ladder and is not worth persisting;
    /// it keeps the default `None`, which callers must treat as "re-prove
    /// from the multiset".
    fn witness_bytes<E: AccElem>(&self, _x1: &MultiSet<E>) -> Option<Vec<u8>> {
        None
    }

    /// Finalize a disjointness proof for `clause` from witness bytes
    /// previously produced by [`Accumulator::witness_bytes`].
    ///
    /// Returns `None` when the construction has no serialized-witness path,
    /// when the bytes fail validation (wrong version, malformed, out of the
    /// key's universe), or when the clause intersects the witnessed set —
    /// callers fall back to [`Accumulator::prove_disjoint`], which reports
    /// the precise error. A `Some` proof is byte-identical to the proof
    /// `prove_disjoint` would derive from the original multiset.
    fn finalize_from_witness_bytes<E: AccElem>(
        &self,
        _witness: &[u8],
        _clause: &MultiSet<E>,
    ) -> Option<Self::Proof> {
        None
    }

    /// Whether `Sum`/`ProofSum` are available (Construction 2 only).
    fn supports_aggregation(&self) -> bool {
        false
    }

    /// `Sum(acc(X₁), …, acc(Xₙ)) → acc(ΣXᵢ)`.
    fn sum(&self, _values: &[Self::Value]) -> Result<Self::Value, AccError> {
        Err(AccError::AggregationUnsupported)
    }

    /// `ProofSum(π₁, …, πₙ) → π'` for proofs against a common query set.
    fn proof_sum(&self, _proofs: &[Self::Proof]) -> Result<Self::Proof, AccError> {
        Err(AccError::AggregationUnsupported)
    }
}
