//! Multisets with explicit element counts.
//!
//! The canonical `BTreeMap` ordering makes accumulator inputs deterministic,
//! which in turn makes every AttDigest reproducible across miners.

use std::collections::BTreeMap;

/// A multiset over an ordered element type.
///
/// ```
/// use vchain_acc::MultiSet;
///
/// let a: MultiSet<u64> = [1u64, 1, 2].into_iter().collect();
/// let b: MultiSet<u64> = [2u64, 3].into_iter().collect();
/// assert_eq!(a.count(&1), 2);
/// assert_eq!(a.sum(&b).count(&2), 2); // counts add
/// assert_eq!(a.union(&b).count(&2), 1); // counts max
/// assert!(!a.is_disjoint(&b));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct MultiSet<E: Ord> {
    counts: BTreeMap<E, u64>,
}

impl<E: Ord + Copy> MultiSet<E> {
    /// The empty multiset.
    pub fn new() -> Self {
        Self { counts: BTreeMap::new() }
    }

    /// Insert one occurrence.
    pub fn insert(&mut self, e: E) {
        *self.counts.entry(e).or_insert(0) += 1;
    }

    /// Insert `count` occurrences (no-op for `count == 0`).
    pub fn insert_many(&mut self, e: E, count: u64) {
        if count > 0 {
            *self.counts.entry(e).or_insert(0) += count;
        }
    }

    /// Number of distinct elements (the support size).
    pub fn distinct_len(&self) -> usize {
        self.counts.len()
    }

    /// Total number of occurrences (the multiset cardinality) — this is the
    /// degree of Construction 1's characteristic polynomial.
    pub fn total_count(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Is the multiset empty?
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Does the support contain `e`?
    pub fn contains(&self, e: &E) -> bool {
        self.counts.contains_key(e)
    }

    /// Multiplicity of `e` (0 when absent).
    pub fn count(&self, e: &E) -> u64 {
        self.counts.get(e).copied().unwrap_or(0)
    }

    /// Iterate `(element, multiplicity)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&E, u64)> {
        self.counts.iter().map(|(e, &c)| (e, c))
    }

    /// Iterate the support in canonical order.
    pub fn elements(&self) -> impl Iterator<Item = &E> {
        self.counts.keys()
    }

    /// Support disjointness: no shared element, regardless of counts.
    pub fn is_disjoint(&self, other: &Self) -> bool {
        // Walk the smaller one.
        let (small, large) =
            if self.distinct_len() <= other.distinct_len() { (self, other) } else { (other, self) };
        !small.counts.keys().any(|e| large.counts.contains_key(e))
    }

    /// Do the supports share any element?
    pub fn intersects(&self, other: &Self) -> bool {
        !self.is_disjoint(other)
    }

    /// Multiset *sum* (counts add) — the paper's `Σ` used by the inter-block
    /// index and `Sum(·)` aggregation.
    pub fn sum(&self, other: &Self) -> Self {
        let mut out = self.clone();
        for (e, c) in other.iter() {
            out.insert_many(*e, c);
        }
        out
    }

    /// Multiset *union* (counts max) — the paper's `∪` used when merging
    /// intra-block index nodes. Support equals the union of supports.
    pub fn union(&self, other: &Self) -> Self {
        let mut out = self.clone();
        for (e, c) in other.iter() {
            let cur = out.counts.entry(*e).or_insert(0);
            *cur = (*cur).max(c);
        }
        out
    }

    /// Jaccard similarity of the supports, the clustering criterion of the
    /// intra-block index build (Algorithm 2).
    pub fn jaccard(&self, other: &Self) -> f64 {
        if self.is_empty() && other.is_empty() {
            return 1.0;
        }
        let inter = self.counts.keys().filter(|e| other.counts.contains_key(e)).count();
        let union = self.distinct_len() + other.distinct_len() - inter;
        inter as f64 / union as f64
    }

    /// Number of distinct shared elements.
    pub fn intersection_size(&self, other: &Self) -> usize {
        self.counts.keys().filter(|e| other.counts.contains_key(e)).count()
    }
}

impl<E: crate::AccElem> MultiSet<E> {
    /// Construction 1's characteristic polynomial
    /// `P_X(s) = ∏_{x ∈ X} (s + x)^{count(x)}` over the element
    /// representatives, built with the subproduct tree of
    /// [`Poly::char_poly`](crate::Poly::char_poly).
    ///
    /// The canonical `BTreeMap` iteration order makes the leaf order — and
    /// therefore the exact coefficient vector — deterministic across
    /// miners, which keeps AttDigests reproducible.
    ///
    /// ```
    /// use vchain_acc::MultiSet;
    ///
    /// let x: MultiSet<u64> = [1u64, 2, 2, 3].into_iter().collect();
    /// // degree = total multiplicity, not support size
    /// assert_eq!(x.char_poly().degree(), Some(4));
    /// assert_eq!(MultiSet::<u64>::new().char_poly().degree(), Some(0)); // ∅ ↦ 1
    /// ```
    pub fn char_poly(&self) -> crate::Poly {
        crate::Poly::char_poly(self.iter().map(|(e, c)| (e.to_fr(), c)))
    }
}

impl<E: Ord + Copy> FromIterator<E> for MultiSet<E> {
    fn from_iter<T: IntoIterator<Item = E>>(iter: T) -> Self {
        let mut ms = Self::new();
        for e in iter {
            ms.insert(e);
        }
        ms
    }
}

impl<E: Ord + Copy> FromIterator<(E, u64)> for MultiSet<E> {
    fn from_iter<T: IntoIterator<Item = (E, u64)>>(iter: T) -> Self {
        let mut ms = Self::new();
        for (e, c) in iter {
            ms.insert_many(e, c);
        }
        ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: &[u64]) -> MultiSet<u64> {
        v.iter().copied().collect()
    }

    #[test]
    fn counting() {
        let m = ms(&[1, 2, 2, 3, 3, 3]);
        assert_eq!(m.distinct_len(), 3);
        assert_eq!(m.total_count(), 6);
        assert_eq!(m.count(&3), 3);
        assert_eq!(m.count(&9), 0);
        assert!(m.contains(&1));
    }

    #[test]
    fn disjointness() {
        assert!(ms(&[1, 2]).is_disjoint(&ms(&[3, 4])));
        assert!(!ms(&[1, 2]).is_disjoint(&ms(&[2, 3])));
        assert!(ms(&[]).is_disjoint(&ms(&[1])));
    }

    #[test]
    fn sum_vs_union() {
        let a = ms(&[1, 1, 2]);
        let b = ms(&[1, 3]);
        let s = a.sum(&b);
        assert_eq!(s.count(&1), 3);
        let u = a.union(&b);
        assert_eq!(u.count(&1), 2); // max(2, 1)
        assert_eq!(u.count(&3), 1);
    }

    #[test]
    fn jaccard() {
        let a = ms(&[1, 2, 3]);
        let b = ms(&[2, 3, 4]);
        assert!((a.jaccard(&b) - 0.5).abs() < 1e-12);
        assert_eq!(a.jaccard(&a), 1.0);
        assert_eq!(ms(&[]).jaccard(&ms(&[])), 1.0);
        assert_eq!(a.jaccard(&ms(&[])), 0.0);
    }

    #[test]
    fn zero_count_insert_is_noop() {
        let mut m = ms(&[]);
        m.insert_many(5, 0);
        assert!(m.is_empty());
    }
}
