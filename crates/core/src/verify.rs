//! Client-side result verification (paper §5.1, §6; security model §8).
//!
//! The light-node user holds only validated block headers. Given `⟨R, VO⟩`
//! from the untrusted SP, verification establishes:
//!
//! * **Soundness** — every returned object is authentic (its leaf hash
//!   reconstructs the header commitment) and satisfies the query (checked
//!   directly), and every mismatch proof verifies against a clause that is
//!   genuinely part of the query.
//! * **Completeness** — the coverage entries reconstruct the committed ADS
//!   roots, so no leaf can be hidden; every in-window block is covered
//!   exactly once; skips verify against the committed skip-list roots.

// This module sits on the Byzantine-SP boundary: every function here runs
// on attacker-shaped input, so panicking constructs are denied outright
// (audited again by the `panic_audit` integration test).
#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic, clippy::unreachable)]

use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet, HashMap};

use vchain_acc::{Accumulator, MultiSet};
use vchain_chain::{LightClient, Object};
use vchain_hash::{hash_pair, Digest};

use crate::element::ElementId;
use crate::inter::{level_hash_from_parts, pre_skipped_hash, skiplist_root_from_hashes};
use crate::intra::{internal_hash, leaf_hash};
use crate::miner::{IndexScheme, MinerConfig};
use crate::query::CompiledQuery;
use crate::vo::{BlockCoverage, BlockVo, ClauseRef, MismatchProof, QueryResponse, VoNode};

/// Why verification rejected a response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// The reconstructed ADS root differs from the block header.
    RootMismatch {
        /// Offending block height.
        height: u64,
    },
    /// A disjointness proof failed.
    BadProof {
        /// Offending block height.
        height: u64,
    },
    /// A clause reference is not valid for this query.
    BadClause {
        /// Offending block height.
        height: u64,
    },
    /// A returned object does not satisfy the query (or its timestamp lies
    /// outside the window).
    ResultNotMatching {
        /// Offending block height.
        height: u64,
        /// Id of the object that does not match.
        object_id: u64,
    },
    /// Results referenced by the VO are missing or duplicated.
    ResultIndexing {
        /// Offending block height.
        height: u64,
    },
    /// A block in the window is not covered by the VO.
    MissingCoverage {
        /// The uncovered height.
        height: u64,
    },
    /// A block is covered more than once.
    DuplicateCoverage {
        /// The doubly-covered height.
        height: u64,
    },
    /// The skip hash chain does not match the light client's headers.
    SkipHashMismatch {
        /// Height of the block whose skip list was used.
        height: u64,
    },
    /// The reconstructed skip-list root differs from the header.
    SkipRootMismatch {
        /// Height of the block whose skip list was used.
        height: u64,
    },
    /// The response used a structure the scheme does not provide.
    SchemeViolation,
    /// The light client has no header at this height.
    UnknownBlock {
        /// The unknown height.
        height: u64,
    },
    /// A batch group reference is dangling.
    BadGroup {
        /// Offending block height.
        height: u64,
    },
    /// Batch groups require an aggregating accumulator.
    AggregationUnsupported,
    /// Time-window verification was invoked on a query compiled without a
    /// window (a subscription query fed to the wrong entry point).
    MissingWindow,
    /// A subscription update claims an invalid or unanchored height
    /// interval (`from > to`, or endpoints beyond the known chain).
    InvalidUpdateInterval {
        /// Claimed first covered height.
        from: u64,
        /// Claimed last covered height.
        to: u64,
    },
    /// The response bytes failed structural decoding before any
    /// cryptographic check ran.
    Malformed(crate::wire::WireError),
    /// The streamed-verification worker thread died before delivering its
    /// verdict (a defect in the *client*, never attributable to the SP —
    /// surfaced as its own variant so callers cannot mistake a local crash
    /// for a refuted response).
    PipelineLost,
}

impl core::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for VerifyError {}

/// Verify a time-window query response straight from untrusted wire bytes:
/// structural decode ([`crate::wire`]) then full verification. This is the
/// light client's network-facing entry point — no input can panic it.
/// Accepts both wire codec versions ([`crate::wire::decode_response_auto`]),
/// so a v2-speaking client keeps interoperating with a v1-encoding SP.
pub fn verify_encoded_response<A: Accumulator>(
    q: &CompiledQuery,
    bytes: &[u8],
    light: &LightClient,
    cfg: &MinerConfig,
    acc: &A,
) -> Result<Vec<Object>, VerifyError> {
    let (response, _version) =
        crate::wire::decode_response_auto(acc, bytes).map_err(VerifyError::Malformed)?;
    verify_response(q, &response, light, cfg, acc)
}

/// Verify a time-window query response against the light client's headers.
/// On success returns the verified result objects (newest block first).
pub fn verify_response<A: Accumulator>(
    q: &CompiledQuery,
    response: &QueryResponse<A>,
    light: &LightClient,
    cfg: &MinerConfig,
    acc: &A,
) -> Result<Vec<Object>, VerifyError> {
    let (ts, te) = q.time_window.ok_or(VerifyError::MissingWindow)?;

    // Expected coverage: every known block whose timestamp is in-window.
    let expected: BTreeSet<u64> = light
        .headers()
        .iter()
        .filter(|h| h.timestamp >= ts && h.timestamp <= te)
        .map(|h| h.height)
        .collect();
    verify_with_expected(q, response, light, cfg, acc, expected)
}

/// Deferred disjointness checks, collected across whole responses — and,
/// via [`DisjointBatch::append`], across *windows* — then flushed as one
/// random-linear-combination batch: every skip-entry, inline-mismatch and
/// §6.3 batch-group check lands here, so an entire query response (or an
/// 8-window scan, see `core::client::WindowScan`) costs O(1) final
/// exponentiations instead of O(clauses).
///
/// The Fiat–Shamir transcript for the batch coefficients is bound to the
/// covered block heights in push order
/// ([`vchain_acc::Accumulator::batch_verify_disjoint_attributed_ctx`]):
/// the *cross-block transcript*. Coefficients are verifier-local, so this
/// binding changes nothing on the wire.
pub struct DisjointBatch<A: Accumulator> {
    items: Vec<(A::Value, A::Value, A::Proof)>,
    heights: Vec<u64>,
}

impl<A: Accumulator> Default for DisjointBatch<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Accumulator> DisjointBatch<A> {
    /// An empty batch.
    pub fn new() -> Self {
        Self { items: Vec::new(), heights: Vec::new() }
    }

    /// Defer one disjointness check `e(a1, a2) ≟ e(proof-side)` attributed
    /// to `height` for error reporting and transcript binding.
    pub fn push(&mut self, a1: A::Value, a2: A::Value, proof: A::Proof, height: u64) {
        self.items.push((a1, a2, proof));
        self.heights.push(height);
    }

    /// Merge another batch into this one (used by the window scan to fold
    /// per-window batches into one cross-window flush).
    pub fn append(&mut self, mut other: DisjointBatch<A>) {
        self.items.append(&mut other.items);
        self.heights.append(&mut other.heights);
    }

    /// Deferred checks currently held.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the batch holds no deferred checks.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The cross-block transcript context: the covered heights, length
    /// prefixed, in push order.
    fn context(&self) -> Vec<u8> {
        let mut ctx = Vec::with_capacity(8 + 8 * self.heights.len());
        ctx.extend_from_slice(&(self.heights.len() as u64).to_le_bytes());
        for h in &self.heights {
            ctx.extend_from_slice(&h.to_le_bytes());
        }
        ctx
    }

    /// Run the aggregated check; on rejection the accumulator's attributed
    /// fallback re-verifies the *same* item slice (with the Fiat–Shamir
    /// coefficients derived once — see
    /// [`vchain_acc::Accumulator::batch_verify_disjoint_attributed_ctx`])
    /// so the error still names the offending height.
    pub fn flush(self, acc: &A) -> Result<(), VerifyError> {
        let ctx = self.context();
        acc.batch_verify_disjoint_attributed_ctx(&ctx, &self.items).map_err(|i| {
            VerifyError::BadProof { height: self.heights.get(i).copied().unwrap_or(0) }
        })
    }
}

/// Incremental window verification: the per-coverage-entry core of
/// [`verify_with_expected`], factored out so callers can drive it one
/// entry at a time — which is exactly what the streamed pipeline
/// (`core::client`) needs to verify block *i* while block *i + 1* is still
/// being decoded.
///
/// Borrows are [`Cow`]s: the batch path ([`verify_with_expected`]) passes
/// borrowed query/headers and pays zero clones; the streamed pipeline
/// passes owned copies, giving a `WindowVerifier<'static, A>` it can move
/// into a worker thread. The accumulator is *not* stored — every method
/// takes it by reference — so the verifier stays `Send` whenever the
/// accumulator's value/proof types are.
pub struct WindowVerifier<'a, A: Accumulator> {
    q: Cow<'a, CompiledQuery>,
    light: Cow<'a, LightClient>,
    cfg: MinerConfig,
    expected: BTreeSet<u64>,
    covered: BTreeSet<u64>,
    verified_results: Vec<Object>,
    result_heights: BTreeSet<u64>,
    clause_cache: ClauseCache<A>,
    batch: DisjointBatch<A>,
}

impl<'a, A: Accumulator> WindowVerifier<'a, A> {
    /// A verifier over an explicit expected-coverage set (the subscription
    /// entry point; window queries use [`WindowVerifier::for_window`]).
    pub fn new(
        q: Cow<'a, CompiledQuery>,
        light: Cow<'a, LightClient>,
        cfg: MinerConfig,
        expected: BTreeSet<u64>,
    ) -> Self {
        Self {
            q,
            light,
            cfg,
            expected,
            covered: BTreeSet::new(),
            verified_results: Vec::new(),
            result_heights: BTreeSet::new(),
            clause_cache: ClauseCache::new(),
            batch: DisjointBatch::new(),
        }
    }

    /// A verifier whose expected coverage is derived from the query's time
    /// window against the light client's headers — the same derivation as
    /// [`verify_response`]. Errors with [`VerifyError::MissingWindow`] on a
    /// windowless (subscription) query.
    pub fn for_window(
        q: Cow<'a, CompiledQuery>,
        light: Cow<'a, LightClient>,
        cfg: MinerConfig,
    ) -> Result<Self, VerifyError> {
        let (ts, te) = q.time_window.ok_or(VerifyError::MissingWindow)?;
        let expected: BTreeSet<u64> = light
            .headers()
            .iter()
            .filter(|h| h.timestamp >= ts && h.timestamp <= te)
            .map(|h| h.height)
            .collect();
        Ok(Self::new(q, light, cfg, expected))
    }

    /// The expected coverage set this verifier enforces.
    pub fn expected(&self) -> &BTreeSet<u64> {
        &self.expected
    }

    /// Deferred pairing checks collected so far (flushed or folded by the
    /// finish flavours).
    pub fn pending_checks(&self) -> usize {
        self.batch.len()
    }

    /// Verify one coverage entry. `block_results` are the claimed result
    /// objects for the entry's block (empty for skips). Defers all pairing
    /// checks into the internal batch; a returned error is terminal for the
    /// response.
    pub fn entry(
        &mut self,
        acc: &A,
        cov: &BlockCoverage<A>,
        block_results: &[Object],
    ) -> Result<(), VerifyError> {
        match cov {
            BlockCoverage::Block { height, vo } => {
                let header = self
                    .light
                    .header(*height)
                    .ok_or(VerifyError::UnknownBlock { height: *height })?;
                let ads_root = header.ads_root;
                if !self.covered.insert(*height) {
                    return Err(VerifyError::DuplicateCoverage { height: *height });
                }
                if !block_results.is_empty() {
                    self.result_heights.insert(*height);
                }
                let root = verify_block_vo_into(
                    vo,
                    block_results,
                    &self.q,
                    acc,
                    *height,
                    &self.cfg,
                    &mut self.clause_cache,
                    &mut self.batch,
                )?;
                if root != ads_root {
                    return Err(VerifyError::RootMismatch { height: *height });
                }
                // every result object satisfies the query *and* the window
                for o in block_results {
                    if !self.q.object_matches(o) {
                        return Err(VerifyError::ResultNotMatching {
                            height: *height,
                            object_id: o.id,
                        });
                    }
                }
                self.verified_results.extend(block_results.iter().cloned());
                Ok(())
            }
            BlockCoverage::Skip { height, distance, att, proof, clause, siblings } => {
                if self.cfg.scheme != IndexScheme::Both {
                    return Err(VerifyError::SchemeViolation);
                }
                let header = self
                    .light
                    .header(*height)
                    .ok_or(VerifyError::UnknownBlock { height: *height })?;
                if *distance > *height {
                    return Err(VerifyError::SkipHashMismatch { height: *height });
                }
                let skiplist_root = header.skiplist_root;
                // 1. the covered run: mark blocks as covered
                for hh in (*height - *distance)..*height {
                    // blocks outside the window may be covered harmlessly,
                    // but duplicates within the window are rejected
                    if self.expected.contains(&hh) && !self.covered.insert(hh) {
                        return Err(VerifyError::DuplicateCoverage { height: hh });
                    }
                }
                // 2. recompute PreSkippedHash from the user's own headers
                let mut hashes = Vec::with_capacity(*distance as usize);
                for hh in (*height - *distance)..*height {
                    hashes.push(
                        self.light
                            .block_hash(hh)
                            .ok_or(VerifyError::UnknownBlock { height: hh })?,
                    );
                }
                let psh = pre_skipped_hash(&hashes);
                // 3. rebuild SkipListRoot with the provided sibling levels
                let mut level_hashes: Vec<(u64, Digest)> = siblings.clone();
                level_hashes.push((*distance, level_hash_from_parts::<A>(&psh, att)));
                level_hashes.sort_by_key(|(d, _)| *d);
                let root = skiplist_root_from_hashes(
                    &level_hashes.iter().map(|(_, h)| *h).collect::<Vec<_>>(),
                );
                if root != skiplist_root {
                    return Err(VerifyError::SkipRootMismatch { height: *height });
                }
                // 4. the disjointness proof against a valid clause
                let clause_val = resolve_clause(acc, &self.q, clause, &mut self.clause_cache)
                    .ok_or(VerifyError::BadClause { height: *height })?;
                self.batch.push(att.clone(), clause_val, proof.clone(), *height);
                Ok(())
            }
        }
    }

    /// The completeness checks shared by both finish flavours: every
    /// expected block covered, no results smuggled in for uncovered blocks.
    fn check_complete(&self) -> Result<(), VerifyError> {
        if let Some(&missing) = self.expected.difference(&self.covered).next() {
            return Err(VerifyError::MissingCoverage { height: missing });
        }
        for h in &self.result_heights {
            if !self.expected.contains(h) {
                return Err(VerifyError::ResultIndexing { height: *h });
            }
        }
        Ok(())
    }

    /// Flush the deferred pairing batch, run the completeness checks, and
    /// return the verified results (coverage order).
    pub fn finish(mut self, acc: &A) -> Result<Vec<Object>, VerifyError> {
        std::mem::take(&mut self.batch).flush(acc)?;
        self.check_complete()?;
        Ok(self.verified_results)
    }

    /// Like [`WindowVerifier::finish`], but instead of flushing, fold this
    /// window's deferred pairing checks into `batch` — the cross-window
    /// aggregation a multi-window scan uses to pay for one pairing flush
    /// instead of one per window (`core::client::WindowScan`).
    ///
    /// The returned results are *provisional* until the shared batch is
    /// flushed: the structural and hash-chain checks have all passed, but
    /// the disjointness proofs have not been pairing-checked yet.
    pub fn finish_into(self, batch: &mut DisjointBatch<A>) -> Result<Vec<Object>, VerifyError> {
        self.check_complete()?;
        batch.append(self.batch);
        Ok(self.verified_results)
    }
}

/// Core verification against an explicit set of expected block heights —
/// shared by time-window queries and subscription updates (§7), whose
/// expected coverage is the interval since the last update. Drives a
/// [`WindowVerifier`] over the response's coverage entries.
pub fn verify_with_expected<A: Accumulator>(
    q: &CompiledQuery,
    response: &QueryResponse<A>,
    light: &LightClient,
    cfg: &MinerConfig,
    acc: &A,
    expected: BTreeSet<u64>,
) -> Result<Vec<Object>, VerifyError> {
    let results_by_height: BTreeMap<u64, &Vec<Object>> =
        response.results.iter().map(|(h, v)| (*h, v)).collect();
    if results_by_height.len() != response.results.len() {
        return Err(VerifyError::ResultIndexing { height: 0 });
    }

    let mut verifier = WindowVerifier::new(Cow::Borrowed(q), Cow::Borrowed(light), *cfg, expected);
    static EMPTY: Vec<Object> = Vec::new();
    for cov in &response.coverage {
        let block_results = match cov {
            BlockCoverage::Block { height, .. } => {
                results_by_height.get(height).copied().unwrap_or(&EMPTY)
            }
            BlockCoverage::Skip { .. } => &EMPTY,
        };
        verifier.entry(acc, cov, block_results)?;
    }

    let expected = verifier.expected().clone();
    let verified_results = verifier.finish(acc)?;

    // No results smuggled in for uncovered blocks — including height keys
    // that carry an *empty* object list, which the entry-level bookkeeping
    // above cannot see.
    for h in results_by_height.keys() {
        if !expected.contains(h) {
            return Err(VerifyError::ResultIndexing { height: *h });
        }
    }

    Ok(verified_results)
}

/// A cache of clause accumulator values. Clause sets are query-side and
/// reused across blocks, so the verifier computes each `acc(ϒᵢ)` once.
pub struct ClauseCache<A: Accumulator>(HashMap<ClauseKey, A::Value>);

impl<A: Accumulator> ClauseCache<A> {
    /// An empty cache.
    pub fn new() -> Self {
        Self(HashMap::new())
    }
}

impl<A: Accumulator> Default for ClauseCache<A> {
    fn default() -> Self {
        Self::new()
    }
}

#[derive(Clone, PartialEq, Eq, Hash)]
enum ClauseKey {
    Index(u16),
    Cell(u8, Vec<(u8, u64)>),
}

fn clause_key(c: &ClauseRef) -> ClauseKey {
    match c {
        ClauseRef::Index(i) => ClauseKey::Index(*i),
        ClauseRef::Cell { len, prefixes } => ClauseKey::Cell(*len, prefixes.clone()),
    }
}

/// Resolve a clause reference to its accumulator value, caching by key.
/// `None` when the reference is not valid for this query.
pub fn resolve_clause<A: Accumulator>(
    acc: &A,
    q: &CompiledQuery,
    clause: &ClauseRef,
    cache: &mut ClauseCache<A>,
) -> Option<A::Value> {
    let key = clause_key(clause);
    if let Some(v) = cache.0.get(&key) {
        return Some(v.clone());
    }
    let ms = clause.resolve(q).ok()?;
    // The reference decoded from the VO can name element sets the key was
    // never sized for — that is the SP's problem, not a verifier panic.
    let v = acc.try_setup(&ms).ok()?;
    cache.0.insert(key, v.clone());
    Some(v)
}

/// Verify one block VO and return the reconstructed ADS root. Standalone
/// entry point: runs its own (per-block) pairing batch. Response-level
/// verification uses [`verify_with_expected`], which batches across blocks.
pub fn verify_block_vo<A: Accumulator>(
    vo: &BlockVo<A>,
    block_results: &[Object],
    q: &CompiledQuery,
    acc: &A,
    height: u64,
    cfg: &MinerConfig,
    clause_cache: &mut ClauseCache<A>,
) -> Result<Digest, VerifyError> {
    let mut batch = DisjointBatch::new();
    let root =
        verify_block_vo_into(vo, block_results, q, acc, height, cfg, clause_cache, &mut batch)?;
    batch.flush(acc)?;
    Ok(root)
}

/// [`verify_block_vo`] with the pairing checks deferred into `batch`.
#[allow(clippy::too_many_arguments)]
fn verify_block_vo_into<A: Accumulator>(
    vo: &BlockVo<A>,
    block_results: &[Object],
    q: &CompiledQuery,
    acc: &A,
    height: u64,
    cfg: &MinerConfig,
    clause_cache: &mut ClauseCache<A>,
    batch: &mut DisjointBatch<A>,
) -> Result<Digest, VerifyError> {
    let mut consumed = vec![false; block_results.len()];
    // group id -> summed member AttDigests (verified after the walk)
    let mut group_members: BTreeMap<u16, Vec<A::Value>> = BTreeMap::new();
    let root = walk(
        &vo.root,
        block_results,
        &mut consumed,
        q,
        acc,
        height,
        cfg,
        clause_cache,
        &mut group_members,
        batch,
    )?;
    if !consumed.iter().all(|&c| c) {
        return Err(VerifyError::ResultIndexing { height });
    }
    // §6.3: each batch group costs one Sum; its disjointness check joins
    // the deferred batch like every other proof.
    for (gid, members) in group_members {
        let g = vo.groups.get(gid as usize).ok_or(VerifyError::BadGroup { height })?;
        if !acc.supports_aggregation() {
            return Err(VerifyError::AggregationUnsupported);
        }
        let summed = acc.sum(&members).map_err(|_| VerifyError::AggregationUnsupported)?;
        let clause_val = resolve_clause(acc, q, &g.clause, clause_cache)
            .ok_or(VerifyError::BadClause { height })?;
        batch.push(summed, clause_val, g.proof.clone(), height);
    }
    Ok(root)
}

#[allow(clippy::too_many_arguments)]
fn walk<A: Accumulator>(
    node: &VoNode<A>,
    block_results: &[Object],
    consumed: &mut [bool],
    q: &CompiledQuery,
    acc: &A,
    height: u64,
    cfg: &MinerConfig,
    clause_cache: &mut ClauseCache<A>,
    group_members: &mut BTreeMap<u16, Vec<A::Value>>,
    batch: &mut DisjointBatch<A>,
) -> Result<Digest, VerifyError> {
    match node {
        VoNode::Internal { att, left, right } => {
            let hl = walk(
                left,
                block_results,
                consumed,
                q,
                acc,
                height,
                cfg,
                clause_cache,
                group_members,
                batch,
            )?;
            let hr = walk(
                right,
                block_results,
                consumed,
                q,
                acc,
                height,
                cfg,
                clause_cache,
                group_members,
                batch,
            )?;
            let pair = hash_pair(&hl, &hr);
            match (att, cfg.scheme) {
                // `nil` internal nodes are plain Merkle pairs
                (None, IndexScheme::Nil) => Ok(pair),
                (Some(a), IndexScheme::Intra | IndexScheme::Both) => {
                    Ok(internal_hash::<A>(&pair, a))
                }
                // scheme/structure mismatch — an SP cannot downgrade the
                // index to dodge pruning commitments
                _ => Err(VerifyError::SchemeViolation),
            }
        }
        VoNode::InternalMismatch { child_hash, att, proof } => {
            if cfg.scheme == IndexScheme::Nil {
                return Err(VerifyError::SchemeViolation);
            }
            check_mismatch_proof(att, proof, q, acc, height, clause_cache, group_members, batch)?;
            Ok(internal_hash::<A>(child_hash, att))
        }
        VoNode::LeafMatch { att, result_idx } => {
            let idx = *result_idx as usize;
            let obj = block_results.get(idx).ok_or(VerifyError::ResultIndexing { height })?;
            if consumed[idx] {
                return Err(VerifyError::ResultIndexing { height });
            }
            consumed[idx] = true;
            Ok(leaf_hash::<A>(&obj.digest(), att))
        }
        VoNode::LeafMismatch { obj_hash, att, proof } => {
            check_mismatch_proof(att, proof, q, acc, height, clause_cache, group_members, batch)?;
            Ok(leaf_hash::<A>(obj_hash, att))
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn check_mismatch_proof<A: Accumulator>(
    att: &A::Value,
    proof: &MismatchProof<A>,
    q: &CompiledQuery,
    acc: &A,
    height: u64,
    clause_cache: &mut ClauseCache<A>,
    group_members: &mut BTreeMap<u16, Vec<A::Value>>,
    batch: &mut DisjointBatch<A>,
) -> Result<(), VerifyError> {
    match proof {
        MismatchProof::Inline { proof, clause } => {
            let clause_val = resolve_clause(acc, q, clause, clause_cache)
                .ok_or(VerifyError::BadClause { height })?;
            batch.push(att.clone(), clause_val, proof.clone(), height);
            Ok(())
        }
        MismatchProof::Group(gid) => {
            group_members.entry(*gid).or_default().push(att.clone());
            Ok(())
        }
    }
}

/// Verify a clause reference alone resolves to a valid multiset for `q`
/// (exported for subscription verification).
pub fn clause_multiset(q: &CompiledQuery, clause: &ClauseRef) -> Option<MultiSet<ElementId>> {
    clause.resolve(q).ok()
}
