//! The inverted prefix tree (IP-Tree) for scalable subscription processing
//! (paper §7.1, Fig. 8, Algorithm 6).
//!
//! A grid tree over the numeric space: each node is a dyadic cell (one
//! binary prefix per dimension). Every node carries
//!
//! * a **range-condition inverted file (RCIF)**: the queries whose range
//!   boxes fully or partially cover the cell, and
//! * a **Boolean-condition inverted file (BCIF)**: for full-cover queries,
//!   their Boolean clauses grouped by content, so one disjointness test
//!   (and one proof) serves every query sharing the clause.
//!
//! Nodes split while any partially covering query remains (up to
//! `max_depth`).

use std::collections::BTreeMap;

use vchain_acc::MultiSet;

use crate::element::{Element, ElementId};
use crate::query::CompiledQuery;

/// Identifier assigned by the subscription engine at registration.
pub type QueryId = u32;

/// How a query's range box relates to a cell (paper Fig. 8).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoverType {
    /// The cell lies entirely inside the query box.
    Full,
    /// The boxes intersect but the cell is not contained.
    Partial,
}

/// A dyadic grid cell: a `depth`-bit prefix in each grid dimension.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cell {
    /// Prefix length in bits (0 = the whole domain).
    pub depth: u8,
    /// `(dim, prefix_bits)` pairs, one per grid dimension.
    pub prefixes: Vec<(u8, u64)>,
}

impl Cell {
    /// The interned prefix elements of this cell (empty at the root).
    pub fn elements(&self) -> Vec<ElementId> {
        if self.depth == 0 {
            return Vec::new();
        }
        self.prefixes
            .iter()
            .map(|(dim, bits)| {
                ElementId::intern(&Element::Prefix { dim: *dim, len: self.depth, bits: *bits })
            })
            .collect()
    }

    /// `[lo, hi]` of this cell in dimension `dim`.
    pub fn interval(&self, dim: u8, domain_bits: u8) -> (u64, u64) {
        if self.depth == 0 {
            return (0, (1u64 << domain_bits) - 1);
        }
        let bits = self
            .prefixes
            .iter()
            .find(|(d, _)| *d == dim)
            .map(|(_, b)| *b)
            .expect("dimension not in grid");
        crate::trans::prefix_interval(self.depth, bits, domain_bits)
    }

    /// Does a multiset contain *every* per-dim prefix of the cell? When
    /// false for some dimension, no summarized object can lie in the cell.
    pub fn may_contain(&self, ms: &MultiSet<ElementId>) -> bool {
        self.elements().iter().all(|e| ms.contains(e))
    }
}

/// One IP-Tree node.
#[derive(Clone, Debug)]
pub struct IpNode {
    /// The grid cell this node covers.
    pub cell: Cell,
    /// RCIF: `(query, cover type)`.
    pub rcif: Vec<(QueryId, CoverType)>,
    /// BCIF: Boolean clause content → full-cover queries sharing it.
    pub bcif: Vec<(Vec<ElementId>, Vec<QueryId>)>,
    /// The `2^dims` sub-cells (empty at the leaves).
    pub children: Vec<IpNode>,
}

/// The inverted prefix tree.
#[derive(Clone, Debug)]
pub struct IpTree {
    /// The root node (the full domain).
    pub root: IpNode,
    /// Width of every numeric dimension in bits.
    pub domain_bits: u8,
    /// The grid dimensions, ascending.
    pub dims: Vec<u8>,
    /// Depth cap (paper §7.1's threshold).
    pub max_depth: u8,
}

/// The query box of a compiled query in one dimension (full domain when the
/// query has no predicate there).
fn query_interval(q: &CompiledQuery, dim: u8, domain_bits: u8) -> (u64, u64) {
    q.ranges
        .iter()
        .find(|r| r.dim == dim)
        .map(|r| (r.lo, r.hi))
        .unwrap_or((0, (1u64 << domain_bits) - 1))
}

fn classify(q: &CompiledQuery, cell: &Cell, dims: &[u8], domain_bits: u8) -> Option<CoverType> {
    let mut full = true;
    for &dim in dims {
        let (clo, chi) = cell.interval(dim, domain_bits);
        let (qlo, qhi) = query_interval(q, dim, domain_bits);
        if chi < qlo || clo > qhi {
            return None; // disjoint
        }
        if !(qlo <= clo && chi <= qhi) {
            full = false;
        }
    }
    Some(if full { CoverType::Full } else { CoverType::Partial })
}

impl IpTree {
    /// Algorithm 6: build over the registered subscription queries.
    ///
    /// `dims` is the set of grid dimensions (usually every dimension any
    /// query constrains); `max_depth` caps the splitting (the paper switches
    /// back to the no-IP-Tree case beyond a threshold).
    pub fn build(
        queries: &BTreeMap<QueryId, CompiledQuery>,
        dims: Vec<u8>,
        domain_bits: u8,
        max_depth: u8,
    ) -> Self {
        assert!(max_depth <= domain_bits);
        let root_cell = Cell { depth: 0, prefixes: dims.iter().map(|&d| (d, 0)).collect() };
        let all: Vec<QueryId> = queries.keys().copied().collect();
        let root = Self::build_node(root_cell, &all, queries, &dims, domain_bits, max_depth);
        Self { root, domain_bits, dims, max_depth }
    }

    fn build_node(
        cell: Cell,
        candidates: &[QueryId],
        queries: &BTreeMap<QueryId, CompiledQuery>,
        dims: &[u8],
        domain_bits: u8,
        max_depth: u8,
    ) -> IpNode {
        let mut rcif = Vec::new();
        let mut bcif_map: BTreeMap<Vec<ElementId>, Vec<QueryId>> = BTreeMap::new();
        let mut partial = Vec::new();
        for &qid in candidates {
            let q = &queries[&qid];
            match classify(q, &cell, dims, domain_bits) {
                None => {}
                Some(CoverType::Full) => {
                    rcif.push((qid, CoverType::Full));
                    // BCIF: the query's Boolean (keyword) clauses, keyed by
                    // canonical content.
                    for clause in q.cnf.0.iter() {
                        let key: Vec<ElementId> = clause.0.iter().copied().collect();
                        bcif_map.entry(key).or_default().push(qid);
                    }
                }
                Some(CoverType::Partial) => {
                    rcif.push((qid, CoverType::Partial));
                    partial.push(qid);
                }
            }
        }

        let mut children = Vec::new();
        if !partial.is_empty() && cell.depth < max_depth {
            // split every grid dimension one more bit: 2^D children
            let d = cell.prefixes.len();
            for combo in 0..(1u64 << d) {
                let prefixes = cell
                    .prefixes
                    .iter()
                    .enumerate()
                    .map(|(i, (dim, bits))| ((*dim), (bits << 1) | ((combo >> i) & 1)))
                    .collect();
                let child_cell = Cell { depth: cell.depth + 1, prefixes };
                children.push(Self::build_node(
                    child_cell,
                    candidates,
                    queries,
                    dims,
                    domain_bits,
                    max_depth,
                ));
            }
        }

        IpNode { cell, rcif, bcif: bcif_map.into_iter().collect(), children }
    }

    /// The deepest cell that fully contains a query's range box — the unit
    /// of proof sharing for range mismatches: if an intra node's multiset
    /// is provably outside this cell, every query enclosed by the cell
    /// mismatches for the same shared reason.
    pub fn enclosing_cell(&self, q: &CompiledQuery) -> Cell {
        let mut node = &self.root;
        'descend: loop {
            for child in &node.children {
                let contains = self.dims.iter().all(|&dim| {
                    let (clo, chi) = child.cell.interval(dim, self.domain_bits);
                    let (qlo, qhi) = query_interval(q, dim, self.domain_bits);
                    clo <= qlo && qhi <= chi
                });
                if contains {
                    node = child;
                    continue 'descend;
                }
            }
            return node.cell.clone();
        }
    }

    /// Total number of nodes (diagnostics / tests).
    pub fn node_count(&self) -> usize {
        fn rec(n: &IpNode) -> usize {
            1 + n.children.iter().map(rec).sum::<usize>()
        }
        rec(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Query, RangeSpec};

    fn q(lo0: u64, hi0: u64, lo1: u64, hi1: u64, kw: &str) -> CompiledQuery {
        Query {
            time_window: None,
            ranges: vec![
                RangeSpec { dim: 0, lo: lo0, hi: hi0 },
                RangeSpec { dim: 1, lo: lo1, hi: hi1 },
            ],
            keywords: vec![vec![kw.to_string()]],
        }
        .compile(4)
    }

    fn queries() -> BTreeMap<QueryId, CompiledQuery> {
        // Domain [0, 15]²; mirrors Fig. 8's layout at larger scale.
        [
            (1, q(0, 7, 8, 15, "Van")),   // upper-left quadrant
            (2, q(0, 7, 0, 15, "Van")),   // left half
            (3, q(0, 3, 0, 11, "Sedan")), // partial
            (4, q(8, 15, 0, 15, "Sedan")),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn rcif_cover_types_match_fig8() {
        let qs = queries();
        let t = IpTree::build(&qs, vec![0, 1], 4, 4);
        // depth-1 child 0 is the cell x∈[0,7], y∈[0,7]
        let c00 = &t.root.children[0];
        assert_eq!(c00.cell.interval(0, 4), (0, 7));
        assert_eq!(c00.cell.interval(1, 4), (0, 7));
        let rc: BTreeMap<_, _> = c00.rcif.iter().copied().collect();
        assert_eq!(rc.get(&2), Some(&CoverType::Full));
        assert_eq!(rc.get(&3), Some(&CoverType::Partial));
        assert_eq!(rc.get(&4), None, "q4 does not intersect the left half");
        // upper-left cell x∈[0,7], y∈[8,15]: q1 and q2 full
        let c01 = t
            .root
            .children
            .iter()
            .find(|c| c.cell.interval(1, 4) == (8, 15) && c.cell.interval(0, 4) == (0, 7))
            .unwrap();
        let rc: BTreeMap<_, _> = c01.rcif.iter().copied().collect();
        assert_eq!(rc.get(&1), Some(&CoverType::Full));
        assert_eq!(rc.get(&2), Some(&CoverType::Full));
    }

    #[test]
    fn bcif_groups_shared_clauses() {
        let qs = queries();
        let t = IpTree::build(&qs, vec![0, 1], 4, 4);
        let c01 = t
            .root
            .children
            .iter()
            .find(|c| c.cell.interval(1, 4) == (8, 15) && c.cell.interval(0, 4) == (0, 7))
            .unwrap();
        // q1 and q2 share the keyword clause {Van}
        let van = ElementId::keyword("Van");
        let shared =
            c01.bcif.iter().find(|(k, _)| k == &vec![van]).map(|(_, qs)| qs.clone()).unwrap();
        assert_eq!(shared, vec![1, 2]);
    }

    #[test]
    fn splits_until_no_partial_or_cap() {
        let qs = queries();
        let t = IpTree::build(&qs, vec![0, 1], 4, 4);
        assert!(t.node_count() > 5, "partial queries force splits");
        let shallow = IpTree::build(&qs, vec![0, 1], 4, 0);
        assert_eq!(shallow.node_count(), 1, "depth cap 0 means root only");
    }

    #[test]
    fn enclosing_cell_contains_box() {
        let qs = queries();
        let t = IpTree::build(&qs, vec![0, 1], 4, 4);
        for q in qs.values() {
            let c = t.enclosing_cell(q);
            for &dim in &[0u8, 1] {
                let (clo, chi) = c.interval(dim, 4);
                let (qlo, qhi) = query_interval(q, dim, 4);
                assert!(clo <= qlo && qhi <= chi);
            }
        }
        // a tight box gets a deep cell
        let tight: BTreeMap<QueryId, CompiledQuery> =
            [(9u32, q(4, 5, 8, 9, "x"))].into_iter().collect();
        let t2 = IpTree::build(&tight, vec![0, 1], 4, 4);
        let c = t2.enclosing_cell(&tight[&9]);
        assert!(c.depth >= 2, "tight box should nest deeply, got depth {}", c.depth);
    }

    #[test]
    fn cell_may_contain_semantics() {
        let cell = Cell { depth: 1, prefixes: vec![(0, 1), (1, 0)] }; // x∈[8,15], y∈[0,7] of 4-bit
        let o = vchain_chain::Object::new(1, 0, vec![9, 3], vec![]);
        let ms = crate::query::object_multiset(&o, 4);
        assert!(cell.may_contain(&ms));
        let o2 = vchain_chain::Object::new(1, 0, vec![3, 3], vec![]);
        let ms2 = crate::query::object_multiset(&o2, 4);
        assert!(!cell.may_contain(&ms2));
    }
}
