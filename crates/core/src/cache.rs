//! The window-level proof cache of the SP proving pipeline.
//!
//! Disjointness proofs are *deterministic* functions of
//! `(X₁, clause)` — both accumulator constructions derive the proof point
//! from the two multisets and the public key alone — so any two proving
//! sites that agree on the accumulative value `acc(X₁)` (a binding,
//! collision-resistant commitment to `X₁`) and on the clause's element set
//! can share one proof verbatim. Overlapping time-window queries replay the
//! same skip entries against the same clauses; consecutive blocks of a
//! subscription replay the same per-node refutations; both were re-proving
//! from scratch before this cache existed.
//!
//! [`ProofCache`] is a fixed-capacity, thread-safe LRU map from
//! [`CacheKey`] — the pair `(H(acc(X₁)), H(clause))` of digests over the
//! *serialized* accumulative value and the clause's canonical index/count
//! encoding — to the proof. A hit is sound whenever SHA-256 is
//! collision-resistant; the cache never needs to retain the (potentially
//! large) multisets themselves. All entries of one cache refer to one
//! accumulator public key; callers that rotate keys must use fresh caches.
//!
//! # Persistence
//!
//! A cache built [`ProofCache::with_persistence`] additionally queues a
//! [`DirtyEntry`] (the key halves plus canonical proof bytes) on every
//! insert. The serving layer drains the queue with
//! [`ProofCache::take_dirty`] and appends it to a [`crate::store::LogStore`]
//! — write-behind, so the proving hot path never waits on a disk. Because
//! dirty capture happens at *insert* and is independent of the LRU list,
//! an entry later evicted from memory has still been persisted: eviction
//! bounds RAM, the log bounds re-proving. On warm start,
//! [`ProofCache::preload`] rehydrates entries without touching either the
//! stats or the dirty queue, and [`ProofCache::restore_stats`] adopts the
//! last persisted counter snapshot (activity since that snapshot is reset
//! — the documented durability granularity is the flush batch).

use std::collections::HashMap;

use parking_lot::Mutex;
use vchain_acc::{AccElem, AccError, Accumulator, MultiSet};
use vchain_hash::{hash_bytes, hash_concat, Digest};

/// Sentinel index for "no node" in the intrusive LRU list.
const NIL: usize = usize::MAX;

/// Hit/miss/eviction counters of a [`ProofCache`] (monotonic since
/// construction or the last [`ProofCache::clear`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the prover.
    pub misses: u64,
    /// Entries displaced by the LRU policy.
    pub evictions: u64,
}

/// The two halves of a proof-cache key, kept separate so persistence can
/// store them: `att` commits to the serialized accumulative value
/// (`H(value_bytes(acc(X₁)))`), `clause` to the clause's canonical
/// `(index, count)` encoding. The map itself is keyed by their
/// domain-separated combination ([`CacheKey::digest`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Digest of the serialized accumulative value.
    pub att: Digest,
    /// Digest of the canonical clause bytes.
    pub clause: Digest,
}

impl CacheKey {
    /// The combined map key: `H(tag ‖ att ‖ clause)`.
    pub fn digest(&self) -> Digest {
        hash_concat(&[b"vchain/proof-cache", self.att.as_bytes(), self.clause.as_bytes()])
    }
}

/// One queued write-behind entry: the key halves plus the proof's
/// canonical bytes, ready to become a `StoreRecord::Proof` without any
/// further access to accumulator types.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirtyEntry {
    /// The entry's cache key.
    pub key: CacheKey,
    /// Canonical proof bytes ([`Accumulator::proof_bytes`]).
    pub proof: Vec<u8>,
}

struct Node<P> {
    key: Digest,
    proof: P,
    prev: usize,
    next: usize,
}

struct Inner<P> {
    map: HashMap<Digest, usize>,
    nodes: Vec<Node<P>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    stats: CacheStats,
    dirty: Vec<DirtyEntry>,
}

impl<P> Inner<P> {
    fn detach(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        match prev {
            NIL => self.head = next,
            p => self.nodes[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.nodes[n].prev = prev,
        }
    }

    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.nodes[h].prev = i,
        }
        self.head = i;
    }
}

/// A thread-safe LRU cache of disjointness proofs, keyed by
/// `(accumulative value, clause element set)`. See the module docs for the
/// soundness argument; see [`ProofCache::get_or_prove`] for the one-call
/// usage every SP site goes through.
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use vchain_acc::{Acc2, Accumulator, MultiSet};
/// use vchain_core::cache::ProofCache;
///
/// let acc = Acc2::keygen(64, &mut StdRng::seed_from_u64(4));
/// let cache: ProofCache<Acc2> = ProofCache::new(128);
/// let x1: MultiSet<u64> = [1u64, 2].into_iter().collect();
/// let clause: MultiSet<u64> = [10u64].into_iter().collect();
/// let att = acc.setup(&x1);
/// let cold = cache.get_or_prove(&acc, &att, &x1, &clause).unwrap();
/// let warm = cache.get_or_prove(&acc, &att, &x1, &clause).unwrap();
/// assert_eq!(Acc2::proof_bytes(&cold), Acc2::proof_bytes(&warm));
/// assert_eq!((cache.stats().hits, cache.stats().misses), (1, 1));
/// ```
pub struct ProofCache<A: Accumulator> {
    inner: Mutex<Inner<A::Proof>>,
    capacity: usize,
    persist: bool,
}

impl<A: Accumulator> ProofCache<A> {
    /// Default capacity: generous for whole-chain scans (a few thousand
    /// distinct (skip-entry, clause) pairs) while bounding memory to a few
    /// hundred kilobytes of proofs.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// A cache holding at most `capacity` proofs (`capacity ≥ 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "proof cache capacity must be positive");
        Self {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                nodes: Vec::new(),
                free: Vec::new(),
                head: NIL,
                tail: NIL,
                stats: CacheStats::default(),
                dirty: Vec::new(),
            }),
            capacity,
            persist: false,
        }
    }

    /// Turn on write-behind capture: every subsequent [`ProofCache::insert`]
    /// (and the insert half of the `get_or_prove` family) also queues a
    /// [`DirtyEntry`] for [`ProofCache::take_dirty`].
    pub fn with_persistence(mut self) -> Self {
        self.persist = true;
        self
    }

    /// Whether write-behind capture is on.
    pub fn persistence_enabled(&self) -> bool {
        self.persist
    }

    /// The cache key for proving `X₁` (committed as `att`) disjoint from
    /// `clause`: digests over the serialized accumulative value and the
    /// clause's canonical `(index, count)` encoding.
    pub fn key<E: AccElem>(att: &A::Value, clause: &MultiSet<E>) -> CacheKey {
        let att_bytes = A::value_bytes(att);
        let mut clause_bytes = Vec::with_capacity(16 * clause.distinct_len());
        for (e, c) in clause.iter() {
            clause_bytes.extend_from_slice(&e.to_index().to_le_bytes());
            clause_bytes.extend_from_slice(&c.to_le_bytes());
        }
        CacheKey { att: hash_bytes(&att_bytes), clause: hash_bytes(&clause_bytes) }
    }

    /// The `att` half of [`ProofCache::key`] alone — the handle persisted
    /// witnesses are filed under.
    pub fn att_digest(att: &A::Value) -> Digest {
        hash_bytes(&A::value_bytes(att))
    }

    /// Look up a proof, refreshing its recency on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<A::Proof> {
        let digest = key.digest();
        let mut g = self.inner.lock();
        match g.map.get(&digest).copied() {
            Some(i) => {
                g.detach(i);
                g.push_front(i);
                g.stats.hits += 1;
                Some(g.nodes[i].proof.clone())
            }
            None => {
                g.stats.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) a proof, evicting the least-recently-used entry
    /// when full. With persistence on, the entry is also queued for
    /// write-behind — *before* any eviction decision, so an entry evicted
    /// later has still been captured durably.
    pub fn insert(&self, key: CacheKey, proof: A::Proof) {
        self.insert_inner(key, proof, self.persist);
    }

    /// Rehydrate an entry from the persistent store: identical placement to
    /// [`ProofCache::insert`] but never re-queued as dirty (it came *from*
    /// the log) and without touching the counters.
    pub fn preload(&self, key: CacheKey, proof: A::Proof) {
        self.insert_inner(key, proof, false);
    }

    fn insert_inner(&self, key: CacheKey, proof: A::Proof, record_dirty: bool) {
        let digest = key.digest();
        let mut g = self.inner.lock();
        if record_dirty {
            g.dirty.push(DirtyEntry { key, proof: A::proof_bytes(&proof) });
        }
        if let Some(&i) = g.map.get(&digest) {
            g.nodes[i].proof = proof;
            g.detach(i);
            g.push_front(i);
            return;
        }
        if g.map.len() == self.capacity {
            let lru = g.tail;
            g.detach(lru);
            let old_key = g.nodes[lru].key;
            g.map.remove(&old_key);
            g.free.push(lru);
            g.stats.evictions += 1;
        }
        let i = match g.free.pop() {
            Some(i) => {
                g.nodes[i] = Node { key: digest, proof, prev: NIL, next: NIL };
                i
            }
            None => {
                g.nodes.push(Node { key: digest, proof, prev: NIL, next: NIL });
                g.nodes.len() - 1
            }
        };
        g.map.insert(digest, i);
        g.push_front(i);
    }

    /// Drain the write-behind queue (insertion order preserved; the same
    /// key may appear more than once if it was re-inserted — flushers
    /// dedupe last-wins).
    pub fn take_dirty(&self) -> Vec<DirtyEntry> {
        core::mem::take(&mut self.inner.lock().dirty)
    }

    /// Entries currently queued for write-behind.
    pub fn dirty_len(&self) -> usize {
        self.inner.lock().dirty.len()
    }

    /// Overwrite the counters with a persisted snapshot (warm start).
    /// Counters are cumulative up to the snapshot's flush; activity
    /// between that flush and the crash/shutdown is reset — hits and
    /// misses after rehydration accrue on top of the restored values.
    pub fn restore_stats(&self, stats: CacheStats) {
        self.inner.lock().stats = stats;
    }

    /// The SP fast path: return the cached proof for `(att, clause)` or
    /// prove `X₁ ∩ clause = ∅` cold and remember the result. Errors are
    /// *not* cached (they are cheap to re-derive and carry context).
    pub fn get_or_prove<E: AccElem>(
        &self,
        acc: &A,
        att: &A::Value,
        x1: &MultiSet<E>,
        clause: &MultiSet<E>,
    ) -> Result<A::Proof, AccError> {
        self.get_or_prove_with_witness(acc, att, x1, clause, None)
    }

    /// [`ProofCache::get_or_prove`] with an optional *persisted witness*
    /// fast path: on a miss, if `witness` carries serialized `X₁`-side
    /// proving state (see [`Accumulator::witness_bytes`]), the proof is
    /// finalized from it — skipping the `O(|X₁|)` extraction — and falls
    /// back to a cold `prove_disjoint` if the bytes are rejected. Both
    /// paths derive byte-identical proofs, so cache contents do not depend
    /// on which path ran.
    pub fn get_or_prove_with_witness<E: AccElem>(
        &self,
        acc: &A,
        att: &A::Value,
        x1: &MultiSet<E>,
        clause: &MultiSet<E>,
        witness: Option<&[u8]>,
    ) -> Result<A::Proof, AccError> {
        let key = Self::key(att, clause);
        if let Some(p) = self.get(&key) {
            return Ok(p);
        }
        if let Some(wb) = witness {
            if let Some(proof) = acc.finalize_from_witness_bytes(wb, clause) {
                self.insert(key, proof.clone());
                return Ok(proof);
            }
        }
        let proof = acc.prove_disjoint(x1, clause)?;
        self.insert(key, proof.clone());
        Ok(proof)
    }

    /// Number of cached proofs.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of cached proofs.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// A snapshot of the hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }

    /// Drop every entry and reset the counters.
    pub fn clear(&self) {
        let mut g = self.inner.lock();
        g.map.clear();
        g.nodes.clear();
        g.free.clear();
        g.head = NIL;
        g.tail = NIL;
        g.stats = CacheStats::default();
        g.dirty.clear();
    }
}

impl<A: Accumulator> Default for ProofCache<A> {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

impl<A: Accumulator> core::fmt::Debug for ProofCache<A> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let stats = self.stats();
        write!(f, "ProofCache(len={}, cap={}, {stats:?})", self.len(), self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vchain_acc::Acc2;

    fn acc() -> Acc2 {
        Acc2::keygen(32, &mut StdRng::seed_from_u64(9))
    }

    fn ms(v: &[u64]) -> MultiSet<u64> {
        v.iter().copied().collect()
    }

    #[test]
    fn cold_then_warm_byte_identical() {
        let a = acc();
        let cache: ProofCache<Acc2> = ProofCache::new(8);
        let x1 = ms(&[1, 2, 3]);
        let clause = ms(&[10, 11]);
        let att = a.setup(&x1);
        let cold = cache.get_or_prove(&a, &att, &x1, &clause).unwrap();
        let warm = cache.get_or_prove(&a, &att, &x1, &clause).unwrap();
        assert_eq!(Acc2::proof_bytes(&cold), Acc2::proof_bytes(&warm));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn key_separates_values_and_clauses() {
        let a = acc();
        let att1 = a.setup(&ms(&[1]));
        let att2 = a.setup(&ms(&[2]));
        let c1 = ms(&[10]);
        let c2 = ms(&[10, 10]); // multiplicity is part of the key
        assert_ne!(ProofCache::<Acc2>::key(&att1, &c1), ProofCache::<Acc2>::key(&att2, &c1));
        assert_ne!(ProofCache::<Acc2>::key(&att1, &c1), ProofCache::<Acc2>::key(&att1, &c2));
    }

    #[test]
    fn lru_evicts_oldest_and_refreshes_on_hit() {
        let a = acc();
        let cache: ProofCache<Acc2> = ProofCache::new(2);
        let x = ms(&[1]);
        let att = a.setup(&x);
        let clauses = [ms(&[10]), ms(&[11]), ms(&[12])];
        let keys: Vec<CacheKey> =
            clauses.iter().map(|c| ProofCache::<Acc2>::key(&att, c)).collect();
        for c in &clauses[..2] {
            cache.get_or_prove(&a, &att, &x, c).unwrap();
        }
        // touch the first entry so the *second* is now least recent
        assert!(cache.get(&keys[0]).is_some());
        cache.get_or_prove(&a, &att, &x, &clauses[2]).unwrap();
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&keys[0]).is_some(), "refreshed entry survives");
        assert!(cache.get(&keys[1]).is_none(), "LRU entry evicted");
        assert!(cache.get(&keys[2]).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn insert_same_key_updates_in_place() {
        let a = acc();
        let cache: ProofCache<Acc2> = ProofCache::new(2);
        let x = ms(&[1]);
        let att = a.setup(&x);
        let key = ProofCache::<Acc2>::key(&att, &ms(&[10]));
        let p = a.prove_disjoint(&x, &ms(&[10])).unwrap();
        cache.insert(key, p);
        cache.insert(key, p);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_resets_everything() {
        let a = acc();
        let cache: ProofCache<Acc2> = ProofCache::new(4);
        let x = ms(&[1]);
        let att = a.setup(&x);
        cache.get_or_prove(&a, &att, &x, &ms(&[10])).unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn errors_are_not_cached() {
        let a = acc();
        let cache: ProofCache<Acc2> = ProofCache::new(4);
        let x = ms(&[1]);
        let att = a.setup(&x);
        assert_eq!(cache.get_or_prove(&a, &att, &x, &ms(&[1])).unwrap_err(), AccError::NotDisjoint);
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let a = acc();
        let cache: ProofCache<Acc2> = ProofCache::new(64);
        let x = ms(&[1, 2]);
        let att = a.setup(&x);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let (cache, a, x, att) = (&cache, &a, &x, &att);
                s.spawn(move || {
                    for i in 0..8u64 {
                        let clause = ms(&[10 + (t + i) % 6]);
                        cache.get_or_prove(a, att, x, &clause).unwrap();
                    }
                });
            }
        });
        assert_eq!(cache.len(), 6, "one entry per distinct clause");
    }
}
