//! Verification objects (VOs) — the cryptographic proofs the SP returns
//! alongside query results (paper §3, threat model; §5–§6 construction).
//!
//! A VO mirrors the pruned intra-block index: explored internal nodes carry
//! their AttDigest (needed to rebuild the Merkle commitment), pruned
//! subtrees carry a disjointness proof, matched leaves point into the result
//! set. Inter-block skips and §6.3 batch-verification groups ride alongside.
//!
//! On the wire a VO travels in the [`crate::wire`] codec — v1 raw slots or
//! the deduplicating v2 intern-table encoding — and can be delivered as a
//! frame stream verified incrementally by [`crate::client`]; see
//! `docs/LIGHT_CLIENT.md` for byte layouts and the pipeline architecture.

// Decoded VOs are attacker-shaped; resolution paths must not panic.
#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic, clippy::unreachable)]

use vchain_acc::{AccError, Accumulator, MultiSet};
use vchain_chain::Object;
use vchain_hash::Digest;

use crate::element::ElementId;
use crate::query::CompiledQuery;
use crate::trans::prefix_interval;

/// Which set a disjointness proof was made against.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClauseRef {
    /// Clause `i` of the compiled query's CNF — the verifier re-derives the
    /// set itself, so the SP cannot substitute a weaker clause.
    Index(u16),
    /// A grid cell: one binary prefix of length `len` per listed dimension.
    /// Used by the IP-Tree subscription path (§7.1) where one proof against
    /// a cell is shared by every query whose range box lies inside it; the
    /// verifier checks the containment before trusting it.
    Cell {
        /// Prefix length in bits.
        len: u8,
        /// `(dimension, prefix bits)` pairs.
        prefixes: Vec<(u8, u64)>,
    },
}

/// Errors raised when a [`ClauseRef`] cannot be resolved for a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClauseError {
    /// The clause index exceeds the query's CNF.
    OutOfRange(u16),
    /// The cell references a dimension the query has no range on.
    NoSuchDim(u8),
    /// The query's range box is not contained in the cell.
    NotContaining {
        /// The dimension where containment fails.
        dim: u8,
    },
    /// The cell lists no prefixes.
    EmptyCell,
    /// A cell prefix is malformed: zero length, length beyond the query's
    /// domain width, or bits wider than the stated length. (A decoded VO can
    /// carry any `(len, bits)` pair; unchecked, these would trip the
    /// precondition assert in [`crate::trans::prefix_interval`].)
    InvalidPrefix {
        /// The offending prefix length.
        len: u8,
    },
    /// The resolved element set exceeds the accumulator's key bound, so no
    /// honest proof against it can exist.
    Unaccumulatable,
}

impl ClauseRef {
    /// Resolve to the element set whose disjointness implies the query
    /// mismatches, verifying the reference is *valid for this query*.
    pub fn resolve(&self, q: &CompiledQuery) -> Result<MultiSet<ElementId>, ClauseError> {
        match self {
            ClauseRef::Index(i) => {
                q.cnf.0.get(*i as usize).map(|c| c.to_multiset()).ok_or(ClauseError::OutOfRange(*i))
            }
            ClauseRef::Cell { len, prefixes } => {
                if prefixes.is_empty() {
                    return Err(ClauseError::EmptyCell);
                }
                // `len`/`bits` arrive from the wire; reject anything outside
                // the domain the query was compiled against *before* doing
                // interval arithmetic on it.
                if *len == 0 || *len > q.domain_bits || q.domain_bits > 64 {
                    return Err(ClauseError::InvalidPrefix { len: *len });
                }
                // Disjoint(W, cell-prefixes) proves every covered object
                // lies outside each dimension's slab, hence outside the
                // cell. That implies a query mismatch only when the query's
                // own range box is contained in the cell — checked per dim.
                let mut out = MultiSet::new();
                for (dim, bits) in prefixes {
                    if (*len as u32) < 64 && (*bits >> *len) != 0 {
                        return Err(ClauseError::InvalidPrefix { len: *len });
                    }
                    let r = q
                        .ranges
                        .iter()
                        .find(|r| r.dim == *dim)
                        .ok_or(ClauseError::NoSuchDim(*dim))?;
                    let (lo, hi) = prefix_interval(*len, *bits, q.domain_bits);
                    if r.lo < lo || r.hi > hi {
                        return Err(ClauseError::NotContaining { dim: *dim });
                    }
                    let e = crate::element::Element::Prefix { dim: *dim, len: *len, bits: *bits };
                    out.insert(ElementId::intern(&e));
                }
                Ok(out)
            }
        }
    }

    /// Nominal wire size in bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            ClauseRef::Index(_) => 2,
            ClauseRef::Cell { prefixes, .. } => 1 + 9 * prefixes.len(),
        }
    }
}

/// How a mismatch is proven: inline, or as a member of a §6.3 batch group.
#[derive(Clone, Debug)]
pub enum MismatchProof<A: Accumulator> {
    /// A proof carried directly in the VO node.
    Inline {
        /// The disjointness proof.
        proof: A::Proof,
        /// The clause it refutes.
        clause: ClauseRef,
    },
    /// Index into [`BlockVo::groups`]; the verifier sums the member
    /// AttDigests with `Sum(·)` and checks the group's single proof.
    Group(u16),
}

/// One node of the pruned intra-block index, as shipped to the verifier.
#[derive(Clone, Debug)]
pub enum VoNode<A: Accumulator> {
    /// An explored internal node (its subtree contains results).
    Internal {
        /// `AttDigest_n`; `None` under the `nil` scheme where internal nodes
        /// are plain Merkle nodes.
        att: Option<A::Value>,
        /// The left child's VO.
        left: Box<VoNode<A>>,
        /// The right child's VO.
        right: Box<VoNode<A>>,
    },
    /// A pruned internal node: everything below mismatches `clause`.
    InternalMismatch {
        /// `hash(hash_l | hash_r)` — opaque, binds the hidden subtree.
        child_hash: Digest,
        /// The node's AttDigest.
        att: A::Value,
        /// Why the whole subtree mismatches.
        proof: MismatchProof<A>,
    },
    /// A matching leaf; the object is in the result set.
    LeafMatch {
        /// The leaf's AttDigest.
        att: A::Value,
        /// Index into this block's result list.
        result_idx: u32,
    },
    /// A mismatching leaf.
    LeafMismatch {
        /// `hash(object)` — opaque, binds the hidden object.
        obj_hash: Digest,
        /// The leaf's AttDigest.
        att: A::Value,
        /// Why the object mismatches.
        proof: MismatchProof<A>,
    },
}

/// A batch-verification group (§6.3): one proof for several mismatch nodes
/// sharing the same reason.
#[derive(Clone, Debug)]
pub struct GroupProof<A: Accumulator> {
    /// The clause every group member mismatches.
    pub clause: ClauseRef,
    /// One proof for the `Sum` of the members' digests.
    pub proof: A::Proof,
}

/// The VO for one block.
#[derive(Clone, Debug)]
pub struct BlockVo<A: Accumulator> {
    /// The pruned tree mirroring the intra-block index.
    pub root: VoNode<A>,
    /// §6.3 batch groups referenced by `MismatchProof::Group` nodes.
    pub groups: Vec<GroupProof<A>>,
}

/// Coverage of one stretch of the query window.
#[derive(Clone, Debug)]
pub enum BlockCoverage<A: Accumulator> {
    /// An individually processed block.
    Block {
        /// The covered height.
        height: u64,
        /// Its verification object.
        vo: BlockVo<A>,
    },
    /// An inter-block skip (§6.2): blocks `height-distance ..= height-1`
    /// all mismatch `clause`.
    Skip {
        /// The block whose skip list is being used.
        height: u64,
        /// Number of preceding blocks covered.
        distance: u64,
        /// The skip entry's AttDigest.
        att: A::Value,
        /// Disjointness of the entry's multiset from `clause`.
        proof: A::Proof,
        /// The refuted clause.
        clause: ClauseRef,
        /// `(distance, hash_Lk)` of the *other* levels, to rebuild
        /// `SkipListRoot`.
        siblings: Vec<(u64, Digest)>,
    },
}

/// The SP's full answer: results grouped by block (descending height) plus
/// the VO covering every block of the window.
#[derive(Clone, Debug)]
pub struct QueryResponse<A: Accumulator> {
    /// Matching objects, grouped by block height (descending).
    pub results: Vec<(u64, Vec<Object>)>,
    /// The VO covering every in-window block.
    pub coverage: Vec<BlockCoverage<A>>,
}

/// Nominal wire-size accounting (compressed points + digests), the paper's
/// "VO size" metric. Result objects are *not* part of the VO.
pub trait VoSize<A: Accumulator> {
    /// Nominal serialized size of this VO fragment in bytes.
    fn vo_size_bytes(&self, acc: &A) -> usize;
}

impl<A: Accumulator> VoSize<A> for VoNode<A> {
    fn vo_size_bytes(&self, acc: &A) -> usize {
        let tag = 1usize;
        match self {
            VoNode::Internal { att, left, right } => {
                tag + att.as_ref().map(|_| acc.value_size()).unwrap_or(0)
                    + left.vo_size_bytes(acc)
                    + right.vo_size_bytes(acc)
            }
            VoNode::InternalMismatch { att: _, proof, .. } => {
                tag + Digest::LEN + acc.value_size() + proof_size(acc, proof)
            }
            VoNode::LeafMatch { .. } => tag + acc.value_size() + 4,
            VoNode::LeafMismatch { proof, .. } => {
                tag + Digest::LEN + acc.value_size() + proof_size(acc, proof)
            }
        }
    }
}

fn proof_size<A: Accumulator>(acc: &A, p: &MismatchProof<A>) -> usize {
    match p {
        MismatchProof::Inline { clause, .. } => acc.proof_size() + clause.size_bytes(),
        MismatchProof::Group(_) => 2,
    }
}

impl<A: Accumulator> VoSize<A> for BlockVo<A> {
    fn vo_size_bytes(&self, acc: &A) -> usize {
        self.root.vo_size_bytes(acc)
            + self.groups.iter().map(|g| acc.proof_size() + g.clause.size_bytes()).sum::<usize>()
    }
}

impl<A: Accumulator> VoSize<A> for BlockCoverage<A> {
    fn vo_size_bytes(&self, acc: &A) -> usize {
        match self {
            BlockCoverage::Block { vo, .. } => 8 + vo.vo_size_bytes(acc),
            BlockCoverage::Skip { clause, siblings, .. } => {
                8 + 8
                    + acc.value_size()
                    + acc.proof_size()
                    + clause.size_bytes()
                    + siblings.len() * (8 + Digest::LEN)
            }
        }
    }
}

impl<A: Accumulator> VoSize<A> for QueryResponse<A> {
    fn vo_size_bytes(&self, acc: &A) -> usize {
        self.coverage.iter().map(|c| c.vo_size_bytes(acc)).sum()
    }
}

impl<A: Accumulator> QueryResponse<A> {
    /// Total number of result objects.
    pub fn result_count(&self) -> usize {
        self.results.iter().map(|(_, v)| v.len()).sum()
    }

    /// Flatten results (descending height order preserved).
    pub fn all_results(&self) -> impl Iterator<Item = &Object> {
        self.results.iter().flat_map(|(_, v)| v.iter())
    }
}

/// Convenience: the accumulator value of a resolved clause (verifier side).
/// The clause reference comes from the untrusted VO, so accumulation is
/// fallible: a set the key cannot cover is [`ClauseError::Unaccumulatable`],
/// never a panic.
pub fn clause_acc_value<A: Accumulator>(
    acc: &A,
    q: &CompiledQuery,
    clause: &ClauseRef,
) -> Result<(MultiSet<ElementId>, A::Value), ClauseError> {
    let ms = clause.resolve(q)?;
    let v = acc.try_setup(&ms).map_err(|_| ClauseError::Unaccumulatable)?;
    Ok((ms, v))
}

/// Re-exported for `sp`/`verify` signatures.
pub type AccResult<T> = Result<T, AccError>;
