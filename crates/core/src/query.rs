//! Boolean range queries and their compilation to a unified CNF over set
//! elements (paper §3 and §5.3).
//!
//! A user query `q = ⟨[ts, te], [α, β], ϒ⟩` compiles into
//! `⟨[ts, te], ϒ′⟩` with `ϒ′ = trans([α, β]) ∧ ϒ`: each numeric range
//! contributes one OR-clause (its prefix cover) and the monotone Boolean
//! function contributes its CNF clauses verbatim.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};
use vchain_acc::MultiSet;
use vchain_chain::Object;

use crate::element::ElementId;
use crate::trans::{range_cover_ids, trans_value_ids};

/// One OR-clause: the object matches if its element multiset intersects it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Clause(pub BTreeSet<ElementId>);

impl Clause {
    /// Build a clause from element ids.
    pub fn from_ids(ids: impl IntoIterator<Item = ElementId>) -> Self {
        Clause(ids.into_iter().collect())
    }

    /// Does the clause share any element with the multiset (i.e. match)?
    pub fn intersects(&self, ms: &MultiSet<ElementId>) -> bool {
        self.0.iter().any(|e| ms.contains(e))
    }

    /// The clause as a (unit-multiplicity) multiset — what disjointness
    /// proofs are made against.
    pub fn to_multiset(&self) -> MultiSet<ElementId> {
        self.0.iter().copied().collect()
    }

    /// Number of elements in the clause.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is the clause empty (unsatisfiable)?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// A conjunction of OR-clauses (CNF).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Cnf(pub Vec<Clause>);

impl Cnf {
    /// Every clause intersects the multiset.
    pub fn matches(&self, ms: &MultiSet<ElementId>) -> bool {
        self.0.iter().all(|c| c.intersects(ms))
    }

    /// Index of some clause disjoint from the multiset (the mismatch
    /// witness the SP proves).
    ///
    /// ```
    /// use vchain_core::query::Query;
    /// use vchain_core::query::object_multiset;
    /// use vchain_chain::Object;
    ///
    /// let q = Query {
    ///     time_window: None,
    ///     ranges: vec![],
    ///     keywords: vec![vec!["Sedan".into()], vec!["Benz".into(), "BMW".into()]],
    /// }
    /// .compile(8);
    /// let van = Object::new(1, 0, vec![], vec!["Van".into(), "Benz".into()]);
    /// // clause 0 = {Sedan} is disjoint from the Van's attributes: the SP
    /// // proves exactly that to refute the object.
    /// assert_eq!(q.cnf.find_disjoint_clause(&object_multiset(&van, 8)), Some(0));
    /// ```
    pub fn find_disjoint_clause(&self, ms: &MultiSet<ElementId>) -> Option<usize> {
        self.0.iter().position(|c| !c.intersects(ms))
    }
}

/// A per-dimension numeric range predicate `lo ≤ V[dim] ≤ hi` (inclusive).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RangeSpec {
    /// 0-based numeric dimension.
    pub dim: u8,
    /// Lower bound (inclusive).
    pub lo: u64,
    /// Upper bound (inclusive).
    pub hi: u64,
}

/// A user-level Boolean range query (paper §3).
///
/// `keywords` is the monotone Boolean function ϒ in CNF: the outer `Vec` is
/// an AND of clauses, each inner `Vec` an OR of keywords.
///
/// ```
/// use vchain_core::query::Query;
/// // ⟨-, [200,250], "Sedan" ∧ ("Benz" ∨ "BMW")⟩ from Example 3.2
/// let q = Query {
///     time_window: None,
///     ranges: vec![vchain_core::query::RangeSpec { dim: 0, lo: 200, hi: 250 }],
///     keywords: vec![vec!["Sedan".into()], vec!["Benz".into(), "BMW".into()]],
/// };
/// let compiled = q.compile(8);
/// assert_eq!(compiled.cnf.0.len(), 3); // 1 range clause + 2 boolean clauses
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Query {
    /// `[ts, te]` for time-window queries; `None` for subscriptions.
    pub time_window: Option<(u64, u64)>,
    /// Per-dimension numeric range predicates.
    pub ranges: Vec<RangeSpec>,
    /// The monotone Boolean function ϒ in CNF (AND of OR-clauses).
    pub keywords: Vec<Vec<String>>,
}

/// A compiled query: the unified CNF plus bookkeeping for verification.
#[derive(Clone, Debug)]
pub struct CompiledQuery {
    /// `[ts, te]` for time-window queries; `None` for subscriptions.
    pub time_window: Option<(u64, u64)>,
    /// `ϒ′ = trans([α, β]) ∧ ϒ`.
    pub cnf: Cnf,
    /// The original ranges (for verifier-side containment checks on shared
    /// subscription proofs).
    pub ranges: Vec<RangeSpec>,
    /// The numeric domain width the query was compiled against.
    pub domain_bits: u8,
}

impl Query {
    /// Compile against a `domain_bits`-bit numeric domain. Vacuous range
    /// predicates (full domain) produce no clause; empty keyword clauses are
    /// rejected.
    pub fn compile(&self, domain_bits: u8) -> CompiledQuery {
        let mut cnf = Vec::new();
        for r in &self.ranges {
            assert!(r.lo <= r.hi, "empty range predicate");
            if let Some(cover) = range_cover_ids(r.dim, r.lo, r.hi, domain_bits) {
                cnf.push(Clause::from_ids(cover));
            }
        }
        for kw_clause in &self.keywords {
            assert!(!kw_clause.is_empty(), "empty keyword clause is unsatisfiable");
            cnf.push(Clause::from_ids(kw_clause.iter().map(|k| ElementId::keyword(k))));
        }
        CompiledQuery {
            time_window: self.time_window,
            cnf: Cnf(cnf),
            ranges: self.ranges.clone(),
            domain_bits,
        }
    }
}

impl CompiledQuery {
    /// Does a timestamp fall in the window? (Subscriptions accept all.)
    pub fn in_window(&self, ts: u64) -> bool {
        match self.time_window {
            None => true,
            Some((s, e)) => ts >= s && ts <= e,
        }
    }

    /// Direct object evaluation (used by the verifier on returned results
    /// and by tests as the ground truth).
    pub fn object_matches(&self, o: &Object) -> bool {
        self.in_window(o.timestamp) && self.cnf.matches(&object_multiset(o, self.domain_bits))
    }
}

/// `W′ᵢ = trans(Vᵢ) + Wᵢ`: the unified element multiset of an object
/// (paper §5.3). Repeated keywords accumulate multiplicity.
pub fn object_multiset(o: &Object, domain_bits: u8) -> MultiSet<ElementId> {
    let mut ms = MultiSet::new();
    for (dim, v) in o.numeric.iter().enumerate() {
        for id in trans_value_ids(dim as u8, *v, domain_bits) {
            ms.insert(id);
        }
    }
    for k in &o.keywords {
        ms.insert(ElementId::keyword(k));
    }
    ms
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn car_query() -> Query {
        Query {
            time_window: None,
            ranges: vec![RangeSpec { dim: 0, lo: 200, hi: 250 }],
            keywords: vec![vec!["Sedan".into()], vec!["Benz".into(), "BMW".into()]],
        }
    }

    fn obj(price: u64, kws: &[&str]) -> Object {
        Object::new(1, 0, vec![price], kws.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn example_3_2_semantics() {
        let q = car_query().compile(8);
        assert!(q.object_matches(&obj(220, &["Sedan", "Benz"])));
        assert!(q.object_matches(&obj(250, &["Sedan", "BMW"])));
        assert!(!q.object_matches(&obj(220, &["Van", "Benz"])), "boolean mismatch");
        assert!(!q.object_matches(&obj(199, &["Sedan", "Benz"])), "range mismatch");
        assert!(!q.object_matches(&obj(220, &["Sedan", "Audi"])), "inner clause mismatch");
    }

    #[test]
    fn disjoint_clause_identifies_reason() {
        let q = car_query().compile(8);
        let ms = object_multiset(&obj(220, &["Van", "Benz"]), 8);
        // clause 0 = range (matches), clause 1 = {Sedan} (disjoint)
        assert_eq!(q.cnf.find_disjoint_clause(&ms), Some(1));
        let ms2 = object_multiset(&obj(10, &["Sedan", "Benz"]), 8);
        assert_eq!(q.cnf.find_disjoint_clause(&ms2), Some(0));
        let ms3 = object_multiset(&obj(220, &["Sedan", "Benz"]), 8);
        assert_eq!(q.cnf.find_disjoint_clause(&ms3), None);
    }

    #[test]
    fn time_window_filters() {
        let mut q = car_query();
        q.time_window = Some((100, 200));
        let cq = q.compile(8);
        let mut o = obj(220, &["Sedan", "Benz"]);
        o.timestamp = 150;
        assert!(cq.object_matches(&o));
        o.timestamp = 201;
        assert!(!cq.object_matches(&o));
    }

    #[test]
    fn vacuous_range_produces_no_clause() {
        let q = Query {
            time_window: None,
            ranges: vec![RangeSpec { dim: 0, lo: 0, hi: 255 }],
            keywords: vec![vec!["x".into()]],
        }
        .compile(8);
        assert_eq!(q.cnf.0.len(), 1);
    }

    #[test]
    fn multi_dimensional_ranges() {
        // paper §5.3: (4, 2) ∉ [(0, 3), (6, 4)] — dim-1 range [3,4] misses 2
        let q = Query {
            time_window: None,
            ranges: vec![RangeSpec { dim: 0, lo: 0, hi: 6 }, RangeSpec { dim: 1, lo: 3, hi: 4 }],
            keywords: vec![],
        }
        .compile(3);
        let o = Object::new(1, 0, vec![4, 2], vec![]);
        assert!(!q.object_matches(&o));
        let o2 = Object::new(1, 0, vec![4, 3], vec![]);
        assert!(q.object_matches(&o2));
    }

    #[test]
    fn multiset_has_multiplicity_for_repeated_keywords() {
        let o = Object::new(1, 0, vec![], vec!["a".into(), "a".into()]);
        let ms = object_multiset(&o, 8);
        assert_eq!(ms.count(&ElementId::keyword("a")), 2);
    }

    proptest! {
        #[test]
        fn compiled_matches_equal_direct_evaluation(
            price in 0u64..256,
            dim2 in 0u64..256,
            lo in 0u64..256, hi in 0u64..256,
            has_kw in proptest::bool::ANY,
        ) {
            prop_assume!(lo <= hi);
            let q = Query {
                time_window: None,
                ranges: vec![RangeSpec { dim: 0, lo, hi }, RangeSpec { dim: 1, lo: 50, hi: 200 }],
                keywords: vec![vec!["kw-prop".into()]],
            }.compile(8);
            let kws = if has_kw { vec!["kw-prop".to_string()] } else { vec!["other".to_string()] };
            let o = Object::new(1, 0, vec![price, dim2], kws);
            let direct = price >= lo && price <= hi && (50..=200).contains(&dim2) && has_kw;
            prop_assert_eq!(q.object_matches(&o), direct);
        }
    }
}
