//! The untrusted wire boundary: byte codecs for SP-supplied responses.
//!
//! Everything the service provider ships to the light client —
//! [`QueryResponse`] for time-window queries, [`SubscriptionUpdate`] for
//! subscriptions — crosses the network as bytes an adversary controls
//! end-to-end. This module is the *only* place those bytes become typed
//! values, and it holds the line the threat model (paper §3, §8) requires:
//!
//! * **Total decoding** — every decode path returns [`WireError`]; no input,
//!   however malformed, panics, overflows, or aborts.
//! * **No attacker-sized allocation** — claimed collection counts are
//!   checked against the bytes actually present (each element consumes at
//!   least its minimum wire size) before a single element is read, and
//!   buffers are never pre-reserved from a claimed length.
//! * **Bounded recursion** — a [`VoNode`] tree deeper than
//!   [`MAX_VO_DEPTH`] is rejected, so a crafted VO cannot blow the stack.
//! * **Checked points** — accumulator values and proofs decode through
//!   [`Accumulator::value_from_bytes`] / [`Accumulator::proof_from_bytes`],
//!   which run the full curve ladder (canonical coordinate, on-curve,
//!   subgroup membership) on every compressed point.
//! * **Canonical form** — trailing bytes are rejected, and every accepted
//!   input re-encodes byte-identically (there is exactly one encoding per
//!   value), so byte strings can be hashed or compared in place of values.
//!
//! The encoders are infallible: they serialize honestly-constructed values
//! (the SP side). The decoders are the adversarial surface.

#![deny(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::unreachable,
    clippy::indexing_slicing
)]

use vchain_acc::Accumulator;
use vchain_chain::Object;
use vchain_hash::Digest;

use crate::subscribe::SubscriptionUpdate;
use crate::vo::{
    BlockCoverage, BlockVo, ClauseRef, GroupProof, MismatchProof, QueryResponse, VoNode,
};

/// Wire-format version byte; the first byte of every encoded response.
pub const WIRE_VERSION: u8 = 1;

/// Maximum accepted [`VoNode`] nesting depth. An honest VO mirrors the
/// intra-block index, whose depth is `⌈log₂(objects per block)⌉`, so 64
/// levels is beyond any realizable block while keeping decoder stack use
/// trivially bounded.
pub const MAX_VO_DEPTH: usize = 64;

/// Why untrusted response bytes failed structural decoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before a field it promised.
    Truncated {
        /// Bytes the next field needed.
        needed: usize,
        /// Bytes actually left.
        remaining: usize,
    },
    /// The leading version byte is not [`WIRE_VERSION`].
    UnsupportedVersion(u8),
    /// An enum tag byte has no corresponding variant.
    BadTag {
        /// Which enum was being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A claimed collection count exceeds what the remaining bytes could
    /// possibly hold — rejected before any allocation.
    Oversized {
        /// Which collection was being decoded.
        what: &'static str,
        /// The claimed element count.
        count: u64,
        /// Bytes actually left.
        remaining: usize,
    },
    /// A [`VoNode`] tree nests deeper than [`MAX_VO_DEPTH`].
    DepthExceeded {
        /// The enforced bound.
        max: usize,
    },
    /// A keyword string is not valid UTF-8.
    BadUtf8,
    /// An accumulator value or proof failed the checked point decode.
    Accumulator(vchain_acc::DecodeError),
    /// Bytes remained after the top-level value was fully decoded.
    TrailingBytes {
        /// How many bytes were left over.
        count: usize,
    },
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => {
                write!(f, "input truncated: needed {needed} bytes, {remaining} left")
            }
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadTag { what, tag } => write!(f, "invalid tag {tag} for {what}"),
            WireError::Oversized { what, count, remaining } => {
                write!(f, "{what} claims {count} elements but only {remaining} bytes remain")
            }
            WireError::DepthExceeded { max } => write!(f, "VO tree deeper than {max} levels"),
            WireError::BadUtf8 => write!(f, "keyword is not valid UTF-8"),
            WireError::Accumulator(e) => write!(f, "accumulator object: {e}"),
            WireError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after the encoded value")
            }
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Byte-sink half of the codec. `pub(crate)` so sibling byte formats — the
/// persistent store's record codec in [`crate::store`] — share one set of
/// little-endian primitives instead of growing a divergent twin.
#[derive(Default)]
pub(crate) struct Writer {
    pub(crate) buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Collection counts are `u32` on the wire; honest collections are far
    /// below `u32::MAX`, and saturating keeps the encoder total.
    pub(crate) fn count(&mut self, n: usize) {
        self.u32(u32::try_from(n).unwrap_or(u32::MAX));
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Byte-source half of the codec; same `pub(crate)` sharing rationale as
/// [`Writer`]. Every accessor is total: any shortfall is a typed
/// [`WireError`], never a panic.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(WireError::Truncated { needed: n, remaining: self.remaining() })?;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or(WireError::Truncated { needed: n, remaining: self.remaining() })?;
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, WireError> {
        self.take(1).map(|s| s.first().copied().unwrap_or(0))
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        self.take(2).map(|s| le_bytes(s) as u16)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        self.take(4).map(|s| le_bytes(s) as u32)
    }

    pub(crate) fn u64(&mut self) -> Result<u64, WireError> {
        self.take(8).map(le_bytes)
    }

    pub(crate) fn digest(&mut self) -> Result<Digest, WireError> {
        let s = self.take(Digest::LEN)?;
        let mut d = [0u8; Digest::LEN];
        for (dst, src) in d.iter_mut().zip(s) {
            *dst = *src;
        }
        Ok(Digest(d))
    }

    /// Read a collection count and reject it up-front unless the remaining
    /// bytes could hold `count` elements of at least `min_item` bytes each.
    /// Decoders then grow their vectors element by element, so memory use
    /// is bounded by the input length regardless of the claimed count.
    pub(crate) fn count(
        &mut self,
        what: &'static str,
        min_item: usize,
    ) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        let need = n.checked_mul(min_item.max(1)).ok_or(WireError::Oversized {
            what,
            count: n as u64,
            remaining: self.remaining(),
        })?;
        if need > self.remaining() {
            return Err(WireError::Oversized {
                what,
                count: n as u64,
                remaining: self.remaining(),
            });
        }
        Ok(n)
    }

    pub(crate) fn finish(self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            count => Err(WireError::TrailingBytes { count }),
        }
    }
}

/// Little-endian integer from at most 8 bytes (panic-free by construction).
fn le_bytes(s: &[u8]) -> u64 {
    s.iter().rev().fold(0u64, |acc, &b| (acc << 8) | u64::from(b))
}

// ---------------------------------------------------------------------------
// Leaf codecs
// ---------------------------------------------------------------------------

fn put_value<A: Accumulator>(w: &mut Writer, v: &A::Value) {
    w.bytes(&A::value_bytes(v));
}

fn get_value<A: Accumulator>(r: &mut Reader<'_>, acc: &A) -> Result<A::Value, WireError> {
    let bytes = r.take(acc.value_size())?;
    acc.value_from_bytes(bytes).map_err(WireError::Accumulator)
}

fn put_proof<A: Accumulator>(w: &mut Writer, p: &A::Proof) {
    w.bytes(&A::proof_bytes(p));
}

fn get_proof<A: Accumulator>(r: &mut Reader<'_>, acc: &A) -> Result<A::Proof, WireError> {
    let bytes = r.take(acc.proof_size())?;
    acc.proof_from_bytes(bytes).map_err(WireError::Accumulator)
}

fn put_string(w: &mut Writer, s: &str) {
    w.count(s.len());
    w.bytes(s.as_bytes());
}

fn get_string(r: &mut Reader<'_>) -> Result<String, WireError> {
    let len = r.count("string", 1)?;
    let bytes = r.take(len)?;
    core::str::from_utf8(bytes).map(str::to_owned).map_err(|_| WireError::BadUtf8)
}

fn put_object(w: &mut Writer, o: &Object) {
    w.u64(o.id);
    w.u64(o.timestamp);
    w.count(o.numeric.len());
    for v in &o.numeric {
        w.u64(*v);
    }
    w.count(o.keywords.len());
    for k in &o.keywords {
        put_string(w, k);
    }
}

fn get_object(r: &mut Reader<'_>) -> Result<Object, WireError> {
    let id = r.u64()?;
    let timestamp = r.u64()?;
    let n_numeric = r.count("object numeric vector", 8)?;
    let mut numeric = Vec::new();
    for _ in 0..n_numeric {
        numeric.push(r.u64()?);
    }
    let n_kw = r.count("object keywords", 4)?;
    let mut keywords = Vec::new();
    for _ in 0..n_kw {
        keywords.push(get_string(r)?);
    }
    Ok(Object { id, timestamp, numeric, keywords })
}

fn put_clause(w: &mut Writer, c: &ClauseRef) {
    match c {
        ClauseRef::Index(i) => {
            w.u8(0);
            w.u16(*i);
        }
        ClauseRef::Cell { len, prefixes } => {
            w.u8(1);
            w.u8(*len);
            w.count(prefixes.len());
            for (dim, bits) in prefixes {
                w.u8(*dim);
                w.u64(*bits);
            }
        }
    }
}

fn get_clause(r: &mut Reader<'_>) -> Result<ClauseRef, WireError> {
    match r.u8()? {
        0 => Ok(ClauseRef::Index(r.u16()?)),
        1 => {
            let len = r.u8()?;
            let n = r.count("cell prefixes", 9)?;
            let mut prefixes = Vec::new();
            for _ in 0..n {
                let dim = r.u8()?;
                let bits = r.u64()?;
                prefixes.push((dim, bits));
            }
            Ok(ClauseRef::Cell { len, prefixes })
        }
        tag => Err(WireError::BadTag { what: "ClauseRef", tag }),
    }
}

fn put_mismatch<A: Accumulator>(w: &mut Writer, m: &MismatchProof<A>) {
    match m {
        MismatchProof::Inline { proof, clause } => {
            w.u8(0);
            put_proof::<A>(w, proof);
            put_clause(w, clause);
        }
        MismatchProof::Group(gid) => {
            w.u8(1);
            w.u16(*gid);
        }
    }
}

fn get_mismatch<A: Accumulator>(
    r: &mut Reader<'_>,
    acc: &A,
) -> Result<MismatchProof<A>, WireError> {
    match r.u8()? {
        0 => {
            let proof = get_proof(r, acc)?;
            let clause = get_clause(r)?;
            Ok(MismatchProof::Inline { proof, clause })
        }
        1 => Ok(MismatchProof::Group(r.u16()?)),
        tag => Err(WireError::BadTag { what: "MismatchProof", tag }),
    }
}

// ---------------------------------------------------------------------------
// VO tree
// ---------------------------------------------------------------------------

fn put_node<A: Accumulator>(w: &mut Writer, node: &VoNode<A>) {
    match node {
        VoNode::Internal { att, left, right } => {
            w.u8(0);
            match att {
                Some(a) => {
                    w.u8(1);
                    put_value::<A>(w, a);
                }
                None => w.u8(0),
            }
            put_node(w, left);
            put_node(w, right);
        }
        VoNode::InternalMismatch { child_hash, att, proof } => {
            w.u8(1);
            w.bytes(child_hash.as_bytes());
            put_value::<A>(w, att);
            put_mismatch(w, proof);
        }
        VoNode::LeafMatch { att, result_idx } => {
            w.u8(2);
            put_value::<A>(w, att);
            w.u32(*result_idx);
        }
        VoNode::LeafMismatch { obj_hash, att, proof } => {
            w.u8(3);
            w.bytes(obj_hash.as_bytes());
            put_value::<A>(w, att);
            put_mismatch(w, proof);
        }
    }
}

fn get_node<A: Accumulator>(
    r: &mut Reader<'_>,
    acc: &A,
    depth: usize,
) -> Result<VoNode<A>, WireError> {
    if depth >= MAX_VO_DEPTH {
        return Err(WireError::DepthExceeded { max: MAX_VO_DEPTH });
    }
    match r.u8()? {
        0 => {
            let att = match r.u8()? {
                0 => None,
                1 => Some(get_value(r, acc)?),
                tag => return Err(WireError::BadTag { what: "optional AttDigest", tag }),
            };
            let left = Box::new(get_node(r, acc, depth + 1)?);
            let right = Box::new(get_node(r, acc, depth + 1)?);
            Ok(VoNode::Internal { att, left, right })
        }
        1 => {
            let child_hash = r.digest()?;
            let att = get_value(r, acc)?;
            let proof = get_mismatch(r, acc)?;
            Ok(VoNode::InternalMismatch { child_hash, att, proof })
        }
        2 => {
            let att = get_value(r, acc)?;
            let result_idx = r.u32()?;
            Ok(VoNode::LeafMatch { att, result_idx })
        }
        3 => {
            let obj_hash = r.digest()?;
            let att = get_value(r, acc)?;
            let proof = get_mismatch(r, acc)?;
            Ok(VoNode::LeafMismatch { obj_hash, att, proof })
        }
        tag => Err(WireError::BadTag { what: "VoNode", tag }),
    }
}

fn put_block_vo<A: Accumulator>(w: &mut Writer, vo: &BlockVo<A>) {
    put_node(w, &vo.root);
    w.count(vo.groups.len());
    for g in &vo.groups {
        put_clause(w, &g.clause);
        put_proof::<A>(w, &g.proof);
    }
}

fn get_block_vo<A: Accumulator>(r: &mut Reader<'_>, acc: &A) -> Result<BlockVo<A>, WireError> {
    let root = get_node(r, acc, 0)?;
    let n = r.count("batch groups", acc.proof_size().saturating_add(1))?;
    let mut groups = Vec::new();
    for _ in 0..n {
        let clause = get_clause(r)?;
        let proof = get_proof(r, acc)?;
        groups.push(GroupProof { clause, proof });
    }
    Ok(BlockVo { root, groups })
}

fn put_coverage<A: Accumulator>(w: &mut Writer, cov: &BlockCoverage<A>) {
    match cov {
        BlockCoverage::Block { height, vo } => {
            w.u8(0);
            w.u64(*height);
            put_block_vo(w, vo);
        }
        BlockCoverage::Skip { height, distance, att, proof, clause, siblings } => {
            w.u8(1);
            w.u64(*height);
            w.u64(*distance);
            put_value::<A>(w, att);
            put_proof::<A>(w, proof);
            put_clause(w, clause);
            w.count(siblings.len());
            for (d, h) in siblings {
                w.u64(*d);
                w.bytes(h.as_bytes());
            }
        }
    }
}

fn get_coverage<A: Accumulator>(
    r: &mut Reader<'_>,
    acc: &A,
) -> Result<BlockCoverage<A>, WireError> {
    match r.u8()? {
        0 => {
            let height = r.u64()?;
            let vo = get_block_vo(r, acc)?;
            Ok(BlockCoverage::Block { height, vo })
        }
        1 => {
            let height = r.u64()?;
            let distance = r.u64()?;
            let att = get_value(r, acc)?;
            let proof = get_proof(r, acc)?;
            let clause = get_clause(r)?;
            let n = r.count("skip siblings", 8 + Digest::LEN)?;
            let mut siblings = Vec::new();
            for _ in 0..n {
                let d = r.u64()?;
                let h = r.digest()?;
                siblings.push((d, h));
            }
            Ok(BlockCoverage::Skip { height, distance, att, proof, clause, siblings })
        }
        tag => Err(WireError::BadTag { what: "BlockCoverage", tag }),
    }
}

fn put_results(w: &mut Writer, results: &[(u64, Vec<Object>)]) {
    w.count(results.len());
    for (height, objs) in results {
        w.u64(*height);
        w.count(objs.len());
        for o in objs {
            put_object(w, o);
        }
    }
}

fn get_results(r: &mut Reader<'_>) -> Result<Vec<(u64, Vec<Object>)>, WireError> {
    let n_blocks = r.count("result blocks", 12)?;
    let mut results = Vec::new();
    for _ in 0..n_blocks {
        let height = r.u64()?;
        let n_objs = r.count("result objects", 24)?;
        let mut objs = Vec::new();
        for _ in 0..n_objs {
            objs.push(get_object(r)?);
        }
        results.push((height, objs));
    }
    Ok(results)
}

// ---------------------------------------------------------------------------
// Top-level entry points
// ---------------------------------------------------------------------------

/// Serialize a time-window query response (SP side, infallible).
pub fn encode_response<A: Accumulator>(response: &QueryResponse<A>) -> Vec<u8> {
    let mut w = Writer::default();
    w.u8(WIRE_VERSION);
    put_results(&mut w, &response.results);
    w.count(response.coverage.len());
    for cov in &response.coverage {
        put_coverage(&mut w, cov);
    }
    w.buf
}

/// Decode a time-window query response from untrusted bytes. `Ok` means
/// the structure is well-formed and every point passed the curve ladder —
/// the *cryptographic* checks still run in [`crate::verify`].
pub fn decode_response<A: Accumulator>(
    acc: &A,
    bytes: &[u8],
) -> Result<QueryResponse<A>, WireError> {
    let mut r = Reader::new(bytes);
    match r.u8()? {
        WIRE_VERSION => {}
        v => return Err(WireError::UnsupportedVersion(v)),
    }
    let results = get_results(&mut r)?;
    let n_cov = r.count("coverage entries", 9)?;
    let mut coverage = Vec::new();
    for _ in 0..n_cov {
        coverage.push(get_coverage(&mut r, acc)?);
    }
    r.finish()?;
    Ok(QueryResponse { results, coverage })
}

/// Serialize a subscription update (SP side, infallible).
pub fn encode_update<A: Accumulator>(update: &SubscriptionUpdate<A>) -> Vec<u8> {
    let mut w = Writer::default();
    w.u8(WIRE_VERSION);
    w.u32(update.query_id);
    w.u64(update.from_height);
    w.u64(update.to_height);
    put_results(&mut w, &update.results);
    w.count(update.coverage.len());
    for cov in &update.coverage {
        put_coverage(&mut w, cov);
    }
    w.buf
}

/// Decode a subscription update from untrusted bytes.
pub fn decode_update<A: Accumulator>(
    acc: &A,
    bytes: &[u8],
) -> Result<SubscriptionUpdate<A>, WireError> {
    let mut r = Reader::new(bytes);
    match r.u8()? {
        WIRE_VERSION => {}
        v => return Err(WireError::UnsupportedVersion(v)),
    }
    let query_id = r.u32()?;
    let from_height = r.u64()?;
    let to_height = r.u64()?;
    let results = get_results(&mut r)?;
    let n_cov = r.count("coverage entries", 9)?;
    let mut coverage = Vec::new();
    for _ in 0..n_cov {
        coverage.push(get_coverage(&mut r, acc)?);
    }
    r.finish()?;
    Ok(SubscriptionUpdate { query_id, from_height, to_height, results, coverage })
}

/// Serialize a per-block attribute Bloom filter (miner/SP side, infallible).
///
/// The filter is SP-side acceleration state, not part of any VO — but full
/// nodes gossip it alongside the block's ADS, so it gets the same versioned,
/// total codec treatment as everything else on the wire.
pub fn encode_bloom(bloom: &crate::bloom::AttributeBloom) -> Vec<u8> {
    let mut w = Writer::default();
    w.u8(WIRE_VERSION);
    w.u64(bloom.seed());
    w.u8(bloom.probes());
    w.u32(bloom.key_count());
    w.count(bloom.words().len());
    for word in bloom.words() {
        w.u64(*word);
    }
    w.buf
}

/// Decode a per-block attribute Bloom filter from untrusted bytes. Total:
/// every input either yields a structurally valid filter or a [`WireError`].
/// A decoded-but-lying filter is still harmless — see [`crate::bloom`].
pub fn decode_bloom(bytes: &[u8]) -> Result<crate::bloom::AttributeBloom, WireError> {
    let mut r = Reader::new(bytes);
    match r.u8()? {
        WIRE_VERSION => {}
        v => return Err(WireError::UnsupportedVersion(v)),
    }
    let seed = r.u64()?;
    let k = r.u8()?;
    let keys = r.u32()?;
    let n_words = r.count("bloom words", 8)?;
    let mut words = Vec::with_capacity(n_words);
    for _ in 0..n_words {
        words.push(r.u64()?);
    }
    r.finish()?;
    crate::bloom::AttributeBloom::from_parts(seed, k, keys, words)
        .ok_or(WireError::BadTag { what: "bloom filter shape", tag: k })
}
