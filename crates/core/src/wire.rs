//! The untrusted wire boundary: byte codecs for SP-supplied responses.
//!
//! Everything the service provider ships to the light client —
//! [`QueryResponse`] for time-window queries, [`SubscriptionUpdate`] for
//! subscriptions — crosses the network as bytes an adversary controls
//! end-to-end. This module is the *only* place those bytes become typed
//! values, and it holds the line the threat model (paper §3, §8) requires:
//!
//! * **Total decoding** — every decode path returns [`WireError`]; no input,
//!   however malformed, panics, overflows, or aborts.
//! * **No attacker-sized allocation** — claimed collection counts are
//!   checked against the bytes actually present (each element consumes at
//!   least its minimum wire size) before a single element is read, and
//!   buffers are never pre-reserved from a claimed length.
//! * **Bounded recursion** — a [`VoNode`] tree deeper than
//!   [`MAX_VO_DEPTH`] is rejected, so a crafted VO cannot blow the stack.
//! * **Checked points** — accumulator values and proofs decode through
//!   [`Accumulator::value_from_bytes`] / [`Accumulator::proof_from_bytes`],
//!   which run the full curve ladder (canonical coordinate, on-curve,
//!   subgroup membership) on every compressed point.
//! * **Canonical form** — trailing bytes are rejected, and every accepted
//!   input re-encodes byte-identically (there is exactly one encoding per
//!   value), so byte strings can be hashed or compared in place of values.
//!
//! The encoders are infallible: they serialize honestly-constructed values
//! (the SP side). The decoders are the adversarial surface.

#![deny(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::unreachable,
    clippy::indexing_slicing
)]

use std::collections::{HashMap, HashSet};

use vchain_acc::Accumulator;
use vchain_chain::Object;
use vchain_hash::Digest;

use crate::subscribe::SubscriptionUpdate;
use crate::vo::{
    BlockCoverage, BlockVo, ClauseRef, GroupProof, MismatchProof, QueryResponse, VoNode,
};

/// Wire-format version byte; the first byte of every encoded response.
pub const WIRE_VERSION: u8 = 1;

/// Version byte of the deduplicating v2 response encoding
/// ([`encode_response_v2`]): shared accumulator values and repeated proof
/// points are interned once into a per-response table and back-referenced
/// by index everywhere else.
pub const WIRE_VERSION_V2: u8 = 2;

/// Version byte of the frame-stream envelope ([`encode_response_stream`]),
/// carried in the header frame alongside the body codec version.
pub const STREAM_VERSION: u8 = 1;

/// Maximum accepted payload length of one stream frame. The decoder
/// rejects a larger claim from the 4-byte length prefix alone, so a
/// malicious length can never force the client to buffer more than this
/// (an honest frame — one block's coverage entry — is kilobytes).
pub const MAX_FRAME_BYTES: usize = 1 << 22;

/// Maximum accepted [`VoNode`] nesting depth. An honest VO mirrors the
/// intra-block index, whose depth is `⌈log₂(objects per block)⌉`, so 64
/// levels is beyond any realizable block while keeping decoder stack use
/// trivially bounded.
pub const MAX_VO_DEPTH: usize = 64;

/// Why untrusted response bytes failed structural decoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before a field it promised.
    Truncated {
        /// Bytes the next field needed.
        needed: usize,
        /// Bytes actually left.
        remaining: usize,
    },
    /// The leading version byte is not [`WIRE_VERSION`].
    UnsupportedVersion(u8),
    /// An enum tag byte has no corresponding variant.
    BadTag {
        /// Which enum was being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A claimed collection count exceeds what the remaining bytes could
    /// possibly hold — rejected before any allocation.
    Oversized {
        /// Which collection was being decoded.
        what: &'static str,
        /// The claimed element count.
        count: u64,
        /// Bytes actually left.
        remaining: usize,
    },
    /// A [`VoNode`] tree nests deeper than [`MAX_VO_DEPTH`].
    DepthExceeded {
        /// The enforced bound.
        max: usize,
    },
    /// A keyword string is not valid UTF-8.
    BadUtf8,
    /// An accumulator value or proof failed the checked point decode.
    Accumulator(vchain_acc::DecodeError),
    /// Bytes remained after the top-level value was fully decoded.
    TrailingBytes {
        /// How many bytes were left over.
        count: usize,
    },
    /// A v2 slot back-reference points past the end of the intern table.
    BackRefOutOfRange {
        /// The referenced table index.
        index: u32,
        /// The table's actual entry count.
        table: usize,
    },
    /// A v2 encoding is structurally valid but not the one canonical form
    /// the encoder produces (duplicate or unused table entries, an entry
    /// referenced fewer than twice, out-of-order first use, or an inline
    /// slot that repeats earlier bytes instead of back-referencing).
    NonCanonical {
        /// Which canonical-form rule was violated.
        what: &'static str,
    },
    /// A stream frame claims a payload larger than [`MAX_FRAME_BYTES`] —
    /// rejected from the 4-byte length prefix alone, before any buffering.
    FrameOversized {
        /// The claimed payload length.
        len: u64,
    },
    /// A stream frame arrived out of order (its sequence number is not the
    /// next expected one) — reordered, duplicated, or dropped in transit.
    FrameSequence {
        /// The sequence number the decoder expected next.
        expected: u32,
        /// The sequence number that actually arrived.
        got: u32,
    },
    /// The stream ended before delivering every frame the header declared
    /// (or ended inside a partial frame, or never delivered a header).
    StreamTruncated {
        /// Entry frames fully decoded.
        entries_seen: u32,
        /// Entry frames the header declared.
        entries_declared: u32,
        /// Bytes of an incomplete trailing frame still buffered.
        pending: usize,
    },
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => {
                write!(f, "input truncated: needed {needed} bytes, {remaining} left")
            }
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadTag { what, tag } => write!(f, "invalid tag {tag} for {what}"),
            WireError::Oversized { what, count, remaining } => {
                write!(f, "{what} claims {count} elements but only {remaining} bytes remain")
            }
            WireError::DepthExceeded { max } => write!(f, "VO tree deeper than {max} levels"),
            WireError::BadUtf8 => write!(f, "keyword is not valid UTF-8"),
            WireError::Accumulator(e) => write!(f, "accumulator object: {e}"),
            WireError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after the encoded value")
            }
            WireError::BackRefOutOfRange { index, table } => {
                write!(f, "slot back-reference {index} outside the {table}-entry intern table")
            }
            WireError::NonCanonical { what } => {
                write!(f, "non-canonical v2 encoding: {what}")
            }
            WireError::FrameOversized { len } => {
                write!(f, "stream frame claims {len} bytes, cap is {MAX_FRAME_BYTES}")
            }
            WireError::FrameSequence { expected, got } => {
                write!(f, "stream frame out of order: expected seq {expected}, got {got}")
            }
            WireError::StreamTruncated { entries_seen, entries_declared, pending } => {
                write!(
                    f,
                    "stream ended after {entries_seen} of {entries_declared} entry frames \
                     ({pending} bytes of a partial frame pending)"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Byte-sink half of the codec. `pub(crate)` so sibling byte formats — the
/// persistent store's record codec in [`crate::store`] — share one set of
/// little-endian primitives instead of growing a divergent twin.
#[derive(Default)]
pub(crate) struct Writer {
    pub(crate) buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Collection counts are `u32` on the wire; honest collections are far
    /// below `u32::MAX`, and saturating keeps the encoder total.
    pub(crate) fn count(&mut self, n: usize) {
        self.u32(u32::try_from(n).unwrap_or(u32::MAX));
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Byte-source half of the codec; same `pub(crate)` sharing rationale as
/// [`Writer`]. Every accessor is total: any shortfall is a typed
/// [`WireError`], never a panic.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(WireError::Truncated { needed: n, remaining: self.remaining() })?;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or(WireError::Truncated { needed: n, remaining: self.remaining() })?;
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, WireError> {
        self.take(1).map(|s| s.first().copied().unwrap_or(0))
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        self.take(2).map(|s| le_bytes(s) as u16)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        self.take(4).map(|s| le_bytes(s) as u32)
    }

    pub(crate) fn u64(&mut self) -> Result<u64, WireError> {
        self.take(8).map(le_bytes)
    }

    pub(crate) fn digest(&mut self) -> Result<Digest, WireError> {
        let s = self.take(Digest::LEN)?;
        let mut d = [0u8; Digest::LEN];
        for (dst, src) in d.iter_mut().zip(s) {
            *dst = *src;
        }
        Ok(Digest(d))
    }

    /// Read a collection count and reject it up-front unless the remaining
    /// bytes could hold `count` elements of at least `min_item` bytes each.
    /// Decoders then grow their vectors element by element, so memory use
    /// is bounded by the input length regardless of the claimed count.
    pub(crate) fn count(
        &mut self,
        what: &'static str,
        min_item: usize,
    ) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        let need = n.checked_mul(min_item.max(1)).ok_or(WireError::Oversized {
            what,
            count: n as u64,
            remaining: self.remaining(),
        })?;
        if need > self.remaining() {
            return Err(WireError::Oversized {
                what,
                count: n as u64,
                remaining: self.remaining(),
            });
        }
        Ok(n)
    }

    pub(crate) fn finish(self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            count => Err(WireError::TrailingBytes { count }),
        }
    }
}

/// Little-endian integer from at most 8 bytes (panic-free by construction).
fn le_bytes(s: &[u8]) -> u64 {
    s.iter().rev().fold(0u64, |acc, &b| (acc << 8) | u64::from(b))
}

// ---------------------------------------------------------------------------
// Leaf codecs
// ---------------------------------------------------------------------------

fn put_value<A: Accumulator>(w: &mut Writer, v: &A::Value) {
    w.bytes(&A::value_bytes(v));
}

fn get_value<A: Accumulator>(r: &mut Reader<'_>, acc: &A) -> Result<A::Value, WireError> {
    let bytes = r.take(acc.value_size())?;
    acc.value_from_bytes(bytes).map_err(WireError::Accumulator)
}

fn put_proof<A: Accumulator>(w: &mut Writer, p: &A::Proof) {
    w.bytes(&A::proof_bytes(p));
}

fn get_proof<A: Accumulator>(r: &mut Reader<'_>, acc: &A) -> Result<A::Proof, WireError> {
    let bytes = r.take(acc.proof_size())?;
    acc.proof_from_bytes(bytes).map_err(WireError::Accumulator)
}

// ---------------------------------------------------------------------------
// Slot codecs: how accumulator values / proofs embed into the body
// ---------------------------------------------------------------------------
//
// Every structural codec below (nodes, mismatches, coverage) is generic
// over a *slot codec* — the one place an accumulator value or proof slot
// becomes bytes. v1 writes every slot raw in place; v2 tags each slot and
// back-references repeated byte strings into a per-response intern table.
// One set of body functions therefore serves both versions, and v1 output
// stays byte-for-byte what it was before v2 existed.

/// Encode-side slot strategy.
trait SlotWrite<A: Accumulator> {
    fn value(&mut self, w: &mut Writer, v: &A::Value);
    fn proof(&mut self, w: &mut Writer, p: &A::Proof);
}

/// Decode-side slot strategy.
trait SlotRead<A: Accumulator> {
    fn value(&mut self, r: &mut Reader<'_>, acc: &A) -> Result<A::Value, WireError>;
    fn proof(&mut self, r: &mut Reader<'_>, acc: &A) -> Result<A::Proof, WireError>;
}

/// v1: every slot is its raw fixed-size bytes, in place.
struct RawSlots;

impl<A: Accumulator> SlotWrite<A> for RawSlots {
    fn value(&mut self, w: &mut Writer, v: &A::Value) {
        put_value::<A>(w, v);
    }
    fn proof(&mut self, w: &mut Writer, p: &A::Proof) {
        put_proof::<A>(w, p);
    }
}

impl<A: Accumulator> SlotRead<A> for RawSlots {
    fn value(&mut self, r: &mut Reader<'_>, acc: &A) -> Result<A::Value, WireError> {
        get_value(r, acc)
    }
    fn proof(&mut self, r: &mut Reader<'_>, acc: &A) -> Result<A::Proof, WireError> {
        get_proof(r, acc)
    }
}

/// v2 slot tag: the slot's bytes follow inline (first/only occurrence).
const SLOT_INLINE: u8 = 0;
/// v2 slot tag: a `u32` index into the response's intern table follows.
const SLOT_BACKREF: u8 = 1;

/// v2 encode pass 1: count every slot byte-string in encode order and
/// remember first-occurrence order. Writes nothing — the driver runs the
/// body encoder into a scratch buffer that is discarded.
#[derive(Default)]
struct CountSlots {
    counts: HashMap<Vec<u8>, u32>,
    order: Vec<Vec<u8>>,
}

impl CountSlots {
    fn record(&mut self, bytes: Vec<u8>) {
        let n = self.counts.entry(bytes.clone()).or_insert(0);
        *n += 1;
        if *n == 1 {
            self.order.push(bytes);
        }
    }

    /// The intern table: every byte-string that occurs at least twice, in
    /// first-occurrence order (which is exactly the order the decode pass
    /// will first dereference them in — the canonical-form invariant).
    fn into_table(self) -> Vec<Vec<u8>> {
        let counts = self.counts;
        self.order.into_iter().filter(|b| counts.get(b).copied().unwrap_or(0) >= 2).collect()
    }
}

impl<A: Accumulator> SlotWrite<A> for CountSlots {
    fn value(&mut self, _w: &mut Writer, v: &A::Value) {
        self.record(A::value_bytes(v));
    }
    fn proof(&mut self, _w: &mut Writer, p: &A::Proof) {
        self.record(A::proof_bytes(p));
    }
}

/// v2 encode pass 2: emit `SLOT_BACKREF ‖ u32 index` for interned strings,
/// `SLOT_INLINE ‖ raw bytes` otherwise.
struct InternSlots {
    index: HashMap<Vec<u8>, u32>,
}

impl InternSlots {
    fn new(table: &[Vec<u8>]) -> Self {
        Self {
            index: table
                .iter()
                .enumerate()
                .map(|(i, e)| (e.clone(), u32::try_from(i).unwrap_or(u32::MAX)))
                .collect(),
        }
    }

    fn emit(&mut self, w: &mut Writer, bytes: Vec<u8>) {
        match self.index.get(&bytes) {
            Some(&i) => {
                w.u8(SLOT_BACKREF);
                w.u32(i);
            }
            None => {
                w.u8(SLOT_INLINE);
                w.bytes(&bytes);
            }
        }
    }
}

impl<A: Accumulator> SlotWrite<A> for InternSlots {
    fn value(&mut self, w: &mut Writer, v: &A::Value) {
        self.emit(w, A::value_bytes(v));
    }
    fn proof(&mut self, w: &mut Writer, p: &A::Proof) {
        self.emit(w, A::proof_bytes(p));
    }
}

/// v2 decode: resolve tagged slots against the intern table while
/// enforcing the canonical form (exactly one encoding per response):
///
/// * a back-reference must be in range, and first uses must walk the table
///   in order `0, 1, 2, …` — the order the encoder's first occurrences
///   produce by construction;
/// * inline bytes must not duplicate a table entry or an earlier inline
///   slot (the encoder would have interned them);
/// * at [`TableSlots::finish`], every table entry must have been referenced
///   at least twice (interning a once-used string would *grow* the
///   encoding, so the encoder never does).
///
/// Each table entry passes the checked point decode exactly once per role
/// and is served from a cache afterwards — deduplication saves decode
/// work, not just bytes.
struct TableSlots<A: Accumulator> {
    raw: Vec<Vec<u8>>,
    values: Vec<Option<A::Value>>,
    proofs: Vec<Option<A::Proof>>,
    refs: Vec<u32>,
    first_unused: usize,
    table_bytes: usize,
    inline_seen: HashSet<Vec<u8>>,
    table_set: HashSet<Vec<u8>>,
}

impl<A: Accumulator> TableSlots<A> {
    /// Parse the intern table (`u32 count`, then `u32 len ‖ bytes` per
    /// entry) from the front of a v2 body or a stream header frame.
    fn parse(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.count("intern table", 5)?;
        let mut raw = Vec::new();
        let mut table_set = HashSet::new();
        let mut table_bytes = 0usize;
        for _ in 0..n {
            let len = r.count("intern table entry", 1)?;
            let bytes = r.take(len)?.to_vec();
            if !table_set.insert(bytes.clone()) {
                return Err(WireError::NonCanonical { what: "duplicate intern-table entry" });
            }
            table_bytes = table_bytes.saturating_add(bytes.len());
            raw.push(bytes);
        }
        Ok(Self {
            values: vec![None; raw.len()],
            proofs: vec![None; raw.len()],
            refs: vec![0; raw.len()],
            first_unused: 0,
            table_bytes,
            inline_seen: HashSet::new(),
            table_set,
            raw,
        })
    }

    fn len(&self) -> usize {
        self.raw.len()
    }

    /// Total byte length of the retained table entries (buffer accounting
    /// for the streaming client).
    fn table_bytes(&self) -> usize {
        self.table_bytes
    }

    /// Resolve one tagged slot. `decode` turns raw entry bytes into the
    /// typed value; `cached` is the per-role decode cache.
    fn slot<T: Clone>(
        &mut self,
        r: &mut Reader<'_>,
        size: usize,
        decode: impl Fn(&[u8]) -> Result<T, WireError>,
        read_cache: impl Fn(&Self, usize) -> Option<T>,
        write_cache: impl Fn(&mut Self, usize, T),
    ) -> Result<T, WireError> {
        match r.u8()? {
            SLOT_INLINE => {
                let bytes = r.take(size)?;
                if self.table_set.contains(bytes) {
                    return Err(WireError::NonCanonical {
                        what: "inline slot duplicates an intern-table entry",
                    });
                }
                if !self.inline_seen.insert(bytes.to_vec()) {
                    return Err(WireError::NonCanonical {
                        what: "repeated slot bytes not interned",
                    });
                }
                decode(bytes)
            }
            SLOT_BACKREF => {
                let index = r.u32()?;
                let i = index as usize;
                if i >= self.raw.len() {
                    return Err(WireError::BackRefOutOfRange { index, table: self.raw.len() });
                }
                if i > self.first_unused {
                    return Err(WireError::NonCanonical {
                        what: "intern-table first use out of order",
                    });
                }
                if i == self.first_unused {
                    self.first_unused += 1;
                }
                if let Some(c) = self.refs.get_mut(i) {
                    *c = c.saturating_add(1);
                }
                if let Some(hit) = read_cache(self, i) {
                    return Ok(hit);
                }
                let bytes = self.raw.get(i).cloned().unwrap_or_default();
                let v = decode(&bytes)?;
                write_cache(self, i, v.clone());
                Ok(v)
            }
            tag => Err(WireError::BadTag { what: "v2 slot", tag }),
        }
    }

    /// End-of-response canonicality: every table entry was first-used in
    /// order (so all were used) and referenced at least twice.
    fn finish(&self) -> Result<(), WireError> {
        if self.first_unused != self.raw.len() {
            return Err(WireError::NonCanonical { what: "unused intern-table entry" });
        }
        if self.refs.iter().any(|&c| c < 2) {
            return Err(WireError::NonCanonical { what: "intern-table entry referenced once" });
        }
        Ok(())
    }
}

impl<A: Accumulator> SlotRead<A> for TableSlots<A> {
    fn value(&mut self, r: &mut Reader<'_>, acc: &A) -> Result<A::Value, WireError> {
        self.slot(
            r,
            acc.value_size(),
            |b| acc.value_from_bytes(b).map_err(WireError::Accumulator),
            |s, i| s.values.get(i).and_then(Clone::clone),
            |s, i, v| {
                if let Some(c) = s.values.get_mut(i) {
                    *c = Some(v);
                }
            },
        )
    }

    fn proof(&mut self, r: &mut Reader<'_>, acc: &A) -> Result<A::Proof, WireError> {
        self.slot(
            r,
            acc.proof_size(),
            |b| acc.proof_from_bytes(b).map_err(WireError::Accumulator),
            |s, i| s.proofs.get(i).and_then(Clone::clone),
            |s, i, v| {
                if let Some(c) = s.proofs.get_mut(i) {
                    *c = Some(v);
                }
            },
        )
    }
}

fn put_string(w: &mut Writer, s: &str) {
    w.count(s.len());
    w.bytes(s.as_bytes());
}

fn get_string(r: &mut Reader<'_>) -> Result<String, WireError> {
    let len = r.count("string", 1)?;
    let bytes = r.take(len)?;
    core::str::from_utf8(bytes).map(str::to_owned).map_err(|_| WireError::BadUtf8)
}

fn put_object(w: &mut Writer, o: &Object) {
    w.u64(o.id);
    w.u64(o.timestamp);
    w.count(o.numeric.len());
    for v in &o.numeric {
        w.u64(*v);
    }
    w.count(o.keywords.len());
    for k in &o.keywords {
        put_string(w, k);
    }
}

fn get_object(r: &mut Reader<'_>) -> Result<Object, WireError> {
    let id = r.u64()?;
    let timestamp = r.u64()?;
    let n_numeric = r.count("object numeric vector", 8)?;
    let mut numeric = Vec::new();
    for _ in 0..n_numeric {
        numeric.push(r.u64()?);
    }
    let n_kw = r.count("object keywords", 4)?;
    let mut keywords = Vec::new();
    for _ in 0..n_kw {
        keywords.push(get_string(r)?);
    }
    Ok(Object { id, timestamp, numeric, keywords })
}

fn put_clause(w: &mut Writer, c: &ClauseRef) {
    match c {
        ClauseRef::Index(i) => {
            w.u8(0);
            w.u16(*i);
        }
        ClauseRef::Cell { len, prefixes } => {
            w.u8(1);
            w.u8(*len);
            w.count(prefixes.len());
            for (dim, bits) in prefixes {
                w.u8(*dim);
                w.u64(*bits);
            }
        }
    }
}

fn get_clause(r: &mut Reader<'_>) -> Result<ClauseRef, WireError> {
    match r.u8()? {
        0 => Ok(ClauseRef::Index(r.u16()?)),
        1 => {
            let len = r.u8()?;
            let n = r.count("cell prefixes", 9)?;
            let mut prefixes = Vec::new();
            for _ in 0..n {
                let dim = r.u8()?;
                let bits = r.u64()?;
                prefixes.push((dim, bits));
            }
            Ok(ClauseRef::Cell { len, prefixes })
        }
        tag => Err(WireError::BadTag { what: "ClauseRef", tag }),
    }
}

fn put_mismatch<A: Accumulator, S: SlotWrite<A>>(w: &mut Writer, m: &MismatchProof<A>, s: &mut S) {
    match m {
        MismatchProof::Inline { proof, clause } => {
            w.u8(0);
            s.proof(w, proof);
            put_clause(w, clause);
        }
        MismatchProof::Group(gid) => {
            w.u8(1);
            w.u16(*gid);
        }
    }
}

fn get_mismatch<A: Accumulator, S: SlotRead<A>>(
    r: &mut Reader<'_>,
    acc: &A,
    s: &mut S,
) -> Result<MismatchProof<A>, WireError> {
    match r.u8()? {
        0 => {
            let proof = s.proof(r, acc)?;
            let clause = get_clause(r)?;
            Ok(MismatchProof::Inline { proof, clause })
        }
        1 => Ok(MismatchProof::Group(r.u16()?)),
        tag => Err(WireError::BadTag { what: "MismatchProof", tag }),
    }
}

// ---------------------------------------------------------------------------
// VO tree
// ---------------------------------------------------------------------------

fn put_node<A: Accumulator, S: SlotWrite<A>>(w: &mut Writer, node: &VoNode<A>, s: &mut S) {
    match node {
        VoNode::Internal { att, left, right } => {
            w.u8(0);
            match att {
                Some(a) => {
                    w.u8(1);
                    s.value(w, a);
                }
                None => w.u8(0),
            }
            put_node(w, left, s);
            put_node(w, right, s);
        }
        VoNode::InternalMismatch { child_hash, att, proof } => {
            w.u8(1);
            w.bytes(child_hash.as_bytes());
            s.value(w, att);
            put_mismatch(w, proof, s);
        }
        VoNode::LeafMatch { att, result_idx } => {
            w.u8(2);
            s.value(w, att);
            w.u32(*result_idx);
        }
        VoNode::LeafMismatch { obj_hash, att, proof } => {
            w.u8(3);
            w.bytes(obj_hash.as_bytes());
            s.value(w, att);
            put_mismatch(w, proof, s);
        }
    }
}

fn get_node<A: Accumulator, S: SlotRead<A>>(
    r: &mut Reader<'_>,
    acc: &A,
    s: &mut S,
    depth: usize,
) -> Result<VoNode<A>, WireError> {
    if depth >= MAX_VO_DEPTH {
        return Err(WireError::DepthExceeded { max: MAX_VO_DEPTH });
    }
    match r.u8()? {
        0 => {
            let att = match r.u8()? {
                0 => None,
                1 => Some(s.value(r, acc)?),
                tag => return Err(WireError::BadTag { what: "optional AttDigest", tag }),
            };
            let left = Box::new(get_node(r, acc, s, depth + 1)?);
            let right = Box::new(get_node(r, acc, s, depth + 1)?);
            Ok(VoNode::Internal { att, left, right })
        }
        1 => {
            let child_hash = r.digest()?;
            let att = s.value(r, acc)?;
            let proof = get_mismatch(r, acc, s)?;
            Ok(VoNode::InternalMismatch { child_hash, att, proof })
        }
        2 => {
            let att = s.value(r, acc)?;
            let result_idx = r.u32()?;
            Ok(VoNode::LeafMatch { att, result_idx })
        }
        3 => {
            let obj_hash = r.digest()?;
            let att = s.value(r, acc)?;
            let proof = get_mismatch(r, acc, s)?;
            Ok(VoNode::LeafMismatch { obj_hash, att, proof })
        }
        tag => Err(WireError::BadTag { what: "VoNode", tag }),
    }
}

fn put_block_vo<A: Accumulator, S: SlotWrite<A>>(w: &mut Writer, vo: &BlockVo<A>, s: &mut S) {
    put_node(w, &vo.root, s);
    w.count(vo.groups.len());
    for g in &vo.groups {
        put_clause(w, &g.clause);
        s.proof(w, &g.proof);
    }
}

fn get_block_vo<A: Accumulator, S: SlotRead<A>>(
    r: &mut Reader<'_>,
    acc: &A,
    s: &mut S,
) -> Result<BlockVo<A>, WireError> {
    let root = get_node(r, acc, s, 0)?;
    // A v2 back-referenced group proof is 5 bytes on the wire, so the
    // count pre-check must use the smallest per-element size either slot
    // form can take — still enough to bound allocation by input length.
    let n = r.count("batch groups", 2)?;
    let mut groups = Vec::new();
    for _ in 0..n {
        let clause = get_clause(r)?;
        let proof = s.proof(r, acc)?;
        groups.push(GroupProof { clause, proof });
    }
    Ok(BlockVo { root, groups })
}

fn put_coverage<A: Accumulator, S: SlotWrite<A>>(
    w: &mut Writer,
    cov: &BlockCoverage<A>,
    s: &mut S,
) {
    match cov {
        BlockCoverage::Block { height, vo } => {
            w.u8(0);
            w.u64(*height);
            put_block_vo(w, vo, s);
        }
        BlockCoverage::Skip { height, distance, att, proof, clause, siblings } => {
            w.u8(1);
            w.u64(*height);
            w.u64(*distance);
            s.value(w, att);
            s.proof(w, proof);
            put_clause(w, clause);
            w.count(siblings.len());
            for (d, h) in siblings {
                w.u64(*d);
                w.bytes(h.as_bytes());
            }
        }
    }
}

fn get_coverage<A: Accumulator, S: SlotRead<A>>(
    r: &mut Reader<'_>,
    acc: &A,
    s: &mut S,
) -> Result<BlockCoverage<A>, WireError> {
    match r.u8()? {
        0 => {
            let height = r.u64()?;
            let vo = get_block_vo(r, acc, s)?;
            Ok(BlockCoverage::Block { height, vo })
        }
        1 => {
            let height = r.u64()?;
            let distance = r.u64()?;
            let att = s.value(r, acc)?;
            let proof = s.proof(r, acc)?;
            let clause = get_clause(r)?;
            let n = r.count("skip siblings", 8 + Digest::LEN)?;
            let mut siblings = Vec::new();
            for _ in 0..n {
                let d = r.u64()?;
                let h = r.digest()?;
                siblings.push((d, h));
            }
            Ok(BlockCoverage::Skip { height, distance, att, proof, clause, siblings })
        }
        tag => Err(WireError::BadTag { what: "BlockCoverage", tag }),
    }
}

fn put_results(w: &mut Writer, results: &[(u64, Vec<Object>)]) {
    w.count(results.len());
    for (height, objs) in results {
        w.u64(*height);
        w.count(objs.len());
        for o in objs {
            put_object(w, o);
        }
    }
}

fn get_results(r: &mut Reader<'_>) -> Result<Vec<(u64, Vec<Object>)>, WireError> {
    let n_blocks = r.count("result blocks", 12)?;
    let mut results = Vec::new();
    for _ in 0..n_blocks {
        let height = r.u64()?;
        let n_objs = r.count("result objects", 24)?;
        let mut objs = Vec::new();
        for _ in 0..n_objs {
            objs.push(get_object(r)?);
        }
        results.push((height, objs));
    }
    Ok(results)
}

// ---------------------------------------------------------------------------
// Top-level entry points
// ---------------------------------------------------------------------------

/// Serialize a time-window query response (SP side, infallible).
pub fn encode_response<A: Accumulator>(response: &QueryResponse<A>) -> Vec<u8> {
    let mut w = Writer::default();
    w.u8(WIRE_VERSION);
    put_results(&mut w, &response.results);
    w.count(response.coverage.len());
    let mut slots = RawSlots;
    for cov in &response.coverage {
        put_coverage(&mut w, cov, &mut slots);
    }
    w.buf
}

/// Decode a time-window query response from untrusted bytes. `Ok` means
/// the structure is well-formed and every point passed the curve ladder —
/// the *cryptographic* checks still run in [`crate::verify`].
pub fn decode_response<A: Accumulator>(
    acc: &A,
    bytes: &[u8],
) -> Result<QueryResponse<A>, WireError> {
    let mut r = Reader::new(bytes);
    match r.u8()? {
        WIRE_VERSION => {}
        v => return Err(WireError::UnsupportedVersion(v)),
    }
    let results = get_results(&mut r)?;
    let n_cov = r.count("coverage entries", 9)?;
    let mut coverage = Vec::new();
    let mut slots = RawSlots;
    for _ in 0..n_cov {
        coverage.push(get_coverage(&mut r, acc, &mut slots)?);
    }
    r.finish()?;
    Ok(QueryResponse { results, coverage })
}

/// Collect the v2 intern table over one or more responses' coverage: run
/// the body encoder once with a counting slot sink (output discarded) and
/// keep every slot byte-string that occurs at least twice, in
/// first-occurrence order.
fn intern_table<A: Accumulator>(covs: &[&[BlockCoverage<A>]]) -> Vec<Vec<u8>> {
    let mut count = CountSlots::default();
    let mut scratch = Writer::default();
    for coverage in covs {
        for cov in *coverage {
            put_coverage(&mut scratch, cov, &mut count);
        }
    }
    count.into_table()
}

fn put_table(w: &mut Writer, table: &[Vec<u8>]) {
    w.count(table.len());
    for entry in table {
        w.count(entry.len());
        w.bytes(entry);
    }
}

/// Serialize a response in the deduplicating v2 format: shared accumulator
/// values and repeated proof points are interned once into a per-response
/// table and back-referenced by a 5-byte tag everywhere else. Exactly as
/// canonical and total as v1 — [`decode_response_v2`] accepts precisely
/// the byte strings this function produces, one per response.
///
/// Repetition is the norm, not the exception: objects sharing an attribute
/// set produce identical leaf AttDigests, mismatch proofs against the same
/// clause repeat across blocks of a window, and §6.3 group proofs repeat
/// across the response. See `docs/LIGHT_CLIENT.md` for the byte layout.
pub fn encode_response_v2<A: Accumulator>(response: &QueryResponse<A>) -> Vec<u8> {
    let table = intern_table(&[response.coverage.as_slice()]);
    let mut w = Writer::default();
    w.u8(WIRE_VERSION_V2);
    put_table(&mut w, &table);
    put_results(&mut w, &response.results);
    w.count(response.coverage.len());
    let mut slots = InternSlots::new(&table);
    for cov in &response.coverage {
        put_coverage(&mut w, cov, &mut slots);
    }
    w.buf
}

/// Decode a v2 ([`encode_response_v2`]) response from untrusted bytes.
/// Total like v1, and *strictly* canonical: beyond structural validity,
/// the intern table must be exactly the one the encoder would build
/// (every entry used at least twice, first uses in table order, no inline
/// repetition), so decode∘encode remains the identity on accepted inputs.
pub fn decode_response_v2<A: Accumulator>(
    acc: &A,
    bytes: &[u8],
) -> Result<QueryResponse<A>, WireError> {
    let mut r = Reader::new(bytes);
    match r.u8()? {
        WIRE_VERSION_V2 => {}
        v => return Err(WireError::UnsupportedVersion(v)),
    }
    let mut slots = TableSlots::<A>::parse(&mut r)?;
    let results = get_results(&mut r)?;
    let n_cov = r.count("coverage entries", 9)?;
    let mut coverage = Vec::new();
    for _ in 0..n_cov {
        coverage.push(get_coverage(&mut r, acc, &mut slots)?);
    }
    slots.finish()?;
    r.finish()?;
    Ok(QueryResponse { results, coverage })
}

/// Serialize a multi-window *scan* — several window responses answered
/// together — as one v2 unit with a single intern table shared across all
/// of them. This is where deduplication earns its keep: overlapping
/// windows re-cover the same blocks, so the same accumulator values and
/// proofs recur across responses even when each response alone has few
/// internal repeats. On the 8-window benchmark fixture the shared table
/// drops total VO bytes by well over 20% relative to eight v1 encodings.
pub fn encode_scan_v2<A: Accumulator>(responses: &[QueryResponse<A>]) -> Vec<u8> {
    let covs: Vec<&[BlockCoverage<A>]> = responses.iter().map(|r| r.coverage.as_slice()).collect();
    let table = intern_table::<A>(&covs);
    let mut w = Writer::default();
    w.u8(WIRE_VERSION_V2);
    put_table(&mut w, &table);
    w.count(responses.len());
    let mut slots = InternSlots::new(&table);
    for resp in responses {
        put_results(&mut w, &resp.results);
        w.count(resp.coverage.len());
        for cov in &resp.coverage {
            put_coverage(&mut w, cov, &mut slots);
        }
    }
    w.buf
}

/// Decode an [`encode_scan_v2`] scan from untrusted bytes. Canonicality is
/// enforced scan-wide: the intern table must be exactly the one the shared
/// two-pass encoder would build over all the responses together.
pub fn decode_scan_v2<A: Accumulator>(
    acc: &A,
    bytes: &[u8],
) -> Result<Vec<QueryResponse<A>>, WireError> {
    let mut r = Reader::new(bytes);
    match r.u8()? {
        WIRE_VERSION_V2 => {}
        v => return Err(WireError::UnsupportedVersion(v)),
    }
    let mut slots = TableSlots::<A>::parse(&mut r)?;
    let n_resp = r.count("scan responses", 8)?;
    let mut responses = Vec::new();
    for _ in 0..n_resp {
        let results = get_results(&mut r)?;
        let n_cov = r.count("coverage entries", 9)?;
        let mut coverage = Vec::new();
        for _ in 0..n_cov {
            coverage.push(get_coverage(&mut r, acc, &mut slots)?);
        }
        responses.push(QueryResponse { results, coverage });
    }
    slots.finish()?;
    r.finish()?;
    Ok(responses)
}

/// Which codec version a [`decode_response_auto`] input carried.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireVersion {
    /// The original raw-slot encoding ([`encode_response`]).
    V1,
    /// The deduplicating intern-table encoding ([`encode_response_v2`]).
    V2,
}

/// Decode a response of either codec version, dispatching on the leading
/// version byte — the client's compatibility entry point: a v2-speaking
/// client keeps accepting responses from an SP that still encodes v1.
/// Returns the version alongside the response so callers that re-encode
/// (canonical-form checks, persistence) can stay version-faithful.
pub fn decode_response_auto<A: Accumulator>(
    acc: &A,
    bytes: &[u8],
) -> Result<(QueryResponse<A>, WireVersion), WireError> {
    match bytes.first().copied() {
        Some(WIRE_VERSION) => decode_response(acc, bytes).map(|r| (r, WireVersion::V1)),
        Some(WIRE_VERSION_V2) => decode_response_v2(acc, bytes).map(|r| (r, WireVersion::V2)),
        Some(v) => Err(WireError::UnsupportedVersion(v)),
        None => Err(WireError::Truncated { needed: 1, remaining: 0 }),
    }
}

// ---------------------------------------------------------------------------
// Frame streaming
// ---------------------------------------------------------------------------

/// Wrap one frame payload with its length prefix.
fn frame(seq: u32, tag: u8, body: &[u8]) -> Vec<u8> {
    let mut out = Writer::default();
    out.count(body.len().saturating_add(5));
    out.u32(seq);
    out.u8(tag);
    out.bytes(body);
    out.buf
}

/// Serialize a scan (one or more window responses) as a sequence of
/// self-delimiting frames (SP side): a header frame carrying the shared v2
/// intern table and each window's entry count, then one frame per coverage
/// entry with that block's result objects inlined. Each frame is
/// `u32 len ‖ u32 seq ‖ u8 tag ‖ body`; the concatenation
/// ([`encode_scan_stream`]) is what crosses the network, but the frames can
/// also be shipped individually as transport packets arrive.
///
/// The framing exists so a light client can verify block *i* while block
/// *i + 1* is still in flight, holding only one frame plus the table in
/// memory — see [`StreamDecoder`] and `core::client`.
pub fn encode_scan_frames<A: Accumulator>(responses: &[QueryResponse<A>]) -> Vec<Vec<u8>> {
    let covs: Vec<&[BlockCoverage<A>]> = responses.iter().map(|r| r.coverage.as_slice()).collect();
    let table = intern_table::<A>(&covs);
    let mut slots = InternSlots::new(&table);

    let total: usize = responses.iter().map(|r| r.coverage.len()).sum();
    let mut frames = Vec::with_capacity(total + 1);
    let mut header = Writer::default();
    header.u8(STREAM_VERSION);
    header.u8(WIRE_VERSION_V2);
    header.count(responses.len());
    for resp in responses {
        header.count(resp.coverage.len());
    }
    put_table(&mut header, &table);
    frames.push(frame(0, 0, &header.buf));

    let mut seq = 0u32;
    for resp in responses {
        let results: HashMap<u64, &Vec<Object>> =
            resp.results.iter().map(|(h, v)| (*h, v)).collect();
        for cov in &resp.coverage {
            let mut body = Writer::default();
            put_coverage(&mut body, cov, &mut slots);
            if let BlockCoverage::Block { height, .. } = cov {
                match results.get(height) {
                    Some(objs) => {
                        body.count(objs.len());
                        for o in objs.iter() {
                            put_object(&mut body, o);
                        }
                    }
                    None => body.count(0),
                }
            }
            seq = seq.saturating_add(1);
            frames.push(frame(seq, 1, &body.buf));
        }
    }
    frames
}

/// [`encode_scan_frames`] for a single window response.
pub fn encode_response_frames<A: Accumulator>(response: &QueryResponse<A>) -> Vec<Vec<u8>> {
    encode_scan_frames(std::slice::from_ref(response))
}

/// [`encode_scan_frames`] concatenated into one byte string — the whole
/// stream as it crosses the wire.
pub fn encode_scan_stream<A: Accumulator>(responses: &[QueryResponse<A>]) -> Vec<u8> {
    encode_scan_frames(responses).concat()
}

/// [`encode_scan_stream`] for a single window response.
pub fn encode_response_stream<A: Accumulator>(response: &QueryResponse<A>) -> Vec<u8> {
    encode_scan_stream(std::slice::from_ref(response))
}

/// A decoded item surfaced by [`StreamDecoder::feed`].
#[derive(Debug)]
pub enum StreamEvent<A: Accumulator> {
    /// The header frame: how many entry frames each window contributes and
    /// how large the intern table is.
    Header {
        /// Declared per-window entry-frame counts.
        windows: Vec<u32>,
        /// Intern-table entry count.
        table_entries: usize,
    },
    /// One coverage entry, with the block's result objects when the entry
    /// is a [`BlockCoverage::Block`].
    Entry {
        /// Which window (index into the header's `windows`) this entry
        /// belongs to.
        window: usize,
        /// The decoded coverage entry.
        coverage: BlockCoverage<A>,
        /// The block's result objects (empty for skip entries).
        results: Vec<Object>,
        /// Wire size of the frame that carried this entry (length prefix
        /// included) — what the client's in-flight buffer accounting
        /// charges for it.
        wire_bytes: usize,
    },
}

/// Incremental decoder for [`encode_response_stream`] bytes: feed chunks
/// of any size as they arrive, get back fully-decoded coverage entries.
///
/// Memory stays bounded by construction: only the bytes of the single
/// incomplete frame are buffered (capped by [`MAX_FRAME_BYTES`] from the
/// length prefix alone), plus the intern table retained for back-reference
/// resolution. Nothing is ever allocated from a claimed length before the
/// bytes backing it have arrived.
///
/// Every defense of the one-shot decoders applies per frame — checked
/// point decodes, depth caps, count pre-checks, canonical slot rules — and
/// the envelope adds its own: frames arrive in declared sequence order
/// ([`WireError::FrameSequence`]), a stream that ends early is
/// [`WireError::StreamTruncated`] at [`StreamDecoder::finish`], and bytes
/// after the declared last frame are [`WireError::TrailingBytes`].
pub struct StreamDecoder<A: Accumulator> {
    pending: Vec<u8>,
    slots: Option<TableSlots<A>>,
    windows: Vec<u32>,
    declared: u32,
    entries_done: u32,
    window_idx: usize,
    window_done: u32,
    next_seq: u32,
    peak_buffered: usize,
    fed: usize,
    error: Option<WireError>,
}

impl<A: Accumulator> Default for StreamDecoder<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Accumulator> StreamDecoder<A> {
    /// An empty decoder, waiting for the header frame.
    pub fn new() -> Self {
        Self {
            pending: Vec::new(),
            slots: None,
            windows: Vec::new(),
            declared: 0,
            entries_done: 0,
            window_idx: 0,
            window_done: 0,
            next_seq: 0,
            peak_buffered: 0,
            fed: 0,
            error: None,
        }
    }

    /// Bytes currently buffered (the incomplete frame, if any).
    pub fn buffered(&self) -> usize {
        self.pending.len()
    }

    /// High-water mark of the decoder's retained memory over the stream so
    /// far: the buffered partial frame plus the intern table, sampled at
    /// the same instant (the table is only counted once it is actually
    /// retained — while the header frame is still buffered, its bytes are
    /// part of [`StreamDecoder::buffered`], not of the table).
    pub fn peak_buffered(&self) -> usize {
        self.peak_buffered
    }

    /// Total bytes fed so far (the stream's wire size).
    pub fn bytes_fed(&self) -> usize {
        self.fed
    }

    /// Byte length of the retained intern-table entries (0 before the
    /// header frame arrives).
    pub fn table_bytes(&self) -> usize {
        self.slots.as_ref().map(TableSlots::table_bytes).unwrap_or(0)
    }

    /// Intern-table entry count (0 before the header frame arrives).
    pub fn table_entries(&self) -> usize {
        self.slots.as_ref().map(TableSlots::len).unwrap_or(0)
    }

    /// Entry frames fully decoded so far.
    pub fn entries_done(&self) -> u32 {
        self.entries_done
    }

    fn fail<T>(&mut self, e: WireError) -> Result<T, WireError> {
        self.error = Some(e.clone());
        Err(e)
    }

    /// Feed the next chunk of stream bytes; returns every item that chunk
    /// completed. A decoder that has reported an error keeps returning it.
    pub fn feed(&mut self, acc: &A, chunk: &[u8]) -> Result<Vec<StreamEvent<A>>, WireError> {
        if let Some(e) = self.error.clone() {
            return Err(e);
        }
        self.fed = self.fed.saturating_add(chunk.len());
        self.pending.extend_from_slice(chunk);
        self.peak_buffered =
            self.peak_buffered.max(self.pending.len().saturating_add(self.table_bytes()));
        let mut events = Vec::new();
        while let Some(len_bytes) = self.pending.get(..4) {
            let len = le_bytes(len_bytes) as usize;
            if len > MAX_FRAME_BYTES {
                return self.fail(WireError::FrameOversized { len: len as u64 });
            }
            if self.pending.len() < 4 + len {
                break;
            }
            let payload: Vec<u8> = self.pending.drain(..4 + len).skip(4).collect();
            if let Err(e) = self.frame(acc, &payload, &mut events) {
                return self.fail(e);
            }
        }
        Ok(events)
    }

    fn frame(
        &mut self,
        acc: &A,
        payload: &[u8],
        events: &mut Vec<StreamEvent<A>>,
    ) -> Result<(), WireError> {
        let mut r = Reader::new(payload);
        let seq = r.u32()?;
        let tag = r.u8()?;
        match self.slots.as_mut() {
            None => {
                if seq != 0 {
                    return Err(WireError::FrameSequence { expected: 0, got: seq });
                }
                if tag != 0 {
                    return Err(WireError::BadTag { what: "stream header frame", tag });
                }
                let sv = r.u8()?;
                if sv != STREAM_VERSION {
                    return Err(WireError::UnsupportedVersion(sv));
                }
                let cv = r.u8()?;
                if cv != WIRE_VERSION_V2 {
                    return Err(WireError::UnsupportedVersion(cv));
                }
                let n_windows = r.count("stream windows", 4)?;
                let mut windows = Vec::new();
                let mut declared = 0u32;
                for _ in 0..n_windows {
                    let n = r.u32()?;
                    declared = declared.saturating_add(n);
                    windows.push(n);
                }
                let slots = TableSlots::<A>::parse(&mut r)?;
                r.finish()?;
                events.push(StreamEvent::Header {
                    windows: windows.clone(),
                    table_entries: slots.len(),
                });
                self.windows = windows;
                self.declared = declared;
                self.slots = Some(slots);
                self.next_seq = 1;
                Ok(())
            }
            Some(slots) => {
                if self.entries_done >= self.declared {
                    return Err(WireError::TrailingBytes {
                        count: payload.len().saturating_add(4),
                    });
                }
                if seq != self.next_seq {
                    return Err(WireError::FrameSequence { expected: self.next_seq, got: seq });
                }
                if tag != 1 {
                    return Err(WireError::BadTag { what: "stream entry frame", tag });
                }
                let coverage = get_coverage(&mut r, acc, slots)?;
                let results = match &coverage {
                    BlockCoverage::Block { .. } => {
                        let n = r.count("result objects", 24)?;
                        let mut objs = Vec::new();
                        for _ in 0..n {
                            objs.push(get_object(&mut r)?);
                        }
                        objs
                    }
                    BlockCoverage::Skip { .. } => Vec::new(),
                };
                r.finish()?;
                while self.windows.get(self.window_idx).is_some_and(|&n| self.window_done >= n) {
                    self.window_idx += 1;
                    self.window_done = 0;
                }
                let window = self.window_idx;
                self.window_done += 1;
                self.entries_done += 1;
                self.next_seq += 1;
                events.push(StreamEvent::Entry {
                    window,
                    coverage,
                    results,
                    wire_bytes: payload.len().saturating_add(4),
                });
                Ok(())
            }
        }
    }

    /// Declare the stream over. Rejects early ends (missing header, fewer
    /// entry frames than declared, a buffered partial frame) and runs the
    /// end-of-response intern-table canonicality checks.
    pub fn finish(self) -> Result<(), WireError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        match &self.slots {
            Some(slots) if self.entries_done == self.declared && self.pending.is_empty() => {
                slots.finish()
            }
            _ => Err(WireError::StreamTruncated {
                entries_seen: self.entries_done,
                entries_declared: self.declared,
                pending: self.pending.len(),
            }),
        }
    }
}

/// Serialize a subscription update (SP side, infallible).
pub fn encode_update<A: Accumulator>(update: &SubscriptionUpdate<A>) -> Vec<u8> {
    let mut w = Writer::default();
    w.u8(WIRE_VERSION);
    w.u32(update.query_id);
    w.u64(update.from_height);
    w.u64(update.to_height);
    put_results(&mut w, &update.results);
    w.count(update.coverage.len());
    let mut slots = RawSlots;
    for cov in &update.coverage {
        put_coverage(&mut w, cov, &mut slots);
    }
    w.buf
}

/// Decode a subscription update from untrusted bytes.
pub fn decode_update<A: Accumulator>(
    acc: &A,
    bytes: &[u8],
) -> Result<SubscriptionUpdate<A>, WireError> {
    let mut r = Reader::new(bytes);
    match r.u8()? {
        WIRE_VERSION => {}
        v => return Err(WireError::UnsupportedVersion(v)),
    }
    let query_id = r.u32()?;
    let from_height = r.u64()?;
    let to_height = r.u64()?;
    let results = get_results(&mut r)?;
    let n_cov = r.count("coverage entries", 9)?;
    let mut coverage = Vec::new();
    let mut slots = RawSlots;
    for _ in 0..n_cov {
        coverage.push(get_coverage(&mut r, acc, &mut slots)?);
    }
    r.finish()?;
    Ok(SubscriptionUpdate { query_id, from_height, to_height, results, coverage })
}

/// Serialize a per-block attribute Bloom filter (miner/SP side, infallible).
///
/// The filter is SP-side acceleration state, not part of any VO — but full
/// nodes gossip it alongside the block's ADS, so it gets the same versioned,
/// total codec treatment as everything else on the wire.
pub fn encode_bloom(bloom: &crate::bloom::AttributeBloom) -> Vec<u8> {
    let mut w = Writer::default();
    w.u8(WIRE_VERSION);
    w.u64(bloom.seed());
    w.u8(bloom.probes());
    w.u32(bloom.key_count());
    w.count(bloom.words().len());
    for word in bloom.words() {
        w.u64(*word);
    }
    w.buf
}

/// Decode a per-block attribute Bloom filter from untrusted bytes. Total:
/// every input either yields a structurally valid filter or a [`WireError`].
/// A decoded-but-lying filter is still harmless — see [`crate::bloom`].
pub fn decode_bloom(bytes: &[u8]) -> Result<crate::bloom::AttributeBloom, WireError> {
    let mut r = Reader::new(bytes);
    match r.u8()? {
        WIRE_VERSION => {}
        v => return Err(WireError::UnsupportedVersion(v)),
    }
    let seed = r.u64()?;
    let k = r.u8()?;
    let keys = r.u32()?;
    let n_words = r.count("bloom words", 8)?;
    let mut words = Vec::with_capacity(n_words);
    for _ in 0..n_words {
        words.push(r.u64()?);
    }
    r.finish()?;
    crate::bloom::AttributeBloom::from_parts(seed, k, keys, words)
        .ok_or(WireError::BadTag { what: "bloom filter shape", tag: k })
}
