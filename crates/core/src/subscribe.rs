//! Verifiable subscription queries (paper §7).
//!
//! The [`SubscriptionEngine`] is the SP-side component that, for every newly
//! confirmed block, produces per-query `⟨R, VO⟩` updates:
//!
//! * **Real-time mode** publishes an update to every registered query on
//!   every block (match or mismatch).
//! * **Lazy mode** (§7.2, Algorithm 5; requires the aggregating
//!   Construction 2 and the inter-block index) buffers whole-block
//!   mismatches on a stack and compresses runs with skip-list entries and
//!   `ProofSum`, publishing only when a block's root multiset matches.
//! * The **IP-Tree** (§7.1) can be enabled in either mode: queries are then
//!   processed jointly per block, and mismatch proofs are shared — by
//!   Boolean-clause content (the BCIF effect) and by enclosing grid cell
//!   for range mismatches.
//!
//! # The inverted match path
//!
//! At 10⁵–10⁶ standing queries, walking every query per block is the wall.
//! The default [`WalkStrategy::Indexed`] inverts it: the block's attributes
//! resolve the *candidate* queries through the [`crate::subindex`] posting
//! lists (pre-filtered by the per-block [`crate::bloom`] filter, confirmed
//! against the exact root multiset), every non-candidate gets the same
//! root-level refutation the reference walk would emit (first disjoint
//! clause, or shared grid cell), the distinct refutations are proven once
//! through [`Accumulator::prove_disjoint_many`] + the shared
//! [`ProofCache`], and only the candidates walk the tree. The original walk
//! survives as [`WalkStrategy::Naive`] — the in-tree reference twin that the
//! differential suite (`tests/subscribe_diff.rs`) pins the fast path against
//! byte-for-byte. [`SubscriptionEngine::match_block`] /
//! [`SubscriptionEngine::publish`] expose the two halves separately so the
//! match stage can be measured and tested without materializing updates.

use std::collections::{BTreeMap, HashMap};

use vchain_acc::{AccError, Accumulator, MultiSet};
use vchain_chain::{Block, LightClient, Object};
use vchain_hash::Digest;

use crate::bloom::BLOOM_SEED;
use crate::cache::ProofCache;
use crate::element::ElementId;
use crate::intra::{IntraNodeKind, IntraTree};
use crate::iptree::{Cell, IpTree, QueryId};
use crate::miner::{IndexScheme, IndexedBlock, MinerConfig};
use crate::query::{CompiledQuery, Query};
use crate::subindex::SubscriptionIndex;
use crate::verify::{verify_with_expected, VerifyError};
use crate::vo::{BlockCoverage, BlockVo, ClauseRef, MismatchProof, QueryResponse, VoNode};

/// Publication policy (paper §7.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubscriptionMode {
    /// Publish an update to every registered query on every block.
    Realtime,
    /// §7.2, Algorithm 5: buffer whole-block mismatches, compress runs with
    /// skip entries and `ProofSum`, publish on the next match.
    Lazy,
}

/// One published update for one query: results plus the VO covering every
/// block since the previous update.
#[derive(Clone, Debug)]
pub struct SubscriptionUpdate<A: Accumulator> {
    /// The subscription this update answers.
    pub query_id: QueryId,
    /// First height covered by this update (inclusive).
    pub from_height: u64,
    /// Last height covered by this update (inclusive).
    pub to_height: u64,
    /// Matching objects, grouped by height.
    pub results: Vec<(u64, Vec<Object>)>,
    /// The VO covering every block in `[from_height, to_height]`.
    pub coverage: Vec<BlockCoverage<A>>,
}

impl<A: Accumulator> SubscriptionUpdate<A> {
    /// View the update as a standard query response (for verification).
    pub fn response(&self) -> QueryResponse<A> {
        QueryResponse { results: self.results.clone(), coverage: self.coverage.clone() }
    }
}

/// Verify a subscription update against the light client's headers: the
/// same soundness/completeness machinery as time-window queries, with the
/// expected coverage being the update's height interval.
pub fn verify_subscription_update<A: Accumulator>(
    q: &CompiledQuery,
    update: &SubscriptionUpdate<A>,
    light: &LightClient,
    cfg: &MinerConfig,
    acc: &A,
) -> Result<Vec<Object>, VerifyError> {
    // The interval is an untrusted claim: anchor it to the user's own
    // headers *before* materializing it, or a wire value like
    // `[0, u64::MAX]` turns the collect below into an allocation bomb.
    if update.from_height > update.to_height
        || light.header(update.from_height).is_none()
        || light.header(update.to_height).is_none()
    {
        return Err(VerifyError::InvalidUpdateInterval {
            from: update.from_height,
            to: update.to_height,
        });
    }
    let expected = (update.from_height..=update.to_height).collect();
    verify_with_expected(q, &update.response(), light, cfg, acc, expected)
}

/// Verify a subscription update straight from untrusted wire bytes:
/// structural decode ([`crate::wire`]) then full verification.
pub fn verify_encoded_subscription_update<A: Accumulator>(
    q: &CompiledQuery,
    bytes: &[u8],
    light: &LightClient,
    cfg: &MinerConfig,
    acc: &A,
) -> Result<Vec<Object>, VerifyError> {
    let update = crate::wire::decode_update(acc, bytes).map_err(VerifyError::Malformed)?;
    verify_subscription_update(q, &update, light, cfg, acc)
}

/// Which matcher [`SubscriptionEngine::match_block`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalkStrategy {
    /// Attribute-indexed candidate resolution (subscription index + Bloom
    /// pre-filter + batched shared refutations). The default.
    Indexed,
    /// The original per-query walk, retained as the reference twin the
    /// differential suite compares against (same pattern as the eager tower
    /// twin in `vchain-pairing`). Output is byte-identical to `Indexed`.
    Naive,
}

/// How the intra-tree root is reproduced when materializing shared
/// root-level mismatches without re-touching the tree.
enum RootShape<A: Accumulator> {
    /// An internal root: its AttDigest and child-pair hash.
    Internal { att: A::Value, child_hash: Digest },
    /// A single-object block: the root is a leaf.
    Leaf { att: A::Value, obj_hash: Digest },
    /// No shared mismatches were produced (naive strategy, or nil scheme).
    Opaque,
}

/// The outcome of matching one block against one query. The walked payload
/// is boxed so the common whole-block-refutation case stays a few words:
/// at 10⁵ standing queries the outcome vector is rebuilt every block, and
/// its element size is pure memory traffic.
enum MatchOutcome<A: Accumulator> {
    /// The query walked the intra-block tree (candidate or naive path).
    Walked(Box<(Vec<Object>, BlockVo<A>)>),
    /// Whole-block mismatch sharing proof `proof` of the block match's
    /// proof table.
    Shared { proof: usize, clause: ClauseRef },
}

/// The result of [`SubscriptionEngine::match_block`]: every registered
/// query's outcome for one block, with whole-block refutations held as
/// indices into a shared proof table instead of per-query copies.
pub struct BlockMatch<A: Accumulator> {
    height: u64,
    root: RootShape<A>,
    proofs: Vec<A::Proof>,
    /// Ascending by query id — the publish order.
    outcomes: Vec<(QueryId, MatchOutcome<A>)>,
    /// How many queries had to walk the intra-block tree. The scale suite
    /// asserts this stays ≪ Q on selective workloads.
    pub candidates: usize,
}

impl<A: Accumulator> BlockMatch<A> {
    /// The matched block's height.
    pub fn height(&self) -> u64 {
        self.height
    }

    /// Number of queries matched (every registered query).
    pub fn query_count(&self) -> usize {
        self.outcomes.len()
    }

    /// Number of distinct whole-block refutation proofs shared this block.
    pub fn shared_proofs(&self) -> usize {
        self.proofs.len()
    }
}

/// Per-query lazy-mode state: buffered whole-block mismatches, all sharing
/// one clause (Algorithm 5's stack).
struct LazyState<A: Accumulator> {
    clause_idx: Option<usize>,
    pending: Vec<BlockCoverage<A>>,
    /// First height not yet reported to the subscriber.
    from_height: u64,
}

/// The SP-side subscription processor.
pub struct SubscriptionEngine<A: Accumulator> {
    /// The public system parameters this chain was mined under.
    pub cfg: MinerConfig,
    /// The accumulator scheme handle (public key).
    pub acc: A,
    /// Publication policy.
    pub mode: SubscriptionMode,
    /// Whether the §7.1 inverted prefix tree is consulted.
    pub use_iptree: bool,
    queries: BTreeMap<QueryId, CompiledQuery>,
    /// The attribute-keyed standing-query index driving the `Indexed` path.
    index: SubscriptionIndex,
    strategy: WalkStrategy,
    iptree: Option<IpTree>,
    /// Set on (de)registration; the IP-Tree and the cell interval index are
    /// rebuilt lazily at the next match, so registering Q queries costs
    /// O(Q·log Q) total instead of O(Q²) tree rebuilds.
    iptree_dirty: bool,
    enclosing: BTreeMap<QueryId, Cell>,
    lazy: BTreeMap<QueryId, LazyState<A>>,
    /// Persists across [`SubscriptionEngine::process_block`] calls: a
    /// refutation derived at block `h` is warm for block `h+1` whenever the
    /// node digest and clause recur (stable subscriptions over repetitive
    /// traffic hit constantly).
    cache: ProofCache<A>,
    next_id: QueryId,
    next_height: u64,
}

impl<A: Accumulator> SubscriptionEngine<A> {
    /// An engine with no registered queries, expecting block 0 next.
    pub fn new(cfg: MinerConfig, acc: A, mode: SubscriptionMode, use_iptree: bool) -> Self {
        if mode == SubscriptionMode::Lazy {
            assert!(
                acc.supports_aggregation() && cfg.scheme == IndexScheme::Both,
                "lazy authentication needs Construction 2 and the inter-block index (§7.2)"
            );
        }
        Self {
            cfg,
            acc,
            mode,
            use_iptree,
            queries: BTreeMap::new(),
            index: SubscriptionIndex::new(BLOOM_SEED),
            strategy: WalkStrategy::Indexed,
            iptree: None,
            iptree_dirty: false,
            enclosing: BTreeMap::new(),
            lazy: BTreeMap::new(),
            cache: ProofCache::default(),
            next_id: 0,
            next_height: 0,
        }
    }

    /// Select the match strategy (builder style). `Naive` is the reference
    /// twin; outputs are byte-identical either way.
    pub fn with_strategy(mut self, strategy: WalkStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The active match strategy.
    pub fn strategy(&self) -> WalkStrategy {
        self.strategy
    }

    /// The attribute-keyed subscription index (posting-list stats, probe
    /// counts).
    pub fn subscription_index(&self) -> &SubscriptionIndex {
        &self.index
    }

    /// The cross-block proof cache (inspect its stats to observe reuse).
    pub fn proof_cache(&self) -> &ProofCache<A> {
        &self.cache
    }

    /// Number of registered queries.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// The compiled form of a registered query.
    pub fn compiled(&self, id: QueryId) -> Option<&CompiledQuery> {
        self.queries.get(&id)
    }

    /// Register a subscription (paper §3). Returns its id.
    pub fn register(&mut self, q: &Query) -> QueryId {
        assert!(q.time_window.is_none(), "subscription queries have no time window");
        let id = self.next_id;
        self.next_id += 1;
        let compiled = q.compile(self.cfg.domain_bits);
        self.index.insert(id, &compiled);
        self.queries.insert(id, compiled);
        self.lazy.insert(
            id,
            LazyState { clause_idx: None, pending: Vec::new(), from_height: self.next_height },
        );
        self.iptree_dirty = true;
        id
    }

    /// Deregister; in lazy mode any buffered coverage is flushed as a final
    /// (possibly result-less) update.
    pub fn deregister(&mut self, id: QueryId) -> Option<SubscriptionUpdate<A>> {
        let q = self.queries.remove(&id)?;
        self.index.remove(id, &q);
        let state = self.lazy.remove(&id);
        self.iptree_dirty = true;
        match state {
            Some(s) if !s.pending.is_empty() => Some(SubscriptionUpdate {
                query_id: id,
                from_height: s.from_height,
                to_height: self.next_height.saturating_sub(1),
                results: Vec::new(),
                coverage: s.pending,
            }),
            _ => None,
        }
    }

    /// Rebuild the IP-Tree and cell interval index if registrations changed
    /// since the last match.
    fn ensure_iptree(&mut self) {
        if !self.iptree_dirty {
            return;
        }
        self.iptree_dirty = false;
        self.rebuild_iptree();
        self.index.rebuild_cells(&self.enclosing);
    }

    fn rebuild_iptree(&mut self) {
        if !self.use_iptree || self.queries.is_empty() {
            self.iptree = None;
            self.enclosing.clear();
            return;
        }
        let mut dims: Vec<u8> =
            self.queries.values().flat_map(|q| q.ranges.iter().map(|r| r.dim)).collect();
        dims.sort_unstable();
        dims.dedup();
        if dims.is_empty() {
            self.iptree = None;
            self.enclosing.clear();
            return;
        }
        // Depth cap (paper §7.1: "to prevent the tree from becoming too
        // deep, we switch back to the case without the IP-Tree when the
        // tree depth reaches some pre-defined threshold"): each split
        // produces 2^D children, so bound the depth by a node budget of
        // ~2^16 nodes rather than letting high-dimensional grids explode.
        let max_depth = (16 / dims.len().max(1)) as u8;
        let max_depth = max_depth.clamp(1, self.cfg.domain_bits);
        let tree = IpTree::build(&self.queries, dims, self.cfg.domain_bits, max_depth);
        self.enclosing = self.queries.iter().map(|(id, q)| (*id, tree.enclosing_cell(q))).collect();
        self.iptree = Some(tree);
    }

    /// Process a newly confirmed block; returns the updates to publish.
    /// Equivalent to [`SubscriptionEngine::match_block`] followed by
    /// [`SubscriptionEngine::publish`].
    pub fn process_block(
        &mut self,
        block: &Block,
        indexed: &IndexedBlock<A>,
    ) -> Vec<SubscriptionUpdate<A>> {
        let m = self.match_block(block, indexed);
        self.publish(m, indexed)
    }

    /// The match stage: classify every registered query against this block
    /// and resolve the needed refutation proofs, without materializing
    /// per-query updates or advancing the engine's height. Idempotent for a
    /// given block, so steady-state match cost can be measured in isolation.
    pub fn match_block(&mut self, block: &Block, indexed: &IndexedBlock<A>) -> BlockMatch<A> {
        assert_eq!(block.header.height, self.next_height, "blocks must be processed in order");
        self.ensure_iptree();
        match self.strategy {
            WalkStrategy::Naive => self.match_block_naive(block, indexed),
            WalkStrategy::Indexed => self.match_block_indexed(block, indexed),
        }
    }

    /// The publish stage: materialize per-query updates from a block match
    /// (realtime), or feed it through the lazy stack (Algorithm 5).
    pub fn publish(
        &mut self,
        m: BlockMatch<A>,
        indexed: &IndexedBlock<A>,
    ) -> Vec<SubscriptionUpdate<A>> {
        let height = m.height;
        assert_eq!(height, self.next_height, "blocks must be processed in order");
        self.next_height = height + 1;
        let BlockMatch { root, proofs, outcomes, .. } = m;

        let mut updates = Vec::new();
        for (qid, outcome) in outcomes {
            let (results, vo) = match outcome {
                MatchOutcome::Walked(walked) => *walked,
                MatchOutcome::Shared { proof, clause } => {
                    let proof = proofs[proof].clone();
                    let node = match &root {
                        RootShape::Internal { att, child_hash } => VoNode::InternalMismatch {
                            child_hash: *child_hash,
                            att: att.clone(),
                            proof: MismatchProof::Inline { proof, clause },
                        },
                        RootShape::Leaf { att, obj_hash } => VoNode::LeafMismatch {
                            obj_hash: *obj_hash,
                            att: att.clone(),
                            proof: MismatchProof::Inline { proof, clause },
                        },
                        RootShape::Opaque => {
                            unreachable!("shared outcomes always carry a root shape")
                        }
                    };
                    (Vec::new(), BlockVo { root: node, groups: Vec::new() })
                }
            };
            match self.mode {
                SubscriptionMode::Realtime => {
                    let res = if results.is_empty() { Vec::new() } else { vec![(height, results)] };
                    updates.push(SubscriptionUpdate {
                        query_id: qid,
                        from_height: height,
                        to_height: height,
                        results: res,
                        coverage: vec![BlockCoverage::Block { height, vo }],
                    });
                }
                SubscriptionMode::Lazy => {
                    if let Some(u) = self.lazy_step(qid, height, results, vo, indexed) {
                        updates.push(u);
                    }
                }
            }
        }
        updates
    }

    /// The reference twin: every query walks the intra-block index (jointly
    /// when the IP-Tree is enabled, per query otherwise), exactly as the
    /// engine always worked.
    fn match_block_naive(&mut self, block: &Block, indexed: &IndexedBlock<A>) -> BlockMatch<A> {
        let per_query: BTreeMap<QueryId, (Vec<Object>, BlockVo<A>)> = if self.use_iptree {
            self.process_block_shared(block, indexed)
        } else {
            self.queries
                .iter()
                .map(|(id, q)| {
                    let out = indexed.tree.query_cached(
                        &block.objects,
                        q,
                        &self.acc,
                        false,
                        Some(&self.cache),
                    );
                    (*id, out)
                })
                .collect()
        };
        let candidates = per_query.len();
        BlockMatch {
            height: block.header.height,
            root: RootShape::Opaque,
            proofs: Vec::new(),
            outcomes: per_query
                .into_iter()
                .map(|(id, walked)| (id, MatchOutcome::Walked(Box::new(walked))))
                .collect(),
            candidates,
        }
    }

    /// The inverted path. Per block:
    ///
    /// 1. probe the subscribed literals through the block's Bloom filter,
    ///    confirming positives against the exact root multiset;
    /// 2. classify every query off the posting lists (candidate, or first
    ///    disjoint clause — identical to the reference walk's root step);
    /// 3. replicate the IP-Tree walk's root-level cell priority for queries
    ///    whose enclosing cell has absent slabs;
    /// 4. resolve the distinct refutations through the cross-block cache +
    ///    one [`Accumulator::prove_disjoint_many`]; a clause that fails to
    ///    prove (possible only when the filter lied — see `corrupt_bloom`
    ///    fault injection) demotes its queries to the walk, so corruption
    ///    costs work, never correctness;
    /// 5. walk only the candidates.
    ///
    /// Every emitted VO is byte-identical to the reference twin's: the same
    /// first-disjoint clause (or cell) refutes at the same root node, and
    /// proofs are deterministic and share the same cache keys.
    fn match_block_indexed(&mut self, block: &Block, indexed: &IndexedBlock<A>) -> BlockMatch<A> {
        let tree = &indexed.tree;
        let Some(root_att) = tree.root_att().cloned() else {
            // nil scheme: no root AttDigest to refute against — the
            // reference walk cannot prune at the root either, so share
            // nothing and walk everything.
            return self.match_block_naive(block, indexed);
        };
        let root_ms = tree.root_multiset();

        // 1.–2. Bloom-gated probe, then posting-list classification.
        let present = self.index.present_literals(Some(&indexed.bloom), root_ms);
        let cls = self.index.classify(&present);

        // Refutations deduplicated by clause content; proofs resolved after
        // collection (cache, then one batched prove). Content ids are dense
        // registry indices, so the dedup table is a flat array, not a map.
        let mut pending: Vec<(MultiSet<ElementId>, Option<A::Proof>)> = Vec::new();
        let mut cid_pending: Vec<u32> = vec![u32::MAX; self.index.distinct_contents()];
        let mut by_cell_key: HashMap<Vec<u32>, usize> = HashMap::new();

        // 3. Root-level cell priority, exactly as the reference shared walk
        //    assigns it (the cell interval index replaces the per-node scan).
        let mut cell_assigned: BTreeMap<QueryId, (usize, ClauseRef)> = BTreeMap::new();
        if self.use_iptree {
            for (cell, qids) in self.index.cells() {
                let absent: Vec<(u8, u64)> = cell
                    .prefixes
                    .iter()
                    .zip(cell.elements())
                    .filter(|(_, e)| !root_ms.contains(e))
                    .map(|((dim, bits), _)| (*dim, *bits))
                    .collect();
                if absent.is_empty() {
                    continue;
                }
                let clause_ms: MultiSet<ElementId> = absent
                    .iter()
                    .map(|(dim, bits)| {
                        ElementId::intern(&crate::element::Element::Prefix {
                            dim: *dim,
                            len: cell.depth,
                            bits: *bits,
                        })
                    })
                    .collect();
                let key: Vec<u32> = clause_ms.elements().map(|e| e.raw()).collect();
                let idx = *by_cell_key.entry(key).or_insert_with(|| {
                    pending.push((clause_ms, None));
                    pending.len() - 1
                });
                let clause = ClauseRef::Cell { len: cell.depth, prefixes: absent };
                for &qid in qids {
                    cell_assigned.insert(qid, (idx, clause.clone()));
                }
            }
        }

        // Distinct classified refutation contents (cell priority wins, as in
        // the reference walk: a cell-assigned query's clause is not proved).
        for &(qid, _, cid) in &cls.refuted {
            if !cell_assigned.is_empty() && cell_assigned.contains_key(&qid) {
                continue;
            }
            if cid_pending[cid as usize] == u32::MAX {
                cid_pending[cid as usize] = pending.len() as u32;
                pending.push((self.index.content(cid).clone(), None));
            }
        }

        // 4. Resolve: cross-block cache first, one shared-witness batch for
        //    the misses. Failures demote to the walk (self-healing).
        if !pending.is_empty() {
            let mut misses: Vec<usize> = Vec::new();
            for (i, (clause_ms, proof)) in pending.iter_mut().enumerate() {
                match self.cache.get(&ProofCache::<A>::key(&root_att, clause_ms)) {
                    Some(hit) => *proof = Some(hit),
                    None => misses.push(i),
                }
            }
            if !misses.is_empty() {
                let clauses: Vec<MultiSet<ElementId>> =
                    misses.iter().map(|&i| pending[i].0.clone()).collect();
                let results: Vec<Result<A::Proof, AccError>> =
                    match self.acc.prove_disjoint_many(root_ms, &clauses) {
                        Ok(proofs) => proofs.into_iter().map(Ok).collect(),
                        // Some clause is not actually disjoint (a lying
                        // Bloom filter skipped a present literal): attribute
                        // per clause, keep the good proofs.
                        Err(_) => self.acc.prove_disjoint_each(root_ms, &clauses),
                    };
                for (&i, res) in misses.iter().zip(results) {
                    if let Ok(proof) = res {
                        self.cache
                            .insert(ProofCache::<A>::key(&root_att, &pending[i].0), proof.clone());
                        pending[i].1 = Some(proof);
                    }
                }
            }
        }

        // Compact the proof table; queries whose refutation failed to prove
        // join the candidates and take the exact walk instead.
        let mut proofs: Vec<A::Proof> = Vec::with_capacity(pending.len());
        let mut proof_slot: Vec<Option<usize>> = Vec::with_capacity(pending.len());
        for (_, proof) in pending {
            match proof {
                Some(p) => {
                    proof_slot.push(Some(proofs.len()));
                    proofs.push(p);
                }
                None => proof_slot.push(None),
            }
        }

        // Classification may pass a query as candidate (e.g. one with more
        // clauses than the exact-mask width) that the cell step already
        // refuted; cell priority wins, exactly as in the reference walk.
        // Queries whose refutation failed to prove join them (possible only
        // under a lying Bloom filter, so the scan is gated on any failure).
        let mut walk: Vec<QueryId> = cls
            .candidates
            .into_iter()
            .filter(|qid| cell_assigned.is_empty() || !cell_assigned.contains_key(qid))
            .collect();
        if proof_slot.contains(&None) {
            for (&qid, (idx, _)) in &cell_assigned {
                if proof_slot[*idx].is_none() {
                    walk.push(qid);
                }
            }
            for &(qid, _, cid) in &cls.refuted {
                if !cell_assigned.is_empty() && cell_assigned.contains_key(&qid) {
                    continue;
                }
                if proof_slot[cid_pending[cid as usize] as usize].is_none() {
                    walk.push(qid);
                }
            }
        }
        walk.sort_unstable();
        let candidates = walk.len();

        // 5. Only the candidates touch the tree.
        let mut walked: Vec<(QueryId, MatchOutcome<A>)> = Vec::with_capacity(walk.len());
        if !walk.is_empty() {
            if self.use_iptree {
                let mut out: BTreeMap<QueryId, (Vec<Object>, Option<VoNode<A>>)> =
                    walk.iter().map(|&id| (id, (Vec::new(), None))).collect();
                let roots = self.shared_walk(tree, tree.root, &block.objects, &walk, &mut out);
                for (qid, node) in roots {
                    let (results, _) = out.remove(&qid).expect("present");
                    let vo = BlockVo { root: node, groups: Vec::new() };
                    walked.push((qid, MatchOutcome::Walked(Box::new((results, vo)))));
                }
                walked.sort_unstable_by_key(|(qid, _)| *qid);
            } else {
                for &qid in &walk {
                    let q = &self.queries[&qid];
                    let out =
                        tree.query_cached(&block.objects, q, &self.acc, false, Some(&self.cache));
                    walked.push((qid, MatchOutcome::Walked(Box::new(out))));
                }
            }
        }

        // Emit the publish-ordered outcome vector in one linear merge of the
        // three ascending sources (cell assignments, classified refutations,
        // walked candidates) — no O(Q log Q) sort of the outcome values, no
        // intermediate per-query vectors.
        let mut outcomes: Vec<(QueryId, MatchOutcome<A>)> =
            Vec::with_capacity(self.index.len().max(walked.len()));
        let mut walked_iter = walked.into_iter().peekable();
        let mut cell_iter = cell_assigned.iter().peekable();
        let mut ref_iter = cls.refuted.iter().peekable();
        loop {
            // Next shared refutation, cell priority on ties.
            let (qid, pidx, clause) = match (cell_iter.peek(), ref_iter.peek()) {
                (Some(&(&cq, _)), Some(&&(rq, ci, cid))) if rq < cq => {
                    ref_iter.next();
                    (rq, cid_pending[cid as usize] as usize, ClauseRef::Index(ci))
                }
                (Some(&(&cq, _)), peeked) => {
                    if peeked.is_some_and(|&&(rq, _, _)| rq == cq) {
                        ref_iter.next();
                    }
                    let (_, (idx, clause)) = cell_iter.next().expect("peeked");
                    (cq, *idx, clause.clone())
                }
                (None, Some(&&(rq, ci, cid))) => {
                    ref_iter.next();
                    (rq, cid_pending[cid as usize] as usize, ClauseRef::Index(ci))
                }
                (None, None) => break,
            };
            while walked_iter.peek().is_some_and(|(wq, _)| *wq < qid) {
                outcomes.push(walked_iter.next().expect("peeked"));
            }
            // A failed slot means the query was demoted to the walk; its
            // outcome arrives through `walked_iter` instead.
            if let Some(slot) = proof_slot[pidx] {
                outcomes.push((qid, MatchOutcome::Shared { proof: slot, clause }));
            }
        }
        outcomes.extend(walked_iter);

        let root_node = &tree.nodes[tree.root];
        let root = match &root_node.kind {
            IntraNodeKind::Leaf { obj_idx } => {
                RootShape::Leaf { att: root_att, obj_hash: block.objects[*obj_idx].digest() }
            }
            IntraNodeKind::Internal { left, right } => RootShape::Internal {
                att: root_att,
                child_hash: vchain_hash::hash_pair(
                    &tree.nodes[*left].hash,
                    &tree.nodes[*right].hash,
                ),
            },
        };

        BlockMatch { height: block.header.height, root, proofs, outcomes, candidates }
    }

    /// Algorithm 5: buffer whole-block mismatches, compress with skips,
    /// flush when the root matches.
    fn lazy_step(
        &mut self,
        qid: QueryId,
        height: u64,
        results: Vec<Object>,
        vo: BlockVo<A>,
        indexed: &IndexedBlock<A>,
    ) -> Option<SubscriptionUpdate<A>> {
        let q = self.queries.get(&qid).expect("registered").clone();
        let state = self.lazy.get_mut(&qid).expect("registered");
        let root_clause = match &vo.root {
            // whole-block mismatch: a single root-level mismatch node
            VoNode::InternalMismatch { proof: MismatchProof::Inline { clause, .. }, .. }
            | VoNode::LeafMismatch { proof: MismatchProof::Inline { clause, .. }, .. } => {
                match clause {
                    ClauseRef::Index(i) => Some(*i as usize),
                    ClauseRef::Cell { .. } => None, // treat as unshareable run
                }
            }
            _ => None,
        };

        match root_clause {
            Some(ci) => {
                // If the stack runs on a different clause, flush it first
                // (paper: "Empty s") as a result-less update.
                let mut flushed = None;
                if state.clause_idx.is_some() && state.clause_idx != Some(ci) {
                    flushed = Self::drain_update(qid, state, height.saturating_sub(1), Vec::new());
                    state.from_height = height;
                }
                state.clause_idx = Some(ci);
                state.pending.push(BlockCoverage::Block { height, vo });
                self.compress(qid, height, indexed);
                flushed
            }
            None => {
                // Root matched (or unshareable): flush everything buffered
                // plus this block.
                let state = self.lazy.get_mut(&qid).expect("registered");
                state.pending.push(BlockCoverage::Block { height, vo });
                let res = if results.is_empty() { Vec::new() } else { vec![(height, results)] };
                let update = Self::drain_update(qid, state, height, res);
                state.from_height = height + 1;
                state.clause_idx = None;
                let _ = q;
                update
            }
        }
    }

    fn drain_update(
        qid: QueryId,
        state: &mut LazyState<A>,
        to_height: u64,
        results: Vec<(u64, Vec<Object>)>,
    ) -> Option<SubscriptionUpdate<A>> {
        if state.pending.is_empty() && results.is_empty() {
            return None;
        }
        Some(SubscriptionUpdate {
            query_id: qid,
            from_height: state.from_height,
            to_height,
            results,
            coverage: std::mem::take(&mut state.pending),
        })
    }

    /// Compress the top of the stack with the *current* block's skip list:
    /// if the preceding `d` blocks are exactly the top pending entries, one
    /// skip entry plus `ProofSum` replaces them (paper Algorithm 5).
    fn compress(&mut self, qid: QueryId, height: u64, indexed: &IndexedBlock<A>) {
        let state = self.lazy.get_mut(&qid).expect("registered");
        let q = &self.queries[&qid];
        let Some(clause_idx) = state.clause_idx else { return };
        for entry in indexed.skiplist.entries.iter().rev() {
            let d = entry.distance;
            // the skip at `height` covers `height-d ..= height-1`; with the
            // current block just pushed, those are the entries *below* it.
            if state.pending.len() < 2 {
                return;
            }
            let top = state.pending.last().expect("non-empty");
            let (top_first, _) = coverage_span(top);
            if top_first != height {
                return; // current block must sit on top
            }
            // collect entries below the top until they span exactly d blocks
            let mut span = 0u64;
            let mut take = 0usize;
            for cov in state.pending[..state.pending.len() - 1].iter().rev() {
                let (first, last) = coverage_span(cov);
                if span == 0 && last != height - 1 {
                    break; // not contiguous with the current block
                }
                span += last - first + 1;
                take += 1;
                if span >= d {
                    break;
                }
            }
            if span != d {
                continue; // try a smaller skip distance
            }
            // The skip's multiset must mismatch the same clause (it is the
            // sum of the covered blocks' root multisets, each disjoint from
            // the clause, so this always holds — asserted here).
            let clause_ms = q.cnf.0[clause_idx].to_multiset();
            debug_assert!(entry.ms.is_disjoint(&clause_ms));
            // Aggregate the member proofs with ProofSum.
            let members: Vec<A::Proof> = state.pending
                [state.pending.len() - 1 - take..state.pending.len() - 1]
                .iter()
                .map(extract_proof::<A>)
                .collect();
            let agg = match self.acc.proof_sum(&members) {
                Ok(p) => p,
                Err(_) => return,
            };
            let siblings = indexed
                .skiplist
                .entries
                .iter()
                .filter(|e| e.distance != d)
                .map(|e| (e.distance, e.level_hash()))
                .collect();
            let skip_cov = BlockCoverage::Skip {
                height,
                distance: d,
                att: entry.att.clone(),
                proof: agg,
                clause: ClauseRef::Index(clause_idx as u16),
                siblings,
            };
            let keep_from = state.pending.len() - 1 - take;
            let current = state.pending.pop().expect("top");
            state.pending.truncate(keep_from);
            state.pending.push(skip_cov);
            state.pending.push(current);
            return;
        }
    }

    /// IP-Tree joint processing (§7.1, Algorithm 7 in spirit): one traversal
    /// of the intra-block index for *all* queries, sharing mismatch proofs
    /// by clause content and by enclosing grid cell.
    fn process_block_shared(
        &self,
        block: &Block,
        indexed: &IndexedBlock<A>,
    ) -> BTreeMap<QueryId, (Vec<Object>, BlockVo<A>)> {
        let tree = &indexed.tree;
        let qids: Vec<QueryId> = self.queries.keys().copied().collect();
        let mut out: BTreeMap<QueryId, (Vec<Object>, Option<VoNode<A>>)> =
            qids.iter().map(|&id| (id, (Vec::new(), None))).collect();

        let roots = self.shared_walk(tree, tree.root, &block.objects, &qids, &mut out);
        roots
            .into_iter()
            .map(|(qid, node)| {
                let (results, _) = out.remove(&qid).expect("present");
                (qid, (results, BlockVo { root: node, groups: Vec::new() }))
            })
            .collect()
    }

    /// Returns, per active query, the VO node for this subtree.
    ///
    /// Every refutation this node needs — one per distinct clause content
    /// across all active queries (the BCIF effect) and per enclosing grid
    /// cell — is first looked up in the persistent cross-block cache, and
    /// the misses are proven together with one
    /// [`Accumulator::prove_disjoint_many`] call, sharing the node-side
    /// witness across clauses.
    fn shared_walk(
        &self,
        tree: &IntraTree<A>,
        node_idx: usize,
        objects: &[Object],
        active: &[QueryId],
        out: &mut BTreeMap<QueryId, (Vec<Object>, Option<VoNode<A>>)>,
    ) -> BTreeMap<QueryId, VoNode<A>> {
        let node = &tree.nodes[node_idx];
        let mut results_map: BTreeMap<QueryId, VoNode<A>> = BTreeMap::new();
        let mut descend: Vec<QueryId> = Vec::new();

        // The refutations this node needs, deduplicated by clause content;
        // proofs are resolved (cache or batch-prove) after collection.
        let mut pending: Vec<(MultiSet<ElementId>, Option<A::Proof>)> = Vec::new();
        let mut by_content: HashMap<Vec<u32>, usize> = HashMap::new();
        let mut assigned: BTreeMap<QueryId, (usize, ClauseRef)> = BTreeMap::new();
        let mut intern = |pending: &mut Vec<(MultiSet<ElementId>, Option<A::Proof>)>,
                          clause_ms: MultiSet<ElementId>| {
            let key: Vec<u32> = clause_ms.elements().map(|e| e.raw()).collect();
            *by_content.entry(key).or_insert_with(|| {
                pending.push((clause_ms, None));
                pending.len() - 1
            })
        };

        // 1. Range sharing: queries grouped by enclosing cell; one proof per
        //    cell whose slabs are all absent from the node's multiset.
        if !self.enclosing.is_empty() {
            let mut by_cell: BTreeMap<&Cell, Vec<QueryId>> = BTreeMap::new();
            for &qid in active {
                if let Some(c) = self.enclosing.get(&qid) {
                    if c.depth > 0 {
                        by_cell.entry(c).or_default().push(qid);
                    }
                }
            }
            for (cell, qids) in by_cell {
                // The shared proof covers only the dimensions whose slab
                // prefix is *absent* from the node's multiset: disjointness
                // on any one dimension already refutes every query whose
                // box is contained in the cell.
                let absent: Vec<(u8, u64)> = cell
                    .prefixes
                    .iter()
                    .zip(cell.elements())
                    .filter(|(_, e)| !node.ms.contains(e))
                    .map(|((dim, bits), _)| (*dim, *bits))
                    .collect();
                if absent.is_empty() {
                    continue; // the node may contain cell objects: no sharing
                }
                let clause_ms: MultiSet<ElementId> = absent
                    .iter()
                    .map(|(dim, bits)| {
                        ElementId::intern(&crate::element::Element::Prefix {
                            dim: *dim,
                            len: cell.depth,
                            bits: *bits,
                        })
                    })
                    .collect();
                let idx = intern(&mut pending, clause_ms);
                let clause = ClauseRef::Cell { len: cell.depth, prefixes: absent };
                for qid in qids {
                    assigned.insert(qid, (idx, clause.clone()));
                }
            }
        }

        // 2. Clause-content sharing (the BCIF effect): identical clause
        //    sets across queries collapse onto one pending refutation.
        for &qid in active {
            if assigned.contains_key(&qid) {
                continue; // already cell-refuted
            }
            let q = &self.queries[&qid];
            match q.cnf.find_disjoint_clause(&node.ms) {
                Some(ci) => {
                    let idx = intern(&mut pending, q.cnf.0[ci].to_multiset());
                    assigned.insert(qid, (idx, ClauseRef::Index(ci as u16)));
                }
                None => descend.push(qid),
            }
        }

        // 3. Resolve the pending refutations: warm ones come from the
        //    cross-block cache, the misses share one witness computation.
        if !pending.is_empty() {
            let att = node.att.as_ref();
            let mut misses: Vec<usize> = Vec::new();
            for (i, (clause_ms, proof)) in pending.iter_mut().enumerate() {
                match att.and_then(|a| self.cache.get(&ProofCache::<A>::key(a, clause_ms))) {
                    Some(hit) => *proof = Some(hit),
                    None => misses.push(i),
                }
            }
            if !misses.is_empty() {
                let clauses: Vec<MultiSet<ElementId>> =
                    misses.iter().map(|&i| pending[i].0.clone()).collect();
                let proofs = self
                    .acc
                    .prove_disjoint_many(&node.ms, &clauses)
                    .expect("every pending clause was found disjoint from the node");
                for (&i, proof) in misses.iter().zip(proofs) {
                    if let Some(a) = att {
                        self.cache.insert(ProofCache::<A>::key(a, &pending[i].0), proof.clone());
                    }
                    pending[i].1 = Some(proof);
                }
            }
            for (&qid, (idx, clause)) in &assigned {
                let proof = pending[*idx].1.clone().expect("resolved above");
                results_map.insert(
                    qid,
                    self.mismatch_node(
                        tree,
                        node_idx,
                        objects,
                        MismatchProof::Inline { proof, clause: clause.clone() },
                    ),
                );
            }
        }

        if descend.is_empty() {
            return results_map;
        }

        match &node.kind {
            IntraNodeKind::Leaf { obj_idx } => {
                for qid in descend {
                    let (results, _) = out.get_mut(&qid).expect("present");
                    let att = node.att.clone().expect("leaves carry AttDigest");
                    let result_idx = results.len() as u32;
                    results.push(objects[*obj_idx].clone());
                    results_map.insert(qid, VoNode::LeafMatch { att, result_idx });
                }
            }
            IntraNodeKind::Internal { left, right } => {
                let mut l = self.shared_walk(tree, *left, objects, &descend, out);
                let mut r = self.shared_walk(tree, *right, objects, &descend, out);
                for qid in descend {
                    let ln = l.remove(&qid).expect("child VO");
                    let rn = r.remove(&qid).expect("child VO");
                    results_map.insert(
                        qid,
                        VoNode::Internal {
                            att: node.att.clone(),
                            left: Box::new(ln),
                            right: Box::new(rn),
                        },
                    );
                }
            }
        }
        results_map
    }

    fn mismatch_node(
        &self,
        tree: &IntraTree<A>,
        node_idx: usize,
        objects: &[Object],
        proof: MismatchProof<A>,
    ) -> VoNode<A> {
        let node = &tree.nodes[node_idx];
        let att = node.att.clone().expect("pruning requires AttDigest");
        match &node.kind {
            IntraNodeKind::Leaf { obj_idx } => {
                VoNode::LeafMismatch { obj_hash: objects[*obj_idx].digest(), att, proof }
            }
            IntraNodeKind::Internal { left, right } => {
                let child_hash =
                    vchain_hash::hash_pair(&tree.nodes[*left].hash, &tree.nodes[*right].hash);
                VoNode::InternalMismatch { child_hash, att, proof }
            }
        }
    }
}

fn coverage_span<A: Accumulator>(cov: &BlockCoverage<A>) -> (u64, u64) {
    match cov {
        BlockCoverage::Block { height, .. } => (*height, *height),
        BlockCoverage::Skip { height, distance, .. } => (*height - *distance, *height - 1),
    }
}

fn extract_proof<A: Accumulator>(cov: &BlockCoverage<A>) -> A::Proof {
    match cov {
        BlockCoverage::Block { vo, .. } => match &vo.root {
            VoNode::InternalMismatch { proof: MismatchProof::Inline { proof, .. }, .. }
            | VoNode::LeafMismatch { proof: MismatchProof::Inline { proof, .. }, .. } => {
                proof.clone()
            }
            _ => unreachable!("lazy pending entries are whole-block mismatches"),
        },
        BlockCoverage::Skip { proof, .. } => proof.clone(),
    }
}
