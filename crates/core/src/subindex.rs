//! The standing-query index: what inverts the per-block subscription walk.
//!
//! The naive engine asks, per block, "for each of the Q registered queries,
//! which clause refutes it?" — O(Q) CNF scans per block. This module asks
//! the inverse question: "which registered queries could the attributes this
//! block actually carries satisfy?" It holds
//!
//! * **posting lists** keyed by normalized clause literal
//!   (`BTreeMap<ElementId, Vec<(QueryId, clause)>>`): every literal of every
//!   registered clause, so one pass over the block's *present* subscribed
//!   literals marks exactly the clauses each query has satisfied;
//! * a **clause-content registry**: distinct clause element-sets interned to
//!   small ids at registration, so the per-block proof work is deduplicated
//!   by content (the paper's BCIF effect) with zero per-query allocation at
//!   match time;
//! * the **grid-cell interval index** for the IP-Tree path (§7.1): queries
//!   grouped by enclosing cell, rebuilt with the tree, so range refutations
//!   are shared per cell exactly as the reference walk shares them.
//!
//! The probe set (distinct subscribed literals, with their precomputed
//! [`BloomKey`] lanes) is what the per-block [`AttributeBloom`] filters:
//! literals the filter rejects are skipped outright; literals it accepts are
//! confirmed against the block's exact root multiset before they influence
//! classification, so filter false positives cost one map lookup and nothing
//! else.
//!
//! Classification is *exact* for queries of ≤ 64 clauses (one `u64` hit-mask
//! each, epoch-stamped scratch so per-block work is proportional to touched
//! queries, not Q): a query is a **candidate** iff every clause has a present
//! literal, and otherwise its first all-absent clause index — identical to
//! [`crate::query::Cnf::find_disjoint_clause`] against the root multiset —
//! is reported for the shared refutation. Wider queries are conservatively
//! treated as candidates and take the verbatim per-query walk, which is
//! always correct.

use std::collections::{BTreeMap, HashMap};

use vchain_acc::MultiSet;

use crate::bloom::{AttributeBloom, BloomKey};
use crate::element::ElementId;
use crate::iptree::{Cell, QueryId};
use crate::query::CompiledQuery;

/// Widest CNF the hit-mask classifier handles exactly; wider queries fall
/// back to the per-query walk (correct, just not shared).
pub const MAX_EXACT_CLAUSES: usize = 64;

struct ProbeEntry {
    key: BloomKey,
    refs: u32,
}

struct QueryEntry {
    /// Content-registry id of each clause, in CNF order.
    clause_contents: Vec<u32>,
}

/// Per-block classification of every registered query.
#[derive(Clone, Debug, Default)]
pub struct Classification {
    /// Queries every clause of which has a present literal (plus >64-clause
    /// queries): these must walk the intra-block tree.
    pub candidates: Vec<QueryId>,
    /// `(query, first clause with no present literal, content id)` — the
    /// clause index [`crate::query::Cnf::find_disjoint_clause`] would return
    /// against the block's root multiset, with its content-registry id so
    /// the match loop never re-resolves it per query.
    pub refuted: Vec<(QueryId, u16, u32)>,
}

/// Epoch-stamped dense scratch: per-block work touches only the queries the
/// present literals reach, with no clearing pass over Q.
#[derive(Default)]
struct Scratch {
    masks: Vec<u64>,
    stamps: Vec<u32>,
    epoch: u32,
}

impl Scratch {
    fn ensure(&mut self, len: usize) {
        if self.masks.len() < len {
            self.masks.resize(len, 0);
            self.stamps.resize(len, 0);
        }
    }

    fn mark(&mut self, qid: QueryId, clause: u16) {
        let i = qid as usize;
        if self.stamps[i] != self.epoch {
            self.stamps[i] = self.epoch;
            self.masks[i] = 0;
        }
        if (clause as usize) < MAX_EXACT_CLAUSES {
            self.masks[i] |= 1u64 << clause;
        }
    }

    fn mask(&self, qid: QueryId) -> u64 {
        let i = qid as usize;
        if self.stamps.get(i) == Some(&self.epoch) {
            self.masks[i]
        } else {
            0
        }
    }
}

/// The attribute-keyed subscription index (see module docs).
pub struct SubscriptionIndex {
    postings: BTreeMap<ElementId, Vec<(QueryId, u16)>>,
    probes: BTreeMap<ElementId, ProbeEntry>,
    /// Dense by query id (engine ids are sequential); `None` = deregistered.
    /// Classification scans this linearly, so it must stay flat — a map here
    /// costs milliseconds per block at 10⁵ queries.
    meta: Vec<Option<QueryEntry>>,
    live: usize,
    /// Clause contents by registry id, with registration refcounts.
    /// Slots are retained after their last query deregisters (the mapping
    /// stays valid if the content re-registers; deregistration is rare).
    contents: Vec<(MultiSet<ElementId>, u32)>,
    content_ids: HashMap<Vec<u32>, u32>,
    cells: BTreeMap<Cell, Vec<QueryId>>,
    bloom_seed: u64,
    scratch: Scratch,
}

impl SubscriptionIndex {
    /// An empty index whose probe lanes are derived under `bloom_seed` (must
    /// match the seed the miner builds per-block filters with).
    pub fn new(bloom_seed: u64) -> Self {
        Self {
            postings: BTreeMap::new(),
            probes: BTreeMap::new(),
            meta: Vec::new(),
            live: 0,
            contents: Vec::new(),
            content_ids: HashMap::new(),
            cells: BTreeMap::new(),
            bloom_seed,
            scratch: Scratch::default(),
        }
    }

    /// Number of indexed queries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether any queries are indexed.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of distinct subscribed literals (the per-block probe count).
    pub fn distinct_literals(&self) -> usize {
        self.probes.len()
    }

    /// Number of distinct clause contents ever registered.
    pub fn distinct_contents(&self) -> usize {
        self.contents.len()
    }

    fn intern_content(&mut self, ms: MultiSet<ElementId>) -> u32 {
        let key: Vec<u32> = ms.elements().map(|e| e.raw()).collect();
        match self.content_ids.get(&key) {
            Some(&id) => {
                self.contents[id as usize].1 += 1;
                id
            }
            None => {
                let id = self.contents.len() as u32;
                self.contents.push((ms, 1));
                self.content_ids.insert(key, id);
                id
            }
        }
    }

    /// Index a newly registered query.
    pub fn insert(&mut self, qid: QueryId, q: &CompiledQuery) {
        let mut clause_contents = Vec::with_capacity(q.cnf.0.len());
        for (ci, clause) in q.cnf.0.iter().enumerate() {
            let ci = ci.min(u16::MAX as usize) as u16;
            for &e in &clause.0 {
                self.postings.entry(e).or_default().push((qid, ci));
                match self.probes.get_mut(&e) {
                    Some(p) => p.refs += 1,
                    None => {
                        let key = BloomKey::from_element(self.bloom_seed, &e.resolve());
                        self.probes.insert(e, ProbeEntry { key, refs: 1 });
                    }
                }
            }
            clause_contents.push(self.intern_content(clause.to_multiset()));
        }
        if self.meta.len() <= qid as usize {
            self.meta.resize_with(qid as usize + 1, || None);
        }
        if self.meta[qid as usize].replace(QueryEntry { clause_contents }).is_none() {
            self.live += 1;
        }
        self.scratch.ensure(qid as usize + 1);
    }

    /// Drop a deregistered query from every posting list.
    pub fn remove(&mut self, qid: QueryId, q: &CompiledQuery) {
        let Some(entry) = self.meta.get_mut(qid as usize).and_then(Option::take) else { return };
        self.live -= 1;
        for (ci, clause) in q.cnf.0.iter().enumerate() {
            let ci = ci.min(u16::MAX as usize) as u16;
            for e in &clause.0 {
                if let Some(list) = self.postings.get_mut(e) {
                    if let Some(pos) = list.iter().position(|&p| p == (qid, ci)) {
                        list.remove(pos);
                    }
                    if list.is_empty() {
                        self.postings.remove(e);
                    }
                }
                if let Some(p) = self.probes.get_mut(e) {
                    p.refs -= 1;
                    if p.refs == 0 {
                        self.probes.remove(e);
                    }
                }
            }
        }
        for cid in entry.clause_contents {
            let slot = &mut self.contents[cid as usize];
            slot.1 = slot.1.saturating_sub(1);
        }
    }

    /// The content-registry id of clause `ci` of query `qid`.
    pub fn content_of(&self, qid: QueryId, ci: u16) -> u32 {
        self.meta[qid as usize].as_ref().expect("registered").clause_contents[ci as usize]
    }

    /// The element set of a registered clause content.
    pub fn content(&self, cid: u32) -> &MultiSet<ElementId> {
        &self.contents[cid as usize].0
    }

    /// Rebuild the grid-cell interval index from the engine's enclosing-cell
    /// assignment (depth-0 cells are omitted: they share nothing).
    pub fn rebuild_cells(&mut self, enclosing: &BTreeMap<QueryId, Cell>) {
        self.cells.clear();
        for (&qid, cell) in enclosing {
            if cell.depth > 0 {
                self.cells.entry(cell.clone()).or_default().push(qid);
            }
        }
    }

    /// Queries grouped by enclosing grid cell (ascending query id per cell).
    pub fn cells(&self) -> &BTreeMap<Cell, Vec<QueryId>> {
        &self.cells
    }

    /// The subscribed literals present in `ms`, pre-filtered by the block's
    /// Bloom filter. Positives are confirmed against `ms`, so the result is
    /// exact whenever the filter has no false negatives (always, for an
    /// honest filter); a corrupted filter can only *omit* literals here.
    pub fn present_literals(
        &self,
        bloom: Option<&AttributeBloom>,
        ms: &MultiSet<ElementId>,
    ) -> Vec<ElementId> {
        let mut out = Vec::new();
        for (&e, probe) in &self.probes {
            if let Some(f) = bloom {
                if !f.contains_key(&probe.key) {
                    continue;
                }
            }
            if ms.contains(&e) {
                out.push(e);
            }
        }
        out
    }

    /// Classify every indexed query given the block's present subscribed
    /// literals (ascending query id in both output lists).
    pub fn classify(&mut self, present: &[ElementId]) -> Classification {
        self.scratch.epoch = self.scratch.epoch.wrapping_add(1);
        for e in present {
            if let Some(list) = self.postings.get(e) {
                for &(qid, ci) in list {
                    self.scratch.mark(qid, ci);
                }
            }
        }
        let mut out = Classification::default();
        for (i, slot) in self.meta.iter().enumerate() {
            let Some(entry) = slot else { continue };
            let qid = i as QueryId;
            let n = entry.clause_contents.len();
            if n == 0 || n > MAX_EXACT_CLAUSES {
                // An empty CNF matches everything; an over-wide one is not
                // classified exactly — both walk the tree.
                out.candidates.push(qid);
                continue;
            }
            let full = if n == MAX_EXACT_CLAUSES { u64::MAX } else { (1u64 << n) - 1 };
            let mask = self.scratch.mask(qid);
            if mask == full {
                out.candidates.push(qid);
            } else {
                let ci = mask.trailing_ones() as u16;
                out.refuted.push((qid, ci, entry.clause_contents[ci as usize]));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bloom::BLOOM_SEED;
    use crate::query::{Query, RangeSpec};

    fn sub(ranges: Vec<RangeSpec>, keywords: Vec<Vec<&str>>) -> CompiledQuery {
        Query {
            time_window: None,
            ranges,
            keywords: keywords
                .into_iter()
                .map(|c| c.into_iter().map(str::to_owned).collect())
                .collect(),
        }
        .compile(4)
    }

    fn obj_ms(numeric: &[u64], kws: &[&str]) -> MultiSet<ElementId> {
        let o = vchain_chain::Object::new(
            1,
            0,
            numeric.to_vec(),
            kws.iter().map(|s| s.to_string()).collect(),
        );
        crate::query::object_multiset(&o, 4)
    }

    #[test]
    fn classification_matches_find_disjoint_clause() {
        let mut idx = SubscriptionIndex::new(BLOOM_SEED);
        let queries = [
            sub(vec![RangeSpec { dim: 0, lo: 0, hi: 3 }], vec![vec!["subidx-a"]]),
            sub(Vec::new(), vec![vec!["subidx-a", "subidx-b"], vec!["subidx-c"]]),
            sub(vec![RangeSpec { dim: 0, lo: 12, hi: 15 }], vec![vec!["subidx-z"]]),
        ];
        for (i, q) in queries.iter().enumerate() {
            idx.insert(i as QueryId, q);
        }
        let ms = obj_ms(&[2], &["subidx-a", "subidx-c"]);
        let present = idx.present_literals(None, &ms);
        let cls = idx.classify(&present);
        for (i, q) in queries.iter().enumerate() {
            let expected = q.cnf.find_disjoint_clause(&ms);
            let qid = i as QueryId;
            match expected {
                None => assert!(cls.candidates.contains(&qid), "query {i} must be candidate"),
                Some(ci) => assert!(
                    cls.refuted.contains(&(qid, ci as u16, idx.content_of(qid, ci as u16))),
                    "query {i} must be refuted at clause {ci}"
                ),
            }
        }
    }

    #[test]
    fn remove_unindexes_everything() {
        let mut idx = SubscriptionIndex::new(BLOOM_SEED);
        let q = sub(Vec::new(), vec![vec!["subidx-rm-a"], vec!["subidx-rm-b"]]);
        idx.insert(7, &q);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.distinct_literals(), 2);
        idx.remove(7, &q);
        assert_eq!(idx.len(), 0);
        assert_eq!(idx.distinct_literals(), 0);
        let present = idx.present_literals(None, &obj_ms(&[1], &["subidx-rm-a"]));
        assert!(present.is_empty());
    }

    #[test]
    fn shared_contents_intern_once() {
        let mut idx = SubscriptionIndex::new(BLOOM_SEED);
        let q1 = sub(Vec::new(), vec![vec!["subidx-shared-x", "subidx-shared-y"]]);
        let q2 = sub(Vec::new(), vec![vec!["subidx-shared-x", "subidx-shared-y"]]);
        idx.insert(0, &q1);
        idx.insert(1, &q2);
        assert_eq!(idx.distinct_contents(), 1);
        assert_eq!(idx.content_of(0, 0), idx.content_of(1, 0));
    }

    #[test]
    fn bloom_prefilter_never_drops_present_literals() {
        let mut idx = SubscriptionIndex::new(BLOOM_SEED);
        for i in 0..50u32 {
            let kw = format!("subidx-bloom-{i}");
            idx.insert(i, &sub(Vec::new(), vec![vec![&kw]]));
        }
        let ms = obj_ms(&[1], &["subidx-bloom-13", "subidx-bloom-31"]);
        let keys: Vec<BloomKey> =
            ms.elements().map(|e| BloomKey::from_element(BLOOM_SEED, &e.resolve())).collect();
        let bloom = AttributeBloom::build(BLOOM_SEED, 10, &keys);
        let filtered = idx.present_literals(Some(&bloom), &ms);
        let unfiltered = idx.present_literals(None, &ms);
        assert_eq!(filtered, unfiltered, "an honest filter must be transparent");
        assert_eq!(filtered.len(), 2);
    }
}
