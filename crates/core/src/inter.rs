//! The inter-block skip-list index (paper §6.2, Fig. 7).
//!
//! Each block carries entries at exponentially growing distances
//! `2, 4, …, 2^L`. The entry at distance `k` of block `h` summarizes the
//! `k` *preceding* blocks `h−k ..= h−1`: the hash chain binding them
//! (`PreSkippedHash`), the multiset **sum** of their attributes, and its
//! AttDigest. A single disjointness proof against an entry lets the user
//! skip all `k` blocks during verification.
//!
//! (The paper's Algorithm 4 is ambiguous about whether the current block is
//! part of its own skip; we summarize strictly *preceding* blocks and have
//! the SP process the current block before jumping, which is
//! completeness-safe — see DESIGN.md §4.)

use vchain_acc::{Accumulator, MultiSet};
use vchain_hash::{hash_concat, Digest};

use crate::element::ElementId;

/// One skip level.
#[derive(Clone, Debug)]
pub struct SkipEntry<A: Accumulator> {
    /// Number of preceding blocks covered (`2^j`).
    pub distance: u64,
    /// `hash(block-hash_{h−k} | … | block-hash_{h−1})`.
    pub pre_skipped_hash: Digest,
    /// `Σ W_j` over the covered blocks.
    pub ms: MultiSet<ElementId>,
    /// `acc(Σ W_j)`.
    pub att: A::Value,
}

impl<A: Accumulator> SkipEntry<A> {
    /// `hash_Lk = hash(PreSkippedHash | AttDigest)`.
    pub fn level_hash(&self) -> Digest {
        level_hash_from_parts::<A>(&self.pre_skipped_hash, &self.att)
    }
}

/// `hash_Lk` from its parts (also used by the verifier).
pub fn level_hash_from_parts<A: Accumulator>(pre_skipped: &Digest, att: &A::Value) -> Digest {
    hash_concat(&[b"vchain/skip", &pre_skipped.0, &A::value_bytes(att)])
}

/// `PreSkippedHash` over an ordered run of block hashes.
pub fn pre_skipped_hash(block_hashes: &[Digest]) -> Digest {
    let parts: Vec<&[u8]> = std::iter::once(&b"vchain/preskip"[..])
        .chain(block_hashes.iter().map(|d| &d.0[..]))
        .collect();
    hash_concat(&parts)
}

/// The whole per-block skip list.
#[derive(Clone, Debug, Default)]
pub struct SkipList<A: Accumulator> {
    /// Entries in increasing distance order (`2, 4, …`). Levels whose
    /// distance exceeds the current height are absent.
    pub entries: Vec<SkipEntry<A>>,
}

/// Summary of an already-mined block the miner keeps for index maintenance.
#[derive(Clone, Debug)]
pub struct BlockSummary<A: Accumulator> {
    /// The block hash.
    pub hash: Digest,
    /// The block-level multiset sum of its objects' attributes.
    pub ms: MultiSet<ElementId>,
    /// `acc(ms)` — reused by Construction 2's `Sum` aggregation.
    pub att: A::Value,
}

impl<A: Accumulator> SkipList<A> {
    /// Build block `h`'s skip list from the mined history
    /// (`history[j]` = summary of block `j`, `history.len() == h`).
    ///
    /// With an aggregating accumulator the entry digest is
    /// `Sum(att_{h−k}, …, att_{h−1})` — the paper's explanation of why acc2
    /// is an order of magnitude cheaper here (Table 1). Otherwise the digest
    /// is set up from scratch on the summed multiset.
    pub fn build(history: &[BlockSummary<A>], levels: u8, acc: &A) -> Self {
        let h = history.len() as u64;
        let mut entries = Vec::new();
        for j in 1..=levels {
            let distance = 1u64 << j;
            if distance > h {
                break;
            }
            let range = &history[(h - distance) as usize..];
            let hashes: Vec<Digest> = range.iter().map(|s| s.hash).collect();
            let mut ms = MultiSet::new();
            for s in range {
                ms = ms.sum(&s.ms);
            }
            let att = if acc.supports_aggregation() {
                let atts: Vec<A::Value> = range.iter().map(|s| s.att.clone()).collect();
                acc.sum(&atts).expect("aggregating accumulator")
            } else {
                acc.setup(&ms)
            };
            entries.push(SkipEntry {
                distance,
                pre_skipped_hash: pre_skipped_hash(&hashes),
                ms,
                att,
            });
        }
        Self { entries }
    }

    /// `SkipListRoot = hash(hash_L2 | hash_L4 | …)`; `Digest::ZERO` when the
    /// list is empty (matching a header without the inter-block index).
    pub fn root(&self) -> Digest {
        if self.entries.is_empty() {
            return Digest::ZERO;
        }
        let level_hashes: Vec<Digest> = self.entries.iter().map(SkipEntry::level_hash).collect();
        skiplist_root_from_hashes(&level_hashes)
    }

    /// Entry at an exact distance, if present.
    pub fn entry_at(&self, distance: u64) -> Option<&SkipEntry<A>> {
        self.entries.iter().find(|e| e.distance == distance)
    }

    /// Nominal ADS bytes this list adds to a block (Table 1 "S" metric).
    pub fn ads_size_bytes(&self, acc: &A) -> usize {
        self.entries.len() * (Digest::LEN + acc.value_size())
    }
}

/// Combine per-level hashes (increasing distance order) into the root.
pub fn skiplist_root_from_hashes(level_hashes: &[Digest]) -> Digest {
    let parts: Vec<&[u8]> = std::iter::once(&b"vchain/skiplist"[..])
        .chain(level_hashes.iter().map(|d| &d.0[..]))
        .collect();
    hash_concat(&parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;
    use vchain_acc::{Acc2, Accumulator};
    use vchain_hash::hash_bytes;

    fn acc() -> Acc2 {
        static A: OnceLock<Acc2> = OnceLock::new();
        A.get_or_init(|| Acc2::keygen(64, &mut StdRng::seed_from_u64(5))).clone()
    }

    fn summary(a: &Acc2, seed: u64, elems: &[u64]) -> BlockSummary<Acc2> {
        let ms: vchain_acc::MultiSet<u64> = elems.iter().copied().collect();
        // tests use u64 elements directly (AccElem impl), bypassing ElementId
        let att = a.setup(&ms);
        let ms_ids: MultiSet<crate::element::ElementId> =
            ms.elements().map(|e| crate::element::ElementId::keyword(&format!("sk:{e}"))).collect();
        let att_ids = a.setup(&ms_ids);
        let _ = att;
        BlockSummary { hash: hash_bytes(&seed.to_le_bytes()), ms: ms_ids, att: att_ids }
    }

    #[test]
    fn entries_appear_with_height() {
        let a = acc();
        let mut history = Vec::new();
        for h in 0..9u64 {
            let list = SkipList::build(&history, 3, &a);
            let expected_levels = [2u64, 4, 8].iter().filter(|&&d| d <= h).count();
            assert_eq!(list.entries.len(), expected_levels, "height {h}");
            history.push(summary(&a, h, &[h % 5 + 1, 6]));
        }
    }

    #[test]
    fn entry_is_sum_of_covered_blocks() {
        let a = acc();
        let history: Vec<_> = (0..4u64).map(|h| summary(&a, h, &[h + 1])).collect();
        let list = SkipList::build(&history, 2, &a);
        let e2 = list.entry_at(2).unwrap();
        // distance 2 covers blocks 2 and 3
        let expect = history[2].ms.sum(&history[3].ms);
        assert_eq!(e2.ms, expect);
        // aggregated digest equals direct setup of the summed multiset
        assert_eq!(e2.att, a.setup(&expect));
        // distance-4 entry covers everything
        let e4 = list.entry_at(4).unwrap();
        assert_eq!(e4.ms.total_count(), history.iter().map(|s| s.ms.total_count()).sum::<u64>());
    }

    #[test]
    fn root_commits_all_levels() {
        let a = acc();
        let history: Vec<_> = (0..4u64).map(|h| summary(&a, h, &[h + 1])).collect();
        let list = SkipList::build(&history, 2, &a);
        let root = list.root();
        assert_ne!(root, Digest::ZERO);
        // tampering any level's PreSkippedHash changes the root
        let mut tampered = list.clone();
        tampered.entries[0].pre_skipped_hash = hash_bytes(b"evil");
        assert_ne!(tampered.root(), root);
        // empty list commits to zero (no inter-block index)
        let empty: SkipList<Acc2> = SkipList { entries: Vec::new() };
        assert_eq!(empty.root(), Digest::ZERO);
    }

    #[test]
    fn pre_skipped_hash_binds_order() {
        let h1 = hash_bytes(b"a");
        let h2 = hash_bytes(b"b");
        assert_ne!(pre_skipped_hash(&[h1, h2]), pre_skipped_hash(&[h2, h1]));
    }
}
