//! Online batch verification (paper §6.3).
//!
//! With Construction 2, mismatching nodes that share a clause — within one
//! block or across blocks — can be verified in a batch: the verifier sums
//! their AttDigests with `Sum(·)` and checks a single aggregate proof
//! produced with `ProofSum(·)` (or, equivalently, proven once against the
//! summed multiset).
//!
//! The in-block flavor is wired into [`crate::intra::IntraTree::query`]
//! (the `batch` flag) and checked in [`crate::verify`]; this module holds
//! the cross-block aggregation used by the lazy subscription path (§7.2).
//!
//! Verifier-side, the dual of this SP-side aggregation is the deferred
//! RLC pairing batch [`crate::verify::DisjointBatch`]: all of a response's
//! — or, via [`crate::client::WindowScan`], an entire multi-window scan's —
//! disjointness checks flush as one aggregated multi-pairing.

// Aggregation feeds verifier-side checks; keep it panic-free.
#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic, clippy::unreachable)]

use vchain_acc::{AccError, Accumulator, MultiSet};

use crate::element::ElementId;

/// Accumulates mismatching entities that share a clause, producing one
/// aggregate (value, proof) pair at flush time.
pub struct BatchCollector<A: Accumulator> {
    members: Vec<(MultiSet<ElementId>, A::Value)>,
}

impl<A: Accumulator> Default for BatchCollector<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A: Accumulator> BatchCollector<A> {
    /// An empty collector.
    pub fn new() -> Self {
        Self { members: Vec::new() }
    }

    /// Add one mismatching entity (its multiset and AttDigest).
    pub fn push(&mut self, ms: MultiSet<ElementId>, att: A::Value) {
        self.members.push((ms, att));
    }

    /// Number of collected members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Is the collector empty?
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// One aggregate value + proof against `clause` for all members.
    pub fn flush(
        &mut self,
        acc: &A,
        clause: &MultiSet<ElementId>,
    ) -> Result<(A::Value, A::Proof), AccError> {
        let values: Vec<A::Value> = self.members.iter().map(|(_, v)| v.clone()).collect();
        let agg_value = acc.sum(&values)?;
        let mut summed = MultiSet::new();
        for (ms, _) in &self.members {
            summed = summed.sum(ms);
        }
        let proof = acc.prove_disjoint(&summed, clause)?;
        self.members.clear();
        Ok((agg_value, proof))
    }
}
