//! Set elements and the process-wide element dictionary.
//!
//! After the §5.3 transformation, every attribute — keyword or numeric —
//! is a *set element*: either a keyword string or a tagged binary prefix.
//! Elements are interned into small integer [`ElementId`]s, which
//!
//! * makes multisets cheap (`BTreeMap<u32, u64>` under the hood),
//! * caches each element's scalar-field representative for Construction 1,
//! * provides the public integer encoding `[1, q)` that Construction 2
//!   requires (the dictionary plays the paper's "hash to integer + trusted
//!   oracle" role; see DESIGN.md §2).

use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

use parking_lot::RwLock;
use vchain_acc::AccElem;
use vchain_pairing::Fr;

/// A set element: a keyword, or a binary prefix `bits` of length `len`
/// (most-significant bits of the attribute value) in dimension `dim`.
///
/// The paper writes prefixes like `10*₂` — here `Prefix { dim: 1, len: 2,
/// bits: 0b10 }` (dimensions are 0-based).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Element {
    /// A textual attribute (the paper's set W).
    Keyword(String),
    /// A binary prefix of a numeric attribute (the paper's `trans(·)`).
    Prefix {
        /// 0-based numeric dimension.
        dim: u8,
        /// Prefix length in bits.
        len: u8,
        /// The most-significant `len` bits of the value.
        bits: u64,
    },
}

impl Element {
    /// Convenience constructor for a keyword element.
    pub fn keyword(s: impl Into<String>) -> Self {
        Element::Keyword(s.into())
    }

    /// Canonical bytes: the injective encoding from which the scalar-field
    /// representative is derived. Also the hashing pre-image for the
    /// per-block attribute Bloom filters ([`crate::bloom`]), which must be
    /// stable across processes — unlike [`ElementId`]s, whose numbering
    /// depends on interning order.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        match self {
            Element::Keyword(s) => {
                let mut out = vec![0u8];
                out.extend_from_slice(s.as_bytes());
                out
            }
            Element::Prefix { dim, len, bits } => {
                let mut out = vec![1u8, *dim, *len];
                out.extend_from_slice(&bits.to_le_bytes());
                out
            }
        }
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Element::Keyword(s) => write!(f, "{s:?}"),
            Element::Prefix { dim, len, bits } => {
                for i in (0..*len).rev() {
                    write!(f, "{}", (bits >> i) & 1)?;
                }
                write!(f, "*_{dim}")
            }
        }
    }
}

/// An interned element. Ordering follows interning order (stable within a
/// process), which is all the accumulators need.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ElementId(u32);

struct Interner {
    map: HashMap<Element, u32>,
    /// element + cached `Fr` representative, indexed by id
    entries: Vec<(Element, Fr)>,
}

static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();

fn interner() -> &'static RwLock<Interner> {
    INTERNER.get_or_init(|| RwLock::new(Interner { map: HashMap::new(), entries: Vec::new() }))
}

impl ElementId {
    /// Intern an element, assigning the next dictionary id on first sight.
    pub fn intern(e: &Element) -> ElementId {
        {
            let guard = interner().read();
            if let Some(&id) = guard.map.get(e) {
                return ElementId(id);
            }
        }
        let mut guard = interner().write();
        if let Some(&id) = guard.map.get(e) {
            return ElementId(id);
        }
        let id = guard.entries.len() as u32;
        let fr = Fr::hash_to_field(&e.canonical_bytes());
        guard.entries.push((e.clone(), fr));
        guard.map.insert(e.clone(), id);
        ElementId(id)
    }

    /// Intern a keyword string directly.
    pub fn keyword(s: &str) -> ElementId {
        Self::intern(&Element::keyword(s))
    }

    /// The element this id denotes.
    pub fn resolve(self) -> Element {
        interner().read().entries[self.0 as usize].0.clone()
    }

    /// Number of distinct elements interned so far — the current universe
    /// size, which must stay below Construction 2's `q`.
    pub fn universe_size() -> usize {
        interner().read().entries.len()
    }

    /// The raw 0-based dictionary id.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for ElementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}({})", self.0, self.resolve())
    }
}

impl AccElem for ElementId {
    fn to_fr(&self) -> Fr {
        interner().read().entries[self.0 as usize].1
    }

    fn to_index(&self) -> u64 {
        // Dictionary ids are 0-based; accumulator indices start at 1.
        self.0 as u64 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = ElementId::keyword("sedan-test-interning");
        let b = ElementId::keyword("sedan-test-interning");
        assert_eq!(a, b);
        assert_eq!(a.resolve(), Element::keyword("sedan-test-interning"));
    }

    #[test]
    fn distinct_elements_distinct_ids() {
        let a = ElementId::keyword("kw-a-distinct");
        let b = ElementId::keyword("kw-b-distinct");
        let p = ElementId::intern(&Element::Prefix { dim: 0, len: 3, bits: 0b101 });
        assert_ne!(a, b);
        assert_ne!(a, p);
        assert_ne!(AccElem::to_fr(&a), AccElem::to_fr(&b));
        assert_ne!(a.to_index(), b.to_index());
    }

    #[test]
    fn indices_start_at_one() {
        let a = ElementId::keyword("any-kw-for-index");
        assert!(a.to_index() >= 1);
    }

    #[test]
    fn keyword_and_prefix_cannot_collide() {
        // a keyword that *prints* like a prefix must still be distinct
        let kw = Element::keyword("101*_0");
        let pf = Element::Prefix { dim: 0, len: 3, bits: 0b101 };
        assert_ne!(ElementId::intern(&kw), ElementId::intern(&pf));
        assert_ne!(kw.canonical_bytes(), pf.canonical_bytes());
    }

    #[test]
    fn display_renders_prefix_bits() {
        let e = Element::Prefix { dim: 1, len: 3, bits: 0b110 };
        assert_eq!(format!("{e}"), "110*_1");
    }
}
