//! The light client's streamed verification pipeline (builds on §5.1/§6
//! verification and the [`crate::wire`] stream format).
//!
//! A window-query VO does not have to be held in memory whole before
//! verification starts. The SP serializes it as self-delimiting frames
//! ([`crate::wire::encode_scan_stream`]); the client feeds transport
//! chunks into a [`StreamVerifier`], which decodes frame-by-frame with
//! bounded buffering and verifies each coverage entry as soon as it is
//! complete. With [`PipelineMode::Worker`] the two stages overlap: a
//! worker thread verifies block *i* while the caller's thread is still
//! decoding block *i + 1*.
//!
//! ```text
//!   transport chunks ──▶ StreamDecoder ──(bounded channel)──▶ WindowScan
//!        caller thread   frame reassembly                     verify entries
//!                        + v2 slot decode      worker thread  + one batch flush
//! ```
//!
//! The second pillar is *cross-block batching across windows*: every
//! disjointness proof of every block of every window defers into one
//! shared [`DisjointBatch`] ([`WindowScan`]), so an 8-window scan pays a
//! single aggregated pairing flush instead of eight.
//!
//! The codec is version-negotiated end to end — a v2-speaking client keeps
//! accepting v1 bytes:
//!
//! ```
//! # use rand::rngs::StdRng;
//! # use rand::SeedableRng;
//! # use vchain_acc::{Acc2, Accumulator};
//! # use vchain_chain::{Difficulty, LightClient, Object};
//! # use vchain_core::miner::{IndexScheme, Miner, MinerConfig};
//! # use vchain_core::query::Query;
//! # let cfg = MinerConfig { scheme: IndexScheme::Both, skip_levels: 3, domain_bits: 8,
//! #                         difficulty: Difficulty(0), bloom_bits_per_key: 10 };
//! # let acc = Acc2::keygen(256, &mut StdRng::seed_from_u64(7));
//! # let mut miner = Miner::new(cfg, acc.clone());
//! # miner.mine_block(10, vec![Object::new(1, 10, vec![220], vec!["Sedan".into()])]);
//! # miner.mine_block(20, vec![Object::new(2, 20, vec![95], vec!["Van".into()])]);
//! # let mut light = LightClient::new(cfg.difficulty);
//! # for h in miner.headers() { light.sync_header(h).unwrap(); }
//! # let sp = miner.into_service_provider();
//! # let q = Query { time_window: Some((0, 40)), ranges: vec![], keywords: vec![vec!["Sedan".into()]] }
//! #     .compile(cfg.domain_bits);
//! use vchain_core::verify::verify_encoded_response;
//! use vchain_core::wire::{decode_response_auto, encode_response, encode_response_v2, WireVersion};
//!
//! let resp = sp.time_window_query(&q);
//! let v1 = encode_response(&resp);
//! let v2 = encode_response_v2(&resp);
//! // the auto decoder dispatches on the version byte …
//! assert_eq!(decode_response_auto(&acc, &v1).unwrap().1, WireVersion::V1);
//! assert_eq!(decode_response_auto(&acc, &v2).unwrap().1, WireVersion::V2);
//! // … so the one verification entry point accepts both encodings.
//! let r1 = verify_encoded_response(&q, &v1, &light, &cfg, &acc).unwrap();
//! let r2 = verify_encoded_response(&q, &v2, &light, &cfg, &acc).unwrap();
//! assert_eq!(r1, r2);
//! assert_eq!(r1.len(), 1);
//! ```

// Like `verify`, this module runs on attacker-shaped input (the decoded
// stream), so panicking constructs are denied outright.
#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic, clippy::unreachable)]

use std::borrow::Cow;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;

use vchain_acc::Accumulator;
use vchain_chain::{LightClient, Object};

use crate::miner::MinerConfig;
use crate::query::CompiledQuery;
use crate::verify::{DisjointBatch, VerifyError, WindowVerifier};
use crate::vo::{BlockCoverage, QueryResponse};
use crate::wire::{StreamDecoder, StreamEvent, WireError};

/// How many decoded-but-unverified coverage entries the pipeline may hold
/// between its decode and verify stages. Small on purpose: the bound is
/// the backpressure that keeps peak memory independent of response size.
const PIPELINE_DEPTH: usize = 8;

/// Whether the verify stage runs on the caller's thread or overlaps the
/// decode stage on a dedicated worker thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PipelineMode {
    /// Decode and verify alternate on the caller's thread. No
    /// concurrency, minimal footprint — and the mode the pipeline falls
    /// back to if a worker thread cannot be spawned.
    Inline,
    /// A worker thread verifies entry *i* while the caller decodes entry
    /// *i + 1* — the two-stage pipeline of the module docs.
    Worker,
}

/// Counters a [`StreamVerifier`] accumulates while consuming a stream.
///
/// `peak_buffer_bytes` is the pipeline's high-water memory mark: the
/// largest value, over the whole stream, of *(bytes of the one partial
/// frame being reassembled) + (retained intern-table bytes) + (wire bytes
/// of decoded entries queued to the verify stage)*. For any multi-block
/// stream this is far below the full VO size — the point of streaming —
/// and a test in `tests/fault_injection.rs` asserts exactly that.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Total stream bytes fed (the VO's wire size).
    pub vo_bytes: usize,
    /// High-water mark of buffered bytes (partial frame + intern table +
    /// entries in flight between the pipeline stages).
    pub peak_buffer_bytes: usize,
    /// Entries in the stream's shared intern table.
    pub table_entries: usize,
    /// Coverage-entry frames fully processed.
    pub entries: u32,
    /// Windows in the scan.
    pub windows: usize,
}

/// Cross-window verification driver: verifies a sequence of window
/// responses while folding *all* their deferred pairing checks into one
/// shared [`DisjointBatch`], flushed once in [`WindowScan::finish`] — an
/// 8-window scan costs one aggregated multi-pairing instead of eight.
///
/// ```
/// # use rand::rngs::StdRng;
/// # use rand::SeedableRng;
/// # use vchain_acc::{Acc2, Accumulator};
/// # use vchain_chain::{Difficulty, LightClient, Object};
/// # use vchain_core::miner::{IndexScheme, Miner, MinerConfig};
/// # use vchain_core::query::Query;
/// # let cfg = MinerConfig { scheme: IndexScheme::Both, skip_levels: 3, domain_bits: 8,
/// #                         difficulty: Difficulty(0), bloom_bits_per_key: 10 };
/// # let acc = Acc2::keygen(256, &mut StdRng::seed_from_u64(7));
/// # let mut miner = Miner::new(cfg, acc.clone());
/// # miner.mine_block(10, vec![Object::new(1, 10, vec![220], vec!["Sedan".into()])]);
/// # miner.mine_block(20, vec![Object::new(2, 20, vec![95], vec!["Van".into()])]);
/// # miner.mine_block(30, vec![Object::new(3, 30, vec![230], vec!["Sedan".into()])]);
/// # let mut light = LightClient::new(cfg.difficulty);
/// # for h in miner.headers() { light.sync_header(h).unwrap(); }
/// # let sp = miner.into_service_provider();
/// use vchain_core::client::WindowScan;
///
/// // Two overlapping windows over the same chain.
/// let queries: Vec<_> = [(0u64, 25u64), (15, 40)]
///     .iter()
///     .map(|&(ts, te)| {
///         Query { time_window: Some((ts, te)), ranges: vec![], keywords: vec![vec!["Sedan".into()]] }
///             .compile(cfg.domain_bits)
///     })
///     .collect();
/// let responses: Vec<_> = queries.iter().map(|q| sp.time_window_query(q)).collect();
///
/// let mut scan = WindowScan::new(queries, light.clone(), cfg);
/// for resp in &responses {
///     scan.verify_response(&acc, resp).unwrap();
/// }
/// // Both windows' disjointness proofs are still pending in ONE batch …
/// assert!(scan.pending_checks() > 0);
/// // … and finish() pays a single aggregated pairing flush for all of them.
/// let per_window = scan.finish(&acc).unwrap();
/// assert_eq!(per_window.len(), 2);
/// assert_eq!(per_window[0].len(), 1); // the t=10 Sedan
/// assert_eq!(per_window[1].len(), 1); // the t=30 Sedan
/// ```
pub struct WindowScan<A: Accumulator> {
    queries: Vec<CompiledQuery>,
    light: LightClient,
    cfg: MinerConfig,
    batch: DisjointBatch<A>,
    current: Option<WindowVerifier<'static, A>>,
    current_idx: usize,
    results: Vec<Vec<Object>>,
}

impl<A: Accumulator> WindowScan<A> {
    /// A scan over `queries`, one window per query, verified against
    /// `light`'s headers. The scan owns its copies so it can live on a
    /// worker thread (`'static`).
    pub fn new(queries: Vec<CompiledQuery>, light: LightClient, cfg: MinerConfig) -> Self {
        Self {
            queries,
            light,
            cfg,
            batch: DisjointBatch::new(),
            current: None,
            current_idx: 0,
            results: Vec::new(),
        }
    }

    /// Number of windows in the scan.
    pub fn windows(&self) -> usize {
        self.queries.len()
    }

    /// Deferred pairing checks accumulated so far across all closed and
    /// open windows — everything [`WindowScan::finish`] will flush at once.
    pub fn pending_checks(&self) -> usize {
        self.batch.len() + self.current.as_ref().map(WindowVerifier::pending_checks).unwrap_or(0)
    }

    fn open_current(&mut self) -> Result<&mut WindowVerifier<'static, A>, VerifyError> {
        if self.current.is_none() {
            let q = self
                .queries
                .get(self.current_idx)
                .ok_or(VerifyError::Malformed(WireError::NonCanonical {
                    what: "stream window index beyond the scan's queries",
                }))?
                .clone();
            self.current = Some(WindowVerifier::for_window(
                Cow::Owned(q),
                Cow::Owned(self.light.clone()),
                self.cfg,
            )?);
        }
        // The line above guarantees presence; spelled without unwrap to
        // honour this module's no-panic wall.
        self.current.as_mut().ok_or(VerifyError::PipelineLost)
    }

    /// Close the currently open window: run its completeness checks and
    /// fold its pairing checks into the shared batch.
    fn close_current(&mut self) -> Result<(), VerifyError> {
        self.open_current()?; // empty window still enforces completeness
        if let Some(v) = self.current.take() {
            self.results.push(v.finish_into(&mut self.batch)?);
        }
        self.current_idx += 1;
        Ok(())
    }

    /// Verify one streamed coverage entry belonging to window `window`
    /// (monotonically non-decreasing, as the stream format guarantees).
    pub fn entry(
        &mut self,
        acc: &A,
        window: usize,
        cov: &BlockCoverage<A>,
        block_results: &[Object],
    ) -> Result<(), VerifyError> {
        if window < self.current_idx || window >= self.queries.len() {
            return Err(VerifyError::Malformed(WireError::NonCanonical {
                what: "stream window index out of order",
            }));
        }
        while self.current_idx < window {
            self.close_current()?;
        }
        self.open_current()?.entry(acc, cov, block_results)
    }

    /// Verify a whole response as the scan's next window (the non-streamed
    /// flavour: same structural and hash checks as
    /// [`crate::verify::verify_response`], but the pairing checks join the
    /// shared cross-window batch instead of flushing per response).
    pub fn verify_response(
        &mut self,
        acc: &A,
        response: &QueryResponse<A>,
    ) -> Result<(), VerifyError> {
        let results_by_height: std::collections::BTreeMap<u64, &Vec<Object>> =
            response.results.iter().map(|(h, v)| (*h, v)).collect();
        if results_by_height.len() != response.results.len() {
            return Err(VerifyError::ResultIndexing { height: 0 });
        }
        let window = self.current_idx;
        static EMPTY: Vec<Object> = Vec::new();
        for cov in &response.coverage {
            let block_results = match cov {
                BlockCoverage::Block { height, .. } => {
                    results_by_height.get(height).copied().unwrap_or(&EMPTY)
                }
                BlockCoverage::Skip { .. } => &EMPTY,
            };
            self.entry(acc, window, cov, block_results)?;
        }
        // Close immediately so result-smuggling across heights is caught
        // with the window's own expected set.
        let expected = self.open_current()?.expected().clone();
        for h in results_by_height.keys() {
            if !expected.contains(h) {
                return Err(VerifyError::ResultIndexing { height: *h });
            }
        }
        self.close_current()
    }

    /// Close any remaining windows, flush the one shared pairing batch,
    /// and return each window's verified results. Until this returns `Ok`,
    /// no result of any window is trustworthy.
    pub fn finish(mut self, acc: &A) -> Result<Vec<Vec<Object>>, VerifyError> {
        while self.current_idx < self.queries.len() {
            self.close_current()?;
        }
        self.batch.flush(acc)?;
        Ok(self.results)
    }
}

enum Item<A: Accumulator> {
    Entry { window: usize, coverage: BlockCoverage<A>, results: Vec<Object>, bytes: usize },
}

struct Worker<A: Accumulator> {
    tx: mpsc::SyncSender<Item<A>>,
    handle: thread::JoinHandle<Result<Vec<Vec<Object>>, VerifyError>>,
}

enum Stage<A: Accumulator> {
    Inline(Box<WindowScan<A>>),
    Worker(Worker<A>),
}

/// The streamed verification pipeline: feeds transport chunks through the
/// chunked [`StreamDecoder`] and verifies coverage entries as they
/// complete, holding only one partial frame, the intern table, and a
/// bounded in-flight queue in memory.
///
/// ```
/// # use rand::rngs::StdRng;
/// # use rand::SeedableRng;
/// # use vchain_acc::{Acc2, Accumulator};
/// # use vchain_chain::{Difficulty, LightClient, Object};
/// # use vchain_core::miner::{IndexScheme, Miner, MinerConfig};
/// # use vchain_core::query::Query;
/// # let cfg = MinerConfig { scheme: IndexScheme::Both, skip_levels: 3, domain_bits: 8,
/// #                         difficulty: Difficulty(0), bloom_bits_per_key: 10 };
/// # let acc = Acc2::keygen(256, &mut StdRng::seed_from_u64(7));
/// # let mut miner = Miner::new(cfg, acc.clone());
/// # miner.mine_block(10, vec![Object::new(1, 10, vec![220], vec!["Sedan".into()])]);
/// # miner.mine_block(20, vec![Object::new(2, 20, vec![95], vec!["Van".into()])]);
/// # miner.mine_block(30, vec![Object::new(3, 30, vec![230], vec!["Sedan".into()])]);
/// # let mut light = LightClient::new(cfg.difficulty);
/// # for h in miner.headers() { light.sync_header(h).unwrap(); }
/// # let sp = miner.into_service_provider();
/// # let q = Query { time_window: Some((0, 40)), ranges: vec![], keywords: vec![vec!["Sedan".into()]] }
/// #     .compile(cfg.domain_bits);
/// use vchain_core::client::{PipelineMode, StreamVerifier};
/// use vchain_core::wire::encode_response_stream;
///
/// // The SP frames the response; the client verifies it as it arrives,
/// // with decode and verify overlapped on a worker thread.
/// let stream = encode_response_stream(&sp.time_window_query(&q));
/// let mut v = StreamVerifier::for_query(q, light.clone(), cfg, acc.clone(), PipelineMode::Worker);
/// for chunk in stream.chunks(64) {
///     v.feed(chunk).unwrap();
/// }
/// let (windows, stats) = v.finish().unwrap();
/// assert_eq!(windows.len(), 1);
/// assert_eq!(windows[0].len(), 2); // both Sedans, verified
/// assert_eq!(stats.vo_bytes, stream.len());
/// ```
///
/// The stats expose the buffer-budget the pipeline actually used — for a
/// multi-block stream the peak stays well under the full VO size:
///
/// ```
/// # use rand::rngs::StdRng;
/// # use rand::SeedableRng;
/// # use vchain_acc::{Acc2, Accumulator};
/// # use vchain_chain::{Difficulty, LightClient, Object};
/// # use vchain_core::miner::{IndexScheme, Miner, MinerConfig};
/// # use vchain_core::query::Query;
/// # let cfg = MinerConfig { scheme: IndexScheme::Both, skip_levels: 3, domain_bits: 8,
/// #                         difficulty: Difficulty(0), bloom_bits_per_key: 10 };
/// # let acc = Acc2::keygen(256, &mut StdRng::seed_from_u64(7));
/// # let mut miner = Miner::new(cfg, acc.clone());
/// # for h in 0..6u64 {
/// #     miner.mine_block(10 * (h + 1), vec![Object::new(h + 1, 10 * (h + 1), vec![h], vec!["Sedan".into()])]);
/// # }
/// # let mut light = LightClient::new(cfg.difficulty);
/// # for h in miner.headers() { light.sync_header(h).unwrap(); }
/// # let sp = miner.into_service_provider();
/// # let q = Query { time_window: Some((0, 100)), ranges: vec![], keywords: vec![vec!["Sedan".into()]] }
/// #     .compile(cfg.domain_bits);
/// use vchain_core::client::{PipelineMode, StreamVerifier};
/// use vchain_core::wire::encode_response_stream;
///
/// let stream = encode_response_stream(&sp.time_window_query(&q));
/// let mut v = StreamVerifier::for_query(q, light.clone(), cfg, acc.clone(), PipelineMode::Inline);
/// for chunk in stream.chunks(128) {
///     v.feed(chunk).unwrap();
/// }
/// let (_windows, stats) = v.finish().unwrap();
/// // Bounded buffering: the client never held the whole VO.
/// assert!(stats.peak_buffer_bytes < stats.vo_bytes);
/// assert_eq!(stats.entries, 6);
/// ```
pub struct StreamVerifier<A: Accumulator> {
    decoder: StreamDecoder<A>,
    acc: A,
    stage: Option<Stage<A>>,
    inflight: Arc<AtomicUsize>,
    expected_windows: usize,
    peak_buffer: usize,
    error: Option<VerifyError>,
}

impl<A: Accumulator> StreamVerifier<A> {
    /// A pipeline verifying a multi-window scan: one query per window, in
    /// stream order.
    pub fn new(
        queries: Vec<CompiledQuery>,
        light: LightClient,
        cfg: MinerConfig,
        acc: A,
        mode: PipelineMode,
    ) -> Self {
        let expected_windows = queries.len();
        let inflight = Arc::new(AtomicUsize::new(0));
        let stage = match mode {
            PipelineMode::Inline => Stage::Inline(Box::new(WindowScan::new(queries, light, cfg))),
            PipelineMode::Worker => match spawn_worker(
                queries.clone(),
                light.clone(),
                cfg,
                acc.clone(),
                Arc::clone(&inflight),
            ) {
                Some(w) => Stage::Worker(w),
                // Spawn failure (resource exhaustion) degrades to inline
                // verification rather than failing the query.
                None => Stage::Inline(Box::new(WindowScan::new(queries, light, cfg))),
            },
        };
        Self {
            decoder: StreamDecoder::new(),
            acc,
            stage: Some(stage),
            inflight,
            expected_windows,
            peak_buffer: 0,
            error: None,
        }
    }

    /// [`StreamVerifier::new`] for the common single-window case.
    pub fn for_query(
        q: CompiledQuery,
        light: LightClient,
        cfg: MinerConfig,
        acc: A,
        mode: PipelineMode,
    ) -> Self {
        Self::new(vec![q], light, cfg, acc, mode)
    }

    fn fail(&mut self, e: VerifyError) -> VerifyError {
        // Capture the worker's real error if it died first.
        let e = match (&e, self.stage.take()) {
            (VerifyError::PipelineLost, Some(Stage::Worker(w))) => join_worker(w),
            (_, stage) => {
                self.stage = stage;
                e
            }
        };
        self.error = Some(e.clone());
        e
    }

    /// Feed the next transport chunk. Errors are terminal: the first
    /// rejection (structural or cryptographic) poisons the pipeline and
    /// every later call returns it again.
    pub fn feed(&mut self, chunk: &[u8]) -> Result<(), VerifyError> {
        if let Some(e) = self.error.clone() {
            return Err(e);
        }
        let events = match self.decoder.feed(&self.acc, chunk) {
            Ok(ev) => ev,
            Err(e) => return Err(self.fail(VerifyError::Malformed(e))),
        };
        for ev in events {
            match ev {
                StreamEvent::Header { windows, .. } => {
                    if windows.len() != self.expected_windows {
                        return Err(self.fail(VerifyError::Malformed(WireError::NonCanonical {
                            what: "stream window count differs from the scan's queries",
                        })));
                    }
                }
                StreamEvent::Entry { window, coverage, results, wire_bytes } => {
                    match self.stage.as_mut() {
                        Some(Stage::Inline(scan)) => {
                            if let Err(e) = scan.entry(&self.acc, window, &coverage, &results) {
                                return Err(self.fail(e));
                            }
                        }
                        Some(Stage::Worker(worker)) => {
                            self.inflight.fetch_add(wire_bytes, Ordering::Relaxed);
                            let item = Item::Entry { window, coverage, results, bytes: wire_bytes };
                            if worker.tx.send(item).is_err() {
                                // Receiver gone: the worker stopped on an
                                // error — join it to surface the real one.
                                return Err(self.fail(VerifyError::PipelineLost));
                            }
                        }
                        None => return Err(self.fail(VerifyError::PipelineLost)),
                    }
                }
            }
            let buffered = self
                .decoder
                .buffered()
                .saturating_add(self.decoder.table_bytes())
                .saturating_add(self.inflight.load(Ordering::Relaxed));
            self.peak_buffer = self.peak_buffer.max(buffered);
        }
        Ok(())
    }

    /// Declare the stream over: checks stream-level completeness, waits for
    /// the verify stage, flushes the one cross-window pairing batch, and
    /// returns each window's verified results plus the pipeline counters.
    pub fn finish(mut self) -> Result<(Vec<Vec<Object>>, StreamStats), VerifyError> {
        if let Some(e) = self.error.clone() {
            return Err(e);
        }
        let stats = StreamStats {
            vo_bytes: self.decoder.bytes_fed(),
            peak_buffer_bytes: self.peak_buffer.max(self.decoder.peak_buffered()),
            table_entries: self.decoder.table_entries(),
            entries: self.decoder.entries_done(),
            windows: self.expected_windows,
        };
        std::mem::take(&mut self.decoder).finish().map_err(VerifyError::Malformed)?;
        let results = match self.stage.take() {
            Some(Stage::Inline(scan)) => scan.finish(&self.acc)?,
            Some(Stage::Worker(worker)) => {
                let Worker { tx, handle } = worker;
                drop(tx); // hang up: the worker drains the queue and finishes
                match handle.join() {
                    Ok(r) => r?,
                    Err(_) => return Err(VerifyError::PipelineLost),
                }
            }
            None => return Err(VerifyError::PipelineLost),
        };
        Ok((results, stats))
    }
}

fn spawn_worker<A: Accumulator>(
    queries: Vec<CompiledQuery>,
    light: LightClient,
    cfg: MinerConfig,
    acc: A,
    inflight: Arc<AtomicUsize>,
) -> Option<Worker<A>> {
    let (tx, rx) = mpsc::sync_channel::<Item<A>>(PIPELINE_DEPTH);
    let handle = thread::Builder::new()
        .name("vchain-stream-verify".into())
        .spawn(move || {
            let mut scan = WindowScan::new(queries, light, cfg);
            while let Ok(item) = rx.recv() {
                let Item::Entry { window, coverage, results, bytes } = item;
                let outcome = scan.entry(&acc, window, &coverage, &results);
                inflight.fetch_sub(bytes, Ordering::Relaxed);
                outcome?;
            }
            scan.finish(&acc)
        })
        .ok()?;
    Some(Worker { tx, handle })
}

/// Retrieve the error a dead worker actually stopped on; a worker that
/// panicked or ended without one is a lost pipeline.
fn join_worker<A: Accumulator>(w: Worker<A>) -> VerifyError {
    drop(w.tx);
    match w.handle.join() {
        Ok(Err(e)) => e,
        Ok(Ok(_)) | Err(_) => VerifyError::PipelineLost,
    }
}
