//! Per-block Bloom filters over object attribute sets.
//!
//! The subscription engine's inverted match path ([`crate::subindex`]) asks
//! one question per *distinct subscribed literal* per block: "does any object
//! in this block carry this attribute?" The authoritative answer is a lookup
//! in the block's root multiset, but at 10⁵–10⁶ standing queries the probe
//! set is large and most probes are negative. An [`AttributeBloom`] built by
//! the miner over the block's distinct attribute elements answers the
//! negatives in a couple of cache lines each, so non-matching blocks skip
//! candidate resolution almost entirely.
//!
//! # Hashing
//!
//! Classic seeded double hashing (Kirsch–Mitzenmacher): a single
//! domain-separated `vchain-hash` digest of the element's canonical bytes is
//! split into two 64-bit lanes `(h1, h2)`, and probe `i` touches bit
//! `(h1 + i·h2) mod m`. `h2` is forced odd so the probe sequence never
//! degenerates to a single bit. Deriving both lanes from one SHA-256 call
//! keeps filter construction at one compression function per key, and the
//! `(h1, h2)` pair — not the element — is what the subscription index caches
//! per subscribed literal, so steady-state probing does no hashing at all.
//!
//! # False-positive budget
//!
//! With `n` keys, `m = n · bits_per_key` bits and `k` probes, the classic
//! estimate is `FPR ≈ (1 − e^{−kn/m})^k`, minimized at `k = ln 2 ·
//! bits_per_key`. The default of [`DEFAULT_BITS_PER_KEY`] = 10 bits/key
//! gives `k = 7` and an FPR budget of **≈ 0.82 %** — and the property suite
//! (`tests/bloom_props.rs`) holds the empirical rate within 2× of that
//! budget. Tuning `MinerConfig::bloom_bits_per_key` trades ADS bytes for
//! probe precision.
//!
//! # Why false positives are safe
//!
//! A positive probe is always *confirmed* against the block's exact root
//! multiset before it influences classification, so a false positive costs
//! one `BTreeMap` lookup and nothing else. The filter can therefore never
//! cause a wrong update — only wasted work. A *corrupted* filter (false
//! negatives — impossible for an honest one, asserted by the property suite)
//! can misclassify a query, but every misclassification is caught when the
//! refutation proof is attempted against the exact multiset and fails; the
//! engine then re-walks the affected queries on the naive path
//! (`crates/core/src/subscribe.rs`), keeping output byte-identical. The
//! fault-injection suite drives exactly this with [`crate::Adversary`]
//! mutations.

use vchain_hash::hash_concat;

use crate::element::Element;

/// Default filter density, in bits per inserted key (FPR budget ≈ 0.82 %).
pub const DEFAULT_BITS_PER_KEY: u8 = 10;

/// The seed every miner-built per-block filter uses. A fixed, public seed is
/// what lets the subscription index precompute one [`BloomKey`] per
/// subscribed literal and reuse it against every block's filter.
pub const BLOOM_SEED: u64 = 0xB100_F17E;

/// The two double-hashing lanes of one key, derived once per element.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BloomKey {
    /// Base probe position.
    pub h1: u64,
    /// Probe stride (always odd).
    pub h2: u64,
}

impl BloomKey {
    /// Derive the probe lanes for raw key bytes under `seed`.
    pub fn from_bytes(seed: u64, key: &[u8]) -> Self {
        let d = hash_concat(&[b"vchain/bloom", &seed.to_le_bytes(), key]);
        let b = d.as_bytes();
        let mut lane = [0u8; 8];
        lane.copy_from_slice(&b[0..8]);
        let h1 = u64::from_le_bytes(lane);
        lane.copy_from_slice(&b[8..16]);
        let h2 = u64::from_le_bytes(lane) | 1;
        Self { h1, h2 }
    }

    /// Derive the probe lanes for a set element (via its canonical bytes, so
    /// the lanes are stable across processes, unlike interned ids).
    pub fn from_element(seed: u64, e: &Element) -> Self {
        Self::from_bytes(seed, &e.canonical_bytes())
    }
}

/// A per-block Bloom filter over the block's distinct attribute elements.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttributeBloom {
    seed: u64,
    k: u8,
    keys: u32,
    words: Vec<u64>,
}

impl AttributeBloom {
    /// Optimal probe count for a density: `k = round(ln 2 · bits_per_key)`,
    /// at least 1.
    pub fn probes_for(bits_per_key: u8) -> u8 {
        let k = (f64::from(bits_per_key) * core::f64::consts::LN_2).round() as u8;
        k.max(1)
    }

    /// Build a filter over pre-hashed keys at the given density.
    pub fn build(seed: u64, bits_per_key: u8, keys: &[BloomKey]) -> Self {
        let bits = keys.len().saturating_mul(bits_per_key.max(1) as usize).max(64);
        let words = vec![0u64; bits.div_ceil(64)];
        let mut filter = Self {
            seed,
            k: Self::probes_for(bits_per_key),
            keys: u32::try_from(keys.len()).unwrap_or(u32::MAX),
            words,
        };
        for key in keys {
            filter.insert(key);
        }
        filter
    }

    /// Build a filter over a block's distinct attribute elements.
    pub fn from_elements(
        seed: u64,
        bits_per_key: u8,
        elements: impl Iterator<Item = Element>,
    ) -> Self {
        let keys: Vec<BloomKey> = elements.map(|e| BloomKey::from_element(seed, &e)).collect();
        Self::build(seed, bits_per_key, &keys)
    }

    fn insert(&mut self, key: &BloomKey) {
        let m = self.bit_len();
        for i in 0..u64::from(self.k) {
            let bit = (key.h1.wrapping_add(i.wrapping_mul(key.h2)) % m) as usize;
            self.words[bit / 64] |= 1u64 << (bit % 64);
        }
    }

    /// Probe with a precomputed key. `true` means "possibly present" — the
    /// caller must confirm against the exact multiset before acting on it.
    pub fn contains_key(&self, key: &BloomKey) -> bool {
        let m = self.bit_len();
        (0..u64::from(self.k)).all(|i| {
            let bit = (key.h1.wrapping_add(i.wrapping_mul(key.h2)) % m) as usize;
            self.words[bit / 64] & (1u64 << (bit % 64)) != 0
        })
    }

    /// Probe with an element (hashes it first; the index caches keys instead).
    pub fn contains_element(&self, e: &Element) -> bool {
        self.contains_key(&BloomKey::from_element(self.seed, e))
    }

    /// The seed the filter was built (and must be probed) under.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of probe positions per key.
    pub fn probes(&self) -> u8 {
        self.k
    }

    /// Number of keys inserted at construction.
    pub fn key_count(&self) -> u32 {
        self.keys
    }

    /// Filter width in bits (a multiple of 64).
    pub fn bit_len(&self) -> u64 {
        (self.words.len() as u64) * 64
    }

    /// The backing bit words (for wire encoding and size accounting).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reassemble a filter from decoded wire parts. `None` when the parts
    /// are structurally invalid (no probes or an empty bit array).
    pub fn from_parts(seed: u64, k: u8, keys: u32, words: Vec<u64>) -> Option<Self> {
        if k == 0 || words.is_empty() {
            return None;
        }
        Some(Self { seed, k, keys, words })
    }

    /// Nominal wire size in bytes (seed + probes + key count + words).
    pub fn size_bytes(&self) -> usize {
        8 + 1 + 4 + 4 + 8 * self.words.len()
    }

    /// Mutable access to the backing words — the fault-injection surface
    /// ([`crate::Adversary::corrupt_bloom`]); a lying filter must only ever
    /// cost the SP work, never correctness.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(seed: u64, n: usize) -> Vec<BloomKey> {
        (0..n).map(|i| BloomKey::from_bytes(seed, format!("key-{i}").as_bytes())).collect()
    }

    #[test]
    fn no_false_negatives_basic() {
        let ks = keys(BLOOM_SEED, 500);
        let f = AttributeBloom::build(BLOOM_SEED, 10, &ks);
        for k in &ks {
            assert!(f.contains_key(k));
        }
    }

    #[test]
    fn stride_is_odd_and_lanes_are_seeded() {
        let a = BloomKey::from_bytes(1, b"x");
        let b = BloomKey::from_bytes(2, b"x");
        assert_eq!(a.h2 % 2, 1);
        assert_ne!((a.h1, a.h2), (b.h1, b.h2));
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let f = AttributeBloom::build(BLOOM_SEED, 10, &[]);
        assert_eq!(f.bit_len(), 64);
        for k in keys(BLOOM_SEED, 64) {
            assert!(!f.contains_key(&k));
        }
    }

    #[test]
    fn probe_count_tracks_density() {
        assert_eq!(AttributeBloom::probes_for(10), 7);
        assert_eq!(AttributeBloom::probes_for(8), 6);
        assert_eq!(AttributeBloom::probes_for(1), 1);
    }

    #[test]
    fn element_hashing_uses_canonical_bytes() {
        // A keyword that *prints* like a prefix must hash differently.
        let kw = Element::keyword("101*_0");
        let pf = Element::Prefix { dim: 0, len: 3, bits: 0b101 };
        assert_ne!(BloomKey::from_element(7, &kw), BloomKey::from_element(7, &pf));
    }

    #[test]
    fn from_parts_validates() {
        assert!(AttributeBloom::from_parts(0, 0, 0, vec![0]).is_none());
        assert!(AttributeBloom::from_parts(0, 3, 0, Vec::new()).is_none());
        assert!(AttributeBloom::from_parts(0, 3, 1, vec![0, 1]).is_some());
    }
}
