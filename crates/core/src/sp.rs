//! The service provider role (paper Fig. 3): answers time-window queries
//! with `⟨R, VO⟩`, using the intra-block index (Algorithm 3) and the
//! inter-block skip list (Algorithm 4).
//!
//! The proving pipeline is cache-backed and parallel:
//!
//! * every inline mismatch proof and every skip-entry proof goes through a
//!   window-level [`ProofCache`] keyed by `(AttDigest, clause)`, so
//!   overlapping windows — the common shape of dashboard/scan workloads —
//!   re-prove nothing they have proven before;
//! * [`ServiceProvider::time_window_queries`] answers a batch of windows on
//!   all available cores, sharing that cache across the threads.

use vchain_acc::Accumulator;
use vchain_chain::ChainStore;

use crate::cache::ProofCache;
use crate::miner::{IndexScheme, IndexedBlock, MinerConfig};
use crate::query::CompiledQuery;
use crate::vo::{BlockCoverage, ClauseRef, QueryResponse};

/// A full node serving verifiable queries.
pub struct ServiceProvider<A: Accumulator> {
    /// The public system parameters this chain was mined under.
    pub cfg: MinerConfig,
    /// The accumulator scheme handle (public key).
    pub acc: A,
    store: ChainStore,
    indexed: Vec<IndexedBlock<A>>,
    history: Vec<crate::inter::BlockSummary<A>>,
    cache: ProofCache<A>,
    /// §6.3 online batch verification (effective with Construction 2 only).
    pub batch_verify: bool,
}

impl<A: Accumulator> ServiceProvider<A> {
    pub(crate) fn new(
        cfg: MinerConfig,
        acc: A,
        store: ChainStore,
        indexed: Vec<IndexedBlock<A>>,
        history: Vec<crate::inter::BlockSummary<A>>,
    ) -> Self {
        let batch_verify = acc.supports_aggregation();
        Self { cfg, acc, store, indexed, history, cache: ProofCache::default(), batch_verify }
    }

    /// The replicated chain.
    pub fn store(&self) -> &ChainStore {
        &self.store
    }

    /// The per-block authenticated indexes.
    pub fn indexed(&self) -> &[IndexedBlock<A>] {
        &self.indexed
    }

    /// The per-block summaries (for subscription engines).
    pub fn history(&self) -> &[crate::inter::BlockSummary<A>] {
        &self.history
    }

    /// Enable / disable §6.3 grouped proofs in the VOs this SP produces.
    pub fn with_batch_verify(mut self, enabled: bool) -> Self {
        self.batch_verify = enabled && self.acc.supports_aggregation();
        self
    }

    /// Replace the proof cache with one of the given capacity (entries).
    pub fn with_proof_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache = ProofCache::new(capacity);
        self
    }

    /// The window-level proof cache (inspect its [`stats`] to observe warm
    /// vs cold behaviour).
    ///
    /// [`stats`]: ProofCache::stats
    pub fn proof_cache(&self) -> &ProofCache<A> {
        &self.cache
    }

    /// Answer a time-window query (paper §3; Algorithms 3 & 4).
    ///
    /// The window is processed from the newest in-window block backwards.
    /// Under the `Both` scheme, after each processed block the SP tries the
    /// largest applicable skip whose summary mismatches the query, covering
    /// a whole run of preceding blocks with one proof.
    pub fn time_window_query(&self, q: &CompiledQuery) -> QueryResponse<A> {
        let (ts, te) = q.time_window.expect("time-window query requires a window");
        let heights = self.store.heights_in_window(ts, te);
        let mut results = Vec::new();
        let mut coverage = Vec::new();
        let Some(&start) = heights.first() else {
            return QueryResponse { results, coverage };
        };
        let end = *heights.last().expect("non-empty");

        let mut h = end as i64;
        while h >= start as i64 {
            let height = h as u64;
            // 1. process this block individually
            let block = self.store.block(height).expect("height in range");
            let idx = &self.indexed[height as usize];
            let (block_results, vo) = idx.tree.query_cached(
                &block.objects,
                q,
                &self.acc,
                self.batch_verify,
                Some(&self.cache),
            );
            if !block_results.is_empty() {
                results.push((height, block_results));
            }
            coverage.push(BlockCoverage::Block { height, vo });
            h -= 1;

            // 2. greedily skip preceding mismatching runs
            if self.cfg.scheme == IndexScheme::Both {
                loop {
                    if h < start as i64 {
                        break;
                    }
                    let cur = (h + 1) as u64; // block whose skip list we use
                    let Some(jump) = self.try_skip(cur, start, q) else { break };
                    coverage.push(jump.0);
                    h -= jump.1 as i64;
                }
            }
        }
        QueryResponse { results, coverage }
    }

    /// Answer many time-window queries in parallel — the multi-window scan
    /// path. Queries are chunked over the available cores with
    /// `std::thread::scope`; all threads share this SP's proof cache, so a
    /// proof any window derives is immediately warm for every other window
    /// that overlaps it. Responses come back in input order.
    pub fn time_window_queries(&self, queries: &[CompiledQuery]) -> Vec<QueryResponse<A>> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(queries.len().max(1));
        if threads <= 1 || queries.len() <= 1 {
            return queries.iter().map(|q| self.time_window_query(q)).collect();
        }
        let chunk = queries.len().div_ceil(threads);
        let mut out: Vec<Option<QueryResponse<A>>> = (0..queries.len()).map(|_| None).collect();
        std::thread::scope(|s| {
            for (qs, os) in queries.chunks(chunk).zip(out.chunks_mut(chunk)) {
                s.spawn(move || {
                    for (q, o) in qs.iter().zip(os.iter_mut()) {
                        *o = Some(self.time_window_query(q));
                    }
                });
            }
        });
        out.into_iter().map(|o| o.expect("every chunk slot is written")).collect()
    }

    /// Try the largest skip at block `cur` covering `cur-distance ..= cur-1`
    /// entirely inside `[start, cur-1]` whose summary mismatches the query.
    fn try_skip(&self, cur: u64, start: u64, q: &CompiledQuery) -> Option<(BlockCoverage<A>, u64)> {
        let skiplist = &self.indexed[cur as usize].skiplist;
        for entry in skiplist.entries.iter().rev() {
            if entry.distance > cur || cur - entry.distance < start {
                continue; // would overshoot the window start
            }
            if let Some(clause_idx) = q.cnf.find_disjoint_clause(&entry.ms) {
                let clause_ms = q.cnf.0[clause_idx].to_multiset();
                // Overlapping windows replay the same (skip entry, clause)
                // pairs — exactly what the cache is for.
                let proof = self
                    .cache
                    .get_or_prove(&self.acc, &entry.att, &entry.ms, &clause_ms)
                    .expect("disjointness established");
                let siblings = skiplist
                    .entries
                    .iter()
                    .filter(|e| e.distance != entry.distance)
                    .map(|e| (e.distance, e.level_hash()))
                    .collect();
                return Some((
                    BlockCoverage::Skip {
                        height: cur,
                        distance: entry.distance,
                        att: entry.att.clone(),
                        proof,
                        clause: ClauseRef::Index(clause_idx as u16),
                        siblings,
                    },
                    entry.distance,
                ));
            }
        }
        None
    }
}
