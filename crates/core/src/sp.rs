//! The service provider role (paper Fig. 3): answers time-window queries
//! with `⟨R, VO⟩`, using the intra-block index (Algorithm 3) and the
//! inter-block skip list (Algorithm 4).

use vchain_acc::Accumulator;
use vchain_chain::ChainStore;

use crate::miner::{IndexScheme, IndexedBlock, MinerConfig};
use crate::query::CompiledQuery;
use crate::vo::{BlockCoverage, ClauseRef, QueryResponse};

/// A full node serving verifiable queries.
pub struct ServiceProvider<A: Accumulator> {
    pub cfg: MinerConfig,
    pub acc: A,
    store: ChainStore,
    indexed: Vec<IndexedBlock<A>>,
    history: Vec<crate::inter::BlockSummary<A>>,
    /// §6.3 online batch verification (effective with Construction 2 only).
    pub batch_verify: bool,
}

impl<A: Accumulator> ServiceProvider<A> {
    pub(crate) fn new(
        cfg: MinerConfig,
        acc: A,
        store: ChainStore,
        indexed: Vec<IndexedBlock<A>>,
        history: Vec<crate::inter::BlockSummary<A>>,
    ) -> Self {
        let batch_verify = acc.supports_aggregation();
        Self { cfg, acc, store, indexed, history, batch_verify }
    }

    pub fn store(&self) -> &ChainStore {
        &self.store
    }

    pub fn indexed(&self) -> &[IndexedBlock<A>] {
        &self.indexed
    }

    pub fn history(&self) -> &[crate::inter::BlockSummary<A>] {
        &self.history
    }

    pub fn with_batch_verify(mut self, enabled: bool) -> Self {
        self.batch_verify = enabled && self.acc.supports_aggregation();
        self
    }

    /// Answer a time-window query (paper §3; Algorithms 3 & 4).
    ///
    /// The window is processed from the newest in-window block backwards.
    /// Under the `Both` scheme, after each processed block the SP tries the
    /// largest applicable skip whose summary mismatches the query, covering
    /// a whole run of preceding blocks with one proof.
    pub fn time_window_query(&self, q: &CompiledQuery) -> QueryResponse<A> {
        let (ts, te) = q.time_window.expect("time-window query requires a window");
        let heights = self.store.heights_in_window(ts, te);
        let mut results = Vec::new();
        let mut coverage = Vec::new();
        let Some(&start) = heights.first() else {
            return QueryResponse { results, coverage };
        };
        let end = *heights.last().expect("non-empty");

        let mut h = end as i64;
        while h >= start as i64 {
            let height = h as u64;
            // 1. process this block individually
            let block = self.store.block(height).expect("height in range");
            let idx = &self.indexed[height as usize];
            let (block_results, vo) =
                idx.tree.query(&block.objects, q, &self.acc, self.batch_verify);
            if !block_results.is_empty() {
                results.push((height, block_results));
            }
            coverage.push(BlockCoverage::Block { height, vo });
            h -= 1;

            // 2. greedily skip preceding mismatching runs
            if self.cfg.scheme == IndexScheme::Both {
                loop {
                    if h < start as i64 {
                        break;
                    }
                    let cur = (h + 1) as u64; // block whose skip list we use
                    let Some(jump) = self.try_skip(cur, start, q) else { break };
                    coverage.push(jump.0);
                    h -= jump.1 as i64;
                }
            }
        }
        QueryResponse { results, coverage }
    }

    /// Try the largest skip at block `cur` covering `cur-distance ..= cur-1`
    /// entirely inside `[start, cur-1]` whose summary mismatches the query.
    fn try_skip(&self, cur: u64, start: u64, q: &CompiledQuery) -> Option<(BlockCoverage<A>, u64)> {
        let skiplist = &self.indexed[cur as usize].skiplist;
        for entry in skiplist.entries.iter().rev() {
            if entry.distance > cur || cur - entry.distance < start {
                continue; // would overshoot the window start
            }
            if let Some(clause_idx) = q.cnf.find_disjoint_clause(&entry.ms) {
                let clause_ms = q.cnf.0[clause_idx].to_multiset();
                let proof = self
                    .acc
                    .prove_disjoint(&entry.ms, &clause_ms)
                    .expect("disjointness established");
                let siblings = skiplist
                    .entries
                    .iter()
                    .filter(|e| e.distance != entry.distance)
                    .map(|e| (e.distance, e.level_hash()))
                    .collect();
                return Some((
                    BlockCoverage::Skip {
                        height: cur,
                        distance: entry.distance,
                        att: entry.att.clone(),
                        proof,
                        clause: ClauseRef::Index(clause_idx as u16),
                        siblings,
                    },
                    entry.distance,
                ));
            }
        }
        None
    }
}
