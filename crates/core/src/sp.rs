//! The service provider role (paper Fig. 3): answers time-window queries
//! with `⟨R, VO⟩`, using the intra-block index (Algorithm 3) and the
//! inter-block skip list (Algorithm 4).
//!
//! The proving pipeline is cache-backed and parallel:
//!
//! * every inline mismatch proof and every skip-entry proof goes through a
//!   window-level [`ProofCache`] keyed by `(AttDigest, clause)`, so
//!   overlapping windows — the common shape of dashboard/scan workloads —
//!   re-prove nothing they have proven before;
//! * [`ServiceProvider::time_window_queries`] answers a batch of windows on
//!   all available cores, sharing that cache across the threads.

use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use vchain_acc::{AccElem, Accumulator};
use vchain_chain::ChainStore;
use vchain_hash::{hash_domain, Digest};

use crate::cache::{CacheKey, CacheStats, ProofCache};
use crate::miner::{IndexScheme, IndexedBlock, MinerConfig};
use crate::query::CompiledQuery;
use crate::store::{LogStore, RecordKey, RecoveryReport, StoreError, StoreRecord};
use crate::vo::{BlockCoverage, ClauseRef, QueryResponse};

/// A full node serving verifiable queries.
pub struct ServiceProvider<A: Accumulator> {
    /// The public system parameters this chain was mined under.
    pub cfg: MinerConfig,
    /// The accumulator scheme handle (public key).
    pub acc: A,
    store: ChainStore,
    indexed: Vec<IndexedBlock<A>>,
    history: Vec<crate::inter::BlockSummary<A>>,
    cache: ProofCache<A>,
    /// §6.3 online batch verification (effective with Construction 2 only).
    pub batch_verify: bool,
}

impl<A: Accumulator> ServiceProvider<A> {
    pub(crate) fn new(
        cfg: MinerConfig,
        acc: A,
        store: ChainStore,
        indexed: Vec<IndexedBlock<A>>,
        history: Vec<crate::inter::BlockSummary<A>>,
    ) -> Self {
        let batch_verify = acc.supports_aggregation();
        Self { cfg, acc, store, indexed, history, cache: ProofCache::default(), batch_verify }
    }

    /// The replicated chain.
    pub fn store(&self) -> &ChainStore {
        &self.store
    }

    /// The per-block authenticated indexes.
    pub fn indexed(&self) -> &[IndexedBlock<A>] {
        &self.indexed
    }

    /// The per-block summaries (for subscription engines).
    pub fn history(&self) -> &[crate::inter::BlockSummary<A>] {
        &self.history
    }

    /// Enable / disable §6.3 grouped proofs in the VOs this SP produces.
    pub fn with_batch_verify(mut self, enabled: bool) -> Self {
        self.batch_verify = enabled && self.acc.supports_aggregation();
        self
    }

    /// Replace the proof cache with one of the given capacity (entries).
    pub fn with_proof_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache = ProofCache::new(capacity);
        self
    }

    /// The window-level proof cache (inspect its [`stats`] to observe warm
    /// vs cold behaviour).
    ///
    /// [`stats`]: ProofCache::stats
    pub fn proof_cache(&self) -> &ProofCache<A> {
        &self.cache
    }

    /// Answer a time-window query (paper §3; Algorithms 3 & 4).
    ///
    /// The window is processed from the newest in-window block backwards.
    /// Under the `Both` scheme, after each processed block the SP tries the
    /// largest applicable skip whose summary mismatches the query, covering
    /// a whole run of preceding blocks with one proof.
    pub fn time_window_query(&self, q: &CompiledQuery) -> QueryResponse<A> {
        self.time_window_query_with(q, &self.cache, None)
    }

    /// [`ServiceProvider::time_window_query`] against an *external* proof
    /// cache and optional persisted-witness table — the form the sharded
    /// serving layer uses, where each shard owns its cache and all shards
    /// share one read-only [`WitnessTable`]. The response is byte-identical
    /// regardless of which cache is supplied or how warm it is: proofs are
    /// deterministic functions of `(X₁, clause)`.
    pub fn time_window_query_with(
        &self,
        q: &CompiledQuery,
        cache: &ProofCache<A>,
        witnesses: Option<&WitnessTable>,
    ) -> QueryResponse<A> {
        let (ts, te) = q.time_window.expect("time-window query requires a window");
        let heights = self.store.heights_in_window(ts, te);
        let mut results = Vec::new();
        let mut coverage = Vec::new();
        let Some(&start) = heights.first() else {
            return QueryResponse { results, coverage };
        };
        let end = *heights.last().expect("non-empty");

        let mut h = end as i64;
        while h >= start as i64 {
            let height = h as u64;
            // 1. process this block individually
            let block = self.store.block(height).expect("height in range");
            let idx = &self.indexed[height as usize];
            let (block_results, vo) =
                idx.tree.query_cached(&block.objects, q, &self.acc, self.batch_verify, Some(cache));
            if !block_results.is_empty() {
                results.push((height, block_results));
            }
            coverage.push(BlockCoverage::Block { height, vo });
            h -= 1;

            // 2. greedily skip preceding mismatching runs
            if self.cfg.scheme == IndexScheme::Both {
                loop {
                    if h < start as i64 {
                        break;
                    }
                    let cur = (h + 1) as u64; // block whose skip list we use
                    let Some(jump) = self.try_skip(cur, start, q, cache, witnesses) else {
                        break;
                    };
                    coverage.push(jump.0);
                    h -= jump.1 as i64;
                }
            }
        }
        QueryResponse { results, coverage }
    }

    /// Answer many time-window queries in parallel — the multi-window scan
    /// path. Queries are chunked over the available cores with
    /// `std::thread::scope`; all threads share this SP's proof cache, so a
    /// proof any window derives is immediately warm for every other window
    /// that overlaps it. Responses come back in input order.
    pub fn time_window_queries(&self, queries: &[CompiledQuery]) -> Vec<QueryResponse<A>> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(queries.len().max(1));
        if threads <= 1 || queries.len() <= 1 {
            return queries.iter().map(|q| self.time_window_query(q)).collect();
        }
        let chunk = queries.len().div_ceil(threads);
        let mut out: Vec<Option<QueryResponse<A>>> = (0..queries.len()).map(|_| None).collect();
        std::thread::scope(|s| {
            for (qs, os) in queries.chunks(chunk).zip(out.chunks_mut(chunk)) {
                s.spawn(move || {
                    for (q, o) in qs.iter().zip(os.iter_mut()) {
                        *o = Some(self.time_window_query(q));
                    }
                });
            }
        });
        out.into_iter().map(|o| o.expect("every chunk slot is written")).collect()
    }

    /// Answer a multi-window scan and frame it for streamed delivery: the
    /// responses of [`ServiceProvider::time_window_queries`] serialized by
    /// [`crate::wire::encode_scan_frames`] — one shared v2 intern table in
    /// the header frame, then one frame per coverage entry, ready for a
    /// [`crate::client::StreamVerifier`] on the other end.
    pub fn time_window_scan_stream(&self, queries: &[CompiledQuery]) -> Vec<Vec<u8>> {
        crate::wire::encode_scan_frames(&self.time_window_queries(queries))
    }

    /// Try the largest skip at block `cur` covering `cur-distance ..= cur-1`
    /// entirely inside `[start, cur-1]` whose summary mismatches the query.
    fn try_skip(
        &self,
        cur: u64,
        start: u64,
        q: &CompiledQuery,
        cache: &ProofCache<A>,
        witnesses: Option<&WitnessTable>,
    ) -> Option<(BlockCoverage<A>, u64)> {
        let skiplist = &self.indexed[cur as usize].skiplist;
        for entry in skiplist.entries.iter().rev() {
            if entry.distance > cur || cur - entry.distance < start {
                continue; // would overshoot the window start
            }
            if let Some(clause_idx) = q.cnf.find_disjoint_clause(&entry.ms) {
                let clause_ms = q.cnf.0[clause_idx].to_multiset();
                // Overlapping windows replay the same (skip entry, clause)
                // pairs — exactly what the cache is for. A persisted
                // witness, when available, lets a cold restart finalize the
                // proof without re-extracting from the multiset.
                let wb = witnesses.and_then(|w| w.get(&ProofCache::<A>::att_digest(&entry.att)));
                let proof = cache
                    .get_or_prove_with_witness(&self.acc, &entry.att, &entry.ms, &clause_ms, wb)
                    .expect("disjointness established");
                let siblings = skiplist
                    .entries
                    .iter()
                    .filter(|e| e.distance != entry.distance)
                    .map(|e| (e.distance, e.level_hash()))
                    .collect();
                return Some((
                    BlockCoverage::Skip {
                        height: cur,
                        distance: entry.distance,
                        att: entry.att.clone(),
                        proof,
                        clause: ClauseRef::Index(clause_idx as u16),
                        siblings,
                    },
                    entry.distance,
                ));
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Persistent, sharded serving front
// ---------------------------------------------------------------------------

/// A read-only table of persisted `X₁`-side proving witnesses, keyed by
/// the accumulative-value digest ([`ProofCache::att_digest`]). Built once
/// at [`ShardedServiceProvider::open`] time from the skip-list entries
/// (and rehydrated from the witness log on warm starts), then shared
/// immutably by every shard.
#[derive(Debug, Default)]
pub struct WitnessTable {
    map: HashMap<Digest, Vec<u8>>,
}

impl WitnessTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// File a witness under its accumulative-value digest.
    pub fn insert(&mut self, att: Digest, witness: Vec<u8>) {
        self.map.insert(att, witness);
    }

    /// The witness bytes for an accumulative-value digest, if present.
    pub fn get(&self, att: &Digest) -> Option<&[u8]> {
        self.map.get(att).map(Vec::as_slice)
    }

    /// Number of stored witnesses.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Shape of a [`ShardedServiceProvider`]: how many shards, how much cache
/// per shard, and how many dirty entries accumulate before a shard's
/// write-behind flush.
#[derive(Clone, Copy, Debug)]
pub struct ShardedConfig {
    /// Number of worker shards (≥ 1).
    pub shards: usize,
    /// Per-shard [`ProofCache`] capacity, in entries.
    pub cache_capacity: usize,
    /// Dirty-entry count that triggers an automatic shard flush (the
    /// "insert batch" of the write-behind policy). Graceful shutdown
    /// flushes regardless.
    pub flush_threshold: usize,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        Self { shards: 4, cache_capacity: 4096, flush_threshold: 64 }
    }
}

/// Per-shard counters rolled up by [`ShardedServiceProvider::shard_stats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Queries this shard served.
    pub served: u64,
    /// Entries currently resident in the shard's cache.
    pub entries: usize,
    /// The shard cache's hit/miss/eviction counters.
    pub cache: CacheStats,
}

/// What [`ShardedServiceProvider::open`] found, rebuilt and repaired.
#[derive(Clone, Debug, Default)]
pub struct ServingRecovery {
    /// Per-shard store recovery reports (`shards[i]` ↔ `shard-i.log`).
    pub shard_reports: Vec<RecoveryReport>,
    /// Recovery report of the shared witness log.
    pub witness_report: RecoveryReport,
    /// Proof entries rehydrated into shard caches.
    pub proofs_loaded: usize,
    /// Persisted proof records whose bytes failed the checked accumulator
    /// decode (skipped — the entry becomes a cache miss, never a wrong
    /// proof).
    pub proofs_rejected: usize,
    /// Witnesses rehydrated from the witness log.
    pub witnesses_loaded: usize,
    /// Witnesses extracted fresh (first boot, or log gaps) and appended.
    pub witnesses_built: usize,
}

struct Shard<A: Accumulator> {
    cache: ProofCache<A>,
    log: Option<Mutex<LogStore>>,
    served: AtomicU64,
}

/// The production serving front: one [`ServiceProvider`] behind `N` worker
/// shards with deterministic query routing, per-shard proof caches and
/// write-behind persistence, and a shared persisted-witness table.
///
/// * **Routing** — [`ShardedServiceProvider::route`] hashes the compiled
///   query's canonical content (window, CNF element indices, ranges,
///   domain bits) into a shard index. The same query always lands on the
///   same shard, so each distinct query's proofs are cached (and
///   persisted) exactly once, and the per-shard store segments partition
///   cleanly.
/// * **Fan-out** — [`ShardedServiceProvider::query_batch`] runs one scoped
///   thread per non-empty shard; responses return in input order and are
///   byte-identical to the single-threaded path.
/// * **Durability** — each shard owns `shard-i.log`; a shard flushes when
///   its dirty queue reaches [`ShardedConfig::flush_threshold`], at batch
///   boundaries, and on [`ShardedServiceProvider::shutdown`]. Flush
///   failures in the serving hot path are deferred to
///   [`ShardedServiceProvider::take_flush_error`] rather than failing the
///   query (the response itself is still correct — only durability of the
///   cache is at stake).
pub struct ShardedServiceProvider<A: Accumulator> {
    sp: ServiceProvider<A>,
    shards: Vec<Shard<A>>,
    witnesses: WitnessTable,
    flush_threshold: usize,
    flush_error: Mutex<Option<StoreError>>,
}

impl<A: Accumulator> ShardedServiceProvider<A> {
    /// An ephemeral (memory-only) sharded front: same routing and fan-out,
    /// no disk. The witness table is still built, so skip proofs use the
    /// cheap finalization path.
    pub fn new(sp: ServiceProvider<A>, cfg: ShardedConfig) -> Self {
        assert!(cfg.shards >= 1, "at least one shard");
        let mut witnesses = WitnessTable::new();
        for idx in sp.indexed() {
            for entry in &idx.skiplist.entries {
                let att_d = ProofCache::<A>::att_digest(&entry.att);
                if witnesses.get(&att_d).is_none() {
                    if let Some(wb) = sp.acc.witness_bytes(&entry.ms) {
                        witnesses.insert(att_d, wb);
                    }
                }
            }
        }
        let shards = (0..cfg.shards)
            .map(|_| Shard {
                cache: ProofCache::new(cfg.cache_capacity),
                log: None,
                served: AtomicU64::new(0),
            })
            .collect();
        Self {
            sp,
            shards,
            witnesses,
            flush_threshold: cfg.flush_threshold.max(1),
            flush_error: Mutex::new(None),
        }
    }

    /// Open (or create) the persistent serving state under `dir`:
    /// rehydrate the shared witness log (`witnesses.log`, extracting and
    /// appending any witnesses the log does not yet cover) and each
    /// shard's proof log (`shard-i.log`), preloading surviving proof
    /// entries into the shard caches and restoring the last persisted
    /// stats snapshot per shard.
    pub fn open(
        sp: ServiceProvider<A>,
        cfg: ShardedConfig,
        dir: &Path,
    ) -> Result<(Self, ServingRecovery), StoreError> {
        assert!(cfg.shards >= 1, "at least one shard");
        std::fs::create_dir_all(dir).map_err(|e| StoreError::Io(e.to_string()))?;
        let mut recovery = ServingRecovery::default();

        // Shared witness log first: skip proofs on every shard use it.
        let (mut wlog, wrecords, wreport) = LogStore::open(dir.join("witnesses.log"))?;
        recovery.witness_report = wreport;
        let mut witnesses = WitnessTable::new();
        for r in wrecords {
            if let StoreRecord::Witness { att, witness, .. } = r {
                // Validate against this key before trusting log bytes: a
                // witness that doesn't round-trip is dropped (it would be
                // rejected at finalize time anyway and re-derived below).
                if sp.acc.finalize_from_witness_bytes(&witness, &no_elements()).is_some() {
                    witnesses.insert(att, witness);
                    recovery.witnesses_loaded += 1;
                }
            }
        }
        for (height, idx) in sp.indexed().iter().enumerate() {
            for entry in &idx.skiplist.entries {
                let att_d = ProofCache::<A>::att_digest(&entry.att);
                if witnesses.get(&att_d).is_none() {
                    if let Some(wb) = sp.acc.witness_bytes(&entry.ms) {
                        wlog.append(&StoreRecord::Witness {
                            block_height: height as u64,
                            att: att_d,
                            witness: wb.clone(),
                        })?;
                        witnesses.insert(att_d, wb);
                        recovery.witnesses_built += 1;
                    }
                }
            }
        }
        wlog.sync()?;
        drop(wlog);

        let mut shards = Vec::with_capacity(cfg.shards);
        for i in 0..cfg.shards {
            let (log, records, report) = LogStore::open(dir.join(format!("shard-{i}.log")))?;
            recovery.shard_reports.push(report);
            let cache = ProofCache::new(cfg.cache_capacity).with_persistence();
            let mut last_stats = None;
            for r in records {
                match r {
                    StoreRecord::Proof { key, proof } => match sp.acc.proof_from_bytes(&proof) {
                        Ok(p) => {
                            cache.preload(CacheKey { att: key.att, clause: key.clause }, p);
                            recovery.proofs_loaded += 1;
                        }
                        Err(_) => recovery.proofs_rejected += 1,
                    },
                    StoreRecord::Stats { hits, misses, evictions } => {
                        last_stats = Some(CacheStats { hits, misses, evictions });
                    }
                    StoreRecord::Witness { .. } => {}
                }
            }
            if let Some(stats) = last_stats {
                cache.restore_stats(stats);
            }
            shards.push(Shard { cache, log: Some(Mutex::new(log)), served: AtomicU64::new(0) });
        }

        Ok((
            Self {
                sp,
                shards,
                witnesses,
                flush_threshold: cfg.flush_threshold.max(1),
                flush_error: Mutex::new(None),
            },
            recovery,
        ))
    }

    /// The wrapped single-node service provider.
    pub fn inner(&self) -> &ServiceProvider<A> {
        &self.sp
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shard `i`'s proof cache (tests and introspection).
    pub fn shard_cache(&self, i: usize) -> &ProofCache<A> {
        &self.shards[i].cache
    }

    /// The shared persisted-witness table.
    pub fn witnesses(&self) -> &WitnessTable {
        &self.witnesses
    }

    /// Deterministic shard routing: a domain-separated digest over the
    /// compiled query's canonical content, reduced mod the shard count.
    /// Depends only on the query (not on arrival order, thread, or cache
    /// state), so one query's proofs live on exactly one shard.
    pub fn route(&self, q: &CompiledQuery) -> usize {
        let d = routing_digest(q);
        let mut x = [0u8; 8];
        x.copy_from_slice(&d.as_bytes()[..8]);
        (u64::from_le_bytes(x) % self.shards.len() as u64) as usize
    }

    /// Serve one query on its home shard (the caller's thread), then apply
    /// the write-behind flush policy.
    pub fn query(&self, q: &CompiledQuery) -> QueryResponse<A> {
        let i = self.route(q);
        let shard = &self.shards[i];
        let resp = self.sp.time_window_query_with(q, &shard.cache, Some(&self.witnesses));
        shard.served.fetch_add(1, Ordering::Relaxed);
        self.maybe_flush_shard(i);
        resp
    }

    /// Serve a batch: queries are bucketed by home shard, one scoped thread
    /// runs each non-empty bucket, and responses return in input order.
    pub fn query_batch(&self, queries: &[CompiledQuery]) -> Vec<QueryResponse<A>> {
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (qi, q) in queries.iter().enumerate() {
            buckets[self.route(q)].push(qi);
        }
        let mut out: Vec<Option<QueryResponse<A>>> = (0..queries.len()).map(|_| None).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = buckets
                .iter()
                .enumerate()
                .filter(|(_, bucket)| !bucket.is_empty())
                .map(|(si, bucket)| {
                    s.spawn(move || {
                        let shard = &self.shards[si];
                        bucket
                            .iter()
                            .map(|&qi| {
                                let resp = self.sp.time_window_query_with(
                                    &queries[qi],
                                    &shard.cache,
                                    Some(&self.witnesses),
                                );
                                shard.served.fetch_add(1, Ordering::Relaxed);
                                (qi, resp)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                for (qi, resp) in h.join().expect("shard worker panicked") {
                    out[qi] = Some(resp);
                }
            }
        });
        for i in 0..self.shards.len() {
            self.maybe_flush_shard(i);
        }
        out.into_iter().map(|o| o.expect("every query was routed and served")).collect()
    }

    fn maybe_flush_shard(&self, i: usize) {
        let shard = &self.shards[i];
        if shard.log.is_some() && shard.cache.dirty_len() >= self.flush_threshold {
            if let Err(e) = self.flush_shard(i, false) {
                *self.flush_error.lock() = Some(e);
            }
        }
    }

    /// Flush shard `i`'s dirty queue to its log: entries are deduplicated
    /// last-wins and written in deterministic (key-sorted) order, followed
    /// by a stats snapshot, then fsynced. Returns the number of proof
    /// records appended.
    fn flush_shard(&self, i: usize, force_stats: bool) -> Result<usize, StoreError> {
        let shard = &self.shards[i];
        let Some(log) = &shard.log else { return Ok(0) };
        let dirty = shard.cache.take_dirty();
        if dirty.is_empty() && !force_stats {
            return Ok(0);
        }
        let mut by_key: BTreeMap<[u8; 64], crate::cache::DirtyEntry> = BTreeMap::new();
        for e in dirty {
            let mut kb = [0u8; 64];
            kb[..32].copy_from_slice(e.key.att.as_bytes());
            kb[32..].copy_from_slice(e.key.clause.as_bytes());
            by_key.insert(kb, e); // last write wins
        }
        let height = self.sp.store().height().unwrap_or(0);
        let n = by_key.len();
        let stats = shard.cache.stats();
        let mut g = log.lock();
        for e in by_key.into_values() {
            g.append(&StoreRecord::Proof {
                key: RecordKey { block_height: height, att: e.key.att, clause: e.key.clause },
                proof: e.proof,
            })?;
        }
        g.append(&StoreRecord::Stats {
            hits: stats.hits,
            misses: stats.misses,
            evictions: stats.evictions,
        })?;
        g.sync()?;
        Ok(n)
    }

    /// Flush every shard's dirty queue. Returns total proof records
    /// appended.
    pub fn flush(&self) -> Result<usize, StoreError> {
        let mut total = 0;
        for i in 0..self.shards.len() {
            total += self.flush_shard(i, false)?;
        }
        Ok(total)
    }

    /// Graceful shutdown: flush every shard (writing a final stats
    /// snapshot even when no entries are dirty) and fsync. After this, a
    /// subsequent [`ShardedServiceProvider::open`] over the same directory
    /// rehydrates every entry and counter this instance held.
    pub fn shutdown(self) -> Result<(), StoreError> {
        for i in 0..self.shards.len() {
            self.flush_shard(i, true)?;
        }
        Ok(())
    }

    /// The last deferred write-behind flush error, if any (cleared on
    /// read). Queries never fail on flush errors; operators poll this.
    pub fn take_flush_error(&self) -> Option<StoreError> {
        self.flush_error.lock().take()
    }

    /// Per-shard counters.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| ShardStats {
                shard: i,
                served: s.served.load(Ordering::Relaxed),
                entries: s.cache.len(),
                cache: s.cache.stats(),
            })
            .collect()
    }

    /// Cache counters summed across shards.
    pub fn merged_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.shards {
            let c = s.cache.stats();
            total.hits += c.hits;
            total.misses += c.misses;
            total.evictions += c.evictions;
        }
        total
    }

    /// Queries served, summed across shards.
    pub fn total_served(&self) -> u64 {
        self.shards.iter().map(|s| s.served.load(Ordering::Relaxed)).sum()
    }

    /// Proof entries resident across all shard caches.
    pub fn total_entries(&self) -> usize {
        self.shards.iter().map(|s| s.cache.len()).sum()
    }
}

/// An empty multiset of the canonical element type, used to validate
/// persisted witness bytes (finalizing against ∅ exercises the full codec
/// check without proving anything).
fn no_elements() -> vchain_acc::MultiSet<crate::element::ElementId> {
    vchain_acc::MultiSet::new()
}

/// The canonical routing digest of a compiled query: domain bits, window,
/// every CNF clause's sorted element indices, and every range predicate.
/// Everything that distinguishes two compiled queries is folded in, so
/// equal queries route identically and distinct queries spread uniformly.
fn routing_digest(q: &CompiledQuery) -> Digest {
    let mut bytes = Vec::with_capacity(64);
    bytes.push(q.domain_bits);
    match q.time_window {
        Some((ts, te)) => {
            bytes.push(1);
            bytes.extend_from_slice(&ts.to_le_bytes());
            bytes.extend_from_slice(&te.to_le_bytes());
        }
        None => bytes.push(0),
    }
    bytes.extend_from_slice(&(q.cnf.0.len() as u32).to_le_bytes());
    for clause in &q.cnf.0 {
        bytes.extend_from_slice(&(clause.0.len() as u32).to_le_bytes());
        for e in &clause.0 {
            bytes.extend_from_slice(&e.to_index().to_le_bytes());
        }
    }
    bytes.extend_from_slice(&(q.ranges.len() as u32).to_le_bytes());
    for r in &q.ranges {
        bytes.push(r.dim);
        bytes.extend_from_slice(&r.lo.to_le_bytes());
        bytes.extend_from_slice(&r.hi.to_le_bytes());
    }
    hash_domain("vchain/shard-route", &bytes)
}
