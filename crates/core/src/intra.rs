//! The authenticated intra-block index (paper §6.1, Fig. 6).
//!
//! A binary Merkle tree over a block's objects where every node additionally
//! stores the multiset union of its subtree's attributes and its
//! accumulative digest. Built bottom-up by greedy Jaccard clustering
//! (Algorithm 2) so that similar objects share mismatch proofs; queried by
//! pruning tree search (Algorithm 3).

use vchain_acc::{Accumulator, MultiSet};
use vchain_chain::Object;
use vchain_hash::{hash_concat, hash_pair, Digest};

use crate::cache::ProofCache;
use crate::element::ElementId;
use crate::query::{object_multiset, CompiledQuery};
use crate::vo::{BlockVo, GroupProof, MismatchProof, VoNode};

/// Node payload: a leaf holds one object, an internal node two children.
#[derive(Clone, Debug)]
pub enum IntraNodeKind {
    /// A leaf over one object.
    Leaf {
        /// Index into the block's object list.
        obj_idx: usize,
    },
    /// An internal node over two children.
    Internal {
        /// Arena index of the left child.
        left: usize,
        /// Arena index of the right child.
        right: usize,
    },
}

/// One node of the index (arena-allocated in [`IntraTree::nodes`]).
#[derive(Clone, Debug)]
pub struct IntraNode<A: Accumulator> {
    /// The node's Merkle commitment.
    pub hash: Digest,
    /// The multiset union of the subtree's attributes.
    pub ms: MultiSet<ElementId>,
    /// `AttDigest`. `None` only for internal nodes under the `nil` scheme
    /// (plain Merkle interior, no pruning possible).
    pub att: Option<A::Value>,
    /// Leaf or internal payload.
    pub kind: IntraNodeKind,
}

/// The per-block authenticated index.
#[derive(Clone, Debug)]
pub struct IntraTree<A: Accumulator> {
    /// Arena of nodes (leaves first, then internals bottom-up).
    pub nodes: Vec<IntraNode<A>>,
    /// Arena index of the root.
    pub root: usize,
}

/// Leaf commitment: `hash("leaf" | hash(o) | AttDigest)`.
pub fn leaf_hash<A: Accumulator>(obj_digest: &Digest, att: &A::Value) -> Digest {
    hash_concat(&[b"vchain/leaf", &obj_digest.0, &A::value_bytes(att)])
}

/// Authenticated internal commitment:
/// `hash("internal" | hash(h_l | h_r) | AttDigest)` (paper Def. 6.1).
pub fn internal_hash<A: Accumulator>(child_pair: &Digest, att: &A::Value) -> Digest {
    hash_concat(&[b"vchain/internal", &child_pair.0, &A::value_bytes(att)])
}

impl<A: Accumulator> IntraTree<A> {
    /// Build leaves: one per object, with its `W′` multiset and AttDigest.
    fn build_leaves(objects: &[Object], acc: &A, domain_bits: u8) -> Vec<IntraNode<A>> {
        objects
            .iter()
            .enumerate()
            .map(|(i, o)| {
                let ms = object_multiset(o, domain_bits);
                let att = acc.setup(&ms);
                IntraNode {
                    hash: leaf_hash::<A>(&o.digest(), &att),
                    ms,
                    att: Some(att),
                    kind: IntraNodeKind::Leaf { obj_idx: i },
                }
            })
            .collect()
    }

    /// Algorithm 2: greedy Jaccard clustering, bottom-up. Internal nodes get
    /// union multisets and AttDigests, enabling subtree pruning.
    pub fn build_clustered(objects: &[Object], acc: &A, domain_bits: u8) -> Self {
        assert!(!objects.is_empty(), "a block must contain at least one object");
        let mut arena = Self::build_leaves(objects, acc, domain_bits);
        let mut frontier: Vec<usize> = (0..arena.len()).collect();

        while frontier.len() > 1 {
            let mut next_level = Vec::with_capacity(frontier.len() / 2 + 1);
            while frontier.len() > 1 {
                // n_l: the node with the largest attribute support
                let (li, _) = frontier
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &n)| arena[n].ms.distinct_len())
                    .expect("non-empty frontier");
                let nl = frontier.swap_remove(li);
                // n_r: the frontier node most similar to n_l (Jaccard)
                let (ri, _) = frontier
                    .iter()
                    .enumerate()
                    .map(|(i, &n)| (i, arena[nl].ms.jaccard(&arena[n].ms)))
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("non-empty frontier");
                let nr = frontier.swap_remove(ri);

                let ms = arena[nl].ms.union(&arena[nr].ms);
                let att = acc.setup(&ms);
                let pair = hash_pair(&arena[nl].hash, &arena[nr].hash);
                let hash = internal_hash::<A>(&pair, &att);
                arena.push(IntraNode {
                    hash,
                    ms,
                    att: Some(att),
                    kind: IntraNodeKind::Internal { left: nl, right: nr },
                });
                next_level.push(arena.len() - 1);
            }
            // a leftover odd node is carried upward (Algorithm 2's
            // `nodes ← newnodes + nodes`)
            next_level.append(&mut frontier);
            frontier = next_level;
        }

        let root = frontier[0];
        Self { nodes: arena, root }
    }

    /// The `nil` baseline: a balanced Merkle tree in arrival order whose
    /// internal nodes carry no AttDigest, so queries must visit every leaf.
    pub fn build_nil(objects: &[Object], acc: &A, domain_bits: u8) -> Self {
        assert!(!objects.is_empty(), "a block must contain at least one object");
        let mut arena = Self::build_leaves(objects, acc, domain_bits);
        let mut frontier: Vec<usize> = (0..arena.len()).collect();
        while frontier.len() > 1 {
            let mut next = Vec::with_capacity(frontier.len().div_ceil(2));
            for pair in frontier.chunks(2) {
                match *pair {
                    [l, r] => {
                        let ms = arena[l].ms.union(&arena[r].ms);
                        let hash = hash_pair(&arena[l].hash, &arena[r].hash);
                        arena.push(IntraNode {
                            hash,
                            ms,
                            att: None,
                            kind: IntraNodeKind::Internal { left: l, right: r },
                        });
                        next.push(arena.len() - 1);
                    }
                    [odd] => next.push(odd),
                    _ => unreachable!(),
                }
            }
            frontier = next;
        }
        let root = frontier[0];
        Self { nodes: arena, root }
    }

    /// The root Merkle commitment (goes into the block header).
    pub fn root_hash(&self) -> Digest {
        self.nodes[self.root].hash
    }

    /// The block-level attribute multiset (the root's union).
    pub fn root_multiset(&self) -> &MultiSet<ElementId> {
        &self.nodes[self.root].ms
    }

    /// The root AttDigest (`None` under the `nil` scheme).
    pub fn root_att(&self) -> Option<&A::Value> {
        self.nodes[self.root].att.as_ref()
    }

    /// Number of leaves (= number of objects indexed).
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n.kind, IntraNodeKind::Leaf { .. })).count()
    }

    /// Nominal ADS size contributed by this tree (AttDigests + hashes), the
    /// paper's Table-1 "S" metric.
    pub fn ads_size_bytes(&self, acc: &A) -> usize {
        self.nodes
            .iter()
            .map(|n| Digest::LEN + n.att.as_ref().map(|_| acc.value_size()).unwrap_or(0))
            .sum()
    }

    /// Algorithm 3: pruning tree search. Returns this block's matching
    /// objects and the VO mirroring the pruned tree.
    ///
    /// `batch` enables §6.3 online batch verification: mismatching nodes
    /// that share a clause are aggregated into one group proof (requires an
    /// aggregating accumulator, i.e. Construction 2).
    pub fn query(
        &self,
        objects: &[Object],
        q: &CompiledQuery,
        acc: &A,
        batch: bool,
    ) -> (Vec<Object>, BlockVo<A>) {
        self.query_cached(objects, q, acc, batch, None)
    }

    /// [`IntraTree::query`] with a window-level [`ProofCache`]: every inline
    /// mismatch proof is looked up by `(node AttDigest, clause)` before
    /// proving cold, and §6.3 group proofs are keyed by the `Sum` of their
    /// members' digests — so overlapping windows and repeated subscription
    /// scans re-prove nothing.
    pub fn query_cached(
        &self,
        objects: &[Object],
        q: &CompiledQuery,
        acc: &A,
        batch: bool,
        cache: Option<&ProofCache<A>>,
    ) -> (Vec<Object>, BlockVo<A>) {
        let mut results = Vec::new();
        let mut mismatches: Vec<(usize, usize)> = Vec::new(); // (node, clause) in DFS order
        let mut root =
            self.walk(self.root, objects, q, &mut results, &mut mismatches, acc, batch, cache);

        // Batch grouping (§6.3): one aggregate proof per distinct mismatch
        // clause, over the multiset sum of the member nodes.
        let mut groups = Vec::new();
        if batch && acc.supports_aggregation() && !mismatches.is_empty() {
            use std::collections::BTreeMap;
            let mut by_clause: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for (node, clause) in &mismatches {
                by_clause.entry(*clause).or_default().push(*node);
            }
            let rank: BTreeMap<usize, u16> =
                by_clause.keys().enumerate().map(|(i, &c)| (c, i as u16)).collect();
            for (&clause_idx, nodes) in &by_clause {
                let mut summed = MultiSet::new();
                for &n in nodes {
                    summed = summed.sum(&self.nodes[n].ms);
                }
                let clause_ms = q.cnf.0[clause_idx].to_multiset();
                // A group's digest is `Sum` of its members' AttDigests — a
                // few point additions — so even group proofs get a cache
                // key cheaply and overlapping windows reuse them.
                let summed_att = cache.and_then(|_| {
                    let atts: Vec<A::Value> =
                        nodes.iter().filter_map(|&n| self.nodes[n].att.clone()).collect();
                    if atts.len() == nodes.len() {
                        acc.sum(&atts).ok()
                    } else {
                        None
                    }
                });
                let proof = match (cache, summed_att) {
                    (Some(cache), Some(att)) => cache.get_or_prove(acc, &att, &summed, &clause_ms),
                    _ => acc.prove_disjoint(&summed, &clause_ms),
                }
                .expect("clause was checked disjoint per member");
                groups.push(GroupProof {
                    clause: crate::vo::ClauseRef::Index(clause_idx as u16),
                    proof,
                });
            }
            // Patch the DFS-ordered placeholders with their group ids.
            let mut it = mismatches.iter();
            patch_group_ids(&mut root, &mut it, &rank);
            debug_assert!(it.next().is_none(), "all placeholders patched");
        }

        (results, BlockVo { root, groups })
    }

    #[allow(clippy::too_many_arguments)]
    fn walk(
        &self,
        idx: usize,
        objects: &[Object],
        q: &CompiledQuery,
        results: &mut Vec<Object>,
        mismatches: &mut Vec<(usize, usize)>,
        acc: &A,
        batch: bool,
        cache: Option<&ProofCache<A>>,
    ) -> VoNode<A> {
        let node = &self.nodes[idx];
        let can_prune = node.att.is_some();
        let mismatch_clause = if can_prune || matches!(node.kind, IntraNodeKind::Leaf { .. }) {
            q.cnf.find_disjoint_clause(&node.ms)
        } else {
            None // nil internal: cannot prune, always descend
        };

        match (&node.kind, mismatch_clause) {
            (IntraNodeKind::Leaf { obj_idx }, None) => {
                // match: return the object
                let att = node.att.clone().expect("leaves always carry AttDigest");
                let result_idx = results.len() as u32;
                results.push(objects[*obj_idx].clone());
                VoNode::LeafMatch { att, result_idx }
            }
            (IntraNodeKind::Leaf { obj_idx }, Some(clause)) => {
                let att = node.att.clone().expect("leaves always carry AttDigest");
                let proof = self.make_proof(idx, clause, q, acc, batch, mismatches, cache);
                VoNode::LeafMismatch { obj_hash: objects[*obj_idx].digest(), att, proof }
            }
            (IntraNodeKind::Internal { left, right }, Some(clause)) if can_prune => {
                let att = node.att.clone().expect("checked");
                let child_hash = hash_pair(&self.nodes[*left].hash, &self.nodes[*right].hash);
                let proof = self.make_proof(idx, clause, q, acc, batch, mismatches, cache);
                VoNode::InternalMismatch { child_hash, att, proof }
            }
            (IntraNodeKind::Internal { left, right }, _) => {
                let l = self.walk(*left, objects, q, results, mismatches, acc, batch, cache);
                let r = self.walk(*right, objects, q, results, mismatches, acc, batch, cache);
                VoNode::Internal { att: node.att.clone(), left: Box::new(l), right: Box::new(r) }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn make_proof(
        &self,
        node_idx: usize,
        clause_idx: usize,
        q: &CompiledQuery,
        acc: &A,
        batch: bool,
        mismatches: &mut Vec<(usize, usize)>,
        cache: Option<&ProofCache<A>>,
    ) -> MismatchProof<A> {
        if batch && acc.supports_aggregation() {
            // Defer: record the (node, clause) pair; `query` assigns group
            // ids after the walk and patches this placeholder in DFS order.
            mismatches.push((node_idx, clause_idx));
            MismatchProof::Group(u16::MAX)
        } else {
            let clause_ms = q.cnf.0[clause_idx].to_multiset();
            let node = &self.nodes[node_idx];
            let proof = match (cache, &node.att) {
                (Some(cache), Some(att)) => cache.get_or_prove(acc, att, &node.ms, &clause_ms),
                _ => acc.prove_disjoint(&node.ms, &clause_ms),
            }
            .expect("find_disjoint_clause guarantees disjointness");
            MismatchProof::Inline { proof, clause: crate::vo::ClauseRef::Index(clause_idx as u16) }
        }
    }
}

/// Replace `Group(u16::MAX)` placeholders with their assigned group ids,
/// consuming the DFS-ordered mismatch records.
fn patch_group_ids<A: Accumulator>(
    node: &mut VoNode<A>,
    it: &mut core::slice::Iter<'_, (usize, usize)>,
    rank: &std::collections::BTreeMap<usize, u16>,
) {
    match node {
        VoNode::Internal { left, right, .. } => {
            patch_group_ids(left, it, rank);
            patch_group_ids(right, it, rank);
        }
        VoNode::InternalMismatch { proof, .. } | VoNode::LeafMismatch { proof, .. } => {
            if matches!(proof, MismatchProof::Group(id) if *id == u16::MAX) {
                let (_, clause) = it.next().expect("one record per placeholder");
                *proof = MismatchProof::Group(rank[clause]);
            }
        }
        VoNode::LeafMatch { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Query, RangeSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;
    use vchain_acc::Acc1;

    fn acc() -> Acc1 {
        static A: OnceLock<Acc1> = OnceLock::new();
        A.get_or_init(|| Acc1::keygen(128, &mut StdRng::seed_from_u64(3))).clone()
    }

    fn objects() -> Vec<Object> {
        vec![
            Object::new(1, 10, vec![4], vec!["Sedan".into(), "Benz".into()]),
            Object::new(2, 10, vec![5], vec!["Sedan".into(), "Audi".into()]),
            Object::new(3, 10, vec![6], vec!["Van".into(), "Benz".into()]),
            Object::new(4, 10, vec![7], vec!["Van".into(), "BMW".into()]),
        ]
    }

    #[test]
    fn clustered_build_invariants() {
        let a = acc();
        let tree = IntraTree::build_clustered(&objects(), &a, 3);
        assert_eq!(tree.leaf_count(), 4);
        assert_eq!(tree.nodes.len(), 7, "4 leaves + 3 internal nodes");
        // root multiset is the union of all leaf multisets
        let root_ms = tree.root_multiset();
        for o in objects() {
            for e in object_multiset(&o, 3).elements() {
                assert!(root_ms.contains(e));
            }
        }
        assert!(tree.root_att().is_some());
        assert!(tree.ads_size_bytes(&a) > 0);
    }

    #[test]
    fn clustering_groups_similar_objects() {
        // Fig. 6's point: the two "Sedan" objects (and the two "Van"
        // objects) should end up as siblings under Jaccard clustering.
        let a = acc();
        let tree = IntraTree::build_clustered(&objects(), &a, 3);
        let sibling_pairs: Vec<(usize, usize)> = tree
            .nodes
            .iter()
            .filter_map(|n| match n.kind {
                IntraNodeKind::Internal { left, right } => {
                    match (&tree.nodes[left].kind, &tree.nodes[right].kind) {
                        (
                            IntraNodeKind::Leaf { obj_idx: l },
                            IntraNodeKind::Leaf { obj_idx: r },
                        ) => Some((*l.min(r), *l.max(r))),
                        _ => None,
                    }
                }
                _ => None,
            })
            .collect();
        // objects 0,1 share "Sedan"; 2,3 share "Van" — with disjoint numeric
        // prefixes those are the max-Jaccard pairings
        assert!(
            sibling_pairs.contains(&(0, 1)) || sibling_pairs.contains(&(2, 3)),
            "expected similarity-based pairing, got {sibling_pairs:?}"
        );
    }

    #[test]
    fn nil_build_has_no_internal_digests() {
        let a = acc();
        let tree = IntraTree::build_nil(&objects(), &a, 3);
        for n in &tree.nodes {
            match n.kind {
                IntraNodeKind::Leaf { .. } => assert!(n.att.is_some()),
                IntraNodeKind::Internal { .. } => assert!(n.att.is_none()),
            }
        }
    }

    #[test]
    fn build_is_deterministic() {
        let a = acc();
        let t1 = IntraTree::build_clustered(&objects(), &a, 3);
        let t2 = IntraTree::build_clustered(&objects(), &a, 3);
        assert_eq!(t1.root_hash(), t2.root_hash());
    }

    #[test]
    fn query_prunes_on_clustered_tree() {
        let a = acc();
        let tree = IntraTree::build_clustered(&objects(), &a, 3);
        // "Sedan" ∧ (Benz ∨ BMW) — §5.1's running example: only object 1
        let q = Query {
            time_window: None,
            ranges: vec![],
            keywords: vec![vec!["Sedan".into()], vec!["Benz".into(), "BMW".into()]],
        }
        .compile(3);
        let (results, vo) = tree.query(&objects(), &q, &a, false);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].id, 1);
        assert!(vo.groups.is_empty(), "acc1 cannot batch");
    }

    #[test]
    fn single_object_block() {
        let a = acc();
        let objs = vec![Object::new(9, 10, vec![2], vec!["X".into()])];
        let tree = IntraTree::build_clustered(&objs, &a, 3);
        assert_eq!(tree.nodes.len(), 1);
        let q = Query { time_window: None, ranges: vec![], keywords: vec![vec!["X".into()]] }
            .compile(3);
        let (results, _) = tree.query(&objs, &q, &a, false);
        assert_eq!(results.len(), 1);
    }

    #[test]
    fn range_query_against_tree() {
        let a = acc();
        let tree = IntraTree::build_clustered(&objects(), &a, 3);
        let q = Query {
            time_window: None,
            ranges: vec![RangeSpec { dim: 0, lo: 0, hi: 5 }],
            keywords: vec![],
        }
        .compile(3);
        let (results, _) = tree.query(&objects(), &q, &a, false);
        let mut ids: Vec<u64> = results.iter().map(|o| o.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2], "values 4 and 5 lie in [0, 5]");
    }
}
