//! Seeded, deterministic VO mutation engine for adversarial fault
//! injection (the Byzantine-SP experiment of paper §8, run mechanically).
//!
//! The engine plays the malicious service provider: given an honestly
//! produced response it derives corrupted variants — at the byte level
//! (bit flips, truncation, splices, slot swaps) and at the structure level
//! (AttDigest swaps, witness replay across blocks, dropped results and
//! coverage, forged result objects, inflated subscription claims). The
//! fault-injection suite drives thousands of these through
//! [`crate::verify`] and asserts every one is rejected with a classified
//! [`crate::verify::VerifyError`] and zero panics.
//!
//! Everything is driven by one [`rand::rngs::StdRng`] seeded at
//! construction, so a failing case replays from `(seed, iteration)` alone.
//!
//! This module is *test tooling on the trusted side* — it may allocate and
//! panic freely; it is the code under attack that must not.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vchain_acc::Accumulator;
use vchain_chain::Object;

use crate::subscribe::SubscriptionUpdate;
use crate::vo::{BlockCoverage, BlockVo, MismatchProof, VoNode};

/// Labels for the byte-level mutation classes (index-aligned with
/// [`Adversary::mutate_bytes`]'s internal choice).
pub const BYTE_MUTATIONS: &[&str] =
    &["bit-flip", "truncate", "random-splice", "chunk-swap", "extend"];

/// The mutation engine. One instance = one deterministic adversary.
pub struct Adversary {
    rng: StdRng,
}

impl Adversary {
    /// A deterministic adversary; every derived mutation is a pure
    /// function of `seed` and the call sequence.
    pub fn new(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed) }
    }

    /// Access the underlying RNG (for harness-side choices that should
    /// share the determinism).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    // -- byte-level mutations ---------------------------------------------

    /// Derive a byte-level corruption of `bytes`: flip a bit, truncate,
    /// overwrite a random run with random bytes, swap two disjoint chunks
    /// (a blind "point swap between slots"), or append garbage. Returns the
    /// mutant and the label of the class applied.
    pub fn mutate_bytes(&mut self, bytes: &[u8]) -> (Vec<u8>, &'static str) {
        let mut out = bytes.to_vec();
        let choice = if out.is_empty() { 4 } else { self.rng.gen_range(0..5u32) };
        match choice {
            0 => {
                let bit = self.rng.gen_range(0..out.len() * 8);
                out[bit / 8] ^= 1 << (bit % 8);
                (out, "bit-flip")
            }
            1 => {
                let new_len = self.rng.gen_range(0..out.len());
                out.truncate(new_len);
                (out, "truncate")
            }
            2 => {
                let start = self.rng.gen_range(0..out.len());
                let run = self.rng.gen_range(1..=16usize.min(out.len() - start));
                for b in &mut out[start..start + run] {
                    *b = self.rng.gen();
                }
                (out, "random-splice")
            }
            3 => {
                // swap two equal-length disjoint chunks
                if out.len() < 2 {
                    out[0] ^= 0xff;
                    return (out, "bit-flip");
                }
                let chunk = self.rng.gen_range(1..=(out.len() / 2).min(64));
                let a = self.rng.gen_range(0..=out.len() - 2 * chunk);
                let b = self.rng.gen_range(a + chunk..=out.len() - chunk);
                for k in 0..chunk {
                    out.swap(a + k, b + k);
                }
                (out, "chunk-swap")
            }
            _ => {
                let extra = self.rng.gen_range(1..=32usize);
                for _ in 0..extra {
                    out.push(self.rng.gen());
                }
                (out, "extend")
            }
        }
    }

    /// Flip exactly bit `bit` (for exhaustive single-bit sweeps).
    pub fn flip_bit(bytes: &[u8], bit: usize) -> Vec<u8> {
        let mut out = bytes.to_vec();
        out[bit / 8] ^= 1 << (bit % 8);
        out
    }

    /// Overwrite the first occurrence of `needle` in `encoded` with
    /// `replacement` (same length). This is how a wrong-subgroup or
    /// otherwise-crafted point encoding is substituted into a known value
    /// slot of an honest encoding. Returns `false` when the slot was not
    /// found or the lengths differ.
    pub fn substitute_slot(encoded: &mut [u8], needle: &[u8], replacement: &[u8]) -> bool {
        if needle.len() != replacement.len() || needle.is_empty() {
            return false;
        }
        let Some(pos) = encoded.windows(needle.len()).position(|w| w == needle) else {
            return false;
        };
        encoded[pos..pos + needle.len()].copy_from_slice(replacement);
        true
    }

    // -- v2 / stream mutations --------------------------------------------
    //
    // These operate on the byte layouts of `wire::encode_response_v2`,
    // `wire::encode_scan_v2` and `wire::encode_scan_stream`: an intern
    // table (`u32 N ‖ N × (u32 len ‖ bytes)`) either directly after the
    // version byte (one-shot v2) or inside the stream's header frame, and
    // a frame envelope of `u32 len ‖ u32 seq ‖ u8 tag ‖ body`.

    /// Byte ranges of the intern-table entries of a table starting at
    /// `offset` (the position of the entry-count `u32`). Returns the count
    /// position and each entry's `(payload_start, payload_len)`.
    fn table_entries_at(bytes: &[u8], offset: usize) -> Option<(usize, Vec<(usize, usize)>)> {
        let n = u32::from_le_bytes(bytes.get(offset..offset + 4)?.try_into().ok()?) as usize;
        let mut entries = Vec::with_capacity(n);
        let mut pos = offset + 4;
        for _ in 0..n {
            let len = u32::from_le_bytes(bytes.get(pos..pos + 4)?.try_into().ok()?) as usize;
            pos += 4;
            bytes.get(pos..pos + len)?;
            entries.push((pos, len));
            pos += len;
        }
        Some((offset, entries))
    }

    /// Drop the last intern-table entry of a one-shot v2 encoding and
    /// decrement the count, so every back-reference to the removed index
    /// dangles (`WireError::BackRefOutOfRange`). `None` when the table is
    /// empty (nothing to shrink).
    pub fn v2_shrink_table(bytes: &[u8]) -> Option<Vec<u8>> {
        Self::shrink_table_at(bytes, 1)
    }

    /// Flip one byte inside a randomly chosen intern-table entry of a
    /// one-shot v2 encoding — a shared point every back-reference now
    /// resolves to corrupted. `None` when the table is empty.
    pub fn v2_splice_table(&mut self, bytes: &[u8]) -> Option<Vec<u8>> {
        let (_, entries) = Self::table_entries_at(bytes, 1)?;
        self.splice_one_entry(bytes, &entries)
    }

    fn shrink_table_at(bytes: &[u8], offset: usize) -> Option<Vec<u8>> {
        let (count_pos, entries) = Self::table_entries_at(bytes, offset)?;
        let &(last_start, last_len) = entries.last()?;
        let mut out = bytes.to_vec();
        out.drain(last_start - 4..last_start + last_len);
        let n = (entries.len() as u32) - 1;
        out[count_pos..count_pos + 4].copy_from_slice(&n.to_le_bytes());
        Some(out)
    }

    fn splice_one_entry(&mut self, bytes: &[u8], entries: &[(usize, usize)]) -> Option<Vec<u8>> {
        let nonempty: Vec<_> = entries.iter().filter(|(_, len)| *len > 0).collect();
        if nonempty.is_empty() {
            return None;
        }
        let &&(start, len) = nonempty.get(self.rng.gen_range(0..nonempty.len()))?;
        let mut out = bytes.to_vec();
        // Flip a low-order bit of one payload byte: the point stays the
        // right length but decodes to a different (or invalid) element.
        out[start + self.rng.gen_range(0..len)] ^= 1;
        Some(out)
    }

    /// Split a frame stream into its frames (honest input; panics on
    /// malformed framing, which is fine on the trusted side).
    pub fn stream_frames(stream: &[u8]) -> Vec<Vec<u8>> {
        let mut frames = Vec::new();
        let mut pos = 0usize;
        while pos < stream.len() {
            let len = u32::from_le_bytes(stream[pos..pos + 4].try_into().expect("length prefix"))
                as usize;
            frames.push(stream[pos..pos + 4 + len].to_vec());
            pos += 4 + len;
        }
        frames
    }

    /// Swap two randomly chosen entry frames of a scan stream, violating
    /// the declared sequence order (`WireError::FrameSequence`). `None`
    /// when the stream has fewer than two entry frames.
    pub fn stream_reorder(&mut self, stream: &[u8]) -> Option<Vec<u8>> {
        let mut frames = Self::stream_frames(stream);
        if frames.len() < 3 {
            return None;
        }
        let a = self.rng.gen_range(1..frames.len());
        let b = loop {
            let b = self.rng.gen_range(1..frames.len());
            if b != a {
                break b;
            }
        };
        frames.swap(a, b);
        Some(frames.concat())
    }

    /// Cut the stream at a random interior byte — the transport dying
    /// mid-response. Always a strict prefix, never empty-to-empty.
    pub fn stream_truncate(&mut self, stream: &[u8]) -> Vec<u8> {
        let cut = self.rng.gen_range(1..stream.len());
        stream[..cut].to_vec()
    }

    /// Byte offset of the intern-table count inside a scan stream's header
    /// frame: `u32 len ‖ u32 seq ‖ u8 tag ‖ sv ‖ cv ‖ u32 n_windows ‖
    /// n_windows × u32 ‖ table`.
    fn stream_table_offset(stream: &[u8]) -> Option<usize> {
        let n_windows = u32::from_le_bytes(stream.get(11..15)?.try_into().ok()?) as usize;
        Some(15 + 4 * n_windows)
    }

    /// [`Adversary::v2_shrink_table`] applied inside a scan stream's header
    /// frame (the frame's length prefix is fixed up to match).
    pub fn stream_shrink_table(stream: &[u8]) -> Option<Vec<u8>> {
        let offset = Self::stream_table_offset(stream)?;
        let mut out = Self::shrink_table_at(stream, offset)?;
        let removed = stream.len() - out.len();
        let old_len = u32::from_le_bytes(out.get(0..4)?.try_into().ok()?) as usize;
        let new_len = (old_len.checked_sub(removed)? as u32).to_le_bytes();
        out[0..4].copy_from_slice(&new_len);
        Some(out)
    }

    /// [`Adversary::v2_splice_table`] applied inside a scan stream's header
    /// frame.
    pub fn stream_splice_table(&mut self, stream: &[u8]) -> Option<Vec<u8>> {
        let offset = Self::stream_table_offset(stream)?;
        let (_, entries) = Self::table_entries_at(stream, offset)?;
        self.splice_one_entry(stream, &entries)
    }

    // -- structure-level mutations ----------------------------------------

    /// Swap two AttDigest slots anywhere in the coverage (point swap
    /// between slots). Returns `false` when fewer than two slots exist.
    pub fn swap_values<A: Accumulator>(&mut self, coverage: &mut [BlockCoverage<A>]) -> bool {
        let mut values: Vec<A::Value> = Vec::new();
        for_each_value(coverage, &mut |v| values.push(v.clone()));
        if values.len() < 2 {
            return false;
        }
        let i = self.rng.gen_range(0..values.len());
        let j = {
            let mut j = self.rng.gen_range(0..values.len() - 1);
            if j >= i {
                j += 1;
            }
            j
        };
        values.swap(i, j);
        let mut k = 0usize;
        for_each_value(coverage, &mut |v| {
            *v = values[k].clone();
            k += 1;
        });
        true
    }

    /// Replay a disjointness witness: overwrite one proof slot with the
    /// proof from another slot (across nodes, groups, skips — hence across
    /// blocks and windows). Returns `false` when fewer than two slots exist.
    pub fn replay_proof<A: Accumulator>(&mut self, coverage: &mut [BlockCoverage<A>]) -> bool {
        let mut proofs: Vec<A::Proof> = Vec::new();
        for_each_proof(coverage, &mut |p| proofs.push(p.clone()));
        if proofs.len() < 2 {
            return false;
        }
        let victim = self.rng.gen_range(0..proofs.len());
        let donor = {
            let mut d = self.rng.gen_range(0..proofs.len() - 1);
            if d >= victim {
                d += 1;
            }
            d
        };
        let donated = proofs[donor].clone();
        let mut k = 0usize;
        for_each_proof(coverage, &mut |p| {
            if k == victim {
                *p = donated.clone();
            }
            k += 1;
        });
        true
    }

    /// Silently drop one returned object while keeping its coverage — the
    /// classic completeness attack. Returns `false` when there are no
    /// results.
    pub fn drop_result(&mut self, results: &mut [(u64, Vec<Object>)]) -> bool {
        let total: usize = results.iter().map(|(_, v)| v.len()).sum();
        if total == 0 {
            return false;
        }
        let mut pick = self.rng.gen_range(0..total);
        for (_, objs) in results.iter_mut() {
            if pick < objs.len() {
                objs.remove(pick);
                return true;
            }
            pick -= objs.len();
        }
        false
    }

    /// Drop one whole coverage entry (hide a block or a skip run).
    /// Returns `false` when the coverage is empty.
    pub fn drop_coverage<A: Accumulator>(&mut self, coverage: &mut Vec<BlockCoverage<A>>) -> bool {
        if coverage.is_empty() {
            return false;
        }
        let i = self.rng.gen_range(0..coverage.len());
        coverage.remove(i);
        true
    }

    /// Forge an extra result object the VO never committed to — claims the
    /// query matched more than it did. Returns `false` when there is no
    /// result entry to piggyback on.
    pub fn forge_result(&mut self, results: &mut [(u64, Vec<Object>)]) -> bool {
        if results.is_empty() {
            return false;
        }
        let i = self.rng.gen_range(0..results.len());
        let forged = Object::new(
            self.rng.gen(),
            self.rng.gen_range(0..1_000),
            vec![self.rng.gen_range(0..64)],
            vec![format!("forged-{}", self.rng.gen_range(0..1_000u32))],
        );
        results[i].1.push(forged);
        true
    }

    /// Redirect one `LeafMatch` at a different result slot. Returns
    /// `false` when the coverage holds no match leaves.
    pub fn redirect_leaf<A: Accumulator>(&mut self, coverage: &mut [BlockCoverage<A>]) -> bool {
        let mut n = 0usize;
        for_each_leaf_idx(coverage, &mut |_| n += 1);
        if n == 0 {
            return false;
        }
        let victim = self.rng.gen_range(0..n);
        let delta = self.rng.gen_range(1..=8u32);
        let mut k = 0usize;
        for_each_leaf_idx(coverage, &mut |idx| {
            if k == victim {
                *idx = idx.wrapping_add(delta);
            }
            k += 1;
        });
        true
    }

    /// Inflate a subscription update's completeness claim: stretch the
    /// covered interval beyond what the VO proves.
    pub fn inflate_claim<A: Accumulator>(&mut self, update: &mut SubscriptionUpdate<A>) {
        if self.rng.gen::<bool>() {
            update.to_height = update.to_height.wrapping_add(self.rng.gen_range(1..1_000u64));
        } else {
            update.from_height = update.from_height.wrapping_sub(self.rng.gen_range(1..1_000u64));
        }
    }

    /// Corrupt a per-block attribute Bloom filter in place: flip random
    /// bits (mixed false positives/negatives), zero whole words (pure false
    /// negatives — the dangerous direction, since an honest filter can
    /// never produce one), or saturate it (every probe answers "present").
    /// Returns the label of the class applied.
    ///
    /// The filter is SP-side acceleration only, so the fault-injection
    /// suite asserts a lying filter changes *nothing observable*: the
    /// subscription engine's published updates stay byte-identical (a
    /// failed refutation proof demotes the affected queries back to the
    /// exact walk) and user-side verification is untouched.
    pub fn corrupt_bloom(&mut self, bloom: &mut crate::bloom::AttributeBloom) -> &'static str {
        let words = bloom.words_mut();
        match self.rng.gen_range(0..3u32) {
            0 => {
                let flips = self.rng.gen_range(1..=64usize);
                for _ in 0..flips {
                    let w = self.rng.gen_range(0..words.len());
                    words[w] ^= 1u64 << self.rng.gen_range(0..64u32);
                }
                "bit-flip"
            }
            1 => {
                let start = self.rng.gen_range(0..words.len());
                let run = self.rng.gen_range(1..=words.len() - start);
                for w in &mut words[start..start + run] {
                    *w = 0;
                }
                "zeroed-words"
            }
            _ => {
                for w in words.iter_mut() {
                    *w = u64::MAX;
                }
                "saturated"
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Slot walkers (deterministic pre-order traversal)
// ---------------------------------------------------------------------------

fn walk_node_values<A: Accumulator>(node: &mut VoNode<A>, f: &mut dyn FnMut(&mut A::Value)) {
    match node {
        VoNode::Internal { att, left, right } => {
            if let Some(a) = att.as_mut() {
                f(a);
            }
            walk_node_values(left, f);
            walk_node_values(right, f);
        }
        VoNode::InternalMismatch { att, .. } => f(att),
        VoNode::LeafMatch { att, .. } => f(att),
        VoNode::LeafMismatch { att, .. } => f(att),
    }
}

/// Visit every AttDigest slot of the coverage in deterministic order.
pub fn for_each_value<A: Accumulator>(
    coverage: &mut [BlockCoverage<A>],
    f: &mut dyn FnMut(&mut A::Value),
) {
    for cov in coverage {
        match cov {
            BlockCoverage::Block { vo, .. } => walk_node_values(&mut vo.root, f),
            BlockCoverage::Skip { att, .. } => f(att),
        }
    }
}

fn walk_node_proofs<A: Accumulator>(node: &mut VoNode<A>, f: &mut dyn FnMut(&mut A::Proof)) {
    match node {
        VoNode::Internal { left, right, .. } => {
            walk_node_proofs(left, f);
            walk_node_proofs(right, f);
        }
        VoNode::InternalMismatch { proof, .. } | VoNode::LeafMismatch { proof, .. } => {
            if let MismatchProof::Inline { proof, .. } = proof {
                f(proof);
            }
        }
        VoNode::LeafMatch { .. } => {}
    }
}

fn walk_vo_proofs<A: Accumulator>(vo: &mut BlockVo<A>, f: &mut dyn FnMut(&mut A::Proof)) {
    walk_node_proofs(&mut vo.root, f);
    for g in &mut vo.groups {
        f(&mut g.proof);
    }
}

/// Visit every disjointness-proof slot of the coverage in deterministic
/// order (inline node proofs, §6.3 group proofs, skip proofs).
pub fn for_each_proof<A: Accumulator>(
    coverage: &mut [BlockCoverage<A>],
    f: &mut dyn FnMut(&mut A::Proof),
) {
    for cov in coverage {
        match cov {
            BlockCoverage::Block { vo, .. } => walk_vo_proofs(vo, f),
            BlockCoverage::Skip { proof, .. } => f(proof),
        }
    }
}

fn walk_leaf_idx<A: Accumulator>(node: &mut VoNode<A>, f: &mut dyn FnMut(&mut u32)) {
    match node {
        VoNode::Internal { left, right, .. } => {
            walk_leaf_idx(left, f);
            walk_leaf_idx(right, f);
        }
        VoNode::LeafMatch { result_idx, .. } => f(result_idx),
        _ => {}
    }
}

fn for_each_leaf_idx<A: Accumulator>(
    coverage: &mut [BlockCoverage<A>],
    f: &mut dyn FnMut(&mut u32),
) {
    for cov in coverage {
        if let BlockCoverage::Block { vo, .. } = cov {
            walk_leaf_idx(&mut vo.root, f);
        }
    }
}
