//! The miner role (paper Fig. 3): assembles objects into blocks, builds the
//! ADS (intra-block index and optionally the inter-block skip list),
//! computes the consensus proof, and appends to the chain.

use vchain_acc::Accumulator;
use vchain_chain::{mine_nonce, Block, BlockHeader, ChainStore, Difficulty, Object};
use vchain_hash::Digest;

use crate::bloom::{AttributeBloom, BLOOM_SEED};
use crate::inter::{BlockSummary, SkipList};
use crate::intra::IntraTree;

/// Which authenticated indexes the chain deployment builds (the paper's
/// `nil` / `intra` / `both` schemes of §9).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexScheme {
    /// Per-object ADS only; queries touch every object.
    Nil,
    /// Jaccard-clustered intra-block index (§6.1).
    Intra,
    /// Intra-block plus skip-list inter-block index (§6.2).
    Both,
}

/// Public system parameters — known to miners, SPs and users alike.
#[derive(Clone, Copy, Debug)]
pub struct MinerConfig {
    /// Which authenticated indexes are built.
    pub scheme: IndexScheme,
    /// Skip-list levels `L` (distances `2 … 2^L`); ignored unless `Both`.
    pub skip_levels: u8,
    /// Numeric dimension width in bits.
    pub domain_bits: u8,
    /// Simulated proof-of-work difficulty.
    pub difficulty: Difficulty,
    /// Density of the per-block attribute Bloom filter, in bits per distinct
    /// attribute element (see [`crate::bloom`] for the FPR budget math).
    pub bloom_bits_per_key: u8,
}

impl Default for MinerConfig {
    fn default() -> Self {
        Self {
            scheme: IndexScheme::Both,
            skip_levels: 5,
            domain_bits: 8,
            difficulty: Difficulty(4),
            bloom_bits_per_key: crate::bloom::DEFAULT_BITS_PER_KEY,
        }
    }
}

/// A block's authenticated structures, kept by full nodes (miner & SP).
#[derive(Clone, Debug)]
pub struct IndexedBlock<A: Accumulator> {
    /// The intra-block index (§6.1).
    pub tree: IntraTree<A>,
    /// The inter-block skip list (§6.2; empty unless the `Both` scheme).
    pub skiplist: SkipList<A>,
    /// Bloom filter over the block's distinct attribute elements: the
    /// subscription engine's candidate pre-filter ([`crate::bloom`]). SP-side
    /// acceleration only — it carries no authentication and a corrupted
    /// filter can only cost the SP work.
    pub bloom: AttributeBloom,
}

impl<A: Accumulator> IndexedBlock<A> {
    /// Total ADS bytes added to the block (Table 1 "S").
    pub fn ads_size_bytes(&self, acc: &A) -> usize {
        self.tree.ads_size_bytes(acc) + self.skiplist.ads_size_bytes(acc) + self.bloom.size_bytes()
    }
}

/// The miner: owns the growing chain and its index materialization.
pub struct Miner<A: Accumulator> {
    /// The public system parameters.
    pub cfg: MinerConfig,
    /// The accumulator scheme handle.
    pub acc: A,
    store: ChainStore,
    indexed: Vec<IndexedBlock<A>>,
    history: Vec<BlockSummary<A>>,
}

impl<A: Accumulator> Miner<A> {
    /// A miner over an empty chain.
    pub fn new(cfg: MinerConfig, acc: A) -> Self {
        Self {
            cfg,
            acc,
            store: ChainStore::new(cfg.difficulty),
            indexed: Vec::new(),
            history: Vec::new(),
        }
    }

    /// Mine the next block over `objects` at `timestamp`. Returns its height.
    pub fn mine_block(&mut self, timestamp: u64, objects: Vec<Object>) -> u64 {
        assert!(!objects.is_empty(), "blocks must carry at least one object");
        let tree = match self.cfg.scheme {
            IndexScheme::Nil => IntraTree::build_nil(&objects, &self.acc, self.cfg.domain_bits),
            IndexScheme::Intra | IndexScheme::Both => {
                IntraTree::build_clustered(&objects, &self.acc, self.cfg.domain_bits)
            }
        };
        let skiplist = if self.cfg.scheme == IndexScheme::Both {
            SkipList::build(&self.history, self.cfg.skip_levels, &self.acc)
        } else {
            SkipList { entries: Vec::new() }
        };

        let ads_root = tree.root_hash();
        let skiplist_root = skiplist.root();
        let prev_hash = self.store.tip_hash();
        let height = self.store.height().map(|h| h + 1).unwrap_or(0);
        let nonce =
            mine_nonce(&prev_hash, timestamp, &ads_root, &skiplist_root, self.cfg.difficulty);
        let block = Block {
            header: BlockHeader { height, prev_hash, timestamp, nonce, ads_root, skiplist_root },
            objects,
        };
        let block_hash = block.block_hash();

        // Block-level summary for future skip lists and lazy subscription
        // aggregation: the block's attribute multiset is its intra-tree root
        // multiset, so per-block digests reuse the root AttDigest and
        // `ProofSum` of root proofs matches `Sum` of block digests.
        let (block_ms, block_att) = match tree.root_att() {
            Some(att) => (tree.root_multiset().clone(), att.clone()),
            None => {
                // nil scheme: no root digest in the tree; derive one.
                let ms = tree.root_multiset().clone();
                let att = self.acc.setup(&ms);
                (ms, att)
            }
        };

        // Pre-filter for the subscription engine: one key per *distinct*
        // attribute element the block carries.
        let bloom = AttributeBloom::from_elements(
            BLOOM_SEED,
            self.cfg.bloom_bits_per_key,
            block_ms.elements().map(|e| e.resolve()),
        );

        self.store.append(block).expect("self-mined block must validate");
        self.indexed.push(IndexedBlock { tree, skiplist, bloom });
        self.history.push(BlockSummary { hash: block_hash, ms: block_ms, att: block_att });
        height
    }

    /// The chain mined so far.
    pub fn store(&self) -> &ChainStore {
        &self.store
    }

    /// The per-block authenticated indexes.
    pub fn indexed(&self) -> &[IndexedBlock<A>] {
        &self.indexed
    }

    /// All block headers, by height (what a light client syncs).
    pub fn headers(&self) -> Vec<BlockHeader> {
        self.store.blocks().iter().map(|b| b.header.clone()).collect()
    }

    /// All block hashes, by height.
    pub fn block_hashes(&self) -> Vec<Digest> {
        self.store.blocks().iter().map(Block::block_hash).collect()
    }

    /// Hand the chain and its indexes to a service provider (both are full
    /// nodes; in a real network the SP would re-derive the indexes from the
    /// replicated blocks).
    pub fn into_service_provider(self) -> crate::sp::ServiceProvider<A> {
        crate::sp::ServiceProvider::new(self.cfg, self.acc, self.store, self.indexed, self.history)
    }

    /// Access to the block summaries (for subscription engines).
    pub fn history(&self) -> &[BlockSummary<A>] {
        &self.history
    }
}
