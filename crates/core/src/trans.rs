//! The numeric ↔ set transformation of §5.3.
//!
//! * A value `v` in a `domain_bits`-bit dimension becomes its set of binary
//!   prefixes `trans(v) = {b₁*, b₁b₂*, …, b₁…b_H}` (Fig. 5's example:
//!   `trans(4) = {1*, 10*, 100}`).
//! * A range `[lo, hi]` becomes the *minimal* set of trie nodes exactly
//!   covering it; `v ∈ [lo, hi] ⟺ trans(v) ∩ cover([lo, hi]) ≠ ∅`.
//!
//! Both directions are exercised against direct interval arithmetic by the
//! property tests below.

use crate::element::{Element, ElementId};

/// Largest supported dimension width. Kept small so the distinct-prefix
/// universe stays within Construction 2's public-key bound (DESIGN.md §2).
pub const MAX_DOMAIN_BITS: u8 = 32;

/// `trans(v)` for one dimension: all `domain_bits` prefixes of `v`.
pub fn trans_value(dim: u8, value: u64, domain_bits: u8) -> Vec<Element> {
    assert!((1..=MAX_DOMAIN_BITS).contains(&domain_bits));
    assert!(
        domain_bits == 64 || value < (1u64 << domain_bits),
        "value {value} outside {domain_bits}-bit domain"
    );
    (1..=domain_bits)
        .map(|len| Element::Prefix { dim, len, bits: value >> (domain_bits - len) })
        .collect()
}

/// Interned version of [`trans_value`].
pub fn trans_value_ids(dim: u8, value: u64, domain_bits: u8) -> Vec<ElementId> {
    trans_value(dim, value, domain_bits).iter().map(ElementId::intern).collect()
}

/// The minimal prefix cover of `[lo, hi]` (inclusive) in a `domain_bits`-bit
/// dimension. Returns `None` when the range covers the whole domain — the
/// predicate is vacuous and compiles to no clause at all.
pub fn range_cover(dim: u8, lo: u64, hi: u64, domain_bits: u8) -> Option<Vec<Element>> {
    assert!((1..=MAX_DOMAIN_BITS).contains(&domain_bits));
    let max = (1u64 << domain_bits) - 1;
    assert!(lo <= hi, "empty range [{lo}, {hi}]");
    assert!(hi <= max, "range end {hi} outside {domain_bits}-bit domain");
    if lo == 0 && hi == max {
        return None;
    }
    let mut out = Vec::new();
    cover_rec(dim, 0, 0, domain_bits, lo, hi, &mut out);
    Some(out)
}

fn cover_rec(
    dim: u8,
    node_bits: u64,
    node_len: u8,
    h: u8,
    lo: u64,
    hi: u64,
    out: &mut Vec<Element>,
) {
    let span = h - node_len;
    let node_lo = node_bits << span;
    let node_hi = node_lo + ((1u64 << span) - 1);
    if hi < node_lo || lo > node_hi {
        return; // disjoint
    }
    if lo <= node_lo && node_hi <= hi {
        debug_assert!(node_len >= 1, "full-domain cover handled by caller");
        out.push(Element::Prefix { dim, len: node_len, bits: node_bits });
        return;
    }
    cover_rec(dim, node_bits << 1, node_len + 1, h, lo, hi, out);
    cover_rec(dim, (node_bits << 1) | 1, node_len + 1, h, lo, hi, out);
}

/// Interned version of [`range_cover`].
pub fn range_cover_ids(dim: u8, lo: u64, hi: u64, domain_bits: u8) -> Option<Vec<ElementId>> {
    range_cover(dim, lo, hi, domain_bits).map(|es| es.iter().map(ElementId::intern).collect())
}

/// The inclusive interval a prefix element denotes (for verifier-side
/// containment checks on shared subscription proofs).
pub fn prefix_interval(len: u8, bits: u64, domain_bits: u8) -> (u64, u64) {
    assert!(len >= 1 && len <= domain_bits);
    let span = domain_bits - len;
    let lo = bits << span;
    (lo, lo + ((1u64 << span) - 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn prefix_set(v: u64, bits: u8) -> std::collections::BTreeSet<Element> {
        trans_value(0, v, bits).into_iter().collect()
    }

    #[test]
    fn paper_example_trans_4() {
        // Fig. 5: domain [0,7], trans(4) = {1*, 10*, 100}
        let t = trans_value(0, 4, 3);
        assert_eq!(
            t,
            vec![
                Element::Prefix { dim: 0, len: 1, bits: 0b1 },
                Element::Prefix { dim: 0, len: 2, bits: 0b10 },
                Element::Prefix { dim: 0, len: 3, bits: 0b100 },
            ]
        );
    }

    #[test]
    fn paper_example_cover_0_6() {
        // Fig. 5: [0, 6] covers as {0*, 10*, 110}
        let c = range_cover(0, 0, 6, 3).unwrap();
        let set: std::collections::BTreeSet<_> = c.into_iter().collect();
        assert_eq!(
            set,
            [
                Element::Prefix { dim: 0, len: 1, bits: 0b0 },
                Element::Prefix { dim: 0, len: 2, bits: 0b10 },
                Element::Prefix { dim: 0, len: 3, bits: 0b110 },
            ]
            .into_iter()
            .collect()
        );
    }

    #[test]
    fn paper_example_membership() {
        // 4 ∈ [0,6]: intersection {10*}
        let t = prefix_set(4, 3);
        let c: std::collections::BTreeSet<_> =
            range_cover(0, 0, 6, 3).unwrap().into_iter().collect();
        assert_eq!(t.intersection(&c).count(), 1);
        // 7 ∉ [0,6]
        let t7 = prefix_set(7, 3);
        assert_eq!(t7.intersection(&c).count(), 0);
    }

    #[test]
    fn full_domain_is_vacuous() {
        assert!(range_cover(0, 0, 255, 8).is_none());
        assert!(range_cover(0, 0, 254, 8).is_some());
    }

    #[test]
    fn point_range() {
        let c = range_cover(0, 5, 5, 3).unwrap();
        assert_eq!(c, vec![Element::Prefix { dim: 0, len: 3, bits: 5 }]);
    }

    #[test]
    fn prefix_interval_round_trip() {
        let (lo, hi) = prefix_interval(2, 0b10, 3);
        assert_eq!((lo, hi), (4, 5));
        let (lo, hi) = prefix_interval(1, 0b1, 8);
        assert_eq!((lo, hi), (128, 255));
    }

    #[test]
    fn dimension_tag_is_kept() {
        let a = trans_value(0, 4, 3);
        let b = trans_value(1, 4, 3);
        assert!(a.iter().all(|e| !b.contains(e)), "different dims never share elements");
    }

    proptest! {
        #[test]
        fn membership_equivalence(v in 0u64..256, lo in 0u64..256, hi in 0u64..256) {
            prop_assume!(lo <= hi);
            let bits = 8;
            let cover = range_cover(0, lo, hi, bits);
            let inside = v >= lo && v <= hi;
            match cover {
                None => prop_assert!(inside, "vacuous cover must mean full range"),
                Some(c) => {
                    let cs: std::collections::BTreeSet<_> = c.into_iter().collect();
                    let ts = prefix_set(v, bits);
                    let intersects = ts.intersection(&cs).count() > 0;
                    prop_assert_eq!(intersects, inside);
                }
            }
        }

        #[test]
        fn cover_is_minimal_and_disjoint(lo in 0u64..64, hi in 0u64..64) {
            prop_assume!(lo <= hi);
            let bits = 6;
            if let Some(c) = range_cover(0, lo, hi, bits) {
                // intervals are disjoint and exactly tile [lo, hi]
                let mut ivs: Vec<(u64, u64)> = c.iter().map(|e| match e {
                    Element::Prefix { len, bits: b, .. } => prefix_interval(*len, *b, bits),
                    _ => unreachable!(),
                }).collect();
                ivs.sort_unstable();
                prop_assert_eq!(ivs.first().unwrap().0, lo);
                prop_assert_eq!(ivs.last().unwrap().1, hi);
                for w in ivs.windows(2) {
                    prop_assert_eq!(w[0].1 + 1, w[1].0, "gaps or overlap in cover");
                }
                // minimality: no two siblings both present (they would merge)
                for e in &c {
                    if let Element::Prefix { len, bits: b, dim } = e {
                        let sib = Element::Prefix { dim: *dim, len: *len, bits: b ^ 1 };
                        prop_assert!(!c.contains(&sib), "sibling pair should have merged");
                    }
                }
            }
        }
    }
}
