//! # vChain — verifiable Boolean range queries over blockchain databases
//!
//! This crate implements the primary contribution of *"vChain: Enabling
//! Verifiable Boolean Range Queries over Blockchain Databases"* (Xu, Zhang,
//! Xu — SIGMOD 2019) on top of the substrates in this workspace
//! (`vchain-pairing`, `vchain-acc`, `vchain-chain`):
//!
//! * [`element`] / [`trans`] — the numeric→set transformation `trans(·)`
//!   (§5.3): values become binary-prefix sets, range predicates become
//!   minimal prefix covers, so one accumulator-based ADS serves arbitrary
//!   attribute combinations.
//! * [`query`] — Boolean range queries (time-window & subscription, §3) and
//!   their compilation into a unified CNF over set elements.
//! * [`intra`] — the Jaccard-clustered authenticated intra-block index
//!   (Algorithm 2) and its tree-search VO construction (Algorithm 3, §6.1).
//! * [`inter`] — the skip-list inter-block index (§6.2, Algorithm 4).
//! * [`miner`] / [`sp`] / [`verify`] — the three roles of Fig. 3: the miner
//!   embeds ADS commitments into block headers, the service provider answers
//!   queries with verification objects, and the light-client user checks
//!   soundness and completeness against block headers alone.
//! * [`batch`] — online batch verification via `Sum`/`ProofSum` (§6.3).
//! * [`client`] / [`wire`] — the light client's streamed verification
//!   pipeline: frame-by-frame VO delivery with bounded buffering, the
//!   deduplicating v2 wire encoding, and cross-window pairing batching
//!   (see `docs/LIGHT_CLIENT.md`).
//! * [`subscribe`] / [`iptree`] — verifiable subscription queries with the
//!   inverted prefix tree (§7.1, Algorithms 6/7) and lazy authentication
//!   (§7.2, Algorithm 5).
//!
//! The generic parameter `A: Accumulator` selects between the paper's two
//! accumulator constructions (`vchain_acc::Acc1`, `vchain_acc::Acc2`).

#![warn(missing_docs)]

pub mod adversary;
pub mod batch;
pub mod bloom;
pub mod cache;
pub mod client;
pub mod element;
pub mod inter;
pub mod intra;
pub mod iptree;
pub mod miner;
pub mod query;
pub mod sp;
pub mod store;
pub mod subindex;
pub mod subscribe;
pub mod trans;
pub mod verify;
pub mod vo;
pub mod wire;

pub use adversary::Adversary;
pub use bloom::{AttributeBloom, BloomKey};
pub use cache::{CacheKey, CacheStats, DirtyEntry, ProofCache};
pub use client::{PipelineMode, StreamStats, StreamVerifier, WindowScan};
pub use element::{Element, ElementId};
pub use inter::{SkipEntry, SkipList};
pub use intra::{IntraNodeKind, IntraTree};
pub use miner::{IndexScheme, Miner, MinerConfig};
pub use query::{Clause, Cnf, CompiledQuery, Query, RangeSpec};
pub use sp::{
    ServiceProvider, ServingRecovery, ShardStats, ShardedConfig, ShardedServiceProvider,
    WitnessTable,
};
pub use store::{LogStore, RecordKey, RecoveryReport, StoreError, StoreRecord};
pub use subindex::{Classification, SubscriptionIndex};
pub use subscribe::verify_encoded_subscription_update;
pub use subscribe::{
    BlockMatch, SubscriptionEngine, SubscriptionMode, SubscriptionUpdate, WalkStrategy,
};
pub use verify::{
    verify_encoded_response, verify_response, DisjointBatch, VerifyError, WindowVerifier,
};
pub use vo::{BlockCoverage, ClauseRef, QueryResponse, VoNode, VoSize};
pub use wire::{
    decode_bloom, decode_response, decode_response_auto, decode_response_v2, decode_scan_v2,
    decode_update, encode_bloom, encode_response, encode_response_stream, encode_response_v2,
    encode_scan_stream, encode_scan_v2, encode_update, StreamDecoder, StreamEvent, WireError,
    WireVersion, MAX_FRAME_BYTES, MAX_VO_DEPTH,
};
