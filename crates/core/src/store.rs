//! The SP's persistence layer: an append-only, checksummed,
//! log-structured record store.
//!
//! A production service provider cannot re-prove the world after every
//! deploy — the [`ProofCache`](crate::cache::ProofCache) and the per-entry
//! Acc2 witnesses it serves from are worth exactly as much as they survive
//! a restart. This module is the durability substrate of the sharded
//! serving layer ([`crate::sp::ShardedServiceProvider`]): one flat file per
//! shard, written strictly append-only, read back in full at startup.
//!
//! # On-disk layout
//!
//! ```text
//! file   := magic(8) version(1) frame*
//! frame  := len(u32 LE) len_check(u32 LE) payload_check(u64 LE) payload
//! ```
//!
//! `len_check` is an involutive mix of `len` ([`LEN_CHECK_XOR`]) so a
//! corrupted length field is *detected* instead of desynchronizing the
//! scan; `payload_check` is the first eight bytes of a domain-separated
//! SHA-256 over the payload. Payloads are [`StoreRecord`]s under a
//! versioned tag codec built on the same total [`WireError`]-returning
//! reader the untrusted wire boundary uses.
//!
//! # Recovery protocol
//!
//! [`LogStore::open`] scans every frame and classifies damage into exactly
//! two responses, both of which it must never confuse:
//!
//! * **Torn tail** — the file ends mid-frame, or a frame header fails its
//!   own checksum (so `len` cannot be trusted): everything from that
//!   offset on is unreadable. The file is truncated back to the last good
//!   frame boundary ([`RecoveryReport::truncated_bytes`]) so subsequent
//!   appends heal the log. This is the crash-during-flush case.
//! * **Corrupt record** — the frame header is intact but the payload fails
//!   its checksum or its codec: the record is *skipped*
//!   ([`RecoveryReport::skipped_corrupt`]) and the scan continues at the
//!   next frame, because the framing still walks. This is the bit-rot
//!   case.
//!
//! Recovery never panics and never yields a record whose bytes were not
//! exactly the bytes appended: a wrong proof cannot be served from a
//! damaged store, only a cache miss (which re-proves).

#![deny(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::unreachable,
    clippy::indexing_slicing
)]

use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};

use vchain_hash::{hash_domain, Digest};

use crate::wire::{Reader, WireError, Writer};

/// The eight magic bytes heading every store file.
pub const STORE_MAGIC: [u8; 8] = *b"VCHSTORE";

/// Store *file* format version (header layout + framing).
pub const STORE_VERSION: u8 = 1;

/// Store *record* codec version; the first byte of every frame payload.
pub const RECORD_VERSION: u8 = 1;

/// Bytes of file header: magic + version.
pub const STORE_HEADER_LEN: usize = 9;

/// Bytes of frame header: `len` + `len_check` + `payload_check`.
pub const FRAME_HEADER_LEN: usize = 16;

/// Involutive mixing constant for the frame-length checksum: a frame
/// stores `len ^ LEN_CHECK_XOR` beside `len`, so any single corrupted
/// header word breaks the equality.
pub const LEN_CHECK_XOR: u32 = 0x9E37_79B9;

/// Sanity cap on a single record's payload. Honest records are a few
/// hundred bytes (a compressed proof or a witness coefficient vector); a
/// claimed length beyond this is treated as torn-tail corruption rather
/// than an allocation request.
pub const MAX_RECORD_LEN: usize = 1 << 20;

/// Why a store file could not be opened or appended to. Damage *inside* a
/// structurally valid file is not an error — it is absorbed by the
/// recovery protocol and reported in [`RecoveryReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// An underlying filesystem operation failed (message of the
    /// `std::io::Error`).
    Io(String),
    /// The file exists but does not begin with [`STORE_MAGIC`] — refuse to
    /// scan (or truncate!) a file that was never ours.
    BadMagic,
    /// The file's format version is not understood by this build.
    UnsupportedVersion(u8),
}

impl core::fmt::Display for StoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StoreError::Io(msg) => write!(f, "store I/O: {msg}"),
            StoreError::BadMagic => write!(f, "not a vchain store file (bad magic)"),
            StoreError::UnsupportedVersion(v) => {
                write!(f, "unsupported store format version {v}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

fn io_err(e: std::io::Error) -> StoreError {
    StoreError::Io(e.to_string())
}

/// The persistent identity of a cached proof: which block's index entry it
/// refutes (`block_height`, informational), the digest of the serialized
/// accumulative value (`att`), and the digest of the clause's canonical
/// `(index, count)` encoding. The latter two reproduce the in-memory
/// [`CacheKey`](crate::cache::CacheKey) exactly, so rehydration needs no
/// access to the original multisets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecordKey {
    /// Chain tip height at flush time (provenance/debugging only — not
    /// part of the cache key).
    pub block_height: u64,
    /// `H(value_bytes(att))` of the accumulative value the proof refutes
    /// against.
    pub att: Digest,
    /// `H(canonical clause bytes)` of the refuted clause.
    pub clause: Digest,
}

/// One durable record of the serving layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreRecord {
    /// A cached disjointness proof, as canonical
    /// [`Accumulator::proof_bytes`](vchain_acc::Accumulator::proof_bytes).
    Proof {
        /// Which `(att, clause)` pair the proof refutes.
        key: RecordKey,
        /// Canonical proof bytes.
        proof: Vec<u8>,
    },
    /// A persisted `X₁`-side proving witness (Construction 2: the exponent
    /// coefficient vector), keyed by the accumulative-value digest.
    Witness {
        /// Height of the block whose index entry this witness belongs to.
        block_height: u64,
        /// `H(value_bytes(att))` of the witnessed entry.
        att: Digest,
        /// Serialized witness
        /// ([`Accumulator::witness_bytes`](vchain_acc::Accumulator::witness_bytes)).
        witness: Vec<u8>,
    },
    /// A cache-statistics snapshot; on rehydration the *last* snapshot in
    /// the log wins. Activity after the final flush is lost by design.
    Stats {
        /// Cache hits at snapshot time.
        hits: u64,
        /// Cache misses at snapshot time.
        misses: u64,
        /// LRU evictions at snapshot time.
        evictions: u64,
    },
}

const TAG_PROOF: u8 = 0;
const TAG_WITNESS: u8 = 1;
const TAG_STATS: u8 = 2;

/// Encode a record's frame *payload* (no frame header): the
/// [`RECORD_VERSION`] byte, a tag byte, then the variant's fields on the
/// shared little-endian writer.
pub fn encode_record(record: &StoreRecord) -> Vec<u8> {
    let mut w = Writer::default();
    w.u8(RECORD_VERSION);
    match record {
        StoreRecord::Proof { key, proof } => {
            w.u8(TAG_PROOF);
            w.u64(key.block_height);
            w.bytes(key.att.as_bytes());
            w.bytes(key.clause.as_bytes());
            w.count(proof.len());
            w.bytes(proof);
        }
        StoreRecord::Witness { block_height, att, witness } => {
            w.u8(TAG_WITNESS);
            w.u64(*block_height);
            w.bytes(att.as_bytes());
            w.count(witness.len());
            w.bytes(witness);
        }
        StoreRecord::Stats { hits, misses, evictions } => {
            w.u8(TAG_STATS);
            w.u64(*hits);
            w.u64(*misses);
            w.u64(*evictions);
        }
    }
    w.buf
}

/// Total inverse of [`encode_record`]: typed [`WireError`]s on any
/// malformation (wrong record version, unknown tag, truncation, oversized
/// counts, trailing bytes), never a panic. Accepted payloads re-encode
/// byte-identically.
pub fn decode_record(payload: &[u8]) -> Result<StoreRecord, WireError> {
    let mut r = Reader::new(payload);
    let version = r.u8()?;
    if version != RECORD_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let tag = r.u8()?;
    let record = match tag {
        TAG_PROOF => {
            let block_height = r.u64()?;
            let att = r.digest()?;
            let clause = r.digest()?;
            let n = r.count("proof bytes", 1)?;
            let proof = r.take(n)?.to_vec();
            StoreRecord::Proof { key: RecordKey { block_height, att, clause }, proof }
        }
        TAG_WITNESS => {
            let block_height = r.u64()?;
            let att = r.digest()?;
            let n = r.count("witness bytes", 1)?;
            let witness = r.take(n)?.to_vec();
            StoreRecord::Witness { block_height, att, witness }
        }
        TAG_STATS => StoreRecord::Stats { hits: r.u64()?, misses: r.u64()?, evictions: r.u64()? },
        other => return Err(WireError::BadTag { what: "store record", tag: other }),
    };
    r.finish()?;
    Ok(record)
}

/// The payload checksum: first eight little-endian bytes of a
/// domain-separated SHA-256 over the payload.
pub fn payload_check(payload: &[u8]) -> u64 {
    let d = hash_domain("vchain/store-frame", payload);
    let mut out = 0u64;
    for (i, b) in d.as_bytes().iter().take(8).enumerate() {
        out |= (*b as u64) << (8 * i);
    }
    out
}

/// Encode a record as a complete on-disk frame (header + payload) — what
/// [`LogStore::append`] writes, exposed so crash tests can carve frames at
/// arbitrary byte boundaries.
pub fn frame_record(record: &StoreRecord) -> Vec<u8> {
    let payload = encode_record(record);
    let len = payload.len() as u32;
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&(len ^ LEN_CHECK_XOR).to_le_bytes());
    out.extend_from_slice(&payload_check(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// What [`LogStore::open`] found and repaired.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records decoded and returned.
    pub loaded: usize,
    /// Frames whose header walked but whose payload failed its checksum or
    /// codec — skipped, scan continued.
    pub skipped_corrupt: usize,
    /// Bytes cut off the tail (torn final write or untrustworthy frame
    /// header). `0` on a clean open.
    pub truncated_bytes: u64,
}

/// An append-only record log backed by one flat file. See the module docs
/// for layout and recovery semantics.
///
/// Writes go through [`LogStore::append`] (buffered in the OS) and become
/// crash-durable at [`LogStore::sync`]; the serving layer syncs once per
/// flush batch, not per record.
pub struct LogStore {
    file: File,
    path: PathBuf,
}

impl LogStore {
    /// Open (creating if absent) the store at `path`, replay every
    /// surviving record, and repair the file per the recovery protocol.
    ///
    /// A file shorter than its own header is treated as a torn creation
    /// and rewritten fresh; a file with foreign magic is refused with
    /// [`StoreError::BadMagic`] — this code never truncates a file it
    /// cannot prove is its own.
    pub fn open(
        path: impl AsRef<Path>,
    ) -> Result<(Self, Vec<StoreRecord>, RecoveryReport), StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(io_err)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(io_err)?;

        let mut report = RecoveryReport::default();

        if bytes.len() < STORE_HEADER_LEN {
            // Empty (fresh) or torn mid-header-write: both rewrite cleanly.
            report.truncated_bytes = bytes.len() as u64;
            file.set_len(0).map_err(io_err)?;
            file.write_all(&STORE_MAGIC).map_err(io_err)?;
            file.write_all(&[STORE_VERSION]).map_err(io_err)?;
            file.sync_all().map_err(io_err)?;
            return Ok((Self { file, path }, Vec::new(), report));
        }
        if bytes.get(..8) != Some(&STORE_MAGIC[..]) {
            return Err(StoreError::BadMagic);
        }
        let version = bytes.get(8).copied().unwrap_or(0);
        if version != STORE_VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }

        let mut records = Vec::new();
        let mut pos = STORE_HEADER_LEN;
        let mut truncate_at: Option<usize> = None;
        while pos < bytes.len() {
            let Some(header) = bytes.get(pos..pos + FRAME_HEADER_LEN) else {
                truncate_at = Some(pos); // torn mid-header
                break;
            };
            let len = u32::from_le_bytes([
                header.first().copied().unwrap_or(0),
                header.get(1).copied().unwrap_or(0),
                header.get(2).copied().unwrap_or(0),
                header.get(3).copied().unwrap_or(0),
            ]);
            let len_check = u32::from_le_bytes([
                header.get(4).copied().unwrap_or(0),
                header.get(5).copied().unwrap_or(0),
                header.get(6).copied().unwrap_or(0),
                header.get(7).copied().unwrap_or(0),
            ]);
            let mut pcheck = 0u64;
            for (i, b) in header.get(8..16).unwrap_or(&[]).iter().enumerate() {
                pcheck |= (*b as u64) << (8 * i);
            }
            if len ^ LEN_CHECK_XOR != len_check || len as usize > MAX_RECORD_LEN {
                // The length field itself is untrustworthy: everything from
                // here on is unreadable.
                truncate_at = Some(pos);
                break;
            }
            let body_start = pos + FRAME_HEADER_LEN;
            let Some(payload) = bytes.get(body_start..body_start + len as usize) else {
                truncate_at = Some(pos); // torn mid-payload
                break;
            };
            if payload_check(payload) != pcheck {
                report.skipped_corrupt += 1;
            } else {
                match decode_record(payload) {
                    Ok(r) => records.push(r),
                    Err(_) => report.skipped_corrupt += 1,
                }
            }
            pos = body_start + len as usize;
        }
        if let Some(at) = truncate_at {
            report.truncated_bytes = (bytes.len() - at) as u64;
            file.set_len(at as u64).map_err(io_err)?;
            file.sync_all().map_err(io_err)?;
        }
        report.loaded = records.len();
        // Position at the (possibly repaired) end for subsequent appends.
        use std::io::Seek as _;
        file.seek(std::io::SeekFrom::End(0)).map_err(io_err)?;
        Ok((Self { file, path }, records, report))
    }

    /// Append one record (buffered; durable after [`LogStore::sync`]).
    pub fn append(&mut self, record: &StoreRecord) -> Result<(), StoreError> {
        self.file.write_all(&frame_record(record)).map_err(io_err)
    }

    /// Append a batch of records (one buffered write each).
    pub fn append_all(&mut self, records: &[StoreRecord]) -> Result<(), StoreError> {
        for r in records {
            self.append(r)?;
        }
        Ok(())
    }

    /// Flush OS buffers and fsync — the durability point of a flush batch.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file.flush().map_err(io_err)?;
        self.file.sync_all().map_err(io_err)
    }

    /// The backing file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl core::fmt::Debug for LogStore {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "LogStore({})", self.path.display())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic, clippy::indexing_slicing)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("vchain-store-unit-{}-{tag}-{n}.log", std::process::id()))
    }

    fn sample_records() -> Vec<StoreRecord> {
        vec![
            StoreRecord::Proof {
                key: RecordKey {
                    block_height: 7,
                    att: Digest([1u8; 32]),
                    clause: Digest([2u8; 32]),
                },
                proof: vec![9, 8, 7, 6],
            },
            StoreRecord::Witness { block_height: 3, att: Digest([4u8; 32]), witness: vec![1; 21] },
            StoreRecord::Stats { hits: 10, misses: 2, evictions: 1 },
        ]
    }

    #[test]
    fn append_reopen_round_trip() {
        let path = temp_path("roundtrip");
        let records = sample_records();
        {
            let (mut store, loaded, report) = LogStore::open(&path).unwrap();
            assert!(loaded.is_empty());
            assert_eq!(report, RecoveryReport::default());
            store.append_all(&records).unwrap();
            store.sync().unwrap();
        }
        let (_store, loaded, report) = LogStore::open(&path).unwrap();
        assert_eq!(loaded, records);
        assert_eq!(report.loaded, 3);
        assert_eq!(report.skipped_corrupt, 0);
        assert_eq!(report.truncated_bytes, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_file_is_refused() {
        let path = temp_path("foreign");
        std::fs::write(&path, b"definitely not a store file").unwrap();
        assert_eq!(LogStore::open(&path).unwrap_err(), StoreError::BadMagic);
        // and the foreign file is left untouched
        assert_eq!(std::fs::read(&path).unwrap(), b"definitely not a store file");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn future_version_is_refused() {
        let path = temp_path("version");
        let mut bytes = STORE_MAGIC.to_vec();
        bytes.push(STORE_VERSION + 1);
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(
            LogStore::open(&path).unwrap_err(),
            StoreError::UnsupportedVersion(STORE_VERSION + 1)
        );
        std::fs::remove_file(&path).ok();
    }
}
