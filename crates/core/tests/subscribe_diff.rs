//! Differential layer for the subscription engine: the attribute-indexed
//! match path ([`WalkStrategy::Indexed`]) must be **byte-identical** to the
//! retained naive walk ([`WalkStrategy::Naive`]) — same publish schedule,
//! same update encodings, to the last proof byte — across both accumulator
//! constructions, both publication modes, both IP-Tree settings, and both
//! standing-query skew profiles (Zipf and adversarial).
//!
//! Everything is seeded: a failure replays from the config tuple alone.

use std::sync::OnceLock;

use rand::rngs::StdRng;
use rand::SeedableRng;
use vchain_acc::{Acc1, Acc2, Accumulator};
use vchain_chain::{Block, Difficulty};
use vchain_core::miner::{IndexScheme, IndexedBlock, Miner, MinerConfig};
use vchain_core::query::Query;
use vchain_core::subscribe::{SubscriptionEngine, SubscriptionMode, WalkStrategy};
use vchain_core::wire::encode_update;
use vchain_datagen::{Dataset, SkewProfile, SubscriptionSpec, WorkloadSpec};

const DOMAIN_BITS: u8 = 6;
const NUM_BLOCKS: usize = 104;

fn cfg() -> MinerConfig {
    MinerConfig {
        scheme: IndexScheme::Both,
        skip_levels: 3,
        domain_bits: DOMAIN_BITS,
        difficulty: Difficulty(0),
        bloom_bits_per_key: 10,
    }
}

fn acc2() -> &'static Acc2 {
    static ACC: OnceLock<Acc2> = OnceLock::new();
    ACC.get_or_init(|| Acc2::keygen(4096, &mut StdRng::seed_from_u64(0xD1FF)))
}

fn acc1() -> &'static Acc1 {
    static ACC: OnceLock<Acc1> = OnceLock::new();
    ACC.get_or_init(|| Acc1::keygen(600, &mut StdRng::seed_from_u64(0xD1FF)))
}

/// The standing-query population: Zipf-skewed pool clauses, adversarial
/// attribute skew (hot clause, ghost keywords, stacked cells), plus edge
/// shapes (an everything-matcher and a wider-than-the-exact-mask CNF).
fn population(zipf_n: usize, adversarial_n: usize) -> Vec<Query> {
    let mut zipf = SubscriptionSpec::paper_defaults(Dataset::FourSquare, SkewProfile::Zipf);
    zipf.domain_bits = DOMAIN_BITS;
    zipf.clause_pool = 12;
    zipf.clause_size = 2;
    zipf.range_bits = 2;
    let mut adv = SubscriptionSpec::paper_defaults(Dataset::FourSquare, SkewProfile::Adversarial);
    adv.domain_bits = DOMAIN_BITS;
    adv.clause_pool = 8;
    adv.clause_size = 2;
    adv.range_bits = 2;

    let mut qs = zipf.generate(zipf_n);
    qs.extend(adv.generate(adversarial_n));
    // Matches every block: the classifier must pass it straight through.
    qs.push(Query { time_window: None, ranges: vec![], keywords: vec![] });
    // More clauses than the classifier's 64-bit exact mask: forced onto the
    // candidate walk, where the twin takes the identical path.
    qs.push(Query {
        time_window: None,
        ranges: vec![],
        keywords: (0..70).map(|i| vec![format!("unindexed:{i}")]).collect(),
    });
    qs
}

fn chain<A: Accumulator + Clone>(acc: &A) -> (Vec<Block>, Vec<IndexedBlock<A>>) {
    let mut spec = WorkloadSpec::paper_defaults(Dataset::FourSquare, NUM_BLOCKS);
    spec.domain_bits = DOMAIN_BITS;
    spec.objects_per_block = 3;
    let w = spec.generate();
    let mut miner = Miner::new(cfg(), acc.clone());
    for (ts, objs) in &w.blocks {
        miner.mine_block(*ts, objs.clone());
    }
    let blocks: Vec<Block> = miner.store().blocks().to_vec();
    let indexed = miner.indexed().to_vec();
    (blocks, indexed)
}

/// Drive the indexed engine and the naive twin over the same chain; assert
/// an identical publish schedule and byte-identical update encodings,
/// including the deregistration flushes.
fn assert_twins<A: Accumulator + Clone>(
    acc: &A,
    mode: SubscriptionMode,
    use_iptree: bool,
    queries: &[Query],
    blocks: &[Block],
    indexed: &[IndexedBlock<A>],
) {
    let mut fast = SubscriptionEngine::new(cfg(), acc.clone(), mode, use_iptree);
    let mut twin = SubscriptionEngine::new(cfg(), acc.clone(), mode, use_iptree)
        .with_strategy(WalkStrategy::Naive);
    assert_eq!(fast.strategy(), WalkStrategy::Indexed, "indexed is the default");

    let ids: Vec<u32> = queries.iter().map(|q| fast.register(q)).collect();
    for q in queries {
        twin.register(q);
    }

    for (block, idx) in blocks.iter().zip(indexed) {
        let h = block.header.height;
        let a = fast.process_block(block, idx);
        let b = twin.process_block(block, idx);
        assert_eq!(
            a.len(),
            b.len(),
            "publish schedule diverged at height {h} ({mode:?}, iptree={use_iptree})"
        );
        for (ua, ub) in a.iter().zip(&b) {
            assert_eq!(ua.query_id, ub.query_id, "schedule order diverged at height {h}");
            assert_eq!(
                encode_update(ua),
                encode_update(ub),
                "update bytes diverged at height {h} for query {} ({mode:?}, \
                 iptree={use_iptree})",
                ua.query_id
            );
        }
    }

    // Lazy stacks flush on deregistration; those must agree byte-for-byte
    // too (including "nothing pending" agreement).
    for id in ids {
        match (fast.deregister(id), twin.deregister(id)) {
            (None, None) => {}
            (Some(ua), Some(ub)) => {
                assert_eq!(encode_update(&ua), encode_update(&ub), "flush diverged for {id}");
            }
            (a, b) => panic!(
                "flush presence diverged for {id}: indexed={:?} naive={:?}",
                a.map(|u| (u.from_height, u.to_height)),
                b.map(|u| (u.from_height, u.to_height))
            ),
        }
    }
}

#[test]
fn acc2_realtime_indexed_equals_naive() {
    let (blocks, indexed) = chain(acc2());
    let qs = population(24, 12);
    for use_iptree in [true, false] {
        assert_twins(acc2(), SubscriptionMode::Realtime, use_iptree, &qs, &blocks, &indexed);
    }
}

#[test]
fn acc2_lazy_indexed_equals_naive() {
    let (blocks, indexed) = chain(acc2());
    let qs = population(24, 12);
    for use_iptree in [true, false] {
        assert_twins(acc2(), SubscriptionMode::Lazy, use_iptree, &qs, &blocks, &indexed);
    }
}

#[test]
fn acc1_realtime_indexed_equals_naive() {
    let (blocks, indexed) = chain(acc1());
    let qs = population(10, 6);
    for use_iptree in [true, false] {
        assert_twins(acc1(), SubscriptionMode::Realtime, use_iptree, &qs, &blocks, &indexed);
    }
}
