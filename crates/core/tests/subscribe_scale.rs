//! Scale smoke test: 10⁵ standing queries over 50 blocks.
//!
//! Gated behind `VCHAIN_SCALE_TEST=1` (it registers 100 000 subscriptions
//! and publishes 5 million updates, which is too heavy for the default
//! tier-1 loop; CI runs it in the bench job). Asserts the two properties
//! the inverted match path is sold on:
//!
//! 1. **Pre-filtering works** — the per-block candidate count (queries
//!    that take the exact walk) stays far below Q; everything else is
//!    refuted through the attribute index + Bloom filter and settled with
//!    shared, deduplicated disjointness proofs.
//! 2. **Publishing stays correct** — for a deterministic sample of the
//!    population, the published results equal a naive `object_matches`
//!    ground truth on every block, and the updates verify end-to-end
//!    against a light client.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vchain_acc::Acc2;
use vchain_chain::{Difficulty, LightClient};
use vchain_core::miner::{IndexScheme, Miner, MinerConfig};
use vchain_core::subscribe::{verify_subscription_update, SubscriptionEngine, SubscriptionMode};
use vchain_datagen::{Dataset, SkewProfile, SubscriptionSpec, WorkloadSpec};

const NUM_QUERIES: usize = 100_000;
const NUM_BLOCKS: usize = 50;
const SAMPLE_STRIDE: usize = 997;

#[test]
fn scale_100k_subscriptions_50_blocks() {
    if std::env::var("VCHAIN_SCALE_TEST").as_deref() != Ok("1") {
        eprintln!("skipping scale smoke test; set VCHAIN_SCALE_TEST=1 to run it");
        return;
    }

    let mut spec = WorkloadSpec::paper_defaults(Dataset::FourSquare, NUM_BLOCKS);
    spec.objects_per_block = 4;
    let cfg = MinerConfig {
        scheme: IndexScheme::Both,
        skip_levels: 3,
        domain_bits: spec.domain_bits,
        difficulty: Difficulty(0),
        bloom_bits_per_key: 10,
    };
    let acc = Acc2::keygen(4096, &mut StdRng::seed_from_u64(0x5CA1E));

    let w = spec.generate();
    let mut miner = Miner::new(cfg, acc.clone());
    let mut light = LightClient::new(cfg.difficulty);
    for (ts, objs) in &w.blocks {
        miner.mine_block(*ts, objs.clone());
    }
    for h in miner.headers() {
        light.sync_header(h).expect("headers validate");
    }

    // 100k standing queries: every one carries selective grid-aligned
    // ranges plus a pooled keyword clause, so blocks refute the vast
    // majority through the index.
    let mut sub = SubscriptionSpec::paper_defaults(Dataset::FourSquare, SkewProfile::Zipf);
    sub.domain_bits = spec.domain_bits;
    sub.range_fraction = 1.0;
    let queries = sub.generate(NUM_QUERIES);

    let mut engine = SubscriptionEngine::new(cfg, acc.clone(), SubscriptionMode::Realtime, false);
    let t0 = std::time::Instant::now();
    let ids: Vec<u32> = queries.iter().map(|q| engine.register(q)).collect();
    eprintln!("registered {NUM_QUERIES} subscriptions in {:?}", t0.elapsed());

    let sample: Vec<u32> = ids.iter().copied().step_by(SAMPLE_STRIDE).collect();
    let compiled: Vec<_> =
        sample.iter().map(|&id| (id, engine.compiled(id).expect("registered").clone())).collect();

    let mut max_candidates = 0usize;
    let t1 = std::time::Instant::now();
    for h in 0..NUM_BLOCKS {
        let block = miner.store().blocks()[h].clone();
        let indexed = &miner.indexed()[h];

        let m = engine.match_block(&block, indexed);
        max_candidates = max_candidates.max(m.candidates);
        assert!(
            m.candidates < NUM_QUERIES / 10,
            "pre-filtering collapsed at height {h}: {} candidates of {NUM_QUERIES}",
            m.candidates
        );
        let updates = engine.publish(m, indexed);

        // Sampled ground truth: published results must equal a naive
        // object_matches sweep, and the updates must verify.
        for (id, cq) in &compiled {
            let expected: Vec<u64> =
                block.objects.iter().filter(|o| cq.object_matches(o)).map(|o| o.id).collect();
            let update = updates
                .iter()
                .find(|u| u.query_id == *id)
                .unwrap_or_else(|| panic!("no update for sampled query {id} at height {h}"));
            let got: Vec<u64> =
                update.results.iter().flat_map(|(_, objs)| objs.iter().map(|o| o.id)).collect();
            assert_eq!(got, expected, "results diverged for query {id} at height {h}");
            verify_subscription_update(cq, update, &light, &cfg, &acc)
                .expect("sampled update verifies");
        }
    }
    eprintln!(
        "processed {NUM_BLOCKS} blocks in {:?}; worst-case candidates {} / {NUM_QUERIES}",
        t1.elapsed(),
        max_candidates
    );
    assert!(max_candidates > 0, "workload never exercised the exact walk");
}
