//! Subscription-query integration tests (paper §7): real-time and lazy
//! publication, IP-Tree proof sharing, and verification of every update.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vchain_acc::Acc2;
use vchain_chain::{Difficulty, LightClient, Object};
use vchain_core::miner::{IndexScheme, Miner, MinerConfig};
use vchain_core::query::{Query, RangeSpec};
use vchain_core::subscribe::{
    verify_subscription_update, SubscriptionEngine, SubscriptionMode, SubscriptionUpdate,
};
use vchain_core::vo::BlockCoverage;

const DOMAIN_BITS: u8 = 6;

fn cfg() -> MinerConfig {
    MinerConfig {
        scheme: IndexScheme::Both,
        skip_levels: 3,
        domain_bits: DOMAIN_BITS,
        difficulty: Difficulty(2),
        bloom_bits_per_key: 10,
    }
}

fn acc() -> Acc2 {
    Acc2::keygen(4096, &mut StdRng::seed_from_u64(100))
}

fn queries() -> Vec<Query> {
    vec![
        Query {
            time_window: None,
            ranges: vec![RangeSpec { dim: 0, lo: 0, hi: 20 }],
            keywords: vec![vec!["Sedan".into()], vec!["Benz".into(), "BMW".into()]],
        },
        Query {
            time_window: None,
            ranges: vec![RangeSpec { dim: 0, lo: 8, hi: 24 }],
            keywords: vec![vec!["Sedan".into()]],
        },
        Query {
            time_window: None,
            ranges: vec![RangeSpec { dim: 0, lo: 40, hi: 47 }],
            keywords: vec![vec!["Van".into()]],
        },
    ]
}

fn blocks(n: u64, seed: u64) -> Vec<(u64, Vec<Object>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let kinds = ["Sedan", "Van", "Truck"];
    let brands = ["Benz", "BMW", "Audi"];
    let mut id = 0;
    (0..n)
        .map(|b| {
            let objs = (0..3)
                .map(|_| {
                    id += 1;
                    Object::new(
                        id,
                        (b + 1) * 10,
                        vec![rng.gen_range(0..64)],
                        vec![
                            kinds[rng.gen_range(0..kinds.len())].to_string(),
                            brands[rng.gen_range(0..brands.len())].to_string(),
                        ],
                    )
                })
                .collect();
            ((b + 1) * 10, objs)
        })
        .collect()
}

struct Harness {
    miner: Miner<Acc2>,
    light: LightClient,
    engine: SubscriptionEngine<Acc2>,
}

impl Harness {
    fn new(mode: SubscriptionMode, use_iptree: bool) -> Self {
        let c = cfg();
        let a = acc();
        Self {
            miner: Miner::new(c, a.clone()),
            light: LightClient::new(c.difficulty),
            engine: SubscriptionEngine::new(c, a, mode, use_iptree),
        }
    }

    /// Mine one block and publish subscription updates for it.
    fn step(&mut self, ts: u64, objs: Vec<Object>) -> Vec<SubscriptionUpdate<Acc2>> {
        let h = self.miner.mine_block(ts, objs);
        let header = self.miner.headers()[h as usize].clone();
        self.light.sync_header(header).unwrap();
        let block = self.miner.store().block(h).unwrap().clone();
        let indexed = self.miner.indexed()[h as usize].clone();
        self.engine.process_block(&block, &indexed)
    }
}

/// Ground truth: which objects of the stream match each query.
fn naive_matches(stream: &[(u64, Vec<Object>)], q: &Query) -> Vec<u64> {
    let cq = q.compile(DOMAIN_BITS);
    let mut ids: Vec<u64> = stream
        .iter()
        .flat_map(|(_, objs)| objs.iter())
        .filter(|o| cq.object_matches(o))
        .map(|o| o.id)
        .collect();
    ids.sort_unstable();
    ids
}

fn collect_and_verify(
    h: &Harness,
    updates: &[SubscriptionUpdate<Acc2>],
    per_query: &mut std::collections::BTreeMap<u32, Vec<u64>>,
) {
    for u in updates {
        let q = h.engine.compiled(u.query_id).expect("registered");
        let verified = verify_subscription_update(q, u, &h.light, &h.engine.cfg, &h.engine.acc)
            .expect("honest update must verify");
        per_query.entry(u.query_id).or_default().extend(verified.iter().map(|o| o.id));
    }
}

fn run_mode(mode: SubscriptionMode, use_iptree: bool) {
    let stream = blocks(12, 42);
    let mut h = Harness::new(mode, use_iptree);
    let qs = queries();
    let ids: Vec<u32> = qs.iter().map(|q| h.engine.register(q)).collect();

    let mut got: std::collections::BTreeMap<u32, Vec<u64>> = Default::default();
    for (ts, objs) in stream.clone() {
        let updates = h.step(ts, objs);
        collect_and_verify(&h, &updates, &mut got);
    }
    // flush lazy leftovers
    for qid in &ids {
        if let Some(u) = h.engine.deregister(*qid) {
            let q = qs[*qid as usize].compile(DOMAIN_BITS);
            let verified =
                verify_subscription_update(&q, &u, &h.light, &h.engine.cfg, &h.engine.acc)
                    .expect("flush update must verify");
            got.entry(*qid).or_default().extend(verified.iter().map(|o| o.id));
        }
    }

    for (qid, q) in ids.iter().zip(&qs) {
        let mut mine = got.get(qid).cloned().unwrap_or_default();
        mine.sort_unstable();
        let expected = naive_matches(&stream, q);
        assert_eq!(mine, expected, "query {qid} ({mode:?}, iptree={use_iptree})");
    }
}

#[test]
fn realtime_without_iptree() {
    run_mode(SubscriptionMode::Realtime, false);
}

#[test]
fn realtime_with_iptree() {
    run_mode(SubscriptionMode::Realtime, true);
}

#[test]
fn lazy_without_iptree() {
    run_mode(SubscriptionMode::Lazy, false);
}

#[test]
fn lazy_with_iptree() {
    run_mode(SubscriptionMode::Lazy, true);
}

#[test]
fn lazy_defers_and_aggregates() {
    // A never-matching query: lazy must buffer everything and flush only at
    // deregistration, using skip aggregation for runs of mismatches.
    let mut h = Harness::new(SubscriptionMode::Lazy, false);
    let q = Query {
        time_window: None,
        ranges: vec![],
        keywords: vec![vec!["NeverPresentKeyword".into()]],
    };
    let qid = h.engine.register(&q);
    let stream = blocks(9, 77);
    let mut published = 0;
    for (ts, objs) in stream {
        published += h.step(ts, objs).len();
    }
    assert_eq!(published, 0, "lazy mode must not publish while nothing matches");
    let flush = h.engine.deregister(qid).expect("pending coverage to flush");
    assert_eq!(flush.from_height, 0);
    assert_eq!(flush.to_height, 8);
    // skip aggregation must have compressed at least one run
    let skips = flush.coverage.iter().filter(|c| matches!(c, BlockCoverage::Skip { .. })).count();
    assert!(skips >= 1, "expected aggregated skip coverage, got none");
    let cq = q.compile(DOMAIN_BITS);
    let verified =
        verify_subscription_update(&cq, &flush, &h.light, &h.engine.cfg, &h.engine.acc).unwrap();
    assert!(verified.is_empty());
}

#[test]
fn iptree_shares_proofs_and_stays_correct() {
    // Many queries sharing keyword clauses: the IP-Tree path must produce
    // exactly the same verified result sets as the per-query path.
    let stream = blocks(6, 9);
    let many: Vec<Query> = (0..8)
        .map(|i| Query {
            time_window: None,
            ranges: vec![RangeSpec { dim: 0, lo: (i % 4) * 16, hi: (i % 4) * 16 + 15 }],
            keywords: vec![vec!["Sedan".into()]],
        })
        .collect();

    let run = |use_iptree: bool| {
        let mut h = Harness::new(SubscriptionMode::Realtime, use_iptree);
        for q in &many {
            h.engine.register(q);
        }
        let mut got: std::collections::BTreeMap<u32, Vec<u64>> = Default::default();
        for (ts, objs) in stream.clone() {
            let updates = h.step(ts, objs);
            collect_and_verify(&h, &updates, &mut got);
        }
        got
    };

    let with = run(true);
    let without = run(false);
    assert_eq!(with, without, "IP-Tree must not change any query's results");
}
