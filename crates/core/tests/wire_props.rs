//! Wire-codec properties (the decode boundary's contract):
//!
//! 1. **Round-trip** — encoding any response and decoding it back is the
//!    identity, byte-for-byte (`encode ∘ decode ∘ encode = encode`).
//! 2. **Canonical form** — *any* byte string the decoder accepts re-encodes
//!    to exactly those bytes: there is one encoding per value, so corrupted
//!    inputs cannot alias a different encoding of the same response.
//! 3. **Single-bit corruption** — exhaustively over every bit of an honest
//!    encoding: the flipped string either fails to decode with a typed
//!    [`WireError`], or decodes to a VO that full verification rejects.
//!    Never a panic, never an accept.

use std::sync::OnceLock;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vchain_acc::Acc1;
use vchain_chain::{Difficulty, LightClient, Object};
use vchain_core::adversary::Adversary;
use vchain_core::miner::{IndexScheme, Miner, MinerConfig};
use vchain_core::query::{CompiledQuery, Query, RangeSpec};
use vchain_core::verify::verify_response;
use vchain_core::vo::QueryResponse;
use vchain_core::wire::{decode_response, encode_response};

const DOMAIN_BITS: u8 = 6;

struct Fixture {
    q: CompiledQuery,
    light: LightClient,
    cfg: MinerConfig,
    acc: Acc1,
    encoded: Vec<u8>,
}

/// One small honest chain + response, built once: a 3-block window keeps
/// the encoding in the low kilobytes so the exhaustive bit sweep stays fast.
fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let cfg = MinerConfig {
            scheme: IndexScheme::Intra,
            skip_levels: 3,
            domain_bits: DOMAIN_BITS,
            difficulty: Difficulty(2),
            bloom_bits_per_key: 10,
        };
        let acc = Acc1::keygen(600, &mut StdRng::seed_from_u64(31));
        let mut miner = Miner::new(cfg, acc.clone());
        let mut light = LightClient::new(cfg.difficulty);
        let mut rng = StdRng::seed_from_u64(32);
        let kinds = ["Sedan", "Van"];
        let mut id = 0u64;
        for b in 0..3u64 {
            let objs: Vec<Object> = (0..3)
                .map(|_| {
                    id += 1;
                    Object::new(
                        id,
                        (b + 1) * 10,
                        vec![rng.gen_range(0..64)],
                        vec![kinds[rng.gen_range(0..kinds.len())].to_string()],
                    )
                })
                .collect();
            miner.mine_block((b + 1) * 10, objs);
        }
        for h in miner.headers() {
            light.sync_header(h).expect("headers validate");
        }
        let q = Query {
            time_window: Some((10, 30)),
            ranges: vec![RangeSpec { dim: 0, lo: 5, hi: 40 }],
            keywords: vec![vec!["Sedan".into()]],
        }
        .compile(DOMAIN_BITS);
        let sp = miner.into_service_provider();
        let resp = sp.time_window_query(&q);
        verify_response(&q, &resp, &light, &sp.cfg, &sp.acc).expect("honest response verifies");
        let encoded = encode_response(&resp);
        Fixture { q, light, cfg: sp.cfg, acc: sp.acc, encoded }
    })
}

/// Results-only responses (no crypto needed) with randomized shapes:
/// empty keyword lists, empty numeric vectors, unicode keywords, many
/// blocks — all round-trip byte-identically.
fn random_results_response(seed: u64) -> QueryResponse<Acc1> {
    let mut rng = StdRng::seed_from_u64(seed);
    let blocks = rng.gen_range(0..5usize);
    let results = (0..blocks)
        .map(|_| {
            let h: u64 = rng.gen();
            let objs = (0..rng.gen_range(0..4usize))
                .map(|_| {
                    let numeric = (0..rng.gen_range(0..3usize)).map(|_| rng.gen()).collect();
                    let keywords = (0..rng.gen_range(0..3usize))
                        .map(|_| match rng.gen_range(0..3u32) {
                            0 => String::new(),
                            1 => format!("kw-{}", rng.gen::<u32>()),
                            _ => "名前🚗".to_string(),
                        })
                        .collect();
                    Object::new(rng.gen(), rng.gen(), numeric, keywords)
                })
                .collect();
            (h, objs)
        })
        .collect();
    QueryResponse { results, coverage: vec![] }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn results_round_trip_byte_identically(seed in 0u64..u64::MAX) {
        let fix = fixture();
        let resp = random_results_response(seed);
        let bytes = encode_response(&resp);
        let decoded = decode_response(&fix.acc, &bytes);
        prop_assert!(decoded.is_ok(), "honest encoding must decode: {:?}", decoded.err());
        let reencoded = encode_response(&decoded.expect("checked"));
        prop_assert_eq!(reencoded, bytes);
    }

    #[test]
    fn accepted_corruptions_reencode_canonically(seed in 0u64..u64::MAX) {
        // Arbitrary multi-byte corruption: whenever the decoder accepts the
        // mutant, the mutant *is* the canonical encoding of what it decoded
        // to — corrupt bytes can never alias an honest value's encoding
        // under a different byte string.
        let fix = fixture();
        let mut adv = Adversary::new(seed);
        let (mutant, _label) = adv.mutate_bytes(&fix.encoded);
        if let Ok(decoded) = decode_response(&fix.acc, &mutant) {
            prop_assert_eq!(encode_response(&decoded), mutant);
        }
    }
}

/// The full honest encoding round-trips byte-identically (crypto slots
/// included), and so does a full verification pass on the decoded copy.
#[test]
fn honest_response_round_trips_byte_identically() {
    let fix = fixture();
    let decoded = decode_response(&fix.acc, &fix.encoded).expect("honest encoding decodes");
    assert_eq!(encode_response(&decoded), fix.encoded);
    verify_response(&fix.q, &decoded, &fix.light, &fix.cfg, &fix.acc)
        .expect("decoded copy verifies");
}

/// Exhaustive single-bit sweep over the whole honest encoding: every flip
/// is either a typed decode failure or a decoded-but-rejected VO, and any
/// accepted decode re-encodes to exactly the corrupted bytes.
#[test]
fn every_single_bit_corruption_fails_cleanly_or_is_rejected() {
    let fix = fixture();
    let mut decode_failures = 0usize;
    let mut verify_rejections = 0usize;
    for bit in 0..fix.encoded.len() * 8 {
        let mutant = Adversary::flip_bit(&fix.encoded, bit);
        match decode_response(&fix.acc, &mutant) {
            Err(_) => decode_failures += 1,
            Ok(decoded) => {
                assert_eq!(
                    encode_response(&decoded),
                    mutant,
                    "bit {bit}: accepted decode must re-encode canonically"
                );
                let v = verify_response(&fix.q, &decoded, &fix.light, &fix.cfg, &fix.acc);
                assert!(v.is_err(), "bit {bit}: corrupted VO must not verify");
                verify_rejections += 1;
            }
        }
    }
    assert_eq!(decode_failures + verify_rejections, fix.encoded.len() * 8);
    // Both rejection layers must actually participate in the sweep.
    assert!(decode_failures > 0, "no structural rejections in the sweep");
    assert!(verify_rejections > 0, "no cryptographic rejections in the sweep");
}
