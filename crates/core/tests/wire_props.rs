//! Wire-codec properties (the decode boundary's contract):
//!
//! 1. **Round-trip** — encoding any response and decoding it back is the
//!    identity, byte-for-byte (`encode ∘ decode ∘ encode = encode`).
//! 2. **Canonical form** — *any* byte string the decoder accepts re-encodes
//!    to exactly those bytes: there is one encoding per value, so corrupted
//!    inputs cannot alias a different encoding of the same response.
//! 3. **Single-bit corruption** — exhaustively over every bit of an honest
//!    encoding: the flipped string either fails to decode with a typed
//!    [`WireError`], or decodes to a VO that full verification rejects.
//!    Never a panic, never an accept.

use std::sync::OnceLock;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vchain_acc::Acc1;
use vchain_chain::{Difficulty, LightClient, Object};
use vchain_core::adversary::Adversary;
use vchain_core::miner::{IndexScheme, Miner, MinerConfig};
use vchain_core::query::{CompiledQuery, Query, RangeSpec};
use vchain_core::verify::verify_response;
use vchain_core::vo::QueryResponse;
use vchain_core::wire::{
    decode_response, decode_response_auto, decode_response_v2, decode_scan_v2, encode_response,
    encode_response_v2, encode_scan_v2, StreamDecoder, WireVersion,
};

const DOMAIN_BITS: u8 = 6;

struct Fixture {
    q: CompiledQuery,
    light: LightClient,
    cfg: MinerConfig,
    acc: Acc1,
    encoded: Vec<u8>,
}

/// One small honest chain + response, built once: a 3-block window keeps
/// the encoding in the low kilobytes so the exhaustive bit sweep stays fast.
fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let cfg = MinerConfig {
            scheme: IndexScheme::Intra,
            skip_levels: 3,
            domain_bits: DOMAIN_BITS,
            difficulty: Difficulty(2),
            bloom_bits_per_key: 10,
        };
        let acc = Acc1::keygen(600, &mut StdRng::seed_from_u64(31));
        let mut miner = Miner::new(cfg, acc.clone());
        let mut light = LightClient::new(cfg.difficulty);
        let mut rng = StdRng::seed_from_u64(32);
        let kinds = ["Sedan", "Van"];
        let mut id = 0u64;
        for b in 0..3u64 {
            let objs: Vec<Object> = (0..3)
                .map(|_| {
                    id += 1;
                    Object::new(
                        id,
                        (b + 1) * 10,
                        vec![rng.gen_range(0..64)],
                        vec![kinds[rng.gen_range(0..kinds.len())].to_string()],
                    )
                })
                .collect();
            miner.mine_block((b + 1) * 10, objs);
        }
        for h in miner.headers() {
            light.sync_header(h).expect("headers validate");
        }
        let q = Query {
            time_window: Some((10, 30)),
            ranges: vec![RangeSpec { dim: 0, lo: 5, hi: 40 }],
            keywords: vec![vec!["Sedan".into()]],
        }
        .compile(DOMAIN_BITS);
        let sp = miner.into_service_provider();
        let resp = sp.time_window_query(&q);
        verify_response(&q, &resp, &light, &sp.cfg, &sp.acc).expect("honest response verifies");
        let encoded = encode_response(&resp);
        Fixture { q, light, cfg: sp.cfg, acc: sp.acc, encoded }
    })
}

struct ScanFixture {
    queries: Vec<CompiledQuery>,
    light: LightClient,
    cfg: MinerConfig,
    acc: Acc1,
    responses: Vec<QueryResponse<Acc1>>,
    v1_total: usize,
    scan_v2: Vec<u8>,
}

/// An 8-window overlapping scan over a 6-block chain — the dedup fixture.
/// Consecutive windows re-cover the same blocks, so the scan-level v2
/// intern table has real work to do.
fn scan_fixture() -> &'static ScanFixture {
    static FIX: OnceLock<ScanFixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let cfg = MinerConfig {
            scheme: IndexScheme::Intra,
            skip_levels: 3,
            domain_bits: DOMAIN_BITS,
            difficulty: Difficulty(2),
            bloom_bits_per_key: 10,
        };
        let acc = Acc1::keygen(600, &mut StdRng::seed_from_u64(41));
        let mut miner = Miner::new(cfg, acc.clone());
        let mut light = LightClient::new(cfg.difficulty);
        let mut rng = StdRng::seed_from_u64(42);
        let kinds = ["Sedan", "Van"];
        let mut id = 100u64;
        for b in 0..6u64 {
            let objs: Vec<Object> = (0..2)
                .map(|_| {
                    id += 1;
                    Object::new(
                        id,
                        (b + 1) * 10,
                        vec![rng.gen_range(0..64)],
                        vec![kinds[rng.gen_range(0..kinds.len())].to_string()],
                    )
                })
                .collect();
            miner.mine_block((b + 1) * 10, objs);
        }
        for h in miner.headers() {
            light.sync_header(h).expect("headers validate");
        }
        let queries: Vec<CompiledQuery> = (0..8u64)
            .map(|i| {
                Query {
                    time_window: Some((5 + 5 * i, 25 + 5 * i)),
                    ranges: vec![RangeSpec { dim: 0, lo: 5, hi: 40 }],
                    keywords: vec![vec!["Sedan".into()]],
                }
                .compile(DOMAIN_BITS)
            })
            .collect();
        let sp = miner.into_service_provider();
        let responses: Vec<QueryResponse<Acc1>> =
            queries.iter().map(|q| sp.time_window_query(q)).collect();
        for (q, resp) in queries.iter().zip(&responses) {
            verify_response(q, resp, &light, &sp.cfg, &sp.acc).expect("honest scan verifies");
        }
        let v1_total = responses.iter().map(|r| encode_response(r).len()).sum();
        let scan_v2 = encode_scan_v2(&responses);
        ScanFixture { queries, light, cfg: sp.cfg, acc: sp.acc, responses, v1_total, scan_v2 }
    })
}

/// Results-only responses (no crypto needed) with randomized shapes:
/// empty keyword lists, empty numeric vectors, unicode keywords, many
/// blocks — all round-trip byte-identically.
fn random_results_response(seed: u64) -> QueryResponse<Acc1> {
    let mut rng = StdRng::seed_from_u64(seed);
    let blocks = rng.gen_range(0..5usize);
    let results = (0..blocks)
        .map(|_| {
            let h: u64 = rng.gen();
            let objs = (0..rng.gen_range(0..4usize))
                .map(|_| {
                    let numeric = (0..rng.gen_range(0..3usize)).map(|_| rng.gen()).collect();
                    let keywords = (0..rng.gen_range(0..3usize))
                        .map(|_| match rng.gen_range(0..3u32) {
                            0 => String::new(),
                            1 => format!("kw-{}", rng.gen::<u32>()),
                            _ => "名前🚗".to_string(),
                        })
                        .collect();
                    Object::new(rng.gen(), rng.gen(), numeric, keywords)
                })
                .collect();
            (h, objs)
        })
        .collect();
    QueryResponse { results, coverage: vec![] }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn results_round_trip_byte_identically(seed in 0u64..u64::MAX) {
        let fix = fixture();
        let resp = random_results_response(seed);
        let bytes = encode_response(&resp);
        let decoded = decode_response(&fix.acc, &bytes);
        prop_assert!(decoded.is_ok(), "honest encoding must decode: {:?}", decoded.err());
        let reencoded = encode_response(&decoded.expect("checked"));
        prop_assert_eq!(reencoded, bytes);
    }

    #[test]
    fn accepted_corruptions_reencode_canonically(seed in 0u64..u64::MAX) {
        // Arbitrary multi-byte corruption: whenever the decoder accepts the
        // mutant, the mutant *is* the canonical encoding of what it decoded
        // to — corrupt bytes can never alias an honest value's encoding
        // under a different byte string.
        let fix = fixture();
        let mut adv = Adversary::new(seed);
        let (mutant, _label) = adv.mutate_bytes(&fix.encoded);
        if let Ok(decoded) = decode_response(&fix.acc, &mutant) {
            prop_assert_eq!(encode_response(&decoded), mutant);
        }
    }
}

/// The full honest encoding round-trips byte-identically (crypto slots
/// included), and so does a full verification pass on the decoded copy.
#[test]
fn honest_response_round_trips_byte_identically() {
    let fix = fixture();
    let decoded = decode_response(&fix.acc, &fix.encoded).expect("honest encoding decodes");
    assert_eq!(encode_response(&decoded), fix.encoded);
    verify_response(&fix.q, &decoded, &fix.light, &fix.cfg, &fix.acc)
        .expect("decoded copy verifies");
}

/// Exhaustive single-bit sweep over the whole honest encoding: every flip
/// is either a typed decode failure or a decoded-but-rejected VO, and any
/// accepted decode re-encodes to exactly the corrupted bytes.
#[test]
fn every_single_bit_corruption_fails_cleanly_or_is_rejected() {
    let fix = fixture();
    let mut decode_failures = 0usize;
    let mut verify_rejections = 0usize;
    for bit in 0..fix.encoded.len() * 8 {
        let mutant = Adversary::flip_bit(&fix.encoded, bit);
        match decode_response(&fix.acc, &mutant) {
            Err(_) => decode_failures += 1,
            Ok(decoded) => {
                assert_eq!(
                    encode_response(&decoded),
                    mutant,
                    "bit {bit}: accepted decode must re-encode canonically"
                );
                let v = verify_response(&fix.q, &decoded, &fix.light, &fix.cfg, &fix.acc);
                assert!(v.is_err(), "bit {bit}: corrupted VO must not verify");
                verify_rejections += 1;
            }
        }
    }
    assert_eq!(decode_failures + verify_rejections, fix.encoded.len() * 8);
    // Both rejection layers must actually participate in the sweep.
    assert!(decode_failures > 0, "no structural rejections in the sweep");
    assert!(verify_rejections > 0, "no cryptographic rejections in the sweep");
}

// ---------------------------------------------------------------------------
// v2 (deduplicating intern-table) encoding
// ---------------------------------------------------------------------------

/// The per-response v2 encoding round-trips byte-identically, and the
/// version-dispatching decoder routes both encodings of the same response
/// to the same value.
#[test]
fn v2_response_round_trips_byte_identically() {
    let fix = fixture();
    let resp = decode_response(&fix.acc, &fix.encoded).expect("honest v1 decodes");
    let v2 = encode_response_v2(&resp);
    let decoded = decode_response_v2(&fix.acc, &v2).expect("honest v2 decodes");
    assert_eq!(encode_response_v2(&decoded), v2);
    verify_response(&fix.q, &decoded, &fix.light, &fix.cfg, &fix.acc)
        .expect("decoded v2 copy verifies");

    let (auto_v1, ver1) = decode_response_auto(&fix.acc, &fix.encoded).expect("auto v1");
    let (auto_v2, ver2) = decode_response_auto(&fix.acc, &v2).expect("auto v2");
    assert_eq!(ver1, WireVersion::V1);
    assert_eq!(ver2, WireVersion::V2);
    assert_eq!(encode_response(&auto_v1), fix.encoded);
    assert_eq!(encode_response_v2(&auto_v2), v2);
}

/// The scan-level v2 encoding round-trips byte-identically, every decoded
/// window still verifies, and scan-level dedup beats the v1 per-window
/// encodings by more than 20% on the 8-window overlapping fixture.
#[test]
fn scan_v2_round_trips_and_dedupes_over_20_percent() {
    let fix = scan_fixture();
    let decoded = decode_scan_v2(&fix.acc, &fix.scan_v2).expect("honest scan decodes");
    assert_eq!(decoded.len(), fix.responses.len());
    assert_eq!(encode_scan_v2(&decoded), fix.scan_v2);
    for (q, resp) in fix.queries.iter().zip(&decoded) {
        verify_response(q, resp, &fix.light, &fix.cfg, &fix.acc)
            .expect("decoded scan window verifies");
    }
    // ratio < 0.8  ⟺  5 * v2 < 4 * v1 (integer-exact).
    assert!(
        5 * fix.scan_v2.len() < 4 * fix.v1_total,
        "scan v2 must be <0.8x the v1 total: v2={} v1={}",
        fix.scan_v2.len(),
        fix.v1_total
    );
}

/// Exhaustive single-bit sweep over a full v2 scan encoding (a 2-window
/// sub-scan keeps the sweep affordable while still exercising the intern
/// table and back-references): every flip is a typed decode failure or a
/// decoded-but-rejected scan, and accepted decodes re-encode canonically.
#[test]
fn every_single_bit_corruption_of_v2_fails_cleanly_or_is_rejected() {
    let fix = scan_fixture();
    let sub = &fix.responses[..2];
    let encoded = encode_scan_v2(sub);
    let mut decode_failures = 0usize;
    let mut verify_rejections = 0usize;
    for bit in 0..encoded.len() * 8 {
        let mutant = Adversary::flip_bit(&encoded, bit);
        match decode_scan_v2(&fix.acc, &mutant) {
            Err(_) => decode_failures += 1,
            Ok(decoded) => {
                assert_eq!(
                    encode_scan_v2(&decoded),
                    mutant,
                    "bit {bit}: accepted decode must re-encode canonically"
                );
                let all_ok = decoded.len() == sub.len()
                    && fix.queries.iter().zip(&decoded).all(|(q, r)| {
                        verify_response(q, r, &fix.light, &fix.cfg, &fix.acc).is_ok()
                    });
                assert!(!all_ok, "bit {bit}: corrupted scan must not fully verify");
                verify_rejections += 1;
            }
        }
    }
    assert_eq!(decode_failures + verify_rejections, encoded.len() * 8);
    assert!(decode_failures > 0, "no structural rejections in the v2 sweep");
    assert!(verify_rejections > 0, "no cryptographic rejections in the v2 sweep");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Decode totality: the v2 and stream decoders return `Ok` or a typed
    /// `WireError` on arbitrary bytes — never a panic. (proptest reports a
    /// panic as a failure, so simply driving the decoders is the assert.)
    #[test]
    fn v2_decoders_are_total_on_arbitrary_bytes(
        bytes in proptest::collection::vec(0u8..=255, 0..512),
    ) {
        let fix = fixture();
        let _ = decode_response_v2(&fix.acc, &bytes);
        let _ = decode_scan_v2(&fix.acc, &bytes);
        let mut dec = StreamDecoder::<Acc1>::new();
        let _ = dec.feed(&fix.acc, &bytes);
        let _ = dec.finish();
    }

    /// Adversarial multi-byte corruption of the scan encoding: whenever the
    /// decoder accepts the mutant, the mutant is the canonical encoding of
    /// what it decoded to.
    #[test]
    fn accepted_scan_corruptions_reencode_canonically(seed in 0u64..u64::MAX) {
        let fix = scan_fixture();
        let mut adv = Adversary::new(seed);
        let (mutant, _label) = adv.mutate_bytes(&fix.scan_v2);
        if let Ok(decoded) = decode_scan_v2(&fix.acc, &mutant) {
            prop_assert_eq!(encode_scan_v2(&decoded), mutant);
        }
    }
}
