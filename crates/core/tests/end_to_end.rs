//! End-to-end pipeline tests: miner → service provider → light-client
//! verification, across index schemes and both accumulator constructions,
//! including adversarial-SP cases (paper §8's unforgeability experiment,
//! run literally).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vchain_acc::{Acc1, Acc2, Accumulator};
use vchain_chain::{Difficulty, LightClient, Object};
use vchain_core::miner::{IndexScheme, Miner, MinerConfig};
use vchain_core::query::{Query, RangeSpec};
use vchain_core::verify::{verify_response, VerifyError};
use vchain_core::vo::{BlockCoverage, QueryResponse, VoSize};

const DOMAIN_BITS: u8 = 6;

fn cfg(scheme: IndexScheme) -> MinerConfig {
    MinerConfig {
        scheme,
        skip_levels: 3,
        domain_bits: DOMAIN_BITS,
        difficulty: Difficulty(2),
        bloom_bits_per_key: 10,
    }
}

/// Deterministic mini-workload: 12 blocks × 4 objects with two numeric dims
/// and car-ish keywords.
fn workload(seed: u64) -> Vec<Vec<Object>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let kinds = ["Sedan", "Van", "Truck"];
    let brands = ["Benz", "BMW", "Audi", "Toyota"];
    let mut id = 0;
    (0..12)
        .map(|b| {
            (0..4)
                .map(|_| {
                    id += 1;
                    Object::new(
                        id,
                        (b as u64 + 1) * 10,
                        vec![rng.gen_range(0..64), rng.gen_range(0..64)],
                        vec![
                            kinds[rng.gen_range(0..kinds.len())].to_string(),
                            brands[rng.gen_range(0..brands.len())].to_string(),
                        ],
                    )
                })
                .collect()
        })
        .collect()
}

fn build_chain<A: Accumulator>(scheme: IndexScheme, acc: A) -> (Miner<A>, LightClient) {
    let c = cfg(scheme);
    let mut miner = Miner::new(c, acc);
    let mut light = LightClient::new(c.difficulty);
    for (i, objs) in workload(7).into_iter().enumerate() {
        miner.mine_block((i as u64 + 1) * 10, objs);
    }
    for h in miner.headers() {
        light.sync_header(h).expect("headers validate");
    }
    (miner, light)
}

fn sample_query() -> Query {
    Query {
        time_window: Some((20, 90)),
        ranges: vec![RangeSpec { dim: 0, lo: 5, hi: 40 }],
        keywords: vec![vec!["Sedan".into(), "Van".into()], vec!["Benz".into(), "BMW".into()]],
    }
}

/// Ground truth by naive scan over the full chain.
fn naive_results<A: Accumulator>(miner: &Miner<A>, q: &Query) -> Vec<u64> {
    let cq = q.compile(DOMAIN_BITS);
    let mut ids: Vec<u64> = miner
        .store()
        .blocks()
        .iter()
        .flat_map(|b| b.objects.iter())
        .filter(|o| cq.object_matches(o))
        .map(|o| o.id)
        .collect();
    ids.sort_unstable();
    ids
}

fn run_roundtrip<A: Accumulator>(scheme: IndexScheme, acc: A, batch: bool) {
    let (miner, light) = build_chain(scheme, acc.clone());
    let q = sample_query();
    let expected = naive_results(&miner, &q);
    let cq = q.compile(DOMAIN_BITS);
    let sp = miner.into_service_provider().with_batch_verify(batch);
    let resp = sp.time_window_query(&cq);
    assert!(resp.vo_size_bytes(&sp.acc) > 0);
    let verified =
        verify_response(&cq, &resp, &light, &sp.cfg, &sp.acc).expect("honest SP must verify");
    let mut got: Vec<u64> = verified.iter().map(|o| o.id).collect();
    got.sort_unstable();
    assert_eq!(got, expected, "verified results must equal the naive scan");
}

#[test]
fn roundtrip_acc1_nil() {
    run_roundtrip(IndexScheme::Nil, Acc1::keygen(600, &mut StdRng::seed_from_u64(1)), false);
}

#[test]
fn roundtrip_acc1_intra() {
    run_roundtrip(IndexScheme::Intra, Acc1::keygen(600, &mut StdRng::seed_from_u64(2)), false);
}

#[test]
fn roundtrip_acc1_both() {
    run_roundtrip(IndexScheme::Both, Acc1::keygen(4000, &mut StdRng::seed_from_u64(3)), false);
}

#[test]
fn roundtrip_acc2_nil() {
    run_roundtrip(IndexScheme::Nil, Acc2::keygen(4096, &mut StdRng::seed_from_u64(4)), false);
}

#[test]
fn roundtrip_acc2_both_with_batch() {
    run_roundtrip(IndexScheme::Both, Acc2::keygen(4096, &mut StdRng::seed_from_u64(5)), true);
}

#[test]
fn skips_actually_occur_under_both() {
    // A very selective query over a long window must trigger skip coverage.
    let acc = Acc2::keygen(4096, &mut StdRng::seed_from_u64(6));
    let (miner, light) = build_chain(IndexScheme::Both, acc);
    let q = Query {
        time_window: Some((10, 120)),
        ranges: vec![],
        keywords: vec![vec!["NoSuchKeyword".into()]],
    };
    let cq = q.compile(DOMAIN_BITS);
    let sp = miner.into_service_provider();
    let resp = sp.time_window_query(&cq);
    let skips = resp.coverage.iter().filter(|c| matches!(c, BlockCoverage::Skip { .. })).count();
    assert!(skips > 0, "expected inter-block skips for an all-mismatch query");
    let verified = verify_response(&cq, &resp, &light, &sp.cfg, &sp.acc).unwrap();
    assert!(verified.is_empty());
}

#[test]
fn parallel_overlapping_windows_verify_and_hit_the_cache() {
    // The multi-window scan path: overlapping windows answered in parallel
    // must (a) verify exactly like sequential answers, (b) share proofs via
    // the SP's cache, and (c) produce byte-identical proofs warm vs cold.
    let acc = Acc2::keygen(4096, &mut StdRng::seed_from_u64(16));
    let (miner, light) = build_chain(IndexScheme::Both, acc);
    let sp = miner.into_service_provider();
    let windows: Vec<_> = [(10u64, 70u64), (20, 80), (30, 90), (10, 90)]
        .iter()
        .map(|&(lo, hi)| {
            Query {
                time_window: Some((lo, hi)),
                ranges: vec![RangeSpec { dim: 0, lo: 5, hi: 40 }],
                keywords: vec![vec!["Sedan".into()], vec!["Benz".into(), "BMW".into()]],
            }
            .compile(DOMAIN_BITS)
        })
        .collect();
    let parallel = sp.time_window_queries(&windows);
    assert_eq!(parallel.len(), windows.len());
    for (cq, resp) in windows.iter().zip(&parallel) {
        verify_response(cq, resp, &light, &sp.cfg, &sp.acc).expect("parallel answers verify");
    }
    let after_first = sp.proof_cache().stats();
    assert!(after_first.hits > 0, "overlapping windows must share cached proofs");
    // a warm second pass answers from the cache and byte-matches
    let warm = sp.time_window_queries(&windows);
    let grew = sp.proof_cache().stats();
    assert_eq!(grew.misses, after_first.misses, "warm pass must not prove anything new");
    for ((cq, cold), warm) in windows.iter().zip(&parallel).zip(&warm) {
        assert_eq!(cold.vo_size_bytes(&sp.acc), warm.vo_size_bytes(&sp.acc));
        let a = verify_response(cq, cold, &light, &sp.cfg, &sp.acc).unwrap();
        let b = verify_response(cq, warm, &light, &sp.cfg, &sp.acc).unwrap();
        assert_eq!(
            a.iter().map(|o| o.id).collect::<Vec<_>>(),
            b.iter().map(|o| o.id).collect::<Vec<_>>()
        );
    }
}

#[test]
fn adversarial_sp_is_caught() {
    let acc = Acc1::keygen(600, &mut StdRng::seed_from_u64(8));
    let (miner, light) = build_chain(IndexScheme::Intra, acc);
    let q = sample_query();
    let cq = q.compile(DOMAIN_BITS);
    let sp = miner.into_service_provider();
    let honest = sp.time_window_query(&cq);
    assert!(verify_response(&cq, &honest, &light, &sp.cfg, &sp.acc).is_ok());
    assert!(honest.result_count() > 0, "need at least one result for the tampering cases below");

    // Case 1 (soundness): tamper with a returned object's payload.
    let mut tampered = honest.clone();
    tampered.results[0].1[0].numeric[0] ^= 1;
    let e = verify_response(&cq, &tampered, &light, &sp.cfg, &sp.acc).unwrap_err();
    assert!(
        matches!(e, VerifyError::RootMismatch { .. } | VerifyError::ResultNotMatching { .. }),
        "tampered object must be rejected, got {e:?}"
    );

    // Case 2 (soundness): smuggle in an object that does not satisfy q.
    let mut smuggled = honest.clone();
    let alien = Object::new(999_999, 25, vec![63, 63], vec!["Truck".into(), "Toyota".into()]);
    smuggled.results[0].1.push(alien);
    assert!(verify_response(&cq, &smuggled, &light, &sp.cfg, &sp.acc).is_err());

    // Case 3 (completeness): drop an entire covered block.
    let mut dropped = honest.clone();
    dropped.coverage.remove(0);
    let e = verify_response(&cq, &dropped, &light, &sp.cfg, &sp.acc).unwrap_err();
    assert!(matches!(e, VerifyError::MissingCoverage { .. }), "got {e:?}");

    // Case 4 (completeness): drop a result but keep its coverage.
    let mut hidden = honest.clone();
    hidden.results[0].1.remove(0);
    assert!(verify_response(&cq, &hidden, &light, &sp.cfg, &sp.acc).is_err());

    // Case 5: empty response claims nothing matched.
    let empty: QueryResponse<Acc1> = QueryResponse { results: vec![], coverage: vec![] };
    let e = verify_response(&cq, &empty, &light, &sp.cfg, &sp.acc).unwrap_err();
    assert!(matches!(e, VerifyError::MissingCoverage { .. }));
}

#[test]
fn proof_swapped_between_clauses_fails() {
    // A proof made against one clause must not verify for another: swap the
    // clause reference inside a mismatch VO node.
    use vchain_core::vo::{MismatchProof, VoNode};
    let acc = Acc1::keygen(600, &mut StdRng::seed_from_u64(9));
    let (miner, light) = build_chain(IndexScheme::Intra, acc);
    // query with two clauses having different content
    let q = Query {
        time_window: Some((20, 90)),
        ranges: vec![],
        keywords: vec![vec!["Sedan".into()], vec!["Benz".into()]],
    };
    let cq = q.compile(DOMAIN_BITS);
    let sp = miner.into_service_provider();
    let mut resp = sp.time_window_query(&cq);

    fn flip_clause<A: Accumulator>(n: &mut VoNode<A>) -> bool {
        match n {
            VoNode::Internal { left, right, .. } => flip_clause(left) || flip_clause(right),
            VoNode::InternalMismatch { proof, .. } | VoNode::LeafMismatch { proof, .. } => {
                if let MismatchProof::Inline {
                    clause: vchain_core::vo::ClauseRef::Index(i), ..
                } = proof
                {
                    *i ^= 1; // swap clause 0 <-> 1
                    return true;
                }
                false
            }
            _ => false,
        }
    }

    let mut flipped = false;
    for cov in &mut resp.coverage {
        if let BlockCoverage::Block { vo, .. } = cov {
            if flip_clause(&mut vo.root) {
                flipped = true;
                break;
            }
        }
    }
    assert!(flipped, "expected at least one inline mismatch proof to attack");
    assert!(verify_response(&cq, &resp, &light, &sp.cfg, &sp.acc).is_err());
}

#[test]
fn vo_size_smaller_with_intra_index_on_clustered_data() {
    // Clustered objects => intra index prunes subtrees => smaller VO than nil.
    let mk = |scheme| {
        let acc = Acc1::keygen(600, &mut StdRng::seed_from_u64(10));
        let c = cfg(scheme);
        let mut miner = Miner::new(c, acc);
        // homogeneous blocks: all objects share keywords => great clustering
        for b in 0..6u64 {
            let objs: Vec<Object> = (0..8)
                .map(|i| Object::new(b * 8 + i, (b + 1) * 10, vec![10], vec!["CommonKw".into()]))
                .collect();
            miner.mine_block((b + 1) * 10, objs);
        }
        miner.into_service_provider()
    };
    let q = Query {
        time_window: Some((10, 60)),
        ranges: vec![],
        keywords: vec![vec!["Absent".into()]],
    }
    .compile(DOMAIN_BITS);
    let sp_nil = mk(IndexScheme::Nil);
    let sp_intra = mk(IndexScheme::Intra);
    let vo_nil = sp_nil.time_window_query(&q).vo_size_bytes(&sp_nil.acc);
    let vo_intra = sp_intra.time_window_query(&q).vo_size_bytes(&sp_intra.acc);
    assert!(
        vo_intra < vo_nil,
        "intra index must shrink the VO on clustered data: {vo_intra} vs {vo_nil}"
    );
}

#[test]
fn empty_window_verifies_trivially() {
    let acc = Acc1::keygen(600, &mut StdRng::seed_from_u64(11));
    let (miner, light) = build_chain(IndexScheme::Intra, acc);
    let q = Query {
        time_window: Some((5000, 6000)),
        ranges: vec![],
        keywords: vec![vec!["Sedan".into()]],
    };
    let cq = q.compile(DOMAIN_BITS);
    let sp = miner.into_service_provider();
    let resp = sp.time_window_query(&cq);
    assert_eq!(resp.coverage.len(), 0);
    let verified = verify_response(&cq, &resp, &light, &sp.cfg, &sp.acc).unwrap();
    assert!(verified.is_empty());
}
