//! Property tests for the store codec and the cache↔store round trip:
//! encode∘decode identity per record type, decode totality on arbitrary
//! bytes, record-version rejection, save→load→save byte equality, and the
//! eviction-vs-persistence independence the write-behind design promises.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vchain_acc::{Acc2, Accumulator, MultiSet};
use vchain_core::cache::{CacheStats, ProofCache};
use vchain_core::store::{
    decode_record, encode_record, frame_record, payload_check, FRAME_HEADER_LEN, LEN_CHECK_XOR,
    RECORD_VERSION,
};
use vchain_core::wire::WireError;
use vchain_core::{CacheKey, LogStore, RecordKey, StoreRecord};
use vchain_hash::Digest;

fn temp_path(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("vchain-store-props-{}-{tag}-{n}.log", std::process::id()))
}

fn digest(seed: u8) -> Digest {
    let mut b = [0u8; 32];
    for (i, x) in b.iter_mut().enumerate() {
        *x = seed.wrapping_mul(31).wrapping_add(i as u8);
    }
    Digest(b)
}

/// Build one record of the tagged type from generic raw material — together
/// with `0u8..3` this is a strategy over all three record variants.
fn record_from(tag: u8, a: u64, b: u64, c: u64, seed: u8, payload: Vec<u8>) -> StoreRecord {
    match tag {
        0 => StoreRecord::Proof {
            key: RecordKey { block_height: a, att: digest(seed), clause: digest(seed ^ 0xA5) },
            proof: payload,
        },
        1 => StoreRecord::Witness { block_height: a, att: digest(seed), witness: payload },
        _ => StoreRecord::Stats { hits: a, misses: b, evictions: c },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn encode_decode_identity(
        tag in 0u8..3,
        a in 0u64..=u64::MAX - 1,
        b in 0u64..=u64::MAX - 1,
        c in 0u64..=u64::MAX - 1,
        seed in 0u8..=255,
        payload in pvec(0u8..=255, 0..200),
    ) {
        let record = record_from(tag, a, b, c, seed, payload);
        let encoded = encode_record(&record);
        prop_assert_eq!(encoded[0], RECORD_VERSION);
        let decoded = decode_record(&encoded);
        prop_assert_eq!(decoded.as_ref(), Ok(&record));
        // Second generation is byte-stable (a canonical codec).
        prop_assert_eq!(encode_record(&record), encoded);

        // The frame wrapper is coherent with its own constants.
        let frame = frame_record(&record);
        prop_assert_eq!(frame.len(), FRAME_HEADER_LEN + encoded.len());
        let len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]);
        let len_check = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]);
        prop_assert_eq!(len as usize, encoded.len());
        prop_assert_eq!(len ^ LEN_CHECK_XOR, len_check);
        let mut pc = [0u8; 8];
        pc.copy_from_slice(&frame[8..16]);
        prop_assert_eq!(u64::from_le_bytes(pc), payload_check(&encoded));
        prop_assert_eq!(&frame[FRAME_HEADER_LEN..], &encoded[..]);
    }

    #[test]
    fn decode_is_total_on_arbitrary_bytes(payload in pvec(0u8..=255, 0..256)) {
        // Typed error or a value that re-encodes to exactly the input —
        // never a panic, never a lossy accept.
        if let Ok(record) = decode_record(&payload) {
            prop_assert_eq!(encode_record(&record), payload);
        }
    }

    #[test]
    fn unknown_record_version_is_rejected(
        version in 0u8..=255,
        tag in 0u8..3,
        a in 0u64..1000,
        payload in pvec(0u8..=255, 0..32),
    ) {
        prop_assume!(version != RECORD_VERSION);
        let mut encoded = encode_record(&record_from(tag, a, a, a, 7, payload));
        encoded[0] = version;
        prop_assert_eq!(decode_record(&encoded), Err(WireError::UnsupportedVersion(version)));
    }

    #[test]
    fn unknown_tag_is_rejected(tag in 3u8..=255) {
        let mut encoded = encode_record(&StoreRecord::Stats { hits: 1, misses: 2, evictions: 3 });
        encoded[1] = tag;
        prop_assert_eq!(
            decode_record(&encoded),
            Err(WireError::BadTag { what: "store record", tag })
        );
    }

    #[test]
    fn log_survives_trailing_junk(
        tags in pvec(0u8..3, 1..6),
        junk in pvec(0u8..=255, 1..64),
    ) {
        let records: Vec<StoreRecord> = tags
            .iter()
            .enumerate()
            .map(|(i, &t)| record_from(t, i as u64, 2, 3, i as u8, vec![i as u8; 8]))
            .collect();
        let path = temp_path("junk");
        {
            let (mut store, _, _) = LogStore::open(&path).unwrap();
            store.append_all(&records).unwrap();
            store.sync().unwrap();
        }
        // A crashed writer leaves arbitrary bytes after the last full frame.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&junk).unwrap();
        }
        let (_, loaded, report) = LogStore::open(&path).unwrap();
        // The junk either fails the header self-check immediately (torn
        // tail) or masquerades as N frames before failing — in every case
        // all real records survive and nothing invented is returned.
        prop_assert_eq!(&loaded[..records.len().min(loaded.len())], &records[..]);
        prop_assert_eq!(loaded.len(), records.len());
        prop_assert!(report.truncated_bytes as usize <= junk.len());
        std::fs::remove_file(&path).ok();
    }
}

// --- cache ↔ store round trips (real proofs) ------------------------------

fn acc() -> Acc2 {
    Acc2::keygen(64, &mut StdRng::seed_from_u64(21))
}

fn ms(v: &[u64]) -> MultiSet<u64> {
    v.iter().copied().collect()
}

/// Drain a persistent cache's dirty queue into proof records (the flush
/// path, without the dedup — inputs here are already distinct).
fn dirty_to_records(cache: &ProofCache<Acc2>) -> Vec<StoreRecord> {
    cache
        .take_dirty()
        .into_iter()
        .map(|e| StoreRecord::Proof {
            key: RecordKey { block_height: 0, att: e.key.att, clause: e.key.clause },
            proof: e.proof,
        })
        .collect()
}

#[test]
fn cache_save_load_save_is_byte_identical() {
    let a = acc();
    let cache: ProofCache<Acc2> = ProofCache::new(64).with_persistence();
    let x1 = ms(&[1, 2, 3]);
    let att = a.setup(&x1);
    for e in 10u64..18 {
        cache.get_or_prove(&a, &att, &x1, &ms(&[e])).unwrap();
    }

    // Save.
    let path1 = temp_path("save1");
    let records = dirty_to_records(&cache);
    assert_eq!(records.len(), 8);
    {
        let (mut store, _, _) = LogStore::open(&path1).unwrap();
        store.append_all(&records).unwrap();
        store.sync().unwrap();
    }

    // Load into a fresh cache; preloading must not dirty or count anything.
    let (_, loaded, _) = LogStore::open(&path1).unwrap();
    let cache2: ProofCache<Acc2> = ProofCache::new(64).with_persistence();
    for r in &loaded {
        let StoreRecord::Proof { key, proof } = r else { panic!("proofs only") };
        cache2.preload(
            CacheKey { att: key.att, clause: key.clause },
            a.proof_from_bytes(proof).unwrap(),
        );
    }
    assert_eq!(cache2.len(), 8);
    assert_eq!(cache2.dirty_len(), 0, "rehydration must not re-queue write-behind");
    assert_eq!(cache2.stats(), CacheStats::default());

    // Save again: the second generation of the log is byte-identical.
    let path2 = temp_path("save2");
    {
        let (mut store, _, _) = LogStore::open(&path2).unwrap();
        store.append_all(&loaded).unwrap();
        store.sync().unwrap();
    }
    assert_eq!(std::fs::read(&path1).unwrap(), std::fs::read(&path2).unwrap());

    // And the loaded proofs answer lookups byte-identically to the originals.
    for e in 10u64..18 {
        let key = ProofCache::<Acc2>::key(&att, &ms(&[e]));
        let p1 = cache.get(&key).unwrap();
        let p2 = cache2.get(&key).unwrap();
        assert_eq!(Acc2::proof_bytes(&p1), Acc2::proof_bytes(&p2));
    }

    std::fs::remove_file(&path1).ok();
    std::fs::remove_file(&path2).ok();
}

/// The PR-9 bug fix pinned down: eviction bounds *memory*, persistence
/// bounds *re-proving* — an entry evicted from a persistent cache must
/// still be in the log (dirty capture happens at insert, before the LRU
/// decision), so a restart can serve it without a cold prove.
#[test]
fn evicted_entries_are_still_persisted_and_reloadable() {
    let a = acc();
    let tiny: ProofCache<Acc2> = ProofCache::new(2).with_persistence();
    let x1 = ms(&[1, 2]);
    let att = a.setup(&x1);
    let clauses: Vec<MultiSet<u64>> = (20u64..26).map(|e| ms(&[e])).collect();
    let mut originals = Vec::new();
    for c in &clauses {
        originals.push(Acc2::proof_bytes(&tiny.get_or_prove(&a, &att, &x1, c).unwrap()));
    }
    assert_eq!(tiny.len(), 2, "capacity bound holds");
    assert_eq!(tiny.stats().evictions, 4, "four entries were displaced");

    let path = temp_path("evict");
    let records = dirty_to_records(&tiny);
    assert_eq!(records.len(), 6, "every insert was captured, evicted or not");
    {
        let (mut store, _, _) = LogStore::open(&path).unwrap();
        store.append_all(&records).unwrap();
        store.sync().unwrap();
    }

    // Restart with room: all six entries — including the four evicted ones —
    // rehydrate and serve byte-identical proofs.
    let (_, loaded, report) = LogStore::open(&path).unwrap();
    assert_eq!(report.loaded, 6);
    let big: ProofCache<Acc2> = ProofCache::new(16);
    for r in &loaded {
        let StoreRecord::Proof { key, proof } = r else { panic!("proofs only") };
        big.preload(
            CacheKey { att: key.att, clause: key.clause },
            a.proof_from_bytes(proof).unwrap(),
        );
    }
    for (c, orig) in clauses.iter().zip(&originals) {
        let got = big.get(&ProofCache::<Acc2>::key(&att, c)).expect("persisted entry reloadable");
        assert_eq!(&Acc2::proof_bytes(&got), orig);
    }

    std::fs::remove_file(&path).ok();
}

/// Stats snapshots rehydrate coherently: restored counters are the values
/// at the last flush, and post-restart activity accrues *on top* of them.
/// (Activity between the last flush and the crash resets — that is the
/// documented durability granularity.)
#[test]
fn restored_stats_accrue_coherently() {
    let a = acc();
    let cache: ProofCache<Acc2> = ProofCache::new(8);
    let snapshot = CacheStats { hits: 40, misses: 10, evictions: 3 };
    cache.restore_stats(snapshot);
    assert_eq!(cache.stats(), snapshot);

    let x1 = ms(&[1]);
    let att = a.setup(&x1);
    cache.get_or_prove(&a, &att, &x1, &ms(&[9])).unwrap(); // miss
    cache.get_or_prove(&a, &att, &x1, &ms(&[9])).unwrap(); // hit
    let s = cache.stats();
    assert_eq!(s.hits, snapshot.hits + 1);
    assert_eq!(s.misses, snapshot.misses + 1);
    assert_eq!(s.evictions, snapshot.evictions);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `CacheKey` digests are stable and injective over their halves — the
    /// property that lets a `RecordKey` reproduce the in-memory map key.
    #[test]
    fn cache_key_digest_is_stable_and_separating(a in 0u8..=255, b in 0u8..=255) {
        let k1 = CacheKey { att: digest(a), clause: digest(b) };
        let k2 = CacheKey { att: digest(a), clause: digest(b) };
        prop_assert_eq!(k1.digest(), k2.digest());
        if a != b {
            let swapped = CacheKey { att: digest(b), clause: digest(a) };
            prop_assert!(k1.digest() != swapped.digest(), "halves must not commute");
        }
    }
}
