//! Concurrency suite for the sharded serving front: deterministic routing,
//! no lost or duplicated cache entries under concurrent serving + flushing,
//! and shard-merged statistics that reconcile with a single-shard twin.
//!
//! The key workload trick: each distinct query carries a unique, unmatched
//! keyword clause, so every cache entry `(att, clause)` belongs to exactly
//! one query — and therefore, under deterministic routing, to exactly one
//! shard. Cross-shard duplication or loss becomes directly observable in
//! the per-shard logs.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vchain_acc::Acc2;
use vchain_chain::{Difficulty, Object};
use vchain_core::miner::{IndexScheme, Miner, MinerConfig};
use vchain_core::query::{CompiledQuery, Query};
use vchain_core::store::LogStore;
use vchain_core::wire::encode_response;
use vchain_core::{ServiceProvider, ShardedConfig, ShardedServiceProvider, StoreRecord};
use vchain_hash::Digest;

const DOMAIN_BITS: u8 = 6;

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("vchain-shards-{}-{tag}-{n}", std::process::id()))
}

fn build_sp() -> ServiceProvider<Acc2> {
    let cfg = MinerConfig {
        scheme: IndexScheme::Both,
        skip_levels: 3,
        domain_bits: DOMAIN_BITS,
        difficulty: Difficulty(2),
        bloom_bits_per_key: 10,
    };
    let mut rng = StdRng::seed_from_u64(11);
    let kinds = ["Sedan", "Van", "Truck"];
    let mut miner = Miner::new(cfg, Acc2::keygen(4096, &mut StdRng::seed_from_u64(4)));
    let mut id = 0;
    for b in 0..12u64 {
        let objs = (0..4)
            .map(|_| {
                id += 1;
                Object::new(
                    id,
                    (b + 1) * 10,
                    vec![rng.gen_range(0..64)],
                    vec![kinds[rng.gen_range(0..kinds.len())].to_string()],
                )
            })
            .collect();
        miner.mine_block((b + 1) * 10, objs);
    }
    miner.into_service_provider()
}

/// `n` distinct queries over overlapping windows, each with a clause no
/// object carries — so each query's proofs are keyed uniquely to it.
fn unique_clause_pool(n: usize) -> Vec<CompiledQuery> {
    (0..n)
        .map(|i| {
            let lo = 10 + (i as u64 % 6) * 10;
            Query {
                time_window: Some((lo, (lo + 60).min(120))),
                ranges: vec![],
                keywords: vec![vec![format!("shard-suite-absent-{i}")]],
            }
            .compile(DOMAIN_BITS)
        })
        .collect()
}

/// Distinct `(att, clause)` keys persisted in one shard log.
fn persisted_keys(path: &PathBuf) -> BTreeSet<(Digest, Digest)> {
    let (_, records, report) = LogStore::open(path).unwrap();
    assert_eq!(report.skipped_corrupt, 0);
    assert_eq!(report.truncated_bytes, 0);
    records
        .into_iter()
        .filter_map(|r| match r {
            StoreRecord::Proof { key, .. } => Some((key.att, key.clause)),
            _ => None,
        })
        .collect()
}

#[test]
fn routing_is_deterministic_and_spreads_queries() {
    let cfg = ShardedConfig { shards: 4, cache_capacity: 1024, flush_threshold: 64 };
    let a = ShardedServiceProvider::new(build_sp(), cfg);
    let b = ShardedServiceProvider::new(build_sp(), cfg);
    let pool = unique_clause_pool(32);

    let mut used = BTreeSet::new();
    for q in &pool {
        let shard = a.route(q);
        assert!(shard < 4);
        // Stable across calls and across instances with the same shape.
        assert_eq!(shard, a.route(q));
        assert_eq!(shard, b.route(q));
        used.insert(shard);
    }
    assert!(used.len() >= 2, "32 distinct queries must not all hash to one shard");

    // Routing depends only on query content: a recompiled equal query
    // routes identically.
    let q =
        Query { time_window: Some((20, 90)), ranges: vec![], keywords: vec![vec!["Sedan".into()]] };
    assert_eq!(a.route(&q.clone().compile(DOMAIN_BITS)), a.route(&q.compile(DOMAIN_BITS)));
}

#[test]
fn concurrent_clients_lose_and_duplicate_nothing() {
    const SHARDS: usize = 4;
    const THREADS: usize = 8;
    let dir = temp_dir("hammer");
    // flush_threshold 1 ⇒ every insert-bearing query triggers a flush:
    // maximal contention between serving threads and the write-behind path.
    let cfg = ShardedConfig { shards: SHARDS, cache_capacity: 4096, flush_threshold: 1 };
    let (ssp, _) = ShardedServiceProvider::open(build_sp(), cfg, &dir).unwrap();

    let pool = unique_clause_pool(16);
    // 64-query stream: every pool query four times, interleaved.
    let stream: Vec<usize> = (0..64).map(|i| i % pool.len()).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&qi) = stream.get(i) else { break };
                let resp = ssp.query(&pool[qi]);
                // Sanity under concurrency: served responses are the
                // deterministic per-query answer, whatever thread ran them.
                assert_eq!(
                    encode_response(&resp),
                    encode_response(&ssp.inner().time_window_query(&pool[qi]))
                );
            });
        }
    });
    assert_eq!(ssp.total_served(), stream.len() as u64);
    assert!(ssp.take_flush_error().is_none(), "no flush may fail under contention");
    ssp.flush().unwrap();

    // Per-shard ground truth from the logs themselves.
    let mut union: BTreeSet<(Digest, Digest)> = BTreeSet::new();
    let mut per_shard_total = 0;
    for i in 0..SHARDS {
        let keys = persisted_keys(&dir.join(format!("shard-{i}.log")));
        assert_eq!(
            keys.len(),
            ssp.shard_cache(i).len(),
            "shard {i}: persisted keys must equal resident entries (nothing lost)"
        );
        per_shard_total += keys.len();
        union.extend(keys);
    }
    assert_eq!(
        union.len(),
        per_shard_total,
        "no (att, clause) key may appear in two shard logs (nothing duplicated)"
    );
    assert_eq!(union.len(), ssp.total_entries());

    // A restart over the hammered logs rehydrates every entry.
    drop(ssp);
    let (reopened, rec) = ShardedServiceProvider::open(build_sp(), cfg, &dir).unwrap();
    assert_eq!(rec.proofs_loaded, union.len());
    assert_eq!(rec.proofs_rejected, 0);
    assert_eq!(reopened.total_entries(), union.len());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn merged_stats_equal_single_shard_twin_totals() {
    let pool = unique_clause_pool(12);
    let stream: Vec<usize> = (0..36).map(|i| (i * 5) % pool.len()).collect();
    let queries: Vec<CompiledQuery> = stream.iter().map(|&i| pool[i].clone()).collect();

    let sharded = ShardedServiceProvider::new(
        build_sp(),
        ShardedConfig { shards: 4, cache_capacity: 4096, flush_threshold: 64 },
    );
    let twin = ShardedServiceProvider::new(
        build_sp(),
        ShardedConfig { shards: 1, cache_capacity: 4096, flush_threshold: 64 },
    );

    let fanned = sharded.query_batch(&queries);
    let serial = twin.query_batch(&queries);
    for (a, b) in fanned.iter().zip(&serial) {
        assert_eq!(encode_response(a), encode_response(b), "fan-out must not change answers");
    }

    // Unique clauses ⇒ no cross-query key sharing, and each bucket serves
    // in input order ⇒ first touch of every key is a miss on both sides:
    // the rollup must reconcile exactly with the single-shard twin.
    assert_eq!(sharded.merged_stats(), twin.merged_stats());
    assert_eq!(sharded.total_entries(), twin.total_entries());
    assert_eq!(sharded.total_served(), twin.total_served());
    assert_eq!(sharded.total_served(), queries.len() as u64);
}

#[test]
fn shard_stats_roll_up_to_totals() {
    let cfg = ShardedConfig { shards: 3, cache_capacity: 1024, flush_threshold: 64 };
    let ssp = ShardedServiceProvider::new(build_sp(), cfg);
    let pool = unique_clause_pool(9);
    for q in &pool {
        ssp.query(q);
    }

    let stats = ssp.shard_stats();
    assert_eq!(stats.len(), 3);
    let mut expected_served = [0u64; 3];
    for q in &pool {
        expected_served[ssp.route(q)] += 1;
    }
    for (i, s) in stats.iter().enumerate() {
        assert_eq!(s.shard, i);
        assert_eq!(s.served, expected_served[i], "per-shard served must follow routing");
    }
    assert_eq!(stats.iter().map(|s| s.served).sum::<u64>(), ssp.total_served());
    assert_eq!(stats.iter().map(|s| s.entries).sum::<usize>(), ssp.total_entries());
    let merged = ssp.merged_stats();
    assert_eq!(stats.iter().map(|s| s.cache.hits).sum::<u64>(), merged.hits);
    assert_eq!(stats.iter().map(|s| s.cache.misses).sum::<u64>(), merged.misses);
}
