//! Property layer for the per-block attribute Bloom filter
//! ([`vchain_core::bloom`]):
//!
//! 1. **Zero false negatives, ever** — for any key set and any density, a
//!    built filter answers "possibly present" for every inserted key. This
//!    is the property the subscription engine's correctness argument leans
//!    on (an honest filter can only over-approximate).
//! 2. **FPR within budget** — the empirical false-positive rate over a
//!    large seeded probe population stays within 2× of the analytic budget
//!    `(1 − e^{−kn/m})^k` for the configured bits-per-key.
//! 3. **Wire round-trip identity** — encode ∘ decode is the identity and
//!    decoding is total (typed errors, no panics) over mutated inputs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vchain_core::bloom::{AttributeBloom, BloomKey, BLOOM_SEED, DEFAULT_BITS_PER_KEY};
use vchain_core::wire::{decode_bloom, encode_bloom};
use vchain_core::Adversary;

fn keys_from(seed: u64, labels: &[Vec<u8>]) -> Vec<BloomKey> {
    labels.iter().map(|l| BloomKey::from_bytes(seed, l)).collect()
}

proptest! {
    /// Hard assert: no inserted key is ever reported absent, for any key
    /// population, seed, and density.
    #[test]
    fn no_false_negatives(
        labels in proptest::collection::vec(proptest::collection::vec(0u8..=255, 0..24), 0..300),
        seed in 0u64..=u64::MAX,
        bits_per_key in 1u8..=20,
    ) {
        let keys = keys_from(seed, &labels);
        let filter = AttributeBloom::build(seed, bits_per_key, &keys);
        for k in &keys {
            prop_assert!(filter.contains_key(k), "false negative at {k:?}");
        }
    }

    /// Encode → decode is the identity (same seed, probes, counts, words),
    /// so gossiped filters probe exactly like locally built ones.
    #[test]
    fn wire_round_trip_identity(
        labels in proptest::collection::vec(proptest::collection::vec(0u8..=255, 0..16), 0..120),
        seed in 0u64..=u64::MAX,
        bits_per_key in 1u8..=16,
    ) {
        let filter = AttributeBloom::build(seed, bits_per_key, &keys_from(seed, &labels));
        let bytes = encode_bloom(&filter);
        let back = decode_bloom(&bytes).expect("honest encoding decodes");
        prop_assert_eq!(&back, &filter);
        prop_assert_eq!(encode_bloom(&back), bytes, "canonical re-encoding");
    }

    /// Decoding is total: arbitrary bytes either decode or fail with a
    /// typed error — never a panic. (Decoded garbage is still harmless;
    /// the engine confirms every positive against the exact multiset.)
    #[test]
    fn decode_is_total(bytes in proptest::collection::vec(0u8..=255, 0..256)) {
        let _ = decode_bloom(&bytes);
    }
}

/// Empirical FPR stays within 2× of the analytic budget. Deterministic
/// (fixed seeds), large probe population, checked at two densities.
#[test]
fn fpr_within_twice_budget() {
    for (bits_per_key, n_keys) in [(DEFAULT_BITS_PER_KEY, 2_000usize), (8, 1_000)] {
        let mut rng = StdRng::seed_from_u64(0xF9A * u64::from(bits_per_key));
        let members: Vec<Vec<u8>> =
            (0..n_keys).map(|i| format!("member-{i}").into_bytes()).collect();
        let keys = keys_from(BLOOM_SEED, &members);
        let filter = AttributeBloom::build(BLOOM_SEED, bits_per_key, &keys);

        let probes = 200_000u32;
        let mut positives = 0u32;
        for _ in 0..probes {
            let label = format!("non-member-{}", rng.gen::<u64>());
            if filter.contains_key(&BloomKey::from_bytes(BLOOM_SEED, label.as_bytes())) {
                positives += 1;
            }
        }
        let empirical = f64::from(positives) / f64::from(probes);

        // Analytic budget for the *actual* geometry (m is rounded up to
        // whole words, so this is slightly tighter than the nominal rate).
        let m = filter.bit_len() as f64;
        let k = f64::from(filter.probes());
        let n = n_keys as f64;
        let budget = (1.0 - (-k * n / m).exp()).powf(k);
        assert!(
            empirical <= 2.0 * budget,
            "bits/key={bits_per_key}: empirical FPR {empirical:.5} exceeds 2x budget {budget:.5}"
        );
        assert!(empirical > 0.0, "probe population too small to measure FPR");
    }
}

/// An honestly built filter never shrinks under the adversary's bit-flip
/// class into reporting a member absent *and* having that go unnoticed:
/// corruption is detectable work-wise only. Here we just pin the mutation
/// classes' labels and that corruption really changes probe answers.
#[test]
fn corrupt_bloom_classes_do_corrupt() {
    let labels: Vec<Vec<u8>> = (0..500).map(|i| format!("k{i}").into_bytes()).collect();
    let keys = keys_from(BLOOM_SEED, &labels);
    let honest = AttributeBloom::build(BLOOM_SEED, 10, &keys);

    let mut seen = std::collections::BTreeSet::new();
    let mut adv = Adversary::new(0xB10);
    for _ in 0..64 {
        let mut mutant = honest.clone();
        let label = adv.corrupt_bloom(&mut mutant);
        seen.insert(label);
        match label {
            "saturated" => {
                // every probe answers "present"
                let probe = BloomKey::from_bytes(BLOOM_SEED, b"definitely-not-a-member");
                assert!(mutant.contains_key(&probe));
            }
            "zeroed-words" | "bit-flip" => {
                assert_ne!(mutant.words(), honest.words(), "mutation must change the filter");
            }
            other => panic!("unknown corruption class {other}"),
        }
    }
    assert_eq!(seen.len(), 3, "all three corruption classes exercised");
}
