//! Adversarial fault-injection suite: the Byzantine-SP experiment of
//! paper §8, run mechanically at scale.
//!
//! A seeded [`Adversary`] derives thousands of corrupted variants of an
//! honestly produced response — byte-level (bit flips, truncation,
//! splices, chunk swaps, extensions, wrong-subgroup point substitution)
//! and structure-level (AttDigest swaps, witness replay across blocks,
//! dropped results, dropped coverage, forged results, redirected leaves) —
//! and drives every one through the wire decoder and full verification.
//!
//! Invariants asserted for *every* mutation, across both accumulator
//! constructions:
//!
//! 1. **zero panics** — each drive runs under `catch_unwind`;
//! 2. **100% rejection** — a mutant that still decodes must fail
//!    verification (mutations that round-trip to the original bytes are
//!    detected and skipped as no-ops);
//! 3. **classified errors** — every rejection maps to a named
//!    [`VerifyError`] variant (decode failures surface as
//!    `VerifyError::Malformed`).
//!
//! Iteration count per construction comes from `VCHAIN_FUZZ_ITERS`
//! (default 500, giving ≥1000 mutations across Acc1 + Acc2); the seed is
//! fixed, so any failure replays from its printed `(seed, iteration)`.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vchain_acc::{Acc1, Acc2, Accumulator};
use vchain_chain::{Difficulty, LightClient, Object};
use vchain_core::adversary::{for_each_value, Adversary};
use vchain_core::client::{PipelineMode, StreamVerifier};
use vchain_core::miner::{IndexScheme, Miner, MinerConfig};
use vchain_core::query::CompiledQuery;
use vchain_core::query::{Query, RangeSpec};
use vchain_core::subscribe::{
    verify_subscription_update, SubscriptionEngine, SubscriptionMode, SubscriptionUpdate,
    WalkStrategy,
};
use vchain_core::verify::{verify_encoded_response, verify_response, VerifyError};
use vchain_core::vo::ClauseRef;
use vchain_core::wire::{
    decode_bloom, decode_response, encode_bloom, encode_response, encode_response_v2,
    encode_scan_stream, encode_update,
};
use vchain_pairing::{g1_subgroup_check, Field, Fp, G1Affine};

const DOMAIN_BITS: u8 = 6;

fn fuzz_iters() -> usize {
    std::env::var("VCHAIN_FUZZ_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(500)
}

fn cfg(scheme: IndexScheme) -> MinerConfig {
    MinerConfig {
        scheme,
        skip_levels: 3,
        domain_bits: DOMAIN_BITS,
        difficulty: Difficulty(2),
        bloom_bits_per_key: 10,
    }
}

/// Small deterministic workload: enough blocks for skips, small enough to
/// keep a thousand verifications fast.
fn workload(seed: u64, blocks: usize, per_block: usize) -> Vec<Vec<Object>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let kinds = ["Sedan", "Van", "Truck"];
    let brands = ["Benz", "BMW", "Audi"];
    let mut id = 0;
    (0..blocks)
        .map(|b| {
            (0..per_block)
                .map(|_| {
                    id += 1;
                    Object::new(
                        id,
                        (b as u64 + 1) * 10,
                        vec![rng.gen_range(0..64), rng.gen_range(0..64)],
                        vec![
                            kinds[rng.gen_range(0..kinds.len())].to_string(),
                            brands[rng.gen_range(0..brands.len())].to_string(),
                        ],
                    )
                })
                .collect()
        })
        .collect()
}

fn build_chain<A: Accumulator>(scheme: IndexScheme, acc: A) -> (Miner<A>, LightClient) {
    let c = cfg(scheme);
    let mut miner = Miner::new(c, acc);
    let mut light = LightClient::new(c.difficulty);
    for (i, objs) in workload(7, 8, 3).into_iter().enumerate() {
        miner.mine_block((i as u64 + 1) * 10, objs);
    }
    for h in miner.headers() {
        light.sync_header(h).expect("headers validate");
    }
    (miner, light)
}

fn sample_query() -> Query {
    Query {
        time_window: Some((20, 70)),
        ranges: vec![RangeSpec { dim: 0, lo: 5, hi: 40 }],
        keywords: vec![vec!["Sedan".into(), "Van".into()], vec!["Benz".into(), "BMW".into()]],
    }
}

/// Every rejection must map onto a named taxonomy variant; this is the
/// "classified error" half of the acceptance criterion.
fn classify(e: &VerifyError) -> &'static str {
    match e {
        VerifyError::RootMismatch { .. } => "RootMismatch",
        VerifyError::BadProof { .. } => "BadProof",
        VerifyError::BadClause { .. } => "BadClause",
        VerifyError::ResultNotMatching { .. } => "ResultNotMatching",
        VerifyError::ResultIndexing { .. } => "ResultIndexing",
        VerifyError::MissingCoverage { .. } => "MissingCoverage",
        VerifyError::DuplicateCoverage { .. } => "DuplicateCoverage",
        VerifyError::SkipHashMismatch { .. } => "SkipHashMismatch",
        VerifyError::SkipRootMismatch { .. } => "SkipRootMismatch",
        VerifyError::SchemeViolation => "SchemeViolation",
        VerifyError::UnknownBlock { .. } => "UnknownBlock",
        VerifyError::BadGroup { .. } => "BadGroup",
        VerifyError::AggregationUnsupported => "AggregationUnsupported",
        VerifyError::MissingWindow => "MissingWindow",
        VerifyError::InvalidUpdateInterval { .. } => "InvalidUpdateInterval",
        VerifyError::Malformed(_) => "Malformed",
        VerifyError::PipelineLost => "PipelineLost",
    }
}

/// A compressed G1 encoding that is on-curve but *outside* the
/// prime-order subgroup (the cofactor is ≈2¹²⁵, so a random curve point
/// is essentially never in G1). Both constructions lead with a G1 slot in
/// their value encoding, so this splices into either.
fn wrong_subgroup_g1_bytes() -> Vec<u8> {
    for ctr in 0u64.. {
        let x = Fp::hash_to_field(&ctr.to_le_bytes());
        let mut bytes = vec![0u8];
        bytes.extend_from_slice(&x.to_canonical_bytes());
        if let Ok(p) = G1Affine::try_from_bytes_on_curve(&bytes) {
            if !g1_subgroup_check(&p) {
                return bytes;
            }
        }
    }
    unreachable!("half of all x coordinates are on-curve");
}

struct Tally {
    rejected: BTreeMap<&'static str, usize>,
    noops: usize,
    driven: usize,
}

fn run_fault_injection<A: Accumulator>(scheme: IndexScheme, acc: A, seed: u64, iters: usize) {
    let (miner, light) = build_chain(scheme, acc);
    let q = sample_query().compile(DOMAIN_BITS);
    let sp = miner.into_service_provider();
    let honest = sp.time_window_query(&q);
    let cfg = sp.cfg;
    let acc = &sp.acc;

    // Honest baseline: verifies, and the encoding round-trips byte-identically.
    verify_response(&q, &honest, &light, &cfg, acc).expect("honest response verifies");
    let encoded = encode_response(&honest);
    let decoded = decode_response(acc, &encoded).expect("honest encoding decodes");
    assert_eq!(encode_response(&decoded), encoded, "decode∘encode must be the identity");
    verify_encoded_response(&q, &encoded, &light, &cfg, acc)
        .expect("honest encoding verifies end-to-end");

    // Wrong-subgroup substitution target: the first AttDigest slot's G1
    // component, located in the encoding by its honest bytes.
    let mut first_value = None;
    let mut cov = honest.coverage.clone();
    for_each_value::<A>(&mut cov, &mut |v| {
        if first_value.is_none() {
            first_value = Some(v.clone());
        }
    });
    let victim_bytes = A::value_bytes(&first_value.expect("response has at least one value"));
    let bad_g1 = wrong_subgroup_g1_bytes();
    let mut replacement = victim_bytes.clone();
    replacement[..bad_g1.len()].copy_from_slice(&bad_g1);

    let mut adv = Adversary::new(seed);
    let mut tally = Tally { rejected: BTreeMap::new(), noops: 0, driven: 0 };

    for iter in 0..iters {
        let class = adv.rng().gen_range(0..12u32);
        let (mutant, label): (Vec<u8>, &'static str) = match class {
            0..=4 => adv.mutate_bytes(&encoded),
            5 => {
                let mut m = honest.clone();
                if !adv.swap_values(&mut m.coverage) {
                    tally.noops += 1;
                    continue;
                }
                (encode_response(&m), "swap-values")
            }
            6 => {
                let mut m = honest.clone();
                if !adv.replay_proof(&mut m.coverage) {
                    tally.noops += 1;
                    continue;
                }
                (encode_response(&m), "replay-proof")
            }
            7 => {
                let mut m = honest.clone();
                if !adv.drop_result(&mut m.results) {
                    tally.noops += 1;
                    continue;
                }
                (encode_response(&m), "drop-result")
            }
            8 => {
                let mut m = honest.clone();
                if !adv.drop_coverage(&mut m.coverage) {
                    tally.noops += 1;
                    continue;
                }
                (encode_response(&m), "drop-coverage")
            }
            9 => {
                let mut m = honest.clone();
                if !adv.forge_result(&mut m.results) {
                    tally.noops += 1;
                    continue;
                }
                (encode_response(&m), "forge-result")
            }
            10 => {
                let mut m = honest.clone();
                if !adv.redirect_leaf(&mut m.coverage) {
                    tally.noops += 1;
                    continue;
                }
                (encode_response(&m), "redirect-leaf")
            }
            _ => {
                let mut m = encoded.clone();
                assert!(
                    Adversary::substitute_slot(&mut m, &victim_bytes, &replacement),
                    "value slot must be locatable in the encoding"
                );
                (m, "wrong-subgroup-point")
            }
        };

        // A mutation that reproduces the original bytes proves nothing —
        // skip it rather than let it inflate the rejection count.
        if mutant == encoded {
            tally.noops += 1;
            continue;
        }

        let outcome = catch_unwind(AssertUnwindSafe(|| {
            verify_encoded_response(&q, &mutant, &light, &cfg, acc)
        }));
        tally.driven += 1;
        match outcome {
            Err(_) => panic!(
                "PANIC on mutation (class={label}, seed={seed:#x}, iter={iter}) — \
                 verification must be total"
            ),
            Ok(Ok(accepted)) => panic!(
                "ACCEPTED a mutated VO (class={label}, seed={seed:#x}, iter={iter}): \
                 {} results passed",
                accepted.len()
            ),
            Ok(Err(e)) => {
                *tally.rejected.entry(classify(&e)).or_insert(0) += 1;
            }
        }
    }

    let rejected: usize = tally.rejected.values().sum();
    assert_eq!(rejected, tally.driven, "every driven mutation must be rejected");
    assert!(
        tally.driven >= iters * 9 / 10,
        "no-op rate too high to be meaningful: {} driven of {iters}",
        tally.driven
    );
    // The corpus must actually exercise a spread of the taxonomy, not
    // collapse into one rejection path.
    assert!(
        tally.rejected.len() >= 4,
        "expected ≥4 distinct rejection classes, got {:?}",
        tally.rejected
    );
    // Malformed (wire-level) and at least one cryptographic rejection both occur.
    assert!(
        tally.rejected.contains_key("Malformed"),
        "no wire-level rejections: {:?}",
        tally.rejected
    );
}

#[test]
fn fault_injection_acc1() {
    run_fault_injection(
        IndexScheme::Both,
        Acc1::keygen(4000, &mut StdRng::seed_from_u64(21)),
        0xACC1_0000_0000_0001,
        fuzz_iters(),
    );
}

#[test]
fn fault_injection_acc2() {
    run_fault_injection(
        IndexScheme::Both,
        Acc2::keygen(4096, &mut StdRng::seed_from_u64(22)),
        0xACC2_0000_0000_0002,
        fuzz_iters(),
    );
}

/// Streaming refinement of [`classify`]: wire-level rejections keep their
/// [`vchain_core::wire::WireError`] variant name, so the tally shows which
/// structural defenses (framing, back-references, truncation detection)
/// the corpus actually exercised instead of one flat "Malformed".
fn classify_stream(e: &VerifyError) -> &'static str {
    use vchain_core::wire::WireError;
    match e {
        VerifyError::Malformed(w) => match w {
            WireError::Truncated { .. } => "Malformed/Truncated",
            WireError::UnsupportedVersion(_) => "Malformed/UnsupportedVersion",
            WireError::BadTag { .. } => "Malformed/BadTag",
            WireError::Oversized { .. } => "Malformed/Oversized",
            WireError::DepthExceeded { .. } => "Malformed/DepthExceeded",
            WireError::BadUtf8 => "Malformed/BadUtf8",
            WireError::Accumulator(_) => "Malformed/Accumulator",
            WireError::TrailingBytes { .. } => "Malformed/TrailingBytes",
            WireError::BackRefOutOfRange { .. } => "Malformed/BackRefOutOfRange",
            WireError::NonCanonical { .. } => "Malformed/NonCanonical",
            WireError::FrameOversized { .. } => "Malformed/FrameOversized",
            WireError::FrameSequence { .. } => "Malformed/FrameSequence",
            WireError::StreamTruncated { .. } => "Malformed/StreamTruncated",
        },
        other => classify(other),
    }
}

/// Feed a byte string through the streamed verification pipeline in inline
/// mode (single-threaded, so `catch_unwind` sees any panic directly).
fn drive_stream<A: Accumulator>(
    queries: &[CompiledQuery],
    light: &LightClient,
    cfg: MinerConfig,
    acc: &A,
    bytes: &[u8],
) -> Result<Vec<Vec<Object>>, VerifyError> {
    let mut sv = StreamVerifier::new(
        queries.to_vec(),
        light.clone(),
        cfg,
        acc.clone(),
        PipelineMode::Inline,
    );
    for chunk in bytes.chunks(251) {
        sv.feed(chunk)?;
    }
    sv.finish().map(|(results, _)| results)
}

/// An overlapping `n`-window scan over the 8-block chain (`shift` time
/// units between window starts), used by the streaming fault suite.
fn scan_queries(n: u64, shift: u64) -> Vec<CompiledQuery> {
    (0..n)
        .map(|i| {
            let mut q = sample_query();
            q.time_window = Some((10 + shift * i, 40 + shift * i));
            q.compile(DOMAIN_BITS)
        })
        .collect()
}

/// Streaming / v2 counterpart of [`run_fault_injection`]: corrupts a
/// scan's frame stream (byte classes plus frame reorder, mid-stream
/// truncation, intern-table shrink and table-entry splice) and a one-shot
/// v2 encoding, and drives everything through [`StreamVerifier`] /
/// [`verify_encoded_response`]. Same invariants: zero panics, 100%
/// rejection, every rejection classified.
fn run_stream_fault_injection<A: Accumulator>(
    scheme: IndexScheme,
    acc: A,
    seed: u64,
    iters: usize,
) {
    let (miner, light) = build_chain(scheme, acc);
    let queries = scan_queries(4, 10);
    let sp = miner.into_service_provider();
    let responses: Vec<_> = queries.iter().map(|q| sp.time_window_query(q)).collect();
    let cfg = sp.cfg;
    let acc = &sp.acc;
    let stream = encode_scan_stream(&responses);
    let v2_first = encode_response_v2(&responses[0]);

    // Honest baselines: the stream verifies to the same per-window results
    // as one-shot verification, and the v2 encoding verifies end-to-end.
    let reference: Vec<Vec<Object>> = queries
        .iter()
        .zip(&responses)
        .map(|(q, r)| verify_response(q, r, &light, &cfg, acc).expect("honest window verifies"))
        .collect();
    let streamed =
        drive_stream(&queries, &light, cfg, acc, &stream).expect("honest stream verifies");
    assert_eq!(streamed, reference, "streamed results must match one-shot verification");
    verify_encoded_response(&queries[0], &v2_first, &light, &cfg, acc)
        .expect("honest v2 encoding verifies end-to-end");

    enum Target {
        Stream(Vec<u8>),
        V2(Vec<u8>),
    }

    let mut adv = Adversary::new(seed);
    let mut tally = Tally { rejected: BTreeMap::new(), noops: 0, driven: 0 };

    for iter in 0..iters {
        let class = adv.rng().gen_range(0..12u32);
        let (target, label): (Target, &'static str) = match class {
            0..=4 => {
                let (m, label) = adv.mutate_bytes(&stream);
                (Target::Stream(m), label)
            }
            5 => match adv.stream_reorder(&stream) {
                Some(m) => (Target::Stream(m), "frame-reorder"),
                None => {
                    tally.noops += 1;
                    continue;
                }
            },
            6 => (Target::Stream(adv.stream_truncate(&stream)), "mid-stream-truncation"),
            7 => match Adversary::stream_shrink_table(&stream) {
                Some(m) => (Target::Stream(m), "table-shrink-backref"),
                None => {
                    tally.noops += 1;
                    continue;
                }
            },
            8 => match adv.stream_splice_table(&stream) {
                Some(m) => (Target::Stream(m), "table-entry-splice"),
                None => {
                    tally.noops += 1;
                    continue;
                }
            },
            // A lone window's v2 table can be empty (dedup is a cross-window
            // effect); fall back to the scan stream's shared table then.
            9 => match Adversary::v2_shrink_table(&v2_first) {
                Some(m) => (Target::V2(m), "v2-table-shrink"),
                None => match Adversary::stream_shrink_table(&stream) {
                    Some(m) => (Target::Stream(m), "table-shrink-backref"),
                    None => {
                        tally.noops += 1;
                        continue;
                    }
                },
            },
            10 => match adv.v2_splice_table(&v2_first) {
                Some(m) => (Target::V2(m), "v2-table-splice"),
                None => match adv.stream_splice_table(&stream) {
                    Some(m) => (Target::Stream(m), "table-entry-splice"),
                    None => {
                        tally.noops += 1;
                        continue;
                    }
                },
            },
            _ => {
                let (m, label) = adv.mutate_bytes(&v2_first);
                (Target::V2(m), label)
            }
        };

        match &target {
            Target::Stream(m) if *m == stream => {
                tally.noops += 1;
                continue;
            }
            Target::V2(m) if *m == v2_first => {
                tally.noops += 1;
                continue;
            }
            _ => {}
        }

        let outcome = catch_unwind(AssertUnwindSafe(|| match &target {
            Target::Stream(m) => drive_stream(&queries, &light, cfg, acc, m).map(|r| r.concat()),
            Target::V2(m) => verify_encoded_response(&queries[0], m, &light, &cfg, acc),
        }));
        tally.driven += 1;
        match outcome {
            Err(_) => panic!(
                "PANIC on stream mutation (class={label}, seed={seed:#x}, iter={iter}) — \
                 verification must be total"
            ),
            Ok(Ok(accepted)) => panic!(
                "ACCEPTED a mutated stream (class={label}, seed={seed:#x}, iter={iter}): \
                 {} results passed",
                accepted.len()
            ),
            Ok(Err(e)) => {
                *tally.rejected.entry(classify_stream(&e)).or_insert(0) += 1;
            }
        }
    }

    let rejected: usize = tally.rejected.values().sum();
    assert_eq!(rejected, tally.driven, "every driven mutation must be rejected");
    assert!(
        tally.driven >= iters * 9 / 10,
        "no-op rate too high to be meaningful: {} driven of {iters}",
        tally.driven
    );
    // Distinct-class spread needs a statistically meaningful corpus; a
    // `VCHAIN_FUZZ_ITERS`-reduced dev run keeps the harder invariants above.
    if tally.driven >= 200 {
        assert!(
            tally.rejected.len() >= 4,
            "expected ≥4 distinct rejection classes, got {:?}",
            tally.rejected
        );
    }
    assert!(
        tally.rejected.keys().any(|k| k.starts_with("Malformed")),
        "no wire-level rejections: {:?}",
        tally.rejected
    );
}

#[test]
fn stream_fault_injection_acc1() {
    run_stream_fault_injection(
        IndexScheme::Both,
        Acc1::keygen(4000, &mut StdRng::seed_from_u64(27)),
        0x57E1_0000_0000_0005,
        fuzz_iters() / 2,
    );
}

#[test]
fn stream_fault_injection_acc2() {
    run_stream_fault_injection(
        IndexScheme::Both,
        Acc2::keygen(4096, &mut StdRng::seed_from_u64(28)),
        0x57E2_0000_0000_0006,
        fuzz_iters() / 2,
    );
}

/// Each targeted streaming mutation class lands on its intended taxonomy
/// entry (not merely "some error"), and the honest stream's peak buffer
/// stays strictly below the full VO size in both pipeline modes.
#[test]
fn stream_mutation_classes_hit_their_taxonomy_entries() {
    use vchain_core::wire::WireError;

    let acc = Acc2::keygen(4096, &mut StdRng::seed_from_u64(29));
    let (miner, light) = build_chain(IndexScheme::Both, acc);
    // Moderate overlap (each block re-covered once, not three times): the
    // retained state — intern table + one in-flight frame — then sits well
    // below the whole VO, which is what the bounded-buffer claim is about.
    let queries = scan_queries(4, 20);
    let sp = miner.into_service_provider();
    let responses: Vec<_> = queries.iter().map(|q| sp.time_window_query(q)).collect();
    let (cfg, acc) = (sp.cfg, &sp.acc);
    let stream = encode_scan_stream(&responses);

    // Honest control, both pipeline modes: results match and buffering is
    // strictly sub-linear in the stream (the acceptance criterion's
    // "peak buffer < full VO size").
    for mode in [PipelineMode::Inline, PipelineMode::Worker] {
        let mut sv = StreamVerifier::new(queries.clone(), light.clone(), cfg, acc.clone(), mode);
        for chunk in stream.chunks(251) {
            sv.feed(chunk).expect("honest stream feeds");
        }
        let (_, stats) = sv.finish().expect("honest stream verifies");
        assert_eq!(stats.vo_bytes, stream.len());
        assert!(
            stats.peak_buffer_bytes < stats.vo_bytes,
            "streaming must buffer less than the full VO: peak={} full={}",
            stats.peak_buffer_bytes,
            stats.vo_bytes
        );
    }

    let mut adv = Adversary::new(0x7A70_0000_0000_0007);

    let shrunk = Adversary::stream_shrink_table(&stream).expect("scan stream interns slots");
    match drive_stream(&queries, &light, cfg, acc, &shrunk).expect_err("shrunk table rejected") {
        VerifyError::Malformed(WireError::BackRefOutOfRange { .. }) => {}
        other => panic!("table shrink must dangle a back-reference, got {other:?}"),
    }

    let reordered = adv.stream_reorder(&stream).expect("scan stream has ≥2 entry frames");
    match drive_stream(&queries, &light, cfg, acc, &reordered).expect_err("reorder rejected") {
        VerifyError::Malformed(WireError::FrameSequence { .. }) => {}
        other => panic!("frame reorder must break the sequence, got {other:?}"),
    }

    let truncated = adv.stream_truncate(&stream);
    match drive_stream(&queries, &light, cfg, acc, &truncated).expect_err("truncation rejected") {
        VerifyError::Malformed(WireError::StreamTruncated { .. } | WireError::Truncated { .. }) => {
        }
        // A cut can also land inside a frame body, surfacing as any other
        // decode error — but never as an accept. Tolerate typed errors.
        VerifyError::Malformed(_) | VerifyError::MissingCoverage { .. } => {}
        other => panic!("truncation must be a typed rejection, got {other:?}"),
    }

    let spliced = adv.stream_splice_table(&stream).expect("scan stream interns slots");
    assert!(
        drive_stream(&queries, &light, cfg, acc, &spliced).is_err(),
        "a corrupted shared table entry must fail verification"
    );
}

/// Subscription-side fault injection. Updates carry their own claimed
/// interval, so the client binding is part of the defense: an update is
/// accepted only if its `query_id` and `from_height` match what the
/// subscriber is waiting for, its interval anchors to known headers, and
/// verification passes. Mutations must either be rejected by that pipeline
/// or be *provably harmless* (a subset of the honest results over a subset
/// of the honest interval — e.g. a bit flip that only shrinks the claimed
/// window).
#[test]
fn fault_injection_subscription() {
    let c = cfg(IndexScheme::Both);
    let acc = Acc2::keygen(4096, &mut StdRng::seed_from_u64(23));
    let mut miner = Miner::new(c, acc.clone());
    let mut light = LightClient::new(c.difficulty);
    let mut engine = SubscriptionEngine::new(c, acc.clone(), SubscriptionMode::Lazy, false);
    let q = Query { time_window: None, ranges: vec![], keywords: vec![vec!["Sedan".into()]] };
    let qid = engine.register(&q);
    let cq = engine.compiled(qid).expect("registered").clone();

    let mut updates: Vec<SubscriptionUpdate<Acc2>> = Vec::new();
    for (i, objs) in workload(9, 8, 3).into_iter().enumerate() {
        let h = miner.mine_block((i as u64 + 1) * 10, objs);
        let block = miner.store().block(h).expect("mined").clone();
        let indexed = miner.indexed()[h as usize].clone();
        updates.extend(engine.process_block(&block, &indexed));
    }
    for h in miner.headers() {
        light.sync_header(h).expect("headers validate");
    }
    let honest = updates.into_iter().find(|u| !u.results.is_empty()).expect("some update matches");
    let honest_ids: Vec<u64> =
        honest.results.iter().flat_map(|(_, v)| v.iter().map(|o| o.id)).collect();
    verify_subscription_update(&cq, &honest, &light, &c, &acc).expect("honest update verifies");
    let encoded = encode_update(&honest);

    let mut adv = Adversary::new(0x5AB5_0000_0000_0003);
    let iters = (fuzz_iters() / 4).max(100);
    let mut rejected = 0usize;
    let mut harmless = 0usize;
    for iter in 0..iters {
        let (mutant, label) = if adv.rng().gen_range(0..8u32) == 0 {
            let mut m = honest.clone();
            adv.inflate_claim(&mut m);
            (encode_update(&m), "inflate-claim")
        } else {
            adv.mutate_bytes(&encoded)
        };
        if mutant == encoded {
            continue;
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<Vec<Object>, VerifyError> {
            let update =
                vchain_core::wire::decode_update(&acc, &mutant).map_err(VerifyError::Malformed)?;
            // client-side dispatch binding
            if update.query_id != qid || update.from_height != honest.from_height {
                return Err(VerifyError::InvalidUpdateInterval {
                    from: update.from_height,
                    to: update.to_height,
                });
            }
            let objs = verify_subscription_update(&cq, &update, &light, &c, &acc)?;
            // anything accepted must be a sub-claim of the honest update
            assert!(
                update.to_height <= honest.to_height,
                "accepted update widens the claimed interval"
            );
            for o in &objs {
                assert!(honest_ids.contains(&o.id), "accepted update forged result {}", o.id);
            }
            Ok(objs)
        }));
        match outcome {
            Err(_) => panic!("PANIC on subscription mutation (class={label}, iter={iter})"),
            Ok(Ok(_)) => harmless += 1,
            Ok(Err(_)) => rejected += 1,
        }
    }
    assert!(rejected > 0, "corpus produced no rejections");
    // Shrunk-window accepts are rare single-bit cases; the overwhelming
    // majority of mutations must be hard rejections.
    assert!(
        harmless * 20 <= rejected,
        "too many harmless accepts: {harmless} vs {rejected} rejections"
    );
}

/// Satellite (a): a subscription-compiled query (no window) fed to the
/// time-window verifier is a typed error, not a panic.
#[test]
fn missing_window_is_a_typed_error() {
    let acc = Acc1::keygen(600, &mut StdRng::seed_from_u64(24));
    let (miner, light) = build_chain(IndexScheme::Intra, acc);
    let windowless =
        Query { time_window: None, ranges: vec![], keywords: vec![vec!["Sedan".into()]] }
            .compile(DOMAIN_BITS);
    let sp = miner.into_service_provider();
    let empty = vchain_core::vo::QueryResponse::<Acc1> { results: vec![], coverage: vec![] };
    let e = verify_response(&windowless, &empty, &light, &sp.cfg, &sp.acc).unwrap_err();
    assert_eq!(e, VerifyError::MissingWindow);
}

/// Decoded cell prefixes with out-of-domain lengths or oversized bits are
/// typed [`vchain_core::vo::ClauseError`]s, not asserts.
#[test]
fn malformed_cell_prefixes_are_typed_errors() {
    use vchain_core::vo::ClauseError;
    let q = sample_query().compile(DOMAIN_BITS);
    for (len, bits) in [(0u8, 0u64), (DOMAIN_BITS + 1, 0), (63, 0), (255, u64::MAX)] {
        let c = ClauseRef::Cell { len, prefixes: vec![(0, bits)] };
        assert_eq!(c.resolve(&q), Err(ClauseError::InvalidPrefix { len }), "len={len} bits={bits}");
    }
    // bits wider than the stated length
    let c = ClauseRef::Cell { len: 3, prefixes: vec![(0, 0b1000)] };
    assert_eq!(c.resolve(&q), Err(ClauseError::InvalidPrefix { len: 3 }));
}

/// A subscription update claiming an absurd interval is rejected before
/// any allocation sized by the claim.
#[test]
fn inflated_interval_rejected_without_allocation() {
    let c = cfg(IndexScheme::Both);
    let acc = Acc2::keygen(4096, &mut StdRng::seed_from_u64(25));
    let mut miner = Miner::new(c, acc.clone());
    let mut light = LightClient::new(c.difficulty);
    for (i, objs) in workload(11, 4, 2).into_iter().enumerate() {
        miner.mine_block((i as u64 + 1) * 10, objs);
    }
    for h in miner.headers() {
        light.sync_header(h).expect("headers validate");
    }
    let cq = Query { time_window: None, ranges: vec![], keywords: vec![vec!["Sedan".into()]] }
        .compile(DOMAIN_BITS);
    let update = SubscriptionUpdate::<Acc2> {
        query_id: 0,
        from_height: 0,
        to_height: u64::MAX, // would be a 2⁶⁴-element set if materialized
        results: vec![],
        coverage: vec![],
    };
    let e = verify_subscription_update(&cq, &update, &light, &c, &acc).unwrap_err();
    assert_eq!(e, VerifyError::InvalidUpdateInterval { from: 0, to: u64::MAX });
}

/// Satellite: the per-block attribute Bloom filter is SP-side acceleration
/// state, never part of the verified boundary. An adversary that forges or
/// corrupts it can only change how much work the indexed engine does, not
/// what it publishes:
///
/// * false positives make pre-filtering useless (everything stays a
///   candidate and takes the exact walk — naive behavior);
/// * false negatives steer the classifier at a clause that is not actually
///   disjoint; the proof attempt fails and the query is demoted to the
///   exact walk, which reproduces the reference output byte for byte.
///
/// Asserted per corruption class, per block: byte-identical updates against
/// a naive twin that never reads the filter, every published update still
/// verifies against the light client, and mutated filter *encodings* decode
/// totally (typed errors, no panics).
#[test]
fn corrupted_bloom_is_harmless_to_correctness() {
    let c = cfg(IndexScheme::Both);
    let acc = Acc2::keygen(4096, &mut StdRng::seed_from_u64(26));
    let mut miner = Miner::new(c, acc.clone());
    let mut light = LightClient::new(c.difficulty);
    for (i, objs) in workload(13, 8, 3).into_iter().enumerate() {
        miner.mine_block((i as u64 + 1) * 10, objs);
    }
    for h in miner.headers() {
        light.sync_header(h).expect("headers validate");
    }

    let queries = [
        Query { time_window: None, ranges: vec![], keywords: vec![vec!["Sedan".into()]] },
        Query {
            time_window: None,
            ranges: vec![],
            keywords: vec![vec!["Truck".into(), "Van".into()], vec!["Benz".into()]],
        },
        Query {
            time_window: None,
            ranges: vec![RangeSpec { dim: 0, lo: 0, hi: 7 }],
            keywords: vec![],
        },
        Query {
            time_window: None,
            ranges: vec![RangeSpec { dim: 1, lo: 8, hi: 15 }],
            keywords: vec![vec!["Audi".into()]],
        },
        // refuted every block; an honest filter answers "absent" here
        Query { time_window: None, ranges: vec![], keywords: vec![vec!["Ghost".into()]] },
    ];

    let mut adv = Adversary::new(0xB100_0000_0000_0004);
    for use_iptree in [true, false] {
        let mut fast =
            SubscriptionEngine::new(c, acc.clone(), SubscriptionMode::Realtime, use_iptree);
        let mut twin =
            SubscriptionEngine::new(c, acc.clone(), SubscriptionMode::Realtime, use_iptree)
                .with_strategy(WalkStrategy::Naive);
        let compiled: Vec<_> = queries
            .iter()
            .map(|q| {
                let id = fast.register(q);
                twin.register(q);
                fast.compiled(id).expect("registered").clone()
            })
            .collect();

        for h in 0..miner.store().blocks().len() {
            let block = miner.store().blocks()[h].clone();
            let honest = &miner.indexed()[h];
            let mut corrupted = honest.clone();
            let label = adv.corrupt_bloom(&mut corrupted.bloom);

            let a = fast.process_block(&block, &corrupted);
            let b = twin.process_block(&block, honest);
            assert_eq!(a.len(), b.len(), "schedule diverged under {label} at height {h}");
            for (ua, ub) in a.iter().zip(&b) {
                assert_eq!(
                    encode_update(ua),
                    encode_update(ub),
                    "update bytes diverged under {label} at height {h} (iptree={use_iptree})"
                );
            }
            for u in &a {
                let cq = &compiled[u.query_id as usize];
                verify_subscription_update(cq, u, &light, &c, &acc)
                    .expect("update produced under a corrupted filter still verifies");
            }

            // Totality of the filter codec over the adversary's byte classes.
            let honest_bytes = encode_bloom(&honest.bloom);
            for _ in 0..8 {
                let (mutant, _) = adv.mutate_bytes(&honest_bytes);
                let _ = decode_bloom(&mutant);
            }
            let roundtrip = decode_bloom(&honest_bytes).expect("honest filter decodes");
            assert_eq!(&roundtrip, &honest.bloom, "codec is the identity on honest filters");
        }
    }
}
