//! Source-level audit of the untrusted decode/verify boundary.
//!
//! The clippy deny walls (`#![deny(clippy::unwrap_used, ...)]`) at the top of
//! each boundary module enforce panic-freedom when clippy runs in CI, but
//! `rustc` silently ignores tool lints during a plain `cargo test`. This test
//! makes the same guarantee self-enforcing: it scans the source of every
//! module reachable from attacker-controlled bytes and fails if a panicking
//! construct appears outside `#[cfg(test)]` and outside the explicit
//! allowlist below.

use std::fs;
use std::path::Path;

/// Panicking constructs that must not appear on the untrusted boundary.
const TOKENS: &[&str] =
    &[".unwrap()", ".expect(", "panic!", "unreachable!", "todo!", "unimplemented!"];

/// Modules reachable from untrusted bytes: the wire codec, the compressed
/// point decoder, accumulator decode/verify, and the VO verification walk.
const BOUNDARY_FILES: &[&str] = &[
    "../pairing/src/decode.rs",
    "../accumulator/src/lib.rs",
    "src/wire.rs",
    "src/vo.rs",
    "src/verify.rs",
    "src/batch.rs",
];

/// `(file suffix, line substring)` pairs that are deliberately exempt.
/// Each entry must name a *trusted-side* panic with a documented rationale.
const ALLOWLIST: &[(&str, &str)] = &[
    // `Accumulator::setup` is the trusted miner-side wrapper around
    // `try_setup`; exceeding the public-key bound there is a provisioning
    // bug on the operator's own machine, not attacker input.
    ("accumulator/src/lib.rs", "panic!(\"accumulator setup exceeded key bounds"),
];

#[test]
fn untrusted_boundary_is_panic_free() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut violations = Vec::new();
    for rel in BOUNDARY_FILES {
        let path = root.join(rel);
        let src = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("boundary file {} unreadable: {e}", path.display()));
        for (idx, line) in src.lines().enumerate() {
            let trimmed = line.trim_start();
            // Audit stops where the module's own tests begin: test code is
            // trusted and uses unwrap/expect freely.
            if trimmed == "#[cfg(test)]" {
                break;
            }
            // Comment lines (`//`, `///`, `//!`) often *mention* unwrap in
            // doc examples; those never compile into the boundary.
            if trimmed.starts_with("//") {
                continue;
            }
            for token in TOKENS {
                if !trimmed.contains(token) {
                    continue;
                }
                let allowed = ALLOWLIST
                    .iter()
                    .any(|(file, needle)| rel.ends_with(file) && trimmed.contains(needle));
                if !allowed {
                    violations.push(format!("{rel}:{}: {token} in `{trimmed}`", idx + 1));
                }
            }
        }
    }
    assert!(
        violations.is_empty(),
        "panicking constructs on the untrusted boundary (add a typed error, \
         or allowlist with a written rationale):\n{}",
        violations.join("\n")
    );
}

/// The allowlist must stay honest: every entry must still match a real line,
/// so stale exemptions get cleaned up rather than silently widening the gate.
#[test]
fn allowlist_entries_still_exist() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for (file, needle) in ALLOWLIST {
        let rel = BOUNDARY_FILES
            .iter()
            .find(|r| r.ends_with(file))
            .unwrap_or_else(|| panic!("allowlist names {file}, not a boundary file"));
        let src = fs::read_to_string(root.join(rel)).expect("boundary file readable");
        assert!(
            src.lines().any(|l| l.contains(needle)),
            "allowlist entry ({file}, {needle}) matches nothing — remove it"
        );
    }
}
