//! Crash-recovery differential suite for the persistent serving layer
//! (`core::store` + `ShardedServiceProvider`).
//!
//! The invariant under test: a service provider that crashes, tears a
//! write, or suffers bit-rot in its logs must — after recovery — answer
//! every query **byte-identically** to a twin that never crashed. Damage
//! may only ever cost cache warmth (a re-prove), never correctness.
//!
//! Set `VCHAIN_RECOVERY_ITERS` (CI's `store-recovery` job does) to widen
//! the torn-write and bit-flip sweeps beyond the default sample.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vchain_acc::Acc2;
use vchain_chain::{Difficulty, Object};
use vchain_core::miner::{IndexScheme, Miner, MinerConfig};
use vchain_core::query::{CompiledQuery, Query, RangeSpec};
use vchain_core::store::{frame_record, LogStore, STORE_HEADER_LEN};
use vchain_core::wire::encode_response;
use vchain_core::{
    Adversary, RecordKey, ServiceProvider, ShardedConfig, ShardedServiceProvider, StoreRecord,
};
use vchain_hash::Digest;

const DOMAIN_BITS: u8 = 6;

/// Sweep multiplier: 1 by default, raised by CI's store-recovery job.
fn recovery_iters() -> usize {
    std::env::var("VCHAIN_RECOVERY_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .clamp(1, 64)
}

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("vchain-recovery-{}-{tag}-{n}", std::process::id()))
}

fn temp_file(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("vchain-recovery-{}-{tag}-{n}.log", std::process::id()))
}

// --- chain + query harness (mirrors end_to_end.rs) -------------------------

fn cfg() -> MinerConfig {
    MinerConfig {
        scheme: IndexScheme::Both,
        skip_levels: 3,
        domain_bits: DOMAIN_BITS,
        difficulty: Difficulty(2),
        bloom_bits_per_key: 10,
    }
}

fn workload(seed: u64) -> Vec<Vec<Object>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let kinds = ["Sedan", "Van", "Truck"];
    let brands = ["Benz", "BMW", "Audi", "Toyota"];
    let mut id = 0;
    (0..12)
        .map(|b| {
            (0..4)
                .map(|_| {
                    id += 1;
                    Object::new(
                        id,
                        (b as u64 + 1) * 10,
                        vec![rng.gen_range(0..64), rng.gen_range(0..64)],
                        vec![
                            kinds[rng.gen_range(0..kinds.len())].to_string(),
                            brands[rng.gen_range(0..brands.len())].to_string(),
                        ],
                    )
                })
                .collect()
        })
        .collect()
}

/// A fresh, identical SP. Everything is seeded, so every call builds the
/// same chain — the basis of all twin comparisons below.
fn build_sp() -> ServiceProvider<Acc2> {
    let mut miner = Miner::new(cfg(), Acc2::keygen(4096, &mut StdRng::seed_from_u64(4)));
    for (i, objs) in workload(7).into_iter().enumerate() {
        miner.mine_block((i as u64 + 1) * 10, objs);
    }
    miner.into_service_provider()
}

/// Overlapping-window query pool: re-served queries hit the cache, fresh
/// windows extend it — the dashboard/scan shape the serving layer targets.
fn query_pool() -> Vec<CompiledQuery> {
    let qs = vec![
        Query {
            time_window: Some((20, 90)),
            ranges: vec![RangeSpec { dim: 0, lo: 5, hi: 40 }],
            keywords: vec![vec!["Sedan".into(), "Van".into()], vec!["Benz".into(), "BMW".into()]],
        },
        Query { time_window: Some((10, 60)), ranges: vec![], keywords: vec![vec!["Truck".into()]] },
        Query {
            time_window: Some((40, 120)),
            ranges: vec![RangeSpec { dim: 1, lo: 0, hi: 32 }],
            keywords: vec![],
        },
        Query {
            time_window: Some((20, 90)),
            ranges: vec![],
            keywords: vec![vec!["Sedan".into()], vec!["Audi".into(), "Toyota".into()]],
        },
        Query {
            time_window: Some((30, 70)),
            ranges: vec![RangeSpec { dim: 0, lo: 0, hi: 63 }],
            keywords: vec![vec!["Van".into(), "Truck".into()]],
        },
        Query {
            time_window: Some((10, 120)),
            ranges: vec![],
            keywords: vec![vec!["NoSuchKeywordAnywhere".into()]],
        },
    ];
    qs.into_iter().map(|q| q.compile(DOMAIN_BITS)).collect()
}

/// A Zipf-ish replay stream over the pool (heavy repetition of low ids).
fn stream_indices(len: usize) -> Vec<usize> {
    const PATTERN: [usize; 12] = [0, 1, 0, 2, 1, 0, 3, 2, 4, 0, 1, 5];
    (0..len).map(|i| PATTERN[i % PATTERN.len()]).collect()
}

fn serve_stream(
    ssp: &ShardedServiceProvider<Acc2>,
    pool: &[CompiledQuery],
    len: usize,
) -> Vec<Vec<u8>> {
    stream_indices(len).into_iter().map(|i| encode_response(&ssp.query(&pool[i]))).collect()
}

fn sharded_cfg() -> ShardedConfig {
    // Small flush threshold so write-behind flushes fire *during* the run,
    // not only at shutdown.
    ShardedConfig { shards: 4, cache_capacity: 4096, flush_threshold: 8 }
}

// --- 1. warm start: kill, reopen, replay ----------------------------------

#[test]
fn warm_start_replay_is_byte_identical_with_high_hit_rate() {
    let pool = query_pool();
    let dir = temp_dir("warmstart");
    const STREAM: usize = 24;

    // Never-crashed twin (memory only).
    let twin = ShardedServiceProvider::new(build_sp(), sharded_cfg());
    let expected = serve_stream(&twin, &pool, STREAM);

    // Run A: persistent, cold caches; graceful shutdown flushes everything.
    let (run_a, rec_a) = ShardedServiceProvider::open(build_sp(), sharded_cfg(), &dir).unwrap();
    assert_eq!(rec_a.proofs_loaded, 0, "first boot has nothing to rehydrate");
    assert!(rec_a.witnesses_built > 0, "first boot extracts skip-entry witnesses");
    let cold = serve_stream(&run_a, &pool, STREAM);
    assert_eq!(cold, expected, "cold persistent run must match the memory-only twin");
    assert!(run_a.take_flush_error().is_none());
    let entries_a = run_a.total_entries();
    assert!(entries_a > 0);
    run_a.shutdown().unwrap();

    // Run B: restart over the same directory.
    let (run_b, rec_b) = ShardedServiceProvider::open(build_sp(), sharded_cfg(), &dir).unwrap();
    assert_eq!(rec_b.proofs_loaded, entries_a, "every cache entry survives the restart");
    assert_eq!(rec_b.proofs_rejected, 0);
    assert!(rec_b.witnesses_loaded > 0, "witness log rehydrates");
    assert_eq!(rec_b.witnesses_built, 0, "nothing left to extract on a warm start");
    for r in &rec_b.shard_reports {
        assert_eq!(r.skipped_corrupt, 0);
        assert_eq!(r.truncated_bytes, 0);
    }

    let before = run_b.merged_stats();
    let warm = serve_stream(&run_b, &pool, STREAM);
    let after = run_b.merged_stats();
    assert_eq!(warm, expected, "rehydrated SP must answer byte-identically to the twin");

    let hits = after.hits - before.hits;
    let lookups = hits + (after.misses - before.misses);
    assert!(lookups > 0);
    let hit_rate = hits as f64 / lookups as f64;
    assert!(
        hit_rate >= 0.90,
        "warm replay must be served from the rehydrated cache: hit rate {hit_rate:.3} \
         ({hits}/{lookups})"
    );
    assert!(run_b.take_flush_error().is_none());

    std::fs::remove_dir_all(&dir).ok();
}

// --- 2. torn writes: truncate at every byte boundary ----------------------

fn sample_records(n: usize) -> Vec<StoreRecord> {
    (0..n)
        .map(|i| match i % 3 {
            0 => StoreRecord::Proof {
                key: RecordKey {
                    block_height: i as u64,
                    att: Digest([i as u8; 32]),
                    clause: Digest([(i as u8).wrapping_add(1); 32]),
                },
                proof: vec![i as u8; 48 + i % 7],
            },
            1 => StoreRecord::Witness {
                block_height: i as u64,
                att: Digest([(i as u8).wrapping_mul(3); 32]),
                witness: vec![(i as u8) ^ 0x55; 16 * (1 + i % 4)],
            },
            _ => StoreRecord::Stats {
                hits: i as u64 * 10,
                misses: i as u64,
                evictions: i as u64 / 2,
            },
        })
        .collect()
}

/// Byte offsets where each frame starts, plus the end-of-file offset.
fn frame_boundaries(records: &[StoreRecord]) -> Vec<usize> {
    let mut bounds = vec![STORE_HEADER_LEN];
    for r in records {
        let last = *bounds.last().unwrap();
        bounds.push(last + frame_record(r).len());
    }
    bounds
}

#[test]
fn torn_tail_truncation_at_every_byte_boundary() {
    let records = sample_records(6 * recovery_iters());
    let base = temp_file("torn-base");
    {
        let (mut store, loaded, _) = LogStore::open(&base).unwrap();
        assert!(loaded.is_empty());
        store.append_all(&records).unwrap();
        store.sync().unwrap();
    }
    let bytes = std::fs::read(&base).unwrap();
    let bounds = frame_boundaries(&records);
    assert_eq!(*bounds.last().unwrap(), bytes.len());

    let victim = temp_file("torn-cut");
    // Every possible kill point inside the record region: after the cut,
    // exactly the frames that fit below it must survive, the torn tail must
    // be measured and healed, and an append must land cleanly.
    for cut in STORE_HEADER_LEN..bytes.len() {
        std::fs::write(&victim, &bytes[..cut]).unwrap();
        let (mut store, loaded, report) = LogStore::open(&victim).unwrap();
        let intact = bounds.iter().filter(|&&b| b <= cut).count() - 1;
        assert_eq!(loaded, records[..intact], "cut at byte {cut}");
        assert_eq!(report.skipped_corrupt, 0, "cut at byte {cut}");
        assert_eq!(report.truncated_bytes, (cut - bounds[intact]) as u64, "cut at byte {cut}");

        // The log is healed: a post-recovery append replays cleanly.
        if cut % 13 == 0 || cut + 1 == bytes.len() {
            let fresh = StoreRecord::Stats { hits: 777, misses: 7, evictions: 1 };
            store.append(&fresh).unwrap();
            store.sync().unwrap();
            drop(store);
            let (_, reloaded, re) = LogStore::open(&victim).unwrap();
            assert_eq!(reloaded.len(), intact + 1);
            assert_eq!(reloaded[..intact], records[..intact]);
            assert_eq!(*reloaded.last().unwrap(), fresh);
            assert_eq!(re.truncated_bytes, 0);
        }
    }
    // A torn *file header* (shorter than magic+version) rewrites fresh.
    for cut in 0..STORE_HEADER_LEN {
        std::fs::write(&victim, &bytes[..cut]).unwrap();
        let (_, loaded, report) = LogStore::open(&victim).unwrap();
        assert!(loaded.is_empty());
        assert_eq!(report.truncated_bytes, cut as u64);
    }

    std::fs::remove_file(&base).ok();
    std::fs::remove_file(&victim).ok();
}

// --- 3. bit rot: flip, classify, recover past -----------------------------

#[test]
fn bit_flip_corruption_is_detected_skipped_and_healed() {
    let records = sample_records(6);
    let base = temp_file("flip-base");
    {
        let (mut store, _, _) = LogStore::open(&base).unwrap();
        store.append_all(&records).unwrap();
        store.sync().unwrap();
    }
    let bytes = std::fs::read(&base).unwrap();
    let bounds = frame_boundaries(&records);

    // Which frame does byte `pos` fall in, and is it header or payload?
    let classify = |pos: usize| -> (usize, bool) {
        let frame = bounds.iter().rposition(|&b| b <= pos).unwrap();
        let in_header = pos < bounds[frame] + 16; // FRAME_HEADER_LEN
        (frame, in_header)
    };

    let body_bits = (bytes.len() - STORE_HEADER_LEN) * 8;
    let sample: Vec<usize> = if recovery_iters() > 1 {
        (0..body_bits).collect() // exhaustive single-bit sweep (CI)
    } else {
        let mut rng = StdRng::seed_from_u64(0xB17F11F);
        (0..256).map(|_| rng.gen_range(0..body_bits)).collect()
    };

    let victim = temp_file("flip-victim");
    for bit in sample {
        let abs_bit = STORE_HEADER_LEN * 8 + bit;
        let flipped = Adversary::flip_bit(&bytes, abs_bit);
        std::fs::write(&victim, &flipped).unwrap();

        // Recovery must never panic and never return bytes that were not
        // appended: every loaded record equals one of the originals.
        let (mut store, loaded, report) = LogStore::open(&victim).unwrap();
        for r in &loaded {
            assert!(records.contains(r), "bit {bit}: recovered a record nobody wrote");
        }

        let (frame, in_header) = classify(abs_bit / 8);
        let len_field = abs_bit / 8 < bounds[frame] + 8;
        if in_header && len_field {
            // The length word is untrustworthy: torn-tail truncation here.
            assert_eq!(loaded, records[..frame], "bit {bit}");
            assert_eq!(report.skipped_corrupt, 0, "bit {bit}");
            assert_eq!(report.truncated_bytes, (bytes.len() - bounds[frame]) as u64, "bit {bit}");
        } else {
            // Payload (or its checksum) damaged: that one record is
            // skipped, everything else survives, the framing still walks.
            let expect: Vec<StoreRecord> = records
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != frame)
                .map(|(_, r)| r.clone())
                .collect();
            assert_eq!(loaded, expect, "bit {bit}");
            assert_eq!(report.skipped_corrupt, 1, "bit {bit}");
            assert_eq!(report.truncated_bytes, 0, "bit {bit}");
        }

        // Recovered past: the store accepts appends and reopens cleanly.
        let fresh = StoreRecord::Stats { hits: 1, misses: 2, evictions: 3 };
        store.append(&fresh).unwrap();
        store.sync().unwrap();
        drop(store);
        let (_, reloaded, _) = LogStore::open(&victim).unwrap();
        assert_eq!(reloaded.last(), Some(&fresh), "bit {bit}: append after recovery lost");
    }

    std::fs::remove_file(&base).ok();
    std::fs::remove_file(&victim).ok();
}

// --- 4. end-to-end: bit-rotted logs still serve correct proofs ------------

#[test]
fn corrupted_shard_logs_never_serve_wrong_proofs() {
    let pool = query_pool();
    let dir = temp_dir("bitrot-e2e");
    const STREAM: usize = 12;

    let twin = ShardedServiceProvider::new(build_sp(), sharded_cfg());
    let expected = serve_stream(&twin, &pool, STREAM);

    let (run_a, _) = ShardedServiceProvider::open(build_sp(), sharded_cfg(), &dir).unwrap();
    let cold = serve_stream(&run_a, &pool, STREAM);
    assert_eq!(cold, expected);
    run_a.shutdown().unwrap();

    // Rot one payload byte in every log the layer owns (shards + witnesses).
    let mut corrupted = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let bytes = std::fs::read(&path).unwrap();
        let target = STORE_HEADER_LEN + 16 + 2; // inside the first payload
        if bytes.len() > target + 1 {
            std::fs::write(&path, Adversary::flip_bit(&bytes, target * 8 + 5)).unwrap();
            corrupted += 1;
        }
    }
    assert!(corrupted >= 2, "expected shard and witness logs to exist");

    let (run_b, rec_b) = ShardedServiceProvider::open(build_sp(), sharded_cfg(), &dir).unwrap();
    let damage = rec_b.witness_report.skipped_corrupt
        + rec_b.shard_reports.iter().map(|r| r.skipped_corrupt).sum::<usize>()
        + rec_b.proofs_rejected;
    assert!(damage >= 1, "the flips must have been detected, not silently accepted");

    // Detected damage costs warmth only: responses stay byte-identical.
    let replay = serve_stream(&run_b, &pool, STREAM);
    assert_eq!(replay, expected, "a damaged store must never change an answer");
    assert!(run_b.take_flush_error().is_none());

    std::fs::remove_dir_all(&dir).ok();
}
