//! The CI perf-regression gate: compare a fresh `bench_smoke` run against
//! the committed `BENCH_pairing.json` baseline.
//!
//! The committed file is the repo's perf ledger — four PRs of pairing-
//! engine work are recorded in it — but until this module nothing
//! *guarded* it: a regression in any hot path would merge silently. The
//! `bench_check` binary re-runs the comparison in CI after the perf-smoke
//! step and fails the job when any entry slows down beyond a generous,
//! env-tunable tolerance.
//!
//! Tolerance model: an entry regresses when
//!
//! ```text
//! current > baseline × VCHAIN_BENCH_TOL + VCHAIN_BENCH_TOL_ABS_US
//! ```
//!
//! The ratio (default 2.0×) absorbs the CI runners' noisy clocks; the
//! absolute slack (default 25 µs) keeps micro-entries like `fp_mul`
//! (~0.06 µs) from tripping on scheduling jitter that dwarfs the entry
//! itself. Entries present in the baseline but missing from the fresh run
//! fail the gate too — silently dropping a ledger line is how a
//! regression hides. New entries are reported but pass.

use std::fmt::Write as _;

/// One `(name, mean µs/iter)` measurement from a bench-smoke JSON file.
#[derive(Clone, Debug, PartialEq)]
pub struct Entry {
    /// The timing's name (e.g. `final_exp`).
    pub name: String,
    /// Mean wall-clock microseconds per iteration.
    pub us_per_iter: f64,
}

/// Parse the `bench_smoke` JSON emitter's output (see its `main`): a
/// `vchain-bench-smoke/v1` schema header and one `{"name": …,
/// "us_per_iter": …}` object per timing. Hand-rolled on purpose — the
/// workspace's offline `serde` shim has no JSON layer, and accepting only
/// the emitter's shape means a malformed file fails loudly here rather
/// than comparing garbage.
pub fn parse(json: &str) -> Result<Vec<Entry>, String> {
    if !json.contains("vchain-bench-smoke/v1") {
        return Err("missing vchain-bench-smoke/v1 schema marker".into());
    }
    let mut out = Vec::new();
    for (lineno, line) in json.lines().enumerate() {
        let Some(rest) = line.trim_start().strip_prefix("{\"name\": \"") else {
            continue;
        };
        let err = |what: &str| format!("line {}: {what}", lineno + 1);
        let (name, rest) = rest.split_once('"').ok_or_else(|| err("unterminated name"))?;
        let (_, val) =
            rest.split_once("\"us_per_iter\": ").ok_or_else(|| err("missing us_per_iter"))?;
        let num: String =
            val.chars().take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-').collect();
        let us_per_iter: f64 =
            num.parse().map_err(|e| err(&format!("bad us_per_iter {num:?}: {e}")))?;
        if !us_per_iter.is_finite() || us_per_iter < 0.0 {
            return Err(err(&format!("non-physical us_per_iter {us_per_iter}")));
        }
        out.push(Entry { name: name.to_string(), us_per_iter });
    }
    if out.is_empty() {
        return Err("no timing entries found".into());
    }
    Ok(out)
}

/// Per-entry verdict of a baseline/current comparison.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Entry name.
    pub name: String,
    /// Baseline mean, µs/iter.
    pub baseline_us: f64,
    /// Fresh-run mean, µs/iter.
    pub current_us: f64,
    /// `current / baseline` (∞-safe: 0-baseline entries compare by slack
    /// only).
    pub ratio: f64,
    /// Whether this entry trips the gate.
    pub regressed: bool,
}

/// The outcome of comparing a fresh run against the baseline.
#[derive(Debug, Default)]
pub struct Comparison {
    /// One finding per entry present in both files.
    pub findings: Vec<Finding>,
    /// Entries only in the fresh run (informational).
    pub new_entries: Vec<String>,
    /// Entries only in the baseline (these FAIL the gate).
    pub missing_entries: Vec<String>,
}

impl Comparison {
    /// Does the gate pass?
    pub fn passed(&self) -> bool {
        self.missing_entries.is_empty() && self.findings.iter().all(|f| !f.regressed)
    }

    /// Render the per-entry table (regressions marked, worst ratios
    /// first among regressions, then baseline order).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<38} {:>12} {:>12} {:>8}  verdict",
            "entry", "baseline µs", "current µs", "ratio"
        );
        for f in &self.findings {
            let _ = writeln!(
                out,
                "{:<38} {:>12.3} {:>12.3} {:>7.2}x  {}",
                f.name,
                f.baseline_us,
                f.current_us,
                f.ratio,
                if f.regressed { "REGRESSED" } else { "ok" }
            );
        }
        for name in &self.missing_entries {
            let _ = writeln!(out, "{name:<38} {:>12} {:>12} {:>8}  MISSING", "-", "-", "-");
        }
        for name in &self.new_entries {
            let _ = writeln!(out, "{name:<38} {:>12} {:>12} {:>8}  new", "-", "-", "-");
        }
        out
    }
}

/// Compare `current` against `baseline` with the given ratio tolerance and
/// absolute slack (both in the units of the entries, µs).
pub fn compare(baseline: &[Entry], current: &[Entry], tol: f64, abs_slack_us: f64) -> Comparison {
    assert!(tol >= 1.0, "a tolerance below 1.0 would flag same-speed runs");
    assert!(abs_slack_us >= 0.0, "negative slack makes no sense");
    let mut cmp = Comparison::default();
    for base in baseline {
        match current.iter().find(|c| c.name == base.name) {
            None => cmp.missing_entries.push(base.name.clone()),
            Some(cur) => {
                let bound = base.us_per_iter * tol + abs_slack_us;
                let ratio = if base.us_per_iter > 0.0 {
                    cur.us_per_iter / base.us_per_iter
                } else {
                    f64::INFINITY
                };
                cmp.findings.push(Finding {
                    name: base.name.clone(),
                    baseline_us: base.us_per_iter,
                    current_us: cur.us_per_iter,
                    ratio,
                    regressed: cur.us_per_iter > bound,
                });
            }
        }
    }
    for cur in current {
        if !baseline.iter().any(|b| b.name == cur.name) {
            cmp.new_entries.push(cur.name.clone());
        }
    }
    // worst offenders first so the CI log leads with the problem
    cmp.findings.sort_by(|a, b| {
        (b.regressed, b.ratio).partial_cmp(&(a.regressed, a.ratio)).expect("finite ratios")
    });
    cmp
}

/// The ratio tolerance from `VCHAIN_BENCH_TOL` (default 2.0).
pub fn tol_from_env() -> f64 {
    std::env::var("VCHAIN_BENCH_TOL").ok().and_then(|v| v.parse().ok()).unwrap_or(2.0)
}

/// The absolute slack in µs from `VCHAIN_BENCH_TOL_ABS_US` (default 25).
pub fn abs_slack_from_env() -> f64 {
    std::env::var("VCHAIN_BENCH_TOL_ABS_US").ok().and_then(|v| v.parse().ok()).unwrap_or(25.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "schema": "vchain-bench-smoke/v1",
  "timings": [
    {"name": "fp_mul", "iters": 100000, "us_per_iter": 0.058},
    {"name": "pairing", "iters": 50, "us_per_iter": 1732.342},
    {"name": "final_exp", "iters": 50, "us_per_iter": 979.199}
  ]
}
"#;

    fn entries(pairs: &[(&str, f64)]) -> Vec<Entry> {
        pairs.iter().map(|(n, v)| Entry { name: n.to_string(), us_per_iter: *v }).collect()
    }

    #[test]
    fn parses_emitter_format() {
        let parsed = parse(SAMPLE).unwrap();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0], Entry { name: "fp_mul".into(), us_per_iter: 0.058 });
        assert_eq!(parsed[1].name, "pairing");
        assert!((parsed[1].us_per_iter - 1732.342).abs() < 1e-9);
    }

    #[test]
    fn rejects_foreign_or_empty_json() {
        assert!(parse("{}").is_err());
        assert!(parse("{\"schema\": \"vchain-bench-smoke/v1\"}").is_err());
        assert!(parse(
            "{\"schema\": \"vchain-bench-smoke/v1\",\n{\"name\": \"x\", \"us_per_iter\": abc}"
        )
        .is_err());
    }

    #[test]
    fn same_run_passes() {
        let base = parse(SAMPLE).unwrap();
        let cmp = compare(&base, &base, 2.0, 25.0);
        assert!(cmp.passed());
        assert!(cmp.new_entries.is_empty() && cmp.missing_entries.is_empty());
    }

    #[test]
    fn synthetically_slowed_entry_fails() {
        // the acceptance demo: slow one entry past ratio·base + slack
        let base = entries(&[("pairing", 1000.0), ("fp_mul", 0.06)]);
        let slowed = entries(&[("pairing", 2100.0), ("fp_mul", 0.06)]);
        let cmp = compare(&base, &slowed, 2.0, 25.0);
        assert!(!cmp.passed());
        let bad: Vec<_> = cmp.findings.iter().filter(|f| f.regressed).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].name, "pairing");
        assert!(cmp.render_table().contains("REGRESSED"));
    }

    #[test]
    fn abs_slack_shields_micro_entries() {
        // 3× on a 0.06 µs entry is scheduler jitter, not a regression…
        let base = entries(&[("fp_mul", 0.06)]);
        let jitter = entries(&[("fp_mul", 0.18)]);
        assert!(compare(&base, &jitter, 2.0, 25.0).passed());
        // …but 3× on a multi-ms entry is a real one
        let base = entries(&[("pairing", 1500.0)]);
        let slow = entries(&[("pairing", 4500.0)]);
        assert!(!compare(&base, &slow, 2.0, 25.0).passed());
    }

    #[test]
    fn missing_entry_fails_new_entry_passes() {
        let base = entries(&[("pairing", 1000.0), ("final_exp", 900.0)]);
        let fresh = entries(&[("pairing", 1000.0), ("brand_new", 1.0)]);
        let cmp = compare(&base, &fresh, 2.0, 25.0);
        assert!(!cmp.passed());
        assert_eq!(cmp.missing_entries, vec!["final_exp".to_string()]);
        assert_eq!(cmp.new_entries, vec!["brand_new".to_string()]);
        let table = cmp.render_table();
        assert!(table.contains("MISSING") && table.contains("new"));
    }

    #[test]
    fn regressions_sort_first() {
        let base = entries(&[("a", 100.0), ("b", 100.0), ("c", 100.0)]);
        let fresh = entries(&[("a", 90.0), ("b", 500.0), ("c", 300.0)]);
        let cmp = compare(&base, &fresh, 2.0, 25.0);
        let names: Vec<_> = cmp.findings.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["b", "c", "a"]);
    }
}
