//! The CI perf-regression gate: compare a fresh `bench_smoke` run against
//! the committed `BENCH_pairing.json` baseline.
//!
//! The committed file is the repo's perf ledger — four PRs of pairing-
//! engine work are recorded in it — but until this module nothing
//! *guarded* it: a regression in any hot path would merge silently. The
//! `bench_check` binary re-runs the comparison in CI after the perf-smoke
//! step and fails the job when any entry slows down beyond a generous,
//! env-tunable tolerance.
//!
//! Tolerance model: an entry regresses when
//!
//! ```text
//! current > baseline × VCHAIN_BENCH_TOL + VCHAIN_BENCH_TOL_ABS_US
//! ```
//!
//! The ratio (default 2.0×) absorbs the CI runners' noisy clocks; the
//! absolute slack (default 25 µs) keeps micro-entries like `fp_mul`
//! (~0.06 µs) from tripping on scheduling jitter that dwarfs the entry
//! itself. Entries present in the baseline but missing from the fresh run
//! fail the gate too — silently dropping a ledger line is how a
//! regression hides. New entries are reported but pass.
//!
//! Symmetrically, `VCHAIN_BENCH_TOL_IMPROVE` (default **off**) arms an
//! inverse gate for *unexplained improvements*: an entry is flagged when
//!
//! ```text
//! current < baseline / VCHAIN_BENCH_TOL_IMPROVE − VCHAIN_BENCH_TOL_ABS_US
//! ```
//!
//! A large speed-up nobody claimed usually means the benchmark broke (a
//! workload got optimized away, an entry silently measures a cached path)
//! or the committed ledger is stale; arming this after a perf PR forces
//! the baseline to be re-recorded rather than drifting. The per-entry
//! table prints the bound *actually applied* to each entry (`bound µs` —
//! ratio and slack folded in), so a verdict can be read off one line
//! without re-deriving the tolerance arithmetic.

use std::fmt::Write as _;

/// One `(name, mean µs/iter)` measurement from a bench-smoke JSON file.
#[derive(Clone, Debug, PartialEq)]
pub struct Entry {
    /// The timing's name (e.g. `final_exp`).
    pub name: String,
    /// Mean wall-clock microseconds per iteration.
    pub us_per_iter: f64,
}

/// Parse the `bench_smoke` JSON emitter's output (see its `main`): a
/// `vchain-bench-smoke/v1` schema header and one `{"name": …,
/// "us_per_iter": …}` object per timing. Hand-rolled on purpose — the
/// workspace's offline `serde` shim has no JSON layer, and accepting only
/// the emitter's shape means a malformed file fails loudly here rather
/// than comparing garbage.
pub fn parse(json: &str) -> Result<Vec<Entry>, String> {
    if !json.contains("vchain-bench-smoke/v1") {
        return Err("missing vchain-bench-smoke/v1 schema marker".into());
    }
    let mut out = Vec::new();
    for (lineno, line) in json.lines().enumerate() {
        let Some(rest) = line.trim_start().strip_prefix("{\"name\": \"") else {
            continue;
        };
        let err = |what: &str| format!("line {}: {what}", lineno + 1);
        let (name, rest) = rest.split_once('"').ok_or_else(|| err("unterminated name"))?;
        let (_, val) =
            rest.split_once("\"us_per_iter\": ").ok_or_else(|| err("missing us_per_iter"))?;
        let num: String =
            val.chars().take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-').collect();
        let us_per_iter: f64 =
            num.parse().map_err(|e| err(&format!("bad us_per_iter {num:?}: {e}")))?;
        if !us_per_iter.is_finite() || us_per_iter < 0.0 {
            return Err(err(&format!("non-physical us_per_iter {us_per_iter}")));
        }
        out.push(Entry { name: name.to_string(), us_per_iter });
    }
    if out.is_empty() {
        return Err("no timing entries found".into());
    }
    Ok(out)
}

/// Per-entry verdict of a baseline/current comparison.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Entry name.
    pub name: String,
    /// Baseline mean, µs/iter.
    pub baseline_us: f64,
    /// Fresh-run mean, µs/iter.
    pub current_us: f64,
    /// `current / baseline` (∞-safe: 0-baseline entries compare by slack
    /// only).
    pub ratio: f64,
    /// The slow-side bound actually applied to this entry, in µs:
    /// `baseline × tol + abs_slack`. The entry regresses iff
    /// `current > bound_us`.
    pub bound_us: f64,
    /// The fast-side bound applied when the improvement gate is armed:
    /// `baseline / improve_tol − abs_slack` (`None` when the gate is off).
    /// The entry is flagged improved iff `current < improve_bound_us`.
    pub improve_bound_us: Option<f64>,
    /// Whether this entry trips the gate as a slowdown.
    pub regressed: bool,
    /// Whether this entry trips the gate as an unexplained speed-up
    /// (always `false` while the improvement gate is off).
    pub improved: bool,
}

/// The outcome of comparing a fresh run against the baseline.
#[derive(Debug, Default)]
pub struct Comparison {
    /// One finding per entry present in both files.
    pub findings: Vec<Finding>,
    /// Entries only in the fresh run (informational).
    pub new_entries: Vec<String>,
    /// Entries only in the baseline (these FAIL the gate).
    pub missing_entries: Vec<String>,
}

impl Comparison {
    /// Does the gate pass?
    pub fn passed(&self) -> bool {
        self.missing_entries.is_empty() && self.findings.iter().all(|f| !f.regressed && !f.improved)
    }

    /// Render the per-entry table (flagged entries first, worst ratios
    /// first among them, then baseline order). The `bound µs` column is
    /// the tolerance *actually applied* to that entry — `baseline × tol +
    /// slack` for the slow side, suffixed with `/fast-bound` when the
    /// improvement gate is armed — so each verdict is auditable from its
    /// own line.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<38} {:>12} {:>12} {:>8} {:>18}  verdict",
            "entry", "baseline µs", "current µs", "ratio", "bound µs"
        );
        for f in &self.findings {
            let bound = match f.improve_bound_us {
                Some(lo) => format!("{:.3}/{:.3}", f.bound_us, lo.max(0.0)),
                None => format!("{:.3}", f.bound_us),
            };
            let verdict = if f.regressed {
                "REGRESSED"
            } else if f.improved {
                "IMPROVED?"
            } else {
                "ok"
            };
            let _ = writeln!(
                out,
                "{:<38} {:>12.3} {:>12.3} {:>7.2}x {:>18}  {}",
                f.name, f.baseline_us, f.current_us, f.ratio, bound, verdict
            );
        }
        for name in &self.missing_entries {
            let _ =
                writeln!(out, "{name:<38} {:>12} {:>12} {:>8} {:>18}  MISSING", "-", "-", "-", "-");
        }
        for name in &self.new_entries {
            let _ = writeln!(out, "{name:<38} {:>12} {:>12} {:>8} {:>18}  new", "-", "-", "-", "-");
        }
        out
    }
}

/// Compare `current` against `baseline` with the given ratio tolerance and
/// absolute slack (both in the units of the entries, µs). Equivalent to
/// [`compare_with_improve`] with the improvement gate off.
pub fn compare(baseline: &[Entry], current: &[Entry], tol: f64, abs_slack_us: f64) -> Comparison {
    compare_with_improve(baseline, current, tol, abs_slack_us, None)
}

/// [`compare`] with an optional inverse-ratio improvement gate: when
/// `improve_tol` is `Some(it)`, an entry is flagged (and fails the gate)
/// if `current < baseline / it − abs_slack_us` — a speed-up large enough
/// that it should have been claimed and baselined, not merged silently.
/// The slack shields micro-entries symmetrically on both sides.
pub fn compare_with_improve(
    baseline: &[Entry],
    current: &[Entry],
    tol: f64,
    abs_slack_us: f64,
    improve_tol: Option<f64>,
) -> Comparison {
    assert!(tol >= 1.0, "a tolerance below 1.0 would flag same-speed runs");
    assert!(abs_slack_us >= 0.0, "negative slack makes no sense");
    if let Some(it) = improve_tol {
        assert!(it > 1.0, "an improvement tolerance at or below 1.0 would flag same-speed runs");
    }
    let mut cmp = Comparison::default();
    for base in baseline {
        match current.iter().find(|c| c.name == base.name) {
            None => cmp.missing_entries.push(base.name.clone()),
            Some(cur) => {
                let bound = base.us_per_iter * tol + abs_slack_us;
                let improve_bound = improve_tol.map(|it| base.us_per_iter / it - abs_slack_us);
                let ratio = if base.us_per_iter > 0.0 {
                    cur.us_per_iter / base.us_per_iter
                } else {
                    f64::INFINITY
                };
                cmp.findings.push(Finding {
                    name: base.name.clone(),
                    baseline_us: base.us_per_iter,
                    current_us: cur.us_per_iter,
                    ratio,
                    bound_us: bound,
                    improve_bound_us: improve_bound,
                    regressed: cur.us_per_iter > bound,
                    improved: improve_bound.is_some_and(|lo| cur.us_per_iter < lo),
                });
            }
        }
    }
    for cur in current {
        if !baseline.iter().any(|b| b.name == cur.name) {
            cmp.new_entries.push(cur.name.clone());
        }
    }
    // worst offenders first so the CI log leads with the problem; among
    // flagged entries, slowdowns sort by ratio and unexplained speed-ups
    // by inverse ratio (the smaller the ratio, the more suspicious).
    cmp.findings.sort_by(|a, b| {
        let key = |f: &Finding| {
            let severity =
                if f.improved && !f.regressed { 1.0 / f.ratio.max(1e-12) } else { f.ratio };
            (f.regressed || f.improved, severity)
        };
        key(b).partial_cmp(&key(a)).expect("finite ratios")
    });
    cmp
}

/// Splice freshly measured timings into an existing bench-smoke JSON file
/// by text surgery, preserving the emitter's exact line shape (so
/// [`parse`] and the gate treat merged entries like native ones). Each
/// `(name, iters, us_per_iter)` becomes one timing line before the closing
/// `  ]` of the array; the previous last entry gains the comma JSON
/// requires. Duplicate names are an error — a merge is additive, never a
/// silent overwrite.
pub fn merge_entries(json: &str, entries: &[(String, u32, f64)]) -> Result<String, String> {
    if !json.contains("vchain-bench-smoke/v1") {
        return Err("missing vchain-bench-smoke/v1 schema marker".into());
    }
    let existing = parse(json)?;
    for (name, _, us) in entries {
        if existing.iter().any(|e| &e.name == name) {
            return Err(format!("entry {name:?} already present — merge is additive only"));
        }
        if !us.is_finite() || *us < 0.0 {
            return Err(format!("non-physical us_per_iter {us} for {name:?}"));
        }
    }
    let close = json.rfind("  ]").ok_or("no closing `  ]` of the timings array")?;
    let (head, tail) = json.split_at(close);
    let mut out = head.trim_end().to_string();
    if out.ends_with('}') {
        out.push(','); // the former last entry now has a successor
    }
    for (i, (name, iters, us)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        let _ = write!(
            out,
            "\n    {{\"name\": \"{name}\", \"iters\": {iters}, \"us_per_iter\": {us:.3}}}{comma}"
        );
    }
    out.push('\n');
    out.push_str(tail);
    Ok(out)
}

/// The ratio tolerance from `VCHAIN_BENCH_TOL` (default 2.0).
pub fn tol_from_env() -> f64 {
    std::env::var("VCHAIN_BENCH_TOL").ok().and_then(|v| v.parse().ok()).unwrap_or(2.0)
}

/// The absolute slack in µs from `VCHAIN_BENCH_TOL_ABS_US` (default 25).
pub fn abs_slack_from_env() -> f64 {
    std::env::var("VCHAIN_BENCH_TOL_ABS_US").ok().and_then(|v| v.parse().ok()).unwrap_or(25.0)
}

/// The inverse-ratio improvement tolerance from `VCHAIN_BENCH_TOL_IMPROVE`.
/// Unset, empty, `off`, or `0` disable the gate (the default); a numeric
/// value > 1.0 arms it.
pub fn improve_tol_from_env() -> Option<f64> {
    let raw = std::env::var("VCHAIN_BENCH_TOL_IMPROVE").ok()?;
    let trimmed = raw.trim();
    if trimmed.is_empty() || trimmed.eq_ignore_ascii_case("off") {
        return None;
    }
    let v: f64 = trimmed.parse().ok()?;
    (v > 1.0).then_some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "schema": "vchain-bench-smoke/v1",
  "timings": [
    {"name": "fp_mul", "iters": 100000, "us_per_iter": 0.058},
    {"name": "pairing", "iters": 50, "us_per_iter": 1732.342},
    {"name": "final_exp", "iters": 50, "us_per_iter": 979.199}
  ]
}
"#;

    fn entries(pairs: &[(&str, f64)]) -> Vec<Entry> {
        pairs.iter().map(|(n, v)| Entry { name: n.to_string(), us_per_iter: *v }).collect()
    }

    #[test]
    fn parses_emitter_format() {
        let parsed = parse(SAMPLE).unwrap();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0], Entry { name: "fp_mul".into(), us_per_iter: 0.058 });
        assert_eq!(parsed[1].name, "pairing");
        assert!((parsed[1].us_per_iter - 1732.342).abs() < 1e-9);
    }

    #[test]
    fn rejects_foreign_or_empty_json() {
        assert!(parse("{}").is_err());
        assert!(parse("{\"schema\": \"vchain-bench-smoke/v1\"}").is_err());
        assert!(parse(
            "{\"schema\": \"vchain-bench-smoke/v1\",\n{\"name\": \"x\", \"us_per_iter\": abc}"
        )
        .is_err());
    }

    #[test]
    fn same_run_passes() {
        let base = parse(SAMPLE).unwrap();
        let cmp = compare(&base, &base, 2.0, 25.0);
        assert!(cmp.passed());
        assert!(cmp.new_entries.is_empty() && cmp.missing_entries.is_empty());
    }

    #[test]
    fn synthetically_slowed_entry_fails() {
        // the acceptance demo: slow one entry past ratio·base + slack
        let base = entries(&[("pairing", 1000.0), ("fp_mul", 0.06)]);
        let slowed = entries(&[("pairing", 2100.0), ("fp_mul", 0.06)]);
        let cmp = compare(&base, &slowed, 2.0, 25.0);
        assert!(!cmp.passed());
        let bad: Vec<_> = cmp.findings.iter().filter(|f| f.regressed).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].name, "pairing");
        assert!(cmp.render_table().contains("REGRESSED"));
    }

    #[test]
    fn abs_slack_shields_micro_entries() {
        // 3× on a 0.06 µs entry is scheduler jitter, not a regression…
        let base = entries(&[("fp_mul", 0.06)]);
        let jitter = entries(&[("fp_mul", 0.18)]);
        assert!(compare(&base, &jitter, 2.0, 25.0).passed());
        // …but 3× on a multi-ms entry is a real one
        let base = entries(&[("pairing", 1500.0)]);
        let slow = entries(&[("pairing", 4500.0)]);
        assert!(!compare(&base, &slow, 2.0, 25.0).passed());
    }

    #[test]
    fn missing_entry_fails_new_entry_passes() {
        let base = entries(&[("pairing", 1000.0), ("final_exp", 900.0)]);
        let fresh = entries(&[("pairing", 1000.0), ("brand_new", 1.0)]);
        let cmp = compare(&base, &fresh, 2.0, 25.0);
        assert!(!cmp.passed());
        assert_eq!(cmp.missing_entries, vec!["final_exp".to_string()]);
        assert_eq!(cmp.new_entries, vec!["brand_new".to_string()]);
        let table = cmp.render_table();
        assert!(table.contains("MISSING") && table.contains("new"));
    }

    #[test]
    fn regressions_sort_first() {
        let base = entries(&[("a", 100.0), ("b", 100.0), ("c", 100.0)]);
        let fresh = entries(&[("a", 90.0), ("b", 500.0), ("c", 300.0)]);
        let cmp = compare(&base, &fresh, 2.0, 25.0);
        let names: Vec<_> = cmp.findings.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["b", "c", "a"]);
    }

    #[test]
    fn improvement_gate_off_by_default() {
        // a 100× speed-up passes when the gate is off (compare == gate off)
        let base = entries(&[("pairing", 5000.0)]);
        let fast = entries(&[("pairing", 50.0)]);
        let cmp = compare(&base, &fast, 2.0, 25.0);
        assert!(cmp.passed());
        assert!(cmp.findings.iter().all(|f| !f.improved && f.improve_bound_us.is_none()));
    }

    #[test]
    fn armed_improvement_gate_flags_unexplained_speedups() {
        let base = entries(&[("pairing", 5000.0), ("final_exp", 900.0)]);
        let fresh = entries(&[("pairing", 50.0), ("final_exp", 880.0)]);
        let cmp = compare_with_improve(&base, &fresh, 2.0, 25.0, Some(1.5));
        assert!(!cmp.passed());
        let flagged: Vec<_> = cmp.findings.iter().filter(|f| f.improved).collect();
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].name, "pairing");
        // fast bound actually applied: 5000/1.5 − 25
        let lo = flagged[0].improve_bound_us.unwrap();
        assert!((lo - (5000.0 / 1.5 - 25.0)).abs() < 1e-9);
        // the in-tolerance entry passes
        assert!(!cmp.findings.iter().find(|f| f.name == "final_exp").unwrap().improved);
        // flagged speed-ups sort ahead of unflagged entries
        assert_eq!(cmp.findings[0].name, "pairing");
        assert!(cmp.render_table().contains("IMPROVED?"));
    }

    #[test]
    fn abs_slack_shields_micro_entries_on_the_fast_side_too() {
        // 0.06 µs → 0.001 µs is a 60× "speed-up" but inside the slack
        let base = entries(&[("fp_mul", 0.06)]);
        let fast = entries(&[("fp_mul", 0.001)]);
        assert!(compare_with_improve(&base, &fast, 2.0, 25.0, Some(1.5)).passed());
    }

    #[test]
    fn merge_appends_parseable_entries() {
        let merged = merge_entries(
            SAMPLE,
            &[("sp_serve_qps".to_string(), 64, 1234.5), ("sp_serve_p99_us".to_string(), 64, 99.25)],
        )
        .unwrap();
        let parsed = parse(&merged).unwrap();
        assert_eq!(parsed.len(), 5);
        assert_eq!(parsed[3], Entry { name: "sp_serve_qps".into(), us_per_iter: 1234.5 });
        assert_eq!(parsed[4], Entry { name: "sp_serve_p99_us".into(), us_per_iter: 99.25 });
        // the original entries survive byte-for-byte meaning-wise
        assert_eq!(parsed[..3], parse(SAMPLE).unwrap()[..]);
        // merged output is itself mergeable (still well-shaped)
        assert!(merge_entries(&merged, &[("one_more".to_string(), 1, 0.5)]).is_ok());
    }

    #[test]
    fn merge_rejects_duplicates_and_foreign_files() {
        assert!(merge_entries(SAMPLE, &[("pairing".to_string(), 1, 1.0)]).is_err());
        assert!(merge_entries("{}", &[("x".to_string(), 1, 1.0)]).is_err());
        assert!(merge_entries(SAMPLE, &[("x".to_string(), 1, f64::NAN)]).is_err());
    }

    #[test]
    fn table_prints_the_bound_actually_applied() {
        let base = entries(&[("pairing", 1000.0)]);
        let fresh = entries(&[("pairing", 1100.0)]);
        // slow-side bound: 1000×2 + 25 = 2025.000
        let cmp = compare(&base, &fresh, 2.0, 25.0);
        assert!(cmp.render_table().contains("2025.000"));
        // with the improvement gate armed both bounds appear: 1000/2 − 25
        let cmp = compare_with_improve(&base, &fresh, 2.0, 25.0, Some(2.0));
        let table = cmp.render_table();
        assert!(table.contains("2025.000/475.000"), "table was:\n{table}");
    }
}
