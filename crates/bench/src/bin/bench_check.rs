//! CI perf-regression gate over the committed bench-smoke ledger.
//!
//! ```text
//! bench_check [baseline.json] [current.json]
//! ```
//!
//! Defaults: baseline `BENCH_pairing.json` (the committed ledger), current
//! `BENCH_current.json` (a fresh `bench_smoke` run). Exits non-zero and
//! prints the per-entry table when any entry regresses beyond
//! `VCHAIN_BENCH_TOL` × baseline + `VCHAIN_BENCH_TOL_ABS_US` µs, when a
//! baseline entry is missing from the fresh run, or — with
//! `VCHAIN_BENCH_TOL_IMPROVE` armed (off by default) — when an entry is
//! *faster* than baseline ÷ that ratio minus the slack, i.e. an
//! unexplained speed-up that means the ledger or the benchmark is stale
//! (see [`vchain_bench::check`] for the tolerance model).

use std::process::ExitCode;

use vchain_bench::check;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let baseline_path = args.next().unwrap_or_else(|| "BENCH_pairing.json".to_string());
    let current_path = args.next().unwrap_or_else(|| "BENCH_current.json".to_string());

    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_check: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let parse = |path: &str, body: &str| match check::parse(body) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("bench_check: {path} is not a bench-smoke ledger: {e}");
            std::process::exit(2);
        }
    };
    let baseline = parse(&baseline_path, &read(&baseline_path));
    let current = parse(&current_path, &read(&current_path));

    let (tol, abs) = (check::tol_from_env(), check::abs_slack_from_env());
    let improve = check::improve_tol_from_env();
    let cmp = check::compare_with_improve(&baseline, &current, tol, abs, improve);
    let improve_desc = match improve {
        Some(it) => format!(", improvement gate 1/{it:.2}x"),
        None => ", improvement gate off".to_string(),
    };
    println!(
        "bench_check: {} vs {} (tolerance {tol:.2}x + {abs:.0} µs{improve_desc})\n",
        current_path, baseline_path
    );
    print!("{}", cmp.render_table());
    if cmp.passed() {
        println!("\nbench_check: OK — no entry beyond tolerance");
        ExitCode::SUCCESS
    } else {
        let n = cmp.findings.iter().filter(|f| f.regressed || f.improved).count()
            + cmp.missing_entries.len();
        println!(
            "\nbench_check: FAILED — {n} entr{} beyond tolerance",
            if n == 1 { "y" } else { "ies" }
        );
        ExitCode::FAILURE
    }
}
