//! Machine-readable perf smoke: times the pairing-engine hot paths and the
//! end-to-end block-query path, and writes the results as JSON so the perf
//! trajectory is tracked across PRs (CI uploads the file as an artifact).
//!
//! ```text
//! bench_smoke [output.json]     # default output: BENCH_pairing.json
//! ```
//!
//! Each entry records the number of iterations and the mean wall-clock
//! microseconds per iteration. Iteration counts are fixed (not adaptive) so
//! runs are comparable and cheap enough for CI.

use std::fmt::Write as _;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use vchain_acc::poly::naive;
use vchain_acc::{Acc2, AccElem, Accumulator, MultiSet};
use vchain_bench::{build_chain, shared_acc1, shared_acc2};
use vchain_core::cache::ProofCache;
use vchain_core::intra::IntraTree;
use vchain_core::miner::{IndexScheme, Miner, MinerConfig};
use vchain_core::subscribe::{SubscriptionEngine, SubscriptionMode, WalkStrategy};
use vchain_datagen::{Dataset, SkewProfile, SubscriptionSpec, WorkloadSpec};
use vchain_pairing::{
    final_exponentiation, g1_subgroup_check, g2_subgroup_check, multi_miller_loop, multi_pairing,
    pairing, Field, Fp, Fp12, Fr, G1Affine, G1Projective, G2Affine, G2Projective,
};

struct Timing {
    name: &'static str,
    iters: u32,
    us_per_iter: f64,
}

fn time<T>(name: &'static str, iters: u32, mut f: impl FnMut() -> T) -> Timing {
    std::hint::black_box(f()); // warm-up (also initializes lazy tables)
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let us_per_iter = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;
    eprintln!("[bench-smoke] {name}: {us_per_iter:.2} µs/iter ({iters} iters)");
    Timing { name, iters, us_per_iter }
}

fn ms(v: &[u64]) -> MultiSet<u64> {
    v.iter().copied().collect()
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_pairing.json".to_string());
    let mut rng = StdRng::seed_from_u64(0xBE7C);
    let mut timings = Vec::new();

    // --- field layer ---------------------------------------------------
    let a = Fp::random(&mut rng);
    let b = Fp::random(&mut rng);
    timings.push(time("fp_mul", 100_000, || a * b));
    timings.push(time("fp_inverse", 10_000, || a.inverse()));
    let a2 = vchain_pairing::Fp2::random(&mut rng);
    let b2 = vchain_pairing::Fp2::random(&mut rng);
    timings.push(time("fp2_mul", 100_000, || Field::mul(&a2, &b2)));
    let x = Fp12::random(&mut rng);
    let y = Fp12::random(&mut rng);
    // Fp12 multiplication: lazy-reduction production path vs the retained
    // eager-reference twin, same operands, same run.
    timings.push(time("fp12_mul", 10_000, || Field::mul(&x, &y)));
    timings.push(time("fp12_mul_eager", 10_000, || x.mul_eager(&y)));
    timings.push(time("fp12_inverse", 10_000, || x.inverse()));

    // --- group layer ----------------------------------------------------
    let k = Fr::random(&mut rng);
    let g1 = G1Projective::generator();
    timings.push(time("g1_scalar_mul", 200, || g1.mul_fr(&k)));
    timings.push(time("g1_generator_mul", 200, || G1Projective::generator_mul_fr(&k)));
    // G2 scalar multiplication: the GLS endomorphism-split path vs the
    // retained wNAF reference ladder, same scalar, same run.
    let g2 = G2Projective::generator();
    timings.push(time("g2_scalar_mul", 100, || g2.mul_fr(&k)));
    timings.push(time("g2_scalar_mul_wnaf", 50, || g2.mul_u256_wnaf(&k.to_uint())));

    // --- pairing layer --------------------------------------------------
    let p = G1Projective::generator().mul_u64(7).to_affine();
    let q = G2Projective::generator().mul_u64(9).to_affine();
    let f = multi_miller_loop(&[(p, q)]);
    // Miller loop / final exponentiation / pairing: the lazy-reduction
    // production path next to its eager-reduction twin (identical formulas,
    // one reduction per Fp mul instead of per output coefficient) — and the
    // final exponentiation also next to the pre-Karabina Granger–Scott
    // reference. All twins share operands within one run.
    timings.push(time("miller_loop", 50, || multi_miller_loop(&[(p, q)])));
    timings
        .push(time("miller_loop_eager", 50, || vchain_pairing::multi_miller_loop_eager(&[(p, q)])));
    timings.push(time("final_exp", 50, || final_exponentiation(&f)));
    timings.push(time("final_exp_eager", 50, || vchain_pairing::final_exponentiation_eager(&f)));
    timings.push(time("final_exp_gs", 50, || vchain_pairing::final_exponentiation_gs(&f)));
    timings.push(time("pairing", 50, || pairing(&p, &q)));
    timings.push(time("pairing_eager", 50, || vchain_pairing::pairing_eager(&p, &q)));
    let pairs10: Vec<_> = (1..=10u64)
        .map(|i| {
            (
                G1Projective::generator().mul_u64(i).to_affine(),
                G2Projective::generator().mul_u64(i + 1).to_affine(),
            )
        })
        .collect();
    timings.push(time("multi_pairing_10", 10, || multi_pairing(&pairs10)));

    // --- untrusted decode boundary ---------------------------------------
    // Wire-decode cost of checked point deserialization: subgroup membership
    // alone, and the full ladder (length/canonical/on-curve/subgroup) from
    // bytes. The acceptance bar is one pairing (~940 µs): a checked G2
    // decode must stay below it so the decode boundary never dominates
    // verification.
    let p_aff = g1.mul_fr(&k).to_affine();
    let q_aff = g2.mul_fr(&k).to_affine();
    timings.push(time("g1_subgroup_check", 100, || g1_subgroup_check(&p_aff)));
    timings.push(time("g2_subgroup_check", 100, || g2_subgroup_check(&q_aff)));
    let p_bytes = p_aff.to_bytes();
    let q_bytes = q_aff.to_bytes();
    timings.push(time("g1_decode_checked", 100, || {
        G1Affine::try_from_bytes(&p_bytes).expect("round-trip")
    }));
    timings.push(time("g2_decode_checked", 100, || {
        G2Affine::try_from_bytes(&q_bytes).expect("round-trip")
    }));

    // --- accumulator layer ----------------------------------------------
    let acc1 = shared_acc1();
    let acc2 = shared_acc2();
    let (x1, x2) = (ms(&[1, 2, 3]), ms(&[10, 20]));
    let v1a = acc1.setup(&x1);
    let v2a = acc1.setup(&x2);
    let p1 = acc1.prove_disjoint(&x1, &x2).unwrap();
    timings.push(time("verify_disjoint_acc1", 20, || acc1.verify_disjoint(&v1a, &v2a, &p1)));
    let v1b = acc2.setup(&x1);
    let v2b = acc2.setup(&x2);
    let p2 = acc2.prove_disjoint(&x1, &x2).unwrap();
    timings.push(time("verify_disjoint_acc2", 20, || acc2.verify_disjoint(&v1b, &v2b, &p2)));

    // --- SP proving: cold, witness-shared and pre-PR-naive ---------------
    // A mid-size tree-node multiset against a 4-keyword clause (interned
    // element ids are sequential, so both sides are runs of nearby indices
    // — the shape that makes exponent convolution collapse |X1|·|X2| pairs
    // into few distinct powers).
    let node_ms: MultiSet<u64> = (1..=64u64).collect();
    let clause4: MultiSet<u64> = (1000..1004u64).collect();
    timings.push(time("prove_disjoint_acc2_cold", 50, || {
        acc2.prove_disjoint(&node_ms, &clause4).unwrap()
    }));
    // The pre-PR algorithm (one point per (x, y) pair, generic multiexp,
    // no merging, no batched-affine summation) — kept as the speed-up
    // reference for the trajectory file.
    let naive = {
        let pk = acc2.public_key();
        let (q, powers) = (pk.q, &pk.g1_powers);
        move |x1: &MultiSet<u64>, x2: &MultiSet<u64>| {
            let mut bases = Vec::new();
            let mut scalars = Vec::new();
            for (x, c1) in x1.iter() {
                for (y, c2) in x2.iter() {
                    bases.push(powers[(x + q - y) as usize].to_projective());
                    scalars.push(vchain_bigint::U256::from_u64(c1 * c2));
                }
            }
            vchain_pairing::multiexp(&bases, &scalars)
        }
    };
    timings.push(time("prove_disjoint_acc2_naive", 20, || naive(&node_ms, &clause4)));
    // Witness reuse across the clauses of one query (per-clause mean).
    let clauses8: Vec<MultiSet<u64>> =
        (0..8u64).map(|i| (1000 + 4 * i..1004 + 4 * i).collect()).collect();
    let t = time("prove_disjoint_many_acc2_8", 10, || {
        acc2.prove_disjoint_many(&node_ms, &clauses8).unwrap()
    });
    timings.push(Timing {
        name: "prove_disjoint_many_acc2_per_clause",
        iters: t.iters,
        us_per_iter: t.us_per_iter / clauses8.len() as f64,
    });
    timings.push(t);
    // --- Acc1: fast polynomial engine + comb commits ---------------------
    // The PR-3 bench conflated the polynomial phases and the commitment
    // phase under one entry; they are timed separately now so the
    // trajectory attributes wins to the right layer. The naive entries run
    // the seed's algorithms (incremental char-poly, classical xgcd,
    // Pippenger commits) on identical inputs in the same process, so each
    // fast/naive ratio is noise-free.
    let node16: MultiSet<u64> = (1..=16u64).collect();
    let p1_16 = node16.char_poly();
    let p2_4 = clause4.char_poly();
    timings.push(time("acc1_char_poly_16", 500, || node16.char_poly()));
    timings.push(time("acc1_char_poly_16_naive", 500, || {
        naive::char_poly(node16.iter().map(|(e, c)| (AccElem::to_fr(e), c)))
    }));
    timings.push(time("acc1_xgcd_16x4", 500, || p1_16.xgcd(&p2_4)));
    let (g16, _u16, v16) = p1_16.xgcd(&p2_4);
    let q2_16 = v16.scale(&g16.coeffs()[0].inverse().unwrap());
    timings.push(time("acc1_commit_g2_16", 50, || acc1.commit_g2(&q2_16).unwrap()));
    timings.push(time("acc1_commit_g2_16_naive", 10, || {
        let pk = acc1.public_key();
        let scalars: Vec<_> = q2_16.coeffs().iter().map(|c| c.to_uint()).collect();
        vchain_pairing::multiexp(&pk.g2_powers[..scalars.len()], &scalars)
    }));
    timings.push(time("prove_disjoint_acc1_cold", 20, || {
        acc1.prove_disjoint(&node16, &clause4).unwrap()
    }));
    timings.push(time("prove_disjoint_acc1_naive", 5, || {
        // the full pre-PR-4 pipeline on identical inputs
        let p1 = naive::char_poly(node16.iter().map(|(e, c)| (AccElem::to_fr(e), c)));
        let p2 = naive::char_poly(clause4.iter().map(|(e, c)| (AccElem::to_fr(e), c)));
        let (g, u, v) = naive::xgcd(&p1, &p2);
        let ginv = g.coeffs()[0].inverse().unwrap();
        let (q1, q2) = (u.scale(&ginv), v.scale(&ginv));
        let pk = acc1.public_key();
        let s1: Vec<_> = q1.coeffs().iter().map(|c| c.to_uint()).collect();
        let s2: Vec<_> = q2.coeffs().iter().map(|c| c.to_uint()).collect();
        (
            vchain_pairing::multiexp(&pk.g2_powers[..s1.len()], &s1),
            vchain_pairing::multiexp(&pk.g2_powers[..s2.len()], &s2),
        )
    }));
    // Witness sharing across one query's clauses, as for Acc2 above.
    let t = time("prove_disjoint_many_acc1_8", 5, || {
        acc1.prove_disjoint_many(&node16, &clauses8).unwrap()
    });
    timings.push(Timing {
        name: "prove_disjoint_many_acc1_per_clause",
        iters: t.iters,
        us_per_iter: t.us_per_iter / clauses8.len() as f64,
    });
    timings.push(t);
    // The block-scale curve the naive engine could not reach.
    let node256: MultiSet<u64> = (1..=256u64).collect();
    timings.push(time("acc1_char_poly_256", 20, || node256.char_poly()));
    timings.push(time("acc1_char_poly_256_naive", 20, || {
        naive::char_poly(node256.iter().map(|(e, c)| (AccElem::to_fr(e), c)))
    }));
    timings.push(time("prove_disjoint_acc1_cold_256", 5, || {
        acc1.prove_disjoint(&node256, &clause4).unwrap()
    }));
    // --- shared fixed-base keygen layer ----------------------------------
    // Both accumulator keygens now produce their power vectors through the
    // generator combs; the naive per-scalar window walk is kept as the
    // same-run reference. 256 G2 powers ≈ one mid-size Acc2 universe slice
    // (G2 is the expensive group, and its comb teeth come from the GLS
    // endomorphism).
    let power_scalars: Vec<vchain_bigint::U256> = {
        let s = Fr::random(&mut rng);
        let mut cur = Fr::one();
        (0..256)
            .map(|_| {
                let out = cur.to_uint();
                cur = Field::mul(&cur, &s);
                out
            })
            .collect()
    };
    timings.push(time("acc_keygen_powers_g2_256", 5, || {
        vchain_pairing::generator_powers::<vchain_pairing::G2Spec>(&power_scalars)
    }));
    timings.push(time("acc_keygen_powers_g2_256_naive", 5, || {
        vchain_acc::fixed_base_batch(&G2Projective::generator(), &power_scalars)
    }));
    let batch: Vec<_> = (0..32u64)
        .map(|i| {
            let (xa, xb) = (ms(&[2 * i + 1]), ms(&[1000 + i]));
            (acc2.setup(&xa), acc2.setup(&xb), acc2.prove_disjoint(&xa, &xb).unwrap())
        })
        .collect();
    let t = time("batch_verify_disjoint_acc2_32", 5, || acc2.batch_verify_disjoint(&batch));
    timings.push(Timing {
        name: "batch_verify_disjoint_acc2_per_item",
        iters: t.iters,
        us_per_iter: t.us_per_iter / batch.len() as f64,
    });
    timings.push(t);

    // --- end-to-end block query (the paper's intra_acc2 hot path) -------
    let spec = WorkloadSpec::paper_defaults(Dataset::FourSquare, 1);
    let w = spec.generate();
    let mut qg = spec.query_gen(5);
    let cq = qg.time_window((0, 1_000_000)).compile(spec.domain_bits);
    let objects = w.blocks[0].1.clone();
    let acc2_honest = Acc2::keygen(8192, &mut StdRng::seed_from_u64(8));
    let tree = IntraTree::build_clustered(&objects, &acc2_honest, 8);
    timings
        .push(time("block_query_intra_acc2", 5, || tree.query(&objects, &cq, &acc2_honest, false)));
    // Same query against a warm window-level proof cache (the `time`
    // warm-up call populates it; every measured iteration hits).
    let cache: ProofCache<Acc2> = ProofCache::default();
    timings.push(time("block_query_intra_acc2_cached", 5, || {
        tree.query_cached(&objects, &cq, &acc2_honest, false, Some(&cache))
    }));

    // --- multi-window scan over a chain (cold vs warm cache) -------------
    // 12 blocks, 8 overlapping windows answered in parallel through one
    // ServiceProvider. "Cold" clears the SP's proof cache every iteration;
    // "warm" reuses it, which is the steady state of an overlapping-window
    // dashboard/scan workload.
    let scan_spec = WorkloadSpec::paper_defaults(Dataset::FourSquare, 12);
    let scan_w = scan_spec.generate();
    let (sp, scan_light, scan_cfg) =
        build_chain(&scan_w, IndexScheme::Both, 4, shared_acc2().with_fast_setup(false));
    let mut qg2 = scan_spec.query_gen(11);
    let t0 = scan_w.blocks.first().expect("blocks").0;
    let t1 = scan_w.blocks.last().expect("blocks").0;
    let span = (t1 - t0).max(8);
    let windows: Vec<_> = (0..8u64)
        .map(|i| {
            // windows of ~half the chain, sliding by ~1/16 each — heavy overlap
            let lo = t0 + i * span / 16;
            qg2.time_window((lo, lo + span / 2)).compile(scan_spec.domain_bits)
        })
        .collect();
    let scan_cold = time("multi_window_scan_cold", 3, || {
        sp.proof_cache().clear();
        sp.time_window_queries(&windows)
    });
    timings.push(scan_cold);
    let scan_warm = time("multi_window_scan_warm", 3, || sp.time_window_queries(&windows));
    timings.push(scan_warm);

    // --- checked VO wire decode ------------------------------------------
    // A full window response through the untrusted byte boundary: structural
    // parse plus a checked deserialization of every accumulator value and
    // proof in the VO (the price a light client pays before verification
    // proper begins).
    let resp = sp.time_window_query(&windows[0]);
    let encoded = vchain_core::wire::encode_response(&resp);
    let sp_acc = sp.acc.clone();
    eprintln!("[bench-smoke] vo_decode_checked input: {} bytes", encoded.len());
    timings.push(time("vo_decode_checked", 5, || {
        vchain_core::wire::decode_response(&sp_acc, &encoded).expect("honest VO decodes")
    }));

    // --- light-client pipeline: dedup encoding, streaming, batching -------
    // The 8-window scan above, now on the client side. `vo_bytes` is the
    // scan's wire size under the deduplicating v2 encoding (shared intern
    // table across all windows) with the per-window v1 total as its twin;
    // `client_verify_window_us` is the per-window mean of streamed
    // verification with one cross-window pairing batch, with the per-block
    // path (decode the window's v1 bytes, then one RLC flush per window) as
    // its twin — both twins start from wire bytes, the position a real
    // client is in; peak buffer is the streaming client's high-water
    // memory. Byte-count entries ride the `us_per_iter` field, like
    // `sp_serve_qps` rides it for a rate.
    let scan_responses = sp.time_window_queries(&windows);
    let v1_total: usize =
        scan_responses.iter().map(|r| vchain_core::wire::encode_response(r).len()).sum();
    let v2_total = vchain_core::wire::encode_scan_v2(&scan_responses).len();
    eprintln!(
        "[bench-smoke] vo_bytes: v2 scan {} vs v1 total {} ({:.1}% saved)",
        v2_total,
        v1_total,
        100.0 * (1.0 - v2_total as f64 / v1_total as f64)
    );
    assert!(
        5 * v2_total < 4 * v1_total,
        "scan-level v2 encoding must stay >=20% below the v1 total \
         (v2={v2_total}, v1={v1_total})"
    );
    timings.push(Timing { name: "vo_bytes", iters: 1, us_per_iter: v2_total as f64 });
    timings.push(Timing { name: "vo_bytes_v1", iters: 1, us_per_iter: v1_total as f64 });

    let scan_stream = vchain_core::wire::encode_scan_stream(&scan_responses);
    let n_windows = windows.len() as f64;
    let stream_scan = || {
        let mut sv = vchain_core::client::StreamVerifier::new(
            windows.clone(),
            scan_light.clone(),
            scan_cfg,
            sp_acc.clone(),
            vchain_core::client::PipelineMode::Inline,
        );
        for chunk in scan_stream.chunks(4096) {
            sv.feed(chunk).expect("honest stream feeds");
        }
        sv.finish().expect("honest stream verifies")
    };
    let t_batched = time("client_verify_window_scan", 3, stream_scan);
    let v1_encoded: Vec<Vec<u8>> =
        scan_responses.iter().map(vchain_core::wire::encode_response).collect();
    let t_per_block = time("client_verify_window_scan_per_block", 3, || {
        for (q, bytes) in windows.iter().zip(&v1_encoded) {
            let resp =
                vchain_core::wire::decode_response(&sp_acc, bytes).expect("honest window decodes");
            vchain_core::verify::verify_response(q, &resp, &scan_light, &scan_cfg, &sp_acc)
                .expect("honest window verifies");
        }
    });
    assert!(
        t_batched.us_per_iter < t_per_block.us_per_iter,
        "cross-window batching must beat the per-block flush path \
         ({:.0} µs vs {:.0} µs)",
        t_batched.us_per_iter,
        t_per_block.us_per_iter
    );
    timings.push(Timing {
        name: "client_verify_window_us",
        iters: t_batched.iters,
        us_per_iter: t_batched.us_per_iter / n_windows,
    });
    timings.push(Timing {
        name: "client_verify_window_per_block_us",
        iters: t_per_block.iters,
        us_per_iter: t_per_block.us_per_iter / n_windows,
    });
    let (_, stream_stats) = stream_scan();
    assert!(
        stream_stats.peak_buffer_bytes < stream_stats.vo_bytes,
        "streamed verification must buffer less than the full VO \
         (peak={}, full={})",
        stream_stats.peak_buffer_bytes,
        stream_stats.vo_bytes
    );
    eprintln!(
        "[bench-smoke] client_peak_buffer_bytes: {} of {} stream bytes",
        stream_stats.peak_buffer_bytes, stream_stats.vo_bytes
    );
    timings.push(Timing {
        name: "client_peak_buffer_bytes",
        iters: 1,
        us_per_iter: stream_stats.peak_buffer_bytes as f64,
    });

    // --- subscription engine at 10⁵ standing queries ----------------------
    // The inverted match path (attribute index + Bloom pre-filter + shared
    // refutation proofs) against the retained naive per-query walk, same
    // engine state, same block. Registration is timed once (it is a bulk
    // index build); match is timed on an idempotent steady-state block with
    // a warm proof cache; publish is timed over successive blocks because
    // it advances the engine height.
    let mut sub_workload = WorkloadSpec::paper_defaults(Dataset::FourSquare, 10);
    sub_workload.objects_per_block = 4;
    let sub_cfg = MinerConfig {
        scheme: IndexScheme::Both,
        skip_levels: 3,
        domain_bits: sub_workload.domain_bits,
        difficulty: vchain_chain::Difficulty(0),
        bloom_bits_per_key: 10,
    };
    let sub_acc = shared_acc2().clone();
    let sub_chain = sub_workload.generate();
    let mut sub_miner = Miner::new(sub_cfg, sub_acc.clone());
    for (ts, objs) in &sub_chain.blocks {
        sub_miner.mine_block(*ts, objs.clone());
    }
    let sub_blocks = sub_miner.store().blocks().to_vec();
    let sub_indexed = sub_miner.indexed().to_vec();

    let mut sub_spec = SubscriptionSpec::paper_defaults(Dataset::FourSquare, SkewProfile::Zipf);
    sub_spec.domain_bits = sub_workload.domain_bits;
    sub_spec.range_fraction = 1.0;
    let subs = sub_spec.generate(100_000);

    timings.push(time("sub_register_100k", 1, || {
        let mut e =
            SubscriptionEngine::new(sub_cfg, sub_acc.clone(), SubscriptionMode::Realtime, false);
        for q in &subs {
            e.register(q);
        }
        e
    }));

    let mut sub_eng =
        SubscriptionEngine::new(sub_cfg, sub_acc.clone(), SubscriptionMode::Realtime, false);
    let mut sub_twin =
        SubscriptionEngine::new(sub_cfg, sub_acc.clone(), SubscriptionMode::Realtime, false)
            .with_strategy(WalkStrategy::Naive);
    for q in &subs {
        sub_eng.register(q);
        sub_twin.register(q);
    }
    for h in 0..3 {
        std::hint::black_box(sub_eng.process_block(&sub_blocks[h], &sub_indexed[h]));
        std::hint::black_box(sub_twin.process_block(&sub_blocks[h], &sub_indexed[h]));
    }
    let t_indexed =
        time("sub_match_block_100k", 5, || sub_eng.match_block(&sub_blocks[3], &sub_indexed[3]));
    let t_naive = time("sub_match_block_100k_naive", 2, || {
        sub_twin.match_block(&sub_blocks[3], &sub_indexed[3])
    });
    let speedup = t_naive.us_per_iter / t_indexed.us_per_iter;
    eprintln!("[bench-smoke] subscription match speedup: {speedup:.1}x over the naive walk");
    assert!(
        speedup >= 20.0,
        "indexed subscription match must stay >=20x faster than the naive walk (got {speedup:.1}x)"
    );
    timings.push(t_indexed);
    timings.push(t_naive);

    // Publish materializes 100k realtime updates per block; measured over
    // successive blocks, timing only the publish half of each step.
    let pub_iters = 5u32;
    let mut pub_total = 0.0f64;
    for (i, h) in (3..(4 + pub_iters as usize)).enumerate() {
        let m = sub_eng.match_block(&sub_blocks[h], &sub_indexed[h]);
        let t0 = Instant::now();
        std::hint::black_box(sub_eng.publish(m, &sub_indexed[h]));
        if i > 0 {
            // step 0 is the warm-up
            pub_total += t0.elapsed().as_secs_f64();
        }
    }
    let pub_us = pub_total * 1e6 / f64::from(pub_iters);
    eprintln!("[bench-smoke] sub_publish_100k: {pub_us:.2} µs/iter ({pub_iters} iters)");
    timings.push(Timing { name: "sub_publish_100k", iters: pub_iters, us_per_iter: pub_us });

    // --- JSON output -----------------------------------------------------
    let mut json = String::from("{\n  \"schema\": \"vchain-bench-smoke/v1\",\n  \"timings\": [\n");
    for (i, t) in timings.iter().enumerate() {
        let comma = if i + 1 == timings.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"iters\": {}, \"us_per_iter\": {:.3}}}{comma}",
            t.name, t.iters, t.us_per_iter
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write bench JSON");
    println!("{json}");
    eprintln!("[bench-smoke] wrote {out_path}");
}
