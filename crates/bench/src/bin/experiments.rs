//! Regenerates every table and figure of the vChain paper's evaluation
//! (§9 and Appendix D) at a documented, reduced scale.
//!
//! ```text
//! experiments <exp-id> [...]      # table1 fig9 fig10 … fig22, or `all`
//! VCHAIN_SCALE=std experiments …  # larger scale used for EXPERIMENTS.md
//! ```

use std::time::Duration;

use vchain_acc::Accumulator;
use vchain_bench::report::{kb, secs, table};
use vchain_bench::{
    build_chain, compile_all, run_query, shared_acc1, shared_acc2, timed, QueryMetrics, Scale,
};
use vchain_chain::{Difficulty, LightClient};
use vchain_core::miner::{IndexScheme, Miner, MinerConfig};
use vchain_core::query::Query;
use vchain_core::subscribe::{
    verify_subscription_update, SubscriptionEngine, SubscriptionMode, SubscriptionUpdate,
};
use vchain_core::vo::VoSize;
use vchain_datagen::{Dataset, MhtBaseline, Workload, WorkloadSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!(
            "usage: experiments <table1|fig9|fig10|fig11|fig12|fig13|fig14|fig15|fig16|fig17|fig18|fig19|fig20|fig21|fig22|all>"
        );
        std::process::exit(2);
    }
    let scale = Scale::from_env();
    println!("# vChain experiment harness (scale = {scale:?})");
    let all = args.iter().any(|a| a == "all");
    let want = |name: &str| all || args.iter().any(|a| a == name);

    if want("table1") {
        table1(scale);
    }
    for (fig, ds) in [(9, Dataset::FourSquare), (10, Dataset::Weather), (11, Dataset::Ethereum)] {
        if want(&format!("fig{fig}")) {
            fig_time_window(fig, ds, scale);
        }
    }
    if want("fig12") {
        fig12(scale);
    }
    for (fig, ds) in [(13, Dataset::FourSquare), (14, Dataset::Weather), (15, Dataset::Ethereum)] {
        if want(&format!("fig{fig}")) {
            fig_subscription_period(fig, ds, scale);
        }
    }
    if want("fig16") {
        fig16(scale);
    }
    for (fig, ds) in [(17, Dataset::FourSquare), (18, Dataset::Weather), (19, Dataset::Ethereum)] {
        if want(&format!("fig{fig}")) {
            fig_selectivity(fig, ds, scale);
        }
    }
    for (fig, ds) in [(20, Dataset::FourSquare), (21, Dataset::Weather), (22, Dataset::Ethereum)] {
        if want(&format!("fig{fig}")) {
            fig_skiplist(fig, ds, scale);
        }
    }
}

fn ds_name(ds: Dataset) -> &'static str {
    match ds {
        Dataset::FourSquare => "4SQ",
        Dataset::Weather => "WX",
        Dataset::Ethereum => "ETH",
    }
}

fn schemes() -> [(IndexScheme, &'static str); 3] {
    [(IndexScheme::Nil, "nil"), (IndexScheme::Intra, "intra"), (IndexScheme::Both, "both")]
}

// ---------------------------------------------------------------- Table 1

/// Miner's setup cost: honest (public-key-only) ADS construction time and
/// per-block ADS size, for nil/intra/both × acc1/acc2 × 3 datasets; plus
/// the light-node header size note of §9.1.
fn table1(scale: Scale) {
    let blocks = match scale {
        Scale::Quick => 4,
        Scale::Std => 8,
    };
    let mut rows = Vec::new();
    for ds in [Dataset::FourSquare, Dataset::Weather, Dataset::Ethereum] {
        let w = WorkloadSpec::paper_defaults(ds, blocks).generate();
        for (acc_name, honest1, honest2) in [
            ("acc1", Some(shared_acc1().with_fast_setup(false)), None),
            ("acc2", None, Some(shared_acc2().with_fast_setup(false))),
        ] {
            for (scheme, sname) in schemes() {
                let (t, s, hdr_bits) = match (&honest1, &honest2) {
                    (Some(a1), _) => measure_setup(&w, scheme, a1.clone()),
                    (_, Some(a2)) => measure_setup(&w, scheme, a2.clone()),
                    _ => unreachable!(),
                };
                rows.push(vec![
                    ds_name(ds).to_string(),
                    acc_name.to_string(),
                    sname.to_string(),
                    secs(t),
                    kb(s),
                    hdr_bits.to_string(),
                ]);
            }
        }
    }
    table(
        "Table 1: miner setup cost (T = ADS construction s/block, S = ADS KB/block) + header bits",
        &["dataset", "acc", "index", "T (s/blk)", "S (KB/blk)", "header(bits)"],
        &rows,
    );
}

fn measure_setup<A: Accumulator>(
    w: &Workload,
    scheme: IndexScheme,
    acc: A,
) -> (Duration, usize, usize) {
    let cfg = MinerConfig {
        scheme,
        skip_levels: 5,
        domain_bits: w.spec.domain_bits,
        difficulty: Difficulty(0), // isolate ADS cost from PoW search
        bloom_bits_per_key: 10,
    };
    let mut miner = Miner::new(cfg, acc);
    let (_, elapsed) = timed(|| {
        for (ts, objs) in &w.blocks {
            miner.mine_block(*ts, objs.clone());
        }
    });
    let per_block = elapsed / w.blocks.len() as u32;
    let ads_bytes: usize =
        miner.indexed().iter().map(|ib| ib.ads_size_bytes(&miner.acc)).sum::<usize>()
            / w.blocks.len();
    let hdr_bits = miner.headers().last().map(|h| h.size_bits()).unwrap_or(0);
    (per_block, ads_bytes, hdr_bits)
}

// ------------------------------------------------------------- Figs 9-11

/// Time-window query performance vs window size: six schemes
/// (nil/intra/both × acc1/acc2), three plots (SP CPU, user CPU, VO size).
fn fig_time_window(fig: u32, ds: Dataset, scale: Scale) {
    let w = WorkloadSpec::paper_defaults(ds, scale.chain_blocks()).generate();
    let mut rows = Vec::new();
    for (acc_name, kind) in [("acc1", AccKind::A1), ("acc2", AccKind::A2)] {
        for (scheme, sname) in schemes() {
            let series = kind.dispatch_window_series(&w, scheme, scale);
            for (win, m) in series {
                rows.push(vec![
                    format!("{sname}-{acc_name}"),
                    win.to_string(),
                    secs(m.sp_cpu),
                    secs(m.user_cpu),
                    kb(m.vo_bytes),
                    m.results.to_string(),
                ]);
            }
        }
    }
    table(
        &format!("Fig {fig}: time-window query performance ({})", ds_name(ds)),
        &["scheme", "window(blocks)", "SP CPU(s)", "user CPU(s)", "VO(KB)", "|R|"],
        &rows,
    );
}

/// Static dispatch between the two accumulator constructions.
#[derive(Clone, Copy)]
enum AccKind {
    A1,
    A2,
}

impl AccKind {
    fn dispatch_window_series(
        self,
        w: &Workload,
        scheme: IndexScheme,
        scale: Scale,
    ) -> Vec<(usize, QueryMetrics)> {
        match self {
            AccKind::A1 => window_series(w, scheme, scale, shared_acc1()),
            AccKind::A2 => window_series(w, scheme, scale, shared_acc2()),
        }
    }
}

fn window_series<A: Accumulator>(
    w: &Workload,
    scheme: IndexScheme,
    scale: Scale,
    acc: A,
) -> Vec<(usize, QueryMetrics)> {
    let (sp, light, cfg) = build_chain(w, scheme, 5, acc);
    scale
        .windows()
        .into_iter()
        .filter(|&win| win <= w.blocks.len())
        .map(|win| {
            let window = w.window_of_last(win);
            let mut qg = w.spec.query_gen(fig_seed(scheme, win));
            let queries: Vec<Query> =
                (0..scale.queries()).map(|_| qg.time_window(window)).collect();
            let compiled = compile_all(&queries, w.spec.domain_bits);
            let metrics: Vec<QueryMetrics> =
                compiled.iter().map(|q| run_query(&sp, &light, &cfg, q)).collect();
            (win, QueryMetrics::averaged(&metrics))
        })
        .collect()
}

fn fig_seed(scheme: IndexScheme, x: usize) -> u64 {
    (match scheme {
        IndexScheme::Nil => 1,
        IndexScheme::Intra => 2,
        IndexScheme::Both => 3,
    }) * 1000
        + x as u64
}

// ---------------------------------------------------------------- Fig 12

/// Subscription processing with/without the IP-Tree: accumulated SP CPU
/// vs number of registered queries, real-time and lazy.
fn fig12(scale: Scale) {
    for ds in [Dataset::FourSquare, Dataset::Weather, Dataset::Ethereum] {
        let blocks = match scale {
            Scale::Quick => 8,
            Scale::Std => 16,
        };
        let w = WorkloadSpec::paper_defaults(ds, blocks).generate();
        let mut rows = Vec::new();
        for n in scale.query_counts() {
            for (mode, mname) in
                [(SubscriptionMode::Realtime, "real"), (SubscriptionMode::Lazy, "lazy")]
            {
                for (ip, ipname) in [(false, "nip"), (true, "ip")] {
                    let sp_cpu = subscription_sp_time(&w, mode, ip, n);
                    rows.push(vec![format!("{mname}-{ipname}-acc2"), n.to_string(), secs(sp_cpu)]);
                }
            }
        }
        table(
            &format!("Fig 12: subscription SP CPU vs #queries ({})", ds_name(ds)),
            &["scheme", "#queries", "accum SP CPU(s)"],
            &rows,
        );
    }
}

fn subscription_sp_time(w: &Workload, mode: SubscriptionMode, ip: bool, n: usize) -> Duration {
    let acc = shared_acc2();
    let cfg = MinerConfig {
        scheme: IndexScheme::Both,
        skip_levels: 5,
        domain_bits: w.spec.domain_bits,
        difficulty: Difficulty(1),
        bloom_bits_per_key: 10,
    };
    let mut miner = Miner::new(cfg, acc.clone());
    let mut engine = SubscriptionEngine::new(cfg, acc, mode, ip);
    let mut qg = w.spec.query_gen(12_000 + n as u64);
    for _ in 0..n {
        engine.register(&qg.subscription());
    }
    let mut total = Duration::ZERO;
    for (ts, objs) in &w.blocks {
        let h = miner.mine_block(*ts, objs.clone());
        let block = miner.store().block(h).unwrap().clone();
        let indexed = miner.indexed()[h as usize].clone();
        let (_, d) = timed(|| engine.process_block(&block, &indexed));
        total += d;
    }
    total
}

// ------------------------------------------------------------- Figs 13-15

/// Real-time vs lazy subscription authentication vs subscription period:
/// accumulated SP CPU, user CPU and VO size for realtime-acc1,
/// realtime-acc2 and lazy-acc2.
fn fig_subscription_period(fig: u32, ds: Dataset, scale: Scale) {
    let mut rows = Vec::new();
    for period in scale.subscription_periods() {
        let w = WorkloadSpec::paper_defaults(ds, period).generate();
        for variant in ["realtime-acc1", "realtime-acc2", "lazy-acc2"] {
            let (sp_cpu, user_cpu, vo) = match variant {
                "realtime-acc1" => subscription_run(&w, SubscriptionMode::Realtime, shared_acc1()),
                "realtime-acc2" => subscription_run(&w, SubscriptionMode::Realtime, shared_acc2()),
                _ => subscription_run(&w, SubscriptionMode::Lazy, shared_acc2()),
            };
            rows.push(vec![
                variant.to_string(),
                period.to_string(),
                secs(sp_cpu),
                secs(user_cpu),
                kb(vo),
            ]);
        }
    }
    table(
        &format!("Fig {fig}: subscription performance vs period ({})", ds_name(ds)),
        &["scheme", "period(blocks)", "SP CPU(s)", "user CPU(s)", "VO(KB)"],
        &rows,
    );
}

fn subscription_run<A: Accumulator>(
    w: &Workload,
    mode: SubscriptionMode,
    acc: A,
) -> (Duration, Duration, usize) {
    let cfg = MinerConfig {
        scheme: IndexScheme::Both,
        skip_levels: 5,
        domain_bits: w.spec.domain_bits,
        difficulty: Difficulty(1),
        bloom_bits_per_key: 10,
    };
    let mut miner = Miner::new(cfg, acc.clone());
    let mut light = LightClient::new(cfg.difficulty);
    let mut engine = SubscriptionEngine::new(cfg, acc.clone(), mode, false);
    let mut qg = w.spec.query_gen(0xF13);
    let q = qg.subscription();
    let qid = engine.register(&q);
    let cq = q.compile(w.spec.domain_bits);

    let mut sp_cpu = Duration::ZERO;
    let mut user_cpu = Duration::ZERO;
    let mut vo_bytes = 0usize;
    let mut verify_updates = |updates: Vec<SubscriptionUpdate<A>>, light: &LightClient| {
        for u in &updates {
            vo_bytes += u.response().vo_size_bytes(&acc);
            let (_, d) = timed(|| {
                verify_subscription_update(&cq, u, light, &cfg, &acc).expect("update verifies")
            });
            user_cpu += d;
        }
    };
    for (ts, objs) in &w.blocks {
        let h = miner.mine_block(*ts, objs.clone());
        light.sync_header(miner.headers()[h as usize].clone()).unwrap();
        let block = miner.store().block(h).unwrap().clone();
        let indexed = miner.indexed()[h as usize].clone();
        let (updates, d) = timed(|| engine.process_block(&block, &indexed));
        sp_cpu += d;
        verify_updates(updates, &light);
    }
    if let Some(u) = engine.deregister(qid) {
        verify_updates(vec![u], &light);
    }
    (sp_cpu, user_cpu, vo_bytes)
}

// ---------------------------------------------------------------- Fig 16

/// Comparison with the traditional MHT baseline: per-block ADS construction
/// time and normalized block size vs dimensionality (Appendix D.1).
fn fig16(scale: Scale) {
    let dims_list = match scale {
        Scale::Quick => vec![1usize, 3, 5, 7],
        Scale::Std => vec![1, 3, 5, 7, 9],
    };
    let mut rows = Vec::new();
    for dims in dims_list {
        // WX-like numeric-only blocks (keywords removed, as in the paper)
        let mut spec = WorkloadSpec::paper_defaults(Dataset::Weather, 2);
        spec.keywords_per_object = 1; // minimal set attribute
        let w = spec.generate();
        let objects: Vec<_> = w.blocks[0]
            .1
            .iter()
            .map(|o| {
                let mut o = o.clone();
                let mut v = o.numeric.clone();
                v.resize(dims, 3);
                o.numeric = v;
                o.keywords.clear();
                o.keywords.push("wx:0".into()); // non-empty set attribute
                o
            })
            .collect();
        let raw_block_size: usize = objects
            .iter()
            .map(|o| 16 + 8 * o.numeric.len() + o.keywords.iter().map(|k| k.len()).sum::<usize>())
            .sum();

        let acc1 = shared_acc1().with_fast_setup(false);
        let (t1, s1) = {
            let (tree, d) = timed(|| {
                vchain_core::intra::IntraTree::build_clustered(&objects, &acc1, spec.domain_bits)
            });
            (d, tree.ads_size_bytes(&acc1))
        };
        let acc2 = shared_acc2().with_fast_setup(false);
        let (t2, s2) = {
            let (tree, d) = timed(|| {
                vchain_core::intra::IntraTree::build_clustered(&objects, &acc2, spec.domain_bits)
            });
            (d, tree.ads_size_bytes(&acc2))
        };
        let (mht, tm) = timed(|| MhtBaseline::build(&objects, dims));
        let sm = mht.ads_size_bytes();

        let norm = |s: usize| format!("{:.2}", 1.0 + s as f64 / raw_block_size as f64);
        rows.push(vec![
            dims.to_string(),
            secs(t1),
            secs(t2),
            secs(tm),
            norm(s1),
            norm(s2),
            norm(sm),
        ]);
    }
    table(
        "Fig 16: accumulator ADS vs MHT baseline (construction time s/block; normalized block size)",
        &["dims", "T acc1", "T acc2", "T MHT", "size acc1", "size acc2", "size MHT"],
        &rows,
    );
}

// ------------------------------------------------------------- Figs 17-19

/// Impact of the numeric-range selectivity (10%–50%), `both` scheme.
fn fig_selectivity(fig: u32, ds: Dataset, scale: Scale) {
    let w = WorkloadSpec::paper_defaults(ds, scale.chain_blocks()).generate();
    let win = *scale.windows().last().unwrap();
    let window = w.window_of_last(win.min(w.blocks.len()));
    let mut rows = Vec::new();
    for sel_pct in [10u32, 20, 30, 40, 50] {
        for (acc_name, kind) in [("acc1", AccKind::A1), ("acc2", AccKind::A2)] {
            let m = match kind {
                AccKind::A1 => selectivity_point(&w, window, sel_pct, scale, shared_acc1()),
                AccKind::A2 => selectivity_point(&w, window, sel_pct, scale, shared_acc2()),
            };
            rows.push(vec![
                acc_name.to_string(),
                format!("{sel_pct}%"),
                secs(m.sp_cpu),
                secs(m.user_cpu),
                kb(m.vo_bytes),
                m.results.to_string(),
            ]);
        }
    }
    table(
        &format!("Fig {fig}: impact of range selectivity ({}, both-index)", ds_name(ds)),
        &["acc", "selectivity", "SP CPU(s)", "user CPU(s)", "VO(KB)", "|R|"],
        &rows,
    );
}

fn selectivity_point<A: Accumulator>(
    w: &Workload,
    window: (u64, u64),
    sel_pct: u32,
    scale: Scale,
    acc: A,
) -> QueryMetrics {
    let (sp, light, cfg) = build_chain(w, IndexScheme::Both, 5, acc);
    let mut qg = w.spec.query_gen(17_000 + sel_pct as u64);
    let queries: Vec<Query> = (0..scale.queries())
        .map(|_| qg.with_params(Some(window), sel_pct as f64 / 100.0, w.spec.bool_size))
        .collect();
    let compiled = compile_all(&queries, w.spec.domain_bits);
    let metrics: Vec<QueryMetrics> =
        compiled.iter().map(|q| run_query(&sp, &light, &cfg, q)).collect();
    QueryMetrics::averaged(&metrics)
}

// ------------------------------------------------------------- Figs 20-22

/// Impact of the skip-list size (0 = intra only, 1, 3, 5).
fn fig_skiplist(fig: u32, ds: Dataset, scale: Scale) {
    let w = WorkloadSpec::paper_defaults(ds, scale.chain_blocks()).generate();
    let win = *scale.windows().last().unwrap();
    let window = w.window_of_last(win.min(w.blocks.len()));
    let mut rows = Vec::new();
    for levels in [0u8, 1, 3, 5] {
        for (acc_name, kind) in [("acc1", AccKind::A1), ("acc2", AccKind::A2)] {
            let m = match kind {
                AccKind::A1 => skiplist_point(&w, window, levels, scale, shared_acc1()),
                AccKind::A2 => skiplist_point(&w, window, levels, scale, shared_acc2()),
            };
            rows.push(vec![
                acc_name.to_string(),
                format!("{levels} (max jump {})", if levels == 0 { 0 } else { 1u64 << levels }),
                secs(m.sp_cpu),
                secs(m.user_cpu),
                kb(m.vo_bytes),
            ]);
        }
    }
    table(
        &format!("Fig {fig}: impact of SkipList size ({})", ds_name(ds)),
        &["acc", "skip levels", "SP CPU(s)", "user CPU(s)", "VO(KB)"],
        &rows,
    );
}

fn skiplist_point<A: Accumulator>(
    w: &Workload,
    window: (u64, u64),
    levels: u8,
    scale: Scale,
    acc: A,
) -> QueryMetrics {
    let scheme = if levels == 0 { IndexScheme::Intra } else { IndexScheme::Both };
    let (sp, light, cfg) = build_chain(w, scheme, levels.max(1), acc);
    let mut qg = w.spec.query_gen(20_000 + levels as u64);
    let queries: Vec<Query> = (0..scale.queries()).map(|_| qg.time_window(window)).collect();
    let compiled = compile_all(&queries, w.spec.domain_bits);
    let metrics: Vec<QueryMetrics> =
        compiled.iter().map(|q| run_query(&sp, &light, &cfg, q)).collect();
    QueryMetrics::averaged(&metrics)
}
