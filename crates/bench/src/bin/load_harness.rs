//! Datagen-driven load harness for the persistent, sharded SP serving
//! layer: replay a Zipf query stream against a `ShardedServiceProvider`
//! across client threads, restart it from its logs, replay again warm, and
//! report steady-state serving throughput and tail latency.
//!
//! ```text
//! load_harness                      # write BENCH_sp_serve.json
//! load_harness --merge FILE.json    # splice entries into a bench-smoke file
//! ```
//!
//! The `--merge` form is the CI path: `bench_smoke` writes
//! `BENCH_current.json`, this harness adds its `sp_serve_*` entries to the
//! same file, and `bench_check` gates all of them against the committed
//! ledger in one comparison.
//!
//! Emitted entries (all lower-is-better µs, as the gate requires):
//!
//! * `sp_serve_qps` — *inverse* warm throughput, wall-clock µs per served
//!   query across all client threads (the actual q/s is printed to
//!   stderr). Stored inverted so the regression gate's "bigger is worse"
//!   arithmetic applies unchanged.
//! * `sp_serve_p50_us` / `sp_serve_p99_us` — per-query serve latency
//!   percentiles of the warm replay.
//!
//! The harness is also a correctness check: it asserts the restarted
//! provider answers the replayed stream byte-identically to the
//! pre-restart run and serves ≥90% of warm lookups from the rehydrated
//! cache, exiting nonzero otherwise — so the CI smoke step doubles as a
//! warm-start end-to-end test at load-harness scale.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use vchain_acc::Acc2;
use vchain_bench::check;
use vchain_bench::{build_chain, shared_acc2};
use vchain_core::miner::IndexScheme;
use vchain_core::query::CompiledQuery;
use vchain_core::sp::ServiceProvider;
use vchain_core::wire::encode_response;
use vchain_core::{ShardedConfig, ShardedServiceProvider};
use vchain_datagen::{Dataset, WorkloadSpec};
use vchain_hash::{hash_bytes, Digest};

// Fixed scale: the committed `sp_serve_*` ledger numbers are recorded at
// exactly this shape, and CI replays it identically.
const BLOCKS: usize = 12;
const POOL: usize = 12;
const STREAM: usize = 72;
const CLIENTS: usize = 4;

fn sharded_cfg() -> ShardedConfig {
    ShardedConfig { shards: 4, cache_capacity: 8192, flush_threshold: 16 }
}

fn build_sp(w: &vchain_datagen::Workload) -> ServiceProvider<Acc2> {
    let (sp, _light, _cfg) = build_chain(w, IndexScheme::Both, 4, shared_acc2());
    sp
}

/// Serve the stream from `CLIENTS` threads pulling off a shared cursor.
/// Returns (per-query latency µs in stream order, response digest per
/// stream slot, total wall µs).
fn replay(
    ssp: &ShardedServiceProvider<Acc2>,
    stream: &[CompiledQuery],
) -> (Vec<u64>, Vec<Digest>, f64) {
    let cursor = AtomicUsize::new(0);
    let wall = Instant::now();
    let mut per_thread: Vec<Vec<(usize, u64, Digest)>> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(q) = stream.get(i) else { break };
                        let t0 = Instant::now();
                        let resp = ssp.query(q);
                        let us = t0.elapsed().as_micros() as u64;
                        out.push((i, us, hash_bytes(&encode_response(&resp))));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            per_thread.push(h.join().expect("client thread panicked"));
        }
    });
    let wall_us = wall.elapsed().as_secs_f64() * 1e6;
    let mut lat = vec![0u64; stream.len()];
    let mut digests = vec![Digest([0u8; 32]); stream.len()];
    for (i, us, d) in per_thread.into_iter().flatten() {
        lat[i] = us;
        digests[i] = d;
    }
    (lat, digests, wall_us)
}

fn percentile(sorted: &[u64], p: usize) -> u64 {
    sorted[(sorted.len() - 1) * p / 100]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let merge_target: Option<PathBuf> = match args.as_slice() {
        [] => None,
        [flag, path] if flag == "--merge" => Some(PathBuf::from(path)),
        _ => {
            eprintln!("usage: load_harness [--merge BENCH_current.json]");
            std::process::exit(2);
        }
    };

    eprintln!("[load-harness] building {BLOCKS}-block chain…");
    let spec = WorkloadSpec::paper_defaults(Dataset::FourSquare, BLOCKS);
    let w = spec.generate();
    let stream: Vec<CompiledQuery> = w
        .zipf_query_stream(POOL, STREAM, 0x10AD)
        .iter()
        .map(|q| q.compile(spec.domain_bits))
        .collect();

    let dir = std::env::temp_dir().join(format!("vchain-load-harness-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // Phase 1: cold persistent run, then graceful shutdown.
    let (cold_ssp, _) =
        ShardedServiceProvider::open(build_sp(&w), sharded_cfg(), &dir).expect("open store dir");
    eprintln!("[load-harness] cold replay: {STREAM} queries × {CLIENTS} clients…");
    let (_, cold_digests, cold_wall) = replay(&cold_ssp, &stream);
    assert!(cold_ssp.take_flush_error().is_none(), "write-behind flush failed");
    let entries = cold_ssp.total_entries();
    cold_ssp.shutdown().expect("graceful shutdown");
    eprintln!(
        "[load-harness] cold: {:.0} q/s, {entries} cache entries persisted",
        STREAM as f64 / (cold_wall / 1e6)
    );

    // Phase 2: restart from the logs and replay warm.
    let (warm_ssp, recovery) =
        ShardedServiceProvider::open(build_sp(&w), sharded_cfg(), &dir).expect("reopen store dir");
    // `proofs_loaded` counts log records; concurrent cold clients may race
    // the same key (both prove, both insert), so records ≥ distinct keys.
    assert!(recovery.proofs_loaded >= entries, "every persisted entry must rehydrate");
    assert_eq!(warm_ssp.total_entries(), entries, "distinct rehydrated keys must match");
    assert_eq!(recovery.proofs_rejected, 0);
    let before = warm_ssp.merged_stats();
    eprintln!("[load-harness] warm replay after restart…");
    let (mut warm_lat, warm_digests, warm_wall) = replay(&warm_ssp, &stream);
    let after = warm_ssp.merged_stats();

    // Correctness gates: byte-identical answers, ≥90% warm hit rate.
    assert_eq!(
        warm_digests, cold_digests,
        "restarted SP must answer the replayed stream byte-identically"
    );
    let hits = after.hits - before.hits;
    let lookups = hits + (after.misses - before.misses);
    let hit_rate = hits as f64 / lookups.max(1) as f64;
    eprintln!("[load-harness] warm hit rate: {hit_rate:.3} ({hits}/{lookups})");
    assert!(hit_rate >= 0.90, "warm replay hit rate {hit_rate:.3} below the 0.90 floor");

    warm_lat.sort_unstable();
    let p50 = percentile(&warm_lat, 50);
    let p99 = percentile(&warm_lat, 99);
    let qps = STREAM as f64 / (warm_wall / 1e6);
    let inv_qps_us = warm_wall / STREAM as f64;
    eprintln!(
        "[load-harness] warm: {qps:.0} q/s ({inv_qps_us:.1} µs/query), \
         p50 {p50} µs, p99 {p99} µs"
    );

    std::fs::remove_dir_all(&dir).ok();

    let entries = vec![
        ("sp_serve_qps".to_string(), STREAM as u32, inv_qps_us),
        ("sp_serve_p50_us".to_string(), STREAM as u32, p50 as f64),
        ("sp_serve_p99_us".to_string(), STREAM as u32, p99 as f64),
    ];

    match merge_target {
        Some(path) => {
            let json = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
            let merged = check::merge_entries(&json, &entries).expect("mergeable bench file");
            std::fs::write(&path, merged).expect("write merged bench file");
            eprintln!("[load-harness] merged {} entries into {}", entries.len(), path.display());
        }
        None => {
            use std::fmt::Write as _;
            let mut json =
                String::from("{\n  \"schema\": \"vchain-bench-smoke/v1\",\n  \"timings\": [\n");
            for (i, (name, iters, us)) in entries.iter().enumerate() {
                let comma = if i + 1 == entries.len() { "" } else { "," };
                let _ = writeln!(
                    json,
                    "    {{\"name\": \"{name}\", \"iters\": {iters}, \"us_per_iter\": {us:.3}}}{comma}"
                );
            }
            json.push_str("  ]\n}\n");
            std::fs::write("BENCH_sp_serve.json", &json).expect("write BENCH_sp_serve.json");
            println!("{json}");
            eprintln!("[load-harness] wrote BENCH_sp_serve.json");
        }
    }
}
