//! Shared harness for the vChain experiments: chain construction per
//! (dataset × scheme × accumulator), wall-clock metering, and plain-text
//! table/series printing matching the paper's figures.

pub mod check;

use std::sync::OnceLock;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use vchain_acc::{Acc1, Acc2, Accumulator};
use vchain_chain::{Difficulty, LightClient};
use vchain_core::miner::{IndexScheme, Miner, MinerConfig};
use vchain_core::query::{CompiledQuery, Query};
use vchain_core::sp::ServiceProvider;
use vchain_core::verify::verify_response;
use vchain_core::vo::{QueryResponse, VoSize};
use vchain_datagen::Workload;

/// Capacity of the shared Construction-1 key (max characteristic-polynomial
/// degree = the largest skip-entry multiset cardinality we ever build).
pub const ACC1_CAPACITY: usize = 8192;
/// Universe bound of the shared Construction-2 key (max interned element
/// dictionary index + margin).
pub const ACC2_UNIVERSE: u64 = 8192;

static SHARED_ACC1: OnceLock<Acc1> = OnceLock::new();
static SHARED_ACC2: OnceLock<Acc2> = OnceLock::new();

/// Process-wide Construction-1 key (trapdoor fast path enabled; experiments
/// that *measure* setup re-enable honest setup explicitly).
pub fn shared_acc1() -> Acc1 {
    SHARED_ACC1
        .get_or_init(|| {
            eprintln!("[setup] generating acc1 public key (capacity {ACC1_CAPACITY})…");
            Acc1::keygen(ACC1_CAPACITY, &mut StdRng::seed_from_u64(0xACC1))
        })
        .clone()
        .with_fast_setup(true)
}

/// Process-wide Construction-2 key.
pub fn shared_acc2() -> Acc2 {
    SHARED_ACC2
        .get_or_init(|| {
            eprintln!("[setup] generating acc2 public key (universe {ACC2_UNIVERSE})…");
            Acc2::keygen(ACC2_UNIVERSE, &mut StdRng::seed_from_u64(0xACC2))
        })
        .clone()
        .with_fast_setup(true)
}

/// Wall-clock measurement of a closure.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Build a chain + light client over a generated workload.
pub fn build_chain<A: Accumulator>(
    workload: &Workload,
    scheme: IndexScheme,
    skip_levels: u8,
    acc: A,
) -> (ServiceProvider<A>, LightClient, MinerConfig) {
    let cfg = MinerConfig {
        scheme,
        skip_levels,
        domain_bits: workload.spec.domain_bits,
        difficulty: Difficulty(1),
        bloom_bits_per_key: 10,
    };
    let mut miner = Miner::new(cfg, acc);
    for (ts, objs) in &workload.blocks {
        miner.mine_block(*ts, objs.clone());
    }
    let mut light = LightClient::new(cfg.difficulty);
    for h in miner.headers() {
        light.sync_header(h).expect("headers validate");
    }
    (miner.into_service_provider(), light, cfg)
}

/// Metrics of one time-window query run (paper's three plots).
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryMetrics {
    pub sp_cpu: Duration,
    pub user_cpu: Duration,
    pub vo_bytes: usize,
    pub results: usize,
}

impl QueryMetrics {
    pub fn accumulate(&mut self, other: &QueryMetrics) {
        self.sp_cpu += other.sp_cpu;
        self.user_cpu += other.user_cpu;
        self.vo_bytes += other.vo_bytes;
        self.results += other.results;
    }

    pub fn averaged(metrics: &[QueryMetrics]) -> QueryMetrics {
        let n = metrics.len().max(1) as u32;
        let mut total = QueryMetrics::default();
        for m in metrics {
            total.accumulate(m);
        }
        QueryMetrics {
            sp_cpu: total.sp_cpu / n,
            user_cpu: total.user_cpu / n,
            vo_bytes: total.vo_bytes / n as usize,
            results: total.results / n as usize,
        }
    }
}

/// Execute one verified time-window query and meter both sides.
pub fn run_query<A: Accumulator>(
    sp: &ServiceProvider<A>,
    light: &LightClient,
    cfg: &MinerConfig,
    q: &CompiledQuery,
) -> QueryMetrics {
    let (resp, sp_cpu): (QueryResponse<A>, _) = timed(|| sp.time_window_query(q));
    let vo_bytes = resp.vo_size_bytes(&sp.acc);
    let (verified, user_cpu) =
        timed(|| verify_response(q, &resp, light, cfg, &sp.acc).expect("honest SP must verify"));
    QueryMetrics { sp_cpu, user_cpu, vo_bytes, results: verified.len() }
}

/// Compile a batch of queries for a workload's domain.
pub fn compile_all(queries: &[Query], domain_bits: u8) -> Vec<CompiledQuery> {
    queries.iter().map(|q| q.compile(domain_bits)).collect()
}

/// Plain-text figure/table output helpers.
pub mod report {
    /// Print a table with a title, column headers and rows.
    pub fn table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
        println!("\n== {title} ==");
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for row in rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let header_line: Vec<String> =
            headers.iter().enumerate().map(|(i, h)| format!("{h:>w$}", w = widths[i])).collect();
        println!("{}", header_line.join("  "));
        for row in rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = widths.get(i).copied().unwrap_or(8)))
                .collect();
            println!("{}", line.join("  "));
        }
    }

    pub fn secs(d: std::time::Duration) -> String {
        format!("{:.3}", d.as_secs_f64())
    }

    pub fn kb(bytes: usize) -> String {
        format!("{:.1}", bytes as f64 / 1024.0)
    }
}

/// Experiment scale: `quick` for smoke runs, `std` for the recorded numbers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    Quick,
    Std,
}

impl Scale {
    pub fn from_env() -> Self {
        match std::env::var("VCHAIN_SCALE").as_deref() {
            Ok("std") => Scale::Std,
            _ => Scale::Quick,
        }
    }

    pub fn queries(self) -> usize {
        match self {
            Scale::Quick => 2,
            Scale::Std => 5,
        }
    }

    pub fn chain_blocks(self) -> usize {
        match self {
            Scale::Quick => 20,
            Scale::Std => 40,
        }
    }

    pub fn windows(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![2, 4, 8, 16],
            Scale::Std => vec![4, 8, 16, 24, 32],
        }
    }

    pub fn subscription_periods(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![2, 4, 8],
            Scale::Std => vec![4, 8, 16, 24, 32],
        }
    }

    pub fn query_counts(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![4, 8, 16],
            Scale::Std => vec![10, 20, 40, 80],
        }
    }
}
