//! Per-block time-window query + verification benchmarks per scheme
//! (the micro view behind Figs 9–11), including the §6.3 online batch
//! verification ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vchain_acc::{Acc1, Acc2};
use vchain_chain::Object;
use vchain_core::intra::IntraTree;
use vchain_core::query::CompiledQuery;
use vchain_datagen::{Dataset, WorkloadSpec};

fn setup() -> (Vec<Object>, CompiledQuery) {
    let spec = WorkloadSpec::paper_defaults(Dataset::FourSquare, 1);
    let w = spec.generate();
    let mut qg = spec.query_gen(5);
    let q = qg.time_window((0, 1_000_000)).compile(spec.domain_bits);
    (w.blocks[0].1.clone(), q)
}

fn bench_block_query(c: &mut Criterion) {
    let (objects, q) = setup();
    let acc1 = Acc1::keygen(1024, &mut StdRng::seed_from_u64(7));
    let acc2 = Acc2::keygen(8192, &mut StdRng::seed_from_u64(8));
    let tree_nil_1 = IntraTree::build_nil(&objects, &acc1, 8);
    let tree_cl_1 = IntraTree::build_clustered(&objects, &acc1, 8);
    let tree_cl_2 = IntraTree::build_clustered(&objects, &acc2, 8);

    let mut group = c.benchmark_group("block_query");
    group.sample_size(10);
    group.bench_function("nil_acc1", |b| {
        b.iter(|| tree_nil_1.query(std::hint::black_box(&objects), &q, &acc1, false))
    });
    group.bench_function("intra_acc1", |b| {
        b.iter(|| tree_cl_1.query(std::hint::black_box(&objects), &q, &acc1, false))
    });
    group.bench_function("intra_acc2", |b| {
        b.iter(|| tree_cl_2.query(std::hint::black_box(&objects), &q, &acc2, false))
    });
    // ablation: §6.3 batch grouping on vs off (acc2 only)
    group.bench_function("intra_acc2_batched", |b| {
        b.iter(|| tree_cl_2.query(std::hint::black_box(&objects), &q, &acc2, true))
    });
    group.finish();
}

criterion_group!(benches, bench_block_query);
criterion_main!(benches);
