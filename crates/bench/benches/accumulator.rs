//! Accumulator primitive benchmarks: Setup / ProveDisjoint / VerifyDisjoint
//! for both constructions, plus Construction 2's Sum / ProofSum aggregation
//! (the primitives behind Table 1 and the acc1-vs-acc2 gaps in Figs 9–15).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vchain_acc::{Acc1, Acc2, Accumulator, MultiSet};

fn sets(n: usize) -> (MultiSet<u64>, MultiSet<u64>) {
    // disjoint supports: odd vs even representatives
    let x1: MultiSet<u64> = (0..n as u64).map(|i| 2 * i + 1).collect();
    let x2: MultiSet<u64> = [2u64, 4, 6].into_iter().collect();
    (x1, x2)
}

fn bench_acc1(c: &mut Criterion) {
    let acc = Acc1::keygen(256, &mut StdRng::seed_from_u64(1));
    let mut group = c.benchmark_group("acc1");
    group.sample_size(10);
    for n in [8usize, 32, 128] {
        let (x1, x2) = sets(n);
        group.bench_with_input(BenchmarkId::new("setup", n), &x1, |b, x| {
            b.iter(|| acc.setup(std::hint::black_box(x)))
        });
        group.bench_with_input(
            BenchmarkId::new("prove_disjoint", n),
            &(x1.clone(), x2.clone()),
            |b, (a, q)| b.iter(|| acc.prove_disjoint(std::hint::black_box(a), q).unwrap()),
        );
        let v1 = acc.setup(&x1);
        let v2 = acc.setup(&x2);
        let proof = acc.prove_disjoint(&x1, &x2).unwrap();
        group.bench_with_input(BenchmarkId::new("verify_disjoint", n), &proof, |b, p| {
            b.iter(|| assert!(acc.verify_disjoint(&v1, &v2, std::hint::black_box(p))))
        });
    }
    group.finish();
}

fn bench_acc2(c: &mut Criterion) {
    let acc = Acc2::keygen(1024, &mut StdRng::seed_from_u64(2));
    let mut group = c.benchmark_group("acc2");
    group.sample_size(10);
    for n in [8usize, 32, 128] {
        let (x1, x2) = sets(n);
        group.bench_with_input(BenchmarkId::new("setup", n), &x1, |b, x| {
            b.iter(|| acc.setup(std::hint::black_box(x)))
        });
        group.bench_with_input(
            BenchmarkId::new("prove_disjoint", n),
            &(x1.clone(), x2.clone()),
            |b, (a, q)| b.iter(|| acc.prove_disjoint(std::hint::black_box(a), q).unwrap()),
        );
        let v1 = acc.setup(&x1);
        let v2 = acc.setup(&x2);
        let proof = acc.prove_disjoint(&x1, &x2).unwrap();
        group.bench_with_input(BenchmarkId::new("verify_disjoint", n), &proof, |b, p| {
            b.iter(|| assert!(acc.verify_disjoint(&v1, &v2, std::hint::black_box(p))))
        });
    }
    // aggregation primitives (§6.3): the reason acc2 wins on user CPU
    let values: Vec<_> = (0..16u64)
        .map(|i| acc.setup(&[2 * i + 1].into_iter().collect::<MultiSet<u64>>()))
        .collect();
    group.bench_function("sum_16", |b| b.iter(|| acc.sum(std::hint::black_box(&values)).unwrap()));
    let (x1, x2) = sets(8);
    let p = acc.prove_disjoint(&x1, &x2).unwrap();
    let proofs = vec![p; 16];
    group.bench_function("proof_sum_16", |b| {
        b.iter(|| acc.proof_sum(std::hint::black_box(&proofs)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_acc1, bench_acc2);
criterion_main!(benches);
