//! Micro-benchmarks of the cryptographic substrate: field multiplication,
//! group operations, scalar multiplication, pairing and multi-pairing.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vchain_pairing::{
    multi_pairing, multiexp, pairing, Field, Fp, Fp12, Fr, G1Projective, G2Projective,
};

fn bench_fields(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = Fp::random(&mut rng);
    let b = Fp::random(&mut rng);
    c.bench_function("fp_mul", |bch| bch.iter(|| std::hint::black_box(a) * b));
    c.bench_function("fp_inverse", |bch| bch.iter(|| std::hint::black_box(a).inverse()));
    let x = Fp12::random(&mut rng);
    let y = Fp12::random(&mut rng);
    c.bench_function("fp12_mul", |bch| bch.iter(|| Field::mul(&std::hint::black_box(x), &y)));
    c.bench_function("fp12_inverse", |bch| bch.iter(|| std::hint::black_box(x).inverse()));
}

fn bench_groups(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let g = G1Projective::generator();
    let h = g.mul_u64(12345);
    let k = Fr::random(&mut rng);
    c.bench_function("g1_add", |bch| bch.iter(|| std::hint::black_box(g).add(&h)));
    c.bench_function("g1_scalar_mul", |bch| bch.iter(|| std::hint::black_box(g).mul_fr(&k)));
    let g2 = G2Projective::generator();
    c.bench_function("g2_scalar_mul", |bch| bch.iter(|| std::hint::black_box(g2).mul_fr(&k)));

    let bases: Vec<G1Projective> = (1..=64u64).map(|i| g.mul_u64(i)).collect();
    let scalars: Vec<_> = (0..64).map(|_| Fr::random(&mut rng).to_uint()).collect();
    c.bench_function("g1_multiexp_64", |bch| {
        bch.iter(|| multiexp(std::hint::black_box(&bases), &scalars))
    });
}

fn bench_pairing(c: &mut Criterion) {
    let p = G1Projective::generator().mul_u64(7).to_affine();
    let q = G2Projective::generator().mul_u64(9).to_affine();
    let mut group = c.benchmark_group("pairing");
    group.sample_size(10);
    group.bench_function("single", |bch| bch.iter(|| pairing(&std::hint::black_box(p), &q)));
    let pairs = [(p, q), (p, q), (p, q)];
    group.bench_function("multi_3", |bch| bch.iter(|| multi_pairing(std::hint::black_box(&pairs))));
    group.finish();
}

criterion_group!(benches, bench_fields, bench_groups, bench_pairing);
criterion_main!(benches);
