//! Per-block subscription publication benchmarks: per-query processing vs
//! the shared IP-Tree path (the Fig-12 micro view).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vchain_acc::Acc2;
use vchain_chain::Difficulty;
use vchain_core::miner::{IndexScheme, Miner, MinerConfig};
use vchain_core::subscribe::{SubscriptionEngine, SubscriptionMode};
use vchain_datagen::{Dataset, WorkloadSpec};

fn bench_publish(c: &mut Criterion) {
    let spec = WorkloadSpec::paper_defaults(Dataset::FourSquare, 4);
    let w = spec.generate();
    let acc = Acc2::keygen(8192, &mut StdRng::seed_from_u64(9)).with_fast_setup(true);
    let cfg = MinerConfig {
        scheme: IndexScheme::Both,
        skip_levels: 3,
        domain_bits: spec.domain_bits,
        difficulty: Difficulty(0),
        bloom_bits_per_key: 10,
    };
    let mut miner = Miner::new(cfg, acc.clone());
    for (ts, objs) in &w.blocks {
        miner.mine_block(*ts, objs.clone());
    }
    let block = miner.store().block(3).unwrap().clone();
    let indexed = miner.indexed()[3].clone();

    let mut group = c.benchmark_group("subscription_publish");
    group.sample_size(10);
    for n in [4usize, 16] {
        for (ip, name) in [(false, "nip"), (true, "ip")] {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, &n| {
                b.iter_batched(
                    || {
                        let mut engine = SubscriptionEngine::new(
                            cfg,
                            acc.clone(),
                            SubscriptionMode::Realtime,
                            ip,
                        );
                        let mut qg = spec.query_gen(n as u64);
                        for _ in 0..n {
                            engine.register(&qg.subscription());
                        }
                        // advance the engine to the block's height
                        for h in 0..3u64 {
                            let b = miner.store().block(h).unwrap().clone();
                            let ib = miner.indexed()[h as usize].clone();
                            engine.process_block(&b, &ib);
                        }
                        engine
                    },
                    |mut engine| engine.process_block(&block, &indexed),
                    criterion::BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_publish);
criterion_main!(benches);
