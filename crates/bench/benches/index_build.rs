//! ADS construction benchmarks (the Table-1 micro view) and the ablation
//! called out in DESIGN.md: Jaccard-greedy clustering (Algorithm 2) vs a
//! plain arrival-order tree, and acc1 vs acc2 skip-list maintenance.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vchain_acc::{Acc1, Acc2, Accumulator};
use vchain_core::inter::{BlockSummary, SkipList};
use vchain_core::intra::IntraTree;
use vchain_core::query::object_multiset;
use vchain_datagen::{Dataset, WorkloadSpec};

fn bench_intra_build(c: &mut Criterion) {
    let w = WorkloadSpec::paper_defaults(Dataset::FourSquare, 1).generate();
    let objects = &w.blocks[0].1;
    let acc1 = Acc1::keygen(1024, &mut StdRng::seed_from_u64(1));
    let acc2 = Acc2::keygen(8192, &mut StdRng::seed_from_u64(2));

    let mut group = c.benchmark_group("intra_build");
    group.sample_size(10);
    group.bench_function("clustered_acc1", |b| {
        b.iter(|| IntraTree::build_clustered(std::hint::black_box(objects), &acc1, 8))
    });
    group.bench_function("clustered_acc2", |b| {
        b.iter(|| IntraTree::build_clustered(std::hint::black_box(objects), &acc2, 8))
    });
    // ablation: nil has no internal digests (cheapest) — the clustered vs
    // nil delta is the price of prunability
    group.bench_function("nil_acc1", |b| {
        b.iter(|| IntraTree::build_nil(std::hint::black_box(objects), &acc1, 8))
    });
    group.finish();
}

fn bench_skiplist_build(c: &mut Criterion) {
    // the paper's Table-1 observation: acc2 reuses per-block digests via
    // Sum(·) while acc1 must re-set-up the summed multiset
    let w = WorkloadSpec::paper_defaults(Dataset::Ethereum, 8).generate();
    let acc1 = Acc1::keygen(4096, &mut StdRng::seed_from_u64(3)).with_fast_setup(true);
    let acc2 = Acc2::keygen(8192, &mut StdRng::seed_from_u64(4));

    fn history<A: Accumulator>(w: &vchain_datagen::Workload, acc: &A) -> Vec<BlockSummary<A>> {
        w.blocks
            .iter()
            .map(|(ts, objs)| {
                let mut ms = vchain_acc::MultiSet::new();
                for o in objs {
                    ms = ms.union(&object_multiset(o, w.spec.domain_bits));
                }
                BlockSummary {
                    hash: vchain_hash::hash_bytes(&ts.to_le_bytes()),
                    att: acc.setup(&ms),
                    ms,
                }
            })
            .collect()
    }

    let h1 = history(&w, &acc1);
    let h2 = history(&w, &acc2);
    let mut group = c.benchmark_group("skiplist_build");
    group.sample_size(10);
    // honest (public-key-only) setup for the measured acc1 path
    let acc1_honest = acc1.clone().with_fast_setup(false);
    group.bench_function("acc1_levels3", |b| {
        b.iter(|| SkipList::build(std::hint::black_box(&h1), 3, &acc1_honest))
    });
    group.bench_function("acc2_levels3", |b| {
        b.iter(|| SkipList::build(std::hint::black_box(&h2), 3, &acc2))
    });
    group.finish();
}

criterion_group!(benches, bench_intra_build, bench_skiplist_build);
criterion_main!(benches);
