//! A plain binary Merkle hash tree (paper §2, Fig. 2).
//!
//! Used for the classic blockchain structure, the MHT baseline of Fig. 16,
//! and as a reference for the authenticated intra-block index (which extends
//! interior nodes with accumulator digests in `vchain-core`).

use vchain_hash::{hash_concat, hash_pair, Digest};

/// A Merkle tree over a list of leaf digests. Odd nodes are promoted (not
/// duplicated), so the tree has no Bitcoin-style duplication pitfalls.
#[derive(Clone, Debug)]
pub struct MerkleTree {
    /// `levels[0]` = leaves, last level = `[root]`.
    levels: Vec<Vec<Digest>>,
}

/// A membership proof: sibling digests from leaf to root, each tagged with
/// whether the sibling sits on the left.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MerklePath {
    pub leaf_index: usize,
    pub siblings: Vec<(bool, Digest)>,
}

impl MerkleTree {
    /// Build from leaf digests. An empty input yields a domain-separated
    /// "empty" root.
    pub fn build(leaves: &[Digest]) -> Self {
        if leaves.is_empty() {
            return Self { levels: vec![vec![hash_concat(&[b"vchain/empty-merkle"])]] };
        }
        let mut levels = vec![leaves.to_vec()];
        while levels.last().unwrap().len() > 1 {
            let prev = levels.last().unwrap();
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                match pair {
                    [l, r] => next.push(hash_pair(l, r)),
                    [odd] => next.push(*odd), // promote
                    _ => unreachable!(),
                }
            }
            levels.push(next);
        }
        Self { levels }
    }

    pub fn root(&self) -> Digest {
        *self.levels.last().unwrap().last().unwrap()
    }

    pub fn leaf_count(&self) -> usize {
        if self.levels.len() == 1 && self.levels[0].len() == 1 {
            // ambiguous: could be a single leaf or the empty sentinel; treat
            // level-0 length as authoritative
        }
        self.levels[0].len()
    }

    /// Membership proof for `leaf_index`.
    pub fn prove(&self, leaf_index: usize) -> MerklePath {
        assert!(leaf_index < self.levels[0].len(), "leaf index out of range");
        let mut siblings = Vec::new();
        let mut idx = leaf_index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sib = idx ^ 1;
            if sib < level.len() {
                siblings.push((sib < idx, level[sib]));
            }
            idx /= 2;
        }
        MerklePath { leaf_index, siblings }
    }

    /// Verify a membership proof against a root.
    pub fn verify(root: &Digest, leaf: &Digest, path: &MerklePath) -> bool {
        let mut cur = *leaf;
        for (is_left, sib) in &path.siblings {
            cur = if *is_left { hash_pair(sib, &cur) } else { hash_pair(&cur, sib) };
        }
        cur == *root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vchain_hash::hash_bytes;

    fn leaves(n: usize) -> Vec<Digest> {
        (0..n).map(|i| hash_bytes(&(i as u64).to_le_bytes())).collect()
    }

    #[test]
    fn roots_differ_by_content_and_order() {
        let a = MerkleTree::build(&leaves(4));
        let mut swapped = leaves(4);
        swapped.swap(0, 1);
        let b = MerkleTree::build(&swapped);
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn proofs_verify_for_all_sizes() {
        for n in 1..=9 {
            let ls = leaves(n);
            let t = MerkleTree::build(&ls);
            for (i, leaf) in ls.iter().enumerate() {
                let p = t.prove(i);
                assert!(MerkleTree::verify(&t.root(), leaf, &p), "n={n}, i={i}");
            }
        }
    }

    #[test]
    fn tampered_leaf_fails() {
        let ls = leaves(5);
        let t = MerkleTree::build(&ls);
        let p = t.prove(2);
        let wrong = hash_bytes(b"not the leaf");
        assert!(!MerkleTree::verify(&t.root(), &wrong, &p));
    }

    #[test]
    fn wrong_position_fails() {
        let ls = leaves(4);
        let t = MerkleTree::build(&ls);
        let p = t.prove(1);
        assert!(!MerkleTree::verify(&t.root(), &ls[2], &p));
    }

    #[test]
    fn empty_tree_has_sentinel_root() {
        let t = MerkleTree::build(&[]);
        assert_ne!(t.root(), Digest::ZERO);
        let single = MerkleTree::build(&leaves(1));
        assert_eq!(single.root(), leaves(1)[0]); // single leaf promotes to root
    }
}
