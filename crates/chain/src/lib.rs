//! The blockchain substrate of the vChain reproduction (paper §1–§3).
//!
//! This crate is deliberately independent of the query layer: a block header
//! carries two opaque commitment slots — `ads_root` (the paper's
//! MerkleRoot/ObjectHash over the intra-block ADS, Fig. 4/6) and
//! `skiplist_root` (the inter-block index commitment, Fig. 7) — that the
//! miner fills in from whatever authenticated structure `vchain-core`
//! builds. Everything else (hash chain, simulated proof-of-work, chain
//! store, light-client header sync) lives here.

pub mod block;
pub mod chain;
pub mod merkle;
pub mod object;
pub mod pow;

pub use block::{Block, BlockHeader};
pub use chain::{ChainError, ChainStore, LightClient};
pub use merkle::{MerklePath, MerkleTree};
pub use object::{Object, ObjectId};
pub use pow::{mine_nonce, verify_nonce, Difficulty};
