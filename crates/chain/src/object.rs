//! Temporal data objects `oᵢ = ⟨tᵢ, Vᵢ, Wᵢ⟩` (paper §3).

use serde::{Deserialize, Serialize};
use vchain_hash::{hash_concat, Digest};

/// A globally unique object identifier (assigned by the data source).
pub type ObjectId = u64;

/// A timestamped object with a multi-dimensional numeric vector `V` and a
/// set-valued attribute `W`.
///
/// ```
/// use vchain_chain::Object;
/// let o = Object::new(1, 1000, vec![4, 2], vec!["Sedan".into(), "Benz".into()]);
/// assert_eq!(o.numeric.len(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Object {
    pub id: ObjectId,
    /// The timestamp `tᵢ`.
    pub timestamp: u64,
    /// The numeric vector `Vᵢ` (one entry per dimension, already quantized
    /// to the binary domain used by the prefix transformation).
    pub numeric: Vec<u64>,
    /// The set-valued attribute `Wᵢ` (keywords, addresses, …).
    pub keywords: Vec<String>,
}

impl Object {
    pub fn new(id: ObjectId, timestamp: u64, numeric: Vec<u64>, keywords: Vec<String>) -> Self {
        Self { id, timestamp, numeric, keywords }
    }

    /// The binding commitment `hash(oᵢ)` used in block headers and index
    /// leaves. Fields are length-prefixed via `hash_concat`; keyword order
    /// is canonicalized so logically equal objects hash equally.
    pub fn digest(&self) -> Digest {
        let mut parts: Vec<Vec<u8>> =
            Vec::with_capacity(3 + self.numeric.len() + self.keywords.len());
        parts.push(self.id.to_le_bytes().to_vec());
        parts.push(self.timestamp.to_le_bytes().to_vec());
        parts.push((self.numeric.len() as u64).to_le_bytes().to_vec());
        for v in &self.numeric {
            parts.push(v.to_le_bytes().to_vec());
        }
        let mut kws: Vec<&str> = self.keywords.iter().map(String::as_str).collect();
        kws.sort_unstable();
        for k in kws {
            parts.push(k.as_bytes().to_vec());
        }
        let refs: Vec<&[u8]> = parts.iter().map(Vec::as_slice).collect();
        hash_concat(&refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_under_keyword_order() {
        let a = Object::new(1, 5, vec![7], vec!["x".into(), "y".into()]);
        let b = Object::new(1, 5, vec![7], vec!["y".into(), "x".into()]);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn digest_binds_every_field() {
        let base = Object::new(1, 5, vec![7, 8], vec!["x".into()]);
        let mut o = base.clone();
        o.id = 2;
        assert_ne!(o.digest(), base.digest());
        let mut o = base.clone();
        o.timestamp = 6;
        assert_ne!(o.digest(), base.digest());
        let mut o = base.clone();
        o.numeric[1] = 9;
        assert_ne!(o.digest(), base.digest());
        let mut o = base.clone();
        o.keywords.push("z".into());
        assert_ne!(o.digest(), base.digest());
    }

    #[test]
    fn numeric_length_is_bound() {
        // [7,8] vs [78] style ambiguity must not collide
        let a = Object::new(1, 5, vec![7, 8], vec![]);
        let b = Object::new(1, 5, vec![7], vec![]);
        assert_ne!(a.digest(), b.digest());
    }
}
