//! The append-only chain store (full node) and the header-only light client
//! (paper Fig. 1 / Fig. 3).

use std::collections::HashMap;

use vchain_hash::Digest;

use crate::block::{Block, BlockHeader};
use crate::pow::Difficulty;

/// Errors from appending a block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// `prev_hash` does not match the current tip.
    BrokenLink { expected: Digest, got: Digest },
    /// The height is not `tip + 1`.
    WrongHeight { expected: u64, got: u64 },
    /// The consensus proof does not satisfy the difficulty.
    InvalidPow,
    /// Timestamps must be non-decreasing.
    TimestampRegression,
}

impl core::fmt::Display for ChainError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ChainError::BrokenLink { expected, got } => {
                write!(f, "broken hash link: expected {expected}, got {got}")
            }
            ChainError::WrongHeight { expected, got } => {
                write!(f, "wrong height: expected {expected}, got {got}")
            }
            ChainError::InvalidPow => write!(f, "invalid consensus proof"),
            ChainError::TimestampRegression => write!(f, "timestamp went backwards"),
        }
    }
}

impl std::error::Error for ChainError {}

/// A full node's storage: all blocks, indexed by height and hash.
#[derive(Debug, Default)]
pub struct ChainStore {
    blocks: Vec<Block>,
    by_hash: HashMap<Digest, usize>,
    difficulty: Difficulty,
}

impl ChainStore {
    pub fn new(difficulty: Difficulty) -> Self {
        Self { blocks: Vec::new(), by_hash: HashMap::new(), difficulty }
    }

    pub fn difficulty(&self) -> Difficulty {
        self.difficulty
    }

    pub fn height(&self) -> Option<u64> {
        self.blocks.last().map(|b| b.header.height)
    }

    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    pub fn tip_hash(&self) -> Digest {
        self.blocks.last().map(|b| b.block_hash()).unwrap_or(Digest::ZERO)
    }

    /// Validate and append a block.
    pub fn append(&mut self, block: Block) -> Result<(), ChainError> {
        let expected_height = self.height().map(|h| h + 1).unwrap_or(0);
        if block.header.height != expected_height {
            return Err(ChainError::WrongHeight {
                expected: expected_height,
                got: block.header.height,
            });
        }
        let expected_prev = self.tip_hash();
        if block.header.prev_hash != expected_prev {
            return Err(ChainError::BrokenLink {
                expected: expected_prev,
                got: block.header.prev_hash,
            });
        }
        if let Some(last) = self.blocks.last() {
            if block.header.timestamp < last.header.timestamp {
                return Err(ChainError::TimestampRegression);
            }
        }
        if !block.header.verify_pow(self.difficulty) {
            return Err(ChainError::InvalidPow);
        }
        self.by_hash.insert(block.block_hash(), self.blocks.len());
        self.blocks.push(block);
        Ok(())
    }

    pub fn block(&self, height: u64) -> Option<&Block> {
        self.blocks.get(height as usize)
    }

    pub fn block_by_hash(&self, hash: &Digest) -> Option<&Block> {
        self.by_hash.get(hash).map(|&i| &self.blocks[i])
    }

    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Heights whose timestamp lies in `[ts, te]` (inclusive), for
    /// time-window query planning.
    pub fn heights_in_window(&self, ts: u64, te: u64) -> Vec<u64> {
        self.blocks
            .iter()
            .filter(|b| b.header.timestamp >= ts && b.header.timestamp <= te)
            .map(|b| b.header.height)
            .collect()
    }
}

/// A light node: keeps validated headers only (paper Fig. 1).
///
/// `Clone` is part of the contract: the streamed verification pipeline
/// (`core::client`) hands an owned copy of the header set to its decode
/// worker, so verification can overlap transport without borrowing across
/// threads.
#[derive(Clone, Debug, Default)]
pub struct LightClient {
    headers: Vec<BlockHeader>,
    difficulty: Difficulty,
}

impl LightClient {
    pub fn new(difficulty: Difficulty) -> Self {
        Self { headers: Vec::new(), difficulty }
    }

    /// Validate and accept the next header.
    pub fn sync_header(&mut self, header: BlockHeader) -> Result<(), ChainError> {
        let expected_height = self.headers.last().map(|h| h.height + 1).unwrap_or(0);
        if header.height != expected_height {
            return Err(ChainError::WrongHeight { expected: expected_height, got: header.height });
        }
        let expected_prev = self.headers.last().map(|h| h.block_hash()).unwrap_or(Digest::ZERO);
        if header.prev_hash != expected_prev {
            return Err(ChainError::BrokenLink { expected: expected_prev, got: header.prev_hash });
        }
        if !header.verify_pow(self.difficulty) {
            return Err(ChainError::InvalidPow);
        }
        self.headers.push(header);
        Ok(())
    }

    pub fn header(&self, height: u64) -> Option<&BlockHeader> {
        self.headers.get(height as usize)
    }

    pub fn headers(&self) -> &[BlockHeader] {
        &self.headers
    }

    pub fn len(&self) -> usize {
        self.headers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.headers.is_empty()
    }

    pub fn block_hash(&self, height: u64) -> Option<Digest> {
        self.header(height).map(BlockHeader::block_hash)
    }

    /// Total header storage in bits (the paper's light-node space metric).
    pub fn storage_bits(&self) -> usize {
        self.headers.iter().map(BlockHeader::size_bits).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::Object;
    use crate::pow::mine_nonce;
    use vchain_hash::hash_bytes;

    fn mk_block(prev: Digest, height: u64, ts: u64, d: Difficulty) -> Block {
        let ads = hash_bytes(&height.to_le_bytes());
        let skip = Digest::ZERO;
        let nonce = mine_nonce(&prev, ts, &ads, &skip, d);
        Block {
            header: BlockHeader {
                height,
                prev_hash: prev,
                timestamp: ts,
                nonce,
                ads_root: ads,
                skiplist_root: skip,
            },
            objects: vec![Object::new(height, ts, vec![1], vec!["k".into()])],
        }
    }

    #[test]
    fn append_and_lookup() {
        let d = Difficulty(4);
        let mut store = ChainStore::new(d);
        let b0 = mk_block(Digest::ZERO, 0, 10, d);
        let h0 = b0.block_hash();
        store.append(b0).unwrap();
        store.append(mk_block(h0, 1, 20, d)).unwrap();
        assert_eq!(store.height(), Some(1));
        assert_eq!(store.block(0).unwrap().header.timestamp, 10);
        assert!(store.block_by_hash(&h0).is_some());
        assert_eq!(store.heights_in_window(15, 25), vec![1]);
    }

    #[test]
    fn broken_link_rejected() {
        let d = Difficulty(4);
        let mut store = ChainStore::new(d);
        store.append(mk_block(Digest::ZERO, 0, 10, d)).unwrap();
        let bad = mk_block(hash_bytes(b"wrong"), 1, 20, d);
        assert!(matches!(store.append(bad), Err(ChainError::BrokenLink { .. })));
    }

    #[test]
    fn wrong_height_rejected() {
        let d = Difficulty(4);
        let mut store = ChainStore::new(d);
        let b0 = mk_block(Digest::ZERO, 0, 10, d);
        let h0 = b0.block_hash();
        store.append(b0).unwrap();
        let bad = mk_block(h0, 5, 20, d);
        assert!(matches!(store.append(bad), Err(ChainError::WrongHeight { .. })));
    }

    #[test]
    fn bad_pow_rejected() {
        let d = Difficulty(12);
        let mut store = ChainStore::new(d);
        let mut b0 = mk_block(Digest::ZERO, 0, 10, Difficulty(0));
        b0.header.nonce = 0; // almost surely fails difficulty 12
        if !b0.header.verify_pow(d) {
            assert_eq!(store.append(b0), Err(ChainError::InvalidPow));
        }
    }

    #[test]
    fn timestamp_regression_rejected() {
        let d = Difficulty(0);
        let mut store = ChainStore::new(d);
        let b0 = mk_block(Digest::ZERO, 0, 10, d);
        let h0 = b0.block_hash();
        store.append(b0).unwrap();
        assert_eq!(store.append(mk_block(h0, 1, 5, d)), Err(ChainError::TimestampRegression));
    }

    #[test]
    fn light_client_follows_chain() {
        let d = Difficulty(4);
        let mut store = ChainStore::new(d);
        let mut light = LightClient::new(d);
        let mut prev = Digest::ZERO;
        for i in 0..5 {
            let b = mk_block(prev, i, 10 * (i + 1), d);
            prev = b.block_hash();
            light.sync_header(b.header.clone()).unwrap();
            store.append(b).unwrap();
        }
        assert_eq!(light.len(), 5);
        assert_eq!(light.block_hash(4).unwrap(), store.tip_hash());
        assert!(light.storage_bits() > 0);
    }

    #[test]
    fn light_client_rejects_tampered_header() {
        let d = Difficulty(4);
        let mut light = LightClient::new(d);
        let b0 = mk_block(Digest::ZERO, 0, 10, d);
        light.sync_header(b0.header.clone()).unwrap();
        let mut b1 = mk_block(b0.block_hash(), 1, 20, d);
        b1.header.ads_root = hash_bytes(b"tampered"); // invalidates PoW binding
        assert!(light.sync_header(b1.header).is_err());
    }
}
