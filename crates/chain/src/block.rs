//! Blocks and block headers (paper Figs. 2 & 4).

use serde::{Deserialize, Serialize};
use vchain_hash::{hash_concat, Digest};

use crate::object::Object;
use crate::pow::{verify_nonce, Difficulty};

/// The block header kept by *every* node, including light clients.
///
/// vChain extends the classic header with `ads_root` (committing the
/// intra-block authenticated index, the paper's MerkleRoot over Fig. 6) and
/// `skiplist_root` (committing the inter-block index, Fig. 7;
/// `Digest::ZERO` when the deployment does not use one).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockHeader {
    pub height: u64,
    /// `PreBkHash`.
    pub prev_hash: Digest,
    /// `TS` — the block creation timestamp.
    pub timestamp: u64,
    /// `ConsProof` — the PoW nonce.
    pub nonce: u64,
    /// Commitment to the authenticated intra-block structure.
    pub ads_root: Digest,
    /// Commitment to the inter-block skip-list index (zero if unused).
    pub skiplist_root: Digest,
}

impl BlockHeader {
    /// The block hash (`hash(header)`), chaining consecutive blocks.
    pub fn block_hash(&self) -> Digest {
        hash_concat(&[
            b"vchain/header",
            &self.height.to_le_bytes(),
            &self.prev_hash.0,
            &self.timestamp.to_le_bytes(),
            &self.nonce.to_le_bytes(),
            &self.ads_root.0,
            &self.skiplist_root.0,
        ])
    }

    /// Nominal header size in bits for the light-node storage metric
    /// (paper §9.1 reports 800 bits without and 960 bits with the
    /// inter-block index, under 160-bit hashes; ours scale with SHA-256).
    pub fn size_bits(&self) -> usize {
        let hash_bits = Digest::LEN * 8;
        let fixed = 64 + 64 + 64; // height + timestamp + nonce
        let skip = if self.skiplist_root == Digest::ZERO { 0 } else { hash_bits };
        fixed + 2 * hash_bits + skip // prev + ads (+ optional skiplist)
    }

    /// Validate the consensus proof.
    pub fn verify_pow(&self, difficulty: Difficulty) -> bool {
        verify_nonce(
            &self.prev_hash,
            self.timestamp,
            &self.ads_root,
            &self.skiplist_root,
            self.nonce,
            difficulty,
        )
    }
}

/// A full block: header plus the object payload (full nodes only).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    pub header: BlockHeader,
    pub objects: Vec<Object>,
}

impl Block {
    pub fn block_hash(&self) -> Digest {
        self.header.block_hash()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vchain_hash::hash_bytes;

    fn header() -> BlockHeader {
        BlockHeader {
            height: 3,
            prev_hash: hash_bytes(b"prev"),
            timestamp: 99,
            nonce: 7,
            ads_root: hash_bytes(b"ads"),
            skiplist_root: Digest::ZERO,
        }
    }

    #[test]
    fn hash_binds_fields() {
        let h = header();
        for f in 0..5 {
            let mut m = h.clone();
            match f {
                0 => m.height += 1,
                1 => m.prev_hash = hash_bytes(b"other"),
                2 => m.timestamp += 1,
                3 => m.nonce += 1,
                _ => m.ads_root = hash_bytes(b"other"),
            }
            assert_ne!(m.block_hash(), h.block_hash(), "field {f} not bound");
        }
    }

    #[test]
    fn size_accounting() {
        let h = header();
        let without = h.size_bits();
        let mut with = h.clone();
        with.skiplist_root = hash_bytes(b"skip");
        assert_eq!(with.size_bits(), without + 256);
    }
}
