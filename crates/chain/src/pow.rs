//! Simulated proof-of-work consensus (paper §2).
//!
//! `ConsProof` is a nonce such that
//! `hash(PreBkHash | TS | ads_root | skiplist_root | nonce)` has
//! `difficulty` leading zero bits. Real networks use difficulties in the
//! 70-bit range; the simulation defaults to a small value so mining cost
//! does not drown out the ADS construction cost the experiments measure.

use vchain_hash::{hash_concat, Digest};

/// Number of leading zero bits required of the block hash.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Difficulty(pub u32);

impl Default for Difficulty {
    fn default() -> Self {
        Difficulty(8)
    }
}

fn pow_digest(
    prev: &Digest,
    ts: u64,
    ads_root: &Digest,
    skiplist_root: &Digest,
    nonce: u64,
) -> Digest {
    hash_concat(&[
        b"vchain/pow",
        &prev.0,
        &ts.to_le_bytes(),
        &ads_root.0,
        &skiplist_root.0,
        &nonce.to_le_bytes(),
    ])
}

fn leading_zero_bits(d: &Digest) -> u32 {
    let mut bits = 0;
    for b in d.0 {
        if b == 0 {
            bits += 8;
        } else {
            bits += b.leading_zeros();
            break;
        }
    }
    bits
}

/// Search for a satisfying nonce (the miner's job).
pub fn mine_nonce(
    prev: &Digest,
    ts: u64,
    ads_root: &Digest,
    skiplist_root: &Digest,
    difficulty: Difficulty,
) -> u64 {
    let mut nonce = 0u64;
    loop {
        if leading_zero_bits(&pow_digest(prev, ts, ads_root, skiplist_root, nonce)) >= difficulty.0
        {
            return nonce;
        }
        nonce += 1;
    }
}

/// Check a consensus proof (every full node's job on block receipt).
pub fn verify_nonce(
    prev: &Digest,
    ts: u64,
    ads_root: &Digest,
    skiplist_root: &Digest,
    nonce: u64,
    difficulty: Difficulty,
) -> bool {
    leading_zero_bits(&pow_digest(prev, ts, ads_root, skiplist_root, nonce)) >= difficulty.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use vchain_hash::hash_bytes;

    #[test]
    fn mined_nonce_verifies() {
        let prev = hash_bytes(b"prev");
        let ads = hash_bytes(b"ads");
        let skip = hash_bytes(b"skip");
        let d = Difficulty(10);
        let nonce = mine_nonce(&prev, 42, &ads, &skip, d);
        assert!(verify_nonce(&prev, 42, &ads, &skip, nonce, d));
        // and binds its inputs
        assert!(!verify_nonce(&prev, 43, &ads, &skip, nonce, Difficulty(32)));
    }

    #[test]
    fn zero_difficulty_always_passes() {
        let z = Digest::ZERO;
        assert!(verify_nonce(&z, 0, &z, &z, 0, Difficulty(0)));
    }

    #[test]
    fn leading_zeros_counts_correctly() {
        let mut d = Digest::ZERO;
        d.0[0] = 0b0000_1000;
        assert_eq!(leading_zero_bits(&d), 4);
        let full = Digest::ZERO;
        assert_eq!(leading_zero_bits(&full), 256);
    }
}
