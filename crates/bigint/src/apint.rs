//! A minimal arbitrary-precision unsigned integer.
//!
//! Used only at start-up to derive pairing exponents (e.g. the BLS12-381
//! field characteristic from the curve parameter `x`, or the hard part of the
//! final exponentiation `(p⁴ − p² + 1)/r`). Performance is irrelevant here;
//! simplicity and obvious correctness are the goals.

use core::cmp::Ordering;
use core::fmt;

/// Arbitrary-precision unsigned integer, little-endian `u64` limbs with no
/// trailing zero limbs (canonical form).
#[derive(Clone, PartialEq, Eq, Default)]
pub struct ApInt {
    limbs: Vec<u64>,
}

impl ApInt {
    pub fn zero() -> Self {
        Self { limbs: Vec::new() }
    }

    pub fn one() -> Self {
        Self::from_u64(1)
    }

    pub fn from_u64(x: u64) -> Self {
        let mut v = Self { limbs: vec![x] };
        v.normalize();
        v
    }

    pub fn from_limbs(limbs: &[u64]) -> Self {
        let mut v = Self { limbs: limbs.to_vec() };
        v.normalize();
        v
    }

    /// Little-endian limbs (canonical, no trailing zeros).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => 64 * (self.limbs.len() - 1) + (64 - top.leading_zeros() as usize),
        }
    }

    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        limb < self.limbs.len() && (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    pub fn add(&self, rhs: &Self) -> Self {
        let mut out = Vec::with_capacity(self.limbs.len().max(rhs.limbs.len()) + 1);
        let mut carry = 0u64;
        for i in 0..self.limbs.len().max(rhs.limbs.len()) {
            let a = self.limbs.get(i).copied().unwrap_or(0);
            let b = rhs.limbs.get(i).copied().unwrap_or(0);
            let (s, c1) = a.overflowing_add(b);
            let (s, c2) = s.overflowing_add(carry);
            out.push(s);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        let mut v = Self { limbs: out };
        v.normalize();
        v
    }

    /// `self - rhs`; panics if `rhs > self`.
    pub fn sub(&self, rhs: &Self) -> Self {
        assert!(self >= rhs, "ApInt subtraction underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i];
            let b = rhs.limbs.get(i).copied().unwrap_or(0);
            let (d, b1) = a.overflowing_sub(b);
            let (d, b2) = d.overflowing_sub(borrow);
            out.push(d);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        let mut v = Self { limbs: out };
        v.normalize();
        v
    }

    pub fn mul(&self, rhs: &Self) -> Self {
        if self.is_zero() || rhs.is_zero() {
            return Self::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            out[i + rhs.limbs.len()] = carry as u64;
        }
        let mut v = Self { limbs: out };
        v.normalize();
        v
    }

    pub fn shl1(&self) -> Self {
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u64;
        for &l in &self.limbs {
            out.push((l << 1) | carry);
            carry = l >> 63;
        }
        if carry != 0 {
            out.push(carry);
        }
        let mut v = Self { limbs: out };
        v.normalize();
        v
    }

    /// Binary long division: returns `(quotient, remainder)`.
    /// Panics on division by zero.
    pub fn divrem(&self, divisor: &Self) -> (Self, Self) {
        assert!(!divisor.is_zero(), "ApInt division by zero");
        if self < divisor {
            return (Self::zero(), self.clone());
        }
        let bits = self.bit_len();
        let mut quotient_limbs = vec![0u64; self.limbs.len()];
        let mut rem = Self::zero();
        for i in (0..bits).rev() {
            rem = rem.shl1();
            if self.bit(i) {
                rem = rem.add(&Self::one());
            }
            if &rem >= divisor {
                rem = rem.sub(divisor);
                quotient_limbs[i / 64] |= 1u64 << (i % 64);
            }
        }
        let mut q = Self { limbs: quotient_limbs };
        q.normalize();
        (q, rem)
    }

    /// Exact power with small exponent (start-up derivations only).
    pub fn pow(&self, exp: u32) -> Self {
        let mut acc = Self::one();
        for _ in 0..exp {
            acc = acc.mul(self);
        }
        acc
    }

    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".into();
        }
        let mut s = String::new();
        for (i, l) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                s.push_str(&format!("{l:x}"));
            } else {
                s.push_str(&format!("{l:016x}"));
            }
        }
        s
    }

    pub fn from_hex(s: &str) -> Self {
        let s = s.trim().trim_start_matches("0x");
        let mut limbs = vec![0u64; s.len() / 16 + 1];
        let mut idx = 0usize;
        let mut shift = 0u32;
        for &b in s.as_bytes().iter().rev() {
            if b == b'_' {
                continue;
            }
            let d = (b as char).to_digit(16).expect("invalid hex digit") as u64;
            if shift >= 64 {
                idx += 1;
                shift = 0;
            }
            limbs[idx] |= d << shift;
            shift += 4;
        }
        let mut v = Self { limbs };
        v.normalize();
        v
    }
}

impl Ord for ApInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {}
            ord => return ord,
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for ApInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for ApInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_arithmetic() {
        let a = ApInt::from_u64(u64::MAX);
        let b = a.add(&ApInt::one());
        assert_eq!(b.to_hex(), "10000000000000000");
        assert_eq!(b.sub(&ApInt::one()), a);
        let sq = a.mul(&a);
        assert_eq!(sq.to_hex(), "fffffffffffffffe0000000000000001");
    }

    #[test]
    fn divrem_exact_and_inexact() {
        let a = ApInt::from_hex("fffffffffffffffe0000000000000001");
        let b = ApInt::from_u64(u64::MAX);
        let (q, r) = a.divrem(&b);
        assert_eq!(q, b);
        assert!(r.is_zero());

        let (q, r) = ApInt::from_u64(17).divrem(&ApInt::from_u64(5));
        assert_eq!(q, ApInt::from_u64(3));
        assert_eq!(r, ApInt::from_u64(2));
    }

    #[test]
    fn divrem_small_by_large() {
        let (q, r) = ApInt::from_u64(3).divrem(&ApInt::from_hex("ffffffffffffffffff"));
        assert!(q.is_zero());
        assert_eq!(r, ApInt::from_u64(3));
    }

    #[test]
    fn pow_and_hex() {
        let two = ApInt::from_u64(2);
        assert_eq!(two.pow(130).to_hex(), "400000000000000000000000000000000");
        assert_eq!(ApInt::from_hex("400000000000000000000000000000000"), two.pow(130));
    }

    #[test]
    fn bls_characteristic_from_x() {
        // p = ((|x| + 1)^2 * r) / 3 - |x| with r = |x|^4 - |x|^2 + 1,
        // for the BLS12-381 parameter x = -0xd201000000010000.
        let x = ApInt::from_u64(0xd201_0000_0001_0000);
        let r = x.pow(4).sub(&x.pow(2)).add(&ApInt::one());
        assert_eq!(r.to_hex(), "73eda753299d7d483339d80809a1d80553bda402fffe5bfeffffffff00000001");
        let xp1 = x.add(&ApInt::one());
        let num = xp1.mul(&xp1).mul(&r);
        let (q, rem) = num.divrem(&ApInt::from_u64(3));
        assert!(rem.is_zero());
        let p = q.sub(&x);
        assert_eq!(
            p.to_hex(),
            "1a0111ea397fe69a4b1ba7b6434bacd764774b84f38512bf6730d2a0f6b0f6241eabfffeb153ffffb9feffffffffaaab"
        );
    }

    #[test]
    fn bit_len_and_bits() {
        let v = ApInt::from_hex("10000000000000000");
        assert_eq!(v.bit_len(), 65);
        assert!(v.bit(64));
        assert!(!v.bit(63));
        assert_eq!(ApInt::zero().bit_len(), 0);
    }
}
