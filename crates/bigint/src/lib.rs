//! Fixed-width and arbitrary-precision big integers.
//!
//! This crate is the lowest substrate of the vChain reproduction: it provides
//! the limb arithmetic on which the BLS12-381 fields (`vchain-pairing`)
//! are built.
//!
//! Two layers:
//!
//! * [`Uint`] — a `[u64; N]` little-endian fixed-width unsigned integer with
//!   carry-propagating arithmetic and CIOS Montgomery multiplication
//!   ([`MontParams`]). `N = 4` covers the scalar field `Fr` (255 bits) and
//!   `N = 6` covers the base field `Fp` (381 bits).
//! * [`ApInt`] — a small heap-allocated unsigned integer used once at
//!   start-up to derive pairing constants (e.g. `(p⁴ − p² + 1)/r`) instead of
//!   hard-coding them; see `vchain-pairing::params`.
//!
//! On top of the reduced-operand layer, [`DoubleWide`] keeps *unreduced*
//! `2N`-limb products so that sums of products can share a single
//! Montgomery reduction (lazy reduction; see [`dwide`]) — the substrate of
//! the `vchain-pairing` tower's per-output-coefficient reduction scheme.

pub mod apint;
#[cfg(target_arch = "x86_64")]
pub mod asm;
#[cfg(target_arch = "aarch64")]
pub mod asm_aarch64;
pub mod dwide;
pub mod mont;
pub mod uint;

pub use apint::ApInt;
pub use dwide::DoubleWide;
pub use mont::MontParams;
pub use uint::Uint;

/// `U256`: four 64-bit limbs, used for the BLS12-381 scalar field.
pub type U256 = Uint<4>;
/// `U384`: six 64-bit limbs, used for the BLS12-381 base field.
pub type U384 = Uint<6>;
