//! Double-width accumulators for lazy Montgomery reduction.
//!
//! A Montgomery multiplication interleaves two passes of equal cost: the
//! schoolbook product `a·b` and the reduction by `m`. The field towers
//! built on top of this crate (`vchain-pairing`) sum many products per
//! *output coefficient* — `c1 = a0·b1 + a1·b0`, Karatsuba cross terms,
//! line-evaluation folds — and an eager `mont_mul` pays the reduction pass
//! for every summand. [`DoubleWide`] keeps the *unreduced* `2N`-limb
//! product so the sums happen in double-width form and a single
//! [`MontParams::montgomery_reduce`] closes each output coefficient
//! (Aranha et al.'s lazy-reduction technique).
//!
//! ## The `m·R` discipline
//!
//! Every stored value is a residue modulo `m·R` (`R = 2^{64N}`), kept in
//! `[0, m·R)`. This single invariant makes the whole scheme composable:
//!
//! * `montgomery_reduce(X) ≡ X·R⁻¹ (mod m)` holds for *any* `X`, and
//!   `X < m·R` bounds the raw result below `2m`, so one conditional
//!   subtraction canonicalizes — adding or subtracting `m·R` never changes
//!   the reduced value.
//! * `m < 2^{64N−1}` (asserted at [`MontParams::new`]) gives
//!   `m·R < 2^{128N−1}`, so the sum of two in-range values fits `2N`
//!   limbs with a bit to spare and *one* conditional subtraction of `m·R`
//!   restores the invariant. Subtraction symmetrically adds back one
//!   `m·R` on borrow. Both fixups touch only the high `N` limbs, because
//!   `m·R` is `m` shifted by `N` limbs.
//! * a product of two reduced operands (`< m`) is `< m² < m·R`, so
//!   [`MontParams::mul_wide`] establishes the invariant for free.
//!
//! How many products may accumulate *without* per-add fixups before the
//! invariant breaks is the headroom quotient `⌊m·R / m²⌋ = ⌊R/m⌋` — the
//! towers encode it as a compile-time constant and pin it by property
//! test; see [`MontParams::wide_headroom`] and the `vchain-pairing`
//! `lazy` module. The checked ops below never rely on it.

use crate::mont::MontParams;
use crate::uint::Uint;

/// An unreduced double-width value: `lo + hi·2^{64N}`, i.e. `2N` limbs
/// split into two [`Uint`] halves (little-endian: `lo` first).
///
/// Values produced and consumed by the [`MontParams`] wide ops maintain
/// the invariant `hi < m` (equivalently: the value is below `m·R`), which
/// is exactly the precondition of [`MontParams::montgomery_reduce`]. The
/// raw carrying ops on the type itself ([`DoubleWide::adc`],
/// [`DoubleWide::sbb`]) track overflow explicitly and leave the invariant
/// to the caller.
/// `repr(C)` (with `Uint` being `repr(transparent)` over `[u64; N]`):
/// the struct is layout-identical to `[u64; 2N]` little-endian, so the
/// assembly kernels read and write it through a single pointer with no
/// copying into scratch buffers.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
#[repr(C)]
pub struct DoubleWide<const N: usize> {
    /// The low `N` limbs.
    pub lo: Uint<N>,
    /// The high `N` limbs.
    pub hi: Uint<N>,
}

impl<const N: usize> DoubleWide<N> {
    /// The value 0.
    pub const ZERO: Self = Self { lo: Uint::ZERO, hi: Uint::ZERO };

    /// Is this the value 0?
    pub fn is_zero(&self) -> bool {
        self.lo.is_zero() && self.hi.is_zero()
    }

    /// Assemble from a `2N`-limb little-endian slice.
    pub fn from_limbs(limbs: &[u64]) -> Self {
        assert_eq!(limbs.len(), 2 * N, "DoubleWide<{N}> needs exactly {} limbs", 2 * N);
        let mut lo = [0u64; N];
        let mut hi = [0u64; N];
        lo.copy_from_slice(&limbs[..N]);
        hi.copy_from_slice(&limbs[N..]);
        Self { lo: Uint(lo), hi: Uint(hi) }
    }

    /// The `2N` limbs, little-endian.
    pub fn to_limbs(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(2 * N);
        out.extend_from_slice(&self.lo.0);
        out.extend_from_slice(&self.hi.0);
        out
    }

    /// Carrying addition across all `2N` limbs; returns the sum and the
    /// carry-out bit. Does **not** re-establish the `< m·R` invariant —
    /// use [`MontParams::wide_add`] for that.
    ///
    /// One straight-line carry chain over the seam (no branch on the
    /// lo-half carry — that carry is data-dependent and a conditional
    /// second pass mispredicts half the time on the hot tower path).
    #[inline]
    pub fn adc(&self, rhs: &Self) -> (Self, bool) {
        let mut lo = [0u64; N];
        let mut hi = [0u64; N];
        let mut carry = 0u64;
        for (i, l) in lo.iter_mut().enumerate() {
            let s = self.lo.0[i] as u128 + rhs.lo.0[i] as u128 + carry as u128;
            *l = s as u64;
            carry = (s >> 64) as u64;
        }
        for (i, h) in hi.iter_mut().enumerate() {
            let s = self.hi.0[i] as u128 + rhs.hi.0[i] as u128 + carry as u128;
            *h = s as u64;
            carry = (s >> 64) as u64;
        }
        (Self { lo: Uint(lo), hi: Uint(hi) }, carry != 0)
    }

    /// Borrowing subtraction across all `2N` limbs; returns the difference
    /// (two's-complement on underflow) and whether a borrow occurred.
    /// Branch-free for the same reason as [`DoubleWide::adc`].
    #[inline]
    pub fn sbb(&self, rhs: &Self) -> (Self, bool) {
        let mut lo = [0u64; N];
        let mut hi = [0u64; N];
        let mut borrow = 0u64;
        for (i, l) in lo.iter_mut().enumerate() {
            let d = (self.lo.0[i] as u128).wrapping_sub(rhs.lo.0[i] as u128 + borrow as u128);
            *l = d as u64;
            borrow = ((d >> 64) as u64) & 1;
        }
        for (i, h) in hi.iter_mut().enumerate() {
            let d = (self.hi.0[i] as u128).wrapping_sub(rhs.hi.0[i] as u128 + borrow as u128);
            *h = d as u64;
            borrow = ((d >> 64) as u64) & 1;
        }
        (Self { lo: Uint(lo), hi: Uint(hi) }, borrow != 0)
    }
}

impl<const N: usize> MontParams<N> {
    /// Full double-width product of two *reduced* operands, without any
    /// Montgomery reduction. The result is `< m² < m·R`, so the
    /// [`DoubleWide`] invariant holds by construction.
    ///
    /// Dispatches to the BMI2+ADX kernel on supporting x86_64 CPUs; the
    /// portable path is [`MontParams::mul_wide_portable`], the reference
    /// the kernels are property-tested against.
    #[inline]
    pub fn mul_wide(&self, a: &Uint<N>, b: &Uint<N>) -> DoubleWide<N> {
        debug_assert!(a < &self.modulus && b < &self.modulus, "mul_wide operands must be reduced");
        #[cfg(target_arch = "x86_64")]
        if self.use_asm && N == 6 {
            // DoubleWide is repr(C) = [u64; 12]; the kernel writes every
            // limb, so MaybeUninit avoids a dead 96-byte zero-fill.
            let mut out = core::mem::MaybeUninit::<DoubleWide<N>>::uninit();
            return unsafe {
                crate::asm::mul_wide_6(
                    a.0[..].try_into().expect("N == 6"),
                    b.0[..].try_into().expect("N == 6"),
                    out.as_mut_ptr().cast::<u64>(),
                );
                out.assume_init()
            };
        }
        self.mul_wide_portable(a, b)
    }

    /// Portable schoolbook double-width product (see [`MontParams::mul_wide`]).
    pub fn mul_wide_portable(&self, a: &Uint<N>, b: &Uint<N>) -> DoubleWide<N> {
        let mut out = [[0u64; N]; 2];
        for i in 0..N {
            let mut carry = 0u128;
            for j in 0..N {
                let (oi, oj) = ((i + j) / N, (i + j) % N);
                let cur = out[oi][oj] as u128 + (a.0[i] as u128) * (b.0[j] as u128) + carry;
                out[oi][oj] = cur as u64;
                carry = cur >> 64;
            }
            out[(i + N) / N][i % N] = carry as u64;
        }
        DoubleWide { lo: Uint(out[0]), hi: Uint(out[1]) }
    }

    /// Double-width addition modulo `m·R`: the sum, minus one `m·R` when it
    /// would leave `[0, m·R)`. Preserves the [`DoubleWide`] invariant.
    #[inline]
    pub fn wide_add(&self, x: &DoubleWide<N>, y: &DoubleWide<N>) -> DoubleWide<N> {
        #[cfg(target_arch = "x86_64")]
        if self.use_asm && N == 6 {
            let mut out = core::mem::MaybeUninit::<DoubleWide<N>>::uninit();
            return unsafe {
                crate::asm::wide_add_mod_6(
                    (x as *const DoubleWide<N>).cast::<u64>(),
                    (y as *const DoubleWide<N>).cast::<u64>(),
                    self.modulus.0[..].try_into().expect("N == 6"),
                    out.as_mut_ptr().cast::<u64>(),
                );
                out.assume_init()
            };
        }
        self.wide_add_portable(x, y)
    }

    /// Portable fallback and property-test reference for
    /// [`MontParams::wide_add`].
    pub fn wide_add_portable(&self, x: &DoubleWide<N>, y: &DoubleWide<N>) -> DoubleWide<N> {
        // x + y < 2mR < 2^{128N}: the full add cannot carry out.
        let (sum, carry) = x.adc(y);
        debug_assert!(!carry, "wide_add inputs violated the m·R invariant");
        // sum ≥ m·R ⟺ hi ≥ m (m·R is m shifted into the high half).
        // Branchless: always compute hi − m, keep it unless it borrowed.
        // The fixup condition is data-dependent coin-flip noise on the hot
        // tower path, so a branch here would mispredict constantly.
        let (cand, borrow) = sum.hi.sbb(&self.modulus);
        let keep_sum = (borrow as u64).wrapping_neg();
        let mut hi = [0u64; N];
        for (i, h) in hi.iter_mut().enumerate() {
            *h = cand.0[i] ^ ((cand.0[i] ^ sum.hi.0[i]) & keep_sum);
        }
        DoubleWide { lo: sum.lo, hi: Uint(hi) }
    }

    /// Double-width subtraction modulo `m·R`: `x − y`, plus one `m·R` on
    /// borrow. Preserves the [`DoubleWide`] invariant.
    #[inline]
    pub fn wide_sub(&self, x: &DoubleWide<N>, y: &DoubleWide<N>) -> DoubleWide<N> {
        #[cfg(target_arch = "x86_64")]
        if self.use_asm && N == 6 {
            let mut out = core::mem::MaybeUninit::<DoubleWide<N>>::uninit();
            return unsafe {
                crate::asm::wide_sub_mod_6(
                    (x as *const DoubleWide<N>).cast::<u64>(),
                    (y as *const DoubleWide<N>).cast::<u64>(),
                    self.modulus.0[..].try_into().expect("N == 6"),
                    out.as_mut_ptr().cast::<u64>(),
                );
                out.assume_init()
            };
        }
        self.wide_sub_portable(x, y)
    }

    /// Portable fallback and property-test reference for
    /// [`MontParams::wide_sub`].
    pub fn wide_sub_portable(&self, x: &DoubleWide<N>, y: &DoubleWide<N>) -> DoubleWide<N> {
        // On borrow the diff wrapped by 2^{128N}; adding m to the high half
        // adds m·R, and the discarded carry-out cancels the wrap exactly
        // (x − y + m·R ∈ [0, m·R) because |x − y| < m·R). Branchless:
        // unconditionally add m masked by the borrow.
        let (diff, borrow) = x.sbb(y);
        let mask = (borrow as u64).wrapping_neg();
        let mut hi = [0u64; N];
        let mut carry = 0u64;
        for (i, h) in hi.iter_mut().enumerate() {
            let s = diff.hi.0[i] as u128 + (self.modulus.0[i] & mask) as u128 + carry as u128;
            *h = s as u64;
            carry = (s >> 64) as u64;
        }
        DoubleWide { lo: diff.lo, hi: Uint(hi) }
    }

    /// `2x` modulo `m·R`.
    #[inline]
    pub fn wide_double(&self, x: &DoubleWide<N>) -> DoubleWide<N> {
        self.wide_add(x, x)
    }

    /// How many *exact* double-width products (each `< m²`) can be summed
    /// with plain carrying adds before the total can reach `m·R`:
    /// `⌊R/m⌋`. Callers that skip the per-add fixup of
    /// [`MontParams::wide_add`] must stay at or below this bound (the
    /// lazy tower encodes its per-op term counts as compile-time
    /// constants and asserts them against this at start-up).
    pub fn wide_headroom(&self) -> u64 {
        // The quotient is tiny for any cryptographic modulus (its top limb
        // is nonzero), so count it by repeated addition: the largest q with
        // q·m ≤ R−1. Start-up-only, never on a hot path.
        let mut q = 0u64;
        let mut acc = Uint::<N>::ZERO; // running q·m
        loop {
            let (next, carry) = acc.adc(&self.modulus);
            if carry {
                return q;
            }
            acc = next;
            q += 1;
            assert!(q < 1 << 16, "modulus implausibly small");
        }
    }

    /// Montgomery reduction of a double-width value: `x·R⁻¹ mod m`,
    /// canonical. Requires the [`DoubleWide`] invariant `x < m·R` (debug-
    /// asserted), which bounds the raw reduction below `2m`.
    ///
    /// Dispatches to the BMI2+ADX kernel on supporting x86_64 CPUs; the
    /// portable path is [`MontParams::montgomery_reduce_portable`].
    #[inline]
    pub fn montgomery_reduce(&self, x: &DoubleWide<N>) -> Uint<N> {
        debug_assert!(x.hi < self.modulus, "montgomery_reduce input must be < m·R");
        #[cfg(target_arch = "x86_64")]
        if self.use_asm && N == 6 {
            // DoubleWide is repr(C) = [u64; 12]: hand the kernel the value
            // in place instead of copying it into a scratch buffer.
            let (out, hi) = unsafe {
                crate::asm::mont_redc_6(
                    (x as *const DoubleWide<N>).cast::<u64>(),
                    self.modulus.0[..].try_into().expect("N == 6"),
                    self.n0inv,
                )
            };
            let mut r = [0u64; N];
            r.copy_from_slice(&out);
            return self.reduce_once(Uint(r), hi);
        }
        self.montgomery_reduce_portable(x)
    }

    /// Portable Montgomery reduction of a double-width value (the
    /// dispatch fallback and the kernel's property-test reference).
    ///
    /// Classic limb-by-limb REDC: each of the `N` rounds cancels the
    /// current lowest limb with one `k·m` accumulation; the running
    /// overflow of the high half is carried in `carry2` (at most one bit
    /// per round, because each round adds `< 2^{64}·m < 2^{64(N+1)−1}`).
    pub fn montgomery_reduce_portable(&self, x: &DoubleWide<N>) -> Uint<N> {
        let m = &self.modulus.0;
        // `[[u64; N]; 2]` instead of a flat `[u64; 2N]` (which stable const
        // generics cannot express) — the split-index arithmetic folds into
        // constants at monomorphization, and nothing heap-allocates.
        let mut t = [x.lo.0, x.hi.0];
        let mut carry2 = 0u64;
        for i in 0..N {
            let k = t[0][i].wrapping_mul(self.n0inv);
            let mut carry = 0u64;
            for (j, &mj) in m.iter().enumerate() {
                let (ti, tj) = ((i + j) / N, (i + j) % N);
                let cur = t[ti][tj] as u128 + (k as u128) * (mj as u128) + carry as u128;
                t[ti][tj] = cur as u64;
                carry = (cur >> 64) as u64;
            }
            debug_assert_eq!(t[0][i], 0, "round {i} must cancel its low limb");
            let cur = t[1][i] as u128 + carry as u128 + carry2 as u128;
            t[1][i] = cur as u64;
            carry2 = (cur >> 64) as u64;
        }
        self.reduce_once(Uint(t[1]), carry2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{U256, U384};

    fn fp_params() -> MontParams<6> {
        MontParams::new(U384::from_hex(
            "1a0111ea397fe69a4b1ba7b6434bacd764774b84f38512bf6730d2a0f6b0f6241eabfffeb153ffffb9feffffffffaaab",
        ))
    }

    fn fr_params() -> MontParams<4> {
        MontParams::new(U256::from_hex(
            "73eda753299d7d483339d80809a1d80553bda402fffe5bfeffffffff00000001",
        ))
    }

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn random_reduced<const N: usize>(p: &MontParams<N>, state: &mut u64) -> Uint<N> {
        loop {
            let mut limbs = [0u64; N];
            for l in &mut limbs {
                *l = xorshift(state);
            }
            let v = Uint(limbs);
            if v < p.modulus {
                return v;
            }
        }
    }

    #[test]
    fn mul_wide_matches_uint_mul_wide() {
        let p = fp_params();
        let mut state = 0xdead_beef_cafe_f00du64;
        for _ in 0..500 {
            let a = random_reduced(&p, &mut state);
            let b = random_reduced(&p, &mut state);
            let w = p.mul_wide(&a, &b);
            assert_eq!(w.to_limbs(), a.mul_wide(&b));
            assert_eq!(w, p.mul_wide_portable(&a, &b));
            assert!(w.hi < p.modulus, "product must satisfy the m·R invariant");
        }
        // boundary operands exercise the kernels' carry chains
        let (m1, _) = p.modulus.sbb(&Uint::one());
        for a in [Uint::ZERO, Uint::one(), m1] {
            for b in [Uint::ZERO, Uint::one(), m1] {
                assert_eq!(p.mul_wide(&a, &b).to_limbs(), a.mul_wide(&b));
            }
        }
    }

    #[test]
    fn montgomery_reduce_matches_mont_mul() {
        // reduce(mul_wide(a, b)) must equal mont_mul(a, b) for both widths.
        let fp = fp_params();
        let fr = fr_params();
        let mut state = 0x1234_5678_9abc_def0u64;
        for _ in 0..500 {
            let a = random_reduced(&fp, &mut state);
            let b = random_reduced(&fp, &mut state);
            let w = fp.mul_wide(&a, &b);
            assert_eq!(fp.montgomery_reduce(&w), fp.mont_mul(&a, &b));
            assert_eq!(fp.montgomery_reduce_portable(&w), fp.mont_mul(&a, &b));
            let a = random_reduced(&fr, &mut state);
            let b = random_reduced(&fr, &mut state);
            let w = fr.mul_wide(&a, &b);
            assert_eq!(fr.montgomery_reduce(&w), fr.mont_mul(&a, &b));
        }
    }

    #[test]
    fn lazy_sum_of_products_matches_eager() {
        // reduce(Σ aᵢ·bᵢ) == Σ mont_mul(aᵢ, bᵢ) (mod m) — the whole point.
        let p = fp_params();
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for terms in [2usize, 3, 5, 8, 12] {
            let mut acc = DoubleWide::ZERO;
            let mut eager = Uint::<6>::ZERO;
            for _ in 0..terms {
                let a = random_reduced(&p, &mut state);
                let b = random_reduced(&p, &mut state);
                acc = p.wide_add(&acc, &p.mul_wide(&a, &b));
                eager = {
                    let prod = p.mont_mul(&a, &b);
                    let (s, c) = eager.adc(&prod);
                    let (r, borrow) = s.sbb(&p.modulus);
                    if c || !borrow {
                        r
                    } else {
                        s
                    }
                };
            }
            assert_eq!(p.montgomery_reduce(&acc), eager, "{terms} terms");
        }
    }

    #[test]
    fn wide_add_sub_kernels_match_portable() {
        // The asm wide add/sub kernels (when dispatched) must agree with
        // the portable mod-m·R reference on random values and on the
        // boundary values that flip the fixup path.
        let p = fp_params();
        let mut state = 0xfeed_face_dead_beefu64;
        let (m1, _) = p.modulus.sbb(&Uint::one());
        let max_wide = DoubleWide { lo: Uint([u64::MAX; 6]), hi: m1 };
        for _ in 0..500 {
            let a = random_reduced(&p, &mut state);
            let b = random_reduced(&p, &mut state);
            let c = random_reduced(&p, &mut state);
            let d = random_reduced(&p, &mut state);
            let x = p.mul_wide(&a, &b);
            let y = p.mul_wide(&c, &d);
            for (u, v) in [
                (&x, &y),
                (&y, &x),
                (&x, &x),
                (&max_wide, &x),
                (&x, &max_wide),
                (&max_wide, &max_wide),
            ] {
                assert_eq!(p.wide_add(u, v), p.wide_add_portable(u, v));
                assert_eq!(p.wide_sub(u, v), p.wide_sub_portable(u, v));
                assert!(p.wide_add(u, v).hi < p.modulus);
                assert!(p.wide_sub(u, v).hi < p.modulus);
            }
        }
        // zero and the largest in-range value in every combination
        for (u, v) in [(&DoubleWide::ZERO, &max_wide), (&max_wide, &DoubleWide::ZERO)] {
            assert_eq!(p.wide_add(u, v), p.wide_add_portable(u, v));
            assert_eq!(p.wide_sub(u, v), p.wide_sub_portable(u, v));
        }
    }

    #[test]
    fn wide_sub_round_trips() {
        let p = fp_params();
        let mut state = 7u64;
        for _ in 0..200 {
            let a = random_reduced(&p, &mut state);
            let b = random_reduced(&p, &mut state);
            let x = p.mul_wide(&a, &b);
            let c = random_reduced(&p, &mut state);
            let d = random_reduced(&p, &mut state);
            let y = p.mul_wide(&c, &d);
            // (x − y) + y ≡ x and both stay in range
            let diff = p.wide_sub(&x, &y);
            assert!(diff.hi < p.modulus);
            let back = p.wide_add(&diff, &y);
            assert_eq!(p.montgomery_reduce(&back), p.montgomery_reduce(&x));
            // x − x = 0
            assert!(p.wide_sub(&x, &x).is_zero());
        }
    }

    #[test]
    fn adc_sbb_limb_boundaries() {
        // carries must ripple across the lo/hi seam and the top limb
        type D = DoubleWide<4>;
        let ones = |n: usize| {
            let mut l = [0u64; 8];
            for li in l.iter_mut().take(n) {
                *li = u64::MAX;
            }
            D::from_limbs(&l)
        };
        let one = D::from_limbs(&[1, 0, 0, 0, 0, 0, 0, 0]);
        // (2^{256} − 1) + 1 ripples through the seam into hi
        let (sum, carry) = ones(4).adc(&one);
        assert!(!carry);
        assert_eq!(sum.to_limbs(), [0, 0, 0, 0, 1, 0, 0, 0]);
        // (2^{512} − 1) + 1 overflows entirely
        let (sum, carry) = ones(8).adc(&one);
        assert!(carry);
        assert!(sum.is_zero());
        // and subtraction borrows symmetrically
        let (diff, borrow) = sum.sbb(&one);
        assert!(borrow);
        assert_eq!(diff.to_limbs(), ones(8).to_limbs());
        let (diff, borrow) = D::from_limbs(&[0, 0, 0, 0, 1, 0, 0, 0]).sbb(&one);
        assert!(!borrow);
        assert_eq!(diff.to_limbs(), ones(4).to_limbs());
    }

    #[test]
    fn limb_round_trip() {
        let p = fr_params();
        let mut state = 3u64;
        let a = random_reduced(&p, &mut state);
        let b = random_reduced(&p, &mut state);
        let w = p.mul_wide(&a, &b);
        assert_eq!(DoubleWide::<4>::from_limbs(&w.to_limbs()), w);
    }

    #[test]
    fn headroom_matches_field_expectations() {
        // BLS12-381: p has 381 bits in a 384-bit register → ⌊R/p⌋ = 9.
        assert_eq!(fp_params().wide_headroom(), 9);
        // r has 255 bits in 256 → ⌊R/r⌋ = 2 (not enough for deep laziness,
        // which is why the tower only lazifies Fp).
        assert_eq!(fr_params().wide_headroom(), 2);
    }

    #[test]
    fn reduce_of_mr_minus_one_stays_canonical() {
        // the largest in-range value: hi = m−1, lo = R−1
        let p = fr_params();
        let (m1, _) = p.modulus.sbb(&Uint::one());
        let x = DoubleWide { lo: Uint([u64::MAX; 4]), hi: m1 };
        let r = p.montgomery_reduce(&x);
        assert!(r < p.modulus);
        // cross-check against the schoolbook reduce_wide of the same value
        // times R⁻¹: reduce_wide(x) == montgomery_reduce(x)·R … i.e.
        // to_mont(montgomery_reduce(x)) == reduce_wide(x).
        assert_eq!(p.to_mont(&r), p.reduce_wide(&x.to_limbs()));
    }
}
