//! Hand-scheduled x86_64 Montgomery multiplication (BMI2 + ADX).
//!
//! The portable fused-CIOS loop in [`crate::mont`] is limited by how LLVM
//! lowers `u128` carry arithmetic: every carry is extracted with
//! `setb`/`movzbl` sequences and the two logical carry chains of CIOS are
//! serialized through the single CPU carry flag. The `mulx`/`adcx`/`adox`
//! instruction triple was added to x86 precisely for this workload —
//! `mulx` does not touch flags, and `adcx`/`adox` ride two *independent*
//! carry flags (CF and OF) — so one fused CIOS round becomes a straight
//! line of ~40 flag-parallel instructions with no carry materialization.
//!
//! Layout of one round (fully unrolled, register window rotated per round):
//!
//! ```text
//! rdx ← a[i]
//! CF, OF ← 0
//! for j in 0..N:  mulx (hi,lo) ← rdx·b[j];  t[j] +=CF lo;  t[j+1] +=OF hi
//! t[N] += CF + OF
//! rdx ← t[0]·n0inv  (mod 2^64)
//! CF, OF ← 0
//! for j in 0..N:  mulx (hi,lo) ← rdx·m[j];  t[j] +=CF lo;  t[j+1] +=OF hi
//! t[N] += CF + OF                      // t[0] is now 0 → becomes next t[N]
//! ```
//!
//! The rotation means no register moves between rounds: the zeroed `t[0]`
//! is re-used as the incoming (zero) top limb of the next round. Results
//! are compared against the portable path by exhaustive property tests
//! ([`crate::mont`] test module) and the caller performs the final
//! conditional subtraction, so this file only ever deals in raw limbs.
//!
//! Everything here is gated twice: compiled only on `x86_64`, and executed
//! only when run-time CPUID detection ([`supported`]) confirms BMI2 + ADX.

#![cfg(target_arch = "x86_64")]

use core::arch::asm;

/// Run-time check for the BMI2 (`mulx`) and ADX (`adcx`/`adox`) ISA
/// extensions used by the kernels below.
pub fn supported() -> bool {
    std::arch::is_x86_feature_detected!("bmi2") && std::arch::is_x86_feature_detected!("adx")
}

/// One fused CIOS round for an `N`-limb multiplication: multiplier load,
/// `a_i·b` accumulation pass, reduction-factor computation and `k·m`
/// reduction pass, with the register window given by `$t0..$tN`.
macro_rules! cios_round_6 {
    ($ai:literal, $t0:literal, $t1:literal, $t2:literal, $t3:literal, $t4:literal,
     $t5:literal, $t6:literal) => {
        concat!(
            // ---- multiply pass: t += a_i · b --------------------------
            "mov rdx, qword ptr [{a} + ",
            $ai,
            "]\n",
            "xor eax, eax\n", // clears CF and OF
            "mulx r15, rax, qword ptr [{b} + 0]\n",
            "adcx ",
            $t0,
            ", rax\n",
            "adox ",
            $t1,
            ", r15\n",
            "mulx r15, rax, qword ptr [{b} + 8]\n",
            "adcx ",
            $t1,
            ", rax\n",
            "adox ",
            $t2,
            ", r15\n",
            "mulx r15, rax, qword ptr [{b} + 16]\n",
            "adcx ",
            $t2,
            ", rax\n",
            "adox ",
            $t3,
            ", r15\n",
            "mulx r15, rax, qword ptr [{b} + 24]\n",
            "adcx ",
            $t3,
            ", rax\n",
            "adox ",
            $t4,
            ", r15\n",
            "mulx r15, rax, qword ptr [{b} + 32]\n",
            "adcx ",
            $t4,
            ", rax\n",
            "adox ",
            $t5,
            ", r15\n",
            "mulx r15, rax, qword ptr [{b} + 40]\n",
            "adcx ",
            $t5,
            ", rax\n",
            "adox ",
            $t6,
            ", r15\n",
            "mov eax, 0\n", // mov keeps both carry flags alive
            "adcx ",
            $t6,
            ", rax\n",
            "adox ",
            $t6,
            ", rax\n",
            // ---- reduction pass: t ← (t + k·m) >> 64 ------------------
            "mov rdx, ",
            $t0,
            "\n",
            "imul rdx, {n0}\n", // k = t0 · n0inv mod 2^64
            "xor eax, eax\n",
            "mulx r15, rax, qword ptr [{m} + 0]\n",
            "adcx ",
            $t0,
            ", rax\n", // t0 becomes 0: the next round's top limb
            "adox ",
            $t1,
            ", r15\n",
            "mulx r15, rax, qword ptr [{m} + 8]\n",
            "adcx ",
            $t1,
            ", rax\n",
            "adox ",
            $t2,
            ", r15\n",
            "mulx r15, rax, qword ptr [{m} + 16]\n",
            "adcx ",
            $t2,
            ", rax\n",
            "adox ",
            $t3,
            ", r15\n",
            "mulx r15, rax, qword ptr [{m} + 24]\n",
            "adcx ",
            $t3,
            ", rax\n",
            "adox ",
            $t4,
            ", r15\n",
            "mulx r15, rax, qword ptr [{m} + 32]\n",
            "adcx ",
            $t4,
            ", rax\n",
            "adox ",
            $t5,
            ", r15\n",
            "mulx r15, rax, qword ptr [{m} + 40]\n",
            "adcx ",
            $t5,
            ", rax\n",
            "adox ",
            $t6,
            ", r15\n",
            "mov eax, 0\n",
            "adcx ",
            $t6,
            ", rax\n",
            "adox ",
            $t6,
            ", rax\n",
        )
    };
}

/// Raw 6-limb fused-CIOS product `a·b·2^{-384} mod⁺ m` (result may exceed
/// `m` by up to one modulus; the caller subtracts conditionally).
///
/// Returns the six result limbs and the overflow bit.
///
/// # Safety
/// Requires BMI2 and ADX (check [`supported`]); `m` must be odd and
/// `n0inv ≡ -m^{-1} (mod 2^64)`.
#[allow(clippy::too_many_arguments)]
pub unsafe fn mont_mul_6(a: &[u64; 6], b: &[u64; 6], m: &[u64; 6], n0inv: u64) -> ([u64; 6], u64) {
    let (mut t0, mut t1, mut t2, mut t3, mut t4, mut t5, mut t6): (
        u64,
        u64,
        u64,
        u64,
        u64,
        u64,
        u64,
    );
    asm!(
        // Window rotates by one per round: the reduced-away t0 (now zero)
        // becomes the next round's incoming top limb.
        cios_round_6!("0",  "r8",  "r9",  "r10", "r11", "r12", "r13", "r14"),
        cios_round_6!("8",  "r9",  "r10", "r11", "r12", "r13", "r14", "r8"),
        cios_round_6!("16", "r10", "r11", "r12", "r13", "r14", "r8",  "r9"),
        cios_round_6!("24", "r11", "r12", "r13", "r14", "r8",  "r9",  "r10"),
        cios_round_6!("32", "r12", "r13", "r14", "r8",  "r9",  "r10", "r11"),
        cios_round_6!("40", "r13", "r14", "r8",  "r9",  "r10", "r11", "r12"),
        a = in(reg) a.as_ptr(),
        b = in(reg) b.as_ptr(),
        m = in(reg) m.as_ptr(),
        n0 = in(reg) n0inv,
        inout("r8") 0u64 => t0,
        inout("r9") 0u64 => t1,
        inout("r10") 0u64 => t2,
        inout("r11") 0u64 => t3,
        inout("r12") 0u64 => t4,
        inout("r13") 0u64 => t5,
        inout("r14") 0u64 => t6,
        out("r15") _,
        out("rax") _,
        out("rdx") _,
        options(pure, readonly, nostack),
    );
    // After six rotations the live window starts at r14 (= t6 variable):
    // result limbs are [t6, t0, t1, t2, t3, t4] and t5 holds the overflow.
    ([t6, t0, t1, t2, t3, t4], t5)
}

/// One fused CIOS round for the 4-limb (scalar field) multiplier.
macro_rules! cios_round_4 {
    ($ai:literal, $t0:literal, $t1:literal, $t2:literal, $t3:literal, $t4:literal) => {
        concat!(
            "mov rdx, qword ptr [{a} + ",
            $ai,
            "]\n",
            "xor eax, eax\n",
            "mulx r15, rax, qword ptr [{b} + 0]\n",
            "adcx ",
            $t0,
            ", rax\n",
            "adox ",
            $t1,
            ", r15\n",
            "mulx r15, rax, qword ptr [{b} + 8]\n",
            "adcx ",
            $t1,
            ", rax\n",
            "adox ",
            $t2,
            ", r15\n",
            "mulx r15, rax, qword ptr [{b} + 16]\n",
            "adcx ",
            $t2,
            ", rax\n",
            "adox ",
            $t3,
            ", r15\n",
            "mulx r15, rax, qword ptr [{b} + 24]\n",
            "adcx ",
            $t3,
            ", rax\n",
            "adox ",
            $t4,
            ", r15\n",
            "mov eax, 0\n",
            "adcx ",
            $t4,
            ", rax\n",
            "adox ",
            $t4,
            ", rax\n",
            "mov rdx, ",
            $t0,
            "\n",
            "imul rdx, {n0}\n",
            "xor eax, eax\n",
            "mulx r15, rax, qword ptr [{m} + 0]\n",
            "adcx ",
            $t0,
            ", rax\n",
            "adox ",
            $t1,
            ", r15\n",
            "mulx r15, rax, qword ptr [{m} + 8]\n",
            "adcx ",
            $t1,
            ", rax\n",
            "adox ",
            $t2,
            ", r15\n",
            "mulx r15, rax, qword ptr [{m} + 16]\n",
            "adcx ",
            $t2,
            ", rax\n",
            "adox ",
            $t3,
            ", r15\n",
            "mulx r15, rax, qword ptr [{m} + 24]\n",
            "adcx ",
            $t3,
            ", rax\n",
            "adox ",
            $t4,
            ", r15\n",
            "mov eax, 0\n",
            "adcx ",
            $t4,
            ", rax\n",
            "adox ",
            $t4,
            ", rax\n",
        )
    };
}

/// Raw 4-limb fused-CIOS product `a·b·2^{-256} mod⁺ m`; see [`mont_mul_6`].
///
/// # Safety
/// Same contract as [`mont_mul_6`].
pub unsafe fn mont_mul_4(a: &[u64; 4], b: &[u64; 4], m: &[u64; 4], n0inv: u64) -> ([u64; 4], u64) {
    let (mut t0, mut t1, mut t2, mut t3, mut t4): (u64, u64, u64, u64, u64);
    asm!(
        cios_round_4!("0",  "r8",  "r9",  "r10", "r11", "r12"),
        cios_round_4!("8",  "r9",  "r10", "r11", "r12", "r8"),
        cios_round_4!("16", "r10", "r11", "r12", "r8",  "r9"),
        cios_round_4!("24", "r11", "r12", "r8",  "r9",  "r10"),
        a = in(reg) a.as_ptr(),
        b = in(reg) b.as_ptr(),
        m = in(reg) m.as_ptr(),
        n0 = in(reg) n0inv,
        inout("r8") 0u64 => t0,
        inout("r9") 0u64 => t1,
        inout("r10") 0u64 => t2,
        inout("r11") 0u64 => t3,
        inout("r12") 0u64 => t4,
        out("r15") _,
        out("rax") _,
        out("rdx") _,
        options(pure, readonly, nostack),
    );
    // Four rotations: window starts at r12 (= t4): result [t4, t0, t1, t2],
    // overflow in t3.
    ([t4, t0, t1, t2], t3)
}

/// One schoolbook round for the 6-limb *wide* (unreduced) multiplier: the
/// `a_i·b` accumulation pass of [`cios_round_6`] with no reduction pass —
/// the finalized low limb is stored to `out` and its register zeroed for
/// reuse as the next round's top limb.
macro_rules! wide_round_6 {
    ($ai:literal, $oi:literal, $t0:literal, $t1:literal, $t2:literal, $t3:literal,
     $t4:literal, $t5:literal, $t6:literal) => {
        concat!(
            "mov rdx, qword ptr [{a} + ",
            $ai,
            "]\n",
            "xor eax, eax\n", // clears CF and OF
            "mulx r15, rax, qword ptr [{b} + 0]\n",
            "adcx ",
            $t0,
            ", rax\n",
            "adox ",
            $t1,
            ", r15\n",
            "mulx r15, rax, qword ptr [{b} + 8]\n",
            "adcx ",
            $t1,
            ", rax\n",
            "adox ",
            $t2,
            ", r15\n",
            "mulx r15, rax, qword ptr [{b} + 16]\n",
            "adcx ",
            $t2,
            ", rax\n",
            "adox ",
            $t3,
            ", r15\n",
            "mulx r15, rax, qword ptr [{b} + 24]\n",
            "adcx ",
            $t3,
            ", rax\n",
            "adox ",
            $t4,
            ", r15\n",
            "mulx r15, rax, qword ptr [{b} + 32]\n",
            "adcx ",
            $t4,
            ", rax\n",
            "adox ",
            $t5,
            ", r15\n",
            "mulx r15, rax, qword ptr [{b} + 40]\n",
            "adcx ",
            $t5,
            ", rax\n",
            "adox ",
            $t6,
            ", r15\n",
            "mov eax, 0\n",
            "adcx ",
            $t6,
            ", rax\n",
            "adox ",
            $t6,
            ", rax\n",
            // the low limb of the window is final: spill it, recycle the reg
            "mov qword ptr [{out} + ",
            $oi,
            "], ",
            $t0,
            "\n",
            "mov ",
            $t0,
            ", 0\n",
        )
    };
}

/// Full 12-limb schoolbook product `a·b` (no reduction) through the same
/// `mulx`/`adcx`/`adox` dual carry chains as [`mont_mul_6`], written
/// little-endian through `out`. Feeds the lazy-reduction tower: products
/// are accumulated double-width and reduced once per output coefficient by
/// [`mont_redc_6`]. Writing through the caller's pointer (a `repr(C)`
/// `DoubleWide<6>`) instead of returning an array keeps the hot path free
/// of 96-byte result copies.
///
/// # Safety
/// Requires BMI2 and ADX (check [`supported`]); `out` must be valid for
/// writes of 12 `u64` limbs and not alias `a` or `b`.
pub unsafe fn mul_wide_6(a: &[u64; 6], b: &[u64; 6], out: *mut u64) {
    asm!(
        // zero the accumulator window
        "xor r8d, r8d",
        "xor r9d, r9d",
        "xor r10d, r10d",
        "xor r11d, r11d",
        "xor r12d, r12d",
        "xor r13d, r13d",
        "xor r14d, r14d",
        wide_round_6!("0",  "0",  "r8",  "r9",  "r10", "r11", "r12", "r13", "r14"),
        wide_round_6!("8",  "8",  "r9",  "r10", "r11", "r12", "r13", "r14", "r8"),
        wide_round_6!("16", "16", "r10", "r11", "r12", "r13", "r14", "r8",  "r9"),
        wide_round_6!("24", "24", "r11", "r12", "r13", "r14", "r8",  "r9",  "r10"),
        wide_round_6!("32", "32", "r12", "r13", "r14", "r8",  "r9",  "r10", "r11"),
        wide_round_6!("40", "40", "r13", "r14", "r8",  "r9",  "r10", "r11", "r12"),
        // after six rounds+rotations the surviving window r14,r8..r12 holds
        // limbs 6..11
        "mov qword ptr [{out} + 48], r14",
        "mov qword ptr [{out} + 56], r8",
        "mov qword ptr [{out} + 64], r9",
        "mov qword ptr [{out} + 72], r10",
        "mov qword ptr [{out} + 80], r11",
        "mov qword ptr [{out} + 88], r12",
        a = in(reg) a.as_ptr(),
        b = in(reg) b.as_ptr(),
        out = in(reg) out,
        out("r8") _,
        out("r9") _,
        out("r10") _,
        out("r11") _,
        out("r12") _,
        out("r13") _,
        out("r14") _,
        out("r15") _,
        out("rax") _,
        out("rdx") _,
        options(nostack),
    );
}

/// One round of the separated 6-limb Montgomery reduction: pull the next
/// high limb of `t` into the freed window register (folding the running
/// top-of-window carry `rcx`), then cancel the window's low limb with a
/// `k·m` accumulation pass.
macro_rules! redc_round_6 {
    ($ti:literal, $t0:literal, $t1:literal, $t2:literal, $t3:literal, $t4:literal,
     $t5:literal, $t6:literal) => {
        concat!(
            // ---- pull t[i+6] into the window, folding carry2 ----------
            "mov ",
            $t6,
            ", qword ptr [{t} + ",
            $ti,
            "]\n",
            "add ",
            $t6,
            ", rcx\n",
            "mov rcx, 0\n",
            "adc rcx, 0\n",
            // ---- reduction pass: window += k·m ------------------------
            "mov rdx, ",
            $t0,
            "\n",
            "imul rdx, {n0}\n",
            "xor eax, eax\n",
            "mulx r15, rax, qword ptr [{m} + 0]\n",
            "adcx ",
            $t0,
            ", rax\n", // t0 becomes 0: recycled as next round's top limb
            "adox ",
            $t1,
            ", r15\n",
            "mulx r15, rax, qword ptr [{m} + 8]\n",
            "adcx ",
            $t1,
            ", rax\n",
            "adox ",
            $t2,
            ", r15\n",
            "mulx r15, rax, qword ptr [{m} + 16]\n",
            "adcx ",
            $t2,
            ", rax\n",
            "adox ",
            $t3,
            ", r15\n",
            "mulx r15, rax, qword ptr [{m} + 24]\n",
            "adcx ",
            $t3,
            ", rax\n",
            "adox ",
            $t4,
            ", r15\n",
            "mulx r15, rax, qword ptr [{m} + 32]\n",
            "adcx ",
            $t4,
            ", rax\n",
            "adox ",
            $t5,
            ", r15\n",
            "mulx r15, rax, qword ptr [{m} + 40]\n",
            "adcx ",
            $t5,
            ", rax\n",
            "adox ",
            $t6,
            ", r15\n",
            // Pending carries: CF is the adcx chain's carry out of limb 5
            // (weight of the top limb), OF is the adox chain's carry out of
            // the top limb itself (weight of limb 7 — real here, unlike in
            // the multiplication kernels where the window bound keeps it
            // zero). Capture OF into carry2 first — the plain `adc` below
            // would clobber it — then fold CF into the top limb, whose own
            // possible overflow lands in carry2 too. adcx/adox each leave
            // the other's flag untouched, so the order is sound.
            "mov eax, 0\n",
            "adox rcx, rax\n",
            "adcx ",
            $t6,
            ", rax\n",
            "adc rcx, 0\n",
        )
    };
}

/// Separated Montgomery reduction of a 12-limb value: `t·2^{-384} mod⁺ m`
/// (result may exceed `m` by one modulus; the caller subtracts
/// conditionally — valid whenever `t < m·2^{384}`).
///
/// Returns the six result limbs and the overflow word.
///
/// # Safety
/// Same contract as [`mont_mul_6`]; additionally `t` must be valid for
/// reads of 12 `u64` limbs (little-endian — in practice a `repr(C)`
/// `DoubleWide<6>` handed over in place, uncopied).
pub unsafe fn mont_redc_6(t: *const u64, m: &[u64; 6], n0inv: u64) -> ([u64; 6], u64) {
    let (mut o0, mut o1, mut o2, mut o3, mut o4, mut o5, mut hi): (
        u64,
        u64,
        u64,
        u64,
        u64,
        u64,
        u64,
    );
    asm!(
        // window ← t[0..6], carry2 (rcx) ← 0
        "mov r8,  qword ptr [{t} + 0]",
        "mov r9,  qword ptr [{t} + 8]",
        "mov r10, qword ptr [{t} + 16]",
        "mov r11, qword ptr [{t} + 24]",
        "mov r12, qword ptr [{t} + 32]",
        "mov r13, qword ptr [{t} + 40]",
        "xor ecx, ecx",
        redc_round_6!("48", "r8",  "r9",  "r10", "r11", "r12", "r13", "r14"),
        redc_round_6!("56", "r9",  "r10", "r11", "r12", "r13", "r14", "r8"),
        redc_round_6!("64", "r10", "r11", "r12", "r13", "r14", "r8",  "r9"),
        redc_round_6!("72", "r11", "r12", "r13", "r14", "r8",  "r9",  "r10"),
        redc_round_6!("80", "r12", "r13", "r14", "r8",  "r9",  "r10", "r11"),
        redc_round_6!("88", "r13", "r14", "r8",  "r9",  "r10", "r11", "r12"),
        t = in(reg) t,
        m = in(reg) m.as_ptr(),
        n0 = in(reg) n0inv,
        // after six rotations the surviving window r14,r8..r12 holds the
        // result limbs; rcx holds the accumulated overflow
        out("r8") o1,
        out("r9") o2,
        out("r10") o3,
        out("r11") o4,
        out("r12") o5,
        out("r13") _,
        out("r14") o0,
        out("r15") _,
        out("rax") _,
        out("rcx") hi,
        out("rdx") _,
        options(pure, readonly, nostack),
    );
    ([o0, o1, o2, o3, o4, o5], hi)
}

/// 12-limb addition modulo `m·2^{384}`: `out ← x + y`, minus `m·2^{384}`
/// when the sum would leave `[0, m·2^{384})`. One straight `adc` chain
/// over the seam; the fixup (which touches only the high six limbs,
/// because `m·2^{384}` is `m` shifted up six limbs) is a `sub`/`sbb`
/// chain selected back by `cmovc` — branch-free, because the fixup
/// condition is coin-flip noise on the tower hot path. The compiler's
/// lowering of the same logic spills the compare/select through
/// `setb`-style flag materialization at roughly 2–3× the cost.
///
/// # Safety
/// Requires `x` and `y` to be valid for reads of 12 limbs, both `< m·2^{384}`
/// (so the full sum cannot carry out of 12 limbs — guaranteed by the
/// `DoubleWide` invariant with `m < 2^{383}`), `out` valid for writes of 12
/// limbs and not aliasing `x`, `y`, or `m`.
pub unsafe fn wide_add_mod_6(x: *const u64, y: *const u64, m: &[u64; 6], out: *mut u64) {
    asm!(
        // low half: streamed through rax (stores don't disturb the chain)
        "mov rax, qword ptr [{x} + 0]",
        "add rax, qword ptr [{y} + 0]",
        "mov qword ptr [{out} + 0], rax",
        "mov rax, qword ptr [{x} + 8]",
        "adc rax, qword ptr [{y} + 8]",
        "mov qword ptr [{out} + 8], rax",
        "mov rax, qword ptr [{x} + 16]",
        "adc rax, qword ptr [{y} + 16]",
        "mov qword ptr [{out} + 16], rax",
        "mov rax, qword ptr [{x} + 24]",
        "adc rax, qword ptr [{y} + 24]",
        "mov qword ptr [{out} + 24], rax",
        "mov rax, qword ptr [{x} + 32]",
        "adc rax, qword ptr [{y} + 32]",
        "mov qword ptr [{out} + 32], rax",
        "mov rax, qword ptr [{x} + 40]",
        "adc rax, qword ptr [{y} + 40]",
        "mov qword ptr [{out} + 40], rax",
        // high half: kept in registers for the fixup
        "mov r8, qword ptr [{x} + 48]",
        "adc r8, qword ptr [{y} + 48]",
        "mov r9, qword ptr [{x} + 56]",
        "adc r9, qword ptr [{y} + 56]",
        "mov r10, qword ptr [{x} + 64]",
        "adc r10, qword ptr [{y} + 64]",
        "mov r11, qword ptr [{x} + 72]",
        "adc r11, qword ptr [{y} + 72]",
        "mov r12, qword ptr [{x} + 80]",
        "adc r12, qword ptr [{y} + 80]",
        "mov r13, qword ptr [{x} + 88]",
        "adc r13, qword ptr [{y} + 88]",
        // candidate hi − m in spare registers ({x}/{y} are dead after the
        // loads above — re-used so nothing round-trips through memory and
        // pays a store-forwarding stall)
        "mov r14, r8",
        "mov r15, r9",
        "mov rcx, r10",
        "mov rdx, r11",
        "mov {x}, r12",
        "mov {y}, r13",
        "sub r14, qword ptr [{m} + 0]",
        "sbb r15, qword ptr [{m} + 8]",
        "sbb rcx, qword ptr [{m} + 16]",
        "sbb rdx, qword ptr [{m} + 24]",
        "sbb {x}, qword ptr [{m} + 32]",
        "sbb {y}, qword ptr [{m} + 40]",
        // no borrow ⟺ hi ≥ m ⟺ the subtracted candidate is the result
        "cmovnc r8, r14",
        "cmovnc r9, r15",
        "cmovnc r10, rcx",
        "cmovnc r11, rdx",
        "cmovnc r12, {x}",
        "cmovnc r13, {y}",
        "mov qword ptr [{out} + 48], r8",
        "mov qword ptr [{out} + 56], r9",
        "mov qword ptr [{out} + 64], r10",
        "mov qword ptr [{out} + 72], r11",
        "mov qword ptr [{out} + 80], r12",
        "mov qword ptr [{out} + 88], r13",
        x = inout(reg) x => _,
        y = inout(reg) y => _,
        m = in(reg) m.as_ptr(),
        out = in(reg) out,
        out("rax") _,
        out("rcx") _,
        out("rdx") _,
        out("r8") _,
        out("r9") _,
        out("r10") _,
        out("r11") _,
        out("r12") _,
        out("r13") _,
        out("r14") _,
        out("r15") _,
        options(nostack),
    );
}

/// 12-limb subtraction modulo `m·2^{384}`: `out ← x − y`, plus `m·2^{384}`
/// on borrow (the discarded carry-out of the fixup cancels the
/// two's-complement wrap exactly). Same structure and rationale as
/// [`wide_add_mod_6`]: one `sbb` chain, an unconditional `+m` candidate on
/// the high half, and a `cmovz` select on the saved borrow.
///
/// # Safety
/// Same contract as [`wide_add_mod_6`].
pub unsafe fn wide_sub_mod_6(x: *const u64, y: *const u64, m: &[u64; 6], out: *mut u64) {
    asm!(
        // low half
        "mov rax, qword ptr [{x} + 0]",
        "sub rax, qword ptr [{y} + 0]",
        "mov qword ptr [{out} + 0], rax",
        "mov rax, qword ptr [{x} + 8]",
        "sbb rax, qword ptr [{y} + 8]",
        "mov qword ptr [{out} + 8], rax",
        "mov rax, qword ptr [{x} + 16]",
        "sbb rax, qword ptr [{y} + 16]",
        "mov qword ptr [{out} + 16], rax",
        "mov rax, qword ptr [{x} + 24]",
        "sbb rax, qword ptr [{y} + 24]",
        "mov qword ptr [{out} + 24], rax",
        "mov rax, qword ptr [{x} + 32]",
        "sbb rax, qword ptr [{y} + 32]",
        "mov qword ptr [{out} + 32], rax",
        "mov rax, qword ptr [{x} + 40]",
        "sbb rax, qword ptr [{y} + 40]",
        "mov qword ptr [{out} + 40], rax",
        // high half in registers
        "mov r8, qword ptr [{x} + 48]",
        "sbb r8, qword ptr [{y} + 48]",
        "mov r9, qword ptr [{x} + 56]",
        "sbb r9, qword ptr [{y} + 56]",
        "mov r10, qword ptr [{x} + 64]",
        "sbb r10, qword ptr [{y} + 64]",
        "mov r11, qword ptr [{x} + 72]",
        "sbb r11, qword ptr [{y} + 72]",
        "mov r12, qword ptr [{x} + 80]",
        "sbb r12, qword ptr [{y} + 80]",
        "mov r13, qword ptr [{x} + 88]",
        "sbb r13, qword ptr [{y} + 88]",
        // rax ← −borrow (flag capture must precede the candidate add,
        // whose carries clobber CF)
        "sbb rax, rax",
        // candidate hi + m in spare registers ({x}/{y} dead after loads;
        // plain `mov`s leave flags alone)
        "mov r14, r8",
        "mov r15, r9",
        "mov rcx, r10",
        "mov rdx, r11",
        "mov {x}, r12",
        "mov {y}, r13",
        "add r14, qword ptr [{m} + 0]",
        "adc r15, qword ptr [{m} + 8]",
        "adc rcx, qword ptr [{m} + 16]",
        "adc rdx, qword ptr [{m} + 24]",
        "adc {x}, qword ptr [{m} + 32]",
        "adc {y}, qword ptr [{m} + 40]",
        // borrowed ⟺ rax ≠ 0 ⟺ the +m candidate is the result
        "test rax, rax",
        "cmovnz r8, r14",
        "cmovnz r9, r15",
        "cmovnz r10, rcx",
        "cmovnz r11, rdx",
        "cmovnz r12, {x}",
        "cmovnz r13, {y}",
        "mov qword ptr [{out} + 48], r8",
        "mov qword ptr [{out} + 56], r9",
        "mov qword ptr [{out} + 64], r10",
        "mov qword ptr [{out} + 72], r11",
        "mov qword ptr [{out} + 80], r12",
        "mov qword ptr [{out} + 88], r13",
        x = inout(reg) x => _,
        y = inout(reg) y => _,
        m = in(reg) m.as_ptr(),
        out = in(reg) out,
        out("rax") _,
        out("rcx") _,
        out("rdx") _,
        out("r8") _,
        out("r9") _,
        out("r10") _,
        out("r11") _,
        out("r12") _,
        out("r13") _,
        out("r14") _,
        out("r15") _,
        options(nostack),
    );
}
