//! Hand-scheduled x86_64 Montgomery multiplication (BMI2 + ADX).
//!
//! The portable fused-CIOS loop in [`crate::mont`] is limited by how LLVM
//! lowers `u128` carry arithmetic: every carry is extracted with
//! `setb`/`movzbl` sequences and the two logical carry chains of CIOS are
//! serialized through the single CPU carry flag. The `mulx`/`adcx`/`adox`
//! instruction triple was added to x86 precisely for this workload —
//! `mulx` does not touch flags, and `adcx`/`adox` ride two *independent*
//! carry flags (CF and OF) — so one fused CIOS round becomes a straight
//! line of ~40 flag-parallel instructions with no carry materialization.
//!
//! Layout of one round (fully unrolled, register window rotated per round):
//!
//! ```text
//! rdx ← a[i]
//! CF, OF ← 0
//! for j in 0..N:  mulx (hi,lo) ← rdx·b[j];  t[j] +=CF lo;  t[j+1] +=OF hi
//! t[N] += CF + OF
//! rdx ← t[0]·n0inv  (mod 2^64)
//! CF, OF ← 0
//! for j in 0..N:  mulx (hi,lo) ← rdx·m[j];  t[j] +=CF lo;  t[j+1] +=OF hi
//! t[N] += CF + OF                      // t[0] is now 0 → becomes next t[N]
//! ```
//!
//! The rotation means no register moves between rounds: the zeroed `t[0]`
//! is re-used as the incoming (zero) top limb of the next round. Results
//! are compared against the portable path by exhaustive property tests
//! ([`crate::mont`] test module) and the caller performs the final
//! conditional subtraction, so this file only ever deals in raw limbs.
//!
//! Everything here is gated twice: compiled only on `x86_64`, and executed
//! only when run-time CPUID detection ([`supported`]) confirms BMI2 + ADX.

#![cfg(target_arch = "x86_64")]

use core::arch::asm;

/// Run-time check for the BMI2 (`mulx`) and ADX (`adcx`/`adox`) ISA
/// extensions used by the kernels below.
pub fn supported() -> bool {
    std::arch::is_x86_feature_detected!("bmi2") && std::arch::is_x86_feature_detected!("adx")
}

/// One fused CIOS round for an `N`-limb multiplication: multiplier load,
/// `a_i·b` accumulation pass, reduction-factor computation and `k·m`
/// reduction pass, with the register window given by `$t0..$tN`.
macro_rules! cios_round_6 {
    ($ai:literal, $t0:literal, $t1:literal, $t2:literal, $t3:literal, $t4:literal,
     $t5:literal, $t6:literal) => {
        concat!(
            // ---- multiply pass: t += a_i · b --------------------------
            "mov rdx, qword ptr [{a} + ",
            $ai,
            "]\n",
            "xor eax, eax\n", // clears CF and OF
            "mulx r15, rax, qword ptr [{b} + 0]\n",
            "adcx ",
            $t0,
            ", rax\n",
            "adox ",
            $t1,
            ", r15\n",
            "mulx r15, rax, qword ptr [{b} + 8]\n",
            "adcx ",
            $t1,
            ", rax\n",
            "adox ",
            $t2,
            ", r15\n",
            "mulx r15, rax, qword ptr [{b} + 16]\n",
            "adcx ",
            $t2,
            ", rax\n",
            "adox ",
            $t3,
            ", r15\n",
            "mulx r15, rax, qword ptr [{b} + 24]\n",
            "adcx ",
            $t3,
            ", rax\n",
            "adox ",
            $t4,
            ", r15\n",
            "mulx r15, rax, qword ptr [{b} + 32]\n",
            "adcx ",
            $t4,
            ", rax\n",
            "adox ",
            $t5,
            ", r15\n",
            "mulx r15, rax, qword ptr [{b} + 40]\n",
            "adcx ",
            $t5,
            ", rax\n",
            "adox ",
            $t6,
            ", r15\n",
            "mov eax, 0\n", // mov keeps both carry flags alive
            "adcx ",
            $t6,
            ", rax\n",
            "adox ",
            $t6,
            ", rax\n",
            // ---- reduction pass: t ← (t + k·m) >> 64 ------------------
            "mov rdx, ",
            $t0,
            "\n",
            "imul rdx, {n0}\n", // k = t0 · n0inv mod 2^64
            "xor eax, eax\n",
            "mulx r15, rax, qword ptr [{m} + 0]\n",
            "adcx ",
            $t0,
            ", rax\n", // t0 becomes 0: the next round's top limb
            "adox ",
            $t1,
            ", r15\n",
            "mulx r15, rax, qword ptr [{m} + 8]\n",
            "adcx ",
            $t1,
            ", rax\n",
            "adox ",
            $t2,
            ", r15\n",
            "mulx r15, rax, qword ptr [{m} + 16]\n",
            "adcx ",
            $t2,
            ", rax\n",
            "adox ",
            $t3,
            ", r15\n",
            "mulx r15, rax, qword ptr [{m} + 24]\n",
            "adcx ",
            $t3,
            ", rax\n",
            "adox ",
            $t4,
            ", r15\n",
            "mulx r15, rax, qword ptr [{m} + 32]\n",
            "adcx ",
            $t4,
            ", rax\n",
            "adox ",
            $t5,
            ", r15\n",
            "mulx r15, rax, qword ptr [{m} + 40]\n",
            "adcx ",
            $t5,
            ", rax\n",
            "adox ",
            $t6,
            ", r15\n",
            "mov eax, 0\n",
            "adcx ",
            $t6,
            ", rax\n",
            "adox ",
            $t6,
            ", rax\n",
        )
    };
}

/// Raw 6-limb fused-CIOS product `a·b·2^{-384} mod⁺ m` (result may exceed
/// `m` by up to one modulus; the caller subtracts conditionally).
///
/// Returns the six result limbs and the overflow bit.
///
/// # Safety
/// Requires BMI2 and ADX (check [`supported`]); `m` must be odd and
/// `n0inv ≡ -m^{-1} (mod 2^64)`.
#[allow(clippy::too_many_arguments)]
pub unsafe fn mont_mul_6(a: &[u64; 6], b: &[u64; 6], m: &[u64; 6], n0inv: u64) -> ([u64; 6], u64) {
    let (mut t0, mut t1, mut t2, mut t3, mut t4, mut t5, mut t6): (
        u64,
        u64,
        u64,
        u64,
        u64,
        u64,
        u64,
    );
    asm!(
        // Window rotates by one per round: the reduced-away t0 (now zero)
        // becomes the next round's incoming top limb.
        cios_round_6!("0",  "r8",  "r9",  "r10", "r11", "r12", "r13", "r14"),
        cios_round_6!("8",  "r9",  "r10", "r11", "r12", "r13", "r14", "r8"),
        cios_round_6!("16", "r10", "r11", "r12", "r13", "r14", "r8",  "r9"),
        cios_round_6!("24", "r11", "r12", "r13", "r14", "r8",  "r9",  "r10"),
        cios_round_6!("32", "r12", "r13", "r14", "r8",  "r9",  "r10", "r11"),
        cios_round_6!("40", "r13", "r14", "r8",  "r9",  "r10", "r11", "r12"),
        a = in(reg) a.as_ptr(),
        b = in(reg) b.as_ptr(),
        m = in(reg) m.as_ptr(),
        n0 = in(reg) n0inv,
        inout("r8") 0u64 => t0,
        inout("r9") 0u64 => t1,
        inout("r10") 0u64 => t2,
        inout("r11") 0u64 => t3,
        inout("r12") 0u64 => t4,
        inout("r13") 0u64 => t5,
        inout("r14") 0u64 => t6,
        out("r15") _,
        out("rax") _,
        out("rdx") _,
        options(pure, readonly, nostack),
    );
    // After six rotations the live window starts at r14 (= t6 variable):
    // result limbs are [t6, t0, t1, t2, t3, t4] and t5 holds the overflow.
    ([t6, t0, t1, t2, t3, t4], t5)
}

/// One fused CIOS round for the 4-limb (scalar field) multiplier.
macro_rules! cios_round_4 {
    ($ai:literal, $t0:literal, $t1:literal, $t2:literal, $t3:literal, $t4:literal) => {
        concat!(
            "mov rdx, qword ptr [{a} + ",
            $ai,
            "]\n",
            "xor eax, eax\n",
            "mulx r15, rax, qword ptr [{b} + 0]\n",
            "adcx ",
            $t0,
            ", rax\n",
            "adox ",
            $t1,
            ", r15\n",
            "mulx r15, rax, qword ptr [{b} + 8]\n",
            "adcx ",
            $t1,
            ", rax\n",
            "adox ",
            $t2,
            ", r15\n",
            "mulx r15, rax, qword ptr [{b} + 16]\n",
            "adcx ",
            $t2,
            ", rax\n",
            "adox ",
            $t3,
            ", r15\n",
            "mulx r15, rax, qword ptr [{b} + 24]\n",
            "adcx ",
            $t3,
            ", rax\n",
            "adox ",
            $t4,
            ", r15\n",
            "mov eax, 0\n",
            "adcx ",
            $t4,
            ", rax\n",
            "adox ",
            $t4,
            ", rax\n",
            "mov rdx, ",
            $t0,
            "\n",
            "imul rdx, {n0}\n",
            "xor eax, eax\n",
            "mulx r15, rax, qword ptr [{m} + 0]\n",
            "adcx ",
            $t0,
            ", rax\n",
            "adox ",
            $t1,
            ", r15\n",
            "mulx r15, rax, qword ptr [{m} + 8]\n",
            "adcx ",
            $t1,
            ", rax\n",
            "adox ",
            $t2,
            ", r15\n",
            "mulx r15, rax, qword ptr [{m} + 16]\n",
            "adcx ",
            $t2,
            ", rax\n",
            "adox ",
            $t3,
            ", r15\n",
            "mulx r15, rax, qword ptr [{m} + 24]\n",
            "adcx ",
            $t3,
            ", rax\n",
            "adox ",
            $t4,
            ", r15\n",
            "mov eax, 0\n",
            "adcx ",
            $t4,
            ", rax\n",
            "adox ",
            $t4,
            ", rax\n",
        )
    };
}

/// Raw 4-limb fused-CIOS product `a·b·2^{-256} mod⁺ m`; see [`mont_mul_6`].
///
/// # Safety
/// Same contract as [`mont_mul_6`].
pub unsafe fn mont_mul_4(a: &[u64; 4], b: &[u64; 4], m: &[u64; 4], n0inv: u64) -> ([u64; 4], u64) {
    let (mut t0, mut t1, mut t2, mut t3, mut t4): (u64, u64, u64, u64, u64);
    asm!(
        cios_round_4!("0",  "r8",  "r9",  "r10", "r11", "r12"),
        cios_round_4!("8",  "r9",  "r10", "r11", "r12", "r8"),
        cios_round_4!("16", "r10", "r11", "r12", "r8",  "r9"),
        cios_round_4!("24", "r11", "r12", "r8",  "r9",  "r10"),
        a = in(reg) a.as_ptr(),
        b = in(reg) b.as_ptr(),
        m = in(reg) m.as_ptr(),
        n0 = in(reg) n0inv,
        inout("r8") 0u64 => t0,
        inout("r9") 0u64 => t1,
        inout("r10") 0u64 => t2,
        inout("r11") 0u64 => t3,
        inout("r12") 0u64 => t4,
        out("r15") _,
        out("rax") _,
        out("rdx") _,
        options(pure, readonly, nostack),
    );
    // Four rotations: window starts at r12 (= t4): result [t4, t0, t1, t2],
    // overflow in t3.
    ([t4, t0, t1, t2], t3)
}
