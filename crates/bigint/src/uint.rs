//! Fixed-width little-endian unsigned integers.

use core::cmp::Ordering;
use core::fmt;

/// A fixed-width unsigned integer of `N` 64-bit limbs, least-significant
/// limb first.
///
/// The arithmetic here is deliberately simple and allocation-free; all the
/// higher-level modular structure lives in [`crate::mont`].
/// `repr(transparent)`: layout-identical to `[u64; N]`, which
/// [`crate::DoubleWide`] relies on to hand its two halves to the assembly
/// kernels as one contiguous `2N`-limb buffer without copying.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
#[repr(transparent)]
pub struct Uint<const N: usize>(pub [u64; N]);

impl<const N: usize> Default for Uint<N> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<const N: usize> Uint<N> {
    pub const ZERO: Self = Self([0u64; N]);

    /// The value 1.
    pub fn one() -> Self {
        let mut v = [0u64; N];
        v[0] = 1;
        Self(v)
    }

    pub fn from_u64(x: u64) -> Self {
        let mut v = [0u64; N];
        v[0] = x;
        Self(v)
    }

    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&l| l == 0)
    }

    /// Parse a big-endian hex string (optionally `0x`-prefixed). Panics if the
    /// value does not fit in `N` limbs or contains a non-hex character; this
    /// is only used for compile-time-known constants.
    pub fn from_hex(s: &str) -> Self {
        let s = s.trim().trim_start_matches("0x");
        assert!(!s.is_empty(), "empty hex literal");
        let mut limbs = [0u64; N];
        let bytes = s.as_bytes();
        let mut limb_idx = 0usize;
        let mut shift = 0u32;
        for &b in bytes.iter().rev() {
            if b == b'_' {
                continue;
            }
            let d = (b as char).to_digit(16).expect("invalid hex digit") as u64;
            if shift >= 64 {
                limb_idx += 1;
                shift = 0;
            }
            assert!(limb_idx < N, "hex literal does not fit in {N} limbs");
            limbs[limb_idx] |= d << shift;
            shift += 4;
        }
        Self(limbs)
    }

    /// Big-endian hex rendering (no leading zeros, `0x` prefix omitted).
    pub fn to_hex(&self) -> String {
        let mut s = String::new();
        for l in self.0.iter().rev() {
            if s.is_empty() {
                if *l != 0 {
                    s = format!("{l:x}");
                }
            } else {
                s.push_str(&format!("{l:016x}"));
            }
        }
        if s.is_empty() {
            s.push('0');
        }
        s
    }

    /// `self + rhs`, returning the result and the carry-out bit.
    ///
    /// The widening-`u128` formulation (rather than paired
    /// `overflowing_add`s) is the pattern LLVM reliably lowers to a single
    /// `adc` chain — the tower's wide accumulators run thousands of these
    /// per pairing, and the difference is ~2× on the chain.
    #[inline]
    pub fn adc(&self, rhs: &Self) -> (Self, bool) {
        let mut out = [0u64; N];
        let mut carry = 0u64;
        for (i, out_i) in out.iter_mut().enumerate() {
            let s = self.0[i] as u128 + rhs.0[i] as u128 + carry as u128;
            *out_i = s as u64;
            carry = (s >> 64) as u64;
        }
        (Self(out), carry != 0)
    }

    /// `self - rhs`, returning the result and whether a borrow occurred
    /// (i.e. `self < rhs`). Widening-`u128` chain for the same codegen
    /// reason as [`Uint::adc`].
    #[inline]
    pub fn sbb(&self, rhs: &Self) -> (Self, bool) {
        let mut out = [0u64; N];
        let mut borrow = 0u64;
        for (i, out_i) in out.iter_mut().enumerate() {
            let d = (self.0[i] as u128).wrapping_sub(rhs.0[i] as u128 + borrow as u128);
            *out_i = d as u64;
            borrow = ((d >> 64) as u64) & 1;
        }
        (Self(out), borrow != 0)
    }

    /// Full double-width product `self * rhs` as `2N` limbs (little-endian).
    pub fn mul_wide(&self, rhs: &Self) -> Vec<u64> {
        let mut out = vec![0u64; 2 * N];
        for i in 0..N {
            let mut carry = 0u128;
            for j in 0..N {
                let cur = out[i + j] as u128 + (self.0[i] as u128) * (rhs.0[j] as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            out[i + N] = carry as u64;
        }
        out
    }

    /// Index of the highest set bit, or `None` when zero.
    pub fn highest_bit(&self) -> Option<u32> {
        for i in (0..N).rev() {
            if self.0[i] != 0 {
                return Some(i as u32 * 64 + 63 - self.0[i].leading_zeros());
            }
        }
        None
    }

    /// Bit `i` (little-endian numbering).
    #[inline]
    pub fn bit(&self, i: u32) -> bool {
        let limb = (i / 64) as usize;
        limb < N && (self.0[limb] >> (i % 64)) & 1 == 1
    }

    /// Whether the value is even (bit 0 clear).
    #[inline]
    pub fn is_even(&self) -> bool {
        self.0[0] & 1 == 0
    }

    /// Logical right shift by one bit.
    #[inline]
    pub fn shr1(&self) -> Self {
        let mut out = [0u64; N];
        let mut carry = 0u64;
        for i in (0..N).rev() {
            out[i] = (self.0[i] >> 1) | (carry << 63);
            carry = self.0[i] & 1;
        }
        Self(out)
    }

    /// Little-endian byte encoding (`8 * N` bytes).
    pub fn to_le_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 * N);
        for l in &self.0 {
            out.extend_from_slice(&l.to_le_bytes());
        }
        out
    }

    /// Construct from little-endian bytes, ignoring trailing zeros; panics if
    /// the value does not fit.
    pub fn from_le_bytes(bytes: &[u8]) -> Self {
        assert!(bytes.len() <= 8 * N, "byte string too long for Uint<{N}>");
        let mut limbs = [0u64; N];
        for (i, chunk) in bytes.chunks(8).enumerate() {
            let mut b = [0u8; 8];
            b[..chunk.len()].copy_from_slice(chunk);
            limbs[i] = u64::from_le_bytes(b);
        }
        Self(limbs)
    }
}

impl<const N: usize> Ord for Uint<N> {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..N).rev() {
            match self.0[i].cmp(&other.0[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl<const N: usize> PartialOrd for Uint<N> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<const N: usize> fmt::Debug for Uint<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl<const N: usize> fmt::Display for Uint<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type U256 = Uint<4>;

    #[test]
    fn hex_round_trip() {
        let v = U256::from_hex("73eda753299d7d483339d80809a1d80553bda402fffe5bfeffffffff00000001");
        assert_eq!(v.to_hex(), "73eda753299d7d483339d80809a1d80553bda402fffe5bfeffffffff00000001");
        assert_eq!(U256::ZERO.to_hex(), "0");
        assert_eq!(U256::from_u64(0xabc).to_hex(), "abc");
    }

    #[test]
    fn hex_with_separators() {
        assert_eq!(U256::from_hex("0x00ff_ee"), U256::from_u64(0xffee));
    }

    #[test]
    fn add_sub_round_trip() {
        let a = U256::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff");
        let b = U256::from_u64(1);
        let (s, carry) = a.adc(&b);
        assert!(carry);
        assert!(s.is_zero());
        let (d, borrow) = s.sbb(&b);
        assert!(borrow);
        assert_eq!(d, a);
    }

    #[test]
    fn mul_wide_small() {
        let a = U256::from_u64(u64::MAX);
        let b = U256::from_u64(u64::MAX);
        let w = a.mul_wide(&b);
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        assert_eq!(w[0], 1);
        assert_eq!(w[1], u64::MAX - 1);
        assert!(w[2..].iter().all(|&l| l == 0));
    }

    #[test]
    fn ordering() {
        let a = U256::from_u64(5);
        let b = U256::from_hex("100000000000000000");
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn bits() {
        let v = U256::from_hex("8000000000000001");
        assert!(v.bit(0));
        assert!(v.bit(63));
        assert!(!v.bit(64));
        assert_eq!(v.highest_bit(), Some(63));
        assert_eq!(U256::ZERO.highest_bit(), None);
    }

    #[test]
    fn byte_round_trip() {
        let v = U256::from_hex("0123456789abcdef0011223344556677");
        assert_eq!(U256::from_le_bytes(&v.to_le_bytes()), v);
    }
}
