//! Montgomery-form modular arithmetic over a fixed odd modulus.
//!
//! All constants (`n0inv`, `R`, `R²`) are *derived at run time* from the
//! modulus, so the pairing layer never hard-codes values it cannot verify.

use crate::uint::Uint;

/// Parameters for Montgomery arithmetic modulo an odd modulus `m` of `N`
/// limbs. `R = 2^{64N} mod m`.
#[derive(Clone, Debug)]
pub struct MontParams<const N: usize> {
    /// The modulus.
    pub modulus: Uint<N>,
    /// `-m^{-1} mod 2^64`.
    pub n0inv: u64,
    /// `R mod m` — the Montgomery form of 1.
    pub r1: Uint<N>,
    /// `R² mod m` — used to convert into Montgomery form.
    pub r2: Uint<N>,
}

impl<const N: usize> MontParams<N> {
    /// Derive all Montgomery constants from the (odd) modulus.
    pub fn new(modulus: Uint<N>) -> Self {
        assert!(modulus.0[0] & 1 == 1, "Montgomery modulus must be odd");
        assert!(
            modulus.highest_bit().map(|b| b as usize) < Some(64 * N - 1),
            "modulus must leave headroom for carries"
        );
        // Newton-Hensel inversion of m mod 2^64: each step doubles precision.
        let m0 = modulus.0[0];
        let mut inv: u64 = 1;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(inv)));
        }
        debug_assert_eq!(m0.wrapping_mul(inv), 1);
        let n0inv = inv.wrapping_neg();

        // R mod m by doubling 1, 64*N times.
        let mut r1 = Uint::<N>::one();
        for _ in 0..(64 * N) {
            r1 = Self::add_mod_raw(&r1, &r1, &modulus);
        }
        // R^2 mod m by doubling R, 64*N more times.
        let mut r2 = r1;
        for _ in 0..(64 * N) {
            r2 = Self::add_mod_raw(&r2, &r2, &modulus);
        }
        Self { modulus, n0inv, r1, r2 }
    }

    #[inline]
    fn add_mod_raw(a: &Uint<N>, b: &Uint<N>, m: &Uint<N>) -> Uint<N> {
        let (sum, carry) = a.adc(b);
        let (reduced, borrow) = sum.sbb(m);
        if carry || !borrow {
            reduced
        } else {
            sum
        }
    }

    /// Modular addition of two reduced values.
    #[inline]
    pub fn add(&self, a: &Uint<N>, b: &Uint<N>) -> Uint<N> {
        Self::add_mod_raw(a, b, &self.modulus)
    }

    /// Modular subtraction of two reduced values.
    #[inline]
    pub fn sub(&self, a: &Uint<N>, b: &Uint<N>) -> Uint<N> {
        let (diff, borrow) = a.sbb(b);
        if borrow {
            let (wrapped, _) = diff.adc(&self.modulus);
            wrapped
        } else {
            diff
        }
    }

    /// Modular negation of a reduced value.
    #[inline]
    pub fn neg(&self, a: &Uint<N>) -> Uint<N> {
        if a.is_zero() {
            *a
        } else {
            let (diff, _) = self.modulus.sbb(a);
            diff
        }
    }

    /// CIOS Montgomery multiplication: returns `a * b * R^{-1} mod m` for
    /// reduced inputs.
    pub fn mont_mul(&self, a: &Uint<N>, b: &Uint<N>) -> Uint<N> {
        let m = &self.modulus.0;
        // t has N+2 limbs of working space.
        let mut t = [0u64; 16]; // max N = 14; BLS12-381 uses N = 6
        debug_assert!(N + 2 <= 16);
        for i in 0..N {
            // t += a[i] * b
            let mut carry = 0u128;
            for (tj, bj) in t[..N].iter_mut().zip(&b.0) {
                let cur = *tj as u128 + (a.0[i] as u128) * (*bj as u128) + carry;
                *tj = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[N] as u128 + carry;
            t[N] = cur as u64;
            t[N + 1] = (cur >> 64) as u64;

            // reduce: add ((t[0] * n0inv mod 2^64) * m) and shift one limb
            let k = t[0].wrapping_mul(self.n0inv);
            let mut carry = ((t[0] as u128) + (k as u128) * (m[0] as u128)) >> 64;
            for j in 1..N {
                let cur = t[j] as u128 + (k as u128) * (m[j] as u128) + carry;
                t[j - 1] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[N] as u128 + carry;
            t[N - 1] = cur as u64;
            t[N] = t[N + 1] + ((cur >> 64) as u64);
            t[N + 1] = 0;
        }
        let mut out = [0u64; N];
        out.copy_from_slice(&t[..N]);
        let out = Uint(out);
        // Final conditional subtraction: result < 2m at this point.
        if t[N] != 0 || out >= self.modulus {
            let (r, _) = out.sbb(&self.modulus);
            r
        } else {
            out
        }
    }

    /// Convert a reduced integer into Montgomery form (`a * R mod m`).
    #[inline]
    pub fn to_mont(&self, a: &Uint<N>) -> Uint<N> {
        self.mont_mul(a, &self.r2)
    }

    /// Convert out of Montgomery form (`a * R^{-1} mod m`).
    #[inline]
    pub fn from_mont(&self, a: &Uint<N>) -> Uint<N> {
        self.mont_mul(a, &Uint::one())
    }

    /// Modular inverse of a *Montgomery-form* value, by binary extended GCD.
    ///
    /// Returns `a⁻¹` also in Montgomery form, or `None` for zero (or a value
    /// sharing a factor with the modulus, which cannot happen for the prime
    /// moduli used here). This replaces Fermat exponentiation (`a^{m−2}`,
    /// ~`64·N` squarings + multiplications) with `O(64·N)` shift/subtract
    /// steps on raw limbs — one to two orders of magnitude faster.
    pub fn inv_mont(&self, a: &Uint<N>) -> Option<Uint<N>> {
        if a.is_zero() {
            return None;
        }
        let m = &self.modulus;
        // Halve x modulo m: x even ⇒ x/2, else (x + m)/2 (m odd ⇒ x + m even).
        let halve = |x: &Uint<N>| -> Uint<N> {
            if x.is_even() {
                x.shr1()
            } else {
                let (sum, carry) = x.adc(m);
                let mut h = sum.shr1();
                if carry {
                    h.0[N - 1] |= 1u64 << 63;
                }
                h
            }
        };
        let mut u = *a;
        let mut v = *m;
        let mut x1 = Uint::<N>::one(); // x1·a ≡ u (mod m), up to powers of 2 tracked by halving
        let mut x2 = Uint::<N>::ZERO; // x2·a ≡ v (mod m)
        let one = Uint::<N>::one();
        while u != one && v != one {
            while u.is_even() {
                u = u.shr1();
                x1 = halve(&x1);
            }
            while v.is_even() {
                v = v.shr1();
                x2 = halve(&x2);
            }
            if u >= v {
                let (d, _) = u.sbb(&v);
                u = d;
                x1 = self.sub(&x1, &x2);
            } else {
                let (d, _) = v.sbb(&u);
                v = d;
                x2 = self.sub(&x2, &x1);
            }
            if u.is_zero() || v.is_zero() {
                return None; // gcd(a, m) ≠ 1
            }
        }
        let raw = if u == one { x1 } else { x2 };
        // raw = (a_mont)⁻¹ = a⁻¹·R⁻¹; two Montgomery muls by R² restore the
        // Montgomery form of a⁻¹.
        Some(self.mont_mul(&self.mont_mul(&raw, &self.r2), &self.r2))
    }

    /// Reduce an arbitrary double-width value (little-endian limbs, length
    /// `<= 2N`) modulo `m` by schoolbook shift-subtract. Not fast — used for
    /// hashing into fields and start-up derivations only.
    pub fn reduce_wide(&self, wide: &[u64]) -> Uint<N> {
        let mut acc = Uint::<N>::ZERO;
        // Process from most-significant limb downward: acc = acc * 2^64 + limb.
        for &limb in wide.iter().rev() {
            // acc <<= 64 (modularly), one bit at a time per limb is slow; do
            // limb-shift via 64 modular doublings.
            for _ in 0..64 {
                acc = self.add(&acc, &acc);
            }
            let mut l = Uint::<N>::ZERO;
            l.0[0] = limb;
            // l is < 2^64 <= m for our fields, but be safe:
            let l = if l >= self.modulus { self.sub(&l, &Uint::ZERO) } else { l };
            acc = self.add(&acc, &l);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::U256;

    fn fr_params() -> MontParams<4> {
        MontParams::new(U256::from_hex(
            "73eda753299d7d483339d80809a1d80553bda402fffe5bfeffffffff00000001",
        ))
    }

    #[test]
    fn n0inv_is_correct() {
        let p = fr_params();
        assert_eq!(p.modulus.0[0].wrapping_mul(p.n0inv), u64::MAX); // -1 mod 2^64
    }

    #[test]
    fn mont_round_trip() {
        let p = fr_params();
        for v in [0u64, 1, 2, 12345, u64::MAX] {
            let x = U256::from_u64(v);
            let m = p.to_mont(&x);
            assert_eq!(p.from_mont(&m), x, "round trip failed for {v}");
        }
    }

    #[test]
    fn mont_mul_matches_schoolbook() {
        let p = fr_params();
        let a = U256::from_hex("123456789abcdef0fedcba9876543210aabbccddeeff0011");
        let b = U256::from_hex("2b992ddfa23249d6");
        let am = p.to_mont(&a);
        let bm = p.to_mont(&b);
        let prod = p.from_mont(&p.mont_mul(&am, &bm));
        // reference: reduce the double-width product
        let wide = a.mul_wide(&b);
        let expect = p.reduce_wide(&wide);
        assert_eq!(prod, expect);
    }

    #[test]
    fn add_sub_neg() {
        let p = fr_params();
        let a = U256::from_u64(7);
        let b = p.neg(&a);
        assert!(p.add(&a, &b).is_zero());
        assert_eq!(p.sub(&U256::ZERO, &a), b);
        assert!(p.neg(&U256::ZERO).is_zero());
    }

    #[test]
    fn inv_mont_round_trip() {
        let p = fr_params();
        for v in [1u64, 2, 3, 12345, u64::MAX] {
            let x = p.to_mont(&U256::from_u64(v));
            let inv = p.inv_mont(&x).expect("nonzero invertible");
            assert_eq!(p.mont_mul(&x, &inv), p.r1, "x·x⁻¹ must be 1 (Montgomery) for {v}");
        }
        let big = p.to_mont(&U256::from_hex(
            "73eda753299d7d483339d80809a1d80553bda402fffe5bfefffffffe00000000",
        ));
        let inv = p.inv_mont(&big).unwrap();
        assert_eq!(p.mont_mul(&big, &inv), p.r1);
        assert!(p.inv_mont(&U256::ZERO).is_none());
    }

    #[test]
    fn reduce_wide_of_modulus_is_zero() {
        let p = fr_params();
        let mut wide = vec![0u64; 8];
        wide[..4].copy_from_slice(&p.modulus.0);
        assert!(p.reduce_wide(&wide).is_zero());
    }
}
