//! Montgomery-form modular arithmetic over a fixed odd modulus.
//!
//! All constants (`n0inv`, `R`, `R²`) are *derived at run time* from the
//! modulus, so the pairing layer never hard-codes values it cannot verify.

use crate::uint::Uint;

/// Parameters for Montgomery arithmetic modulo an odd modulus `m` of `N`
/// limbs. `R = 2^{64N} mod m`.
#[derive(Clone, Debug)]
pub struct MontParams<const N: usize> {
    /// The modulus.
    pub modulus: Uint<N>,
    /// `-m^{-1} mod 2^64`.
    pub n0inv: u64,
    /// `R mod m` — the Montgomery form of 1.
    pub r1: Uint<N>,
    /// `R² mod m` — used to convert into Montgomery form.
    pub r2: Uint<N>,
    /// Whether the hand-scheduled multiplication kernels ([`crate::asm`]
    /// on x86_64, [`crate::asm_aarch64`] on aarch64) may be used for this
    /// width (CPUID-probed once at construction; always `false` on other
    /// architectures or for widths without a kernel).
    pub(crate) use_asm: bool,
}

impl<const N: usize> MontParams<N> {
    /// Derive all Montgomery constants from the (odd) modulus.
    pub fn new(modulus: Uint<N>) -> Self {
        assert!(modulus.0[0] & 1 == 1, "Montgomery modulus must be odd");
        assert!(
            modulus.highest_bit().map(|b| b as usize) < Some(64 * N - 1),
            "modulus must leave headroom for carries"
        );
        // Newton-Hensel inversion of m mod 2^64: each step doubles precision.
        let m0 = modulus.0[0];
        let mut inv: u64 = 1;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(inv)));
        }
        debug_assert_eq!(m0.wrapping_mul(inv), 1);
        let n0inv = inv.wrapping_neg();

        // R mod m by doubling 1, 64*N times.
        let mut r1 = Uint::<N>::one();
        for _ in 0..(64 * N) {
            r1 = Self::add_mod_raw(&r1, &r1, &modulus);
        }
        // R^2 mod m by doubling R, 64*N more times.
        let mut r2 = r1;
        for _ in 0..(64 * N) {
            r2 = Self::add_mod_raw(&r2, &r2, &modulus);
        }
        // The asm kernels keep the working value in an (N+1)-register
        // window; mid-round sums stay below 2^{64(N+1)} only when
        // m < 2^{64N−1}. The headroom assert above guarantees that for
        // every constructible MontParams, but gate on it explicitly so a
        // future relaxation of the assert cannot silently produce wrong
        // products through the kernels.
        #[cfg(target_arch = "x86_64")]
        let use_asm = (N == 4 || N == 6) && modulus.0[N - 1] >> 63 == 0 && crate::asm::supported();
        #[cfg(target_arch = "aarch64")]
        let use_asm =
            (N == 4 || N == 6) && modulus.0[N - 1] >> 63 == 0 && crate::asm_aarch64::supported();
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        let use_asm = false;
        Self { modulus, n0inv, r1, r2, use_asm }
    }

    #[inline]
    fn add_mod_raw(a: &Uint<N>, b: &Uint<N>, m: &Uint<N>) -> Uint<N> {
        let (sum, carry) = a.adc(b);
        let (reduced, borrow) = sum.sbb(m);
        if carry || !borrow {
            reduced
        } else {
            sum
        }
    }

    /// Modular addition of two reduced values.
    #[inline]
    pub fn add(&self, a: &Uint<N>, b: &Uint<N>) -> Uint<N> {
        Self::add_mod_raw(a, b, &self.modulus)
    }

    /// Modular subtraction of two reduced values.
    #[inline]
    pub fn sub(&self, a: &Uint<N>, b: &Uint<N>) -> Uint<N> {
        let (diff, borrow) = a.sbb(b);
        if borrow {
            let (wrapped, _) = diff.adc(&self.modulus);
            wrapped
        } else {
            diff
        }
    }

    /// Modular negation of a reduced value.
    #[inline]
    pub fn neg(&self, a: &Uint<N>) -> Uint<N> {
        if a.is_zero() {
            *a
        } else {
            let (diff, _) = self.modulus.sbb(a);
            diff
        }
    }

    /// Montgomery multiplication: returns `a * b * R^{-1} mod m` for
    /// reduced inputs.
    ///
    /// Dispatches to the BMI2+ADX assembly kernels ([`crate::asm`]) when
    /// the CPU supports them (probed once in [`MontParams::new`]); the
    /// portable path is [`MontParams::mont_mul_portable`], which also
    /// serves as the correctness reference the kernels are property-tested
    /// against.
    #[inline]
    pub fn mont_mul(&self, a: &Uint<N>, b: &Uint<N>) -> Uint<N> {
        #[cfg(target_arch = "x86_64")]
        if self.use_asm {
            if N == 6 {
                let (limbs, hi) = unsafe {
                    crate::asm::mont_mul_6(
                        a.0[..].try_into().expect("N == 6"),
                        b.0[..].try_into().expect("N == 6"),
                        self.modulus.0[..].try_into().expect("N == 6"),
                        self.n0inv,
                    )
                };
                let mut out = [0u64; N];
                out.copy_from_slice(&limbs);
                return self.reduce_once(Uint(out), hi);
            }
            if N == 4 {
                let (limbs, hi) = unsafe {
                    crate::asm::mont_mul_4(
                        a.0[..].try_into().expect("N == 4"),
                        b.0[..].try_into().expect("N == 4"),
                        self.modulus.0[..].try_into().expect("N == 4"),
                        self.n0inv,
                    )
                };
                let mut out = [0u64; N];
                out.copy_from_slice(&limbs);
                return self.reduce_once(Uint(out), hi);
            }
        }
        #[cfg(target_arch = "aarch64")]
        if self.use_asm {
            if N == 6 {
                let (limbs, hi) = unsafe {
                    crate::asm_aarch64::mont_mul_6(
                        a.0[..].try_into().expect("N == 6"),
                        b.0[..].try_into().expect("N == 6"),
                        self.modulus.0[..].try_into().expect("N == 6"),
                        self.n0inv,
                    )
                };
                let mut out = [0u64; N];
                out.copy_from_slice(&limbs);
                return self.reduce_once(Uint(out), hi);
            }
            if N == 4 {
                let (limbs, hi) = unsafe {
                    crate::asm_aarch64::mont_mul_4(
                        a.0[..].try_into().expect("N == 4"),
                        b.0[..].try_into().expect("N == 4"),
                        self.modulus.0[..].try_into().expect("N == 4"),
                        self.n0inv,
                    )
                };
                let mut out = [0u64; N];
                out.copy_from_slice(&limbs);
                return self.reduce_once(Uint(out), hi);
            }
        }
        self.mont_mul_portable(a, b)
    }

    /// Final CIOS correction: the raw product is `< 2m`, so at most one
    /// subtraction of the modulus canonicalizes it.
    ///
    /// Branchless: this sits at the tail of *every* Montgomery reduction,
    /// and whether the subtraction triggers is data-dependent coin-flip
    /// noise, so a compare-and-branch mispredicts about half the time. The
    /// wrap is exact in the `hi != 0` case too: the true value is
    /// `2^{64N} + out < 2m`, and the wrapping `out − m` equals it minus `m`.
    #[inline]
    pub(crate) fn reduce_once(&self, out: Uint<N>, hi: u64) -> Uint<N> {
        let (cand, borrow) = out.sbb(&self.modulus);
        // take the subtracted candidate when hi ≠ 0 or out ≥ m (no borrow)
        let keep_out = ((hi == 0) & borrow) as u64;
        let mask = keep_out.wrapping_neg();
        let mut r = [0u64; N];
        for (i, ri) in r.iter_mut().enumerate() {
            *ri = cand.0[i] ^ ((cand.0[i] ^ out.0[i]) & mask);
        }
        Uint(r)
    }

    /// Portable fused-CIOS Montgomery multiplication (`a * b * R^{-1} mod
    /// m` for reduced inputs) — the dispatch target when no assembly
    /// kernel applies, and the reference the kernels are tested against.
    ///
    /// Each outer iteration interleaves the `a[i]·b` accumulation with the
    /// Montgomery reduction of the low limb in a *single* pass over the
    /// working register (two independent carry chains), instead of the
    /// classical two-pass CIOS this replaced. The working register needs
    /// only `N` limbs plus a one-bit overflow word: the invariant
    /// `t < 2m` holds at the top of every iteration, so the second spill
    /// limb of two-pass CIOS never materializes.
    pub fn mont_mul_portable(&self, a: &Uint<N>, b: &Uint<N>) -> Uint<N> {
        let m = &self.modulus.0;
        let n0inv = self.n0inv;
        let mut t = [0u64; N];
        let mut t_hi = 0u64; // the (N+1)-th limb; always 0 or 1
        for i in 0..N {
            let ai = a.0[i] as u128;
            // j = 0: compute the reduction factor from the fresh low limb.
            let cur = t[0] as u128 + ai * b.0[0] as u128;
            let k = (cur as u64).wrapping_mul(n0inv) as u128;
            let red = (cur as u64) as u128 + k * m[0] as u128;
            debug_assert_eq!(red as u64, 0, "low limb must cancel");
            let mut carry_mul = (cur >> 64) as u64;
            let mut carry_red = (red >> 64) as u64;
            for j in 1..N {
                let cur = t[j] as u128 + ai * b.0[j] as u128 + carry_mul as u128;
                carry_mul = (cur >> 64) as u64;
                let red = (cur as u64) as u128 + k * m[j] as u128 + carry_red as u128;
                t[j - 1] = red as u64;
                carry_red = (red >> 64) as u64;
            }
            let fin = t_hi as u128 + carry_mul as u128 + carry_red as u128;
            t[N - 1] = fin as u64;
            t_hi = (fin >> 64) as u64;
        }
        // Final conditional subtraction: result < 2m at this point.
        self.reduce_once(Uint(t), t_hi)
    }

    /// Convert a reduced integer into Montgomery form (`a * R mod m`).
    #[inline]
    pub fn to_mont(&self, a: &Uint<N>) -> Uint<N> {
        self.mont_mul(a, &self.r2)
    }

    /// Convert out of Montgomery form (`a * R^{-1} mod m`).
    #[inline]
    pub fn from_mont(&self, a: &Uint<N>) -> Uint<N> {
        self.mont_mul(a, &Uint::one())
    }

    /// Modular inverse of a *Montgomery-form* value, by the Kaliski
    /// almost-Montgomery-inverse.
    ///
    /// Returns `a⁻¹` also in Montgomery form, or `None` for zero (or a value
    /// sharing a factor with the modulus, which cannot happen for the prime
    /// moduli used here).
    ///
    /// Phase 1 maintains the invariants `a·r ≡ −u·2^k` and `a·s ≡ v·2^k
    /// (mod m)` with *plain-integer* shifts and additions on `r`/`s` — the
    /// binary-GCD predecessor of this routine paid a modular halving
    /// (conditional modulus addition) on the cofactor at every even step.
    /// All four working registers are length-tracked: `u`/`v` shrink from
    /// `N` limbs toward 1 and `r`/`s` grow from 1 limb, so the average
    /// step touches about half the limbs. Phase 2 strips the accumulated
    /// `2^k` with two Montgomery multiplications by precomputed powers.
    pub fn inv_mont(&self, a: &Uint<N>) -> Option<Uint<N>> {
        if a.is_zero() {
            return None;
        }
        let m = &self.modulus;
        // Invariants (mod m): a·r ≡ −u·2^k and a·s ≡ v·2^k — they pin the
        // initialization to u = m, v = a, r = 0, s = 1. A third, *integer*
        // invariant `u·s + v·r = m` is preserved by every step and bounds
        // the cofactors: s ≤ m/u and r ≤ m/v, so r, s < 2m even after the
        // final cross-accumulation.
        let mut u = *m;
        let mut v = *a;
        // r and s carry one limb of headroom: they are bounded by 2m, and
        // both moduli here leave at least one spare bit per Uint — but the
        // textbook bound is easy to get subtly wrong, so the top limb is
        // tracked explicitly and debug-asserted never to exceed one bit.
        let mut r = [0u64; 16];
        let mut s = [0u64; 16];
        debug_assert!(N < 16);
        s[0] = 1;
        let mut u_len = N; // active limbs of u (shrinks)
        let mut v_len = N;
        let mut rs_len = 1usize; // active limbs of r and s (grows, incl. headroom)
        let mut k = 0u32;

        // (local helpers; arrays are wider than needed so the compiler
        // keeps the loops simple)
        #[inline]
        fn shl1(x: &mut [u64; 16], len: &mut usize) {
            let mut carry = 0u64;
            for xi in x.iter_mut().take(*len) {
                let nc = *xi >> 63;
                *xi = (*xi << 1) | carry;
                carry = nc;
            }
            if carry != 0 {
                x[*len] = carry;
                *len += 1;
            }
        }
        #[inline]
        fn add_into(dst: &mut [u64; 16], src: &[u64; 16], len: &mut usize) {
            let mut carry = 0u64;
            for i in 0..*len {
                let (t, c1) = dst[i].overflowing_add(src[i]);
                let (t, c2) = t.overflowing_add(carry);
                dst[i] = t;
                carry = (c1 as u64) + (c2 as u64);
            }
            if carry != 0 {
                dst[*len] = carry;
                *len += 1;
            }
        }

        loop {
            if u.0[0] & 1 == 0 {
                // u /= 2, s *= 2
                for i in 0..u_len {
                    u.0[i] = (u.0[i] >> 1) | if i + 1 < u_len { u.0[i + 1] << 63 } else { 0 };
                }
                shl1(&mut s, &mut rs_len);
            } else if v.0[0] & 1 == 0 {
                // v /= 2, r *= 2
                for i in 0..v_len {
                    v.0[i] = (v.0[i] >> 1) | if i + 1 < v_len { v.0[i + 1] << 63 } else { 0 };
                }
                shl1(&mut r, &mut rs_len);
            } else {
                // both odd: subtract the smaller, halve, cross-accumulate
                let u_ge_v = if u_len != v_len {
                    u_len > v_len
                } else {
                    let mut ord = true;
                    for i in (0..u_len).rev() {
                        if u.0[i] != v.0[i] {
                            ord = u.0[i] > v.0[i];
                            break;
                        }
                    }
                    ord
                };
                if u_ge_v {
                    // u = (u − v)/2 (even after the subtraction), r += s, s *= 2
                    let mut borrow = 0u64;
                    for i in 0..u_len {
                        let vi = if i < v_len { v.0[i] } else { 0 };
                        let (t, b1) = u.0[i].overflowing_sub(vi);
                        let (t, b2) = t.overflowing_sub(borrow);
                        u.0[i] = t;
                        borrow = (b1 as u64) + (b2 as u64);
                    }
                    for i in 0..u_len {
                        u.0[i] = (u.0[i] >> 1) | if i + 1 < u_len { u.0[i + 1] << 63 } else { 0 };
                    }
                    let (r_arr, s_arr) = (&mut r, &mut s);
                    add_into(r_arr, s_arr, &mut rs_len);
                    shl1(s_arr, &mut rs_len);
                    if u.is_zero() {
                        // u == v at subtraction time ⇒ gcd(u, v) == v; for a
                        // unit, that happens exactly when v == 1.
                        break;
                    }
                } else {
                    // v = (v − u)/2, s += r, r *= 2
                    let mut borrow = 0u64;
                    for i in 0..v_len {
                        let ui = if i < u_len { u.0[i] } else { 0 };
                        let (t, b1) = v.0[i].overflowing_sub(ui);
                        let (t, b2) = t.overflowing_sub(borrow);
                        v.0[i] = t;
                        borrow = (b1 as u64) + (b2 as u64);
                    }
                    for i in 0..v_len {
                        v.0[i] = (v.0[i] >> 1) | if i + 1 < v_len { v.0[i + 1] << 63 } else { 0 };
                    }
                    let (r_arr, s_arr) = (&mut r, &mut s);
                    add_into(s_arr, r_arr, &mut rs_len);
                    shl1(r_arr, &mut rs_len);
                    if v.is_zero() {
                        break;
                    }
                }
            }
            k += 1;
            while u_len > 1 && u.0[u_len - 1] == 0 {
                u_len -= 1;
            }
            while v_len > 1 && v.0[v_len - 1] == 0 {
                v_len -= 1;
            }
        }
        // The loop exits with the surviving register holding gcd(a, m); it
        // must be 1 for an invertible input. The broken-out final step did
        // not pass the bottom-of-loop increment, so count it here.
        k += 1;
        let (gcd, winner_is_s) = if v.is_zero() { (&u, false) } else { (&v, true) };
        if *gcd != Uint::<N>::one() {
            return None;
        }
        // Winner invariant: a·s ≡ v·2^k with v = 1 (s is the cofactor) when
        // v survived; a·r ≡ −u·2^k when u survived. Reduce below 2^{64N},
        // then into [0, m).
        let mut raw = [0u64; 16];
        raw.copy_from_slice(if winner_is_s { &s } else { &r });
        let negate = !winner_is_s; // r-case carries the −1 sign
        debug_assert!(rs_len <= N + 1, "cofactor outgrew the 2m bound");
        // fold limb N (at most a few bits) back below 2^{64N} by
        // subtracting m·2^{64N}/... — simpler: repeated subtraction of m
        // from the (N+1)-limb value; the bound raw < 2m means at most one.
        let mut val = Uint::<N>::ZERO;
        val.0.copy_from_slice(&raw[..N]);
        let mut hi = raw[N];
        while hi != 0 || val >= *m {
            let (d, borrow) = val.sbb(m);
            hi -= borrow as u64;
            val = d;
        }
        let mut inv_raw = if negate { self.neg(&val) } else { val };
        // inv_raw ≡ ±a⁻¹·2^k·(sign fixed) with a in Montgomery form, i.e.
        // inv_raw = a⁻¹·R⁻¹·2^k. Normalize k into (64N, 128N] with modular
        // doublings (k ≥ the modulus bit-length, so only a few are needed),
        // then two Montgomery multiplications strip the power of two:
        //   mont(inv_raw, R²) = a⁻¹·2^k
        //   mont(·, 2^{128N−k}) = a⁻¹·2^{64N} = a⁻¹·R.
        while (k as usize) <= 64 * N {
            inv_raw = self.add(&inv_raw, &inv_raw);
            k += 1;
        }
        let e = 2 * 64 * N - k as usize; // in [0, 64N)
        let mut pow2 = Uint::<N>::ZERO;
        pow2.0[e / 64] = 1u64 << (e % 64);
        Some(self.mont_mul(&self.mont_mul(&inv_raw, &self.r2), &pow2))
    }

    /// Reduce an arbitrary double-width value (little-endian limbs, length
    /// `<= 2N`) modulo `m` by schoolbook shift-subtract. Not fast — used for
    /// hashing into fields and start-up derivations only.
    pub fn reduce_wide(&self, wide: &[u64]) -> Uint<N> {
        let mut acc = Uint::<N>::ZERO;
        // Process from most-significant limb downward: acc = acc * 2^64 + limb.
        for &limb in wide.iter().rev() {
            // acc <<= 64 (modularly), one bit at a time per limb is slow; do
            // limb-shift via 64 modular doublings.
            for _ in 0..64 {
                acc = self.add(&acc, &acc);
            }
            let mut l = Uint::<N>::ZERO;
            l.0[0] = limb;
            // l is < 2^64 <= m for our fields, but be safe:
            let l = if l >= self.modulus { self.sub(&l, &Uint::ZERO) } else { l };
            acc = self.add(&acc, &l);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::U256;

    fn fr_params() -> MontParams<4> {
        MontParams::new(U256::from_hex(
            "73eda753299d7d483339d80809a1d80553bda402fffe5bfeffffffff00000001",
        ))
    }

    #[test]
    fn n0inv_is_correct() {
        let p = fr_params();
        assert_eq!(p.modulus.0[0].wrapping_mul(p.n0inv), u64::MAX); // -1 mod 2^64
    }

    #[test]
    fn mont_round_trip() {
        let p = fr_params();
        for v in [0u64, 1, 2, 12345, u64::MAX] {
            let x = U256::from_u64(v);
            let m = p.to_mont(&x);
            assert_eq!(p.from_mont(&m), x, "round trip failed for {v}");
        }
    }

    #[test]
    fn mont_mul_matches_schoolbook() {
        let p = fr_params();
        let a = U256::from_hex("123456789abcdef0fedcba9876543210aabbccddeeff0011");
        let b = U256::from_hex("2b992ddfa23249d6");
        let am = p.to_mont(&a);
        let bm = p.to_mont(&b);
        let prod = p.from_mont(&p.mont_mul(&am, &bm));
        // reference: reduce the double-width product
        let wide = a.mul_wide(&b);
        let expect = p.reduce_wide(&wide);
        assert_eq!(prod, expect);
    }

    #[test]
    fn add_sub_neg() {
        let p = fr_params();
        let a = U256::from_u64(7);
        let b = p.neg(&a);
        assert!(p.add(&a, &b).is_zero());
        assert_eq!(p.sub(&U256::ZERO, &a), b);
        assert!(p.neg(&U256::ZERO).is_zero());
    }

    #[test]
    fn inv_mont_round_trip() {
        let p = fr_params();
        for v in [1u64, 2, 3, 12345, u64::MAX] {
            let x = p.to_mont(&U256::from_u64(v));
            let inv = p.inv_mont(&x).expect("nonzero invertible");
            assert_eq!(p.mont_mul(&x, &inv), p.r1, "x·x⁻¹ must be 1 (Montgomery) for {v}");
        }
        let big = p.to_mont(&U256::from_hex(
            "73eda753299d7d483339d80809a1d80553bda402fffe5bfefffffffe00000000",
        ));
        let inv = p.inv_mont(&big).unwrap();
        assert_eq!(p.mont_mul(&big, &inv), p.r1);
        assert!(p.inv_mont(&U256::ZERO).is_none());
    }

    /// A tiny deterministic xorshift so this crate needs no RNG dependency.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn fp_params() -> MontParams<6> {
        MontParams::new(crate::U384::from_hex(
            "1a0111ea397fe69a4b1ba7b6434bacd764774b84f38512bf6730d2a0f6b0f6241eabfffeb153ffffb9feffffffffaaab",
        ))
    }

    fn random_reduced<const N: usize>(p: &MontParams<N>, state: &mut u64) -> Uint<N> {
        loop {
            let mut limbs = [0u64; N];
            for l in &mut limbs {
                *l = xorshift(state);
            }
            let v = Uint(limbs);
            if v < p.modulus {
                return v;
            }
        }
    }

    /// The asm kernels must agree with the portable fused-CIOS path on a
    /// large random sample (both fields), including the boundary values
    /// that exercise the final conditional subtraction.
    #[test]
    fn asm_and_portable_mont_mul_agree() {
        let fr = super::super::U256::from_hex(
            "73eda753299d7d483339d80809a1d80553bda402fffe5bfeffffffff00000001",
        );
        let fr = MontParams::new(fr);
        let fp = fp_params();
        let mut state = 0x9e3779b97f4a7c15u64;
        for _ in 0..2_000 {
            let a = random_reduced(&fp, &mut state);
            let b = random_reduced(&fp, &mut state);
            assert_eq!(fp.mont_mul(&a, &b), fp.mont_mul_portable(&a, &b));
            let a = random_reduced(&fr, &mut state);
            let b = random_reduced(&fr, &mut state);
            assert_eq!(fr.mont_mul(&a, &b), fr.mont_mul_portable(&a, &b));
        }
        // boundary inputs: 0, 1, m−1 in all combinations
        let (m1, _) = fp.modulus.sbb(&Uint::one());
        for a in [Uint::ZERO, Uint::one(), m1] {
            for b in [Uint::ZERO, Uint::one(), m1] {
                assert_eq!(fp.mont_mul(&a, &b), fp.mont_mul_portable(&a, &b));
            }
        }
    }

    /// The Kaliski inversion must round-trip on a large random sample of
    /// both fields (the few-value test above only exercises tiny inputs).
    #[test]
    fn inv_mont_random_round_trip() {
        let fr = fr_params();
        let fp = fp_params();
        let mut state = 0x1234_5678_9abc_def1u64;
        for _ in 0..500 {
            let x = random_reduced(&fp, &mut state);
            if x.is_zero() {
                continue;
            }
            let inv = fp.inv_mont(&x).expect("nonzero");
            assert_eq!(fp.mont_mul(&x, &inv), fp.r1);
            let y = random_reduced(&fr, &mut state);
            if y.is_zero() {
                continue;
            }
            let inv = fr.inv_mont(&y).expect("nonzero");
            assert_eq!(fr.mont_mul(&y, &inv), fr.r1);
        }
        // powers of two exercise the longest even-stripping runs
        for sh in [1u32, 63, 64, 127, 254] {
            let mut x = U256::ZERO;
            x.0[(sh / 64) as usize] = 1u64 << (sh % 64);
            let inv = fr.inv_mont(&x).expect("nonzero");
            assert_eq!(fr.mont_mul(&x, &inv), fr.r1, "2^{sh}");
        }
    }

    #[test]
    fn reduce_wide_of_modulus_is_zero() {
        let p = fr_params();
        let mut wide = vec![0u64; 8];
        wide[..4].copy_from_slice(&p.modulus.0);
        assert!(p.reduce_wide(&wide).is_zero());
    }
}
