//! A small Zipf-distributed sampler (rank-frequency skew for keywords and
//! addresses), implemented directly so the workspace needs no extra
//! statistics crates.

use rand::Rng;

/// Samples ranks `0..n` with probability ∝ `1 / (rank + 1)^exponent` via a
/// precomputed CDF and binary search.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(exponent);
            cdf.push(acc);
        }
        let total = *cdf.last().unwrap();
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ranks_in_range_and_skewed() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10], "rank 0 must dominate rank 10");
        assert!(counts[0] > counts[50] * 5, "heavy head expected");
        assert!(counts.iter().sum::<usize>() == 20_000);
    }

    #[test]
    fn single_element_support() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    fn exponent_zero_is_uniformish() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*max < *min * 2, "uniform-ish expected: {counts:?}");
    }
}
