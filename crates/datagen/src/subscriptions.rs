//! Standing-query (subscription) workload generator.
//!
//! Time-window queries are sampled per experiment; subscriptions are
//! *registered once and matched forever*, so their statistical shape is what
//! the subscription index lives or dies by: how many distinct clause
//! contents exist (the BCIF sharing pool), how many distinct literals the
//! posting lists carry, and how skewed the popularity of both is. This
//! module generates those populations at the 10⁵–10⁶ scale under two
//! profiles:
//!
//! * [`SkewProfile::Zipf`] — the realistic shape: clause contents drawn
//!   from a bounded pool with Zipf popularity (few hot clauses shared by
//!   thousands of queries, a long tail of rare ones), grid-aligned
//!   power-of-two ranges so the prefix cover of every range is a single
//!   literal and the distinct-literal population stays bounded.
//! * [`SkewProfile::Adversarial`] — attribute skew designed against the
//!   index: one scorching clause every query shares (posting lists of
//!   length Q), *ghost* keywords no block ever carries (probes that must
//!   miss), and stacked single-cell ranges (the interval index degenerates
//!   to one bucket).
//!
//! Both profiles are deterministic in `(spec, n)` and name keywords through
//! [`Dataset::keyword`], so generated subscriptions actually collide with
//! the block streams of [`crate::workload`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vchain_core::query::{Query, RangeSpec};

use crate::workload::Dataset;
use crate::zipf::Zipf;

/// The two standing-query population shapes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SkewProfile {
    /// Bounded clause pool with Zipf popularity; grid-aligned ranges.
    Zipf,
    /// Hot shared clause + ghost keywords + stacked single-cell ranges.
    Adversarial,
}

/// Generation parameters for a standing-query population.
#[derive(Clone, Debug)]
pub struct SubscriptionSpec {
    /// Keyword naming and dimensionality follow this dataset.
    pub dataset: Dataset,
    /// Numeric dimension width in bits (must match the miner's).
    pub domain_bits: u8,
    /// Keyword vocabulary size (ranks `0..vocab` appear in block streams;
    /// ghost keywords use ranks `vocab..`).
    pub vocab: usize,
    /// Zipf exponent for keyword and clause popularity.
    pub skew: f64,
    /// Which population shape to generate.
    pub profile: SkewProfile,
    /// Number of distinct keyword clauses in the pool (the BCIF effect:
    /// `n` queries share at most this many keyword-clause contents).
    pub clause_pool: usize,
    /// Keywords per disjunctive clause.
    pub clause_size: usize,
    /// Fraction of queries that also carry range predicates.
    pub range_fraction: f64,
    /// log₂ of the range width; ranges are aligned to multiples of the
    /// width, so each one covers exactly one binary prefix.
    pub range_bits: u8,
    /// Dimensions touched by each range predicate.
    pub dims_per_query: usize,
    /// RNG seed; `(spec, n)` fully determines the output.
    pub seed: u64,
}

impl SubscriptionSpec {
    /// Defaults matched to [`crate::workload::WorkloadSpec::paper_defaults`]
    /// for the same dataset: same vocabulary and skew, selective ranges
    /// (width `2^(domain_bits-5)`, ~3 % of the domain per dimension).
    pub fn paper_defaults(dataset: Dataset, profile: SkewProfile) -> Self {
        let base = crate::workload::WorkloadSpec::paper_defaults(dataset, 1);
        Self {
            dataset,
            domain_bits: base.domain_bits,
            vocab: base.vocab,
            skew: base.skew,
            profile,
            clause_pool: 512,
            clause_size: base.bool_size.max(1),
            range_fraction: 0.5,
            range_bits: base.domain_bits.saturating_sub(5).max(1),
            dims_per_query: base.dims_per_query,
            seed: base.seed ^ 0x5BB5,
        }
    }

    /// Generate `n` subscription queries (no time windows).
    pub fn generate(&self, n: usize) -> Vec<Query> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let kw_zipf = Zipf::new(self.vocab, self.skew);
        let pool: Vec<Vec<String>> =
            (0..self.clause_pool.max(1)).map(|_| self.clause(&mut rng, &kw_zipf)).collect();
        let pool_zipf = Zipf::new(pool.len(), self.skew.max(0.5));
        (0..n)
            .map(|i| match self.profile {
                SkewProfile::Zipf => {
                    let ranges = if rng.gen::<f64>() < self.range_fraction {
                        self.aligned_ranges(&mut rng)
                    } else {
                        Vec::new()
                    };
                    let kws = pool[pool_zipf.sample(&mut rng)].clone();
                    Query { time_window: None, ranges, keywords: vec![kws] }
                }
                SkewProfile::Adversarial => match i % 3 {
                    // Every third query shares the single hottest clause:
                    // its posting lists grow with Q.
                    0 => Query {
                        time_window: None,
                        ranges: Vec::new(),
                        keywords: vec![pool[0].clone()],
                    },
                    // Ghost clauses: keywords with ranks past the
                    // vocabulary, so no block stream ever carries them and
                    // every Bloom probe for them must answer "absent".
                    1 => {
                        let ghost = (0..self.clause_size)
                            .map(|_| {
                                self.dataset.keyword(self.vocab + rng.gen_range(0..self.vocab))
                            })
                            .collect();
                        Query { time_window: None, ranges: Vec::new(), keywords: vec![ghost] }
                    }
                    // Stacked ranges: everyone crowds the same aligned
                    // window (same grid cell, same cover prefix), plus a
                    // pooled clause so matching stays non-trivial.
                    _ => {
                        let width = 1u64 << self.range_bits.min(self.domain_bits);
                        let ranges = (0..self.dims_per_query.max(1))
                            .map(|d| RangeSpec { dim: d as u8, lo: 0, hi: width - 1 })
                            .collect();
                        let kws = pool[pool_zipf.sample(&mut rng)].clone();
                        Query { time_window: None, ranges, keywords: vec![kws] }
                    }
                },
            })
            .collect()
    }

    fn clause(&self, rng: &mut StdRng, zipf: &Zipf) -> Vec<String> {
        let size = self.clause_size.min(self.vocab).max(1);
        let mut kws = Vec::with_capacity(size);
        while kws.len() < size {
            let k = self.dataset.keyword(zipf.sample(rng));
            if !kws.contains(&k) {
                kws.push(k);
            }
        }
        kws
    }

    fn aligned_ranges(&self, rng: &mut StdRng) -> Vec<RangeSpec> {
        let bits = self.range_bits.min(self.domain_bits);
        let width = 1u64 << bits;
        let cells = 1u64 << (self.domain_bits - bits);
        (0..self.dims_per_query.max(1))
            .map(|d| {
                let lo = rng.gen_range(0..cells) * width;
                RangeSpec { dim: d as u8, lo, hi: lo + width - 1 }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn generation_is_deterministic() {
        let spec = SubscriptionSpec::paper_defaults(Dataset::FourSquare, SkewProfile::Zipf);
        assert_eq!(spec.generate(200), spec.generate(200));
    }

    #[test]
    fn zipf_profile_bounds_clause_contents() {
        let spec = SubscriptionSpec::paper_defaults(Dataset::FourSquare, SkewProfile::Zipf);
        let qs = spec.generate(5_000);
        let contents: BTreeSet<Vec<String>> =
            qs.iter().flat_map(|q| q.keywords.iter().cloned()).collect();
        assert!(contents.len() <= spec.clause_pool);
        for q in &qs {
            assert!(q.time_window.is_none());
            for r in &q.ranges {
                let width = r.hi - r.lo + 1;
                assert_eq!(width, 1 << spec.range_bits, "power-of-two width");
                assert_eq!(r.lo % width, 0, "aligned to the grid");
            }
        }
    }

    #[test]
    fn adversarial_profile_has_ghosts_and_a_hot_clause() {
        let spec = SubscriptionSpec::paper_defaults(Dataset::Weather, SkewProfile::Adversarial);
        let qs = spec.generate(300);
        let hot = &qs[0].keywords[0];
        let hot_count = qs.iter().filter(|q| &q.keywords[0] == hot).count();
        assert!(hot_count >= 100, "a third of the population shares one clause");
        // ghost ranks sit past the vocabulary: wx:{vocab}..
        let ghosts = qs
            .iter()
            .flat_map(|q| q.keywords[0].iter())
            .filter(|k| {
                k.strip_prefix("wx:")
                    .and_then(|r| r.parse::<usize>().ok())
                    .is_some_and(|r| r >= spec.vocab)
            })
            .count();
        assert!(ghosts > 0, "ghost keywords present");
    }
}
