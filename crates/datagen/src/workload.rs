//! Dataset simulators and query generators (paper §9 defaults).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vchain_chain::Object;
use vchain_core::query::{Query, RangeSpec};

use crate::zipf::Zipf;

/// Which of the paper's three evaluation datasets to simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dataset {
    /// Foursquare check-ins: 2-d location + ~2 place keywords, 30 s blocks.
    FourSquare,
    /// Hourly weather: 7 numeric attributes + ~2 description keywords,
    /// 1 h blocks (two dims used per range predicate).
    Weather,
    /// Ethereum transfers: 1 numeric amount + ~2 sparse addresses,
    /// 15 s blocks.
    Ethereum,
}

impl Dataset {
    /// The dataset's keyword naming: vocabulary rank → keyword string.
    /// Shared by the block stream, the query generators and the standing-
    /// subscription generators, so subscriptions actually hit the traffic.
    pub fn keyword(&self, rank: usize) -> String {
        match self {
            Dataset::FourSquare => format!("place:{rank}"),
            Dataset::Weather => format!("wx:{rank}"),
            Dataset::Ethereum => format!("addr:{rank:05x}"),
        }
    }
}

/// Generation parameters (defaults mirror §9; scale is configurable).
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    pub dataset: Dataset,
    /// Numeric dimension width in bits (quantized domain).
    pub domain_bits: u8,
    pub objects_per_block: usize,
    pub num_blocks: usize,
    /// Keyword vocabulary size (places / weather terms / addresses).
    pub vocab: usize,
    /// Average keywords per object (paper: ~2 in all three datasets).
    pub keywords_per_object: usize,
    /// Zipf exponent of the keyword distribution.
    pub skew: f64,
    /// Seconds between consecutive blocks.
    pub block_interval: u64,
    /// Default numeric-range selectivity for generated queries.
    pub selectivity: f64,
    /// Default disjunctive Boolean function size for generated queries.
    pub bool_size: usize,
    /// Dimensions touched by each range predicate (paper: 2 for WX, all
    /// otherwise).
    pub dims_per_query: usize,
    pub seed: u64,
}

impl WorkloadSpec {
    /// Paper-default moments at a configurable block count.
    pub fn paper_defaults(dataset: Dataset, num_blocks: usize) -> Self {
        match dataset {
            Dataset::FourSquare => Self {
                dataset,
                domain_bits: 8,
                objects_per_block: 12,
                num_blocks,
                vocab: 300,
                keywords_per_object: 2,
                skew: 1.0,
                block_interval: 30,
                selectivity: 0.10,
                bool_size: 3,
                dims_per_query: 2,
                seed: 0x45_51,
            },
            Dataset::Weather => Self {
                dataset,
                domain_bits: 8,
                objects_per_block: 16,
                num_blocks,
                vocab: 80,
                keywords_per_object: 2,
                skew: 0.8,
                block_interval: 3600,
                selectivity: 0.10,
                bool_size: 3,
                dims_per_query: 2,
                seed: 0x57_58,
            },
            Dataset::Ethereum => Self {
                dataset,
                domain_bits: 8,
                objects_per_block: 8,
                num_blocks,
                vocab: 1200,
                keywords_per_object: 2,
                skew: 1.1,
                block_interval: 15,
                selectivity: 0.50,
                bool_size: 9,
                dims_per_query: 1,
                seed: 0x45_54,
            },
        }
    }

    pub fn dims(&self) -> usize {
        match self.dataset {
            Dataset::FourSquare => 2,
            Dataset::Weather => 7,
            Dataset::Ethereum => 1,
        }
    }

    fn keyword(&self, rank: usize) -> String {
        self.dataset.keyword(rank)
    }

    /// Generate the block stream: `(timestamp, objects)` per block.
    pub fn generate(&self) -> Workload {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let zipf = Zipf::new(self.vocab, self.skew);
        let dims = self.dims();
        let max = (1u64 << self.domain_bits) - 1;
        let mut id = 0u64;
        let blocks = (0..self.num_blocks)
            .map(|b| {
                let ts = (b as u64 + 1) * self.block_interval;
                let objects = (0..self.objects_per_block)
                    .map(|_| {
                        id += 1;
                        let numeric: Vec<u64> = (0..dims)
                            .map(|_| match self.dataset {
                                // heavy-tailed transfer amounts
                                Dataset::Ethereum => {
                                    let x: f64 = rng.gen::<f64>();
                                    ((x * x * x) * max as f64) as u64
                                }
                                _ => rng.gen_range(0..=max),
                            })
                            .collect();
                        // keywords: Zipf over the vocabulary, deduplicated
                        let mut kws = Vec::with_capacity(self.keywords_per_object);
                        while kws.len() < self.keywords_per_object {
                            let k = self.keyword(zipf.sample(&mut rng));
                            if !kws.contains(&k) {
                                kws.push(k);
                            }
                        }
                        Object::new(id, ts, numeric, kws)
                    })
                    .collect();
                (ts, objects)
            })
            .collect();
        Workload { spec: self.clone(), blocks }
    }

    /// A query generator sharing this spec's distributions.
    pub fn query_gen(&self, seed: u64) -> QueryGen {
        QueryGen {
            spec: self.clone(),
            rng: StdRng::seed_from_u64(seed),
            zipf: Zipf::new(self.vocab, self.skew),
        }
    }
}

/// A generated block stream.
#[derive(Clone, Debug)]
pub struct Workload {
    pub spec: WorkloadSpec,
    /// `(timestamp, objects)` per block, in height order.
    pub blocks: Vec<(u64, Vec<Object>)>,
}

impl Workload {
    pub fn total_objects(&self) -> usize {
        self.blocks.iter().map(|(_, o)| o.len()).sum()
    }

    /// Timestamp window covering the last `n` blocks.
    pub fn window_of_last(&self, n: usize) -> (u64, u64) {
        let len = self.blocks.len();
        assert!(n >= 1 && n <= len);
        (self.blocks[len - n].0, self.blocks[len - 1].0)
    }

    /// A serving-replay stream: `len` queries drawn Zipf-distributed (the
    /// spec's skew) from a pool of `pool_size` *distinct* time-window
    /// queries whose windows slide across this workload's span. This is
    /// the load-harness shape — a small set of popular dashboards hammered
    /// by many clients — where a serving layer's cache either pays off or
    /// doesn't. Deterministic in `(self, pool_size, len, seed)`.
    pub fn zipf_query_stream(&self, pool_size: usize, len: usize, seed: u64) -> Vec<Query> {
        assert!(pool_size >= 1, "pool must be non-empty");
        assert!(!self.blocks.is_empty(), "workload must have blocks");
        let mut qg = self.spec.query_gen(seed);
        let t0 = self.blocks[0].0;
        let te = self.blocks[self.blocks.len() - 1].0;
        let span = te - t0;
        // Windows cover ~half the chain each, with starts sliding across
        // the first half — heavy pairwise overlap, exactly the regime the
        // cross-window proof cache targets.
        let pool: Vec<Query> = (0..pool_size)
            .map(|i| {
                let lo = t0 + (span / 2) * i as u64 / pool_size as u64;
                let hi = (lo + span / 2).min(te);
                qg.time_window((lo, hi))
            })
            .collect();
        let zipf = Zipf::new(pool_size, self.spec.skew);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5A1F_517E);
        (0..len).map(|_| pool[zipf.sample(&mut rng)].clone()).collect()
    }
}

/// Random query generation with the paper's default shapes: a numeric range
/// predicate of a target selectivity plus a disjunctive Boolean function.
pub struct QueryGen {
    spec: WorkloadSpec,
    rng: StdRng,
    zipf: Zipf,
}

impl QueryGen {
    /// One time-window query over `[ts, te]`.
    pub fn time_window(&mut self, window: (u64, u64)) -> Query {
        self.make(Some(window), self.spec.selectivity, self.spec.bool_size)
    }

    /// One subscription query.
    pub fn subscription(&mut self) -> Query {
        self.make(None, self.spec.selectivity, self.spec.bool_size)
    }

    /// Explicit-parameter variant (selectivity sweeps, Figs. 17–19).
    pub fn with_params(
        &mut self,
        window: Option<(u64, u64)>,
        selectivity: f64,
        bool_size: usize,
    ) -> Query {
        self.make(window, selectivity, bool_size)
    }

    fn make(&mut self, window: Option<(u64, u64)>, selectivity: f64, bool_size: usize) -> Query {
        let max = (1u64 << self.spec.domain_bits) - 1;
        let width = ((max as f64 + 1.0) * selectivity).max(1.0) as u64;
        let dims = self.spec.dims();
        // choose `dims_per_query` distinct dimensions
        let mut chosen: Vec<u8> = (0..dims as u8).collect();
        for i in (1..chosen.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            chosen.swap(i, j);
        }
        chosen.truncate(self.spec.dims_per_query.min(dims));

        let ranges = chosen
            .into_iter()
            .map(|dim| {
                let lo = self.rng.gen_range(0..=(max + 1 - width));
                RangeSpec { dim, lo, hi: lo + width - 1 }
            })
            .collect();

        // disjunctive Boolean function: one OR-clause of `bool_size` keywords
        let mut kws = Vec::with_capacity(bool_size);
        while kws.len() < bool_size {
            let k = self.spec.keyword(self.zipf.sample(&mut self.rng));
            if !kws.contains(&k) {
                kws.push(k);
            }
        }
        Query { time_window: window, ranges, keywords: vec![kws] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::paper_defaults(Dataset::FourSquare, 5);
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.blocks, b.blocks);
        assert_eq!(a.total_objects(), 5 * spec.objects_per_block);
    }

    #[test]
    fn moments_match_spec() {
        for ds in [Dataset::FourSquare, Dataset::Weather, Dataset::Ethereum] {
            let spec = WorkloadSpec::paper_defaults(ds, 4);
            let w = spec.generate();
            for (_, objs) in &w.blocks {
                assert_eq!(objs.len(), spec.objects_per_block);
                for o in objs {
                    assert_eq!(o.numeric.len(), spec.dims());
                    assert_eq!(o.keywords.len(), spec.keywords_per_object);
                    for v in &o.numeric {
                        assert!(*v < (1 << spec.domain_bits));
                    }
                }
            }
            // timestamps strictly increase by the block interval
            for w2 in w.blocks.windows(2) {
                assert_eq!(w2[1].0 - w2[0].0, spec.block_interval);
            }
        }
    }

    #[test]
    fn queries_have_requested_shape() {
        let spec = WorkloadSpec::paper_defaults(Dataset::Weather, 4);
        let mut qg = spec.query_gen(1);
        let q = qg.time_window((0, 100));
        assert_eq!(q.ranges.len(), 2, "WX uses two dims per predicate");
        assert_eq!(q.keywords.len(), 1);
        assert_eq!(q.keywords[0].len(), 3);
        let width = q.ranges[0].hi - q.ranges[0].lo + 1;
        assert_eq!(width, 25, "10% of a 256-wide domain, floored");
        // dims are distinct
        assert_ne!(q.ranges[0].dim, q.ranges[1].dim);
    }

    #[test]
    fn eth_selectivity_is_half_domain() {
        let spec = WorkloadSpec::paper_defaults(Dataset::Ethereum, 4);
        let mut qg = spec.query_gen(2);
        let q = qg.subscription();
        let width = q.ranges[0].hi - q.ranges[0].lo + 1;
        assert_eq!(width, 128);
        assert_eq!(q.keywords[0].len(), 9);
        assert!(q.time_window.is_none());
    }

    #[test]
    fn zipf_query_stream_is_deterministic_and_pool_bounded() {
        let spec = WorkloadSpec::paper_defaults(Dataset::FourSquare, 12);
        let w = spec.generate();
        let a = w.zipf_query_stream(8, 64, 7);
        let b = w.zipf_query_stream(8, 64, 7);
        assert_eq!(a.len(), 64);
        assert_eq!(a, b, "same inputs, same stream");
        // every stream element is one of at most 8 distinct pool queries,
        // and the Zipf head dominates
        let mut distinct: Vec<&Query> = Vec::new();
        for q in &a {
            assert!(q.time_window.is_some());
            if !distinct.contains(&q) {
                distinct.push(q);
            }
        }
        assert!(distinct.len() <= 8);
        let head = distinct.iter().map(|d| a.iter().filter(|q| q == d).count()).max().unwrap();
        assert!(head * 8 >= a.len(), "Zipf head should be ≳ uniform share");
        // a different seed reshuffles
        assert_ne!(a, w.zipf_query_stream(8, 64, 8));
    }

    #[test]
    fn window_of_last() {
        let spec = WorkloadSpec::paper_defaults(Dataset::FourSquare, 10);
        let w = spec.generate();
        let (ts, te) = w.window_of_last(3);
        assert_eq!(te - ts, 2 * spec.block_interval);
        assert_eq!(te, w.blocks.last().unwrap().0);
    }
}
