//! Synthetic workloads reproducing the statistical shape of the vChain
//! paper's three evaluation datasets (§9), plus the MHT baseline used in
//! Fig. 16 (Appendix D.1).
//!
//! The paper's raw datasets (Foursquare check-ins, Kaggle hourly weather,
//! an Ethereum transaction slice) are not redistributable; the evaluation's
//! trends depend only on a handful of moments — objects per block, numeric
//! dimensionality, keywords per record and their skew — which these
//! generators match (see DESIGN.md §2 for the substitution argument).

pub mod mht_baseline;
pub mod subscriptions;
pub mod workload;
pub mod zipf;

pub use mht_baseline::MhtBaseline;
pub use subscriptions::{SkewProfile, SubscriptionSpec};
pub use workload::{Dataset, QueryGen, Workload, WorkloadSpec};
pub use zipf::Zipf;
