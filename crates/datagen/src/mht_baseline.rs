//! The Merkle-hash-tree baseline of Fig. 16 (Appendix D.1).
//!
//! A traditional MHT supports only the key it is sorted on, so serving
//! arbitrary attribute-combination range queries over a `D`-dimensional
//! block requires one MHT per non-empty attribute subset — `2^D − 1`
//! trees per block. This module builds exactly that, measuring construction
//! time and ADS bytes, against which `vchain-core`'s single
//! accumulator-based ADS is compared by the `fig16` experiment.

use vchain_chain::{MerkleTree, Object};
use vchain_hash::{hash_concat, Digest};

/// The per-block MHT-per-attribute-subset baseline ADS.
pub struct MhtBaseline {
    /// One root per non-empty attribute subset (bitmask order).
    pub roots: Vec<Digest>,
    /// Total number of tree nodes materialized (for size accounting).
    node_count: usize,
}

impl MhtBaseline {
    /// Build all `2^dims − 1` MHTs for one block of objects.
    pub fn build(objects: &[Object], dims: usize) -> Self {
        assert!((1..=20).contains(&dims), "dimensionality out of range");
        let mut roots = Vec::with_capacity((1usize << dims) - 1);
        let mut node_count = 0usize;
        for mask in 1u32..(1u32 << dims) {
            // sort objects by the composite key of the chosen attributes
            let mut keyed: Vec<(Vec<u64>, Digest)> = objects
                .iter()
                .map(|o| {
                    let key: Vec<u64> = (0..dims)
                        .filter(|d| mask & (1 << d) != 0)
                        .map(|d| o.numeric.get(d).copied().unwrap_or(0))
                        .collect();
                    (key, o.digest())
                })
                .collect();
            keyed.sort();
            let leaves: Vec<Digest> = keyed
                .iter()
                .map(|(key, od)| {
                    let key_bytes: Vec<u8> = key.iter().flat_map(|v| v.to_le_bytes()).collect();
                    hash_concat(&[b"mht/leaf", &key_bytes, &od.0])
                })
                .collect();
            let tree = MerkleTree::build(&leaves);
            // a binary tree over n leaves has ~2n-1 nodes
            node_count += 2 * leaves.len().saturating_sub(1) + 1;
            roots.push(tree.root());
        }
        Self { roots, node_count }
    }

    /// Number of trees (`2^D − 1`).
    pub fn tree_count(&self) -> usize {
        self.roots.len()
    }

    /// Nominal ADS bytes: every materialized tree node is a digest the full
    /// node must store to serve proofs, and each root enters the header.
    pub fn ads_size_bytes(&self) -> usize {
        self.node_count * Digest::LEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn objs(n: u64, dims: usize) -> Vec<Object> {
        (0..n)
            .map(|i| {
                Object::new(i, i, (0..dims as u64).map(|d| (i * 7 + d) % 16).collect(), vec![])
            })
            .collect()
    }

    #[test]
    fn tree_count_is_exponential() {
        let o = objs(6, 3);
        let b = MhtBaseline::build(&o, 3);
        assert_eq!(b.tree_count(), 7);
        let b4 = MhtBaseline::build(&objs(6, 4), 4);
        assert_eq!(b4.tree_count(), 15);
        assert!(b4.ads_size_bytes() > b.ads_size_bytes());
    }

    #[test]
    fn roots_differ_across_subsets() {
        let o = objs(8, 2);
        let b = MhtBaseline::build(&o, 2);
        assert_eq!(b.tree_count(), 3);
        // {dim0}, {dim1}, {dim0,dim1} sort differently => distinct roots
        assert_ne!(b.roots[0], b.roots[1]);
        assert_ne!(b.roots[0], b.roots[2]);
    }

    #[test]
    fn deterministic() {
        let o = objs(5, 2);
        assert_eq!(MhtBaseline::build(&o, 2).roots, MhtBaseline::build(&o, 2).roots);
    }
}
