//! The prime fields: `Fp` (base field, 381 bits) and `Fr` (scalar field,
//! 255 bits), both stored in Montgomery form.

use core::fmt;

use rand::Rng;
use vchain_bigint::Uint;
use vchain_hash::hash_domain;

use crate::field::Field;
use crate::params;

/// Generates a Montgomery-form prime-field type over `Uint<$n>` with
/// parameters provided by `$params()`.
macro_rules! prime_field {
    ($(#[$doc:meta])* $name:ident, $n:expr, $params:path, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash)]
        pub struct $name(pub(crate) Uint<$n>);

        impl $name {
            /// Number of 64-bit limbs.
            pub const LIMBS: usize = $n;

            /// The canonical byte length of a serialized element.
            pub const BYTES: usize = 8 * $n;

            /// Construct from a small integer.
            pub fn from_u64(v: u64) -> Self {
                Self($params().to_mont(&Uint::from_u64(v)))
            }

            /// Construct from a canonical (non-Montgomery) integer; panics if
            /// it is not reduced.
            pub fn from_uint(v: &Uint<$n>) -> Self {
                assert!(v < &$params().modulus, "value not reduced");
                Self($params().to_mont(v))
            }

            /// Construct from a big-endian hex string (must be reduced).
            pub fn from_hex(s: &str) -> Self {
                Self::from_uint(&Uint::from_hex(s))
            }

            /// The canonical (non-Montgomery) integer representative.
            pub fn to_uint(&self) -> Uint<$n> {
                $params().from_mont(&self.0)
            }

            /// Canonical little-endian bytes.
            pub fn to_bytes(&self) -> Vec<u8> {
                self.to_uint().to_le_bytes()
            }

            /// Strict canonical decode: exactly [`Self::BYTES`] little-endian
            /// bytes encoding an integer `< modulus`. `None` on any other
            /// input — unlike [`Self::from_bytes_reduce`] nothing is wrapped,
            /// so `decode ∘ encode` is the identity and every accepted byte
            /// string has exactly one preimage. This is the only field decode
            /// the untrusted wire boundary is allowed to use.
            pub fn from_canonical_bytes(bytes: &[u8]) -> Option<Self> {
                if bytes.len() != Self::BYTES {
                    return None;
                }
                let mut limbs = [0u64; $n];
                for (i, chunk) in bytes.chunks(8).enumerate() {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(chunk);
                    limbs[i] = u64::from_le_bytes(b);
                }
                let v = Uint(limbs);
                if v < $params().modulus {
                    Some(Self($params().to_mont(&v)))
                } else {
                    None
                }
            }

            /// Reduce an arbitrary little-endian byte string into the field.
            pub fn from_bytes_reduce(bytes: &[u8]) -> Self {
                let mut limbs = vec![0u64; bytes.len().div_ceil(8)];
                for (i, chunk) in bytes.chunks(8).enumerate() {
                    let mut b = [0u8; 8];
                    b[..chunk.len()].copy_from_slice(chunk);
                    limbs[i] = u64::from_le_bytes(b);
                }
                let reduced = $params().reduce_wide(&limbs);
                Self($params().to_mont(&reduced))
            }

            /// Hash arbitrary data into the field (domain separated).
            pub fn hash_to_field(data: &[u8]) -> Self {
                let d1 = hash_domain(concat!($tag, "/1"), data);
                let d2 = hash_domain(concat!($tag, "/2"), data);
                let mut bytes = Vec::with_capacity(64);
                bytes.extend_from_slice(&d1.0);
                bytes.extend_from_slice(&d2.0);
                Self::from_bytes_reduce(&bytes)
            }

            /// Uniformly random element.
            pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                let mut bytes = [0u8; 8 * $n + 16];
                rng.fill(&mut bytes[..]);
                Self::from_bytes_reduce(&bytes)
            }
        }

        impl Field for $name {
            fn zero() -> Self {
                Self(Uint::ZERO)
            }

            fn one() -> Self {
                Self($params().r1)
            }

            fn is_zero(&self) -> bool {
                self.0.is_zero()
            }

            #[inline]
            fn add(&self, rhs: &Self) -> Self {
                Self($params().add(&self.0, &rhs.0))
            }

            #[inline]
            fn sub(&self, rhs: &Self) -> Self {
                Self($params().sub(&self.0, &rhs.0))
            }

            #[inline]
            fn neg(&self) -> Self {
                Self($params().neg(&self.0))
            }

            #[inline]
            fn mul(&self, rhs: &Self) -> Self {
                Self($params().mont_mul(&self.0, &rhs.0))
            }

            fn inverse(&self) -> Option<Self> {
                // Binary extended GCD on the Montgomery representation —
                // far cheaper than the Fermat exponent `a^{m−2}`. Counted so
                // tests can assert hot paths (the projective Miller loop)
                // stay inversion-free.
                $crate::stats::FIELD_INVERSIONS.with(|c| c.set(c.get() + 1));
                $params().inv_mont(&self.0).map(Self)
            }

            fn to_canonical_bytes(&self) -> Vec<u8> {
                self.to_bytes()
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Field::zero()
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "(0x{})"), self.to_uint().to_hex())
            }
        }

        $crate::impl_field_ops!($name);
    };
}

prime_field!(
    /// The BLS12-381 base field `GF(p)`, `p` 381 bits.
    Fp, 6, params::fp_params, "vchain/fp"
);

prime_field!(
    /// The BLS12-381 scalar field `GF(r)`, `r` 255 bits.
    Fr, 4, params::fr_params, "vchain/fr"
);

impl Fr {
    /// Exponentiation by another scalar interpreted as an integer.
    pub fn pow_fr(&self, e: &Fr) -> Fr {
        self.pow_limbs(&e.to_uint().0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xfeed)
    }

    #[test]
    fn field_axioms_fp() {
        let mut r = rng();
        for _ in 0..20 {
            let a = Fp::random(&mut r);
            let b = Fp::random(&mut r);
            let c = Fp::random(&mut r);
            assert_eq!((a + b) + c, a + (b + c));
            assert_eq!(a + b, b + a);
            assert_eq!((a * b) * c, a * (b * c));
            assert_eq!(a * (b + c), a * b + a * c);
            assert_eq!(a + (-a), Fp::zero());
            assert_eq!(a * Fp::one(), a);
            if !a.is_zero() {
                assert_eq!(a * a.inverse().unwrap(), Fp::one());
            }
        }
    }

    #[test]
    fn field_axioms_fr() {
        let mut r = rng();
        for _ in 0..20 {
            let a = Fr::random(&mut r);
            let b = Fr::random(&mut r);
            assert_eq!(a * b, b * a);
            assert_eq!(a - a, Fr::zero());
            if !a.is_zero() {
                assert_eq!(a * a.inverse().unwrap(), Fr::one());
            }
        }
    }

    #[test]
    fn inverse_of_zero_is_none() {
        assert!(Fp::zero().inverse().is_none());
        assert!(Fr::zero().inverse().is_none());
    }

    #[test]
    fn inverse_matches_fermat_exponent() {
        // Regression against the old Fermat-exponent inversion path.
        let mut r = rng();
        for _ in 0..5 {
            let a = Fp::random(&mut r);
            assert_eq!(a.inverse().unwrap(), a.pow_limbs(&params::derived().p_minus_2));
            let b = Fr::random(&mut r);
            assert_eq!(b.inverse().unwrap(), b.pow_limbs(&params::derived().r_minus_2));
        }
    }

    #[test]
    fn small_arithmetic() {
        assert_eq!(Fr::from_u64(6) * Fr::from_u64(7), Fr::from_u64(42));
        assert_eq!(Fp::from_u64(5) - Fp::from_u64(7) + Fp::from_u64(2), Fp::zero());
        assert_eq!(Fr::from_u64(3).pow_limbs(&[4]), Fr::from_u64(81));
        assert_eq!(Fr::from_u64(3).pow_limbs(&[0]), Fr::one());
    }

    #[test]
    fn fermat_little_theorem() {
        // a^(r-1) == 1
        let a = Fr::from_u64(123456789);
        let r_minus_1 = {
            let mut limbs = params::fr_params().modulus.0;
            limbs[0] -= 1;
            limbs
        };
        assert_eq!(a.pow_limbs(&r_minus_1), Fr::one());
    }

    #[test]
    fn hash_to_field_is_deterministic_and_spread() {
        assert_eq!(Fr::hash_to_field(b"abc"), Fr::hash_to_field(b"abc"));
        assert_ne!(Fr::hash_to_field(b"abc"), Fr::hash_to_field(b"abd"));
        assert_ne!(Fp::hash_to_field(b"abc"), Fp::hash_to_field(b"abd"));
    }

    #[test]
    fn byte_round_trip() {
        let mut r = rng();
        let a = Fp::random(&mut r);
        assert_eq!(Fp::from_bytes_reduce(&a.to_bytes()), a);
    }
}
