//! The cubic extension `Fp6 = Fp2[v]/(v³ − ξ)`, ξ = 1 + u — the middle
//! layer of the 2-3-2 tower `Fp2 → Fp6 → Fp12`.
//!
//! Multiplication is Karatsuba-style interpolation (6 `Fp2` muls instead of
//! 9 schoolbook), squaring is the CH-SQR2 form (2 muls + 3 squares), and
//! inversion is the closed-form norm method (no polynomial Euclid): for
//! `a = a0 + a1·v + a2·v²`,
//!
//! ```text
//! c0 = a0² − ξ·a1·a2,  c1 = ξ·a2² − a0·a1,  c2 = a1² − a0·a2
//! t  = a0·c0 + ξ·(a2·c1 + a1·c2)          (the norm, in Fp2)
//! a⁻¹ = (c0 + c1·v + c2·v²) / t
//! ```

use core::fmt;

use rand::Rng;

use crate::field::Field;
use crate::fp2::Fp2;

/// An element `c0 + c1·v + c2·v²` of `Fp6`, coefficients in `Fp2`.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct Fp6 {
    /// The constant coefficient.
    pub c0: Fp2,
    /// The coefficient of `v`.
    pub c1: Fp2,
    /// The coefficient of `v²`.
    pub c2: Fp2,
}

impl Fp6 {
    /// Assemble from coefficients.
    pub const fn new(c0: Fp2, c1: Fp2, c2: Fp2) -> Self {
        Self { c0, c1, c2 }
    }

    /// Embed an `Fp2` element as the constant coefficient.
    pub fn from_fp2(c0: Fp2) -> Self {
        Self { c0, c1: Fp2::zero(), c2: Fp2::zero() }
    }

    /// Multiply by `v` (a cyclic coefficient shift with `v³ = ξ`).
    pub fn mul_by_v(&self) -> Self {
        Self { c0: self.c2.mul_by_xi(), c1: self.c0, c2: self.c1 }
    }

    /// Scale every coefficient by an `Fp2` element.
    pub fn mul_by_fp2(&self, k: &Fp2) -> Self {
        Self {
            c0: Field::mul(&self.c0, k),
            c1: Field::mul(&self.c1, k),
            c2: Field::mul(&self.c2, k),
        }
    }

    /// Sparse product with `b0 + b1·v` (both `Fp2`); 5 unreduced `Fp2`
    /// muls, 6 Montgomery reductions (eager: 15).
    pub fn mul_by_01(&self, b0: &Fp2, b1: &Fp2) -> Self {
        crate::lazy::Fp6Wide::mul_by_01(self, b0, b1).reduce()
    }

    /// Sparse product with `b1·v` alone; 3 unreduced `Fp2` muls, 6
    /// Montgomery reductions (eager: 9).
    pub fn mul_by_1(&self, b1: &Fp2) -> Self {
        crate::lazy::Fp6Wide::mul_by_1(self, b1).reduce()
    }

    /// Eager-reduction reference for [`Fp6::mul_by_01`] (15 reductions via
    /// [`Fp2::mul_eager`]).
    pub fn mul_by_01_eager(&self, b0: &Fp2, b1: &Fp2) -> Self {
        let t0 = self.c0.mul_eager(b0);
        let t1 = self.c1.mul_eager(b1);
        Self {
            c0: t0 + self.c2.mul_eager(b1).mul_by_xi(),
            c1: (self.c0 + self.c1).mul_eager(&(*b0 + *b1)) - t0 - t1,
            c2: self.c2.mul_eager(b0) + t1,
        }
    }

    /// Eager-reduction reference for [`Fp6::mul_by_1`] (9 reductions via
    /// [`Fp2::mul_eager`]).
    pub fn mul_by_1_eager(&self, b1: &Fp2) -> Self {
        Self {
            c0: self.c2.mul_eager(b1).mul_by_xi(),
            c1: self.c0.mul_eager(b1),
            c2: self.c1.mul_eager(b1),
        }
    }

    /// Eager-reduction reference multiplication (18 reductions via
    /// [`Fp2::mul_eager`]); oracle for the lazy production [`Field::mul`].
    pub fn mul_eager(&self, rhs: &Self) -> Self {
        let v0 = self.c0.mul_eager(&rhs.c0);
        let v1 = self.c1.mul_eager(&rhs.c1);
        let v2 = self.c2.mul_eager(&rhs.c2);
        let m12 = (self.c1 + self.c2).mul_eager(&(rhs.c1 + rhs.c2)) - v1 - v2;
        let m01 = (self.c0 + self.c1).mul_eager(&(rhs.c0 + rhs.c1)) - v0 - v1;
        let m02 = (self.c0 + self.c2).mul_eager(&(rhs.c0 + rhs.c2)) - v0 - v2;
        Self { c0: v0 + m12.mul_by_xi(), c1: m01 + v2.mul_by_xi(), c2: m02 + v1 }
    }

    /// Eager-reduction reference squaring (13 reductions); oracle for the
    /// lazy production [`Field::square`].
    pub fn square_eager(&self) -> Self {
        let s0 = self.c0.square_eager();
        let s1 = self.c0.mul_eager(&self.c1).double();
        let s2 = (self.c0 - self.c1 + self.c2).square_eager();
        let s3 = self.c1.mul_eager(&self.c2).double();
        let s4 = self.c2.square_eager();
        Self { c0: s0 + s3.mul_by_xi(), c1: s1 + s4.mul_by_xi(), c2: s1 + s2 + s3 - s0 - s4 }
    }

    /// Coefficient-wise Galois conjugation (the `p`-power Frobenius on each
    /// `Fp2` coefficient; callers multiply by the `γ` constants).
    pub fn conjugate_coeffs(&self) -> Self {
        Self { c0: self.c0.conjugate(), c1: self.c1.conjugate(), c2: self.c2.conjugate() }
    }

    /// A uniformly random element.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self { c0: Fp2::random(rng), c1: Fp2::random(rng), c2: Fp2::random(rng) }
    }
}

impl Field for Fp6 {
    fn zero() -> Self {
        Self { c0: Fp2::zero(), c1: Fp2::zero(), c2: Fp2::zero() }
    }

    fn one() -> Self {
        Self::from_fp2(Fp2::one())
    }

    fn is_zero(&self) -> bool {
        self.c0.is_zero() && self.c1.is_zero() && self.c2.is_zero()
    }

    #[inline]
    fn add(&self, rhs: &Self) -> Self {
        Self { c0: self.c0 + rhs.c0, c1: self.c1 + rhs.c1, c2: self.c2 + rhs.c2 }
    }

    #[inline]
    fn sub(&self, rhs: &Self) -> Self {
        Self { c0: self.c0 - rhs.c0, c1: self.c1 - rhs.c1, c2: self.c2 - rhs.c2 }
    }

    #[inline]
    fn neg(&self) -> Self {
        Self { c0: Field::neg(&self.c0), c1: Field::neg(&self.c1), c2: Field::neg(&self.c2) }
    }

    fn mul(&self, rhs: &Self) -> Self {
        // Lazy Karatsuba/Toom: 6 unreduced Fp2 muls combined double-width,
        // 6 Montgomery reductions (eager: 18).
        crate::lazy::Fp6Wide::mul(self, rhs).reduce()
    }

    fn square(&self) -> Self {
        // Lazy CH-SQR2: 6 Montgomery reductions (eager: 13).
        crate::lazy::Fp6Wide::square(self).reduce()
    }

    fn inverse(&self) -> Option<Self> {
        let c0 = self.c0.square() - Field::mul(&self.c1, &self.c2).mul_by_xi();
        let c1 = self.c2.square().mul_by_xi() - Field::mul(&self.c0, &self.c1);
        let c2 = self.c1.square() - Field::mul(&self.c0, &self.c2);
        let t = Field::mul(&self.c0, &c0)
            + (Field::mul(&self.c2, &c1) + Field::mul(&self.c1, &c2)).mul_by_xi();
        let tinv = t.inverse()?;
        Some(Self {
            c0: Field::mul(&c0, &tinv),
            c1: Field::mul(&c1, &tinv),
            c2: Field::mul(&c2, &tinv),
        })
    }

    fn to_canonical_bytes(&self) -> Vec<u8> {
        let mut out = self.c0.to_bytes();
        out.extend_from_slice(&self.c1.to_bytes());
        out.extend_from_slice(&self.c2.to_bytes());
        out
    }
}

impl fmt::Debug for Fp6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp6({:?} + {:?}·v + {:?}·v²)", self.c0, self.c1, self.c2)
    }
}

crate::impl_field_ops!(Fp6);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(66)
    }

    fn v() -> Fp6 {
        Fp6::new(Fp2::zero(), Fp2::one(), Fp2::zero())
    }

    #[test]
    fn v_cubed_is_xi() {
        assert_eq!(v().pow_limbs(&[3]), Fp6::from_fp2(Fp2::xi()));
        let mut r = rng();
        let a = Fp6::random(&mut r);
        assert_eq!(a.mul_by_v(), Field::mul(&a, &v()));
    }

    #[test]
    fn field_axioms() {
        let mut r = rng();
        for _ in 0..10 {
            let a = Fp6::random(&mut r);
            let b = Fp6::random(&mut r);
            let c = Fp6::random(&mut r);
            assert_eq!((a * b) * c, a * (b * c));
            assert_eq!(a * (b + c), a * b + a * c);
            assert_eq!(a.square(), a * a);
            assert_eq!(a * Fp6::one(), a);
            if !a.is_zero() {
                assert_eq!(a * a.inverse().unwrap(), Fp6::one());
            }
        }
        assert!(Fp6::zero().inverse().is_none());
    }

    #[test]
    fn sparse_muls_match_dense() {
        let mut r = rng();
        let a = Fp6::random(&mut r);
        let b0 = Fp2::random(&mut r);
        let b1 = Fp2::random(&mut r);
        assert_eq!(a.mul_by_01(&b0, &b1), Field::mul(&a, &Fp6::new(b0, b1, Fp2::zero())));
        assert_eq!(a.mul_by_1(&b1), Field::mul(&a, &Fp6::new(Fp2::zero(), b1, Fp2::zero())));
        let k = Fp2::random(&mut r);
        assert_eq!(a.mul_by_fp2(&k), Field::mul(&a, &Fp6::from_fp2(k)));
    }
}
