//! Untrusted-input point decoding — the trust boundary between wire bytes
//! and the group types.
//!
//! Everything else in this crate assumes its inputs are *well-formed group
//! elements*: on the curve, in the order-`r` subgroup, with canonical field
//! coordinates. Those assumptions hold for every point the crate constructs
//! itself (generator multiples, endomorphism images, sums thereof) — but a
//! verifier consuming a VO from a Byzantine service provider receives
//! arbitrary bytes. [`Affine::try_from_bytes`] is the only sanctioned path
//! from such bytes to a point, and it checks, in order:
//!
//! 1. **length** — exactly [`CurveSpec::COMPRESSED_BYTES`];
//! 2. **flags** — only the infinity bit (0) and sign bit (1) may be set, the
//!    identity must be the *canonical* identity encoding (zero coordinate,
//!    clear sign bit);
//! 3. **canonical coordinates** — each base-field limb below the modulus
//!    ([`WireField::from_canonical_bytes`]), so every accepted byte string
//!    has exactly one preimage and `encode ∘ decode` is the identity;
//! 4. **on-curve** — `x³ + b` must be a quadratic residue
//!    ([`WireField::sqrt`]);
//! 5. **subgroup membership** — [`CurveSpec::is_in_subgroup`]: the full
//!    order-`r` scalar multiplication for `G1`, and the
//!    [ψ-eigenvalue check](g2_subgroup_check) for `G2` (reusing the GLS
//!    twist endomorphism), which is ~4× cheaper than the generic ladder.
//!
//! A failure at any step is an attributable [`PointDecodeError`] — never a
//! panic — which the accumulator and VO layers surface as their own decode
//! errors so a light client can log *why* a response was rejected.

use core::fmt;

use vchain_bigint::U256;

use crate::curve::{Affine, CurveSpec, G1Affine, G2Affine};
use crate::field::Field;
use crate::fp::Fp;
use crate::fp2::Fp2;
use crate::params;

/// Field operations needed only at the untrusted wire boundary: strict
/// canonical decoding and square roots (for point decompression). Implemented
/// by the two curve coordinate fields, [`Fp`] and [`Fp2`].
pub trait WireField: Field {
    /// Strict canonical decode: fixed length, every component reduced.
    /// `None` on any other input; accepted inputs round-trip byte-identically
    /// through [`Field::to_canonical_bytes`].
    fn from_canonical_bytes(bytes: &[u8]) -> Option<Self>;

    /// A square root of `self`, if one exists. Which of the two roots is
    /// returned is unspecified — point decompression re-selects by the
    /// serialized sign bit.
    fn sqrt(&self) -> Option<Self>;
}

impl WireField for Fp {
    fn from_canonical_bytes(bytes: &[u8]) -> Option<Self> {
        Fp::from_canonical_bytes(bytes)
    }

    fn sqrt(&self) -> Option<Self> {
        // p ≡ 3 (mod 4), so a^{(p+1)/4} squares to a for every residue a;
        // the final check rejects non-residues (and costs one squaring).
        let cand = self.pow_limbs(&params::derived().p_plus_1_over_4);
        (cand.square() == *self).then_some(cand)
    }
}

impl WireField for Fp2 {
    fn from_canonical_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != 2 * Fp::BYTES {
            return None;
        }
        let c0 = Fp::from_canonical_bytes(&bytes[..Fp::BYTES])?;
        let c1 = Fp::from_canonical_bytes(&bytes[Fp::BYTES..])?;
        Some(Fp2::new(c0, c1))
    }

    fn sqrt(&self) -> Option<Self> {
        // The "norm trick" for Fp[u]/(u²+1) with p ≡ 3 (mod 4): writing
        // a = a0 + a1·u with √(a0² + a1²) = s ∈ Fp (the norm of a square is
        // a square, so a non-square norm already disqualifies `a`), the root
        // is c0 + c1·u with c0² = (a0 ± s)/2 and c1 = a1/(2c0) — one sign
        // makes (a0 ± s)/2 a residue. Every division is fallible and the
        // result is verified by squaring, so malformed inputs cannot panic.
        if self.is_zero() {
            return Some(Self::zero());
        }
        if self.c1.is_zero() {
            // a ∈ Fp: either √a ∈ Fp, or −a is a residue (−1 is a
            // non-residue) and √a = √(−a)·u.
            return match self.c0.sqrt() {
                Some(s) => Some(Self::new(s, Fp::zero())),
                None => Field::neg(&self.c0).sqrt().map(|s| Self::new(Fp::zero(), s)),
            };
        }
        let s = (self.c0.square() + self.c1.square()).sqrt()?;
        let half = Fp::from_u64(2).inverse()?;
        let mut t = Field::mul(&(self.c0 + s), &half);
        let mut c0 = t.sqrt();
        if c0.is_none() {
            t = Field::mul(&(self.c0 - s), &half);
            c0 = t.sqrt();
        }
        let c0 = c0?;
        let c1 = Field::mul(&self.c1, &c0.double().inverse()?);
        let cand = Self::new(c0, c1);
        (cand.square() == *self).then_some(cand)
    }
}

/// Why a compressed point failed to decode. Ordered by check: earlier
/// variants are cheaper to trigger, later ones mean the bytes got further.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PointDecodeError {
    /// The byte string is not exactly [`CurveSpec::COMPRESSED_BYTES`] long.
    Length {
        /// The group's compressed size.
        expected: usize,
        /// What arrived.
        got: usize,
    },
    /// The flag byte has bits set beyond the infinity/sign pair.
    InvalidFlags(u8),
    /// The infinity bit is set but the encoding is not the canonical
    /// identity (nonzero coordinate bytes, or the sign bit also set).
    NonCanonicalInfinity,
    /// A coordinate component is not a reduced field element.
    NonCanonicalCoordinate,
    /// The x-coordinate is canonical but `x³ + b` is a non-residue: no such
    /// point exists on the curve.
    NotOnCurve,
    /// The point is on the curve but outside the order-`r` subgroup — the
    /// classic small/wrong-subgroup confinement attack, which would break
    /// the GLS ladder's eigenvalue identity and the pairing's bilinearity.
    WrongSubgroup,
}

impl fmt::Display for PointDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PointDecodeError::Length { expected, got } => {
                write!(f, "compressed point must be {expected} bytes, got {got}")
            }
            PointDecodeError::InvalidFlags(b) => write!(f, "invalid point flag byte {b:#04x}"),
            PointDecodeError::NonCanonicalInfinity => {
                write!(f, "identity point must use the canonical all-zero encoding")
            }
            PointDecodeError::NonCanonicalCoordinate => {
                write!(f, "coordinate is not a reduced field element")
            }
            PointDecodeError::NotOnCurve => write!(f, "x-coordinate is not on the curve"),
            PointDecodeError::WrongSubgroup => {
                write!(f, "point is not in the order-r subgroup")
            }
        }
    }
}

impl std::error::Error for PointDecodeError {}

impl<S: CurveSpec> Affine<S> {
    /// Decode a compressed point from untrusted bytes with the full check
    /// ladder (length, flags, canonical coordinate, on-curve, subgroup) —
    /// see the [module docs](self). The inverse of [`Affine::to_bytes`]:
    /// accepted inputs re-encode byte-identically.
    pub fn try_from_bytes(bytes: &[u8]) -> Result<Self, PointDecodeError> {
        let p = Self::try_from_bytes_on_curve(bytes)?;
        if !S::is_in_subgroup(&p) {
            return Err(PointDecodeError::WrongSubgroup);
        }
        Ok(p)
    }

    /// [`Affine::try_from_bytes`] *without* the subgroup check — the point
    /// is guaranteed on the curve (or the identity) but may live in a
    /// wrong-order subgroup of the full curve group.
    ///
    /// This is **not** safe for verification inputs: a wrong-subgroup `G2`
    /// point silently breaks the GLS ladder and the pairing equations. It
    /// exists for the fault-injection harness (which *manufactures*
    /// wrong-subgroup encodings to prove they are rejected) and for
    /// benchmarks isolating the subgroup-check cost.
    pub fn try_from_bytes_on_curve(bytes: &[u8]) -> Result<Self, PointDecodeError> {
        if bytes.len() != S::COMPRESSED_BYTES {
            return Err(PointDecodeError::Length {
                expected: S::COMPRESSED_BYTES,
                got: bytes.len(),
            });
        }
        let flags = bytes[0];
        if flags & !0b11 != 0 {
            return Err(PointDecodeError::InvalidFlags(flags));
        }
        if flags & 0b01 != 0 {
            // identity: sign bit must be clear and the coordinate all-zero,
            // so the identity has exactly one accepted encoding
            if flags != 0b01 || bytes[1..].iter().any(|&b| b != 0) {
                return Err(PointDecodeError::NonCanonicalInfinity);
            }
            return Ok(Self::identity());
        }
        let x = <S::F as WireField>::from_canonical_bytes(&bytes[1..])
            .ok_or(PointDecodeError::NonCanonicalCoordinate)?;
        let rhs = Field::add(&Field::mul(&x.square(), &x), &S::b());
        let y = rhs.sqrt().ok_or(PointDecodeError::NotOnCurve)?;
        let want_largest = flags & 0b10 != 0;
        let y = if y.is_lexicographically_largest() == want_largest { y } else { Field::neg(&y) };
        Ok(Self { x, y, infinity: false })
    }

    /// Is this point in the order-`r` subgroup? Delegates to
    /// [`CurveSpec::is_in_subgroup`]; every point built by this crate
    /// (generator multiples and their sums/images) returns `true`.
    pub fn is_torsion_free(&self) -> bool {
        S::is_in_subgroup(self)
    }
}

/// `G1` subgroup membership: the conservative full-order check
/// `[r]·P = O` on the wNAF reference ladder (the GLS dispatch is *not* used
/// — its eigenvalue identity is exactly what an unchecked point could
/// violate). `E(Fp)`'s cofactor is ~126 bits, so on-curve alone admits
/// wrong-order points; this closes them out at roughly one `G1` scalar
/// multiplication (~0.15 ms, ledger entry `g1_subgroup_check`).
pub fn g1_subgroup_check(p: &G1Affine) -> bool {
    p.to_projective().mul_u256_wnaf(&params::fr_params().modulus).is_identity()
}

/// `G2` subgroup membership via the twist endomorphism (Bowe, "Faster
/// subgroup checks for BLS12-381", eprint 2019/814): a curve point `P` lies
/// in the order-`r` subgroup iff `ψ(P) = [x]P`, i.e. `φ(P) = [|x|]P` with
/// the negated endomorphism `φ = −ψ` this crate already derives for GLS
/// scalar multiplication ([`crate::g2_endo`]). `|x|` has 64 bits, so the
/// check costs one endomorphism evaluation plus a 64-bit ladder — about a
/// quarter of the generic full-order check and well under one pairing
/// (ledger entries `g2_subgroup_check` / `pairing`).
///
/// Soundness: `ψ² − [t]ψ + [p] = 0` holds on the whole twist, so a point
/// with `ψ(P) = [x]P` satisfies `[x² − tx + p]P = [p − x]P = O` (BLS:
/// `t = x + 1`), and `gcd(p − x, #E'(Fp2)) = r` for the BLS12-381
/// parameters — the eigenvalue equation pins the order to divide `r`. The
/// `psi_check_agrees_with_full_order_check` property test pins this against
/// the generic ladder on both members and non-members.
pub fn g2_subgroup_check(p: &G2Affine) -> bool {
    if p.infinity {
        return true;
    }
    let pp = p.to_projective();
    crate::curve::g2_endo().phi(&pp) == pp.mul_u256_wnaf(&U256::from_u64(params::BLS_X))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::{G1Projective, G2Projective};
    use crate::fp::Fr;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xDEC0DE)
    }

    /// A point on the `G2` twist curve that is (overwhelmingly likely) NOT
    /// in the order-`r` subgroup: hash-derived x-coordinates land uniformly
    /// on the curve, whose cofactor is ~508 bits.
    fn twist_point_outside_g2(seed: u64) -> Affine<crate::curve::G2Spec> {
        let mut ctr = seed;
        loop {
            ctr += 1;
            let x = Fp2::new(
                Fp::hash_to_field(&ctr.to_le_bytes()),
                Fp::hash_to_field(&(ctr ^ 0xABCD).to_le_bytes()),
            );
            let rhs = Field::add(&Field::mul(&x.square(), &x), &crate::curve::G2Spec::b());
            if let Some(y) = rhs.sqrt() {
                let p = Affine { x, y, infinity: false };
                assert!(p.is_on_curve());
                return p;
            }
        }
    }

    #[test]
    fn fp_sqrt_round_trips() {
        let mut r = rng();
        for _ in 0..20 {
            let a = Fp::random(&mut r);
            let sq = a.square();
            let s = WireField::sqrt(&sq).expect("squares have roots");
            assert!(s == sq.sqrt().unwrap());
            assert!(s == a || s == Field::neg(&a));
        }
        assert_eq!(WireField::sqrt(&Fp::zero()), Some(Fp::zero()));
        // −1 is a non-residue for p ≡ 3 (mod 4)
        assert!(WireField::sqrt(&Field::neg(&Fp::one())).is_none());
    }

    #[test]
    fn fp2_sqrt_round_trips() {
        let mut r = rng();
        let mut failures = 0;
        for _ in 0..40 {
            let a = Fp2::random(&mut r);
            let sq = a.square();
            let s = WireField::sqrt(&sq).expect("squares have roots");
            assert_eq!(s.square(), sq);
            if WireField::sqrt(&a).is_none() {
                failures += 1;
            }
        }
        // about half of all elements are non-residues
        assert!(failures > 5, "sqrt must reject non-residues");
        // pure-Fp and pure-u elements exercise the degenerate branch
        let c = Fp::from_u64(7);
        let e = Fp2::new(c, Fp::zero()).square();
        assert_eq!(WireField::sqrt(&e).unwrap().square(), e);
        let e = Fp2::new(Fp::zero(), c).square();
        assert_eq!(WireField::sqrt(&e).unwrap().square(), e);
    }

    #[test]
    fn round_trip_g1_and_g2() {
        let mut r = rng();
        for _ in 0..8 {
            let k = Fr::random(&mut r);
            let p = G1Projective::generator().mul_fr(&k).to_affine();
            let bytes = p.to_bytes();
            let q = G1Affine::try_from_bytes(&bytes).expect("valid point decodes");
            assert_eq!(p, q);
            assert_eq!(q.to_bytes(), bytes, "encode ∘ decode is the identity");

            let p = G2Projective::generator().mul_fr(&k).to_affine();
            let bytes = p.to_bytes();
            let q = G2Affine::try_from_bytes(&bytes).expect("valid point decodes");
            assert_eq!(p, q);
            assert_eq!(q.to_bytes(), bytes);
        }
        // the identity round-trips too
        let id = G1Affine::identity().to_bytes();
        assert!(G1Affine::try_from_bytes(&id).unwrap().is_identity());
        let id = G2Affine::identity().to_bytes();
        assert!(G2Affine::try_from_bytes(&id).unwrap().is_identity());
    }

    #[test]
    fn rejects_each_malformation_with_the_right_error() {
        let p = G1Projective::generator().mul_u64(5).to_affine();
        let bytes = p.to_bytes();

        // length
        assert_eq!(
            G1Affine::try_from_bytes(&bytes[..bytes.len() - 1]),
            Err(PointDecodeError::Length { expected: 49, got: 48 })
        );
        assert_eq!(
            G1Affine::try_from_bytes(&[]),
            Err(PointDecodeError::Length { expected: 49, got: 0 })
        );

        // flags
        let mut b = bytes.clone();
        b[0] |= 0b100;
        assert!(matches!(G1Affine::try_from_bytes(&b), Err(PointDecodeError::InvalidFlags(_))));

        // non-canonical infinity: infinity bit + nonzero coordinate
        let mut b = bytes.clone();
        b[0] |= 0b01;
        assert_eq!(G1Affine::try_from_bytes(&b), Err(PointDecodeError::NonCanonicalInfinity));
        // infinity + sign bit
        let mut b = G1Affine::identity().to_bytes();
        b[0] = 0b11;
        assert_eq!(G1Affine::try_from_bytes(&b), Err(PointDecodeError::NonCanonicalInfinity));

        // non-canonical coordinate: x = p (the modulus) is out of range;
        // all-0xff is certainly ≥ p
        let mut b = bytes.clone();
        for v in b[1..].iter_mut() {
            *v = 0xff;
        }
        assert_eq!(G1Affine::try_from_bytes(&b), Err(PointDecodeError::NonCanonicalCoordinate));

        // not on curve: scan for an x with non-residue x³ + b
        let mut b = bytes.clone();
        let mut found = false;
        for tweak in 1u8..=255 {
            b[1] = bytes[1].wrapping_add(tweak);
            match G1Affine::try_from_bytes(&b) {
                Err(PointDecodeError::NotOnCurve) => {
                    found = true;
                    break;
                }
                _ => continue,
            }
        }
        assert!(found, "some tweaked x must fall off the curve");
    }

    #[test]
    fn subgroup_checks_accept_members() {
        let mut r = rng();
        for _ in 0..5 {
            let k = Fr::random(&mut r);
            assert!(g1_subgroup_check(&G1Projective::generator().mul_fr(&k).to_affine()));
            assert!(g2_subgroup_check(&G2Projective::generator().mul_fr(&k).to_affine()));
        }
        assert!(g1_subgroup_check(&G1Affine::identity()));
        assert!(g2_subgroup_check(&G2Affine::identity()));
    }

    #[test]
    fn psi_check_agrees_with_full_order_check() {
        // On subgroup members both checks pass (above); on random twist
        // points both must fail — the ψ shortcut may not accept anything
        // the full-order ladder rejects.
        for seed in 0..6u64 {
            let p = twist_point_outside_g2(seed * 1000);
            let full_order =
                p.to_projective().mul_u256_wnaf(&params::fr_params().modulus).is_identity();
            assert!(!full_order, "hash-derived twist points are not in G2");
            assert_eq!(g2_subgroup_check(&p), full_order);
        }
    }

    #[test]
    fn wrong_subgroup_encodings_are_rejected() {
        let p = twist_point_outside_g2(42);
        let bytes = p.to_bytes();
        assert_eq!(G2Affine::try_from_bytes(&bytes), Err(PointDecodeError::WrongSubgroup));
        // …but the explicitly-unchecked decoder accepts them (that is its
        // documented purpose: manufacturing adversarial inputs)
        let q = G2Affine::try_from_bytes_on_curve(&bytes).expect("on-curve decode");
        assert_eq!(q, p);
    }

    #[test]
    fn g1_wrong_subgroup_rejected_when_cofactor_point_found() {
        // Hash-derived x-coordinates on E(Fp) land outside G1 with
        // probability 1 − 1/h₁ ≈ 1: the first decodable x must be rejected
        // by the checked decoder and accepted by the on-curve one.
        let mut ctr = 0u64;
        loop {
            ctr += 1;
            let x = Fp::hash_to_field(&ctr.to_le_bytes());
            let rhs = Field::add(&Field::mul(&x.square(), &x), &crate::curve::G1Spec::b());
            if let Some(y) = rhs.sqrt() {
                let p = G1Affine { x, y, infinity: false };
                assert!(p.is_on_curve());
                assert!(!g1_subgroup_check(&p), "hash-derived E(Fp) point is not in G1");
                let bytes = p.to_bytes();
                assert_eq!(G1Affine::try_from_bytes(&bytes), Err(PointDecodeError::WrongSubgroup));
                assert_eq!(G1Affine::try_from_bytes_on_curve(&bytes), Ok(p));
                return;
            }
        }
    }

    #[test]
    fn single_bit_corruptions_never_yield_a_different_valid_point() {
        // Flipping any single bit of a valid encoding must either fail to
        // decode or decode to a point that re-encodes differently — i.e. the
        // decoder cannot be tricked into aliasing two encodings.
        let mut r = rng();
        let p = G2Projective::generator().mul_u64(r.gen_range(2..1000)).to_affine();
        let bytes = p.to_bytes();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut b = bytes.clone();
                b[byte] ^= 1 << bit;
                if let Ok(q) = G2Affine::try_from_bytes(&b) {
                    assert_eq!(q.to_bytes(), b, "accepted decode must be canonical");
                    assert_ne!(q, p, "a flipped bit cannot encode the same point");
                }
            }
        }
    }
}
